/**
 * @file
 * Functional DP-SGD training demo: trains an MLP classifier on a
 * synthetic 10-class task with both DP-SGD and DP-SGD(R), verifying
 * that the two algorithms produce the same model, and reports the
 * (epsilon, delta) privacy guarantee from the RDP accountant -- the
 * software side of Algorithm 1.
 */

#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "dp/accountant.h"
#include "dp/data.h"
#include "dp/dp_sgd.h"

using namespace diva;

int
main()
{
    // Synthetic "MNIST-like" task: 10 Gaussian clusters in 32-D.
    const std::int64_t train_size = 4096;
    const int dim = 32;
    const int classes = 10;
    const std::int64_t batch = 64;
    const int steps = 300;

    // Generate one dataset and split it so train and test share the
    // same class clusters.
    const std::int64_t test_size = 1024;
    Rng data_rng(1234);
    const Dataset all = makeSyntheticClassification(
        train_size + test_size, dim, classes, data_rng, 4.0);
    Dataset train, test;
    train.numClasses = test.numClasses = classes;
    train.x = Tensor(train_size, dim);
    test.x = Tensor(test_size, dim);
    for (std::int64_t i = 0; i < train_size + test_size; ++i) {
        Dataset &dst = i < train_size ? train : test;
        const std::int64_t row = i < train_size ? i : i - train_size;
        for (int d = 0; d < dim; ++d)
            dst.x.at(row, d) = all.x.at(i, d);
        dst.y.push_back(all.y[std::size_t(i)]);
    }

    DpSgdConfig cfg;
    cfg.clipNorm = 1.0;
    cfg.noiseMultiplier = 1.1;
    cfg.learningRate = 0.4;

    Rng init_a(7), init_b(7);
    Mlp model_dp({dim, 64, classes}, init_a);
    Mlp model_dpr({dim, 64, classes}, init_b);
    DpSgdTrainer vanilla(model_dp, cfg);
    DpSgdRTrainer reweighted(model_dpr, cfg);

    RdpAccountant accountant(cfg.noiseMultiplier,
                             double(batch) / double(train_size));

    std::printf("training %d steps of DP-SGD (C=%.1f, sigma=%.1f, "
                "B=%lld, N=%lld)\n\n",
                steps, cfg.clipNorm, cfg.noiseMultiplier,
                static_cast<long long>(batch),
                static_cast<long long>(train_size));
    std::printf("%6s %12s %12s %10s %10s\n", "step", "loss(DP-SGD)",
                "loss(DP-R)", "clipped", "epsilon");

    Rng batch_rng_a(99), batch_rng_b(99);
    Tensor xa, xb;
    std::vector<int> ya, yb;
    for (int step = 1; step <= steps; ++step) {
        sampleBatch(train, batch, batch_rng_a, xa, ya);
        sampleBatch(train, batch, batch_rng_b, xb, yb);
        const DpStepResult ra = vanilla.step(xa, ya);
        const DpStepResult rb = reweighted.step(xb, yb);
        accountant.addSteps(1);
        if (step % 50 == 0 || step == 1) {
            std::printf("%6d %12.4f %12.4f %9.0f%% %10.3f\n", step,
                        ra.meanLoss, rb.meanLoss,
                        100.0 * ra.clippedFraction,
                        accountant.epsilon(1e-5));
        }
    }

    // The two DP algorithms must have trained identical models.
    double max_diff = 0.0;
    for (std::size_t l = 0; l < model_dp.layers().size(); ++l) {
        max_diff = std::max(max_diff,
                            model_dp.layers()[l].weight().maxAbsDiff(
                                model_dpr.layers()[l].weight()));
    }

    std::printf("\ntrain accuracy (DP-SGD):    %.1f%%\n",
                100.0 * model_dp.accuracy(train.x, train.y));
    std::printf("test accuracy (DP-SGD):     %.1f%%\n",
                100.0 * model_dp.accuracy(test.x, test.y));
    std::printf("test accuracy (DP-SGD(R)):  %.1f%%\n",
                100.0 * model_dpr.accuracy(test.x, test.y));
    std::printf("max weight divergence DP-SGD vs DP-SGD(R): %.2e\n",
                max_diff);
    std::printf("privacy spent: (epsilon=%.3f, delta=1e-5) at Renyi "
                "order %d\n",
                accountant.epsilon(1e-5), accountant.optimalOrder(1e-5));
    return 0;
}
