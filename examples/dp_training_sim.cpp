/**
 * @file
 * End-to-end DP training simulation: plan one DP-SGD(R) iteration of a
 * chosen network at its maximum feasible mini-batch and simulate it on
 * the four accelerator design points of the paper's Figure 13/14,
 * printing the per-stage latency breakdown and speedups.
 *
 * Usage: dp_training_sim [model-name] [--trace]
 * (default model: ResNet-50; --trace prints the op-level hot list)
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "arch/accelerator_config.h"
#include "common/table.h"
#include "models/zoo.h"
#include "sim/executor.h"
#include "train/memory_model.h"
#include "train/planner.h"

using namespace diva;

int
main(int argc, char **argv)
{
    std::string wanted = "ResNet-50";
    bool want_trace = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--trace")
            want_trace = true;
        else
            wanted = argv[i];
    }
    Network net;
    bool found = false;
    for (const auto &m : allModels()) {
        if (m.name == wanted) {
            net = m;
            found = true;
            break;
        }
    }
    if (!found) {
        std::printf("unknown model '%s'; available:\n", wanted.c_str());
        for (const auto &m : allModels())
            std::printf("  %s\n", m.name.c_str());
        return 1;
    }

    // Figure 5's protocol: all algorithms run the largest mini-batch
    // that vanilla DP-SGD fits in 16 GiB of HBM.
    const int batch =
        maxBatchSize(net, TrainingAlgorithm::kDpSgd, 16_GiB);
    std::printf("%s: %lld params, DP-SGD max mini-batch %d under "
                "16 GiB\n\n",
                net.name.c_str(),
                static_cast<long long>(net.paramCount()), batch);

    const std::vector<AcceleratorConfig> configs = {
        tpuV3Ws(), systolicOs(true), divaDefault(false),
        divaDefault(true)};

    // Reference points: non-private SGD and the DP algorithms on WS.
    const Executor ws(tpuV3Ws());
    const SimResult sgd_ws =
        ws.run(buildOpStream(net, TrainingAlgorithm::kSgd, batch));
    const SimResult dpsgd_ws =
        ws.run(buildOpStream(net, TrainingAlgorithm::kDpSgd, batch));

    const OpStream dpsgdr =
        buildOpStream(net, TrainingAlgorithm::kDpSgdR, batch);

    TextTable table({"engine", "total cycles", "vs SGD(WS)",
                     "speedup vs WS", "util", "DRAM GB"});
    SimResult ws_result;
    for (const auto &cfg : configs) {
        const Executor exec(cfg);
        const SimResult r = exec.run(dpsgdr);
        if (cfg.dataflow == Dataflow::kWeightStationary)
            ws_result = r;
        table.addRow(
            {cfg.name, std::to_string(r.totalCycles()),
             TextTable::fmtX(double(r.totalCycles()) /
                             double(sgd_ws.totalCycles())),
             TextTable::fmtX(speedup(ws_result, r)),
             TextTable::fmtPct(r.overallUtilization(cfg)),
             TextTable::fmt(double(r.totalDram().total()) / 1e9, 2)});
    }
    std::printf("DP-SGD(R) end-to-end (DP-SGD on WS: %.1fx SGD):\n",
                double(dpsgd_ws.totalCycles()) /
                    double(sgd_ws.totalCycles()));
    table.print(std::cout);

    std::printf("\nPer-stage latency breakdown (cycles):\n");
    TextTable stages({"stage", "WS", "OS+PPU", "DiVa-noPPU", "DiVa"});
    std::vector<SimResult> results;
    for (const auto &cfg : configs)
        results.push_back(Executor(cfg).run(dpsgdr));
    for (Stage s : allStages()) {
        std::vector<std::string> cells = {stageName(s)};
        bool any = false;
        for (const auto &r : results) {
            const Cycles c = r.stageCyclesFor(s);
            any = any || c > 0;
            cells.push_back(std::to_string(c));
        }
        if (any)
            stages.addRow(cells);
    }
    stages.print(std::cout);

    if (want_trace) {
        std::printf("\nOp-level trace on DiVa (top 15 by cycles):\n");
        Trace trace;
        Executor(divaDefault(true)).run(dpsgdr, &trace);
        printTraceReport(std::cout, trace, 15);
    }
    return 0;
}
