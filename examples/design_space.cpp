/**
 * @file
 * Design-space exploration for a DiVa-class accelerator, driven by the
 * sweep subsystem: one SweepSpec crosses the PPU drain rate, SRAM
 * capacity, PE-array aspect ratio and dataflow axes for a chosen
 * model; the runner simulates the deduplicated scenarios in parallel,
 * and the aggregator reports summary statistics plus the Pareto
 * frontier over (cycles, energy, engine area) -- the trade-off an
 * architect actually navigates.
 *
 * Usage: design_space [model-name] [threads]   (default: BERT-base, 4)
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "common/table.h"
#include "sweep/aggregate.h"
#include "sweep/emit.h"
#include "sweep/runner.h"
#include "sweep/spec.h"

using namespace diva;

namespace
{

void
printResults(const char *title, const std::vector<ScenarioResult> &slice)
{
    std::printf("\n--- %s ---\n", title);
    TextTable table({"config", "cycles", "util", "energy (J)",
                     "power (W)", "area (mm^2)"});
    for (const ScenarioResult &r : slice)
        table.addRow({r.scenario.config.name,
                      std::to_string(r.cycles),
                      TextTable::fmtPct(r.utilization),
                      TextTable::fmt(r.energyJ, 2),
                      TextTable::fmt(r.enginePowerW, 1),
                      TextTable::fmt(r.engineAreaMm2, 1)});
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string wanted = argc > 1 ? argv[1] : "BERT-base";
    bool found = false;
    for (const std::string &m : knownModels())
        found = found || m == wanted;
    if (!found) {
        std::printf("unknown model '%s'; try one of:\n", wanted.c_str());
        for (const std::string &m : knownModels())
            std::printf("  %s\n", m.c_str());
        return 1;
    }

    // One config axis covering every studied design dimension. Axis
    // points are named so sweep rows read like the paper's tables;
    // each section records its slice of the axis as it is built.
    std::vector<AcceleratorConfig> configs;
    const std::size_t r_begin = configs.size();
    for (int r : {1, 2, 4, 8, 16, 32}) {
        AcceleratorConfig cfg = divaDefault(true);
        cfg.drainRowsPerCycle = r;
        cfg.name = "DiVa R=" + std::to_string(r);
        configs.push_back(cfg);
    }
    const std::size_t sram_begin = configs.size();
    for (int mib : {4, 8, 16, 32, 64}) {
        AcceleratorConfig cfg = divaDefault(true);
        cfg.sramBytes = Bytes(mib) * 1_MiB;
        cfg.name = "DiVa SRAM=" + std::to_string(mib) + "MiB";
        configs.push_back(cfg);
    }
    const std::size_t aspect_begin = configs.size();
    for (const auto &[rows, cols] :
         {std::pair{32, 512}, std::pair{64, 256}, std::pair{128, 128},
          std::pair{256, 64}, std::pair{512, 32}}) {
        AcceleratorConfig cfg = divaDefault(true);
        cfg.peRows = rows;
        cfg.peCols = cols;
        cfg.drainRowsPerCycle = std::min(cfg.drainRowsPerCycle, rows);
        cfg.name = "DiVa " + std::to_string(rows) + "x" +
                   std::to_string(cols);
        configs.push_back(cfg);
    }
    const std::size_t dataflow_begin = configs.size();
    configs.push_back(tpuV3Ws());
    configs.push_back(systolicOs(true));
    configs.push_back(divaDefault(false));
    configs.push_back(divaDefault(true));

    SweepSpec spec;
    spec.configs = configs;
    spec.models = {wanted};
    spec.algorithms = {TrainingAlgorithm::kDpSgdR};
    spec.batches = {kAutoBatch};

    SweepOptions opts;
    opts.threads = argc > 2 ? std::atoi(argv[2]) : 4;
    SweepRunner runner(opts);
    const SweepReport report = runner.run(spec);
    if (report.failures) {
        std::printf("%zu scenarios failed\n", report.failures);
        return 1;
    }
    if (report.results.size() != configs.size()) {
        // A dropped (invalid/duplicate) axis point would shift every
        // positional slice below.
        std::printf("expansion dropped %zu of %zu design points; "
                    "section slices would be misaligned\n",
                    configs.size() - report.results.size(),
                    configs.size());
        return 1;
    }

    std::printf("design space for %s, DP-SGD(R), mini-batch %d "
                "(%zu scenarios, %d threads)\n",
                wanted.c_str(), report.results.front().resolvedBatch,
                report.results.size(), opts.threads);

    const auto &rs = report.results;
    auto slice = [&](std::size_t begin, std::size_t end) {
        return std::vector<ScenarioResult>(
            rs.begin() + std::ptrdiff_t(begin),
            rs.begin() + std::ptrdiff_t(end));
    };
    printResults("drain rate R", slice(r_begin, sram_begin));
    printResults("SRAM capacity", slice(sram_begin, aspect_begin));
    printResults("PE array aspect (16384 MACs)",
                 slice(aspect_begin, dataflow_begin));
    printResults("dataflow comparison at the default point",
                 slice(dataflow_begin, rs.size()));

    const SweepSummary stats = summarizeResults(rs);
    std::printf("\ncycles across the space: min %.0f / median %.0f / "
                "p95 %.0f / max %.0f\n",
                stats.cycles.min, stats.cycles.median, stats.cycles.p95,
                stats.cycles.max);

    const std::vector<Objective> objectives = {Objective::kCycles,
                                               Objective::kEnergy,
                                               Objective::kEngineAreaMm2};
    const std::vector<std::size_t> frontier =
        paretoFrontier(rs, objectives);
    std::printf("\n--- Pareto frontier: cycles vs energy vs area "
                "(%zu of %zu points) ---\n",
                frontier.size(), rs.size());
    TextTable pareto({"config", "cycles", "energy (J)", "area (mm^2)"});
    for (std::size_t i : frontier)
        pareto.addRow({rs[i].scenario.config.name,
                       std::to_string(rs[i].cycles),
                       TextTable::fmt(rs[i].energyJ, 2),
                       TextTable::fmt(rs[i].engineAreaMm2, 1)});
    pareto.print(std::cout);
    return 0;
}
