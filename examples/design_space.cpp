/**
 * @file
 * Design-space exploration for a DiVa-class accelerator: sweep the
 * PPU drain rate, SRAM capacity and PE-array aspect ratio for a chosen
 * model and report DP-SGD(R) iteration latency, utilization and the
 * engine's area/power cost, exercising the public simulation API the
 * way an architect would.
 *
 * Usage: design_space [model-name]   (default: BERT-base)
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>

#include "arch/accelerator_config.h"
#include "common/table.h"
#include "energy/energy_model.h"
#include "models/zoo.h"
#include "sim/executor.h"
#include "train/memory_model.h"
#include "train/planner.h"

using namespace diva;

namespace
{

void
report(TextTable &table, const std::string &label,
       const AcceleratorConfig &cfg, const OpStream &stream)
{
    const SimResult r = Executor(cfg).run(stream);
    const EnergyBreakdown e = EnergyModel::energy(r, cfg);
    table.addRow({label, std::to_string(r.totalCycles()),
                  TextTable::fmtPct(r.overallUtilization(cfg)),
                  TextTable::fmt(e.total(), 2),
                  TextTable::fmt(EnergyModel::enginePowerW(cfg), 1),
                  TextTable::fmt(EnergyModel::engineAreaMm2(cfg), 1)});
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string wanted = argc > 1 ? argv[1] : "BERT-base";
    Network net;
    bool found = false;
    for (const auto &m : allModels()) {
        if (m.name == wanted) {
            net = m;
            found = true;
        }
    }
    if (!found) {
        std::printf("unknown model '%s'\n", wanted.c_str());
        return 1;
    }

    const int batch = std::max(
        1, maxBatchSize(net, TrainingAlgorithm::kDpSgd, 16_GiB));
    const OpStream stream =
        buildOpStream(net, TrainingAlgorithm::kDpSgdR, batch);
    std::printf("design space for %s, DP-SGD(R), mini-batch %d\n\n",
                net.name.c_str(), batch);

    std::printf("--- drain rate R ---\n");
    TextTable r_table({"config", "cycles", "util", "energy (J)",
                       "power (W)", "area (mm^2)"});
    for (int r : {1, 2, 4, 8, 16, 32}) {
        AcceleratorConfig cfg = divaDefault(true);
        cfg.drainRowsPerCycle = r;
        report(r_table, "R=" + std::to_string(r), cfg, stream);
    }
    r_table.print(std::cout);

    std::printf("\n--- SRAM capacity ---\n");
    TextTable s_table({"config", "cycles", "util", "energy (J)",
                       "power (W)", "area (mm^2)"});
    for (int mib : {4, 8, 16, 32, 64}) {
        AcceleratorConfig cfg = divaDefault(true);
        cfg.sramBytes = Bytes(mib) * 1_MiB;
        report(s_table, std::to_string(mib) + " MiB", cfg, stream);
    }
    s_table.print(std::cout);

    std::printf("\n--- PE array aspect (16384 MACs) ---\n");
    TextTable a_table({"config", "cycles", "util", "energy (J)",
                       "power (W)", "area (mm^2)"});
    for (const auto &[rows, cols] :
         {std::pair{32, 512}, std::pair{64, 256}, std::pair{128, 128},
          std::pair{256, 64}, std::pair{512, 32}}) {
        AcceleratorConfig cfg = divaDefault(true);
        cfg.peRows = rows;
        cfg.peCols = cols;
        cfg.drainRowsPerCycle =
            std::min(cfg.drainRowsPerCycle, rows);
        report(a_table,
               std::to_string(rows) + "x" + std::to_string(cols), cfg,
               stream);
    }
    a_table.print(std::cout);

    std::printf("\n--- dataflow comparison at the default point ---\n");
    TextTable d_table({"config", "cycles", "util", "energy (J)",
                       "power (W)", "area (mm^2)"});
    report(d_table, "Systolic-WS", tpuV3Ws(), stream);
    report(d_table, "Systolic-OS+PPU", systolicOs(true), stream);
    report(d_table, "DiVa w/o PPU", divaDefault(false), stream);
    report(d_table, "DiVa", divaDefault(true), stream);
    d_table.print(std::cout);
    return 0;
}
