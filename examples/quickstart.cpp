/**
 * @file
 * Quickstart: simulate a handful of GEMMs on the three dataflows and
 * print cycle counts and FLOPS utilization.
 *
 * Shows the paper's core observation in miniature: a per-batch GEMM
 * (large K) runs well on every dataflow, but a per-example
 * weight-gradient GEMM (tiny K) starves systolic arrays while DiVa's
 * outer-product engine stays busy.
 */

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "arch/accelerator_config.h"
#include "common/table.h"
#include "gemm/engine.h"
#include "gemm/gemm_shape.h"

using namespace diva;

int
main()
{
    struct Case
    {
        const char *desc;
        GemmShape shape;
        std::uint64_t count;
    };
    // An MLP layer (I=O=1024) trained at mini-batch 512 (Figure 6).
    const std::vector<Case> cases = {
        {"forward (B,I,O)", GemmShape(512, 1024, 1024), 1},
        {"per-batch wgrad (I,B,O)", GemmShape(1024, 512, 1024), 1},
        {"per-example wgrad (I,1,O) x B", GemmShape(1024, 1, 1024), 512},
        {"conv per-example (CRS,PQ,K) x B", GemmShape(576, 64, 128), 512},
    };

    const std::vector<AcceleratorConfig> configs = {
        tpuV3Ws(), systolicOs(true), divaDefault(true)};

    std::printf("DiVa quickstart: GEMM latency and utilization by "
                "dataflow\n\n");
    TextTable table({"GEMM", "engine", "cycles", "util", "eff TFLOPS"});
    for (const auto &c : cases) {
        for (const auto &cfg : configs) {
            auto engine = GemmEngineModel::create(cfg);
            const GemmResult r = engine->simulateBatched(c.shape, c.count);
            table.addRow({c.desc, cfg.name, std::to_string(r.cycles),
                          TextTable::fmtPct(r.utilization(cfg)),
                          TextTable::fmt(r.effectiveTflops(cfg), 2)});
        }
        table.addSeparator();
    }
    table.print(std::cout);
    return 0;
}
