/**
 * @file
 * Data-parallel pod scaling study: shard a DP-SGD(R) mini-batch over
 * 1..32 chips and report per-iteration latency, all-reduce cost and
 * strong-scaling efficiency on the WS baseline vs DiVa -- the natural
 * "what happens on a pod" follow-up to the paper's single-chip
 * evaluation.
 *
 * The pod points run as ordinary sweep scenarios through the pod
 * simulation backend (see src/backend/), so the chip-count axis is
 * simulated on the runner's worker pool with one shared workload plan
 * instead of rebuilding the model per point.
 *
 * Usage: pod_scaling [model-name] [global-batch]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "common/types.h"
#include "sweep/runner.h"
#include "sweep/spec.h"

using namespace diva;

int
main(int argc, char **argv)
{
    const std::string wanted = argc > 1 ? argv[1] : "ResNet-152";
    const int global_batch = argc > 2 ? std::atoi(argv[2]) : 512;
    bool found = false;
    for (const std::string &m : knownModels())
        found = found || m == wanted;
    if (!found || global_batch <= 0) {
        std::printf("usage: pod_scaling [model-name] [global-batch]\n");
        return 1;
    }

    std::vector<int> chip_counts;
    for (int chips : {1, 2, 4, 8, 16, 32})
        if (chips <= global_batch)
            chip_counts.push_back(chips);

    SweepSpec spec;
    spec.configs = {tpuV3Ws(), divaDefault(true)};
    spec.models = {wanted};
    spec.algorithms = {TrainingAlgorithm::kDpSgdR};
    spec.batches = {global_batch};
    spec.backends = {SweepBackend::kMultiChip};
    for (int chips : chip_counts) {
        MultiChipConfig pod;
        pod.numChips = chips;
        spec.pods.push_back(pod);
    }

    SweepOptions opts;
    opts.threads = 4;
    SweepRunner runner(opts);
    const SweepReport report = runner.run(spec);
    if (report.failures ||
        report.results.size() != 2 * chip_counts.size()) {
        std::printf("pod sweep failed (%zu failures)\n",
                    report.failures);
        return 1;
    }
    // Axis-major expansion: WS rows first, then the DiVa rows.
    const std::size_t n = chip_counts.size();
    const auto ws = [&](std::size_t i) { return report.results[i]; };
    const auto dv = [&](std::size_t i) {
        return report.results[n + i];
    };

    std::printf("%s, DP-SGD(R), global mini-batch %d, TPUv3-class ICI "
                "(70 GB/s per link)\n\n",
                wanted.c_str(), global_batch);
    TextTable table({"chips", "per-chip B", "WS cycles", "DiVa cycles",
                     "DiVa allreduce", "DiVa efficiency",
                     "DiVa speedup"});
    for (std::size_t i = 0; i < n; ++i) {
        const int chips = chip_counts[i];
        // Strong-scaling efficiency vs the 1-chip pod of the same
        // design point (whose iteration has no all-reduce).
        const double efficiency = double(dv(0).cycles) /
                                  (double(chips) * double(dv(i).cycles));
        table.addRow(
            {std::to_string(chips),
             std::to_string(ceilDiv(global_batch, chips)),
             std::to_string(ws(i).cycles), std::to_string(dv(i).cycles),
             std::to_string(dv(i).allReduceCycles),
             TextTable::fmtPct(efficiency),
             TextTable::fmtX(double(ws(i).cycles) /
                             double(dv(i).cycles))});
    }
    table.print(std::cout);
    std::printf("\nNote: per-example clipping is chip-local, so DP-SGD "
                "composes with data parallelism without extra "
                "communication; only the reduced G(W) crosses the "
                "interconnect, after which noise is added once.\n");
    return 0;
}
