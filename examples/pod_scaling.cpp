/**
 * @file
 * Data-parallel pod scaling study: shard a DP-SGD(R) mini-batch over
 * 1..32 chips and report per-iteration latency, all-reduce cost and
 * strong-scaling efficiency on the WS baseline vs DiVa -- the natural
 * "what happens on a pod" follow-up to the paper's single-chip
 * evaluation.
 *
 * Usage: pod_scaling [model-name] [global-batch]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "arch/accelerator_config.h"
#include "common/table.h"
#include "models/zoo.h"
#include "sim/multichip.h"

using namespace diva;

int
main(int argc, char **argv)
{
    const std::string wanted = argc > 1 ? argv[1] : "ResNet-152";
    const int global_batch = argc > 2 ? std::atoi(argv[2]) : 512;
    Network net;
    bool found = false;
    for (const auto &m : allModels()) {
        if (m.name == wanted) {
            net = m;
            found = true;
        }
    }
    if (!found || global_batch <= 0) {
        std::printf("usage: pod_scaling [model-name] [global-batch]\n");
        return 1;
    }

    std::printf("%s, DP-SGD(R), global mini-batch %d, TPUv3-class ICI "
                "(70 GB/s per link)\n\n",
                net.name.c_str(), global_batch);
    TextTable table({"chips", "per-chip B", "WS cycles", "DiVa cycles",
                     "DiVa allreduce", "DiVa efficiency",
                     "DiVa speedup"});
    for (int chips : {1, 2, 4, 8, 16, 32}) {
        if (chips > global_batch)
            break;
        MultiChipConfig pod;
        pod.numChips = chips;
        const ScalingResult ws = simulateDataParallel(
            tpuV3Ws(), net, TrainingAlgorithm::kDpSgdR, global_batch,
            pod);
        const ScalingResult dv = simulateDataParallel(
            divaDefault(true), net, TrainingAlgorithm::kDpSgdR,
            global_batch, pod);
        table.addRow(
            {std::to_string(chips), std::to_string(dv.perChipBatch),
             std::to_string(ws.totalCycles),
             std::to_string(dv.totalCycles),
             std::to_string(dv.allReduceCycles),
             TextTable::fmtPct(dv.efficiency),
             TextTable::fmtX(double(ws.totalCycles) /
                             double(dv.totalCycles))});
    }
    table.print(std::cout);
    std::printf("\nNote: per-example clipping is chip-local, so DP-SGD "
                "composes with data parallelism without extra "
                "communication; only the reduced G(W) crosses the "
                "interconnect, after which noise is added once.\n");
    return 0;
}
