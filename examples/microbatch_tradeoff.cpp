/**
 * @file
 * Micro-batching trade-off explorer: Section III-A shows DP-SGD's
 * per-example gradients cap the feasible mini-batch at ~1% of SGD's.
 * Gradient accumulation (micro-batching) is the standard software
 * workaround -- this example quantifies its memory/latency trade-off
 * on the WS baseline vs DiVa for a chosen model.
 *
 * Usage: microbatch_tradeoff [model-name]   (default: ResNet-152)
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "arch/accelerator_config.h"
#include "common/table.h"
#include "models/zoo.h"
#include "sim/executor.h"
#include "train/memory_model.h"
#include "train/planner.h"

using namespace diva;

int
main(int argc, char **argv)
{
    const std::string wanted = argc > 1 ? argv[1] : "ResNet-152";
    Network net;
    bool found = false;
    for (const auto &m : allModels()) {
        if (m.name == wanted) {
            net = m;
            found = true;
        }
    }
    if (!found) {
        std::printf("unknown model '%s'\n", wanted.c_str());
        return 1;
    }

    // Target the SGD-scale logical batch that monolithic DP-SGD
    // cannot fit (Section III-A).
    const int sgd_batch =
        maxBatchSize(net, TrainingAlgorithm::kSgd, 16_GiB);
    const int dp_batch =
        maxBatchSize(net, TrainingAlgorithm::kDpSgd, 16_GiB);
    const int logical = std::min(sgd_batch, 8 * dp_batch);
    std::printf("%s: SGD max batch %d, DP-SGD max batch %d; targeting "
                "logical batch %d via micro-batching\n\n",
                net.name.c_str(), sgd_batch, dp_batch, logical);

    const Executor ws(tpuV3Ws());
    const Executor diva(divaDefault(true));

    TextTable table({"micro-batch", "passes", "DP-SGD memory (GB)",
                     "fits 16GiB", "WS cycles", "DiVa cycles",
                     "DiVa speedup"});
    for (int mb = dp_batch; mb >= 1; mb /= 4) {
        const Bytes mem = trainingMemoryMicrobatched(
                              net, TrainingAlgorithm::kDpSgd, logical,
                              mb)
                              .total();
        const OpStream stream = buildMicrobatchedOpStream(
            net, TrainingAlgorithm::kDpSgdR, logical, mb);
        const Cycles cw = ws.run(stream).totalCycles();
        const Cycles cd = diva.run(stream).totalCycles();
        table.addRow({std::to_string(mb),
                      std::to_string(ceilDiv(logical, mb)),
                      TextTable::fmt(double(mem) / 1e9, 2),
                      mem <= 16_GiB ? "yes" : "NO",
                      std::to_string(cw), std::to_string(cd),
                      TextTable::fmtX(double(cw) / double(cd))});
        if (mb == 1)
            break;
    }
    table.print(std::cout);

    std::printf("\nMonolithic reference (batch %d, no accumulation):\n",
                logical);
    const Bytes mono_mem =
        trainingMemory(net, TrainingAlgorithm::kDpSgd, logical).total();
    std::printf("  DP-SGD memory %.2f GB -> %s\n",
                double(mono_mem) / 1e9,
                mono_mem <= 16_GiB ? "fits" : "does NOT fit 16 GiB");
    return 0;
}
