/**
 * @file
 * Explore the maximum feasible mini-batch of every benchmark network
 * under a sweep of device memory capacities (Section III-A), showing
 * how DP-SGD's B x sizeof(G(W)) allocation collapses the feasible
 * batch and how DP-SGD(R) restores it.
 *
 * Usage: batch_size_explorer [capacity-GiB ...]   (default: 8 16 32 80)
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "models/zoo.h"
#include "train/memory_model.h"

using namespace diva;

int
main(int argc, char **argv)
{
    std::vector<Bytes> capacities;
    for (int i = 1; i < argc; ++i) {
        const long gib = std::atol(argv[i]);
        if (gib <= 0) {
            std::printf("invalid capacity '%s'\n", argv[i]);
            return 1;
        }
        capacities.push_back(Bytes(gib) * 1_GiB);
    }
    if (capacities.empty())
        capacities = {8_GiB, 16_GiB, 32_GiB, 80_GiB};

    for (const Bytes cap : capacities) {
        std::printf("=== max mini-batch under %.0f GiB ===\n",
                    double(cap) / double(1_GiB));
        TextTable table({"model", "params (M)", "SGD", "DP-SGD",
                         "DP-SGD(R)", "DP-SGD penalty"});
        for (const auto &net : allModels()) {
            const int sgd =
                maxBatchSize(net, TrainingAlgorithm::kSgd, cap);
            const int dp =
                maxBatchSize(net, TrainingAlgorithm::kDpSgd, cap);
            const int dpr =
                maxBatchSize(net, TrainingAlgorithm::kDpSgdR, cap);
            table.addRow(
                {net.name,
                 TextTable::fmt(double(net.paramCount()) / 1e6, 1),
                 std::to_string(sgd), std::to_string(dp),
                 std::to_string(dpr),
                 dp > 0 ? TextTable::fmtX(double(sgd) / double(dp), 1)
                        : "inf"});
        }
        table.print(std::cout);

        // Show where the memory goes for the worst-affected model.
        const Network net = resnet152();
        const int dp_batch =
            maxBatchSize(net, TrainingAlgorithm::kDpSgd, cap);
        if (dp_batch > 0) {
            const MemoryBreakdown mb = trainingMemory(
                net, TrainingAlgorithm::kDpSgd, dp_batch);
            std::printf("ResNet-152 @ DP-SGD batch %d: weights %.2f GB,"
                        " activations %.2f GB, per-example grads %.2f "
                        "GB (%.0f%%)\n\n",
                        dp_batch, double(mb.weights) / 1e9,
                        double(mb.activations) / 1e9,
                        double(mb.perExampleGrad) / 1e9,
                        100.0 * double(mb.perExampleGrad) /
                            double(mb.total()));
        }
    }
    return 0;
}
