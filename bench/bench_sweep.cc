/**
 * @file
 * Sweep-engine throughput benchmark: expands a 120-scenario design
 * sweep (4 design points x 5 models x 3 batches x 2 algorithms) and
 * times three regimes -- "cold" (every scenario simulated, plan-cache
 * grouping amortizing model builds; aggregated over several
 * fresh-runner repetitions so the CI gate measures more than a few
 * milliseconds), "warm-memory" (the same runner
 * resolving a tiled request list from its result cache) and
 * "warm-disk" (a fresh runner whose mmap preload of the on-disk store
 * serves the same tiled list). Besides the google-benchmark
 * microbenchmarks it writes BENCH_sweep.json (path overridable with
 * --out) -- scenarios/sec and /min plus plan- and result-cache hit
 * rates per regime -- so CI can track the sweep perf trajectory. The
 * warm regimes are the ones held to the >= 1e6 scenarios/minute bar;
 * cold rows measure real simulation and sit far below it by design.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_util.h"
#include "common/format.h"
#include "common/table.h"
#include "sweep/runner.h"
#include "sweep/spec.h"

using namespace diva;

namespace
{

/** Tiled-request multiplier for the warm (cache-resolution) phases. */
constexpr std::size_t kWarmTiles = 400;

/** Fresh-runner repetitions aggregated into the cold row: one 120-
 *  scenario pass is a few milliseconds, too short for the CI
 *  regression gate to measure without timing noise. */
constexpr int kColdReps = 8;

SweepSpec
benchSpec()
{
    SweepSpec spec;
    spec.configs = benchutil::designPoints();
    spec.models = {"SqueezeNet", "MobileNet", "LSTM-small", "ResNet-50",
                   "BERT-base"};
    spec.batches = {8, 32, 128};
    spec.algorithms = {TrainingAlgorithm::kDpSgdR,
                       TrainingAlgorithm::kDpSgd};
    return spec;
}

/** The scenario list tiled `tiles` times (labels identical; every
 *  repeat resolves through the cache like a real re-request). */
std::vector<Scenario>
tile(const std::vector<Scenario> &scenarios, std::size_t tiles)
{
    std::vector<Scenario> out;
    out.reserve(scenarios.size() * tiles);
    for (std::size_t t = 0; t < tiles; ++t)
        out.insert(out.end(), scenarios.begin(), scenarios.end());
    return out;
}

struct SweepFigures
{
    std::string phase;
    std::size_t scenarios = 0;
    double seconds = 0.0;
    double perSec = 0.0;
    double perMin = 0.0;
    double planHitRate = 0.0;
    double resultHitRate = 0.0;
};

SweepFigures
timeSweep(const std::string &phase, SweepRunner &runner,
          const std::vector<Scenario> &scenarios)
{
    const auto t0 = std::chrono::steady_clock::now();
    const SweepReport report = runner.run(scenarios);
    const auto t1 = std::chrono::steady_clock::now();

    for (const ScenarioResult &r : report.results)
        if (!r.ok()) {
            std::cerr << "bench_sweep: " << r.scenario.label() << ": "
                      << r.error << "\n";
            std::exit(1);
        }
    SweepFigures f;
    f.phase = phase;
    f.scenarios = scenarios.size();
    f.seconds = std::chrono::duration<double>(t1 - t0).count();
    f.perSec = double(scenarios.size()) / f.seconds;
    f.perMin = 60.0 * f.perSec;
    const double plan_lookups = double(report.planHits + report.planMisses);
    f.planHitRate = plan_lookups > 0.0
                        ? double(report.planHits) / plan_lookups
                        : 0.0;
    const double lookups = double(report.cacheHits + report.cacheMisses);
    f.resultHitRate =
        lookups > 0.0 ? double(report.cacheHits) / lookups : 0.0;
    return f;
}

void
writeSweepJson(const std::string &path,
               const std::vector<SweepFigures> &figures)
{
    std::vector<std::string> rows;
    for (const SweepFigures &f : figures) {
        std::ostringstream row;
        row << "{\"phase\": \"" << f.phase << "\""
            << ", \"scenarios\": " << f.scenarios
            << ", \"seconds\": " << jsonNumber(f.seconds)
            << ", \"scenarios_per_sec\": " << jsonNumber(f.perSec)
            << ", \"scenarios_per_min\": " << jsonNumber(f.perMin)
            << ", \"plan_cache_hit_rate\": " << jsonNumber(f.planHitRate)
            << ", \"result_cache_hit_rate\": "
            << jsonNumber(f.resultHitRate) << "}";
        rows.push_back(row.str());
    }
    benchutil::writeBenchJson(
        path, "sweep",
        {{"scenarios", "count"},
         {"seconds", "wall-clock seconds"},
         {"scenarios_per_sec",
          "scenarios evaluated per wall-clock second"},
         {"scenarios_per_min",
          "scenarios evaluated per wall-clock minute"},
         {"plan_cache_hit_rate", "fraction in [0,1]"},
         {"result_cache_hit_rate", "fraction in [0,1]"}},
        "sweeps", rows);
}

void
printSweepThroughput(const std::string &outPath)
{
    const SweepSpec spec = benchSpec();
    const std::vector<Scenario> scenarios = spec.expand().scenarios;
    const std::vector<Scenario> tiled = tile(scenarios, kWarmTiles);

    const std::string cacheDir =
        (std::filesystem::temp_directory_path() / "diva-bench-sweep-cache")
            .string();

    std::cout << "=== sweep evaluation throughput (" << scenarios.size()
              << " scenarios cold x" << kColdReps << " reps, x"
              << kWarmTiles << " tiled warm) ===\n";
    TextTable table({"phase", "scenarios", "seconds", "scenarios/s",
                     "scenarios/min", "plan hits", "result hits"});
    std::vector<SweepFigures> figures;

    SweepOptions opts;
    opts.threads = 4;
    opts.cacheDir = cacheDir;
    {
        SweepFigures cold;
        cold.phase = "cold";
        for (int rep = 0; rep < kColdReps; ++rep) {
            std::filesystem::remove_all(cacheDir); // cold means cold
            SweepRunner runner(opts);
            const SweepFigures f = timeSweep("cold", runner, scenarios);
            cold.scenarios += f.scenarios;
            cold.seconds += f.seconds;
            cold.planHitRate = f.planHitRate;
            cold.resultHitRate = f.resultHitRate;
            if (rep + 1 == kColdReps) {
                cold.perSec = double(cold.scenarios) / cold.seconds;
                cold.perMin = 60.0 * cold.perSec;
                figures.push_back(cold);
                // The last repetition's runner stays warm in memory.
                figures.push_back(timeSweep("warm-memory", runner, tiled));
            }
        }
    }
    {
        // A fresh runner on the now-populated store: resolution runs
        // entirely off the mmap-preloaded disk mirror.
        SweepRunner runner(opts);
        figures.push_back(timeSweep("warm-disk", runner, tiled));
    }
    std::filesystem::remove_all(cacheDir);

    for (const SweepFigures &f : figures)
        table.addRow({f.phase, std::to_string(f.scenarios),
                      TextTable::fmt(f.seconds, 3),
                      TextTable::fmt(f.perSec, 0),
                      TextTable::fmt(f.perMin, 0),
                      TextTable::fmt(f.planHitRate, 3),
                      TextTable::fmt(f.resultHitRate, 3)});
    table.print(std::cout);
    writeSweepJson(outPath, figures);
    std::cout << "\nwrote " << outPath << "\n\n";
}

void
BM_SweepWarmResolve(benchmark::State &state)
{
    const SweepSpec spec = benchSpec();
    const std::vector<Scenario> scenarios = spec.expand().scenarios;
    const std::vector<Scenario> tiled =
        tile(scenarios, std::size_t(state.range(0)));
    SweepOptions opts;
    opts.threads = 4;
    opts.cacheAcrossRuns = true;
    SweepRunner runner(opts);
    runner.run(scenarios); // warm the result cache once
    for (auto _ : state) {
        const SweepReport report = runner.run(tiled);
        benchmark::DoNotOptimize(report.cacheHits);
    }
    state.counters["scenarios_per_sec"] = benchmark::Counter(
        double(tiled.size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SweepWarmResolve)->Arg(40)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    const std::string out =
        benchutil::benchOutPath(argc, argv, "BENCH_sweep.json");
    // Collect phase timings across the artifact runs; writeBenchJson
    // folds them into the envelope's "profile" object.
    obs::Profiler::instance().enable(true);
    printSweepThroughput(out);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
