/**
 * @file
 * Table I: on-chip SRAM read/write bandwidth requirements per dataflow
 * at the TPUv3-level configuration (128x128 PEs, BF16 inputs, FP32
 * accumulation, 8-row weight fill / output drain).
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "arch/accelerator_config.h"
#include "common/table.h"
#include "gemm/bandwidth.h"

using namespace diva;

namespace
{

void
printTableI()
{
    std::cout << "=== Table I: SRAM buffer bandwidth requirements "
                 "(bytes/clock) ===\n";
    TextTable table({"data type", "Systolic WS",
                     "Systolic OS & Outer-product"});
    const SramBandwidth ws = sramBandwidthRequirement(tpuV3Ws());
    const SramBandwidth os =
        sramBandwidthRequirement(systolicOs(false));
    const SramBandwidth outer =
        sramBandwidthRequirement(divaDefault(false));
    // OS and outer-product must agree (Section IV-D).
    if (os.total() != outer.total())
        std::cout << "WARNING: OS and outer-product disagree!\n";

    table.addRow({"Input LHS", std::to_string(ws.inputLhs),
                  std::to_string(outer.inputLhs)});
    table.addRow({"Input RHS", std::to_string(ws.inputRhs),
                  std::to_string(outer.inputRhs)});
    table.addRow({"Output", std::to_string(ws.output),
                  std::to_string(outer.output)});
    table.addSeparator();
    table.addRow({"Total", std::to_string(ws.total()),
                  std::to_string(outer.total())});
    table.print(std::cout);
    std::cout << "\npaper: WS total (2*PE_H + 20*PE_W)B = "
              << 2 * 128 + 20 * 128
              << "; OS/outer total (2*PE_H + 34*PE_W)B = "
              << 2 * 128 + 34 * 128 << "\n\n";
}

void
BM_BandwidthModel(benchmark::State &state)
{
    const AcceleratorConfig cfg =
        state.range(0) == 0 ? tpuV3Ws()
        : state.range(0) == 1 ? systolicOs(false)
                              : divaDefault(false);
    for (auto _ : state)
        benchmark::DoNotOptimize(sramBandwidthRequirement(cfg).total());
}
BENCHMARK(BM_BandwidthModel)->DenseRange(0, 2);

} // namespace

int
main(int argc, char **argv)
{
    printTableI();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
