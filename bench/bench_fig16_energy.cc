/**
 * @file
 * Figure 16: chip-wide energy consumption of DP-SGD(R) training,
 * normalized to the WS systolic baseline, for the four breakdown
 * models on OS and DiVa with/without the PPU. The paper reports an
 * average 2.6x (max 4.6x) energy reduction for DiVa.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "energy/energy_model.h"

using namespace diva;

namespace
{

void
printFigure16()
{
    std::cout << "=== Figure 16: energy consumption (normalized to WS) "
                 "===\n";
    const std::vector<AcceleratorConfig> configs = {
        tpuV3Ws(), systolicOs(false), systolicOs(true),
        divaDefault(false), divaDefault(true)};
    TextTable table({"model", "WS", "OS w/o PPU", "OS+PPU",
                     "DiVa w/o PPU", "DiVa", "DiVa saving"});
    std::vector<double> savings;
    double max_saving = 0.0;
    std::string max_model;
    for (const auto &net : allModels()) {
        const int batch = benchutil::dpBatch(net);
        std::vector<double> joules;
        for (const auto &cfg : configs) {
            const SimResult r = benchutil::runSim(
                cfg, net, TrainingAlgorithm::kDpSgdR, batch);
            joules.push_back(EnergyModel::energy(r, cfg).total());
        }
        std::vector<std::string> cells = {net.name};
        for (double j : joules)
            cells.push_back(TextTable::fmt(j / joules[0], 3));
        const double saving = joules[0] / joules.back();
        cells.push_back(TextTable::fmtX(saving));
        table.addRow(cells);
        savings.push_back(saving);
        if (saving > max_saving) {
            max_saving = saving;
            max_model = net.name;
        }
    }
    table.print(std::cout);
    std::cout << "\npaper: DiVa avg 2.6x (max 4.6x) energy reduction "
                 "vs WS\n";
    std::cout << "measured: avg "
              << TextTable::fmtX(benchutil::geomean(savings)) << " (max "
              << TextTable::fmtX(max_saving) << ", " << max_model
              << ")\n\n";
}

void
BM_EnergyModel(benchmark::State &state)
{
    const Network net = allModels()[std::size_t(state.range(0))];
    const AcceleratorConfig cfg = divaDefault(true);
    const OpStream stream = buildOpStream(
        net, TrainingAlgorithm::kDpSgdR, benchutil::dpBatch(net));
    const Executor exec(cfg);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            EnergyModel::energy(exec.run(stream), cfg).total());
    }
}
BENCHMARK(BM_EnergyModel)
    ->DenseRange(0, 8)
    ->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    printFigure16();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
