/**
 * @file
 * Serve-core throughput benchmark: drives the shared event-driven
 * scheduling core (src/serve_core/) through runServeLoop with
 * synthetic per-tenant iteration costs, so it times the scheduler
 * itself rather than the cost-pricing pipeline. Three mixes cover the
 * core's regimes: round-robin time slicing (dispatch-heavy), FIFO
 * run-to-completion (coalescing-heavy) and open-loop EDF replay under
 * rate targets (gate/idle-jump-heavy). Besides the google-benchmark
 * microbenchmarks it writes BENCH_serve.json (path overridable with
 * --out) -- steps/sec, serve-core events/sec and the coalesced-quanta
 * ratio per mix -- so CI can track the serve perf trajectory.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_util.h"
#include "common/format.h"
#include "common/table.h"
#include "tenant/serve.h"

using namespace diva;

namespace
{

constexpr int kTenants = 96;
constexpr std::uint64_t kStepsEach = 20000;

/**
 * Deterministic synthetic cost: ~1 ms iterations with a per-tenant
 * spread so no two tenants stay phase-locked (phase-locked quanta
 * would under-count the promotion/preemption paths).
 */
std::vector<IterationCost>
syntheticCosts(std::size_t n)
{
    std::vector<IterationCost> costs(n);
    for (std::size_t i = 0; i < n; ++i) {
        costs[i].seconds = 0.0008 + 0.0001 * double(i % 7);
        costs[i].energyJ = 0.5;
        costs[i].dramBytes = Bytes(1) << 20;
        costs[i].cycles = 1000000;
        costs[i].resolvedBatch = 32;
    }
    return costs;
}

SwitchCost
syntheticSwitch()
{
    SwitchCost sw;
    sw.seconds = 0.0005;
    sw.energyJ = 0.05;
    sw.dramBytes = Bytes(1) << 22;
    return sw;
}

ServeSpec
specOf(SchedPolicy policy, bool openLoop, double ratePerTenant,
       double arriveEverySec)
{
    ServeSpec spec;
    spec.workload =
        defaultWorkload(kTenants, kStepsEach, 32, arriveEverySec);
    if (ratePerTenant > 0.0)
        for (TenantJob &job : spec.workload.jobs)
            job.qosStepsPerSec = ratePerTenant;
    spec.policy = policy;
    spec.opts.quantumIters = 8;
    spec.opts.openLoop = openLoop;
    return spec;
}

struct ServeFigures
{
    std::string mode;
    std::size_t tenants = 0;
    std::uint64_t stepsDone = 0;
    double stepsPerSec = 0.0;
    double eventsPerSec = 0.0;
    double coalescedRatio = 0.0;
};

ServeFigures
timeServe(const std::string &mode, const ServeSpec &spec)
{
    const std::vector<IterationCost> costs =
        syntheticCosts(spec.workload.jobs.size());
    const SwitchCost sw = syntheticSwitch();

    const auto t0 = std::chrono::steady_clock::now();
    const ServeResult r = runServeLoop(spec, costs, sw);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();

    if (!r.ok()) {
        std::cerr << "bench_serve: " << r.error << "\n";
        std::exit(1);
    }
    ServeFigures f;
    f.mode = mode;
    f.tenants = spec.workload.jobs.size();
    f.stepsDone = r.coreCounters.steps;
    f.stepsPerSec = double(r.coreCounters.steps) / sec;
    f.eventsPerSec = double(r.coreCounters.events()) / sec;
    const double quanta =
        double(r.coreCounters.dispatches + r.coreCounters.coalescedQuanta);
    f.coalescedRatio =
        quanta > 0.0 ? double(r.coreCounters.coalescedQuanta) / quanta
                     : 0.0;
    return f;
}

void
writeServeJson(const std::string &path,
               const std::vector<ServeFigures> &figures)
{
    std::vector<std::string> rows;
    for (const ServeFigures &f : figures) {
        std::ostringstream row;
        row << "{\"mode\": \"" << f.mode << "\""
            << ", \"tenants\": " << f.tenants
            << ", \"steps_done\": " << f.stepsDone
            << ", \"steps_per_sec\": " << jsonNumber(f.stepsPerSec)
            << ", \"events_per_sec\": " << jsonNumber(f.eventsPerSec)
            << ", \"coalesced_quanta_ratio\": "
            << jsonNumber(f.coalescedRatio) << "}";
        rows.push_back(row.str());
    }
    benchutil::writeBenchJson(
        path, "serve",
        {{"tenants", "count"},
         {"steps_done", "count"},
         {"steps_per_sec",
          "simulated training steps scheduled per wall-clock second"},
         {"events_per_sec",
          "serve-core events processed per wall-clock second"},
         {"coalesced_quanta_ratio",
          "fraction in [0,1] of quantum expiries absorbed without a "
          "scheduler round trip"}},
        "serves", rows);
}

void
printServeThroughput(const std::string &outPath)
{
    std::cout << "=== serve-core scheduling throughput (" << kTenants
              << " tenants x " << kStepsEach
              << " steps, synthetic ~1 ms iterations) ===\n";
    TextTable table({"mode", "tenants", "steps", "steps/s", "events/s",
                     "coalesced"});
    std::vector<ServeFigures> figures;
    const struct
    {
        const char *mode;
        SchedPolicy policy;
        bool openLoop;
        double rate;
        double arriveEverySec;
    } mixes[] = {
        // Dense arrivals + time slicing: the ready set is never
        // empty, so every quantum expiry is a scheduler round trip.
        {"closed-rr", SchedPolicy::kRoundRobin, false, 0.0, 0.5},
        // Sparse arrivals (each tenant finishes before the next shows
        // up) run alone, so quanta coalesce into multi-quantum
        // advances; this mode bounds the coalescing win.
        {"closed-fifo-sparse", SchedPolicy::kFifo, false, 0.0, 25.0},
        // Open-loop trace replay at 2 steps/s per tenant: the engine
        // is mostly idle, so gates, promotions and idle jumps carry
        // the run instead of back-to-back dispatches.
        {"open-edf", SchedPolicy::kEdf, true, 2.0, 0.5},
    };
    for (const auto &mix : mixes) {
        const ServeFigures f = timeServe(
            mix.mode, specOf(mix.policy, mix.openLoop, mix.rate,
                             mix.arriveEverySec));
        figures.push_back(f);
        table.addRow({f.mode, std::to_string(f.tenants),
                      std::to_string(f.stepsDone),
                      TextTable::fmt(f.stepsPerSec, 0),
                      TextTable::fmt(f.eventsPerSec, 0),
                      TextTable::fmt(f.coalescedRatio, 3)});
    }
    table.print(std::cout);
    writeServeJson(outPath, figures);
    std::cout << "\nwrote " << outPath << "\n\n";
}

void
BM_ServeLoop(benchmark::State &state)
{
    const SchedPolicy policy = SchedPolicy(state.range(0));
    const ServeSpec spec = specOf(policy, false, 0.0, 0.5);
    const std::vector<IterationCost> costs =
        syntheticCosts(spec.workload.jobs.size());
    const SwitchCost sw = syntheticSwitch();
    for (auto _ : state) {
        const ServeResult r = runServeLoop(spec, costs, sw);
        benchmark::DoNotOptimize(r.makespanSec);
    }
    state.counters["steps_per_sec"] = benchmark::Counter(
        double(kTenants) * double(kStepsEach),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeLoop)
    ->Arg(int(SchedPolicy::kRoundRobin))
    ->Arg(int(SchedPolicy::kFifo))
    ->Arg(int(SchedPolicy::kEdf))
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    const std::string out =
        benchutil::benchOutPath(argc, argv, "BENCH_serve.json");
    // Collect phase timings across the artifact runs; writeBenchJson
    // folds them into the envelope's "profile" object.
    obs::Profiler::instance().enable(true);
    printServeThroughput(out);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
