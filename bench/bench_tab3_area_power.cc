/**
 * @file
 * Table III: power, area and effective throughput (normalized to power
 * and area) of the three GEMM engines. Peak TFLOPS is identical by
 * construction (same MAC count and clock); effective TFLOPS is the
 * utilization-weighted average over the nine DP-SGD(R) workloads.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "energy/energy_model.h"

using namespace diva;

namespace
{

double
effectiveTflops(const AcceleratorConfig &cfg)
{
    std::vector<double> per_model;
    for (const auto &net : allModels()) {
        const SimResult r = benchutil::runSim(
            cfg, net, TrainingAlgorithm::kDpSgdR,
            benchutil::dpBatch(net));
        per_model.push_back(r.overallUtilization(cfg) *
                            cfg.peakTflops());
    }
    return benchutil::geomean(per_model);
}

void
printTableIII()
{
    std::cout << "=== Table III: power, area and effective TFLOPS "
                 "(DP-SGD(R) workloads) ===\n";
    TextTable table({"engine", "peak TFLOPS", "eff TFLOPS", "power (W)",
                     "area (mm^2)", "eff TFLOPS/W", "eff TFLOPS/mm^2"});
    const std::vector<AcceleratorConfig> engines = {
        tpuV3Ws(), systolicOs(true), divaDefault(true)};
    double ws_pw = 0.0, ws_pa = 0.0, dv_pw = 0.0, dv_pa = 0.0;
    for (const auto &cfg : engines) {
        const double eff = effectiveTflops(cfg);
        const double power = EnergyModel::enginePowerW(cfg);
        const double area = EnergyModel::engineAreaMm2(cfg);
        table.addRow({cfg.name, TextTable::fmt(cfg.peakTflops(), 1),
                      TextTable::fmt(eff, 2), TextTable::fmt(power, 1),
                      TextTable::fmt(area, 1),
                      TextTable::fmt(eff / power, 3),
                      TextTable::fmt(eff / area, 3)});
        if (cfg.dataflow == Dataflow::kWeightStationary) {
            ws_pw = eff / power;
            ws_pa = eff / area;
        }
        if (cfg.dataflow == Dataflow::kOuterProduct) {
            dv_pw = eff / power;
            dv_pa = eff / area;
        }
    }
    table.print(std::cout);
    std::cout << "\npaper: DiVa 3.5x TFLOPS/W and 4.6x TFLOPS/mm^2 vs "
                 "WS; chip-wide overhead 0.3% area / 2.3% power\n";
    std::cout << "measured: " << TextTable::fmtX(dv_pw / ws_pw)
              << " TFLOPS/W and " << TextTable::fmtX(dv_pa / ws_pa)
              << " TFLOPS/mm^2 vs WS; chip-wide overhead "
              // The +17 mm^2 engine delta is synthesized at 65 nm while
              // the 650 mm^2 chip envelope is 12 nm; scale the area by
              // the node shrink before comparing, as the paper does.
              << TextTable::fmtPct(
                     (EnergyModel::engineAreaMm2(divaDefault(true)) -
                      EnergyModel::engineAreaMm2(tpuV3Ws())) *
                         (12.0 * 12.0) / (65.0 * 65.0) /
                         EnergyModel::kChipAreaMm2, 2)
              << " area / "
              << TextTable::fmtPct(
                     (EnergyModel::enginePowerW(divaDefault(true)) -
                      EnergyModel::enginePowerW(tpuV3Ws())) /
                         EnergyModel::kChipTdpW)
              << " power\n\n";
}

void
BM_EffectiveTflops(benchmark::State &state)
{
    const AcceleratorConfig cfg =
        state.range(0) == 0 ? tpuV3Ws()
        : state.range(0) == 1 ? systolicOs(true)
                              : divaDefault(true);
    for (auto _ : state)
        benchmark::DoNotOptimize(effectiveTflops(cfg));
}
BENCHMARK(BM_EffectiveTflops)
    ->DenseRange(0, 2)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printTableIII();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
