/**
 * @file
 * Ablation studies over DiVa's design parameters, extending the
 * paper's Section IV-D discussion: the drain rate R (PPU width), the
 * on-chip SRAM capacity, the PE-array aspect ratio, and the DRAM
 * bandwidth. Each sweep reports DP-SGD(R) iteration cycles.
 *
 * All sections are driven by the sweep subsystem: each ablation is a
 * SweepSpec whose config axis perturbs one parameter, executed on one
 * shared SweepRunner so design points that recur across sections (the
 * default DiVa config, the WS baseline) are simulated once and then
 * served from the result cache.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "common/logging.h"
#include "common/table.h"
#include "sweep/runner.h"
#include "sweep/spec.h"

using namespace diva;

namespace
{

const std::vector<std::string> kNets = {"ResNet-50", "BERT-base"};

using benchutil::runChecked;

SweepSpec
ablationSpec(std::vector<AcceleratorConfig> configs)
{
    SweepSpec spec;
    spec.configs = std::move(configs);
    spec.models = kNets;
    spec.algorithms = {TrainingAlgorithm::kDpSgdR};
    spec.batches = {kAutoBatch};
    return spec;
}

/** Cycles per (config index, model index) from an axis-major report. */
Cycles
cyclesAt(const SweepReport &report, std::size_t cfg_idx,
         std::size_t model_idx)
{
    return report.results[cfg_idx * kNets.size() + model_idx].cycles;
}

void
printAblation()
{
    SweepRunner runner;

    std::cout << "=== Ablation: PPU drain rate R (output rows/cycle) "
                 "===\n";
    std::vector<AcceleratorConfig> r_configs;
    const std::vector<int> r_values = {1, 2, 4, 8, 16, 32};
    for (int r : r_values) {
        AcceleratorConfig cfg = divaDefault(true);
        cfg.drainRowsPerCycle = r;
        r_configs.push_back(cfg);
    }
    const SweepReport r_report = runChecked(runner, ablationSpec(r_configs));
    const std::size_t r8 =
        std::size_t(std::find(r_values.begin(), r_values.end(), 8) -
                    r_values.begin());
    TextTable r_table({"R", "ResNet-50 cycles", "xR=8", "BERT-base "
                       "cycles", "xR=8"});
    for (std::size_t i = 0; i < r_values.size(); ++i) {
        std::vector<std::string> cells = {std::to_string(r_values[i])};
        for (std::size_t n = 0; n < kNets.size(); ++n) {
            const Cycles c = cyclesAt(r_report, i, n);
            cells.push_back(std::to_string(c));
            cells.push_back(TextTable::fmt(
                double(c) / double(cyclesAt(r_report, r8, n)), 3));
        }
        r_table.addRow(cells);
    }
    r_table.print(std::cout);

    std::cout << "\n=== Ablation: on-chip SRAM capacity ===\n";
    std::vector<AcceleratorConfig> s_configs;
    const std::vector<int> s_mibs = {2, 4, 8, 16, 32, 64};
    for (int mib : s_mibs) {
        AcceleratorConfig cfg = divaDefault(true);
        cfg.sramBytes = Bytes(mib) * 1_MiB;
        s_configs.push_back(cfg);
    }
    // The 16 MiB point is the default DiVa config already simulated in
    // the R sweep (R=8): the runner serves it from the cache.
    const SweepReport s_report = runChecked(runner, ablationSpec(s_configs));
    TextTable s_table({"SRAM (MiB)", "ResNet-50 cycles",
                       "BERT-base cycles"});
    for (std::size_t i = 0; i < s_mibs.size(); ++i)
        s_table.addRow({std::to_string(s_mibs[i]),
                        std::to_string(cyclesAt(s_report, i, 0)),
                        std::to_string(cyclesAt(s_report, i, 1))});
    s_table.print(std::cout);

    std::cout << "\n=== Ablation: PE-array aspect ratio (16384 MACs) "
                 "===\n";
    struct Aspect { int rows; int cols; };
    const std::vector<Aspect> aspects = {
        {32, 512}, {64, 256}, {128, 128}, {256, 64}, {512, 32}};
    std::vector<AcceleratorConfig> a_configs;
    for (const Aspect a : aspects) {
        AcceleratorConfig cfg = divaDefault(true);
        cfg.peRows = a.rows;
        cfg.peCols = a.cols;
        cfg.drainRowsPerCycle = std::min(cfg.drainRowsPerCycle, a.rows);
        a_configs.push_back(cfg);
    }
    const SweepReport a_report = runChecked(runner, ablationSpec(a_configs));
    TextTable a_table({"array", "ResNet-50 cycles", "BERT-base cycles"});
    for (std::size_t i = 0; i < aspects.size(); ++i)
        a_table.addRow({std::to_string(aspects[i].rows) + "x" +
                            std::to_string(aspects[i].cols),
                        std::to_string(cyclesAt(a_report, i, 0)),
                        std::to_string(cyclesAt(a_report, i, 1))});
    a_table.print(std::cout);

    std::cout << "\n=== Ablation: WS double-buffered weight latches "
                 "===\n";
    AcceleratorConfig ws_dbuf = tpuV3Ws();
    ws_dbuf.wsDoubleBufferWeights = true;
    ws_dbuf.name = "Systolic-WS+dbuf";
    const SweepReport w_report = runChecked(runner,
        ablationSpec({tpuV3Ws(), ws_dbuf, divaDefault(true)}));
    TextTable w_table({"model", "WS cycles", "WS+dbuf cycles",
                       "improvement", "DiVa speedup vs WS+dbuf"});
    for (std::size_t n = 0; n < kNets.size(); ++n) {
        const Cycles c0 = cyclesAt(w_report, 0, n);
        const Cycles c1 = cyclesAt(w_report, 1, n);
        const Cycles cd = cyclesAt(w_report, 2, n);
        w_table.addRow({kNets[n], std::to_string(c0),
                        std::to_string(c1),
                        TextTable::fmtX(double(c0) / double(c1), 3),
                        TextTable::fmtX(double(c1) / double(cd))});
    }
    w_table.print(std::cout);

    std::cout << "\n=== Ablation: micro-batching (logical batch = 4x "
                 "DP max) ===\n";
    TextTable m_table({"model", "micro-batch", "WS cycles",
                       "DiVa cycles", "DiVa speedup"});
    for (const std::string &net : kNets) {
        const int dp_batch = benchutil::dpBatch(buildModel(net));
        SweepSpec spec = ablationSpec({tpuV3Ws(), divaDefault(true)});
        spec.models = {net};
        spec.batches = {4 * dp_batch};
        spec.microbatches.clear();
        for (int mb : {dp_batch, dp_batch / 4, dp_batch / 16})
            if (mb >= 1)
                spec.microbatches.push_back(mb);
        const SweepReport report = runChecked(runner, spec);
        const std::size_t num_mb = spec.microbatches.size();
        for (std::size_t i = 0; i < num_mb; ++i) {
            const Cycles cw = report.results[i].cycles;
            const Cycles cd = report.results[num_mb + i].cycles;
            m_table.addRow({net,
                            std::to_string(spec.microbatches[i]),
                            std::to_string(cw), std::to_string(cd),
                            TextTable::fmtX(double(cw) / double(cd))});
        }
    }
    m_table.print(std::cout);

    std::cout << "\n=== Ablation: DRAM bandwidth (GB/s) ===\n";
    const std::vector<double> bws = {112.5, 225.0, 450.0, 900.0, 1800.0};
    std::vector<AcceleratorConfig> b_configs;
    for (double bw : bws)
        for (AcceleratorConfig cfg : {tpuV3Ws(), divaDefault(true)}) {
            cfg.dramBandwidthGBs = bw;
            b_configs.push_back(cfg);
        }
    SweepSpec b_spec = ablationSpec(std::move(b_configs));
    b_spec.models = {"ResNet-50"};
    const SweepReport b_report = runChecked(runner, b_spec);
    TextTable b_table({"bandwidth", "WS ResNet-50", "DiVa ResNet-50",
                       "DiVa speedup"});
    for (std::size_t i = 0; i < bws.size(); ++i) {
        const Cycles cw = b_report.results[2 * i].cycles;
        const Cycles cd = b_report.results[2 * i + 1].cycles;
        b_table.addRow({TextTable::fmt(bws[i], 1), std::to_string(cw),
                        std::to_string(cd),
                        TextTable::fmtX(double(cw) / double(cd))});
    }
    b_table.print(std::cout);

    std::cout << "\n=== Ablation: data-parallel pod scaling "
                 "(ResNet-152, global batch 512) ===\n";
    const std::vector<int> chip_counts = {1, 2, 4, 8, 16, 32};
    SweepSpec p_spec;
    p_spec.configs = {tpuV3Ws(), divaDefault(true)};
    p_spec.models = {"ResNet-152"};
    p_spec.algorithms = {TrainingAlgorithm::kDpSgdR};
    p_spec.batches = {512};
    p_spec.backends = {SweepBackend::kMultiChip};
    for (int chips : chip_counts) {
        MultiChipConfig pod;
        pod.numChips = chips;
        p_spec.pods.push_back(pod);
    }
    const SweepReport p_report = runChecked(runner, p_spec);
    // Efficiency baseline: the 1-chip pod of the same design point.
    TextTable p_table({"chips", "per-chip batch", "WS total cycles",
                       "DiVa total cycles", "DiVa efficiency"});
    const std::size_t num_pods = chip_counts.size();
    for (std::size_t i = 0; i < num_pods; ++i) {
        const Cycles ws_c = p_report.results[i].cycles;
        const Cycles dv_c = p_report.results[num_pods + i].cycles;
        const Cycles dv_single = p_report.results[num_pods].cycles;
        p_table.addRow(
            {std::to_string(chip_counts[i]),
             std::to_string(ceilDiv(512, chip_counts[i])),
             std::to_string(ws_c), std::to_string(dv_c),
             TextTable::fmtPct(double(dv_single) /
                               (double(chip_counts[i]) *
                                double(dv_c)))});
    }
    p_table.print(std::cout);
    std::cout << "\n";
}

void
BM_AblationDrainRate(benchmark::State &state)
{
    AcceleratorConfig cfg = divaDefault(true);
    cfg.drainRowsPerCycle = int(state.range(0));
    const Network net = resnet50();
    const OpStream stream = buildOpStream(
        net, TrainingAlgorithm::kDpSgdR, benchutil::dpBatch(net));
    const Executor exec(cfg);
    for (auto _ : state)
        benchmark::DoNotOptimize(exec.run(stream).totalCycles());
}
BENCHMARK(BM_AblationDrainRate)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

/** Throughput of the sweep engine itself over a 24-scenario spec. */
void
BM_SweepRunner(benchmark::State &state)
{
    SweepSpec spec;
    spec.configs = {tpuV3Ws(), systolicOs(true), divaDefault(false),
                    divaDefault(true)};
    spec.models = {"ResNet-50", "BERT-base"};
    spec.algorithms = {TrainingAlgorithm::kDpSgd,
                       TrainingAlgorithm::kDpSgdR};
    spec.batches = {16};
    spec.microbatches = {0};
    const std::vector<Scenario> scenarios = spec.expand().scenarios;
    SweepOptions opts;
    opts.threads = int(state.range(0));
    opts.cacheAcrossRuns = false; // measure simulation, not the cache
    SweepRunner runner(opts);
    for (auto _ : state)
        benchmark::DoNotOptimize(runner.run(scenarios).results.size());
}
BENCHMARK(BM_SweepRunner)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
