/**
 * @file
 * Ablation studies over DiVa's design parameters, extending the
 * paper's Section IV-D discussion: the drain rate R (PPU width), the
 * on-chip SRAM capacity, the PE-array aspect ratio, and the DRAM
 * bandwidth. Each sweep reports DP-SGD(R) iteration cycles.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "sim/multichip.h"
#include "common/table.h"

using namespace diva;

namespace
{

Cycles
cyclesFor(const AcceleratorConfig &cfg, const Network &net)
{
    return benchutil::runSim(cfg, net, TrainingAlgorithm::kDpSgdR,
                             benchutil::dpBatch(net))
        .totalCycles();
}

void
printAblation()
{
    const std::vector<Network> nets = {resnet50(), bertBase()};

    std::cout << "=== Ablation: PPU drain rate R (output rows/cycle) "
                 "===\n";
    TextTable r_table({"R", "ResNet-50 cycles", "xR=8", "BERT-base "
                       "cycles", "xR=8"});
    std::vector<Cycles> base(nets.size());
    for (std::size_t i = 0; i < nets.size(); ++i) {
        AcceleratorConfig cfg = divaDefault(true);
        base[i] = cyclesFor(cfg, nets[i]);
    }
    for (int r : {1, 2, 4, 8, 16, 32}) {
        AcceleratorConfig cfg = divaDefault(true);
        cfg.drainRowsPerCycle = r;
        std::vector<std::string> cells = {std::to_string(r)};
        for (std::size_t i = 0; i < nets.size(); ++i) {
            const Cycles c = cyclesFor(cfg, nets[i]);
            cells.push_back(std::to_string(c));
            cells.push_back(
                TextTable::fmt(double(c) / double(base[i]), 3));
        }
        r_table.addRow(cells);
    }
    r_table.print(std::cout);

    std::cout << "\n=== Ablation: on-chip SRAM capacity ===\n";
    TextTable s_table({"SRAM (MiB)", "ResNet-50 cycles",
                       "BERT-base cycles"});
    for (Bytes mib : {2, 4, 8, 16, 32, 64}) {
        AcceleratorConfig cfg = divaDefault(true);
        cfg.sramBytes = mib * 1_MiB;
        s_table.addRow({std::to_string(mib),
                        std::to_string(cyclesFor(cfg, nets[0])),
                        std::to_string(cyclesFor(cfg, nets[1]))});
    }
    s_table.print(std::cout);

    std::cout << "\n=== Ablation: PE-array aspect ratio (16384 MACs) "
                 "===\n";
    TextTable a_table({"array", "ResNet-50 cycles", "BERT-base cycles"});
    struct Aspect { int rows; int cols; };
    for (const Aspect a :
         {Aspect{32, 512}, Aspect{64, 256}, Aspect{128, 128},
          Aspect{256, 64}, Aspect{512, 32}}) {
        AcceleratorConfig cfg = divaDefault(true);
        cfg.peRows = a.rows;
        cfg.peCols = a.cols;
        cfg.drainRowsPerCycle = std::min(cfg.drainRowsPerCycle, a.rows);
        a_table.addRow({std::to_string(a.rows) + "x" +
                            std::to_string(a.cols),
                        std::to_string(cyclesFor(cfg, nets[0])),
                        std::to_string(cyclesFor(cfg, nets[1]))});
    }
    a_table.print(std::cout);

    std::cout << "\n=== Ablation: WS double-buffered weight latches "
                 "===\n";
    TextTable w_table({"model", "WS cycles", "WS+dbuf cycles",
                       "improvement", "DiVa speedup vs WS+dbuf"});
    for (const auto &net : nets) {
        AcceleratorConfig ws = tpuV3Ws();
        AcceleratorConfig ws_dbuf = tpuV3Ws();
        ws_dbuf.wsDoubleBufferWeights = true;
        const Cycles c0 = cyclesFor(ws, net);
        const Cycles c1 = cyclesFor(ws_dbuf, net);
        const Cycles cd = cyclesFor(divaDefault(true), net);
        w_table.addRow({net.name, std::to_string(c0),
                        std::to_string(c1),
                        TextTable::fmtX(double(c0) / double(c1), 3),
                        TextTable::fmtX(double(c1) / double(cd))});
    }
    w_table.print(std::cout);

    std::cout << "\n=== Ablation: micro-batching (logical batch = 4x "
                 "DP max) ===\n";
    TextTable m_table({"model", "micro-batch", "WS cycles",
                       "DiVa cycles", "DiVa speedup"});
    for (const auto &net : nets) {
        const int dp_batch = benchutil::dpBatch(net);
        const int logical = 4 * dp_batch;
        for (int mb : {dp_batch, dp_batch / 4, dp_batch / 16}) {
            if (mb < 1)
                continue;
            const OpStream stream = buildMicrobatchedOpStream(
                net, TrainingAlgorithm::kDpSgdR, logical, mb);
            const Cycles cw = Executor(tpuV3Ws()).run(stream)
                                  .totalCycles();
            const Cycles cd =
                Executor(divaDefault(true)).run(stream).totalCycles();
            m_table.addRow({net.name, std::to_string(mb),
                            std::to_string(cw), std::to_string(cd),
                            TextTable::fmtX(double(cw) / double(cd))});
        }
    }
    m_table.print(std::cout);

    std::cout << "\n=== Ablation: DRAM bandwidth (GB/s) ===\n";
    TextTable b_table({"bandwidth", "WS ResNet-50", "DiVa ResNet-50",
                       "DiVa speedup"});
    for (double bw : {112.5, 225.0, 450.0, 900.0, 1800.0}) {
        AcceleratorConfig ws = tpuV3Ws();
        AcceleratorConfig dv = divaDefault(true);
        ws.dramBandwidthGBs = bw;
        dv.dramBandwidthGBs = bw;
        const Cycles cw = cyclesFor(ws, nets[0]);
        const Cycles cd = cyclesFor(dv, nets[0]);
        b_table.addRow({TextTable::fmt(bw, 1), std::to_string(cw),
                        std::to_string(cd),
                        TextTable::fmtX(double(cw) / double(cd))});
    }
    b_table.print(std::cout);

    std::cout << "\n=== Ablation: data-parallel pod scaling "
                 "(ResNet-152, global batch 512) ===\n";
    TextTable p_table({"chips", "per-chip batch", "WS total cycles",
                       "DiVa total cycles", "DiVa efficiency"});
    for (int chips : {1, 2, 4, 8, 16, 32}) {
        MultiChipConfig pod;
        pod.numChips = chips;
        const ScalingResult ws = simulateDataParallel(
            tpuV3Ws(), resnet152(), TrainingAlgorithm::kDpSgdR, 512,
            pod);
        const ScalingResult dv = simulateDataParallel(
            divaDefault(true), resnet152(), TrainingAlgorithm::kDpSgdR,
            512, pod);
        p_table.addRow({std::to_string(chips),
                        std::to_string(dv.perChipBatch),
                        std::to_string(ws.totalCycles),
                        std::to_string(dv.totalCycles),
                        TextTable::fmtPct(dv.efficiency)});
    }
    p_table.print(std::cout);
    std::cout << "\n";
}

void
BM_AblationDrainRate(benchmark::State &state)
{
    AcceleratorConfig cfg = divaDefault(true);
    cfg.drainRowsPerCycle = int(state.range(0));
    const Network net = resnet50();
    const OpStream stream = buildOpStream(
        net, TrainingAlgorithm::kDpSgdR, benchutil::dpBatch(net));
    const Executor exec(cfg);
    for (auto _ : state)
        benchmark::DoNotOptimize(exec.run(stream).totalCycles());
}
BENCHMARK(BM_AblationDrainRate)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    printAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
