/**
 * @file
 * Figure 5: end-to-end training time of SGD vs DP-SGD vs DP-SGD(R) on
 * the TPUv3-like WS baseline, broken into forward/backward stages and
 * normalized to SGD. The paper reports average slowdowns of 9.1x
 * (DP-SGD) and 5.8x (DP-SGD(R)), backprop approaching 99% of DP time,
 * and DP-SGD(R) beating DP-SGD by ~31% on average.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "common/table.h"

using namespace diva;

namespace
{

void
printFigure5()
{
    std::cout << "=== Figure 5: training time breakdown on WS systolic "
                 "(normalized to SGD) ===\n";
    const AcceleratorConfig ws = tpuV3Ws();
    TextTable table({"model", "algorithm", "Fwd", "Bwd(act 1st)",
                     "Bwd(per-ex)", "Bwd(norm)", "Bwd(act 2nd)",
                     "Bwd(per-batch)", "Bwd(clip)", "Bwd(red/noise)",
                     "total (xSGD)"});
    std::vector<double> dp_slow, dpr_slow, bwd_frac, r_gain;
    for (const auto &net : allModels()) {
        const int batch = benchutil::dpBatch(net);
        const double sgd_total = double(
            benchutil::runSim(ws, net, TrainingAlgorithm::kSgd, batch)
                .totalCycles());
        double dp_total = 0.0;
        for (auto algo :
             {TrainingAlgorithm::kSgd, TrainingAlgorithm::kDpSgd,
              TrainingAlgorithm::kDpSgdR}) {
            const SimResult r =
                benchutil::runSim(ws, net, algo, batch);
            std::vector<std::string> cells = {net.name,
                                              algorithmName(algo)};
            for (Stage s : allStages()) {
                cells.push_back(TextTable::fmt(
                    double(r.stageCyclesFor(s)) / sgd_total, 2));
            }
            const double total = double(r.totalCycles()) / sgd_total;
            cells.push_back(TextTable::fmtX(total));
            table.addRow(cells);

            if (algo == TrainingAlgorithm::kDpSgd) {
                dp_slow.push_back(total);
                dp_total = double(r.totalCycles());
            } else if (algo == TrainingAlgorithm::kDpSgdR) {
                dpr_slow.push_back(total);
                r_gain.push_back(dp_total / double(r.totalCycles()));
                bwd_frac.push_back(
                    1.0 - double(r.stageCyclesFor(Stage::kForward)) /
                              double(r.totalCycles()));
            }
        }
        table.addSeparator();
    }
    table.print(std::cout);
    std::cout << "\npaper: DP-SGD avg 9.1x / DP-SGD(R) avg 5.8x slower "
                 "than SGD; backprop ~99% of DP time; DP-SGD(R) ~31% "
                 "faster than DP-SGD\n";
    std::cout << "measured: DP-SGD avg "
              << TextTable::fmtX(benchutil::geomean(dp_slow))
              << ", DP-SGD(R) avg "
              << TextTable::fmtX(benchutil::geomean(dpr_slow))
              << " slower than SGD; backprop share avg "
              << TextTable::fmtPct(benchutil::geomean(bwd_frac))
              << "; DP-SGD(R) gain avg "
              << TextTable::fmtX(benchutil::geomean(r_gain)) << "\n\n";
}

void
BM_SimulateIteration(benchmark::State &state)
{
    const Network net = allModels()[std::size_t(state.range(0))];
    const auto algo = static_cast<TrainingAlgorithm>(state.range(1));
    const int batch = benchutil::dpBatch(net);
    const AcceleratorConfig cfg = tpuV3Ws();
    const OpStream stream = buildOpStream(net, algo, batch);
    const Executor exec(cfg);
    for (auto _ : state)
        benchmark::DoNotOptimize(exec.run(stream).totalCycles());
    state.counters["slowdown_vs_sgd"] = benchmark::Counter(
        double(exec.run(stream).totalCycles()) /
        double(exec.run(buildOpStream(net, TrainingAlgorithm::kSgd,
                                      batch))
                   .totalCycles()));
}
BENCHMARK(BM_SimulateIteration)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6, 7, 8}, {0, 1, 2}})
    ->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    printFigure5();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
