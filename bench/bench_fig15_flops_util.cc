/**
 * @file
 * Figure 15: FLOPS-utilization improvement over the WS baseline per
 * GEMM class, for the OS systolic array and DiVa. The paper reports
 * the largest gains on per-example weight gradients: avg 5.5x for
 * CNNs (max 28.9x, SqueezeNet) and 2.2x for Transformers/RNNs.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "common/table.h"

using namespace diva;

namespace
{

const Stage kClasses[] = {Stage::kForward, Stage::kActGrad1,
                          Stage::kPerBatchGrad, Stage::kPerExampleGrad};

void
printFigure15()
{
    std::cout << "=== Figure 15: FLOPS utilization improvement vs WS "
                 "===\n";
    TextTable table({"model", "stage", "WS util", "OS (xWS)",
                     "DiVa (xWS)"});
    std::vector<double> cnn_pe, nlp_pe;
    double max_pe = 0.0;
    std::string max_model;
    const AcceleratorConfig ws_cfg = tpuV3Ws();
    const AcceleratorConfig os_cfg = systolicOs(true);
    const AcceleratorConfig dv_cfg = divaDefault(true);
    for (const auto &net : allModels()) {
        const int batch = benchutil::dpBatch(net);
        const SimResult ws = benchutil::runSim(
            ws_cfg, net, TrainingAlgorithm::kDpSgdR, batch);
        const SimResult os = benchutil::runSim(
            os_cfg, net, TrainingAlgorithm::kDpSgdR, batch);
        const SimResult dv = benchutil::runSim(
            dv_cfg, net, TrainingAlgorithm::kDpSgdR, batch);
        for (Stage s : kClasses) {
            const double u_ws = ws.stageUtilization(s, ws_cfg);
            const double u_os = os.stageUtilization(s, os_cfg);
            const double u_dv = dv.stageUtilization(s, dv_cfg);
            table.addRow({net.name, stageName(s),
                          TextTable::fmtPct(u_ws),
                          TextTable::fmtX(u_os / u_ws),
                          TextTable::fmtX(u_dv / u_ws)});
            if (s == Stage::kPerExampleGrad) {
                const double gain = u_dv / u_ws;
                if (net.family == ModelFamily::kCnn)
                    cnn_pe.push_back(gain);
                else
                    nlp_pe.push_back(gain);
                if (gain > max_pe) {
                    max_pe = gain;
                    max_model = net.name;
                }
            }
        }
        table.addSeparator();
    }
    table.print(std::cout);
    std::cout << "\npaper: per-example wgrad utilization gain avg 5.5x "
                 "on CNNs (max 28.9x, SqueezeNet), 2.2x on "
                 "Transformers/RNNs\n";
    std::cout << "measured: CNN avg "
              << TextTable::fmtX(benchutil::geomean(cnn_pe)) << " (max "
              << TextTable::fmtX(max_pe) << ", " << max_model
              << "); Transformer/RNN avg "
              << TextTable::fmtX(benchutil::geomean(nlp_pe)) << "\n\n";
}

void
BM_UtilizationSweep(benchmark::State &state)
{
    const Network net = allModels()[std::size_t(state.range(0))];
    const AcceleratorConfig cfg = divaDefault(true);
    const OpStream stream = buildOpStream(
        net, TrainingAlgorithm::kDpSgdR, benchutil::dpBatch(net));
    const Executor exec(cfg);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            exec.run(stream).overallUtilization(cfg));
    }
}
BENCHMARK(BM_UtilizationSweep)
    ->DenseRange(0, 8)
    ->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    printFigure15();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
