/**
 * @file
 * Figure 7: TPUv3 (WS) FLOPS utilization during the key GEMM classes
 * of forward and backpropagation. The per-example weight-gradient
 * GEMMs must show consistently the lowest utilization.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "gemm/shape_stats.h"
#include "sim/roofline.h"
#include "common/table.h"

using namespace diva;

namespace
{

void
printFigure7()
{
    std::cout << "=== Figure 7: WS systolic FLOPS utilization by GEMM "
                 "class ===\n";
    const AcceleratorConfig ws = tpuV3Ws();
    TextTable table({"model", "family", "Fwdprop", "Bwd(act grad)",
                     "Bwd(per-batch grad)", "Bwd(per-example grad)"});
    std::vector<double> pe_util, other_util;
    for (const auto &net : allModels()) {
        const int batch = benchutil::dpBatch(net);
        // DP-SGD(R) exercises all four GEMM classes in one iteration.
        const SimResult r = benchutil::runSim(
            ws, net, TrainingAlgorithm::kDpSgdR, batch);
        const double fwd = r.stageUtilization(Stage::kForward, ws);
        const double act = r.stageUtilization(Stage::kActGrad1, ws);
        const double pb = r.stageUtilization(Stage::kPerBatchGrad, ws);
        const double pe =
            r.stageUtilization(Stage::kPerExampleGrad, ws);
        table.addRow({net.name, familyName(net.family),
                      TextTable::fmtPct(fwd), TextTable::fmtPct(act),
                      TextTable::fmtPct(pb), TextTable::fmtPct(pe)});
        pe_util.push_back(pe);
        other_util.push_back((fwd + act + pb) / 3.0);
    }
    table.print(std::cout);
    std::cout << "\npaper: per-example wgrad GEMMs exhibit consistently "
                 "the lowest utilization of all GEMM classes\n";
    std::cout << "measured: per-example avg "
              << TextTable::fmtPct(benchutil::geomean(pe_util))
              << " vs other classes avg "
              << TextTable::fmtPct(benchutil::geomean(other_util))
              << "\n\n";

    // Section III-C's companion diagnosis: how much of the iteration
    // sits under the memory roofline, per engine.
    std::cout << "=== Roofline: memory-bound cycle share (DP-SGD(R)) "
                 "===\n";
    TextTable roof({"model", "WS", "DiVa"});
    for (const auto &net : allModels()) {
        const int batch = benchutil::dpBatch(net);
        const OpStream stream =
            buildOpStream(net, TrainingAlgorithm::kDpSgdR, batch);
        const RooflineSummary ws_r =
            analyzeRoofline(tpuV3Ws(), stream);
        const RooflineSummary dv_r =
            analyzeRoofline(divaDefault(true), stream);
        roof.addRow({net.name,
                     TextTable::fmtPct(ws_r.memoryBoundCycleShare),
                     TextTable::fmtPct(dv_r.memoryBoundCycleShare)});
    }
    roof.print(std::cout);

    // The K-dimension distribution behind the utilization collapse:
    // DP-SGD's per-example GEMMs flood the stream with small K.
    std::cout << "\n=== GEMM K-dimension distribution (share of GEMM "
                 "count) ===\n";
    TextTable kdist({"model", "algo", "K=1", "K<=8", "K<=32", "K<=128",
                     "K<=512", "K>512", "GEMMs"});
    for (const auto &net : allModels()) {
        const int batch = benchutil::dpBatch(net);
        for (auto algo :
             {TrainingAlgorithm::kSgd, TrainingAlgorithm::kDpSgd}) {
            const ShapeStats stats =
                collectShapeStats(buildOpStream(net, algo, batch));
            std::vector<std::string> cells = {net.name,
                                              algorithmName(algo)};
            for (std::size_t b = 0;
                 b < KDimHistogram::kNumBuckets; ++b) {
                cells.push_back(TextTable::fmtPct(
                    double(stats.all.counts[b]) /
                    double(std::max<std::uint64_t>(
                        stats.all.totalGemms, 1))));
            }
            cells.push_back(std::to_string(stats.all.totalGemms));
            kdist.addRow(cells);
        }
    }
    kdist.print(std::cout);
    std::cout << "\n";
}

void
BM_StageUtilization(benchmark::State &state)
{
    const Network net = allModels()[std::size_t(state.range(0))];
    const AcceleratorConfig ws = tpuV3Ws();
    const OpStream stream = buildOpStream(
        net, TrainingAlgorithm::kDpSgdR, benchutil::dpBatch(net));
    const Executor exec(ws);
    double util = 0.0;
    for (auto _ : state) {
        const SimResult r = exec.run(stream);
        util = r.stageUtilization(Stage::kPerExampleGrad, ws);
        benchmark::DoNotOptimize(util);
    }
    state.counters["per_example_util"] = benchmark::Counter(util);
}
BENCHMARK(BM_StageUtilization)
    ->DenseRange(0, 8)
    ->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    printFigure7();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
