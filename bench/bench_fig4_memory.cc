/**
 * @file
 * Figure 4 + Section III-A: memory-usage breakdown of SGD, DP-SGD and
 * DP-SGD(R) (normalized to SGD, identical mini-batch), and the maximum
 * feasible mini-batch per algorithm under TPUv3's 16 GiB HBM.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "common/table.h"

using namespace diva;

namespace
{

void
printFigure4()
{
    std::cout << "=== Figure 4: memory usage breakdown (normalized to "
                 "SGD, same mini-batch) ===\n";
    TextTable table({"model", "algorithm", "weights", "activations",
                     "per-batch G(W)", "per-example G(W)", "else",
                     "total (xSGD)"});
    for (const auto &net : allModels()) {
        const int batch = benchutil::dpBatch(net);
        const double sgd_total = double(
            trainingMemory(net, TrainingAlgorithm::kSgd, batch).total());
        for (auto algo :
             {TrainingAlgorithm::kSgd, TrainingAlgorithm::kDpSgd,
              TrainingAlgorithm::kDpSgdR}) {
            const MemoryBreakdown mb = trainingMemory(net, algo, batch);
            auto norm = [&](Bytes b) {
                return TextTable::fmt(double(b) / sgd_total, 3);
            };
            table.addRow({net.name, algorithmName(algo),
                          norm(mb.weights), norm(mb.activations),
                          norm(mb.perBatchGrad), norm(mb.perExampleGrad),
                          norm(mb.other),
                          TextTable::fmtX(double(mb.total()) / sgd_total)});
        }
        table.addSeparator();
    }
    table.print(std::cout);

    // Aggregate claims of the paper's Section III-A.
    std::vector<double> dp_ratio, dpr_saving, pe_share;
    for (const auto &net : allModels()) {
        const int batch = benchutil::dpBatch(net);
        const double sgd = double(
            trainingMemory(net, TrainingAlgorithm::kSgd, batch).total());
        const MemoryBreakdown dp =
            trainingMemory(net, TrainingAlgorithm::kDpSgd, batch);
        const double dpr = double(
            trainingMemory(net, TrainingAlgorithm::kDpSgdR, batch)
                .total());
        dp_ratio.push_back(double(dp.total()) / sgd);
        dpr_saving.push_back(double(dp.total()) / dpr);
        pe_share.push_back(double(dp.perExampleGrad) /
                           double(dp.total()));
    }
    std::cout << "\npaper: DP-SGD up to 11x SGD memory; per-example "
                 "grads avg 78% of DP-SGD; DP-SGD(R) saves avg 3.8x\n";
    std::cout << "measured: DP-SGD avg " << std::fixed
              << benchutil::geomean(dp_ratio)
              << "x SGD memory; per-example share avg "
              << benchutil::geomean(pe_share) * 100.0
              << "%; DP-SGD(R) saves avg "
              << benchutil::geomean(dpr_saving) << "x\n\n";

    std::cout << "=== Section III-A: max mini-batch under 16 GiB ===\n";
    TextTable batches({"model", "SGD", "DP-SGD", "DP-SGD(R)",
                       "SGD / DP-SGD"});
    for (const auto &net : allModels()) {
        const int sgd =
            maxBatchSize(net, TrainingAlgorithm::kSgd, 16_GiB);
        const int dp =
            maxBatchSize(net, TrainingAlgorithm::kDpSgd, 16_GiB);
        const int dpr =
            maxBatchSize(net, TrainingAlgorithm::kDpSgdR, 16_GiB);
        batches.addRow({net.name, std::to_string(sgd),
                        std::to_string(dp), std::to_string(dpr),
                        TextTable::fmtX(double(sgd) / double(dp), 1)});
    }
    batches.print(std::cout);
    std::cout << "\n";
}

void
BM_MemoryModel(benchmark::State &state)
{
    const Network net = allModels()[std::size_t(state.range(0))];
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            trainingMemory(net, TrainingAlgorithm::kDpSgd, 64).total());
    }
}
BENCHMARK(BM_MemoryModel)->DenseRange(0, 8)->Unit(benchmark::kNanosecond);

void
BM_MaxBatchSearch(benchmark::State &state)
{
    const Network net = allModels()[std::size_t(state.range(0))];
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            maxBatchSize(net, TrainingAlgorithm::kDpSgd, 16_GiB));
    }
}
BENCHMARK(BM_MaxBatchSearch)
    ->DenseRange(0, 8)
    ->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    printFigure4();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
