/**
 * @file
 * Section VI-C sensitivity: DiVa's end-to-end speedup over WS when the
 * CNN input images grow 4x/16x/64x (side 64/128/256) and when the
 * Transformer/RNN sequence length grows 2x/4x/8x (64/128/256). Larger
 * inputs populate systolic arrays better, so the advantage shrinks:
 * the paper reports 3.6x/2.1x/1.7x (images) and 2.0x/1.6x/1.5x
 * (sequences).
 *
 * Both tables are one SweepSpec each: the input scale is a sweep axis
 * ({WS, DiVa} x models x scales), and speedups are read off the
 * axis-major report.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "common/logging.h"
#include "common/table.h"
#include "sweep/runner.h"
#include "sweep/spec.h"

using namespace diva;

namespace
{

const std::vector<int> kScales = {32, 64, 128, 256};

/**
 * Sweep {WS, DiVa} x models x scales and print one speedup row per
 * model; returns per-scale speedup columns for the geomean footer.
 */
std::vector<std::vector<double>>
printSpeedups(SweepRunner &runner, const std::vector<std::string> &models,
              TextTable &table)
{
    SweepSpec spec;
    spec.configs = {tpuV3Ws(), divaDefault(true)};
    spec.models = models;
    spec.modelScales = kScales;
    spec.algorithms = {TrainingAlgorithm::kDpSgdR};
    spec.batches = {kAutoBatch};
    const SweepReport report = benchutil::runChecked(runner, spec);

    const std::size_t num_scales = kScales.size();
    auto cycles = [&](std::size_t cfg, std::size_t model,
                      std::size_t scale) {
        return report
            .results[(cfg * models.size() + model) * num_scales + scale]
            .cycles;
    };

    std::vector<std::vector<double>> cols(num_scales);
    for (std::size_t m = 0; m < models.size(); ++m) {
        std::vector<std::string> cells = {models[m]};
        for (std::size_t s = 0; s < num_scales; ++s) {
            const double speedup =
                double(cycles(0, m, s)) / double(cycles(1, m, s));
            cells.push_back(TextTable::fmtX(speedup));
            cols[s].push_back(speedup);
        }
        table.addRow(cells);
    }
    table.print(std::cout);
    return cols;
}

void
printSensitivity()
{
    SweepRunner runner;

    std::cout << "=== Section VI-C: DiVa speedup vs WS, scaled image "
                 "sizes ===\n";
    TextTable img({"model", "32x32 (x1)", "64x64 (x4)", "128x128 (x16)",
                   "256x256 (x64)"});
    const std::vector<std::vector<double>> img_cols = printSpeedups(
        runner,
        {"VGG-16", "ResNet-50", "ResNet-152", "SqueezeNet", "MobileNet"},
        img);
    std::cout << "paper avg (x4/x16/x64): 3.6x / 2.1x / 1.7x; measured "
                 "avg: "
              << TextTable::fmtX(benchutil::geomean(img_cols[1])) << " / "
              << TextTable::fmtX(benchutil::geomean(img_cols[2])) << " / "
              << TextTable::fmtX(benchutil::geomean(img_cols[3]))
              << "\n\n";

    std::cout << "=== Section VI-C: DiVa speedup vs WS, scaled sequence "
                 "lengths ===\n";
    TextTable seq({"model", "L=32 (x1)", "L=64 (x2)", "L=128 (x4)",
                   "L=256 (x8)"});
    const std::vector<std::vector<double>> seq_cols = printSpeedups(
        runner, {"BERT-base", "BERT-large", "LSTM-small", "LSTM-large"},
        seq);
    std::cout << "paper avg (x2/x4/x8): 2.0x / 1.6x / 1.5x; measured "
                 "avg: "
              << TextTable::fmtX(benchutil::geomean(seq_cols[1])) << " / "
              << TextTable::fmtX(benchutil::geomean(seq_cols[2])) << " / "
              << TextTable::fmtX(benchutil::geomean(seq_cols[3]))
              << "\n\n";
}

void
BM_SensitivityPoint(benchmark::State &state)
{
    const int size = int(state.range(0));
    const Network net = resnet50(size);
    const OpStream stream = buildOpStream(
        net, TrainingAlgorithm::kDpSgdR, benchutil::dpBatch(net));
    const Executor exec(divaDefault(true));
    for (auto _ : state)
        benchmark::DoNotOptimize(exec.run(stream).totalCycles());
}
BENCHMARK(BM_SensitivityPoint)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    printSensitivity();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
