/**
 * @file
 * Section VI-C sensitivity: DiVa's end-to-end speedup over WS when the
 * CNN input images grow 4x/16x/64x (side 64/128/256) and when the
 * Transformer/RNN sequence length grows 2x/4x/8x (64/128/256). Larger
 * inputs populate systolic arrays better, so the advantage shrinks:
 * the paper reports 3.6x/2.1x/1.7x (images) and 2.0x/1.6x/1.5x
 * (sequences).
 */

#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

using namespace diva;

namespace
{

double
speedupAt(const Network &net)
{
    const int batch = benchutil::dpBatch(net);
    const Cycles ws = benchutil::runSim(
        tpuV3Ws(), net, TrainingAlgorithm::kDpSgdR, batch)
        .totalCycles();
    const Cycles dv = benchutil::runSim(
        divaDefault(true), net, TrainingAlgorithm::kDpSgdR, batch)
        .totalCycles();
    return double(ws) / double(dv);
}

void
printSensitivity()
{
    using Builder = std::function<Network(int)>;
    const std::vector<std::pair<const char *, Builder>> cnns = {
        {"VGG-16", [](int s) { return vgg16(s); }},
        {"ResNet-50", [](int s) { return resnet50(s); }},
        {"ResNet-152", [](int s) { return resnet152(s); }},
        {"SqueezeNet", [](int s) { return squeezenet(s); }},
        {"MobileNet", [](int s) { return mobilenet(s); }},
    };
    const std::vector<std::pair<const char *, Builder>> nlps = {
        {"BERT-base", [](int l) { return bertBase(l); }},
        {"BERT-large", [](int l) { return bertLarge(l); }},
        {"LSTM-small", [](int l) { return lstmSmall(l); }},
        {"LSTM-large", [](int l) { return lstmLarge(l); }},
    };

    std::cout << "=== Section VI-C: DiVa speedup vs WS, scaled image "
                 "sizes ===\n";
    TextTable img({"model", "32x32 (x1)", "64x64 (x4)", "128x128 (x16)",
                   "256x256 (x64)"});
    std::vector<std::vector<double>> img_cols(4);
    for (const auto &[name, build] : cnns) {
        std::vector<std::string> cells = {name};
        int col = 0;
        for (int size : {32, 64, 128, 256}) {
            const double s = speedupAt(build(size));
            cells.push_back(TextTable::fmtX(s));
            img_cols[std::size_t(col++)].push_back(s);
        }
        img.addRow(cells);
    }
    img.print(std::cout);
    std::cout << "paper avg (x4/x16/x64): 3.6x / 2.1x / 1.7x; measured "
                 "avg: "
              << TextTable::fmtX(benchutil::geomean(img_cols[1])) << " / "
              << TextTable::fmtX(benchutil::geomean(img_cols[2])) << " / "
              << TextTable::fmtX(benchutil::geomean(img_cols[3]))
              << "\n\n";

    std::cout << "=== Section VI-C: DiVa speedup vs WS, scaled sequence "
                 "lengths ===\n";
    TextTable seq({"model", "L=32 (x1)", "L=64 (x2)", "L=128 (x4)",
                   "L=256 (x8)"});
    std::vector<std::vector<double>> seq_cols(4);
    for (const auto &[name, build] : nlps) {
        std::vector<std::string> cells = {name};
        int col = 0;
        for (int len : {32, 64, 128, 256}) {
            const double s = speedupAt(build(len));
            cells.push_back(TextTable::fmtX(s));
            seq_cols[std::size_t(col++)].push_back(s);
        }
        seq.addRow(cells);
    }
    seq.print(std::cout);
    std::cout << "paper avg (x2/x4/x8): 2.0x / 1.6x / 1.5x; measured "
                 "avg: "
              << TextTable::fmtX(benchutil::geomean(seq_cols[1])) << " / "
              << TextTable::fmtX(benchutil::geomean(seq_cols[2])) << " / "
              << TextTable::fmtX(benchutil::geomean(seq_cols[3]))
              << "\n\n";
}

void
BM_SensitivityPoint(benchmark::State &state)
{
    const int size = int(state.range(0));
    const Network net = resnet50(size);
    const OpStream stream = buildOpStream(
        net, TrainingAlgorithm::kDpSgdR, benchutil::dpBatch(net));
    const Executor exec(divaDefault(true));
    for (auto _ : state)
        benchmark::DoNotOptimize(exec.run(stream).totalCycles());
}
BENCHMARK(BM_SensitivityPoint)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    printSensitivity();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
