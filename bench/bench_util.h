/**
 * @file
 * Shared helpers for the figure/table reproduction benchmarks.
 *
 * Every bench binary prints its paper artifact (the same rows/series
 * the paper reports) and then runs google-benchmark microbenchmarks
 * that time the underlying simulations.
 */

#ifndef DIVA_BENCH_BENCH_UTIL_H
#define DIVA_BENCH_BENCH_UTIL_H

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <utility>
#include <string>
#include <vector>

#include "arch/accelerator_config.h"
#include "common/format.h"
#include "common/logging.h"
#include "models/zoo.h"
#include "obs/profile.h"
#include "sim/executor.h"
#include "sweep/runner.h"
#include "sweep/spec.h"
#include "train/memory_model.h"
#include "train/planner.h"

namespace diva
{
namespace benchutil
{

/** Geometric mean of a series of ratios. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / double(values.size()));
}

/**
 * Figure-5/13 protocol: the mini-batch is the largest that vanilla
 * DP-SGD fits under TPUv3's 16 GiB HBM; all algorithms then use it.
 */
inline int
dpBatch(const Network &net)
{
    // Key on the activation footprint too: sensitivity builds scaled
    // variants that share the model name.
    static std::map<std::pair<std::string, Elems>, int> cache;
    const auto key =
        std::make_pair(net.name, net.activationElemsPerExample());
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    const int batch = std::max(
        1, maxBatchSize(net, TrainingAlgorithm::kDpSgd, 16_GiB));
    cache[key] = batch;
    return batch;
}

/** Plan + simulate one iteration. */
inline SimResult
runSim(const AcceleratorConfig &cfg, const Network &net,
       TrainingAlgorithm algo, int batch)
{
    return Executor(cfg).run(buildOpStream(net, algo, batch));
}

/**
 * Expand and run a sweep spec for a bench that will index the report
 * positionally: fatals if expansion dropped any scenario (invalid or
 * duplicate axis point would shift every later index) or if any
 * scenario failed, so tables never silently tabulate wrong rows.
 */
inline SweepReport
runChecked(SweepRunner &runner, const SweepSpec &spec)
{
    const SweepSpec::Expansion e = spec.expand();
    if (e.invalidSkipped || e.duplicatesRemoved)
        DIVA_FATAL("sweep axes dropped scenarios (", e.invalidSkipped,
                   " invalid, ", e.duplicatesRemoved,
                   " duplicates); positional table indexing would be "
                   "misaligned");
    SweepReport report = runner.run(e.scenarios);
    for (const ScenarioResult &r : report.results)
        if (!r.ok())
            DIVA_FATAL("sweep scenario failed: ", r.scenario.label(),
                       ": ", r.error);
    return report;
}

/** The four design points of Figures 13/14/16. */
inline std::vector<AcceleratorConfig>
designPoints()
{
    return {tpuV3Ws(), systolicOs(true), divaDefault(false),
            divaDefault(true)};
}

/**
 * `git describe --always --dirty` of the checkout the bench runs in,
 * or "unknown" outside a git work tree. Stamped into every
 * BENCH_*.json so a tracked perf number is attributable to a commit.
 */
inline std::string
gitDescribe()
{
    std::string out = "unknown";
#ifndef _WIN32
    if (std::FILE *pipe =
            ::popen("git describe --always --dirty 2>/dev/null", "r")) {
        char buf[256];
        std::string raw;
        while (std::fgets(buf, sizeof(buf), pipe))
            raw += buf;
        const int rc = ::pclose(pipe);
        while (!raw.empty() &&
               (raw.back() == '\n' || raw.back() == '\r'))
            raw.pop_back();
        if (rc == 0 && !raw.empty() &&
            raw.find('"') == std::string::npos &&
            raw.find('\\') == std::string::npos)
            out = raw;
    }
#endif
    return out;
}

/**
 * Consume `--out <path>` / `--out=<path>` from argv (they must be
 * stripped before benchmark::Initialize, which rejects flags it does
 * not know) and return the BENCH_*.json destination, `def` when the
 * flag is absent.
 */
inline std::string
benchOutPath(int &argc, char **argv, const std::string &def)
{
    std::string path = def;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            path = argv[++i];
            continue;
        }
        if (arg.rfind("--out=", 0) == 0) {
            path = arg.substr(6);
            continue;
        }
        argv[w++] = argv[i];
    }
    argc = w;
    argv[argc] = nullptr;
    return path;
}

/** One BENCH_*.json metric: field name plus the unit it is read in. */
struct BenchField
{
    std::string name;
    std::string unit;
};

/**
 * Write one BENCH_*.json: a metadata prologue (bench name, git
 * describe, a units map covering every metric field) followed by one
 * array of pre-rendered row objects. All three bench emitters
 * (bench_serve, bench_sweep, bench_fleet) share this shape so
 * ci/check_bench.py can diff any of them against its baseline.
 *
 * When the wall-clock Profiler has accumulated phases (the bench
 * mains enable it around their artifact runs), a top-level "profile"
 * object is appended -- phase name to {seconds, calls} -- so
 * check_bench.py can report phase-level timing drift alongside the
 * row metrics. Top-level on purpose: the rows (what the row-matching
 * in check_bench.py keys on) are unchanged whether profiling ran.
 */
inline bool
writeBenchJson(const std::string &path, const std::string &bench,
               const std::vector<BenchField> &units,
               const std::string &arrayName,
               const std::vector<std::string> &rows)
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << "{\n  \"bench\": \"" << bench << "\",\n  \"git\": \""
       << gitDescribe() << "\",\n  \"units\": {\n";
    for (std::size_t i = 0; i < units.size(); ++i)
        os << "    \"" << units[i].name << "\": \"" << units[i].unit
           << "\"" << (i + 1 < units.size() ? "," : "") << "\n";
    os << "  },\n  \"" << arrayName << "\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i)
        os << "    " << rows[i] << (i + 1 < rows.size() ? "," : "")
           << "\n";
    os << "  ]";
    const auto phases = obs::Profiler::instance().phases();
    if (!phases.empty()) {
        os << ",\n  \"profile\": {\n";
        std::size_t i = 0;
        for (const auto &[name, phase] : phases)
            os << "    \"" << jsonEscape(name) << "\": {\"seconds\": "
               << jsonNumber(phase.seconds) << ", \"calls\": "
               << phase.calls << "}"
               << (++i < phases.size() ? "," : "") << "\n";
        os << "  }";
    }
    os << "\n}\n";
    os.flush();
    return bool(os);
}

} // namespace benchutil
} // namespace diva

#endif // DIVA_BENCH_BENCH_UTIL_H
