/**
 * @file
 * Shared helpers for the figure/table reproduction benchmarks.
 *
 * Every bench binary prints its paper artifact (the same rows/series
 * the paper reports) and then runs google-benchmark microbenchmarks
 * that time the underlying simulations.
 */

#ifndef DIVA_BENCH_BENCH_UTIL_H
#define DIVA_BENCH_BENCH_UTIL_H

#include <cmath>
#include <map>
#include <utility>
#include <string>
#include <vector>

#include "arch/accelerator_config.h"
#include "common/logging.h"
#include "models/zoo.h"
#include "sim/executor.h"
#include "sweep/runner.h"
#include "sweep/spec.h"
#include "train/memory_model.h"
#include "train/planner.h"

namespace diva
{
namespace benchutil
{

/** Geometric mean of a series of ratios. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / double(values.size()));
}

/**
 * Figure-5/13 protocol: the mini-batch is the largest that vanilla
 * DP-SGD fits under TPUv3's 16 GiB HBM; all algorithms then use it.
 */
inline int
dpBatch(const Network &net)
{
    // Key on the activation footprint too: sensitivity builds scaled
    // variants that share the model name.
    static std::map<std::pair<std::string, Elems>, int> cache;
    const auto key =
        std::make_pair(net.name, net.activationElemsPerExample());
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    const int batch = std::max(
        1, maxBatchSize(net, TrainingAlgorithm::kDpSgd, 16_GiB));
    cache[key] = batch;
    return batch;
}

/** Plan + simulate one iteration. */
inline SimResult
runSim(const AcceleratorConfig &cfg, const Network &net,
       TrainingAlgorithm algo, int batch)
{
    return Executor(cfg).run(buildOpStream(net, algo, batch));
}

/**
 * Expand and run a sweep spec for a bench that will index the report
 * positionally: fatals if expansion dropped any scenario (invalid or
 * duplicate axis point would shift every later index) or if any
 * scenario failed, so tables never silently tabulate wrong rows.
 */
inline SweepReport
runChecked(SweepRunner &runner, const SweepSpec &spec)
{
    const SweepSpec::Expansion e = spec.expand();
    if (e.invalidSkipped || e.duplicatesRemoved)
        DIVA_FATAL("sweep axes dropped scenarios (", e.invalidSkipped,
                   " invalid, ", e.duplicatesRemoved,
                   " duplicates); positional table indexing would be "
                   "misaligned");
    SweepReport report = runner.run(e.scenarios);
    for (const ScenarioResult &r : report.results)
        if (!r.ok())
            DIVA_FATAL("sweep scenario failed: ", r.scenario.label(),
                       ": ", r.error);
    return report;
}

/** The four design points of Figures 13/14/16. */
inline std::vector<AcceleratorConfig>
designPoints()
{
    return {tpuV3Ws(), systolicOs(true), divaDefault(false),
            divaDefault(true)};
}

} // namespace benchutil
} // namespace diva

#endif // DIVA_BENCH_BENCH_UTIL_H
