/**
 * @file
 * Figure 17: DiVa vs NVIDIA V100/A100 GPUs (with and without Tensor
 * Cores) on the key GEMMs of DP-SGD's backpropagation bottleneck
 * stages. The paper reports DiVa averaging 1.2x over V100 and ~1.0x
 * over A100 with Tensor Cores enabled, despite having only a fraction
 * of their peak throughput -- with MobileNet as the exception where
 * the GPUs' SIMD mapping of tiny GEMMs wins.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "common/logging.h"
#include "common/table.h"
#include "gpu/gpu_model.h"
#include "sweep/runner.h"

using namespace diva;

namespace
{

/** DiVa's time on the same backprop bottleneck stages (seconds). */
double
divaBottleneckSeconds(const Network &net, int batch)
{
    const AcceleratorConfig cfg = divaDefault(true);
    const SimResult r = benchutil::runSim(
        cfg, net, TrainingAlgorithm::kDpSgdR, batch);
    Cycles cycles = 0;
    for (Stage s : {Stage::kActGrad1, Stage::kPerExampleGrad,
                    Stage::kGradNorm, Stage::kActGrad2,
                    Stage::kPerBatchGrad, Stage::kReduceNoise})
        cycles += r.stageCyclesFor(s);
    return cfg.cyclesToSeconds(cycles);
}

void
printFigure17()
{
    std::cout << "=== Figure 17: DiVa speedup vs GPUs on DP-SGD(R) "
                 "backprop bottleneck stages ===\n";
    const std::vector<GpuConfig> gpus = {
        GpuConfig::v100Fp32(), GpuConfig::v100Fp16(),
        GpuConfig::a100Fp32(), GpuConfig::a100Fp16()};
    TextTable table({"model", "vs V100(FP32)", "vs V100(FP16 TC)",
                     "vs A100(FP32)", "vs A100(FP16 TC)"});
    std::vector<double> vs_v100_tc, vs_a100_tc;
    // GPU times run through the backend layer; one plan cache lowers
    // each model's op stream once for all four GPU design points.
    PlanCache plans;
    for (const auto &net : allModels()) {
        const int batch = benchutil::dpBatch(net);
        const double diva_sec = divaBottleneckSeconds(net, batch);
        std::vector<std::string> cells = {net.name};
        for (std::size_t g = 0; g < gpus.size(); ++g) {
            Scenario scenario;
            scenario.backend = SweepBackend::kGpu;
            scenario.gpu = gpus[g];
            scenario.model = net.name;
            scenario.batch = batch;
            scenario.algorithm = TrainingAlgorithm::kDpSgdR;
            const ScenarioResult r = runScenario(scenario, plans);
            if (!r.ok())
                DIVA_FATAL("GPU scenario failed: ", r.error);
            const double s = r.seconds / diva_sec;
            cells.push_back(TextTable::fmtX(s));
            if (g == 1)
                vs_v100_tc.push_back(s);
            if (g == 3)
                vs_a100_tc.push_back(s);
        }
        table.addRow(cells);
    }
    table.print(std::cout);
    std::cout << "\npaper: avg 1.2x vs V100(TC) and 1.0x vs A100(TC) "
                 "with only 23.6%/9.5% of their FP16 throughput; "
                 "MobileNet is the GPU-favoured exception\n";
    std::cout << "measured: avg "
              << TextTable::fmtX(benchutil::geomean(vs_v100_tc))
              << " vs V100(TC), "
              << TextTable::fmtX(benchutil::geomean(vs_a100_tc))
              << " vs A100(TC); DiVa peak = "
              << TextTable::fmtPct(divaDefault(true).peakTflops() /
                                   125.0)
              << " of V100 FP16, "
              << TextTable::fmtPct(divaDefault(true).peakTflops() /
                                   312.0)
              << " of A100 FP16\n\n";
}

void
BM_GpuModel(benchmark::State &state)
{
    const Network net = allModels()[std::size_t(state.range(0))];
    const OpStream stream = buildOpStream(
        net, TrainingAlgorithm::kDpSgdR, benchutil::dpBatch(net));
    const GpuModel gpu(GpuConfig::a100Fp16());
    for (auto _ : state)
        benchmark::DoNotOptimize(gpu.bottleneckSeconds(stream));
}
BENCHMARK(BM_GpuModel)->DenseRange(0, 8)->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    printFigure17();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
