/**
 * @file
 * Fleet-engine throughput benchmark: replays generated diurnal traces
 * on 8- and 64-pod fleets (load-aware placement, rebalance on) and
 * reports how fast the engine chews through sessions. Besides the
 * google-benchmark microbenchmarks it writes BENCH_fleet.json (path
 * overridable with --out) -- sessions/sec, serve-core events/sec,
 * migrations/sec and the isolated-cost plan-cache hit rate per fleet
 * size -- so CI can track the fleet perf trajectory.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <sstream>
#include <string>

#include "arrivals/generate.h"
#include "bench_util.h"
#include "common/format.h"
#include "common/table.h"
#include "fleet/engine.h"

using namespace diva;

namespace
{

std::vector<PodSpec>
osPodGroup(int n)
{
    std::string err;
    const auto group =
        parsePodTemplate("df=OS,count=" + std::to_string(n), &err);
    if (!group) {
        std::cerr << "bench_fleet: " << err << "\n";
        std::exit(1);
    }
    return *group;
}

ArrivalTrace
diurnalTrace(int sessions)
{
    std::string err;
    const auto gen = parseTraceGenSpec(
        "diurnal:rate=12,horizon=86400,seed=3,qos=2,cap=" +
            std::to_string(sessions),
        &err);
    if (!gen) {
        std::cerr << "bench_fleet: " << err << "\n";
        std::exit(1);
    }
    return generateTrace(*gen);
}

FleetSpec
fleetOf(int pods)
{
    // Half DiVa, half OS pods: the two types price every job class
    // separately but share its workload plan, so the plan cache gets
    // real traffic. First-fit stacks arrivals on the low pods until
    // the rebalance loop drags the skew back down, so migrations/sec
    // measures the migration machinery rather than rounding to zero.
    FleetSpec spec =
        buildFleet({defaultPodGroup(pods - pods / 2),
                    osPodGroup(pods / 2)});
    spec.placement = PlacementKind::kFirstFit;
    spec.rebalance.enabled = true;
    spec.controlIntervalSec = 600.0;
    return spec;
}

/** One replay, timed; returns the throughput figures for the JSON. */
struct ReplayFigures
{
    int pods = 0;
    std::size_t sessions = 0;
    double sessionsPerSec = 0.0;
    double eventsPerSec = 0.0;
    double migrationsPerSec = 0.0;
    double planHitRate = 0.0;
};

ReplayFigures
timeReplay(int pods, int sessions, SweepRunner &runner)
{
    const ArrivalTrace trace = diurnalTrace(sessions);
    const FleetSpec spec = fleetOf(pods);

    const auto t0 = std::chrono::steady_clock::now();
    const FleetResult r = simulateFleet(spec, trace, runner, 4);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();

    if (!r.ok()) {
        std::cerr << "bench_fleet: " << r.error << "\n";
        std::exit(1);
    }
    ReplayFigures f;
    f.pods = pods;
    f.sessions = trace.jobs.size();
    f.sessionsPerSec = double(trace.jobs.size()) / sec;
    f.eventsPerSec = double(r.coreCounters.events()) / sec;
    f.migrationsPerSec = double(r.migrations) / sec;
    const double lookups = double(r.planHits + r.planMisses);
    f.planHitRate = lookups > 0.0 ? double(r.planHits) / lookups : 0.0;
    return f;
}

void
writeFleetJson(const std::string &path,
               const std::vector<ReplayFigures> &figures)
{
    std::vector<std::string> rows;
    for (const ReplayFigures &f : figures) {
        std::ostringstream row;
        row << "{\"pods\": " << f.pods
            << ", \"sessions\": " << f.sessions
            << ", \"sessions_per_sec\": " << jsonNumber(f.sessionsPerSec)
            << ", \"events_per_sec\": " << jsonNumber(f.eventsPerSec)
            << ", \"migrations_per_sec\": "
            << jsonNumber(f.migrationsPerSec)
            << ", \"plan_cache_hit_rate\": " << jsonNumber(f.planHitRate)
            << "}";
        rows.push_back(row.str());
    }
    benchutil::writeBenchJson(
        path, "fleet",
        {{"pods", "count"},
         {"sessions", "count"},
         {"sessions_per_sec", "sessions replayed per wall-clock second"},
         {"events_per_sec",
          "serve-core events processed per wall-clock second"},
         {"migrations_per_sec", "migrations per wall-clock second"},
         {"plan_cache_hit_rate", "fraction in [0,1]"}},
        "fleets", rows);
}

void
printFleetThroughput(const std::string &outPath)
{
    std::cout << "=== fleet replay throughput (diurnal trace, "
                 "first-fit placement, rebalance on) ===\n";
    TextTable table({"pods", "sessions", "sessions/s", "events/s",
                     "migrations/s", "plan hit rate"});
    std::vector<ReplayFigures> figures;
    for (int pods : {8, 64}) {
        // A fresh runner per fleet size keeps the hit rate a
        // self-contained property of one replay's pricing instead of
        // whatever earlier replays happened to warm.
        SweepOptions opts;
        opts.threads = 4;
        SweepRunner runner(opts);
        const ReplayFigures f = timeReplay(pods, 200000, runner);
        figures.push_back(f);
        table.addRow({std::to_string(f.pods),
                      std::to_string(f.sessions),
                      TextTable::fmt(f.sessionsPerSec, 0),
                      TextTable::fmt(f.eventsPerSec, 0),
                      TextTable::fmt(f.migrationsPerSec, 1),
                      TextTable::fmt(f.planHitRate, 3)});
    }
    table.print(std::cout);
    writeFleetJson(outPath, figures);
    std::cout << "\nwrote " << outPath << "\n\n";
}

void
BM_FleetReplay(benchmark::State &state)
{
    const int pods = int(state.range(0));
    const int sessions = int(state.range(1));
    const ArrivalTrace trace = diurnalTrace(sessions);
    const FleetSpec spec = fleetOf(pods);
    SweepOptions opts;
    opts.threads = 4;
    SweepRunner runner(opts);
    std::uint64_t steps = 0;
    for (auto _ : state) {
        const FleetResult r = simulateFleet(spec, trace, runner, 4);
        steps = r.totalSteps;
        benchmark::DoNotOptimize(steps);
    }
    state.counters["sessions_per_sec"] = benchmark::Counter(
        double(trace.jobs.size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FleetReplay)
    ->Args({8, 20000})
    ->Args({64, 20000})
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    const std::string out =
        benchutil::benchOutPath(argc, argv, "BENCH_fleet.json");
    // Collect phase timings across the artifact runs; writeBenchJson
    // folds them into the envelope's "profile" object.
    obs::Profiler::instance().enable(true);
    printFleetThroughput(out);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
