/**
 * @file
 * Fleet-engine throughput benchmark: replays generated diurnal traces
 * on 8- and 64-pod fleets (load-aware placement, rebalance on) and
 * reports how fast the engine chews through sessions. Besides the
 * google-benchmark microbenchmarks it writes BENCH_fleet.json (path
 * overridable with --out) -- sessions/sec, serve-core events/sec,
 * migrations/sec and the isolated-cost plan-cache hit rate per fleet
 * size -- so CI can track the fleet perf trajectory.
 *
 * A thread-scaling sweep (threads 1/2/4/8 at 8 and 64 pods) emits one
 * "scale_p<pods>_t<threads>" row per point, so the regression harness
 * catches scaling regressions (a serialized pool, a contended lock)
 * and not just single-point throughput drift.  An "obs_overhead_p64"
 * row times the 64-pod replay with the windowed telemetry + SLO layer
 * off and on; ci/check_bench.py gates the fractional cost at 5%.
 * Flags:
 *
 *   --threads N    epoch workers for the headline rows (default: the
 *                  machine's hardware concurrency)
 *   --sessions N   sessions per replay (default 200000)
 *   --no-scaling   skip the thread-scaling sweep
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "arrivals/generate.h"
#include "bench_util.h"
#include "common/format.h"
#include "common/table.h"
#include "fleet/engine.h"
#include "obs/slo.h"

using namespace diva;

namespace
{

std::vector<PodSpec>
osPodGroup(int n)
{
    std::string err;
    const auto group =
        parsePodTemplate("df=OS,count=" + std::to_string(n), &err);
    if (!group) {
        std::cerr << "bench_fleet: " << err << "\n";
        std::exit(1);
    }
    return *group;
}

ArrivalTrace
diurnalTrace(int sessions)
{
    std::string err;
    const auto gen = parseTraceGenSpec(
        "diurnal:rate=12,horizon=86400,seed=3,qos=2,cap=" +
            std::to_string(sessions),
        &err);
    if (!gen) {
        std::cerr << "bench_fleet: " << err << "\n";
        std::exit(1);
    }
    return generateTrace(*gen);
}

FleetSpec
fleetOf(int pods)
{
    // Half DiVa, half OS pods: the two types price every job class
    // separately but share its workload plan, so the plan cache gets
    // real traffic. First-fit stacks arrivals on the low pods until
    // the rebalance loop drags the skew back down, so migrations/sec
    // measures the migration machinery rather than rounding to zero.
    FleetSpec spec =
        buildFleet({defaultPodGroup(pods - pods / 2),
                    osPodGroup(pods / 2)});
    spec.placement = PlacementKind::kFirstFit;
    spec.rebalance.enabled = true;
    spec.controlIntervalSec = 600.0;
    return spec;
}

/** Epoch workers when --threads is absent: what the machine has. */
int
autoThreads()
{
    const unsigned hc = std::thread::hardware_concurrency();
    return hc > 0 ? int(hc) : 1;
}

/** One replay, timed; returns the throughput figures for the JSON. */
struct ReplayFigures
{
    std::string mode; // non-empty for thread-scaling sweep rows
    int pods = 0;
    int threads = 0;
    std::size_t sessions = 0;
    double sessionsPerSec = 0.0;
    double eventsPerSec = 0.0;
    double migrationsPerSec = 0.0;
    double planHitRate = 0.0;
    /** Set (>= 0) only on the obs_overhead row: the same replay with
     *  full telemetry on, and the fractional throughput cost. */
    double obsSessionsPerSec = -1.0;
    double obsOverheadFrac = -1.0;
};

ReplayFigures
timeReplay(int pods, int sessions, SweepRunner &runner, int threads)
{
    const ArrivalTrace trace = diurnalTrace(sessions);
    const FleetSpec spec = fleetOf(pods);

    const auto t0 = std::chrono::steady_clock::now();
    const FleetResult r = simulateFleet(spec, trace, runner, threads);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();

    if (!r.ok()) {
        std::cerr << "bench_fleet: " << r.error << "\n";
        std::exit(1);
    }
    ReplayFigures f;
    f.pods = pods;
    f.threads = threads;
    f.sessions = trace.jobs.size();
    f.sessionsPerSec = double(trace.jobs.size()) / sec;
    f.eventsPerSec = double(r.coreCounters.events()) / sec;
    f.migrationsPerSec = double(r.migrations) / sec;
    const double lookups = double(r.planHits + r.planMisses);
    f.planHitRate = lookups > 0.0 ? double(r.planHits) / lookups : 0.0;
    return f;
}

/**
 * Telemetry overhead on the 64-pod replay: the same warm-cache run
 * timed with the windowed-telemetry layer off and on (auto window,
 * global + per-priority SLO targets, i.e. every per-step hook live).
 * Best-of-5 each way, with the off/on pairs interleaved, so scheduler
 * noise and clock drift do not masquerade as overhead;
 * ci/check_bench.py gates obs_overhead_frac at 5%.
 */
ReplayFigures
timeObsOverhead(int pods, int sessions, int threads)
{
    const ArrivalTrace trace = diurnalTrace(sessions);
    const FleetSpec spec = fleetOf(pods);
    SweepOptions opts;
    opts.threads = threads;
    SweepRunner runner(opts);

    auto timeOne = [&](bool telemetryOn) {
        obs::RunTelemetry tel;
        if (telemetryOn) {
            std::string err;
            if (!obs::parseSloSpec("0.5,1:0.25", &tel.slo, &err)) {
                std::cerr << "bench_fleet: " << err << "\n";
                std::exit(1);
            }
        }
        const auto t0 = std::chrono::steady_clock::now();
        const FleetResult r =
            simulateFleet(spec, trace, runner, threads, nullptr,
                          telemetryOn ? &tel : nullptr);
        const auto t1 = std::chrono::steady_clock::now();
        if (!r.ok()) {
            std::cerr << "bench_fleet: " << r.error << "\n";
            std::exit(1);
        }
        return double(trace.jobs.size()) /
               std::chrono::duration<double>(t1 - t0).count();
    };

    // Warm the plan cache so both timed sides price identically, then
    // interleave the off/on pairs so clock drift (turbo decay, a
    // noisy neighbor) hits both sides equally instead of whichever
    // batch ran second.
    simulateFleet(spec, trace, runner, threads);
    double off = 0.0;
    double on = 0.0;
    for (int i = 0; i < 7; ++i) {
        off = std::max(off, timeOne(false));
        on = std::max(on, timeOne(true));
    }

    ReplayFigures f;
    f.mode = "obs_overhead_p" + std::to_string(pods);
    f.pods = pods;
    f.threads = threads;
    f.sessions = trace.jobs.size();
    f.sessionsPerSec = off;
    f.obsSessionsPerSec = on;
    f.obsOverheadFrac = std::max(0.0, 1.0 - on / off);
    return f;
}

void
writeFleetJson(const std::string &path,
               const std::vector<ReplayFigures> &figures)
{
    std::vector<std::string> rows;
    for (const ReplayFigures &f : figures) {
        std::ostringstream row;
        row << "{";
        if (!f.mode.empty())
            row << "\"mode\": \"" << f.mode << "\", ";
        row << "\"pods\": " << f.pods
            << ", \"threads\": " << f.threads
            << ", \"sessions\": " << f.sessions
            << ", \"sessions_per_sec\": " << jsonNumber(f.sessionsPerSec)
            << ", \"events_per_sec\": " << jsonNumber(f.eventsPerSec)
            << ", \"migrations_per_sec\": "
            << jsonNumber(f.migrationsPerSec)
            << ", \"plan_cache_hit_rate\": " << jsonNumber(f.planHitRate);
        if (f.obsSessionsPerSec >= 0.0)
            row << ", \"obs_sessions_per_sec\": "
                << jsonNumber(f.obsSessionsPerSec)
                << ", \"obs_overhead_frac\": "
                << jsonNumber(f.obsOverheadFrac);
        row << "}";
        rows.push_back(row.str());
    }
    benchutil::writeBenchJson(
        path, "fleet",
        {{"mode", "row key (sweep / obs-overhead rows only)"},
         {"pods", "count"},
         {"threads", "epoch workers"},
         {"sessions", "count"},
         {"sessions_per_sec", "sessions replayed per wall-clock second"},
         {"events_per_sec",
          "serve-core events processed per wall-clock second"},
         {"migrations_per_sec", "migrations per wall-clock second"},
         {"plan_cache_hit_rate", "fraction in [0,1]"},
         {"obs_sessions_per_sec",
          "same replay with full windowed telemetry + SLO monitoring"},
         {"obs_overhead_frac",
          "1 - obs_sessions_per_sec / sessions_per_sec, gated <= 0.05"}},
        "fleets", rows);
}

void
addTableRow(TextTable &table, const ReplayFigures &f)
{
    table.addRow({f.mode.empty() ? std::string("-") : f.mode,
                  std::to_string(f.pods), std::to_string(f.threads),
                  std::to_string(f.sessions),
                  TextTable::fmt(f.sessionsPerSec, 0),
                  TextTable::fmt(f.eventsPerSec, 0),
                  TextTable::fmt(f.migrationsPerSec, 1),
                  TextTable::fmt(f.planHitRate, 3)});
}

void
printFleetThroughput(const std::string &outPath, int threads,
                     int sessions, bool scaling)
{
    std::cout << "=== fleet replay throughput (diurnal trace, "
                 "first-fit placement, rebalance on) ===\n";
    TextTable table({"mode", "pods", "threads", "sessions",
                     "sessions/s", "events/s", "migrations/s",
                     "plan hit rate"});
    std::vector<ReplayFigures> figures;
    for (int pods : {8, 64}) {
        // A fresh runner per fleet size keeps the hit rate a
        // self-contained property of one replay's pricing instead of
        // whatever earlier replays happened to warm.
        SweepOptions opts;
        opts.threads = threads;
        SweepRunner runner(opts);
        const ReplayFigures f =
            timeReplay(pods, sessions, runner, threads);
        figures.push_back(f);
        addTableRow(table, f);
    }
    if (scaling) {
        // The scaling sweep reports how the *same* replay responds to
        // the worker count.  The simulated outcome is identical at
        // every point (the regression harness only reads the rates);
        // what moves is wall-clock, so a pool serialization or a
        // contended stripe shows up as a flat or inverted curve.
        for (int pods : {8, 64})
            for (int t : {1, 2, 4, 8}) {
                SweepOptions opts;
                opts.threads = t;
                SweepRunner runner(opts);
                ReplayFigures f = timeReplay(pods, sessions, runner, t);
                f.mode = "scale_p" + std::to_string(pods) + "_t" +
                         std::to_string(t);
                figures.push_back(f);
                addTableRow(table, f);
            }
    }
    table.print(std::cout);

    // Telemetry cost on the big fleet (warm cache, best of 3/side).
    const ReplayFigures obs = timeObsOverhead(64, sessions, threads);
    figures.push_back(obs);
    std::cout << "\ntelemetry overhead @" << obs.pods << " pods: off="
              << TextTable::fmt(obs.sessionsPerSec, 0)
              << " sessions/s, on="
              << TextTable::fmt(obs.obsSessionsPerSec, 0)
              << " sessions/s, overhead="
              << TextTable::fmt(obs.obsOverheadFrac * 100.0, 2)
              << "%\n";

    writeFleetJson(outPath, figures);
    std::cout << "\nwrote " << outPath << "\n\n";
}

void
BM_FleetReplay(benchmark::State &state)
{
    const int pods = int(state.range(0));
    const int sessions = int(state.range(1));
    const ArrivalTrace trace = diurnalTrace(sessions);
    const FleetSpec spec = fleetOf(pods);
    SweepOptions opts;
    opts.threads = 4;
    SweepRunner runner(opts);
    std::uint64_t steps = 0;
    for (auto _ : state) {
        const FleetResult r = simulateFleet(spec, trace, runner, 4);
        steps = r.totalSteps;
        benchmark::DoNotOptimize(steps);
    }
    state.counters["sessions_per_sec"] = benchmark::Counter(
        double(trace.jobs.size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FleetReplay)
    ->Args({8, 20000})
    ->Args({64, 20000})
    ->Unit(benchmark::kMillisecond);

/**
 * Consume the bench_fleet-specific flags (see the file comment) from
 * argv before benchmark::Initialize sees -- and rejects -- them.
 */
void
parseFleetFlags(int &argc, char **argv, int &threads, int &sessions,
                bool &scaling)
{
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threads" && i + 1 < argc) {
            threads = std::atoi(argv[++i]);
            continue;
        }
        if (arg.rfind("--threads=", 0) == 0) {
            threads = std::atoi(arg.c_str() + 10);
            continue;
        }
        if (arg == "--sessions" && i + 1 < argc) {
            sessions = std::atoi(argv[++i]);
            continue;
        }
        if (arg.rfind("--sessions=", 0) == 0) {
            sessions = std::atoi(arg.c_str() + 11);
            continue;
        }
        if (arg == "--no-scaling") {
            scaling = false;
            continue;
        }
        argv[w++] = argv[i];
    }
    argc = w;
    argv[argc] = nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out =
        benchutil::benchOutPath(argc, argv, "BENCH_fleet.json");
    int threads = 0;
    int sessions = 200000;
    bool scaling = true;
    parseFleetFlags(argc, argv, threads, sessions, scaling);
    if (threads <= 0)
        threads = autoThreads();
    if (sessions <= 0) {
        std::cerr << "bench_fleet: --sessions must be positive\n";
        return 1;
    }
    // Collect phase timings across the artifact runs; writeBenchJson
    // folds them into the envelope's "profile" object.
    obs::Profiler::instance().enable(true);
    printFleetThroughput(out, threads, sessions, scaling);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
