/**
 * @file
 * The PPU traffic claim (Sections I and IV-C): DiVa's PPU provides a
 * ~99% reduction in off-chip data movement during gradient
 * post-processing, by deriving norms on the GEMM engine's drain path
 * instead of spilling per-example gradients to DRAM.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "common/table.h"

using namespace diva;

namespace
{

void
printPpuTraffic()
{
    std::cout << "=== PPU: off-chip traffic during gradient "
                 "post-processing (GB) ===\n";
    TextTable table({"model", "WS (spill+fetch)", "DiVa w/o PPU",
                     "DiVa (PPU)", "reduction vs WS"});
    std::vector<double> reductions;
    for (const auto &net : allModels()) {
        const int batch = benchutil::dpBatch(net);
        const auto traffic = [&](const AcceleratorConfig &cfg) {
            return double(benchutil::runSim(
                              cfg, net, TrainingAlgorithm::kDpSgdR,
                              batch)
                              .postProcessingDram.total());
        };
        const double ws = traffic(tpuV3Ws());
        const double dv0 = traffic(divaDefault(false));
        const double dv1 = traffic(divaDefault(true));
        const double reduction = 1.0 - dv1 / ws;
        table.addRow({net.name, TextTable::fmt(ws / 1e9, 3),
                      TextTable::fmt(dv0 / 1e9, 3),
                      TextTable::fmt(dv1 / 1e9, 4),
                      TextTable::fmtPct(reduction)});
        reductions.push_back(reduction);
    }
    table.print(std::cout);
    double avg = 0.0;
    for (double r : reductions)
        avg += r;
    avg /= double(reductions.size());
    std::cout << "\npaper: 99% reduction in post-processing off-chip "
                 "data movement\n";
    std::cout << "measured: avg " << TextTable::fmtPct(avg) << "\n\n";
}

void
BM_PostProcTraffic(benchmark::State &state)
{
    const Network net = allModels()[std::size_t(state.range(0))];
    const bool ppu = state.range(1) != 0;
    const OpStream stream = buildOpStream(
        net, TrainingAlgorithm::kDpSgdR, benchutil::dpBatch(net));
    const Executor exec(divaDefault(ppu));
    double bytes = 0.0;
    for (auto _ : state) {
        bytes = double(exec.run(stream).postProcessingDram.total());
        benchmark::DoNotOptimize(bytes);
    }
    state.counters["postproc_GB"] = benchmark::Counter(bytes / 1e9);
}
BENCHMARK(BM_PostProcTraffic)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6, 7, 8}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    printPpuTraffic();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
