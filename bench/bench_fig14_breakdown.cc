/**
 * @file
 * Figure 14: DP-SGD(R) training-time breakdown on the four breakdown
 * models (VGG-16, ResNet-152, BERT-large, LSTM-large) across the four
 * design points, normalized to the WS total. Shows where DiVa's wins
 * come from: per-example gradient GEMMs and gradient-norm derivation.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "common/table.h"

using namespace diva;

namespace
{

void
printFigure14()
{
    std::cout << "=== Figure 14: DP-SGD(R) latency breakdown "
                 "(normalized to WS total) ===\n";
    std::vector<double> pe_reduction;
    double max_pe_reduction = 0.0;
    for (const auto &net : breakdownModels()) {
        const int batch = benchutil::dpBatch(net);
        std::cout << "\n--- " << net.name << " (mini-batch " << batch
                  << ") ---\n";
        TextTable table({"stage", "WS", "OS+PPU", "DiVa w/o PPU",
                         "DiVa"});
        std::vector<SimResult> results;
        for (const auto &cfg : benchutil::designPoints())
            results.push_back(benchutil::runSim(
                cfg, net, TrainingAlgorithm::kDpSgdR, batch));
        const double ws_total = double(results[0].totalCycles());
        for (Stage s : allStages()) {
            bool any = false;
            std::vector<std::string> cells = {stageName(s)};
            for (const auto &r : results) {
                const Cycles c = r.stageCyclesFor(s);
                any = any || c > 0;
                cells.push_back(TextTable::fmt(double(c) / ws_total, 3));
            }
            if (any)
                table.addRow(cells);
        }
        std::vector<std::string> totals = {"TOTAL"};
        for (const auto &r : results)
            totals.push_back(
                TextTable::fmt(double(r.totalCycles()) / ws_total, 3));
        table.addSeparator();
        table.addRow(totals);
        table.print(std::cout);

        const double pe_red =
            double(results[0].stageCyclesFor(Stage::kPerExampleGrad)) /
            double(results[3].stageCyclesFor(Stage::kPerExampleGrad));
        pe_reduction.push_back(pe_red);
        max_pe_reduction = std::max(max_pe_reduction, pe_red);
    }
    std::cout << "\npaper: DiVa reduces per-example wgrad latency avg "
                 "7.0x (max 14.6x)\n";
    std::cout << "measured: per-example wgrad latency reduction avg "
              << TextTable::fmtX(benchutil::geomean(pe_reduction))
              << " (max " << TextTable::fmtX(max_pe_reduction)
              << ")\n\n";
}

void
BM_Breakdown(benchmark::State &state)
{
    const Network net =
        breakdownModels()[std::size_t(state.range(0))];
    const AcceleratorConfig cfg =
        benchutil::designPoints()[std::size_t(state.range(1))];
    const OpStream stream = buildOpStream(
        net, TrainingAlgorithm::kDpSgdR, benchutil::dpBatch(net));
    const Executor exec(cfg);
    for (auto _ : state)
        benchmark::DoNotOptimize(exec.run(stream).totalCycles());
}
BENCHMARK(BM_Breakdown)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1, 2, 3}})
    ->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    printFigure14();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
