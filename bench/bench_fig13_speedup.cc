/**
 * @file
 * Figure 13: end-to-end speedup over the WS systolic baseline for
 * DP-SGD(R) on OS+PPU, DiVa without PPU and DiVa with PPU, plus the
 * non-private SGD comparison points (WS and DiVa). The paper reports
 * an average 3.6x (max 7.3x) DiVa speedup, DiVa reaching ~75% of
 * non-private WS-SGD performance, and DiVa-SGD beating WS-SGD by 1.6x.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "common/table.h"

using namespace diva;

namespace
{

void
printFigure13()
{
    std::cout << "=== Figure 13: end-to-end speedup vs WS systolic "
                 "(DP-SGD(R) unless noted) ===\n";
    TextTable table({"model", "WS", "OS+PPU", "DiVa w/o PPU", "DiVa",
                     "SGD:WS (xDP-WS)", "SGD:DiVa (xSGD-WS)",
                     "DiVa vs SGD:WS"});
    std::vector<double> diva_speedups, diva_no_ppu, os_ppu, sgd_diva,
        gap_to_sgd;
    double max_speedup = 0.0;
    std::string max_model;
    for (const auto &net : allModels()) {
        const int batch = benchutil::dpBatch(net);
        const Cycles ws = benchutil::runSim(
            tpuV3Ws(), net, TrainingAlgorithm::kDpSgdR, batch)
            .totalCycles();
        const Cycles os = benchutil::runSim(
            systolicOs(true), net, TrainingAlgorithm::kDpSgdR, batch)
            .totalCycles();
        const Cycles dv0 = benchutil::runSim(
            divaDefault(false), net, TrainingAlgorithm::kDpSgdR, batch)
            .totalCycles();
        const Cycles dv1 = benchutil::runSim(
            divaDefault(true), net, TrainingAlgorithm::kDpSgdR, batch)
            .totalCycles();
        const Cycles sgd_ws = benchutil::runSim(
            tpuV3Ws(), net, TrainingAlgorithm::kSgd, batch)
            .totalCycles();
        const Cycles sgd_dv = benchutil::runSim(
            divaDefault(true), net, TrainingAlgorithm::kSgd, batch)
            .totalCycles();

        const double s_os = double(ws) / double(os);
        const double s_dv0 = double(ws) / double(dv0);
        const double s_dv1 = double(ws) / double(dv1);
        table.addRow(
            {net.name, "1.00x", TextTable::fmtX(s_os),
             TextTable::fmtX(s_dv0), TextTable::fmtX(s_dv1),
             TextTable::fmtX(double(ws) / double(sgd_ws)),
             TextTable::fmtX(double(sgd_ws) / double(sgd_dv)),
             TextTable::fmtPct(double(sgd_ws) / double(dv1))});
        diva_speedups.push_back(s_dv1);
        diva_no_ppu.push_back(s_dv0);
        os_ppu.push_back(s_os);
        sgd_diva.push_back(double(sgd_ws) / double(sgd_dv));
        gap_to_sgd.push_back(double(sgd_ws) / double(dv1));
        if (s_dv1 > max_speedup) {
            max_speedup = s_dv1;
            max_model = net.name;
        }
    }
    table.print(std::cout);
    std::cout << "\npaper: DiVa avg 3.6x (max 7.3x, ResNet-152) over "
                 "WS; reaches ~75% of non-private WS-SGD; DiVa-SGD "
                 "1.6x over WS-SGD\n";
    std::cout << "measured: DiVa avg "
              << TextTable::fmtX(benchutil::geomean(diva_speedups))
              << " (max " << TextTable::fmtX(max_speedup) << ", "
              << max_model << "); OS+PPU avg "
              << TextTable::fmtX(benchutil::geomean(os_ppu))
              << "; DiVa w/o PPU avg "
              << TextTable::fmtX(benchutil::geomean(diva_no_ppu))
              << "; reaches "
              << TextTable::fmtPct(benchutil::geomean(gap_to_sgd))
              << " of WS-SGD; DiVa-SGD "
              << TextTable::fmtX(benchutil::geomean(sgd_diva))
              << " over WS-SGD\n\n";
}

void
BM_EndToEnd(benchmark::State &state)
{
    const Network net = allModels()[std::size_t(state.range(0))];
    const auto configs = benchutil::designPoints();
    const AcceleratorConfig cfg =
        configs[std::size_t(state.range(1))];
    const OpStream stream = buildOpStream(
        net, TrainingAlgorithm::kDpSgdR, benchutil::dpBatch(net));
    const Executor exec(cfg);
    Cycles cycles = 0;
    for (auto _ : state) {
        cycles = exec.run(stream).totalCycles();
        benchmark::DoNotOptimize(cycles);
    }
    state.counters["sim_cycles"] =
        benchmark::Counter(double(cycles));
}
BENCHMARK(BM_EndToEnd)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6, 7, 8}, {0, 1, 2, 3}})
    ->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    printFigure13();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
