/**
 * @file
 * Roofline-style GPU performance model used for the Figure 17
 * comparison against NVIDIA V100 and A100 (Section VI-D).
 *
 * The model captures the GPU behaviors that matter for DP-SGD's
 * bottleneck GEMMs:
 *   - tile quantization: outputs are computed in fixed CTA tiles, so M
 *     and N round up to tile multiples;
 *   - K-granule padding on Tensor Cores (MMA depth), which wastes
 *     compute on the K=1..L per-example GEMMs;
 *   - wave quantization across SMs;
 *   - batched-GEMM execution: many small GEMMs fill waves together,
 *     which is why GPUs handle MobileNet's tiny GEMMs comparatively
 *     well (the paper's noted exception);
 *   - HBM bandwidth bound with a fixed per-kernel launch overhead.
 */

#ifndef DIVA_GPU_GPU_MODEL_H
#define DIVA_GPU_GPU_MODEL_H

#include <string>

#include "common/types.h"
#include "gemm/gemm_shape.h"
#include "train/op.h"

namespace diva
{

/** Static description of one GPU execution mode. */
struct GpuConfig
{
    std::string name;
    double peakTflops = 0.0;
    double bandwidthGBs = 0.0;
    int numSms = 0;
    /** Output tile computed per CTA. */
    int tileM = 128;
    int tileN = 128;
    /** K padding granule (Tensor Core MMA depth; 1 for CUDA cores). */
    int kGranule = 1;
    /** Fixed kernel launch + epilogue overhead. */
    double kernelOverheadSec = 5e-6;
    /** Fraction of peak FLOPS attainable on dense GEMM. */
    double gemmEfficiency = 0.85;

    /** Paper's GPU design points. */
    static GpuConfig v100Fp32();
    static GpuConfig v100Fp16();
    static GpuConfig a100Fp32();
    static GpuConfig a100Fp16();
};

/** Simple per-op GPU timing result. */
struct GpuOpResult
{
    double seconds = 0.0;
    double computeSeconds = 0.0;
    double memorySeconds = 0.0;
};

/** Roofline GPU model. */
class GpuModel
{
  public:
    explicit GpuModel(const GpuConfig &cfg);

    /**
     * Time for `count` independent GEMMs of the same shape launched as
     * one batched kernel (JAX vmap-style auto-vectorization, the
     * paper's "strong baseline").
     */
    GpuOpResult batchedGemm(const GemmShape &shape,
                            std::uint64_t count) const;

    /**
     * Time for the subset of a training op stream that Figure 17
     * compares: the key GEMMs of DP-SGD's backpropagation bottleneck
     * stages plus gradient post-processing memory time.
     */
    double bottleneckSeconds(const OpStream &stream) const;

    const GpuConfig &config() const { return cfg_; }

  private:
    GpuConfig cfg_;
};

} // namespace diva

#endif // DIVA_GPU_GPU_MODEL_H
