#include "gpu/gpu_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace diva
{

GpuConfig
GpuConfig::v100Fp32()
{
    GpuConfig cfg;
    cfg.name = "V100(FP32)";
    cfg.peakTflops = 15.7;
    cfg.bandwidthGBs = 900.0;
    cfg.numSms = 80;
    cfg.kGranule = 1;
    return cfg;
}

GpuConfig
GpuConfig::v100Fp16()
{
    GpuConfig cfg;
    cfg.name = "V100(FP16)";
    cfg.peakTflops = 125.0;
    cfg.bandwidthGBs = 900.0;
    cfg.numSms = 80;
    cfg.kGranule = 8;
    return cfg;
}

GpuConfig
GpuConfig::a100Fp32()
{
    GpuConfig cfg;
    cfg.name = "A100(FP32)";
    cfg.peakTflops = 19.5;
    cfg.bandwidthGBs = 1555.0;
    cfg.numSms = 108;
    cfg.kGranule = 1;
    return cfg;
}

GpuConfig
GpuConfig::a100Fp16()
{
    GpuConfig cfg;
    cfg.name = "A100(FP16)";
    cfg.peakTflops = 312.0;
    cfg.bandwidthGBs = 1555.0;
    cfg.numSms = 108;
    cfg.kGranule = 16;
    return cfg;
}

GpuModel::GpuModel(const GpuConfig &cfg) : cfg_(cfg)
{
    DIVA_ASSERT(cfg_.peakTflops > 0.0 && cfg_.bandwidthGBs > 0.0 &&
                cfg_.numSms > 0);
}

GpuOpResult
GpuModel::batchedGemm(const GemmShape &shape, std::uint64_t count) const
{
    DIVA_ASSERT(shape.valid());
    GpuOpResult r;
    if (count == 0)
        return r;

    // Tile/K padding: the kernel computes ceil-multiples of the CTA
    // tile and the MMA K-granule.
    const std::int64_t m_pad =
        ceilDiv(shape.m, std::int64_t(cfg_.tileM)) * cfg_.tileM;
    const std::int64_t n_pad =
        ceilDiv(shape.n, std::int64_t(cfg_.tileN)) * cfg_.tileN;
    const std::int64_t k_pad =
        ceilDiv(shape.k, std::int64_t(cfg_.kGranule)) * cfg_.kGranule;

    // Wave quantization: all GEMMs of the batch share the grid.
    const std::uint64_t tiles_per_gemm =
        std::uint64_t(m_pad / cfg_.tileM) *
        std::uint64_t(n_pad / cfg_.tileN);
    const std::uint64_t total_tiles = tiles_per_gemm * count;
    const std::uint64_t waves =
        ceilDiv(total_tiles, std::uint64_t(cfg_.numSms));

    const double flops_per_tile =
        2.0 * double(cfg_.tileM) * double(cfg_.tileN) * double(k_pad);
    const double sm_flops =
        cfg_.peakTflops * 1e12 * cfg_.gemmEfficiency / cfg_.numSms;
    r.computeSeconds =
        double(waves) * flops_per_tile / sm_flops + cfg_.kernelOverheadSec;

    const double bytes =
        double(count) * (double(shape.lhsBytes(2)) +
                         double(shape.rhsBytes(2)) +
                         double(shape.outBytes(4)));
    r.memorySeconds = bytes / (cfg_.bandwidthGBs * 1e9);

    r.seconds = std::max(r.computeSeconds, r.memorySeconds);
    return r;
}

double
GpuModel::bottleneckSeconds(const OpStream &stream) const
{
    double total = 0.0;
    for (const auto &op : stream.ops) {
        switch (op.type) {
          case OpType::kGemm:
            // Figure 17 compares the key GEMMs of DP-SGD's
            // backpropagation bottleneck stages.
            if (op.stage == Stage::kPerExampleGrad ||
                op.stage == Stage::kPerBatchGrad ||
                op.stage == Stage::kActGrad1 ||
                op.stage == Stage::kActGrad2) {
                total += batchedGemm(op.shape, op.count).seconds;
            }
            break;
          case OpType::kGradNorm:
          case OpType::kGradClip:
          case OpType::kGradReduce:
          case OpType::kNoiseAdd: {
            // Memory-bound vector phases stream in/out of HBM.
            const double bytes =
                4.0 * double(op.inElems + op.outElems);
            total += bytes / (cfg_.bandwidthGBs * 1e9) +
                     cfg_.kernelOverheadSec;
            break;
          }
        }
    }
    return total;
}

} // namespace diva
