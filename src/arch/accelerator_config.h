/**
 * @file
 * Accelerator configuration: PE-array geometry, dataflow, clock, on-chip
 * SRAM and off-chip memory parameters.
 *
 * The default values reproduce the paper's Table II (DiVa architecture
 * configuration), which is itself modeled after Google TPUv3: a 128x128
 * PE array at 940 MHz, 16 MB of on-chip SRAM, and 450 GB/s of HBM
 * bandwidth with 100-cycle access latency.
 */

#ifndef DIVA_ARCH_ACCELERATOR_CONFIG_H
#define DIVA_ARCH_ACCELERATOR_CONFIG_H

#include <cstddef>
#include <string>

#include "common/types.h"

namespace diva
{

/** GEMM-engine dataflow families studied in the paper (Sections II-D, IV). */
enum class Dataflow
{
    /** Weight-stationary systolic array (Google TPU style baseline). */
    kWeightStationary,
    /** Output-stationary systolic array. */
    kOutputStationary,
    /** DiVa's outer-product all-to-all broadcast engine (OS-class). */
    kOuterProduct,
};

/** Short human-readable name of a dataflow ("WS", "OS", "DiVa"). */
const char *dataflowName(Dataflow df);

/**
 * Full configuration of one simulated accelerator.
 *
 * Use the factory functions below (tpuV3Ws(), systolicOs(), divaDefault())
 * for the paper's design points; individual fields can then be overridden
 * for sensitivity and ablation studies.
 */
struct AcceleratorConfig
{
    std::string name = "DiVa";
    Dataflow dataflow = Dataflow::kOuterProduct;

    /** PE array height (rows) and width (columns). */
    int peRows = 128;
    int peCols = 128;

    /** Core clock of the GEMM engine and PPU (Table II: 940 MHz). */
    double freqGhz = 0.94;

    /** Unified on-chip SRAM for LHS/RHS/output tiles (Table II: 16 MB). */
    Bytes sramBytes = 16_MiB;

    /** Off-chip (HBM) bandwidth and access latency (Table II). */
    double dramBandwidthGBs = 450.0;
    Cycles dramLatencyCycles = 100;

    /** WS arrays latch this many RHS rows per cycle (Table I: 8). */
    int weightFillRowsPerCycle = 8;

    /**
     * Whether the WS array double-buffers its weight latches so the
     * next tile's RHS fill overlaps the current tile's LHS stream
     * (TPUv1-style weight FIFO). Off by default to match the paper's
     * baseline; exposed for ablation.
     */
    bool wsDoubleBufferWeights = false;

    /**
     * OS-class arrays drain this many output rows per cycle into the
     * SRAM buffer or the PPU (the paper's R parameter; default 8).
     */
    int drainRowsPerCycle = 8;

    /** Whether the post-processing unit (adder trees) is present. */
    bool hasPpu = false;

    /** Input (BF16) and accumulation (FP32) element widths in bytes. */
    int inputBytes = 2;
    int accumBytes = 4;

    /**
     * Vector-unit lanes used for post-processing when no PPU exists
     * (TPUv3 VPU: 128 lanes x 8 sublanes).
     */
    int vectorLanes = 1024;

    /** Peak MAC throughput of the PE array per cycle. */
    Macs macsPerCycle() const { return Macs(peRows) * Macs(peCols); }

    /** Peak TFLOPS (2 FLOPs per MAC). */
    double peakTflops() const
    {
        return 2.0 * double(macsPerCycle()) * freqGhz * 1e9 / 1e12;
    }

    /** DRAM bytes deliverable per core clock cycle. */
    double dramBytesPerCycle() const
    {
        return dramBandwidthGBs * 1e9 / (freqGhz * 1e9);
    }

    /** Convert a cycle count to seconds at the configured clock. */
    double cyclesToSeconds(Cycles c) const
    {
        return double(c) / (freqGhz * 1e9);
    }

    /**
     * Why this configuration is invalid, or an empty string when it is
     * well-formed. Never logs or throws; sweep expansion uses it to
     * probe and silently skip invalid axis combinations.
     */
    std::string validationError() const;

    /** Sanity-check field values; calls DIVA_FATAL on invalid configs. */
    void validate() const;
};

/**
 * Semantic equality: every field compares equal, deliberately
 * including the display name. Sweeps use names to distinguish design
 * points whose simulated fields coincide (e.g. "DiVa R=8" vs the
 * default "DiVa"), so two same-valued configs with different names are
 * different axis points -- they simulate identically but are cached
 * and reported separately.
 */
bool operator==(const AcceleratorConfig &a, const AcceleratorConfig &b);
bool operator!=(const AcceleratorConfig &a, const AcceleratorConfig &b);

/**
 * Canonical hash of a configuration, used as the sweep result-cache
 * key. The hash is a pure function of the field *values*, folded in a
 * fixed canonical sequence independent of the struct's declaration
 * order, so reordering fields in AcceleratorConfig (or assigning them
 * in any order) never changes the hash of a given design point.
 * Consistent with operator==: a == b implies configHash(a) ==
 * configHash(b).
 */
std::size_t configHash(const AcceleratorConfig &cfg);

/** Baseline TPUv3-like weight-stationary systolic array (no PPU). */
AcceleratorConfig tpuV3Ws();

/** Output-stationary systolic array; PPU optional (Figure 13 uses PPU). */
AcceleratorConfig systolicOs(bool with_ppu);

/** DiVa: outer-product GEMM engine, PPU optional (default present). */
AcceleratorConfig divaDefault(bool with_ppu = true);

} // namespace diva

#endif // DIVA_ARCH_ACCELERATOR_CONFIG_H
