#include "arch/accelerator_config.h"

#include <functional>

#include "common/logging.h"

namespace diva
{

const char *
dataflowName(Dataflow df)
{
    switch (df) {
      case Dataflow::kWeightStationary: return "WS";
      case Dataflow::kOutputStationary: return "OS";
      case Dataflow::kOuterProduct: return "DiVa";
    }
    return "?";
}

std::string
AcceleratorConfig::validationError() const
{
    if (peRows <= 0 || peCols <= 0)
        return detail::concat("PE array dimensions must be positive: ",
                              peRows, "x", peCols);
    if (freqGhz <= 0.0)
        return detail::concat("clock frequency must be positive: ",
                              freqGhz);
    if (sramBytes == 0)
        return "on-chip SRAM capacity must be non-zero";
    if (dramBandwidthGBs <= 0.0)
        return detail::concat("DRAM bandwidth must be positive: ",
                              dramBandwidthGBs);
    if (weightFillRowsPerCycle <= 0)
        return "weight fill rate must be positive";
    if (drainRowsPerCycle <= 0 || drainRowsPerCycle > peRows)
        return detail::concat("drain rate must be in [1, peRows]: ",
                              drainRowsPerCycle);
    if (hasPpu && dataflow == Dataflow::kWeightStationary)
        return "a WS systolic array cannot host the PPU: its output "
               "granularity (tens of MBs in vector memory) defeats "
               "on-the-fly norm derivation (Section IV-C)";
    if (inputBytes <= 0 || accumBytes <= 0)
        return "element widths must be positive";
    return "";
}

void
AcceleratorConfig::validate() const
{
    const std::string error = validationError();
    if (!error.empty())
        DIVA_FATAL(error);
}

bool
operator==(const AcceleratorConfig &a, const AcceleratorConfig &b)
{
    return a.name == b.name && a.dataflow == b.dataflow &&
           a.peRows == b.peRows && a.peCols == b.peCols &&
           a.freqGhz == b.freqGhz && a.sramBytes == b.sramBytes &&
           a.dramBandwidthGBs == b.dramBandwidthGBs &&
           a.dramLatencyCycles == b.dramLatencyCycles &&
           a.weightFillRowsPerCycle == b.weightFillRowsPerCycle &&
           a.wsDoubleBufferWeights == b.wsDoubleBufferWeights &&
           a.drainRowsPerCycle == b.drainRowsPerCycle &&
           a.hasPpu == b.hasPpu && a.inputBytes == b.inputBytes &&
           a.accumBytes == b.accumBytes && a.vectorLanes == b.vectorLanes;
}

bool
operator!=(const AcceleratorConfig &a, const AcceleratorConfig &b)
{
    return !(a == b);
}

namespace
{

/** Boost-style hash combine. */
template <typename T>
void
hashCombine(std::size_t &seed, const T &value)
{
    seed ^= std::hash<T>{}(value) + 0x9e3779b97f4a7c15ull + (seed << 6) +
            (seed >> 2);
}

} // namespace

std::size_t
configHash(const AcceleratorConfig &cfg)
{
    // Fields are folded in a fixed canonical (alphabetical) sequence,
    // decoupled from the struct's declaration order.
    std::size_t seed = 0;
    hashCombine(seed, cfg.accumBytes);
    hashCombine(seed, static_cast<int>(cfg.dataflow));
    hashCombine(seed, cfg.drainRowsPerCycle);
    hashCombine(seed, cfg.dramBandwidthGBs);
    hashCombine(seed, cfg.dramLatencyCycles);
    hashCombine(seed, cfg.freqGhz);
    hashCombine(seed, cfg.hasPpu);
    hashCombine(seed, cfg.inputBytes);
    hashCombine(seed, cfg.name);
    hashCombine(seed, cfg.peCols);
    hashCombine(seed, cfg.peRows);
    hashCombine(seed, cfg.sramBytes);
    hashCombine(seed, cfg.vectorLanes);
    hashCombine(seed, cfg.weightFillRowsPerCycle);
    hashCombine(seed, cfg.wsDoubleBufferWeights);
    return seed;
}

AcceleratorConfig
tpuV3Ws()
{
    AcceleratorConfig cfg;
    cfg.name = "Systolic-WS";
    cfg.dataflow = Dataflow::kWeightStationary;
    cfg.hasPpu = false;
    return cfg;
}

AcceleratorConfig
systolicOs(bool with_ppu)
{
    AcceleratorConfig cfg;
    cfg.name = with_ppu ? "Systolic-OS+PPU" : "Systolic-OS";
    cfg.dataflow = Dataflow::kOutputStationary;
    cfg.hasPpu = with_ppu;
    return cfg;
}

AcceleratorConfig
divaDefault(bool with_ppu)
{
    AcceleratorConfig cfg;
    cfg.name = with_ppu ? "DiVa" : "DiVa-noPPU";
    cfg.dataflow = Dataflow::kOuterProduct;
    cfg.hasPpu = with_ppu;
    return cfg;
}

} // namespace diva
