#include "arch/accelerator_config.h"

#include "common/logging.h"

namespace diva
{

const char *
dataflowName(Dataflow df)
{
    switch (df) {
      case Dataflow::kWeightStationary: return "WS";
      case Dataflow::kOutputStationary: return "OS";
      case Dataflow::kOuterProduct: return "DiVa";
    }
    return "?";
}

void
AcceleratorConfig::validate() const
{
    if (peRows <= 0 || peCols <= 0)
        DIVA_FATAL("PE array dimensions must be positive: ", peRows, "x",
                   peCols);
    if (freqGhz <= 0.0)
        DIVA_FATAL("clock frequency must be positive: ", freqGhz);
    if (sramBytes == 0)
        DIVA_FATAL("on-chip SRAM capacity must be non-zero");
    if (dramBandwidthGBs <= 0.0)
        DIVA_FATAL("DRAM bandwidth must be positive: ", dramBandwidthGBs);
    if (weightFillRowsPerCycle <= 0)
        DIVA_FATAL("weight fill rate must be positive");
    if (drainRowsPerCycle <= 0 || drainRowsPerCycle > peRows)
        DIVA_FATAL("drain rate must be in [1, peRows]: ",
                   drainRowsPerCycle);
    if (hasPpu && dataflow == Dataflow::kWeightStationary)
        DIVA_FATAL("a WS systolic array cannot host the PPU: its output "
                   "granularity (tens of MBs in vector memory) defeats "
                   "on-the-fly norm derivation (Section IV-C)");
    if (inputBytes <= 0 || accumBytes <= 0)
        DIVA_FATAL("element widths must be positive");
}

AcceleratorConfig
tpuV3Ws()
{
    AcceleratorConfig cfg;
    cfg.name = "Systolic-WS";
    cfg.dataflow = Dataflow::kWeightStationary;
    cfg.hasPpu = false;
    return cfg;
}

AcceleratorConfig
systolicOs(bool with_ppu)
{
    AcceleratorConfig cfg;
    cfg.name = with_ppu ? "Systolic-OS+PPU" : "Systolic-OS";
    cfg.dataflow = Dataflow::kOutputStationary;
    cfg.hasPpu = with_ppu;
    return cfg;
}

AcceleratorConfig
divaDefault(bool with_ppu)
{
    AcceleratorConfig cfg;
    cfg.name = with_ppu ? "DiVa" : "DiVa-noPPU";
    cfg.dataflow = Dataflow::kOuterProduct;
    cfg.hasPpu = with_ppu;
    return cfg;
}

} // namespace diva
