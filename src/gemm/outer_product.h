/**
 * @file
 * DiVa's outer-product GEMM engine cycle model (Section IV-B).
 *
 * Each cycle, one LHS column (length M) and one RHS row (length N) are
 * broadcast over per-row / per-column local buses and multiplied
 * all-to-all, producing a full M x N partial-sum update. A (M,K,N) GEMM
 * tile therefore takes exactly K cycles of accumulation regardless of
 * K's size -- the engine always performs peRows x peCols MACs per cycle
 * on full tiles, which is what makes it robust to the tall-skinny
 * per-example weight-gradient GEMMs of DP-SGD.
 */

#ifndef DIVA_GEMM_OUTER_PRODUCT_H
#define DIVA_GEMM_OUTER_PRODUCT_H

#include "gemm/engine.h"

namespace diva
{

/** Cycle model of the outer-product (all-to-all broadcast) engine. */
class OuterProductModel : public GemmEngineModel
{
  public:
    explicit OuterProductModel(const AcceleratorConfig &cfg);

  protected:
    Cycles computeCycles(const GemmShape &shape) const override;
    Bytes sramReadBytesPerCycle() const override;
    Bytes sramWriteBytesPerCycle() const override;
};

} // namespace diva

#endif // DIVA_GEMM_OUTER_PRODUCT_H
