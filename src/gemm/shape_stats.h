/**
 * @file
 * GEMM shape statistics over a training op stream: the distribution of
 * K-dimension sizes and aspect ratios per training stage. Section
 * III-C's diagnosis is exactly a statement about this distribution --
 * per-example weight gradients flood the stream with small-K,
 * tall-skinny GEMMs -- and this module measures it.
 */

#ifndef DIVA_GEMM_SHAPE_STATS_H
#define DIVA_GEMM_SHAPE_STATS_H

#include <array>
#include <cstdint>

#include "common/types.h"
#include "train/op.h"

namespace diva
{

/** Histogram of GEMM K-dimension sizes (weighted by GEMM count). */
struct KDimHistogram
{
    /** Bucket upper bounds: 1, 8, 32, 128, 512, inf. */
    static constexpr std::array<std::int64_t, 5> kBucketBounds = {
        1, 8, 32, 128, 512};
    static constexpr std::size_t kNumBuckets =
        kBucketBounds.size() + 1;

    std::array<std::uint64_t, kNumBuckets> counts{};
    std::uint64_t totalGemms = 0;

    /** Bucket index for a K value. */
    static std::size_t bucketFor(std::int64_t k);

    /** Label like "<=32". */
    static const char *bucketLabel(std::size_t bucket);

    /** Fraction of GEMMs whose K is at most the bound of `bucket`. */
    double cumulativeFraction(std::size_t bucket) const;
};

/** Shape statistics for one op stream. */
struct ShapeStats
{
    KDimHistogram all;
    KDimHistogram perExample;
    std::uint64_t smallKGemms = 0; ///< K <= 32
    std::uint64_t totalGemms = 0;

    double
    smallKFraction() const
    {
        return totalGemms ? double(smallKGemms) / double(totalGemms)
                          : 0.0;
    }
};

/** Collect shape statistics over a planned iteration. */
ShapeStats collectShapeStats(const OpStream &stream);

} // namespace diva

#endif // DIVA_GEMM_SHAPE_STATS_H
