/**
 * @file
 * Functional (numerical) GEMM implementations used to validate the
 * dataflow mathematics: the inner-product (classic triple loop) and
 * outer-product (Figure 9(a): sum of rank-1 updates) orders must give
 * identical results, which the property tests check.
 */

#ifndef DIVA_GEMM_REFERENCE_GEMM_H
#define DIVA_GEMM_REFERENCE_GEMM_H

#include <vector>

#include "gemm/gemm_shape.h"

namespace diva
{

/** C(M,N) = A(M,K) * B(K,N), classic inner-product loop order. */
std::vector<float> gemmInnerProduct(const GemmShape &shape,
                                    const std::vector<float> &a,
                                    const std::vector<float> &b);

/**
 * C(M,N) = sum_k a_k * b_k^T, outer-product loop order: the K dimension
 * is the outermost loop and each iteration applies a rank-1 all-to-all
 * update, exactly the accumulation order of DiVa's PE array.
 */
std::vector<float> gemmOuterProduct(const GemmShape &shape,
                                    const std::vector<float> &a,
                                    const std::vector<float> &b);

/**
 * Tiled outer-product GEMM that mirrors the hardware tiling: output
 * tiles of (tile_m x tile_n) are accumulated independently, each via
 * rank-1 updates, and written back tile by tile.
 */
std::vector<float> gemmTiledOuterProduct(const GemmShape &shape,
                                         const std::vector<float> &a,
                                         const std::vector<float> &b,
                                         int tile_m, int tile_n);

} // namespace diva

#endif // DIVA_GEMM_REFERENCE_GEMM_H
