#include "gemm/bandwidth.h"

namespace diva
{

SramBandwidth
sramBandwidthRequirement(const AcceleratorConfig &cfg)
{
    SramBandwidth bw;
    bw.inputLhs = Bytes(cfg.peRows) * cfg.inputBytes;
    switch (cfg.dataflow) {
      case Dataflow::kWeightStationary:
        // RHS latched 8 rows/cycle; a single output row drains.
        bw.inputRhs = Bytes(cfg.peCols) * cfg.weightFillRowsPerCycle *
                      cfg.inputBytes;
        bw.output = Bytes(cfg.peCols) * cfg.accumBytes;
        break;
      case Dataflow::kOutputStationary:
      case Dataflow::kOuterProduct:
        // One RHS vector streams per cycle; R output rows drain.
        bw.inputRhs = Bytes(cfg.peCols) * cfg.inputBytes;
        bw.output = Bytes(cfg.peCols) * cfg.drainRowsPerCycle *
                    cfg.accumBytes;
        break;
    }
    return bw;
}

} // namespace diva
