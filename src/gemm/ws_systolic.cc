#include "gemm/ws_systolic.h"

#include <algorithm>

#include "common/logging.h"

namespace diva
{

WsSystolicModel::WsSystolicModel(const AcceleratorConfig &cfg)
    : GemmEngineModel(cfg)
{
    DIVA_ASSERT(cfg.dataflow == Dataflow::kWeightStationary);
}

Cycles
WsSystolicModel::computeCycles(const GemmShape &shape) const
{
    const std::int64_t pe_h = cfg_.peRows;
    const std::int64_t pe_w = cfg_.peCols;
    const std::int64_t fill = cfg_.weightFillRowsPerCycle;

    const std::int64_t tiles_k = ceilDiv(shape.k, pe_h);
    const std::int64_t tiles_n = ceilDiv(shape.n, pe_w);

    Cycles total = 0;
    bool first_tile = true;
    for (std::int64_t tk = 0; tk < tiles_k; ++tk) {
        const std::int64_t kt =
            std::min<std::int64_t>(pe_h, shape.k - tk * pe_h);
        for (std::int64_t tn = 0; tn < tiles_n; ++tn) {
            const std::int64_t nt =
                std::min<std::int64_t>(pe_w, shape.n - tn * pe_w);
            // Latch the (kt x nt) weight tile, then stream all M LHS
            // rows through it. The stream occupies M + kt + nt - 1
            // cycles due to the diagonal input/output skew
            // (Figure 3(c): M + K + PE_W - 1).
            const Cycles latch = Cycles(ceilDiv(kt, fill));
            const Cycles stream = Cycles(shape.m + kt + nt - 1);
            if (cfg_.wsDoubleBufferWeights) {
                // Double-buffered latches hide the fill behind the
                // previous tile's stream; only the first fill and any
                // fill longer than a stream stay exposed.
                total += first_tile ? latch + stream
                                    : std::max(latch, stream);
            } else {
                total += latch + stream;
            }
            first_tile = false;
        }
    }
    return total;
}

Bytes
WsSystolicModel::sramReadBytesPerCycle() const
{
    // Table I: LHS stream PE_H x 2B plus weight fill PE_W x 8 x 2B.
    return Bytes(cfg_.peRows) * cfg_.inputBytes +
           Bytes(cfg_.peCols) * cfg_.weightFillRowsPerCycle *
               cfg_.inputBytes;
}

Bytes
WsSystolicModel::sramWriteBytesPerCycle() const
{
    // Table I: one output row of PE_W elements per cycle, 4B each.
    return Bytes(cfg_.peCols) * cfg_.accumBytes;
}

} // namespace diva
