#include "gemm/gemm_shape.h"

#include <sstream>

namespace diva
{

std::string
GemmShape::str() const
{
    std::ostringstream oss;
    oss << m << "x" << k << "x" << n;
    return oss.str();
}

} // namespace diva
