#include "gemm/outer_product.h"

#include <algorithm>

#include "common/logging.h"

namespace diva
{

OuterProductModel::OuterProductModel(const AcceleratorConfig &cfg)
    : GemmEngineModel(cfg)
{
    DIVA_ASSERT(cfg.dataflow == Dataflow::kOuterProduct);
}

Cycles
OuterProductModel::computeCycles(const GemmShape &shape) const
{
    const std::int64_t pe_h = cfg_.peRows;
    const std::int64_t pe_w = cfg_.peCols;
    const std::int64_t drain = cfg_.drainRowsPerCycle;

    const std::int64_t tiles_m = ceilDiv(shape.m, pe_h);
    const std::int64_t tiles_n = ceilDiv(shape.n, pe_w);

    // Broadcast over the local buses has a short, constant pipeline
    // fill (bus drive + multiply + accumulate register).
    constexpr Cycles kPipelineFill = 2;

    Cycles total = 0;
    for (std::int64_t tm = 0; tm < tiles_m; ++tm) {
        const std::int64_t mt =
            std::min<std::int64_t>(pe_h, shape.m - tm * pe_h);
        for (std::int64_t tn = 0; tn < tiles_n; ++tn) {
            (void)tn;
            // K vector pairs streamed, one per cycle; no skew. The
            // R-rows-per-cycle drain proceeds progressively, so the
            // next tile's accumulation overlaps the drain in rows that
            // have already been read out: the tile costs
            // max(K, drain-time) rather than their sum.
            const Cycles accumulate = Cycles(shape.k);
            const Cycles drain_cycles = Cycles(ceilDiv(mt, drain));
            total += std::max(accumulate, drain_cycles) + kPipelineFill;
        }
    }
    return total;
}

Bytes
OuterProductModel::sramReadBytesPerCycle() const
{
    // Two input vectors per cycle: O(PE_H + PE_W), same as systolic OS
    // (Table I / Section IV-D).
    return Bytes(cfg_.peRows) * cfg_.inputBytes +
           Bytes(cfg_.peCols) * cfg_.inputBytes;
}

Bytes
OuterProductModel::sramWriteBytesPerCycle() const
{
    return Bytes(cfg_.peCols) * cfg_.drainRowsPerCycle * cfg_.accumBytes;
}

} // namespace diva
