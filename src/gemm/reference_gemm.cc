#include "gemm/reference_gemm.h"

#include <algorithm>

#include "common/logging.h"

namespace diva
{

namespace
{

void
checkOperands(const GemmShape &shape, const std::vector<float> &a,
              const std::vector<float> &b)
{
    DIVA_ASSERT(shape.valid());
    DIVA_ASSERT(a.size() == std::size_t(shape.m) * std::size_t(shape.k),
                "LHS size mismatch for ", shape.str());
    DIVA_ASSERT(b.size() == std::size_t(shape.k) * std::size_t(shape.n),
                "RHS size mismatch for ", shape.str());
}

} // namespace

std::vector<float>
gemmInnerProduct(const GemmShape &shape, const std::vector<float> &a,
                 const std::vector<float> &b)
{
    checkOperands(shape, a, b);
    std::vector<float> c(std::size_t(shape.m) * std::size_t(shape.n),
                         0.0f);
    for (std::int64_t i = 0; i < shape.m; ++i) {
        for (std::int64_t j = 0; j < shape.n; ++j) {
            float acc = 0.0f;
            for (std::int64_t kk = 0; kk < shape.k; ++kk)
                acc += a[i * shape.k + kk] * b[kk * shape.n + j];
            c[i * shape.n + j] = acc;
        }
    }
    return c;
}

std::vector<float>
gemmOuterProduct(const GemmShape &shape, const std::vector<float> &a,
                 const std::vector<float> &b)
{
    checkOperands(shape, a, b);
    std::vector<float> c(std::size_t(shape.m) * std::size_t(shape.n),
                         0.0f);
    for (std::int64_t kk = 0; kk < shape.k; ++kk) {
        for (std::int64_t i = 0; i < shape.m; ++i) {
            const float ai = a[i * shape.k + kk];
            for (std::int64_t j = 0; j < shape.n; ++j)
                c[i * shape.n + j] += ai * b[kk * shape.n + j];
        }
    }
    return c;
}

std::vector<float>
gemmTiledOuterProduct(const GemmShape &shape, const std::vector<float> &a,
                      const std::vector<float> &b, int tile_m, int tile_n)
{
    checkOperands(shape, a, b);
    DIVA_ASSERT(tile_m > 0 && tile_n > 0);
    std::vector<float> c(std::size_t(shape.m) * std::size_t(shape.n),
                         0.0f);
    for (std::int64_t m0 = 0; m0 < shape.m; m0 += tile_m) {
        const std::int64_t m1 =
            std::min<std::int64_t>(shape.m, m0 + tile_m);
        for (std::int64_t n0 = 0; n0 < shape.n; n0 += tile_n) {
            const std::int64_t n1 =
                std::min<std::int64_t>(shape.n, n0 + tile_n);
            // Rank-1 updates into the resident output tile, exactly the
            // per-cycle accumulation of the outer-product PE array.
            for (std::int64_t kk = 0; kk < shape.k; ++kk) {
                for (std::int64_t i = m0; i < m1; ++i) {
                    const float ai = a[i * shape.k + kk];
                    for (std::int64_t j = n0; j < n1; ++j)
                        c[i * shape.n + j] += ai * b[kk * shape.n + j];
                }
            }
        }
    }
    return c;
}

} // namespace diva
