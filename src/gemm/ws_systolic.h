/**
 * @file
 * Weight-stationary systolic array cycle model (TPUv3-like baseline).
 *
 * The RHS ("weight") matrix is latched into the array in (peRows x
 * peCols) tiles at weightFillRowsPerCycle rows per cycle; the LHS is
 * then streamed from the left edge with diagonal skew. A K-dimension
 * tile smaller than peRows latches only part of the array, leaving the
 * remaining PE rows idle for the whole stream -- the paper's root cause
 * for DP-SGD's low utilization (Sections II-D, III-C).
 */

#ifndef DIVA_GEMM_WS_SYSTOLIC_H
#define DIVA_GEMM_WS_SYSTOLIC_H

#include "gemm/engine.h"

namespace diva
{

/** Cycle model of a weight-stationary systolic GEMM engine. */
class WsSystolicModel : public GemmEngineModel
{
  public:
    explicit WsSystolicModel(const AcceleratorConfig &cfg);

  protected:
    Cycles computeCycles(const GemmShape &shape) const override;
    Bytes sramReadBytesPerCycle() const override;
    Bytes sramWriteBytesPerCycle() const override;
};

} // namespace diva

#endif // DIVA_GEMM_WS_SYSTOLIC_H
