/**
 * @file
 * DRAM traffic model for tiled GEMM execution.
 *
 * The scheduler keeps output tiles resident while streaming the K
 * dimension, and reuses whole operands when they fit in their SRAM
 * partition. Otherwise traffic multiplies by the number of passes over
 * the non-resident operand, as in any blocked GEMM.
 */

#ifndef DIVA_GEMM_TRAFFIC_MODEL_H
#define DIVA_GEMM_TRAFFIC_MODEL_H

#include "gemm/engine.h"
#include "gemm/gemm_shape.h"
#include "mem/dram_model.h"
#include "mem/sram_buffer.h"

namespace diva
{

/**
 * Estimate the off-chip traffic of one tiled GEMM.
 *
 * @param shape      GEMM dimensions
 * @param sram       SRAM partition capacities
 * @param input_bytes  element width of LHS/RHS (BF16: 2)
 * @param accum_bytes  element width of the output (FP32: 4)
 * @param opt        per-GEMM options (output commit, operand residency)
 */
DramTraffic gemmDramTraffic(const GemmShape &shape, const SramBuffer &sram,
                            int input_bytes, int accum_bytes,
                            const GemmOptions &opt);

} // namespace diva

#endif // DIVA_GEMM_TRAFFIC_MODEL_H
