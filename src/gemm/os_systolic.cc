#include "gemm/os_systolic.h"

#include "common/logging.h"

namespace diva
{

OsSystolicModel::OsSystolicModel(const AcceleratorConfig &cfg)
    : GemmEngineModel(cfg)
{
    DIVA_ASSERT(cfg.dataflow == Dataflow::kOutputStationary);
}

Cycles
OsSystolicModel::computeCycles(const GemmShape &shape) const
{
    const std::int64_t pe_h = cfg_.peRows;
    const std::int64_t pe_w = cfg_.peCols;
    const std::int64_t drain = cfg_.drainRowsPerCycle;

    const std::int64_t tiles_m = ceilDiv(shape.m, pe_h);
    const std::int64_t tiles_n = ceilDiv(shape.n, pe_w);

    Cycles total = 0;
    for (std::int64_t tm = 0; tm < tiles_m; ++tm) {
        const std::int64_t mt =
            std::min<std::int64_t>(pe_h, shape.m - tm * pe_h);
        for (std::int64_t tn = 0; tn < tiles_n; ++tn) {
            const std::int64_t nt =
                std::min<std::int64_t>(pe_w, shape.n - tn * pe_w);
            // Figure 3(b): the skewed LHS/RHS streams take
            // K + mt + nt - 1 cycles to produce the final partial sum;
            // the latched outputs must then drain before the PEs can
            // start the next tile's accumulation.
            const Cycles stream = Cycles(shape.k + mt + nt - 1);
            const Cycles drain_cycles = Cycles(ceilDiv(mt, drain));
            total += stream + drain_cycles;
        }
    }
    return total;
}

Bytes
OsSystolicModel::sramReadBytesPerCycle() const
{
    // Table I: one LHS vector (PE_H) and one RHS vector (PE_W) per
    // cycle, both 2B elements.
    return Bytes(cfg_.peRows) * cfg_.inputBytes +
           Bytes(cfg_.peCols) * cfg_.inputBytes;
}

Bytes
OsSystolicModel::sramWriteBytesPerCycle() const
{
    // Table I: R output rows of PE_W elements drained per cycle, 4B.
    return Bytes(cfg_.peCols) * cfg_.drainRowsPerCycle * cfg_.accumBytes;
}

} // namespace diva
