#include "gemm/traffic_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace diva
{

DramTraffic
gemmDramTraffic(const GemmShape &shape, const SramBuffer &sram,
                int input_bytes, int accum_bytes, const GemmOptions &opt)
{
    DIVA_ASSERT(shape.valid(), "invalid GEMM shape ", shape.str());

    const Bytes lhs = shape.lhsBytes(input_bytes);
    const Bytes rhs = shape.rhsBytes(input_bytes);
    const Bytes out = shape.outBytes(accum_bytes);

    DramTraffic t;
    if (opt.writeOutputToDram)
        t.writeBytes = out;

    const Bytes lhs_read = opt.lhsFromDram ? lhs : 0;
    const Bytes rhs_read = opt.rhsFromDram ? rhs : 0;

    // Case 1: an operand fits entirely in its partition -> both operands
    // are fetched exactly once (stream the other one, accumulate output
    // tiles in the output buffer / PE accumulators).
    if (sram.lhsFits(lhs) || sram.rhsFits(rhs)) {
        t.readBytes = lhs_read + rhs_read;
        return t;
    }

    // Case 2: blocked execution with square-ish resident output tiles.
    // For an output tile of side T, the LHS is re-read once per column
    // block and the RHS once per row block.
    const std::int64_t tile =
        std::max<std::int64_t>(128,
            std::int64_t(std::sqrt(double(sram.outCapacity()) /
                                   double(accum_bytes))));
    const std::int64_t mt = std::min<std::int64_t>(shape.m, tile);
    const std::int64_t nt = std::min<std::int64_t>(shape.n, tile);
    const std::int64_t row_blocks = ceilDiv(shape.m, mt);
    const std::int64_t col_blocks = ceilDiv(shape.n, nt);

    t.readBytes = lhs_read * Bytes(col_blocks) + rhs_read * Bytes(row_blocks);
    return t;
}

} // namespace diva
