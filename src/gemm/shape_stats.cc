#include "gemm/shape_stats.h"

namespace diva
{

std::size_t
KDimHistogram::bucketFor(std::int64_t k)
{
    for (std::size_t i = 0; i < kBucketBounds.size(); ++i)
        if (k <= kBucketBounds[i])
            return i;
    return kBucketBounds.size();
}

const char *
KDimHistogram::bucketLabel(std::size_t bucket)
{
    static const char *labels[kNumBuckets] = {
        "K=1", "K<=8", "K<=32", "K<=128", "K<=512", "K>512"};
    return bucket < kNumBuckets ? labels[bucket] : "?";
}

double
KDimHistogram::cumulativeFraction(std::size_t bucket) const
{
    if (totalGemms == 0)
        return 0.0;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i <= bucket && i < kNumBuckets; ++i)
        acc += counts[i];
    return double(acc) / double(totalGemms);
}

ShapeStats
collectShapeStats(const OpStream &stream)
{
    ShapeStats stats;
    for (const auto &op : stream.ops) {
        if (op.type != OpType::kGemm)
            continue;
        const std::size_t bucket =
            KDimHistogram::bucketFor(op.shape.k);
        stats.all.counts[bucket] += op.count;
        stats.all.totalGemms += op.count;
        if (op.stage == Stage::kPerExampleGrad) {
            stats.perExample.counts[bucket] += op.count;
            stats.perExample.totalGemms += op.count;
        }
        if (op.shape.k <= 32)
            stats.smallKGemms += op.count;
        stats.totalGemms += op.count;
    }
    return stats;
}

} // namespace diva
