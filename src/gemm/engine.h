/**
 * @file
 * Abstract cycle-level GEMM engine model and its result record.
 *
 * Concrete engines implement the three dataflows studied in the paper:
 * weight-stationary systolic (WsSystolicModel), output-stationary
 * systolic (OsSystolicModel), and DiVa's outer-product broadcast engine
 * (OuterProductModel). All engines share the same DRAM traffic model so
 * that performance differences come from the dataflow, as in the paper.
 */

#ifndef DIVA_GEMM_ENGINE_H
#define DIVA_GEMM_ENGINE_H

#include <memory>

#include "arch/accelerator_config.h"
#include "common/types.h"
#include "gemm/gemm_shape.h"
#include "mem/dram_model.h"
#include "mem/sram_buffer.h"

namespace diva
{

/** Per-GEMM execution knobs controlled by the training planner. */
struct GemmOptions
{
    /**
     * Whether the GEMM output is committed to DRAM. Per-example weight
     * gradients that are consumed on-the-fly by the PPU (norm-only use
     * under DP-SGD(R)) never leave the chip, which is the source of the
     * paper's 99% post-processing traffic reduction.
     */
    bool writeOutputToDram = true;

    /** Whether the LHS/RHS operands must be fetched from DRAM. */
    bool lhsFromDram = true;
    bool rhsFromDram = true;
};

/** Outcome of simulating one GEMM (or a batch of identical GEMMs). */
struct GemmResult
{
    /** PE-array occupancy, before overlapping with memory. */
    Cycles computeCycles = 0;

    /** DRAM streaming time for all operand/output traffic. */
    Cycles memoryCycles = 0;

    /** Final latency: max(compute, memory) plus fixed access latency. */
    Cycles cycles = 0;

    /** MACs that contribute to the mathematical result. */
    Macs usefulMacs = 0;

    /** Off-chip traffic. */
    DramTraffic dram;

    /** On-chip SRAM traffic (for the energy model). */
    Bytes sramReadBytes = 0;
    Bytes sramWriteBytes = 0;

    /** Effective FLOPS utilization: useful MACs over peak MACs. */
    double utilization(const AcceleratorConfig &cfg) const
    {
        if (cycles == 0)
            return 0.0;
        return double(usefulMacs) /
               (double(cycles) * double(cfg.macsPerCycle()));
    }

    /** Effective TFLOPS achieved. */
    double effectiveTflops(const AcceleratorConfig &cfg) const
    {
        return utilization(cfg) * cfg.peakTflops();
    }

    GemmResult &operator+=(const GemmResult &o);
};

/**
 * Base class for cycle-level GEMM engine models. Subclasses provide the
 * dataflow-specific compute-cycle count; the base class supplies the
 * shared DRAM traffic model and compute/memory overlap policy.
 */
class GemmEngineModel
{
  public:
    explicit GemmEngineModel(const AcceleratorConfig &cfg);
    virtual ~GemmEngineModel() = default;

    /** Simulate a single GEMM. */
    GemmResult simulate(const GemmShape &shape,
                        const GemmOptions &opt = {}) const;

    /**
     * Simulate `count` independent GEMMs of identical shape (e.g. the
     * B per-example weight-gradient GEMMs of one layer). The GEMMs are
     * assumed to be issued back-to-back so the DRAM access latency is
     * charged once for the whole train.
     */
    GemmResult simulateBatched(const GemmShape &shape, std::uint64_t count,
                               const GemmOptions &opt = {}) const;

    const AcceleratorConfig &config() const { return cfg_; }

    /** Factory keyed on cfg.dataflow. */
    static std::unique_ptr<GemmEngineModel>
    create(const AcceleratorConfig &cfg);

  protected:
    /**
     * Dataflow-specific PE-array occupancy in cycles for one GEMM,
     * excluding memory stalls. Must also report SRAM traffic.
     */
    virtual Cycles computeCycles(const GemmShape &shape) const = 0;

    /** Per-cycle SRAM read/write rates of this dataflow (Table I). */
    virtual Bytes sramReadBytesPerCycle() const = 0;
    virtual Bytes sramWriteBytesPerCycle() const = 0;

    AcceleratorConfig cfg_;
    DramModel dram_;
    SramBuffer sram_;
};

} // namespace diva

#endif // DIVA_GEMM_ENGINE_H
