#include "gemm/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "gemm/os_systolic.h"
#include "gemm/outer_product.h"
#include "gemm/traffic_model.h"
#include "gemm/ws_systolic.h"

namespace diva
{

GemmResult &
GemmResult::operator+=(const GemmResult &o)
{
    computeCycles += o.computeCycles;
    memoryCycles += o.memoryCycles;
    cycles += o.cycles;
    usefulMacs += o.usefulMacs;
    dram += o.dram;
    sramReadBytes += o.sramReadBytes;
    sramWriteBytes += o.sramWriteBytes;
    return *this;
}

GemmEngineModel::GemmEngineModel(const AcceleratorConfig &cfg)
    : cfg_(cfg), dram_(cfg), sram_(cfg)
{
    cfg_.validate();
}

GemmResult
GemmEngineModel::simulate(const GemmShape &shape,
                          const GemmOptions &opt) const
{
    return simulateBatched(shape, 1, opt);
}

GemmResult
GemmEngineModel::simulateBatched(const GemmShape &shape,
                                 std::uint64_t count,
                                 const GemmOptions &opt) const
{
    DIVA_ASSERT(shape.valid(), "invalid GEMM shape ", shape.str());
    if (count == 0)
        return {};

    GemmResult r;
    r.computeCycles = computeCycles(shape) * count;
    r.usefulMacs = shape.macs() * count;

    DramTraffic per_gemm =
        gemmDramTraffic(shape, sram_, cfg_.inputBytes, cfg_.accumBytes,
                        opt);
    r.dram.readBytes = per_gemm.readBytes * count;
    r.dram.writeBytes = per_gemm.writeBytes * count;
    r.memoryCycles = dram_.streamingCycles(r.dram.total());

    // Double-buffered operand staging lets compute overlap the DRAM
    // streams; the GEMM finishes when the slower of the two is done,
    // plus one exposed access latency for the leading tile.
    r.cycles = std::max(r.computeCycles, r.memoryCycles) +
               cfg_.dramLatencyCycles;

    // On-chip traffic runs at the dataflow's per-cycle port rates for
    // the duration of the compute phase (Table I).
    r.sramReadBytes = sramReadBytesPerCycle() * r.computeCycles;
    r.sramWriteBytes = sramWriteBytesPerCycle() * r.computeCycles;
    return r;
}

std::unique_ptr<GemmEngineModel>
GemmEngineModel::create(const AcceleratorConfig &cfg)
{
    switch (cfg.dataflow) {
      case Dataflow::kWeightStationary:
        return std::make_unique<WsSystolicModel>(cfg);
      case Dataflow::kOutputStationary:
        return std::make_unique<OsSystolicModel>(cfg);
      case Dataflow::kOuterProduct:
        return std::make_unique<OuterProductModel>(cfg);
    }
    DIVA_PANIC("unknown dataflow");
}

} // namespace diva
