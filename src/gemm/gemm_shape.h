/**
 * @file
 * GEMM shape descriptor and the Figure-6 shape algebra helpers.
 *
 * A GEMM multiplies an (M,K) LHS by a (K,N) RHS into an (M,N) output.
 * DP-SGD's characteristic pathology is GEMMs whose K dimension is small
 * (per-example weight gradients), which map poorly onto systolic arrays.
 */

#ifndef DIVA_GEMM_GEMM_SHAPE_H
#define DIVA_GEMM_GEMM_SHAPE_H

#include <cstdint>
#include <string>

#include "common/types.h"

namespace diva
{

/** The (M, K, N) dimensions of one matrix multiplication. */
struct GemmShape
{
    std::int64_t m = 0;
    std::int64_t k = 0;
    std::int64_t n = 0;

    GemmShape() = default;
    GemmShape(std::int64_t m_, std::int64_t k_, std::int64_t n_)
        : m(m_), k(k_), n(n_) {}

    bool valid() const { return m > 0 && k > 0 && n > 0; }

    /** Multiply-accumulate count: M*K*N. */
    Macs macs() const { return Macs(m) * Macs(k) * Macs(n); }

    /** Floating point operations: 2*M*K*N. */
    double flops() const { return 2.0 * double(macs()); }

    /** Operand footprints. */
    Bytes lhsBytes(int elem_bytes) const
    {
        return Bytes(m) * Bytes(k) * Bytes(elem_bytes);
    }
    Bytes rhsBytes(int elem_bytes) const
    {
        return Bytes(k) * Bytes(n) * Bytes(elem_bytes);
    }
    Bytes outBytes(int elem_bytes) const
    {
        return Bytes(m) * Bytes(n) * Bytes(elem_bytes);
    }

    /**
     * Arithmetic intensity in MACs per byte moved (inputs plus the
     * FP32 output), the usual predictor of memory- vs compute-bound
     * behavior. Small-K GEMMs have low intensity: their output is as
     * large as their inputs but each element sees only K MACs.
     */
    double intensity(int elem_bytes) const
    {
        return double(macs()) /
               double(lhsBytes(elem_bytes) + rhsBytes(elem_bytes) +
                      outBytes(2 * elem_bytes));
    }

    /** "MxKxN" string for logs and tables. */
    std::string str() const;

    bool operator==(const GemmShape &o) const = default;
};

} // namespace diva

#endif // DIVA_GEMM_GEMM_SHAPE_H
