/**
 * @file
 * Output-stationary systolic array cycle model.
 *
 * Each PE owns one output element; LHS and RHS vectors stream in from
 * the left and top edges with diagonal skew and partial sums accumulate
 * locally. After the K-dimension is exhausted the latched outputs are
 * drained row-by-row (optionally straight into the PPU, Section IV-C).
 * Like WS, a small K dimension is dominated by the skew overhead, so OS
 * alone does not fix DP-SGD's per-example gradient GEMMs.
 */

#ifndef DIVA_GEMM_OS_SYSTOLIC_H
#define DIVA_GEMM_OS_SYSTOLIC_H

#include "gemm/engine.h"

namespace diva
{

/** Cycle model of an output-stationary systolic GEMM engine. */
class OsSystolicModel : public GemmEngineModel
{
  public:
    explicit OsSystolicModel(const AcceleratorConfig &cfg);

  protected:
    Cycles computeCycles(const GemmShape &shape) const override;
    Bytes sramReadBytesPerCycle() const override;
    Bytes sramWriteBytesPerCycle() const override;
};

} // namespace diva

#endif // DIVA_GEMM_OS_SYSTOLIC_H
