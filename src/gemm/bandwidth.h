/**
 * @file
 * Analytic on-chip SRAM bandwidth requirements per dataflow (Table I).
 *
 * The WS dataflow needs a wide weight-fill port but drains one output
 * row per cycle; OS-class dataflows (systolic OS and outer-product)
 * read two input vectors per cycle and drain R output rows per cycle.
 */

#ifndef DIVA_GEMM_BANDWIDTH_H
#define DIVA_GEMM_BANDWIDTH_H

#include "arch/accelerator_config.h"
#include "common/types.h"

namespace diva
{

/** Per-cycle SRAM port requirements of one dataflow (bytes/clock). */
struct SramBandwidth
{
    Bytes inputLhs = 0;
    Bytes inputRhs = 0;
    Bytes output = 0;

    Bytes total() const { return inputLhs + inputRhs + output; }
};

/**
 * Table I entry for the given dataflow under the given configuration.
 * With TPUv3-level parameters (PE 128x128, 2B inputs, 4B outputs,
 * 8-row fill/drain) this reproduces the paper's
 * (2*PE_H + 20*PE_W) B for WS and (2*PE_H + 34*PE_W) B for OS/outer.
 */
SramBandwidth sramBandwidthRequirement(const AcceleratorConfig &cfg);

} // namespace diva

#endif // DIVA_GEMM_BANDWIDTH_H
