/**
 * @file
 * Shared observability plumbing for the CLI tools: one struct holding
 * the parsed --metrics-out / --trace-out / --timeseries-out /
 * --obs-window-s / --slo-p99-s / --profile / --trace-max-events
 * values, the switch-on step, and the end-of-run emission of metrics
 * JSON, trace JSON, the timeseries document and the profile table.
 * All three tools (diva_sweep, diva_serve, diva_fleet) funnel through
 * this so the flags mean the same thing everywhere.
 */

#ifndef DIVA_OBS_CLI_H
#define DIVA_OBS_CLI_H

#include <memory>
#include <string>

#include "obs/slo.h"
#include "obs/trace.h"

namespace diva
{
namespace obs
{

struct CliObs
{
    std::string metricsOut;    ///< --metrics-out FILE.json
    std::string traceOut;      ///< --trace-out FILE.json
    std::string timeseriesOut; ///< --timeseries-out FILE.{json,csv}
    bool profile = false;      ///< --profile (stderr table)

    /** --obs-window-s W (<= 0: auto, trace span / 64). */
    double obsWindowSec = 0.0;

    /** Raw --slo-p99-s text; parsed and validated by activate(). */
    std::string sloSpecText;

    /** --trace-max-events N (per track; see obs/trace.h). */
    std::size_t traceMaxEvents = TraceSink::kDefaultMaxEventsPerTrack;

    /** Live only between activate() and finish() when tracing is on. */
    std::unique_ptr<TraceSink> sink;

    /** Live only between activate() and finish() when the windowed
     *  telemetry layer is on (--timeseries-out / --slo-p99-s). */
    std::unique_ptr<RunTelemetry> telemetry;

    bool
    any() const
    {
        return !metricsOut.empty() || !traceOut.empty() ||
               !timeseriesOut.empty() || !sloSpecText.empty() ||
               profile;
    }

    /**
     * Validate the parsed flags and flip on whatever they ask for:
     * the metrics registry, the profiler, the trace sink
     * (--trace-out) and the telemetry bundle (--timeseries-out /
     * --slo-p99-s). Every output path is probed for writability here,
     * so a bad path fails fast at startup -- false means a clear
     * message already went to stderr and the tool should exit
     * non-zero. Call once, after argument parsing, before the
     * simulation.
     */
    bool activate();

    /**
     * Emit everything that was collected: metrics JSON to
     * `metricsOut`, trace JSON to `traceOut`, the timeseries document
     * to `timeseriesOut` (CSV when the path ends in .csv, JSON
     * otherwise), the SLO attainment summary and the profile table to
     * stderr. Returns false (with a DIVA_WARN naming the file) if
     * any requested output could not be written.
     */
    bool finish();
};

/** Usage-text block describing the shared observability flags. */
const char *cliObsUsage();

} // namespace obs
} // namespace diva

#endif // DIVA_OBS_CLI_H
