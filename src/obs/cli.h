/**
 * @file
 * Shared observability plumbing for the CLI tools: one struct holding
 * the parsed --metrics-out / --trace-out / --profile /
 * --trace-max-events values, the switch-on step, and the end-of-run
 * emission of metrics JSON, trace JSON and the profile table. All
 * three tools (diva_sweep, diva_serve, diva_fleet) funnel through
 * this so the flags mean the same thing everywhere.
 */

#ifndef DIVA_OBS_CLI_H
#define DIVA_OBS_CLI_H

#include <memory>
#include <string>

#include "obs/trace.h"

namespace diva
{
namespace obs
{

struct CliObs
{
    std::string metricsOut; ///< --metrics-out FILE.json
    std::string traceOut;   ///< --trace-out FILE.json
    bool profile = false;   ///< --profile (stderr table)

    /** --trace-max-events N (per track; see obs/trace.h). */
    std::size_t traceMaxEvents = TraceSink::kDefaultMaxEventsPerTrack;

    /** Live only between activate() and finish() when tracing is on. */
    std::unique_ptr<TraceSink> sink;

    bool
    any() const
    {
        return !metricsOut.empty() || !traceOut.empty() || profile;
    }

    /**
     * Flip on whatever the parsed flags ask for: the metrics
     * registry, the profiler, and (for --trace-out) the trace sink.
     * Call once, after argument parsing, before the simulation.
     */
    void activate();

    /**
     * Emit everything that was collected: metrics JSON to
     * `metricsOut`, trace JSON to `traceOut`, and the profile table
     * to stderr. Returns false (with a DIVA_WARN naming the file) if
     * any requested output could not be written.
     */
    bool finish();
};

/** Usage-text block describing the shared observability flags. */
const char *cliObsUsage();

} // namespace obs
} // namespace diva

#endif // DIVA_OBS_CLI_H
