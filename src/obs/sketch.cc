#include "obs/sketch.h"

#include <algorithm>
#include <cmath>

namespace diva
{
namespace obs
{

std::uint64_t &
QuantileSketch::slotFor(int idx)
{
    if (counts_.empty()) {
        base_ = idx;
        counts_.assign(1, 0);
    } else if (idx < base_) {
        counts_.insert(counts_.begin(), std::size_t(base_ - idx), 0);
        base_ = idx;
    } else if (idx >= base_ + int(counts_.size())) {
        counts_.resize(std::size_t(idx - base_) + 1, 0);
    }
    return counts_[std::size_t(idx - base_)];
}

void
QuantileSketch::merge(const QuantileSketch &other)
{
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    if (other.counts_.empty())
        return;
    // Cover the union span once, then add slot-wise: pure integer
    // adds over a layout that is a function of the values alone, so
    // any merge order yields identical state.
    slotFor(other.base_);
    slotFor(other.base_ + int(other.counts_.size()) - 1);
    for (std::size_t i = 0; i < other.counts_.size(); ++i)
        counts_[std::size_t(other.base_ + int(i) - base_)] +=
            other.counts_[i];
}

std::map<int, std::uint64_t>
QuantileSketch::buckets() const
{
    std::map<int, std::uint64_t> out;
    for (std::size_t i = 0; i < counts_.size(); ++i)
        if (counts_[i] != 0)
            out[base_ + int(i)] = counts_[i];
    return out;
}

double
QuantileSketch::percentile(double p) const
{
    if (count_ == 0)
        return std::numeric_limits<double>::quiet_NaN();
    p = std::clamp(p, 0.0, 100.0);
    std::uint64_t rank =
        std::uint64_t(std::ceil(p / 100.0 * double(count_)));
    rank = std::clamp<std::uint64_t>(rank, 1, count_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen >= rank)
            return std::clamp(bucketUpperBound(base_ + int(i)), min_,
                              max_);
    }
    return max_; // unreachable when bucket counts sum to count_
}

} // namespace obs
} // namespace diva
