/**
 * @file
 * Deterministic, mergeable, bounded-memory quantile sketch for the
 * windowed telemetry layer (obs/timeseries.h).
 *
 * Layout: fixed log-linear buckets derived straight from the IEEE-754
 * bit pattern -- for a positive double the top 16 bits (sign, 11
 * exponent bits, 4 mantissa bits) are a monotone key, giving 16
 * linearly spaced sub-buckets per power-of-two octave. The layout is a
 * pure function of the value, so merging two sketches is commutative
 * and associative integer addition: merge order (thread exit order,
 * pod order) cannot change a byte of the result.
 *
 * Error bound: percentile() returns the inclusive upper bound of the
 * bucket holding the nearest-rank sample, clamped to [min, max]. For
 * a true rank sample v the reported value r satisfies
 *
 *     v <= r <= v * (1 + 1/16)
 *
 * i.e. at most a 6.25% relative overestimate, never an underestimate
 * (the all-samples-equal case is exact: the clamp to max collapses the
 * bucket bound onto the sample).
 *
 * Storage is one contiguous counter array covering [lowest occupied
 * bucket, highest occupied bucket], so the per-sample cost is a bucket
 * computation (a bit shift) plus one bounds check and one increment --
 * this sits on the engines' per-step path, where a node-based map's
 * pointer chase was measurably too slow. Memory is O(occupied bucket
 * span), independent of the sample count; latencies spanning 2^k
 * octaves occupy 16k + O(1) slots (8 bytes each), with a hard ceiling
 * of ~256 KiB for samples spanning the entire double range.
 *
 * Cross-checked against src/common/percentile.cc exact ranks in
 * tests/test_timeseries.cc.
 */

#ifndef DIVA_OBS_SKETCH_H
#define DIVA_OBS_SKETCH_H

#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <vector>

namespace diva
{
namespace obs
{

class QuantileSketch
{
  public:
    /** Linear sub-buckets per power-of-two octave (4 mantissa bits). */
    static constexpr int kSubBuckets = 16;

    /** Maximum relative overestimate of percentile(): 1/kSubBuckets. */
    static constexpr double kRelativeError = 1.0 / kSubBuckets;

    /** Bucket for samples <= 0 (upper bound 0). */
    static constexpr int kUnderflowBucket = -1;

    /**
     * The bucket holding `v`: monotone in v, 16 sub-buckets per
     * octave. Non-finite and non-positive samples collapse into the
     * underflow / top bucket so the layout stays total.
     */
    static int
    bucketIndex(double v)
    {
        if (!(v > 0.0))
            return kUnderflowBucket; // <= 0 and NaN
        if (v == std::numeric_limits<double>::infinity())
            return kOverflowBucket;
        return int(std::bit_cast<std::uint64_t>(v) >> 48);
    }

    /** Inclusive upper bound of bucket `index` (0 for underflow). */
    static double
    bucketUpperBound(int index)
    {
        if (index == kUnderflowBucket)
            return 0.0;
        if (index >= kOverflowBucket)
            return std::numeric_limits<double>::infinity();
        return std::bit_cast<double>(std::uint64_t(index + 1) << 48);
    }

    void
    add(double v)
    {
        if (v != v)
            return; // NaN samples are excluded (see percentile.cc)
        ++count_;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
        const int idx = bucketIndex(v);
        const std::size_t slot = std::size_t(idx - base_);
        if (slot < counts_.size()) {
            ++counts_[slot]; // the per-step fast path
            return;
        }
        ++slotFor(idx);
    }

    /** Fold `other` in; integer bucket adds, so order-independent. */
    void merge(const QuantileSketch &other);

    std::uint64_t
    count() const
    {
        return count_;
    }

    bool
    empty() const
    {
        return count_ == 0;
    }

    /** Smallest / largest sample seen (+inf / -inf when empty). */
    double
    minValue() const
    {
        return min_;
    }
    double
    maxValue() const
    {
        return max_;
    }

    /**
     * Nearest-rank percentile (p in [0, 100]) over the bucket upper
     * bounds, clamped to [min, max]; NaN when empty. See the file
     * comment for the error bound.
     */
    double percentile(double p) const;

    /** Occupied (index, count) buckets in index (value) order --
     *  built on demand; for inspection and tests, not the hot path. */
    std::map<int, std::uint64_t> buckets() const;

  private:
    /** First non-finite top-bit pattern (0x7ff0 << 48 is +inf). */
    static constexpr int kOverflowBucket = 0x7ff0;

    /** Grow the counter array to cover bucket `idx` (the slow path:
     *  at most once per octave/16 of new dynamic range). */
    std::uint64_t &slotFor(int idx);

    /** Counter for bucket base_ + i at counts_[i]. */
    std::vector<std::uint64_t> counts_;
    int base_ = 0; // meaningful only when counts_ is non-empty

    std::uint64_t count_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace obs
} // namespace diva

#endif // DIVA_OBS_SKETCH_H
