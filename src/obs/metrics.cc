#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/format.h"

namespace diva
{
namespace obs
{

namespace
{

/** Shared underflow bucket for samples <= 0 (and -inf). */
constexpr int kUnderflowBucket = std::numeric_limits<int>::min();

} // namespace

/**
 * Per-thread spill area. The per-shard mutex is uncontended on the
 * hot path (only the owning thread and the snapshot walk take it),
 * so an update is one uncontended lock plus a map upsert.
 */
struct MetricsRegistry::Shard
{
    struct Hist
    {
        std::uint64_t count = 0;
        double min = std::numeric_limits<double>::infinity();
        double max = -std::numeric_limits<double>::infinity();
        std::map<int, std::uint64_t> buckets;
    };

    std::mutex mutex;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, Hist> hists;
};

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

void
MetricsRegistry::enable(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

MetricsRegistry::Shard &
MetricsRegistry::localShard()
{
    // The cached pointer stays valid across reset(): shards are
    // cleared in place, never deallocated, until process exit.
    static thread_local Shard *tls = nullptr;
    if (!tls) {
        std::lock_guard<std::mutex> lock(mutex_);
        shards_.push_back(std::make_unique<Shard>());
        tls = shards_.back().get();
    }
    return *tls;
}

void
MetricsRegistry::addCounter(const std::string &name, std::uint64_t delta)
{
    if (!enabled())
        return;
    Shard &shard = localShard();
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.counters[name] += delta;
}

void
MetricsRegistry::setGauge(const std::string &name, double value)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    gauges_[name] = value;
}

int
MetricsRegistry::bucketIndex(double v)
{
    if (!(v > 0.0) || v == std::numeric_limits<double>::infinity())
        return v == std::numeric_limits<double>::infinity()
                   ? std::numeric_limits<int>::max()
                   : kUnderflowBucket;
    int e = 0;
    const double m = std::frexp(v, &e); // v = m * 2^e, m in [0.5, 1)
    const int sub = std::min(3, int((m - 0.5) * 8.0));
    return e * 4 + sub;
}

double
MetricsRegistry::bucketUpperBound(int index)
{
    if (index == kUnderflowBucket)
        return 0.0;
    if (index == std::numeric_limits<int>::max())
        return std::numeric_limits<double>::infinity();
    // Floor division: frexp exponents go negative for values < 0.5.
    int e = index / 4;
    int s = index % 4;
    if (s < 0) {
        s += 4;
        --e;
    }
    return std::ldexp(0.5 + 0.125 * double(s + 1), e);
}

void
MetricsRegistry::recordValue(const std::string &name, double value)
{
    if (!enabled())
        return;
    if (std::isnan(value))
        return; // mirror percentile.cc: NaN samples are excluded
    Shard &shard = localShard();
    std::lock_guard<std::mutex> lock(shard.mutex);
    Shard::Hist &h = shard.hists[name];
    ++h.count;
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
    ++h.buckets[bucketIndex(value)];
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    std::map<std::string, std::map<int, std::uint64_t>> buckets;
    struct Range
    {
        std::uint64_t count = 0;
        double min = std::numeric_limits<double>::infinity();
        double max = -std::numeric_limits<double>::infinity();
    };
    std::map<std::string, Range> ranges;

    std::lock_guard<std::mutex> lock(mutex_);
    snap.gauges = gauges_;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> shardLock(shard->mutex);
        for (const auto &[name, value] : shard->counters)
            snap.counters[name] += value;
        for (const auto &[name, h] : shard->hists) {
            Range &r = ranges[name];
            r.count += h.count;
            r.min = std::min(r.min, h.min);
            r.max = std::max(r.max, h.max);
            for (const auto &[idx, n] : h.buckets)
                buckets[name][idx] += n;
        }
    }
    for (const auto &[name, r] : ranges) {
        HistogramSnapshot &h = snap.histograms[name];
        h.count = r.count;
        h.min = r.min;
        h.max = r.max;
        for (const auto &[idx, n] : buckets[name])
            h.buckets.push_back({bucketUpperBound(idx), n});
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    gauges_.clear();
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> shardLock(shard->mutex);
        shard->counters.clear();
        shard->hists.clear();
    }
}

double
HistogramSnapshot::percentile(double p) const
{
    if (count == 0)
        return std::numeric_limits<double>::quiet_NaN();
    p = std::clamp(p, 0.0, 100.0);
    std::uint64_t rank =
        std::uint64_t(std::ceil(p / 100.0 * double(count)));
    rank = std::clamp<std::uint64_t>(rank, 1, count);
    std::uint64_t seen = 0;
    for (const Bucket &b : buckets) {
        seen += b.count;
        if (seen >= rank)
            return std::clamp(b.le, min, max);
    }
    return max; // unreachable when bucket counts sum to `count`
}

void
MetricsSnapshot::writeJson(std::ostream &os) const
{
    os << "{\n  \"schema\": \"diva-metrics-v1\",\n  \"counters\": {";
    const char *sep = "\n";
    for (const auto &[name, value] : counters) {
        os << sep << "    \"" << jsonEscape(name) << "\": " << value;
        sep = ",\n";
    }
    os << (counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
    sep = "\n";
    for (const auto &[name, value] : gauges) {
        os << sep << "    \"" << jsonEscape(name)
           << "\": " << jsonNumber(value);
        sep = ",\n";
    }
    os << (gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
    sep = "\n";
    for (const auto &[name, h] : histograms) {
        os << sep << "    \"" << jsonEscape(name) << "\": {\"count\": "
           << h.count << ", \"min\": " << jsonNumber(h.min)
           << ", \"max\": " << jsonNumber(h.max)
           << ", \"p50\": " << jsonNumber(h.percentile(50.0))
           << ", \"p95\": " << jsonNumber(h.percentile(95.0))
           << ", \"p99\": " << jsonNumber(h.percentile(99.0))
           << ", \"buckets\": [";
        for (std::size_t i = 0; i < h.buckets.size(); ++i)
            os << (i ? ", " : "") << "{\"le\": "
               << jsonNumber(h.buckets[i].le)
               << ", \"count\": " << h.buckets[i].count << "}";
        os << "]}";
        sep = ",\n";
    }
    os << (histograms.empty() ? "" : "\n  ") << "}\n}\n";
}

} // namespace obs
} // namespace diva
