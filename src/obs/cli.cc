#include "obs/cli.h"

#include <fstream>
#include <iostream>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace diva
{
namespace obs
{

void
CliObs::activate()
{
    if (!metricsOut.empty())
        MetricsRegistry::instance().enable(true);
    if (profile)
        Profiler::instance().enable(true);
    if (!traceOut.empty())
        sink = std::make_unique<TraceSink>(traceMaxEvents);
}

bool
CliObs::finish()
{
    bool ok = true;
    if (!metricsOut.empty()) {
        std::ofstream os(metricsOut);
        if (os)
            MetricsRegistry::instance().snapshot().writeJson(os);
        if (!os) {
            DIVA_WARN("could not write metrics to ", metricsOut);
            ok = false;
        }
    }
    if (!traceOut.empty() && sink) {
        std::ofstream os(traceOut);
        if (os)
            sink->write(os);
        if (!os) {
            DIVA_WARN("could not write trace to ", traceOut);
            ok = false;
        }
    }
    if (profile)
        Profiler::instance().writeTable(std::cerr);
    return ok;
}

const char *
cliObsUsage()
{
    return
        "Observability (all optional; no effect on results):\n"
        "  --metrics-out FILE  write a deterministic counters/gauges/\n"
        "                      histograms snapshot (JSON)\n"
        "  --trace-out FILE    write a sim-time Chrome/Perfetto trace\n"
        "                      (JSON; open in ui.perfetto.dev)\n"
        "  --trace-max-events N  per-track event cap for --trace-out\n"
        "                      (default 1048576; excess is counted as\n"
        "                      droppedEvents)\n"
        "  --profile           wall-clock phase table on stderr\n"
        "  --verbose           extra stderr progress notes\n";
}

} // namespace obs
} // namespace diva
