#include "obs/cli.h"

#include <fstream>
#include <iostream>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace diva
{
namespace obs
{

namespace
{

/**
 * Fail fast on unwritable output paths: probe with an append-mode
 * open (never truncates what is already there) so the tool can exit
 * with a clear message at startup instead of silently losing the
 * output after a long run.
 */
bool
probeWritable(const std::string &path, const char *flag)
{
    if (path.empty())
        return true;
    std::ofstream probe(path, std::ios::app);
    if (!probe) {
        std::cerr << "error: " << flag << " path '" << path
                  << "' is not writable\n";
        return false;
    }
    return true;
}

} // namespace

bool
CliObs::activate()
{
    if (!probeWritable(metricsOut, "--metrics-out") ||
        !probeWritable(traceOut, "--trace-out") ||
        !probeWritable(timeseriesOut, "--timeseries-out"))
        return false;
    SloSpec slo;
    if (!sloSpecText.empty()) {
        std::string err;
        if (!parseSloSpec(sloSpecText, &slo, &err)) {
            std::cerr << "error: " << err << "\n";
            return false;
        }
    }
    if (!metricsOut.empty())
        MetricsRegistry::instance().enable(true);
    if (profile)
        Profiler::instance().enable(true);
    if (!traceOut.empty())
        sink = std::make_unique<TraceSink>(traceMaxEvents);
    if (!timeseriesOut.empty() || slo.enabled() ||
        obsWindowSec > 0.0) {
        telemetry = std::make_unique<RunTelemetry>();
        telemetry->windowSec = obsWindowSec;
        telemetry->slo = slo;
    }
    return true;
}

bool
CliObs::finish()
{
    bool ok = true;
    if (!metricsOut.empty()) {
        // Cap-induced trace loss belongs in the metrics snapshot too,
        // so it is visible without opening the trace file.
        if (sink) {
            auto &metrics = MetricsRegistry::instance();
            metrics.addCounter("trace.dropped_events",
                               sink->dropped());
            for (const auto &[name, droppedCount] :
                 sink->droppedByTrack())
                metrics.addCounter(
                    "trace.track." + name + ".dropped_events",
                    droppedCount);
        }
        std::ofstream os(metricsOut);
        if (os)
            MetricsRegistry::instance().snapshot().writeJson(os);
        if (!os) {
            DIVA_WARN("could not write metrics to ", metricsOut);
            ok = false;
        }
    }
    if (!traceOut.empty() && sink) {
        std::ofstream os(traceOut);
        if (os)
            sink->write(os);
        if (!os) {
            DIVA_WARN("could not write trace to ", traceOut);
            ok = false;
        }
    }
    if (telemetry && !timeseriesOut.empty()) {
        const bool csv =
            timeseriesOut.size() >= 4 &&
            timeseriesOut.compare(timeseriesOut.size() - 4, 4,
                                  ".csv") == 0;
        std::ofstream os(timeseriesOut);
        if (os) {
            if (csv)
                telemetry->writeCsv(os);
            else
                telemetry->writeJson(os);
        }
        if (!os) {
            DIVA_WARN("could not write timeseries to ", timeseriesOut);
            ok = false;
        }
    }
    if (telemetry)
        telemetry->printSloSummary(std::cerr);
    if (profile)
        Profiler::instance().writeTable(std::cerr);
    return ok;
}

const char *
cliObsUsage()
{
    return
        "Observability (all optional; no effect on results):\n"
        "  --metrics-out FILE  write a deterministic counters/gauges/\n"
        "                      histograms snapshot (JSON)\n"
        "  --trace-out FILE    write a sim-time Chrome/Perfetto trace\n"
        "                      (JSON; open in ui.perfetto.dev)\n"
        "  --trace-max-events N  per-track event cap for --trace-out\n"
        "                      (default 1048576; excess is counted as\n"
        "                      droppedEvents)\n"
        "  --timeseries-out FILE  write windowed sim-time telemetry\n"
        "                      (diva-timeseries-v1; CSV when FILE ends\n"
        "                      in .csv, JSON otherwise)\n"
        "  --obs-window-s W    telemetry window width in simulated\n"
        "                      seconds (default: trace span / 64)\n"
        "  --slo-p99-s SPEC    p99 step-latency target: seconds\n"
        "                      (global) and/or prio:seconds pairs,\n"
        "                      comma-separated (e.g. \"0.5,1:0.2\");\n"
        "                      enables the per-window attainment\n"
        "                      report\n"
        "  --profile           wall-clock phase table on stderr\n"
        "  --verbose           extra stderr progress notes\n";
}

} // namespace obs
} // namespace diva
