#include "obs/profile.h"

#include <algorithm>
#include <iomanip>

namespace diva
{
namespace obs
{

Profiler &
Profiler::instance()
{
    static Profiler profiler;
    return profiler;
}

void
Profiler::enable(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

void
Profiler::add(const char *phase, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Phase &p = phases_[phase];
    p.seconds += seconds;
    ++p.calls;
}

std::map<std::string, Profiler::Phase>
Profiler::phases() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return phases_;
}

void
Profiler::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    phases_.clear();
}

void
Profiler::writeTable(std::ostream &os) const
{
    const auto snapshot = phases();
    std::size_t width = std::string("phase").size();
    for (const auto &[name, p] : snapshot)
        width = std::max(width, name.size());
    os << "=== wall-clock profile ===\n"
       << std::left << std::setw(int(width)) << "phase" << std::right
       << std::setw(14) << "seconds" << std::setw(12) << "calls"
       << "\n";
    for (const auto &[name, p] : snapshot)
        os << std::left << std::setw(int(width)) << name << std::right
           << std::setw(14) << std::fixed << std::setprecision(6)
           << p.seconds << std::setw(12) << p.calls << "\n";
    os.unsetf(std::ios::floatfield);
}

} // namespace obs
} // namespace diva
