#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/format.h"
#include "common/parse.h"

namespace diva
{
namespace obs
{

namespace
{

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::string
prioSeriesBase(const std::string &prefix, int priority)
{
    return prefix + "lat.p" + std::to_string(priority) + ".";
}

/** Evaluate one scope's windows and summary from merged rows, using
 *  `within(row)` as the in-target step count. */
template <typename WithinFn>
SloScope
buildScope(const std::string &name, double targetSec,
           const std::map<std::int64_t, ComponentWindows::Row> &rows,
           WithinFn within)
{
    SloScope scope;
    scope.name = name;
    scope.targetSec = targetSec;
    scope.worstP99Sec = -std::numeric_limits<double>::infinity();
    for (const auto &[w, row] : rows) {
        SloWindow sw;
        sw.w = w;
        sw.steps = row.steps;
        sw.withinTarget = within(row);
        sw.p99Sec = row.sketch.percentile(99.0);
        sw.breach = row.steps > 0 && sw.p99Sec > targetSec;
        scope.steps += sw.steps;
        scope.withinTarget += sw.withinTarget;
        if (sw.breach)
            ++scope.breachedWindows;
        if (row.steps > 0 && sw.p99Sec > scope.worstP99Sec) {
            scope.worstP99Sec = sw.p99Sec;
            scope.worstWindow = w;
        }
        scope.windows.push_back(sw);
    }
    if (!std::isfinite(scope.worstP99Sec))
        scope.worstP99Sec = kNaN;
    return scope;
}

void
writeSketchWindowJson(std::ostream &os, std::int64_t w, double t0,
                      const QuantileSketch &sk)
{
    os << "{\"w\": " << w << ", \"t0Sec\": " << jsonNumber(t0)
       << ", \"count\": " << sk.count()
       << ", \"min\": " << jsonNumber(sk.minValue())
       << ", \"max\": " << jsonNumber(sk.maxValue())
       << ", \"p50\": " << jsonNumber(sk.percentile(50.0))
       << ", \"p95\": " << jsonNumber(sk.percentile(95.0))
       << ", \"p99\": " << jsonNumber(sk.percentile(99.0)) << "}";
}

} // namespace

double
SloSpec::targetFor(int priority) const
{
    for (const auto &[p, t] : perPriority)
        if (p == priority)
            return t;
    return globalTargetSec;
}

bool
parseSloSpec(const std::string &text, SloSpec *out,
             std::string *error)
{
    *out = SloSpec{};
    std::stringstream ss(text);
    std::string item;
    bool sawAny = false;
    while (std::getline(ss, item, ',')) {
        sawAny = true;
        if (item.empty()) {
            *error = "--slo-p99-s: empty entry in spec";
            return false;
        }
        const std::size_t colon = item.find(':');
        if (colon == std::string::npos) {
            const std::optional<double> t = parseDoubleText(item);
            if (!t || !(*t > 0.0)) {
                *error = "--slo-p99-s: '" + item +
                         "' is not a positive seconds value";
                return false;
            }
            if (out->globalTargetSec > 0.0) {
                *error = "--slo-p99-s: more than one global target";
                return false;
            }
            out->globalTargetSec = *t;
            continue;
        }
        const std::optional<long long> p =
            parseBoundedIntText(item.substr(0, colon), -1000000,
                                1000000);
        const std::optional<double> t =
            parseDoubleText(item.substr(colon + 1));
        if (!p || !t || !(*t > 0.0)) {
            *error = "--slo-p99-s: '" + item +
                     "' is not priority:positive-seconds";
            return false;
        }
        for (const auto &[prio, unused] : out->perPriority)
            if (prio == int(*p)) {
                *error = "--slo-p99-s: duplicate priority " +
                         std::to_string(*p);
                return false;
            }
        out->perPriority.emplace_back(int(*p), *t);
    }
    if (!sawAny) {
        *error = "--slo-p99-s: empty spec";
        return false;
    }
    if (text.back() == ',') {
        // getline never yields the trailing empty token, so catch the
        // dangling comma explicitly.
        *error = "--slo-p99-s: empty entry in spec";
        return false;
    }
    std::sort(out->perPriority.begin(), out->perPriority.end());
    return true;
}

double
SloScope::attainmentPct() const
{
    if (steps == 0)
        return kNaN;
    return 100.0 * double(withinTarget) / double(steps);
}

void
RunTelemetry::resolveWindow(double spanSec)
{
    if (!(windowSec > 0.0)) {
        windowSec =
            spanSec > 0.0 && std::isfinite(spanSec) ? spanSec / 64.0
                                                    : 1.0;
    }
    invWindowSec = 1.0 / windowSec;
    snapshot.windowSec = windowSec;
}

void
mergeComponentRows(const std::vector<ComponentWindows::Row> &rows,
                   std::map<std::int64_t, ComponentWindows::Row> *into)
{
    for (const ComponentWindows::Row &r : rows) {
        ComponentWindows::Row &dst = (*into)[r.w];
        dst.w = r.w;
        dst.steps += r.steps;
        dst.withinTarget += r.withinTarget;
        dst.withinGlobal += r.withinGlobal;
        dst.queueWaitSec += r.queueWaitSec;
        dst.switchSec += r.switchSec;
        dst.migrationSec += r.migrationSec;
        dst.serviceSec += r.serviceSec;
        dst.totalSec += r.totalSec;
        dst.sketch.merge(r.sketch);
    }
}

void
publishComponentSeries(
    const std::map<std::int64_t, ComponentWindows::Row> &rows,
    const std::string &base, TimeSeriesSnapshot *snap)
{
    using Kind = TimeSeries::Kind;
    TimeSeries &steps = snap->seriesRef(base + "steps",
                                        Kind::kCounter);
    TimeSeries &queueWait =
        snap->seriesRef(base + "queue_wait_s", Kind::kSum);
    TimeSeries &sw = snap->seriesRef(base + "switch_s", Kind::kSum);
    TimeSeries &mig =
        snap->seriesRef(base + "migration_s", Kind::kSum);
    TimeSeries &service =
        snap->seriesRef(base + "service_s", Kind::kSum);
    TimeSeries &total = snap->seriesRef(base + "total_s", Kind::kSum);
    std::map<std::int64_t, QuantileSketch> &sketches =
        snap->sketches[base + "step_latency_s"];
    for (const auto &[w, row] : rows) {
        steps.points[w] += double(row.steps);
        queueWait.points[w] += row.queueWaitSec;
        sw.points[w] += row.switchSec;
        mig.points[w] += row.migrationSec;
        service.points[w] += row.serviceSec;
        total.points[w] += row.totalSec;
        sketches[w].merge(row.sketch);
    }
}

void
publishLatencyWindows(
    const std::map<int, std::map<std::int64_t, ComponentWindows::Row>>
        &byPriority,
    const std::string &prefix, RunTelemetry *telemetry)
{
    TimeSeriesSnapshot *snap = &telemetry->snapshot;

    // Aggregate across priorities, in ascending priority order so the
    // float sums replay identically every run.
    std::map<std::int64_t, ComponentWindows::Row> all;
    for (const auto &[prio, rows] : byPriority) {
        for (const auto &[w, row] : rows) {
            ComponentWindows::Row &dst = all[w];
            dst.w = w;
            dst.steps += row.steps;
            dst.withinTarget += row.withinTarget;
            dst.withinGlobal += row.withinGlobal;
            dst.queueWaitSec += row.queueWaitSec;
            dst.switchSec += row.switchSec;
            dst.migrationSec += row.migrationSec;
            dst.serviceSec += row.serviceSec;
            dst.totalSec += row.totalSec;
            dst.sketch.merge(row.sketch);
        }
        publishComponentSeries(rows, prioSeriesBase(prefix, prio),
                               snap);
    }
    publishComponentSeries(all, prefix + "lat.all.", snap);

    if (!telemetry->slo.enabled())
        return;
    SloReport &report = telemetry->report;
    if (telemetry->slo.globalTargetSec > 0.0)
        report.scopes.push_back(buildScope(
            prefix + "global", telemetry->slo.globalTargetSec, all,
            [](const ComponentWindows::Row &r) {
                return r.withinGlobal;
            }));
    for (const auto &[prio, rows] : byPriority) {
        const double target = telemetry->slo.targetFor(prio);
        if (!(target > 0.0))
            continue;
        report.scopes.push_back(buildScope(
            prefix + "priority " + std::to_string(prio), target, rows,
            [](const ComponentWindows::Row &r) {
                return r.withinTarget;
            }));
    }
}

void
RunTelemetry::writeJson(std::ostream &os) const
{
    os << "{\n  \"schema\": \"diva-timeseries-v1\",\n"
       << "  \"windowSec\": " << jsonNumber(windowSec) << ",\n"
       << "  \"series\": {";
    const char *sep = "\n";
    for (const auto &[name, s] : snapshot.series) {
        os << sep << "    \"" << jsonEscape(name) << "\": {\"kind\": \""
           << timeSeriesKindName(s.kind) << "\", \"points\": [";
        bool first = true;
        for (const auto &[w, v] : s.points) {
            os << (first ? "" : ", ") << "{\"w\": " << w
               << ", \"t0Sec\": "
               << jsonNumber(double(w) * windowSec)
               << ", \"value\": " << jsonNumber(v) << "}";
            first = false;
        }
        os << "]}";
        sep = ",\n";
    }
    os << (snapshot.series.empty() ? "" : "\n  ")
       << "},\n  \"sketches\": {";
    sep = "\n";
    for (const auto &[name, windows] : snapshot.sketches) {
        os << sep << "    \"" << jsonEscape(name) << "\": [";
        bool first = true;
        for (const auto &[w, sk] : windows) {
            if (!first)
                os << ", ";
            writeSketchWindowJson(os, w, double(w) * windowSec, sk);
            first = false;
        }
        os << "]";
        sep = ",\n";
    }
    os << (snapshot.sketches.empty() ? "" : "\n  ") << "},\n";
    if (report.any()) {
        os << "  \"slo\": {\n    \"scopes\": [";
        for (std::size_t i = 0; i < report.scopes.size(); ++i) {
            const SloScope &sc = report.scopes[i];
            os << (i ? ",\n" : "\n") << "      {\"name\": \""
               << jsonEscape(sc.name) << "\", \"p99TargetSec\": "
               << jsonNumber(sc.targetSec) << ", \"windows\": [";
            for (std::size_t k = 0; k < sc.windows.size(); ++k) {
                const SloWindow &sw = sc.windows[k];
                os << (k ? ", " : "") << "{\"w\": " << sw.w
                   << ", \"steps\": " << sw.steps
                   << ", \"withinTarget\": " << sw.withinTarget
                   << ", \"p99Sec\": " << jsonNumber(sw.p99Sec)
                   << ", \"breach\": "
                   << (sw.breach ? "true" : "false") << "}";
            }
            os << "], \"summary\": {\"steps\": " << sc.steps
               << ", \"withinTarget\": " << sc.withinTarget
               << ", \"attainmentPct\": "
               << jsonNumber(sc.attainmentPct())
               << ", \"breachedWindows\": " << sc.breachedWindows
               << ", \"windows\": " << sc.windows.size()
               << ", \"worstP99Sec\": " << jsonNumber(sc.worstP99Sec)
               << ", \"worstWindow\": " << sc.worstWindow << "}}";
        }
        os << "\n    ]\n  },\n";
    }
    os << "  \"decomposition\": {\"steps\": " << decompSteps
       << ", \"exactSumFailures\": " << decompExactFailures
       << "}\n}\n";
}

void
RunTelemetry::writeCsv(std::ostream &os) const
{
    os << "kind,series,window,t0_s,value\n";
    for (const auto &[name, s] : snapshot.series)
        for (const auto &[w, v] : s.points)
            os << timeSeriesKindName(s.kind) << ',' << name << ','
               << w << ',' << formatDouble(double(w) * windowSec)
               << ',' << formatDouble(v) << "\n";
    for (const auto &[name, windows] : snapshot.sketches)
        for (const auto &[w, sk] : windows) {
            const double t0 = double(w) * windowSec;
            os << "count," << name << ',' << w << ','
               << formatDouble(t0) << ',' << sk.count() << "\n";
            os << "p50," << name << ',' << w << ',' << formatDouble(t0)
               << ',' << formatDouble(sk.percentile(50.0)) << "\n";
            os << "p95," << name << ',' << w << ',' << formatDouble(t0)
               << ',' << formatDouble(sk.percentile(95.0)) << "\n";
            os << "p99," << name << ',' << w << ',' << formatDouble(t0)
               << ',' << formatDouble(sk.percentile(99.0)) << "\n";
        }
    for (const SloScope &sc : report.scopes)
        for (const SloWindow &sw : sc.windows) {
            const double t0 = double(sw.w) * windowSec;
            const double pct =
                sw.steps > 0 ? 100.0 * double(sw.withinTarget) /
                                   double(sw.steps)
                             : kNaN;
            os << "slo_attainment_pct," << sc.name << ',' << sw.w
               << ',' << formatDouble(t0) << ',' << formatDouble(pct)
               << "\n";
            os << "slo_breach," << sc.name << ',' << sw.w << ','
               << formatDouble(t0) << ',' << (sw.breach ? 1 : 0)
               << "\n";
        }
}

void
RunTelemetry::printSloSummary(std::ostream &os) const
{
    if (!report.any())
        return;
    os << "SLO p99 attainment:\n";
    for (const SloScope &sc : report.scopes) {
        os << "  " << sc.name << ": target "
           << formatDouble(sc.targetSec) << "s, steps " << sc.steps
           << ", attainment " << formatDouble(sc.attainmentPct())
           << "%, breached " << sc.breachedWindows << "/"
           << sc.windows.size() << " windows";
        if (sc.steps > 0)
            os << ", worst p99 " << formatDouble(sc.worstP99Sec)
               << "s @ window " << sc.worstWindow;
        os << "\n";
    }
}

} // namespace obs
} // namespace diva
