/**
 * @file
 * Process-wide metrics registry: named counters, gauges and
 * histograms behind one opt-in switch. Instrumentation sites are free
 * when the registry is disabled (one relaxed atomic load) and cheap
 * when enabled: counter and histogram updates land in a thread-local
 * shard guarded by a per-shard mutex that only the snapshot path ever
 * contends on.
 *
 * Determinism contract: a snapshot must be byte-identical for the
 * same simulated work regardless of worker-thread count or shard
 * merge order. Counters are commutative integer sums. Histograms
 * store only integer bucket counts plus exact min/max (both
 * order-independent) -- deliberately no floating-point sum or mean,
 * which would depend on merge order. Gauges are plain last-write
 * values and must only be set from sequential code (CLI setup,
 * epoch barriers); concurrent setGauge calls would race the "last"
 * write and break the contract.
 *
 * Shards are owned by the registry and outlive the threads that fill
 * them: short-lived worker threads (one fleet epoch, one sweep run)
 * abandon their shard at exit and its data stays mergeable.
 */

#ifndef DIVA_OBS_METRICS_H
#define DIVA_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace diva
{
namespace obs
{

/** One merged histogram in a snapshot. */
struct HistogramSnapshot
{
    /** Power-of-two bucket (4 sub-buckets per octave) and its count. */
    struct Bucket
    {
        /** Inclusive upper bound of the bucket's value range. */
        double le = 0.0;
        std::uint64_t count = 0;
    };

    std::uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    std::vector<Bucket> buckets; ///< ascending by upper bound

    /**
     * Nearest-rank percentile from the bucket counts: the upper bound
     * of the smallest bucket holding at least p percent of the
     * samples, clamped to [min, max]. Within 25% of the exact
     * nearest-rank value (the relative bucket width).
     */
    double percentile(double p) const;
};

/** Deterministic, name-sorted view of the registry at one instant. */
struct MetricsSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    /** Pretty-printed JSON ("diva-metrics-v1"), byte-stable. */
    void writeJson(std::ostream &os) const;
};

class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    /** Turn collection on/off; off (the default) makes every
     *  instrumentation site a single relaxed load. */
    void enable(bool on);

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Add `delta` to the named counter (thread-safe, commutative). */
    void addCounter(const std::string &name, std::uint64_t delta = 1);

    /** Set the named gauge. Sequential code only -- see file header. */
    void setGauge(const std::string &name, double value);

    /** Record one sample into the named histogram (thread-safe). */
    void recordValue(const std::string &name, double value);

    /** Merge every shard into one name-sorted snapshot. */
    MetricsSnapshot snapshot() const;

    /** Drop all recorded data (shards and gauges); stays enabled. */
    void reset();

    /**
     * Map a sample to its bucket index: 4 sub-buckets per power-of-
     * two octave (<= 25% relative width); values <= 0 share one
     * underflow bucket. Exposed for the histogram unit tests.
     */
    static int bucketIndex(double v);

    /** Inclusive upper bound of the bucket `bucketIndex` mapped to. */
    static double bucketUpperBound(int index);

  private:
    MetricsRegistry() = default;
    ~MetricsRegistry();

    struct Shard;
    Shard &localShard();

    std::atomic<bool> enabled_{false};

    mutable std::mutex mutex_; ///< guards shards_ and gauges_
    std::deque<std::unique_ptr<Shard>> shards_;
    std::map<std::string, double> gauges_;
};

} // namespace obs
} // namespace diva

#endif // DIVA_OBS_METRICS_H
