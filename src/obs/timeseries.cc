#include "obs/timeseries.h"

#include <cmath>
#include <limits>

namespace diva
{
namespace obs
{

namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();

} // namespace

double
windowUpperEdge(std::int64_t w, double windowSec, double invWindowSec)
{
    // (w+1)*W is within an ulp or two of the true threshold;
    // windowIndexOf is monotone nondecreasing in t, so nudging until
    // the predicate flips lands on the exact smallest such double.
    double e = double(w + 1) * windowSec;
    while (windowIndexOf(e, invWindowSec) <= w)
        e = std::nextafter(e, kInf);
    for (;;) {
        const double d = std::nextafter(e, -kInf);
        if (windowIndexOf(d, invWindowSec) > w)
            e = d;
        else
            break;
    }
    return e;
}

namespace
{

/** ((q + sw) + m) + s == T, the invariant's fixed order. */
bool
exactSum(double q, double sw, double m, double s, double T)
{
    return ((q + sw) + m) + s == T;
}

/**
 * Search for a queue-wait value whose fixed-order reconstruction hits
 * T exactly, scanning outward by ulps from the residual. The
 * reconstruction is monotone nondecreasing in q, so the first hit in
 * either direction is the nearest exact decomposition.
 */
bool
solveQueue(double T, double s, double sw, double m, double *q)
{
    double q0 = ((T - s) - m) - sw;
    if (exactSum(q0, sw, m, s, T)) {
        *q = q0;
        return true;
    }
    double lo = q0, hi = q0;
    for (int i = 0; i < 64; ++i) {
        hi = std::nextafter(hi, kInf);
        if (exactSum(hi, sw, m, s, T)) {
            *q = hi;
            return true;
        }
        lo = std::nextafter(lo, -kInf);
        if (exactSum(lo, sw, m, s, T)) {
            *q = lo;
            return true;
        }
    }
    return false;
}

} // namespace

LatencyComponents
decomposeLatencySlow(double totalSec, double serviceSec,
                     double switchOverlapSec, double migOverlapSec)
{
    double q = 0.0;
    if (solveQueue(totalSec, serviceSec, switchOverlapSec,
                   migOverlapSec, &q))
        return {q, switchOverlapSec, migOverlapSec, serviceSec};
    // No exact split at this attribution: fold the (sub-ulp) stall
    // overlaps into the queue-wait residual and retry.
    if (solveQueue(totalSec, serviceSec, 0.0, 0.0, &q))
        return {q, 0.0, 0.0, serviceSec};
    // Degenerate magnitudes (inf/NaN service, catastrophic spread):
    // bill everything as queue wait, which is trivially exact.
    return {totalSec, 0.0, 0.0, 0.0};
}

const char *
timeSeriesKindName(TimeSeries::Kind kind)
{
    switch (kind) {
      case TimeSeries::Kind::kCounter: return "counter";
      case TimeSeries::Kind::kSum: return "sum";
      case TimeSeries::Kind::kGauge: return "gauge";
    }
    return "counter";
}

} // namespace obs
} // namespace diva
