#include "obs/trace.h"

#include <algorithm>

#include "common/format.h"

namespace diva
{
namespace obs
{

TraceTrack *
TraceSink::track(int tid, const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tracks_.find(tid);
    if (it == tracks_.end())
        it = tracks_
                 .emplace(tid, std::make_unique<TraceTrack>(
                                   tid, name, maxEventsPerTrack_))
                 .first;
    return it->second.get();
}

std::uint64_t
TraceSink::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto &[tid, track] : tracks_)
        total += track->dropped();
    return total;
}

std::vector<std::pair<std::string, std::uint64_t>>
TraceSink::droppedByTrack() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, std::uint64_t>> rows;
    rows.reserve(tracks_.size());
    for (const auto &[tid, track] : tracks_)
        rows.emplace_back(track->name(), track->dropped());
    return rows;
}

void
TraceSink::write(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);

    // Merge in track-id order, then stable-sort by timestamp: equal
    // timestamps keep (track id, append order), so the byte stream is
    // independent of which worker thread filled which track when.
    struct Slot
    {
        const TraceEvent *ev;
        int tid;
    };
    std::vector<Slot> slots;
    for (const auto &[tid, track] : tracks_)
        for (const TraceEvent &ev : track->events())
            slots.push_back({&ev, tid});
    std::stable_sort(slots.begin(), slots.end(),
                     [](const Slot &a, const Slot &b) {
                         return a.ev->tsSec < b.ev->tsSec;
                     });

    os << "{\n\"traceEvents\": [\n";
    const char *sep = "";
    for (const auto &[tid, track] : tracks_) {
        os << sep << "{\"name\": \"thread_name\", \"ph\": \"M\", "
           << "\"pid\": 1, \"tid\": " << tid
           << ", \"args\": {\"name\": \"" << jsonEscape(track->name())
           << "\"}}";
        sep = ",\n";
    }
    for (const Slot &s : slots) {
        const TraceEvent &ev = *s.ev;
        os << sep << "{\"name\": \"" << jsonEscape(ev.name)
           << "\", \"cat\": \"" << jsonEscape(ev.cat) << "\", \"ph\": \""
           << ev.ph << "\", \"ts\": " << jsonNumber(ev.tsSec * 1e6);
        if (ev.ph == 'X')
            os << ", \"dur\": " << jsonNumber(ev.durSec * 1e6);
        if (ev.ph == 'i')
            os << ", \"s\": \"t\""; // instant scope: thread
        os << ", \"pid\": 1, \"tid\": " << s.tid;
        if (!ev.args.empty())
            os << ", \"args\": " << ev.args;
        os << "}";
        sep = ",\n";
    }
    std::uint64_t totalDropped = 0;
    for (const auto &[tid, track] : tracks_)
        totalDropped += track->dropped();
    os << "\n],\n\"displayTimeUnit\": \"ms\",\n\"droppedEvents\": "
       << totalDropped << "\n}\n";
}

} // namespace obs
} // namespace diva
