/**
 * @file
 * Wall-clock phase profiler: RAII timers around the coarse phases of
 * a run (plan build, scenario eval, disk preload, emit, epoch
 * barriers). Unlike metrics and traces, phase timings are *meant* to
 * vary run to run -- they measure the machine -- so they are never
 * mixed into deterministic outputs; they go to a stderr table
 * (--profile) and into the BENCH_*.json envelope where
 * ci/check_bench.py tracks them.
 *
 * Disabled (the default), a ScopedPhase is one relaxed atomic load
 * and no clock reads.
 */

#ifndef DIVA_OBS_PROFILE_H
#define DIVA_OBS_PROFILE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

namespace diva
{
namespace obs
{

class Profiler
{
  public:
    struct Phase
    {
        double seconds = 0.0;
        std::uint64_t calls = 0;
    };

    static Profiler &instance();

    void enable(bool on);

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Fold one timed interval into the named phase (thread-safe). */
    void add(const char *phase, double seconds);

    /** Name-sorted copy of the accumulated phases. */
    std::map<std::string, Phase> phases() const;

    void reset();

    /** Human-readable table, name-sorted ("--profile" stderr view). */
    void writeTable(std::ostream &os) const;

  private:
    Profiler() = default;

    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_;
    std::map<std::string, Phase> phases_;
};

/**
 * Times its scope into Profiler phase `name` when profiling is
 * enabled; a no-op otherwise. `name` must be a string literal (it is
 * kept as a pointer until destruction).
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(const char *name)
        : name_(Profiler::instance().enabled() ? name : nullptr)
    {
        if (name_)
            start_ = std::chrono::steady_clock::now();
    }

    ~ScopedPhase()
    {
        if (name_)
            Profiler::instance().add(
                name_, std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count());
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    const char *name_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace obs
} // namespace diva

#endif // DIVA_OBS_PROFILE_H
