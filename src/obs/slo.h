/**
 * @file
 * SLO monitor groundwork over the windowed telemetry layer: a parsed
 * --slo-p99-s target spec (global or per tenant-priority), per-window
 * p99-attainment evaluation from the merged latency windows, and the
 * RunTelemetry bundle the engines fill and the CLIs emit as the
 * `diva-timeseries-v1` JSON/CSV document.
 *
 * Target semantics: every priority serves under its own override when
 * one is given, else under the global target (0 = unmonitored). The
 * report carries one scope per monitored priority plus, when a global
 * target is set, a "global" scope over every step. A window breaches
 * when its sketch p99 exceeds the scope's target (the sketch
 * overestimates by at most 1/16 -- see obs/sketch.h -- so a breach
 * verdict can be at most that margin pessimistic, never optimistic).
 */

#ifndef DIVA_OBS_SLO_H
#define DIVA_OBS_SLO_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/timeseries.h"

namespace diva
{
namespace obs
{

/** Parsed --slo-p99-s: "T" (global) or "P:T[,P:T...]" (priority). */
struct SloSpec
{
    double globalTargetSec = 0.0; ///< 0 = no global target
    /** Per-priority overrides, sorted by priority. */
    std::vector<std::pair<int, double>> perPriority;

    bool
    enabled() const
    {
        return globalTargetSec > 0.0 || !perPriority.empty();
    }

    /** Effective p99 target for `priority` (0 = unmonitored). */
    double targetFor(int priority) const;
};

/**
 * Parse an --slo-p99-s spec. Accepts a bare positive seconds value
 * (global target) or comma-separated `priority:seconds` pairs; both
 * may be combined ("0.5,1:0.2"). Returns false with *error set on
 * malformed input.
 */
bool parseSloSpec(const std::string &text, SloSpec *out,
                  std::string *error);

/** One evaluated window of one SLO scope. */
struct SloWindow
{
    std::int64_t w = 0;
    std::uint64_t steps = 0;
    std::uint64_t withinTarget = 0;
    double p99Sec = 0.0;
    bool breach = false;
};

/** One monitored scope: a priority class or the global aggregate. */
struct SloScope
{
    std::string name; ///< "global" or "priority <p>"
    double targetSec = 0.0;
    std::vector<SloWindow> windows; ///< window-sorted

    // Run-level attainment summary.
    std::uint64_t steps = 0;
    std::uint64_t withinTarget = 0;
    std::size_t breachedWindows = 0;
    double worstP99Sec = 0.0;
    std::int64_t worstWindow = 0;

    /** 100 * withinTarget / steps (NaN when no step ran). */
    double attainmentPct() const;
};

struct SloReport
{
    std::vector<SloScope> scopes;

    bool
    any() const
    {
        return !scopes.empty();
    }
};

/**
 * Everything one telemetry-enabled run produces. The CLI layer owns
 * it (obs::CliObs), the engines fill it at their sequential publish
 * points, and finish() renders it. All fields are pure functions of
 * the simulated work, so the rendered document is byte-identical
 * across --threads and reruns.
 */
struct RunTelemetry
{
    /** --obs-window-s; <= 0 resolves to trace span / 64 at run time. */
    double windowSec = 0.0;

    SloSpec slo;

    TimeSeriesSnapshot snapshot;
    SloReport report;

    /** Per-step decomposition audit: every step's components must
     *  reconstruct its latency bitwise; failures stay 0 by design and
     *  CI asserts as much. */
    std::uint64_t decompSteps = 0;
    std::uint64_t decompExactFailures = 0;

    /** 1 / windowSec, set by resolveWindow. */
    double invWindowSec = 0.0;

    /**
     * Pin the window width before the run: an explicit positive
     * windowSec stands; otherwise spanSec / 64 (or 1s for an empty
     * span). Deterministic -- spanSec must come from the input trace
     * or workload, never from measured state.
     */
    void resolveWindow(double spanSec);

    /** Render the whole diva-timeseries-v1 document. */
    void writeJson(std::ostream &os) const;

    /** Flat CSV form: kind,series,window,t0_s,value rows. */
    void writeCsv(std::ostream &os) const;

    /** Run-level SLO attainment table (stderr reporting). */
    void printSloSummary(std::ostream &os) const;
};

/**
 * Fold merged per-priority latency windows into the telemetry bundle:
 * per-priority and aggregate component series + per-window latency
 * sketches into the snapshot, and -- when the spec monitors anything
 * -- the SLO report. `byPriority` maps priority -> window -> row,
 * each row the fixed-order merge of that priority's per-writer
 * ComponentWindows rows; `prefix` namespaces the series (empty for
 * the fleet, "serve.<policy>." for the tenant loop).
 */
void publishLatencyWindows(
    const std::map<int, std::map<std::int64_t, ComponentWindows::Row>>
        &byPriority,
    const std::string &prefix, RunTelemetry *telemetry);

/**
 * Merge `rows` (one writer's flushed windows) into the cross-writer
 * accumulator `into`. Call in a fixed writer order (pod index order):
 * the float sums replay in that order, keeping them byte-stable.
 */
void mergeComponentRows(const std::vector<ComponentWindows::Row> &rows,
                        std::map<std::int64_t, ComponentWindows::Row>
                            *into);

/**
 * Emit one scope's merged windows as the standard component series
 * (`<base>steps`, `<base>queue_wait_s`, ..., `<base>total_s`) plus
 * the `<base>step_latency_s` sketch. publishLatencyWindows uses this
 * for the priority scopes; the tenant loop reuses it for per-tenant
 * series.
 */
void publishComponentSeries(
    const std::map<std::int64_t, ComponentWindows::Row> &rows,
    const std::string &base, TimeSeriesSnapshot *snap);

} // namespace obs
} // namespace diva

#endif // DIVA_OBS_SLO_H
