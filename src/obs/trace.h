/**
 * @file
 * Sim-time trace emitter producing Chrome trace-event JSON (the
 * format chrome://tracing and Perfetto both load). Spans and instant
 * events are timestamped in *simulated* seconds, never wall-clock, so
 * a trace of the same run is byte-identical regardless of
 * --threads.
 *
 * Concurrency model: a TraceSink owns one TraceTrack per logical
 * timeline (pod, tenant executor, cluster control plane). Track
 * creation is serialized; each track is then SINGLE-WRITER -- only
 * the thread simulating that timeline appends to it. The bounded-
 * event cap is therefore per track (a shared atomic cap would make
 * which events get dropped a race). write() merges tracks in id
 * order and stable-sorts by timestamp, so the output byte stream is
 * a pure function of the simulated work.
 */

#ifndef DIVA_OBS_TRACE_H
#define DIVA_OBS_TRACE_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace diva
{
namespace obs
{

/** One Chrome trace event ("X" complete span or "i" instant). */
struct TraceEvent
{
    double tsSec = 0.0;  ///< simulated start time
    double durSec = 0.0; ///< span length (0 for instants)
    char ph = 'X';
    std::string name;
    const char *cat = "";
    /** Pre-rendered JSON object for "args", or empty for none. */
    std::string args;
};

/** Single-writer event list for one timeline. */
class TraceTrack
{
  public:
    TraceTrack(int tid, std::string name, std::size_t maxEvents)
        : tid_(tid), name_(std::move(name)), maxEvents_(maxEvents)
    {
    }

    int
    tid() const
    {
        return tid_;
    }

    const std::string &
    name() const
    {
        return name_;
    }

    /** Append a complete span [t0, t1). */
    void
    span(double t0, double t1, std::string name, const char *cat,
         std::string args = {})
    {
        push({t0, t1 - t0, 'X', std::move(name), cat, std::move(args)});
    }

    /** Append an instant event at t. */
    void
    instant(double t, std::string name, const char *cat,
            std::string args = {})
    {
        push({t, 0.0, 'i', std::move(name), cat, std::move(args)});
    }

    /** Events discarded once the per-track cap was reached. */
    std::uint64_t
    dropped() const
    {
        return dropped_;
    }

    const std::vector<TraceEvent> &
    events() const
    {
        return events_;
    }

  private:
    void
    push(TraceEvent ev)
    {
        if (events_.size() >= maxEvents_) {
            ++dropped_;
            return;
        }
        events_.push_back(std::move(ev));
    }

    int tid_;
    std::string name_;
    std::size_t maxEvents_;
    std::uint64_t dropped_ = 0;
    std::vector<TraceEvent> events_;
};

class TraceSink
{
  public:
    /** Default per-track cap; ~1M-session runs stay well bounded. */
    static constexpr std::size_t kDefaultMaxEventsPerTrack = 1u << 20;

    explicit TraceSink(
        std::size_t maxEventsPerTrack = kDefaultMaxEventsPerTrack)
        : maxEventsPerTrack_(maxEventsPerTrack)
    {
    }

    /**
     * The track for `tid`, created with `name` on first request.
     * Creation is serialized; the returned pointer is stable and the
     * caller (one thread at a time) owns all subsequent appends.
     */
    TraceTrack *track(int tid, const std::string &name);

    /** Total events dropped across all tracks. */
    std::uint64_t dropped() const;

    /** (track name, dropped count) per track, in track-id order. */
    std::vector<std::pair<std::string, std::uint64_t>>
    droppedByTrack() const;

    /**
     * Emit the whole trace as Chrome trace-event JSON: thread_name
     * metadata, then every event in (timestamp, track id, append
     * order) order with microsecond sim-time stamps. Adds a
     * "droppedEvents" top-level field (Perfetto ignores unknown
     * top-level keys).
     */
    void write(std::ostream &os) const;

  private:
    mutable std::mutex mutex_; ///< guards tracks_ map shape only
    std::size_t maxEventsPerTrack_;
    std::map<int, std::unique_ptr<TraceTrack>> tracks_;
};

} // namespace obs
} // namespace diva

#endif // DIVA_OBS_TRACE_H
