/**
 * @file
 * Windowed sim-time telemetry: fixed-width windows over the simulated
 * clock, per-window counter/sum/gauge series, per-window latency
 * sketches, and the exact per-step latency decomposition feeding them.
 *
 * Determinism contract (the point of the whole layer): every value
 * here is a pure function of the simulated work. Series and sketches
 * are accumulated single-writer in sim order (one tenant, one
 * priority class on one pod, one pod), then merged at a sequential
 * publish point in a fixed order (pod index order) -- the same
 * shard-merge discipline MetricsRegistry uses, with the merge order
 * pinned so floating-point sums cannot depend on the thread count.
 * The emitted document is name- and window-sorted, so the byte stream
 * is identical across --threads and reruns.
 *
 * Window rule: an event at simulated time t lands in window
 * floor(t * (1/windowSec)), i.e. window w covers [w*W, (w+1)*W). The
 * product form makes the edge case deterministic: a sample exactly on
 * a window edge lands in the upper window whenever t * (1/W) is exact
 * (always for power-of-two W), and on a fixed, run-independent side
 * otherwise.
 */

#ifndef DIVA_OBS_TIMESERIES_H
#define DIVA_OBS_TIMESERIES_H

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "obs/sketch.h"

namespace diva
{
namespace obs
{

/** The window holding sim-time `tSec` (see the file comment). */
inline std::int64_t
windowIndexOf(double tSec, double invWindowSec)
{
    return std::int64_t(std::floor(tSec * invWindowSec));
}

/**
 * The exact upper edge of window `w`: the smallest double t with
 * windowIndexOf(t, invWindowSec) > w. Lets hot loops replace the
 * per-event floor with one compare against a cached edge --
 * `t >= windowUpperEdge(w, ...)` is bitwise-equivalent to
 * `windowIndexOf(t, ...) > w` for every t, including the ulp
 * neighborhood of the edge for non-power-of-two windows.
 */
double windowUpperEdge(std::int64_t w, double windowSec,
                       double invWindowSec);

/**
 * One step's end-to-end latency split into where the time went:
 *
 *   queueWaitSec  -- eligible-to-dispatch time not otherwise billed
 *                    (may be a few ulps negative: it absorbs the
 *                    rounding of the other components)
 *   switchSec     -- context-switch stall overlapping the wait
 *   migrationSec  -- migration state-transfer stall overlapping the
 *                    wait (fleet only)
 *   serviceSec    -- the step's own execution time
 *
 * Invariant (enforced by decomposeLatency, checked per step by the
 * engines): reconstructLatency(c) == the step's emitted latency,
 * bitwise, so the existing p50/p95/p99 columns are untouched.
 */
struct LatencyComponents
{
    double queueWaitSec = 0.0;
    double switchSec = 0.0;
    double migrationSec = 0.0;
    double serviceSec = 0.0;
};

/** The fixed-order sum the exactness invariant is defined over. */
inline double
reconstructLatency(const LatencyComponents &c)
{
    return ((c.queueWaitSec + c.switchSec) + c.migrationSec) +
           c.serviceSec;
}

/** Out-of-line fixup ladder (see decomposeLatency). */
LatencyComponents decomposeLatencySlow(double totalSec,
                                       double serviceSec,
                                       double switchOverlapSec,
                                       double migOverlapSec);

/**
 * Split `totalSec` (the step latency the engines already emit) into
 * components, given the measured service time and the switch /
 * migration stall overlaps. The queue-wait component is the residual,
 * nudged by ulps where needed so the fixed-order reconstruction is
 * bitwise equal to `totalSec` -- never approximately. The common
 * serve-core case (no switch, no migration stall ahead of the step)
 * stays on this inline two-op path.
 */
inline LatencyComponents
decomposeLatency(double totalSec, double serviceSec,
                 double switchOverlapSec, double migOverlapSec)
{
    if (switchOverlapSec == 0.0 && migOverlapSec == 0.0) {
        const double q = totalSec - serviceSec;
        if (q + serviceSec == totalSec)
            return {q, 0.0, 0.0, serviceSec};
    }
    return decomposeLatencySlow(totalSec, serviceSec,
                                switchOverlapSec, migOverlapSec);
}

/**
 * decomposeLatency plus the per-step exactness audit in one pass:
 * true means reconstructLatency(*out) equals `totalSec`. On the
 * stall-free fast path the check q + s == totalSec IS the
 * reconstruction (the zero components add nothing), so the engines'
 * per-step audit costs no extra arithmetic there.
 */
inline bool
decomposeLatencyAudited(double totalSec, double serviceSec,
                        double switchOverlapSec, double migOverlapSec,
                        LatencyComponents *out)
{
    if (switchOverlapSec == 0.0 && migOverlapSec == 0.0) {
        const double q = totalSec - serviceSec;
        if (q + serviceSec == totalSec) {
            *out = {q, 0.0, 0.0, serviceSec};
            return true;
        }
    }
    *out = decomposeLatencySlow(totalSec, serviceSec,
                                switchOverlapSec, migOverlapSec);
    return reconstructLatency(*out) == totalSec;
}

/**
 * Single-writer window accumulator for one latency scope (a tenant, a
 * priority class on one pod). record() is called in sim-time order,
 * so rows flush in nondecreasing window order; finish() flushes the
 * open window. Cross-writer merging (the same priority class across
 * pods) happens later, in pod-index order, over the flushed rows.
 */
class ComponentWindows
{
  public:
    /** Row::w default: never a real window (events land at t >= 0,
     *  so real windows are >= 0), letting the recording hot path
     *  test "same window?" with one integer compare and no
     *  separate open flag. */
    static constexpr std::int64_t kNoWindow =
        std::numeric_limits<std::int64_t>::min();

    struct Row
    {
        std::int64_t w = kNoWindow;
        std::uint64_t steps = 0;
        /** Steps with total <= the scope's / the global p99 target. */
        std::uint64_t withinTarget = 0;
        std::uint64_t withinGlobal = 0;
        double queueWaitSec = 0.0;
        double switchSec = 0.0;
        double migrationSec = 0.0;
        double serviceSec = 0.0;
        double totalSec = 0.0;
        QuantileSketch sketch; ///< total-latency samples
    };

    void
    configure(double invWindowSec, double targetSec,
              double globalTargetSec)
    {
        // Disabled targets become -inf so the recording path can
        // count attainment branchlessly: totalSec <= -inf is false
        // for every sample, keeping the counts at zero.
        const double ninf =
            -std::numeric_limits<double>::infinity();
        inv_ = invWindowSec;
        target_ = targetSec > 0.0 ? targetSec : ninf;
        globalTarget_ = globalTargetSec > 0.0 ? globalTargetSec : ninf;
    }

    void
    record(double endSec, double totalSec,
           const LatencyComponents &c)
    {
        recordAt(windowIndexOf(endSec, inv_), totalSec, c);
    }

    /** record() with the window precomputed -- for callers that
     *  already derived it for their own bookkeeping this step. */
    void
    recordAt(std::int64_t w, double totalSec,
             const LatencyComponents &c)
    {
        if (w != cur_.w)
            roll(w);
        bump(totalSec);
        cur_.queueWaitSec += c.queueWaitSec;
        cur_.switchSec += c.switchSec;
        cur_.migrationSec += c.migrationSec;
        cur_.serviceSec += c.serviceSec;
        cur_.totalSec += totalSec;
        cur_.sketch.add(totalSec);
    }

    /**
     * recordAt for the stall-free fast path: the switch and migration
     * components are exactly zero, so their accumulators are left
     * untouched. Bit-identical to recordAt with zero components --
     * the stall overlaps are clamped nonnegative, so neither the
     * components nor the accumulators are ever -0.0, and x += +0.0
     * cannot change x's bits.
     */
    void
    recordAtFast(std::int64_t w, double totalSec,
                 double queueWaitSec, double serviceSec)
    {
        if (w != cur_.w)
            roll(w);
        bump(totalSec);
        cur_.queueWaitSec += queueWaitSec;
        cur_.serviceSec += serviceSec;
        cur_.totalSec += totalSec;
        cur_.sketch.add(totalSec);
    }

    /** Flush the open window; call once, after the last record(). */
    void
    finish()
    {
        if (cur_.steps > 0)
            rows_.push_back(std::move(cur_));
        cur_ = Row{};
    }

    /** Flushed rows, in nondecreasing window order. */
    const std::vector<Row> &
    rows() const
    {
        return rows_;
    }

  private:
    void
    bump(double totalSec)
    {
        ++cur_.steps;
        cur_.withinTarget += std::uint64_t(totalSec <= target_);
        cur_.withinGlobal +=
            std::uint64_t(totalSec <= globalTarget_);
    }

    void
    roll(std::int64_t w)
    {
        if (cur_.steps > 0)
            rows_.push_back(std::move(cur_));
        cur_ = Row{};
        cur_.w = w;
    }

    double inv_ = 0.0;
    double target_ = 0.0;
    double globalTarget_ = 0.0;
    Row cur_;
    std::vector<Row> rows_;
};

/** One named per-window series in the emitted document. */
struct TimeSeries
{
    enum class Kind
    {
        kCounter, ///< integer event counts, summed per window
        kSum,     ///< seconds/joules summed per window (pinned order)
        kGauge    ///< one sampled value per window (single writer)
    };

    Kind kind = Kind::kCounter;
    std::map<std::int64_t, double> points; ///< window -> value
};

const char *timeSeriesKindName(TimeSeries::Kind kind);

/**
 * The merged, emit-ready document body: name-sorted series and
 * sketches, each window-sorted. Filled only from sequential code (the
 * engines' assemble/publish points), in a fixed order, so every float
 * in it is independent of the worker count.
 */
class TimeSeriesSnapshot
{
  public:
    double windowSec = 0.0;

    std::map<std::string, TimeSeries> series;
    std::map<std::string, std::map<std::int64_t, QuantileSketch>>
        sketches;

    /** Accumulate `delta` into (name, window). */
    void
    add(const std::string &name, TimeSeries::Kind kind,
        std::int64_t w, double delta)
    {
        seriesRef(name, kind).points[w] += delta;
    }

    /** The named series, created with `kind` on first use. Publishers
     *  emitting many windows of one series hoist this lookup out of
     *  their window loop. */
    TimeSeries &
    seriesRef(const std::string &name, TimeSeries::Kind kind)
    {
        TimeSeries &s = series[name];
        s.kind = kind;
        return s;
    }

    /** Set (name, window) outright -- gauges with one writer. */
    void
    set(const std::string &name, std::int64_t w, double value)
    {
        TimeSeries &s = series[name];
        s.kind = TimeSeries::Kind::kGauge;
        s.points[w] = value;
    }

    void
    mergeSketch(const std::string &name, std::int64_t w,
                const QuantileSketch &sk)
    {
        sketches[name][w].merge(sk);
    }

    bool
    empty() const
    {
        return series.empty() && sketches.empty();
    }
};

} // namespace obs
} // namespace diva

#endif // DIVA_OBS_TIMESERIES_H
