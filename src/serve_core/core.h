#pragma once

/**
 * @file
 * Event-driven serve core shared by the tenant serve loop
 * (src/tenant/serve.cc) and the fleet engine's per-pod simulation
 * (src/fleet/engine.cc).
 *
 * The core replaces the old per-quantum all-tenant scan loops with a
 * logical priority queue of typed events:
 *
 *   kArrival       a placed task's arrival time is reached
 *                  (sorted arrival list consumed by a cursor)
 *   kGateDue       an open-loop / migration-gated task's next step
 *                  comes due (lazily-invalidated min-heap)
 *   kQuantumExpiry the running task's quantum ends and a fresh
 *                  scheduling decision is due (implicit in the
 *                  dispatch loop; coalesced away when it would be a
 *                  guaranteed no-op re-pick)
 *   kControlEpoch  the caller's epoch boundary `t1` (the fleet's
 *                  budget / rebalance / placement rounds run between
 *                  epochs; the tenant loop passes one infinite epoch)
 *   kRunEnd        the wall budget, or no event left to serve
 *
 * Ready tasks sit in a `ReadySet` (a sorted small-vector with
 * std::set<ReadyKey> ordering) whose first element is always the
 * policy's pick (FIFO: arrival; priority:
 * (-priority, arrival); EDF: (next deadline, arrival); round-robin: a
 * monotone enqueue sequence number) with the task index as the final
 * tie break.  Dispatching pops the pick, runs up to one quantum of
 * iterations, and re-enqueues / gates / retires the task.
 *
 * The multi-quantum advance: when the quantum expires with no other
 * ready task and no promotable event, re-enqueue + promote + re-pick
 * is a guaranteed no-op that would hand the engine straight back to
 * the same task.  The core skips that scheduler round trip and keeps
 * stepping (counted in `Counters::coalescedQuanta`).  Time still
 * accumulates serially, one `now += stepSeconds` per iteration, so
 * every emitted double is bit-identical to the one-quantum-at-a-time
 * loops this file replaced.
 *
 * The two historical loops differ in small, output-visible ways
 * (comparator forms, preemption windows, gating conditions); those
 * differences are preserved behind `Config` flags rather than silently
 * unified -- byte-identical CSV/JSON output is a hard contract here.
 *
 * Clients provide task scalars, costs, and billing through a duck-typed
 * interface (see `runUntil` for the expected members).  Cross-executor
 * safety: every staleness check calls `client.owns(ex, idx)` *first*,
 * because ownership is only written at sequential epoch boundaries and
 * is therefore race-free to read while another executor concurrently
 * mutates the task's generation or state.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/small_vector.h"

namespace diva
{
namespace serve_core
{

constexpr double kEps = 1e-9;
constexpr double kInfSec = std::numeric_limits<double>::infinity();
constexpr std::size_t kNoTask = std::size_t(-1);

enum class Policy : std::uint8_t
{
    kFifo,
    kRoundRobin,
    kPriority,
    kEdf,
};

enum class EventType : std::uint8_t
{
    kNone,
    kArrival,
    kGateDue,
    kQuantumExpiry,
    kControlEpoch,
    kRunEnd,
};

/** One entry of the logical event queue, as seen by the idle path. */
struct Event
{
    EventType type = EventType::kNone;
    double atSec = kInfSec;
    std::uint32_t idx = 0;
};

/**
 * Composite ordering key of the ready set.  FIFO: (arrival); priority:
 * (-priority, arrival); EDF: (next deadline, arrival); round-robin
 * uses a monotone sequence number instead -- with the task index as
 * the final tie break, so the first element of the set is always the
 * policy's pick.
 */
struct ReadyKey
{
    double k1 = 0.0;
    double k2 = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t idx = 0;

    bool operator<(const ReadyKey &o) const
    {
        if (k1 != o.k1)
            return k1 < o.k1;
        if (k2 != o.k2)
            return k2 < o.k2;
        if (seq != o.seq)
            return seq < o.seq;
        return idx < o.idx;
    }
};

/** Lazily-invalidated entry of an executor's gated-until min-heap. */
struct GateEntry
{
    double dueSec = 0.0;
    std::uint32_t idx = 0;
    std::uint64_t gen = 0;

    bool operator>(const GateEntry &o) const
    {
        if (dueSec != o.dueSec)
            return dueSec > o.dueSec;
        if (idx != o.idx)
            return idx > o.idx;
        return gen > o.gen;
    }
};

enum class TaskState : std::uint8_t
{
    kPending,   // placed, waiting for its arrival time
    kReady,     // in its executor's ready set
    kGated,     // waiting for its next due time (open loop / migration)
    kSuspended, // preempted by the caller (fleet energy budget)
    kDone,      // service over (completed, departed, starved, rejected)
};

/**
 * The ready set: a sorted small-vector ordered exactly like the
 * std::set<ReadyKey> it replaced (operator<, first element = the
 * policy's pick), with the first 8 entries stored inline in the
 * executor.  Most executors hold a handful of runnable tasks, so a
 * scheduling transition is a memmove within one cache line instead of
 * a red-black-tree node allocation; the schedule it produces is
 * element-for-element identical, which the golden serve-core byte
 * fixtures hold it to.
 */
class ReadySet
{
  public:
    using iterator = ReadyKey *;

    bool empty() const { return keys_.empty(); }
    std::size_t size() const { return keys_.size(); }
    iterator begin() { return keys_.begin(); }
    iterator end() { return keys_.end(); }

    iterator lower_bound(const ReadyKey &k)
    {
        return std::lower_bound(keys_.begin(), keys_.end(), k);
    }

    void insert(const ReadyKey &k) { keys_.insert(lower_bound(k), k); }

    /** Remove `k` if present (std::set::erase(key) semantics). */
    void erase(const ReadyKey &k)
    {
        const iterator it = lower_bound(k);
        if (it != keys_.end() && !(k < *it))
            keys_.erase(it);
    }

    iterator erase(iterator it) { return keys_.erase(it); }

  private:
    SmallVector<ReadyKey, 8> keys_;
};

/**
 * The gated-until min-heap, replacing std::priority_queue<GateEntry,
 * vector, greater<>> with the same std::push_heap/std::pop_heap calls
 * over inline small-vector storage -- the pop order (and therefore
 * every emitted byte) is unchanged, but a steady-state executor never
 * touches the allocator.
 */
class GatedHeap
{
  public:
    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }
    const GateEntry &top() const { return heap_.front(); }

    void push(const GateEntry &e)
    {
        heap_.push_back(e);
        std::push_heap(heap_.begin(), heap_.end(),
                       std::greater<GateEntry>());
    }

    void pop()
    {
        std::pop_heap(heap_.begin(), heap_.end(),
                      std::greater<GateEntry>());
        heap_.pop_back();
    }

  private:
    SmallVector<GateEntry, 8> heap_;
};

/** Scheduling state the core owns for each task. */
struct TaskCore
{
    TaskState state = TaskState::kPending;
    /** Bumped whenever the task leaves a queue, invalidating stale
     *  gated-heap entries that still carry the old generation. */
    std::uint64_t gen = 0;
    /** The key under which the task sits in ready (state kReady). */
    ReadyKey readyKey;

    std::uint64_t done = 0;
    std::uint64_t metDeadlines = 0;
    double lastCompletionSec = 0.0;
    bool completed = false;
    double completionSec = 0.0;
};

/** Per-executor event accounting, surfaced to the perf benches. */
struct Counters
{
    std::uint64_t steps = 0;
    std::uint64_t dispatches = 0;
    /** Quantum expiries absorbed without a scheduler round trip. */
    std::uint64_t coalescedQuanta = 0;
    std::uint64_t promotions = 0; // arrival + gate-due events served
    std::uint64_t idleJumps = 0;
    std::uint64_t switches = 0;
    std::uint64_t retired = 0;

    /** Discrete events the core processed (for events/sec rates). */
    std::uint64_t events() const
    {
        return dispatches + coalescedQuanta + promotions + idleJumps +
               retired;
    }

    Counters &operator+=(const Counters &o)
    {
        steps += o.steps;
        dispatches += o.dispatches;
        coalescedQuanta += o.coalescedQuanta;
        promotions += o.promotions;
        idleJumps += o.idleJumps;
        switches += o.switches;
        retired += o.retired;
        return *this;
    }
};

/** One serving executor (the whole engine for the tenant loop, one pod
 *  for the fleet).  Epochs touch only their own executor's state. */
struct Executor
{
    /** Caller-assigned id (the fleet's pod index). */
    std::size_t id = 0;

    double nowSec = 0.0;
    std::size_t last = kNoTask;

    ReadySet ready;
    /** Tasks first placed here, in arrival order (cursor consumed). */
    std::vector<std::uint32_t> arrivals;
    std::size_t arrCursor = 0;
    GatedHeap gated;
    std::uint64_t rrSeq = 0;
    /** Round-robin index-rotation cursor (Config::rrIndexRotation). */
    std::uint32_t rrNext = 0;

    Counters counters;
};

/** Mode flags preserving the two historical loops' exact semantics. */
struct Config
{
    Policy policy = Policy::kRoundRobin;
    std::uint64_t quantumIters = 1;
    /** Wall-clock budget in simulated seconds; 0 = unbounded. */
    double wallLimitSec = 0.0;

    /** Tenant round-robin rotates over task indices (first ready index
     *  at or after the previous pick + 1) instead of enqueue order. */
    bool rrIndexRotation = false;
    /** Rate-target tasks gate on their next due time.  The fleet
     *  always gates; the tenant loop only under --steps 0 replay. */
    bool rateGates = true;
    /** An arrival only preempts the quantum if it lands strictly after
     *  the current iteration's start (tenant loop); the fleet preempts
     *  on any arrival at or before `now`. */
    bool strictArrivalPreempt = false;
    /** The idle jump skips events whose task could never run a step
     *  before its departure (tenant loop). */
    bool idleSkipsBlocked = false;
    /** No wall-fitting candidate ends the whole run (tenant loop); the
     *  fleet retires unfitting tasks and keeps serving. */
    bool endRunWhenNoWallFit = false;
    /** Boundary comparisons use the tenant loop's wall-based forms
     *  (`wall - now <= eps`) instead of the fleet's epoch forms
     *  (`now + eps >= t1`).  Algebraically equal, bitwise not. */
    bool wallBoundary = false;

    /** Test/debug: take the multi-quantum fast path.  Off forces a
     *  full scheduler round trip at every quantum expiry; the
     *  schedule, clocks and billing must be bit-identical either way
     *  (test_serve_core holds the core to that), only the
     *  dispatch/coalesce counters shift. */
    bool coalesce = true;
};

/** Deadline of step `k` (1-based) of task `idx`; +inf if untargeted. */
template <class Client>
inline double
stepDeadlineSec(const Client &c, std::uint32_t idx, std::uint64_t k)
{
    const double rate = c.rateSps(idx);
    if (rate > 0.0)
        return c.arrivalSec(idx) + double(k) / rate;
    const double d = c.qosDeadlineSec(idx);
    if (d > 0.0)
        return d;
    return kInfSec;
}

template <class Client>
inline ReadyKey
makeKey(const Client &c, Executor &ex, const Config &cfg,
        std::uint32_t idx)
{
    ReadyKey key;
    key.idx = idx;
    switch (cfg.policy) {
      case Policy::kFifo:
        key.k1 = c.arrivalSec(idx);
        break;
      case Policy::kPriority:
        key.k1 = -double(c.priority(idx));
        key.k2 = c.arrivalSec(idx);
        break;
      case Policy::kEdf:
        key.k1 = stepDeadlineSec(c, idx, c.core(idx).done + 1);
        key.k2 = c.arrivalSec(idx);
        break;
      case Policy::kRoundRobin:
        if (!cfg.rrIndexRotation)
            key.seq = ++ex.rrSeq;
        break;
    }
    return key;
}

/** `kSteady` statically selects the fleet's round-robin enqueue-order
 *  key (see runUntil): the policy switch folds away and the key is
 *  just the next sequence number. */
template <bool kSteady, class Client>
inline void
enqueueReadyT(Client &c, Executor &ex, const Config &cfg,
              std::uint32_t idx)
{
    TaskCore &tc = c.core(idx);
    if constexpr (kSteady) {
        ReadyKey key;
        key.idx = idx;
        key.seq = ++ex.rrSeq;
        tc.readyKey = key;
    } else {
        tc.readyKey = makeKey(c, ex, cfg, idx);
    }
    tc.state = TaskState::kReady;
    ex.ready.insert(tc.readyKey);
}

template <class Client>
inline void
enqueueReady(Client &c, Executor &ex, const Config &cfg,
             std::uint32_t idx)
{
    enqueueReadyT<false>(c, ex, cfg, idx);
}

/** Park `idx` until `dueSec`; a fresh generation invalidates any older
 *  heap entry the task may still have. */
template <class Client>
inline void
gate(Client &c, Executor &ex, std::uint32_t idx, double dueSec)
{
    TaskCore &tc = c.core(idx);
    ++tc.gen;
    tc.state = TaskState::kGated;
    ex.gated.push({dueSec, idx, tc.gen});
}

/** Pull `idx` out of its executor's queues (suspension, migration).
 *  The caller sets the task's next state. */
template <class Client>
inline void
unschedule(Client &c, Executor &ex, std::uint32_t idx)
{
    TaskCore &tc = c.core(idx);
    if (tc.state == TaskState::kReady)
        ex.ready.erase(tc.readyKey);
    ++tc.gen; // invalidates any gated entry
}

template <class Client>
inline void
retire(Client &c, Executor &ex, std::uint32_t idx)
{
    c.core(idx).state = TaskState::kDone;
    ++ex.counters.retired;
    c.onRetire(ex, idx);
}

/** Serve every arrival and gate-due event at or before `ex.nowSec`. */
template <bool kSteady, class Client>
inline void
promoteT(Client &c, Executor &ex, const Config &cfg)
{
    while (ex.arrCursor < ex.arrivals.size()) {
        const std::uint32_t idx = ex.arrivals[ex.arrCursor];
        // Stale entries (task migrated, suspended or rejected before
        // its first run here) are consumed without effect.  `owns` is
        // tested first: ownership is only written at sequential epoch
        // boundaries, so that read is race-free even when the task
        // migrated away and its new executor's epoch is concurrently
        // mutating its generation/state.
        if (!c.owns(ex, idx) ||
            c.core(idx).state != TaskState::kPending) {
            ++ex.arrCursor;
            continue;
        }
        if (c.arrivalSec(idx) > ex.nowSec + kEps)
            break;
        ++ex.arrCursor;
        ++ex.counters.promotions;
        enqueueReadyT<kSteady>(c, ex, cfg, idx);
    }
    while (!ex.gated.empty()) {
        const GateEntry &top = ex.gated.top();
        // `owns` first -- see the arrival scan for the rationale.
        if (!c.owns(ex, top.idx) ||
            top.gen != c.core(top.idx).gen ||
            c.core(top.idx).state != TaskState::kGated) {
            ex.gated.pop();
            continue;
        }
        if (top.dueSec > ex.nowSec + kEps)
            break;
        const std::uint32_t idx = top.idx;
        ex.gated.pop();
        ++ex.counters.promotions;
        enqueueReadyT<kSteady>(c, ex, cfg, idx);
    }
}

template <class Client>
inline void
promote(Client &c, Executor &ex, const Config &cfg)
{
    promoteT<false>(c, ex, cfg);
}

/** Next pending arrival on this executor; +inf if none.  Consumes
 *  stale cursor entries exactly like `promote` would. */
template <class Client>
inline double
nextArrivalSec(Client &c, Executor &ex)
{
    while (ex.arrCursor < ex.arrivals.size()) {
        const std::uint32_t idx = ex.arrivals[ex.arrCursor];
        if (!c.owns(ex, idx) ||
            c.core(idx).state != TaskState::kPending) {
            ++ex.arrCursor;
            continue;
        }
        return c.arrivalSec(idx);
    }
    return kInfSec;
}

/** Next valid gate-due on this executor; +inf if none. */
template <class Client>
inline double
nextGateDueSec(Client &c, Executor &ex)
{
    while (!ex.gated.empty()) {
        const GateEntry &top = ex.gated.top();
        if (!c.owns(ex, top.idx) ||
            top.gen != c.core(top.idx).gen ||
            c.core(top.idx).state != TaskState::kGated) {
            ex.gated.pop();
            continue;
        }
        return top.dueSec;
    }
    return kInfSec;
}

/** Whether a step launched at `atSec` (plus the switch stall the task
 *  would pay under the current `last`) would end past its departure.
 *  `last` cannot change while the task waits, so a blocked verdict is
 *  permanent. */
template <class Client>
inline bool
departBlockedAt(const Client &c, const Executor &ex, std::uint32_t idx,
                double atSec, double switchSec)
{
    const double dep = c.departSec(idx);
    if (!(dep > 0.0))
        return false;
    const double lead =
        (ex.last != kNoTask && ex.last != std::size_t(idx)) ? switchSec
                                                            : 0.0;
    return atSec + lead + c.stepSeconds(ex, idx) > dep + kEps;
}

/**
 * The next wake-up event (arrival or gate-due) on this executor.
 * Under `Config::idleSkipsBlocked` events whose task is permanently
 * departure-blocked are skipped: blocked arrivals stay in the list
 * (they still preempt a running quantum when they land), blocked
 * gated tasks are retired on the spot (they can never run again and
 * nothing else observes them).
 */
template <class Client>
inline Event
peekNextEvent(Client &c, Executor &ex, const Config &cfg)
{
    Event best;
    const double sw = c.switchSeconds(ex);
    std::size_t k = ex.arrCursor;
    while (k < ex.arrivals.size()) {
        const std::uint32_t idx = ex.arrivals[k];
        if (!c.owns(ex, idx) ||
            c.core(idx).state != TaskState::kPending) {
            if (k == ex.arrCursor)
                ++ex.arrCursor;
            ++k;
            continue;
        }
        const double a = c.arrivalSec(idx);
        if (cfg.idleSkipsBlocked &&
            departBlockedAt(c, ex, idx, a, sw)) {
            ++k;
            continue; // would run past its departure
        }
        best = {EventType::kArrival, a, idx};
        break;
    }
    while (!ex.gated.empty()) {
        const GateEntry &top = ex.gated.top();
        if (!c.owns(ex, top.idx) ||
            top.gen != c.core(top.idx).gen ||
            c.core(top.idx).state != TaskState::kGated) {
            ex.gated.pop();
            continue;
        }
        if (cfg.idleSkipsBlocked &&
            departBlockedAt(c, ex, top.idx, top.dueSec, sw)) {
            const std::uint32_t idx = top.idx;
            ex.gated.pop();
            retire(c, ex, idx);
            continue;
        }
        if (top.dueSec < best.atSec)
            best = {EventType::kGateDue, top.dueSec, top.idx};
        break;
    }
    return best;
}

/**
 * Serve one executor until the epoch boundary `t1` (pass +inf for an
 * uninterrupted run), the wall budget, or event exhaustion.
 *
 * `Client` provides, duck-typed:
 *   bool   owns(const Executor &, uint32_t idx) const
 *   double arrivalSec(idx) / departSec(idx) / rateSps(idx) /
 *          qosDeadlineSec(idx) const;  uint64_t stepLimit(idx) const;
 *   int    priority(idx) const
 *   double stepSeconds(const Executor &, idx) const
 *   double switchSeconds(const Executor &) const
 *   TaskCore &core(idx)  (and a const overload)
 *   void   onSwitch(Executor &, idx)      -- bill the context switch
 *   void   onStep(Executor &, idx, stepStartSec, latencySec,
 *                 eligibleSec, switchLeadSec)
 *   void   onRetire(Executor &, idx)
 *
 * onStep's eligibleSec is the latency reference point (latencySec ==
 * nowSec - eligibleSec at the call); switchLeadSec is the context
 * switch billed immediately ahead of this step (nonzero only on a
 * dispatch's first step, and only when the dispatch changed tasks).
 * Together they let a client split latencySec into queue-wait /
 * switch / service components without re-deriving engine state.
 *
 * switchSeconds must be constant over one runUntil call (both clients
 * derive it from the executor's fixed hardware type); it is read once.
 *
 * `kSteady` marks the fleet's steady-state serve configuration
 * (enqueue-order round-robin, rate gates, fleet-style boundaries,
 * quantum 1, coalescing).  runUntil proves the configuration once per
 * call and dispatches here, so in this instantiation every flag test
 * below folds to a constant and the dead branches drop out of the
 * per-event code.  The non-steady instantiation reads cfg exactly as
 * before; both produce bit-identical serve decisions for any config.
 */
template <bool kSteady, class Client>
inline void
runUntilT(Client &c, Executor &ex, const Config &cfg, double t1)
{
    const double wall = cfg.wallLimitSec;
    const bool wall_boundary = !kSteady && cfg.wallBoundary;
    const bool idle_skips = !kSteady && cfg.idleSkipsBlocked;
    const bool end_on_unfit = !kSteady && cfg.endRunWhenNoWallFit;
    const bool strict_preempt = !kSteady && cfg.strictArrivalPreempt;
    const bool rr_rotation = !kSteady &&
                             cfg.policy == Policy::kRoundRobin &&
                             cfg.rrIndexRotation;
    const bool coalesce = kSteady || cfg.coalesce;
    const bool rate_gates = kSteady || cfg.rateGates;
    const std::uint64_t quantum = kSteady ? 1 : cfg.quantumIters;
    const double sw = c.switchSeconds(ex);

    // Both forms compare `now` against `bound - eps`; they are kept
    // bit-exact to the loops they replaced, not merely equivalent.
    auto atBoundary = [&]() {
        return wall_boundary ? (wall > 0.0 && wall - ex.nowSec <= kEps)
                             : (ex.nowSec + kEps >= t1);
    };
    auto idleEnds = [&](double ev) {
        return wall_boundary
                   ? (!std::isfinite(ev) ||
                      (wall > 0.0 && ev + kEps >= wall))
                   : !(ev < t1 - kEps);
    };

    // Cache of nextArrivalSec.  The next pending arrival's time can
    // only change when `promote` consumes it, and promote consumes
    // arrivals exactly when they are <= now + kEps -- the invalidation
    // test below.  Nothing else inside one runUntil call moves a task
    // into or out of kPending (placement runs between epochs), so a
    // cached value that survives the test is the value nextArrivalSec
    // would return.  Saves a tenant-table load per event on replays.
    double next_arr = 0.0;
    bool next_arr_known = false;
    auto nextArr = [&]() {
        if (!next_arr_known) {
            next_arr = nextArrivalSec(c, ex);
            next_arr_known = true;
        }
        return next_arr;
    };

    for (;;) {
        if (next_arr_known && next_arr <= ex.nowSec + kEps)
            next_arr_known = false; // promote is about to consume it
        promoteT<kSteady>(c, ex, cfg);
        if (atBoundary())
            break;

        std::size_t pick = kNoTask;
        if (ex.ready.empty()) {
            // Fast path for the open-loop steady state: one gated task
            // alone on the executor, its due time the next event, no
            // task change pending.  Replays the generic idle-jump ->
            // promote -> dispatch transition sequence (same counters,
            // same clock writes, same fit checks) without the
            // event-peek and ready-set machinery, which on a fleet
            // replay is the bulk of all serve-core events.
            bool fast = false;
            if (!idle_skips && ex.gated.size() == 1) {
                const GateEntry &top = ex.gated.top();
                if (c.owns(ex, top.idx) &&
                    top.gen == c.core(top.idx).gen &&
                    c.core(top.idx).state == TaskState::kGated &&
                    ex.last == std::size_t(top.idx) &&
                    !idleEnds(top.dueSec) &&
                    nextArr() > top.dueSec + kEps)
                    fast = true;
            }
            if (!fast) {
                const Event ev = peekNextEvent(c, ex, cfg);
                if (idleEnds(ev.atSec))
                    break; // kRunEnd / kControlEpoch
                if (ev.atSec > ex.nowSec)
                    ex.nowSec = ev.atSec;
                ++ex.counters.idleJumps;
                continue;
            }
            const std::uint32_t fidx = ex.gated.top().idx;
            ex.nowSec = ex.gated.top().dueSec;
            ++ex.counters.idleJumps;
            ex.gated.pop();
            ++ex.counters.promotions;
            // The scan's fit checks, for the lone candidate (lead is
            // zero: the task is already resident).
            const double fstep = c.stepSeconds(ex, fidx);
            const double fdep = c.departSec(fidx);
            if (fdep > 0.0 && ex.nowSec + fstep > fdep + kEps) {
                retire(c, ex, fidx);
                continue;
            }
            if (wall > 0.0 && ex.nowSec + fstep > wall + kEps) {
                if (end_on_unfit) {
                    // The generic path leaves an unfit survivor in the
                    // ready set and ends the run; keep that state.
                    enqueueReadyT<kSteady>(c, ex, cfg, fidx);
                    break;
                }
                retire(c, ex, fidx);
                continue;
            }
            if (rr_rotation)
                ex.rrNext = fidx + 1;
            c.core(fidx).state = TaskState::kReady;
            pick = fidx;
        }

        // Pick the first ready task (in policy order) that can still
        // run a step.  Tasks that can never run again -- their next
        // step would end past their departure, or past the wall --
        // retire on the spot; under `endRunWhenNoWallFit` wall-unfit
        // tasks are only skipped, and if nothing fits the run ends.
        bool saw_unfit = false;
        auto scan = [&](ReadySet::iterator it) {
            while (it != ex.ready.end()) {
                const std::uint32_t idx = it->idx;
                const double step_sec = c.stepSeconds(ex, idx);
                const double lead =
                    (ex.last != kNoTask && ex.last != std::size_t(idx))
                        ? sw
                        : 0.0;
                const double dep = c.departSec(idx);
                if (dep > 0.0 &&
                    ex.nowSec + lead + step_sec > dep + kEps) {
                    it = ex.ready.erase(it);
                    retire(c, ex, idx);
                    continue;
                }
                if (wall > 0.0 &&
                    ex.nowSec + lead + step_sec > wall + kEps) {
                    if (end_on_unfit) {
                        saw_unfit = true;
                        ++it;
                        continue;
                    }
                    it = ex.ready.erase(it);
                    retire(c, ex, idx);
                    continue;
                }
                pick = idx;
                ex.ready.erase(it);
                return;
            }
        };
        if (pick == kNoTask) {
            if (rr_rotation) {
                // Rotate: first ready index at or after the cursor,
                // else wrap to the smallest (the historical
                // scheduler's pick).
                ReadyKey from;
                from.idx = ex.rrNext;
                scan(ex.ready.lower_bound(from));
                if (pick == kNoTask)
                    scan(ex.ready.begin());
                if (pick != kNoTask)
                    ex.rrNext = std::uint32_t(pick) + 1;
            } else {
                scan(ex.ready.begin());
            }
            if (pick == kNoTask) {
                if (saw_unfit)
                    break; // nothing fits the wall: the run is over
                continue;  // everything retired; re-check events
            }
        }

        ++ex.counters.dispatches;
        double switch_lead = 0.0;
        if (ex.last != kNoTask && pick != ex.last) {
            // Bill the task change: the engine stalls while the
            // outgoing working set flushes and the incoming one loads.
            ++ex.counters.switches;
            ex.nowSec += sw;
            c.onSwitch(ex, std::uint32_t(pick));
            switch_lead = sw;
        }
        ex.last = pick;

        const std::uint32_t pidx = std::uint32_t(pick);
        TaskCore &tc = c.core(pidx);
        const double step_sec = c.stepSeconds(ex, pidx);
        const double arrival = c.arrivalSec(pidx);
        const double dep = c.departSec(pidx);
        const double rate = c.rateSps(pidx);
        const bool rate_gated = rate_gates && rate > 0.0;
        const std::uint64_t limit = c.stepLimit(pidx);
        // Strict-preempt scan pointer: consumed monotonically as the
        // iteration start advances, never past unconsumed arrivals.
        std::size_t peek = ex.arrCursor;
        // `arrival + done/rate` changes only when `done` does; caching
        // the latest value saves the deadline check, the coalesce
        // check and the end-of-dispatch transition their own FP
        // divisions.  Reuse of the identical expression cannot change
        // a byte.
        double due_cache = 0.0;
        bool due_cached = false;

        // Whether the quantum-expiry re-pick is a guaranteed no-op:
        // no other ready task, no promotable event, boundary not hit.
        // Then re-enqueue + promote + pick hands the engine straight
        // back to this task and the round trip can be skipped.
        auto canCoalesce = [&]() {
            if (!coalesce)
                return false;
            if (!ex.ready.empty())
                return false;
            if (atBoundary())
                return false;
            // The runner must be able to step again; otherwise the
            // dispatch-end transition (retire / gate / re-enqueue)
            // must run.
            if (limit > 0 && tc.done >= limit)
                return false;
            if (wall > 0.0 && ex.nowSec + step_sec > wall + kEps)
                return false;
            if (dep > 0.0 && ex.nowSec + step_sec > dep + kEps)
                return false;
            if (rate_gated &&
                (due_cached ? due_cache
                            : arrival + double(tc.done) / rate) >
                    ex.nowSec + kEps)
                return false;
            if (nextArr() <= ex.nowSec + kEps)
                return false;
            if (nextGateDueSec(c, ex) <= ex.nowSec + kEps)
                return false;
            return true;
        };

        // Run quanta, ending early on completion, on the epoch/wall
        // boundary, on departure, on the open-loop gate, or when a
        // new arrival makes a fresh scheduling decision due.
        bool dispatching = true;
        while (dispatching) {
            std::uint64_t q = 0;
            for (; q < quantum; ++q) {
                if (limit > 0 && tc.done >= limit) {
                    dispatching = false;
                    break;
                }
                if (wall > 0.0 &&
                    ex.nowSec + step_sec > wall + kEps) {
                    dispatching = false;
                    break;
                }
                if (dep > 0.0 && ex.nowSec + step_sec > dep + kEps) {
                    dispatching = false;
                    break;
                }
                double due = 0.0;
                if (rate_gated) {
                    due = due_cached
                              ? due_cache
                              : arrival + double(tc.done) / rate;
                    if (due > ex.nowSec + kEps) {
                        dispatching = false;
                        break; // next step not issued yet
                    }
                }
                // Latency reference: the open-loop due time, or
                // (closed loop) the moment the step became eligible --
                // arrival for the first step, the previous completion
                // after that.
                const double eligible =
                    rate_gated
                        ? due
                        : std::max(arrival,
                                   tc.done > 0 ? tc.lastCompletionSec
                                               : arrival);
                const double step_start = ex.nowSec;
                ex.nowSec += step_sec;
                ++tc.done;
                ++ex.counters.steps;
                c.onStep(ex, pidx, step_start, ex.nowSec - eligible,
                         eligible, switch_lead);
                switch_lead = 0.0; // only the dispatch's first step
                tc.lastCompletionSec = ex.nowSec;
                double deadline;
                if (rate > 0.0) {
                    // stepDeadlineSec's rate branch, computed here so
                    // the due cache picks up the new `done`'s value.
                    deadline = arrival + double(tc.done) / rate;
                    due_cache = deadline;
                    due_cached = true;
                } else {
                    deadline = stepDeadlineSec(c, pidx, tc.done);
                }
                if (ex.nowSec <= deadline + kEps)
                    ++tc.metDeadlines;
                if (limit > 0 && tc.done >= limit) {
                    tc.completed = true;
                    tc.completionSec = ex.nowSec;
                    dispatching = false;
                    break;
                }
                if (!wall_boundary && ex.nowSec + kEps >= t1) {
                    dispatching = false;
                    break;
                }
                // Preemption point: a new arrival is waiting.
                if (strict_preempt) {
                    while (peek < ex.arrivals.size() &&
                           c.arrivalSec(ex.arrivals[peek]) <=
                               step_start + kEps)
                        ++peek;
                    if (peek < ex.arrivals.size() &&
                        c.arrivalSec(ex.arrivals[peek]) <=
                            ex.nowSec + kEps) {
                        dispatching = false;
                        break;
                    }
                } else if (ex.arrCursor < ex.arrivals.size() &&
                           c.arrivalSec(ex.arrivals[ex.arrCursor]) <=
                               ex.nowSec + kEps) {
                    dispatching = false;
                    break;
                }
            }
            if (!dispatching)
                break;
            if (!canCoalesce())
                break;
            ++ex.counters.coalescedQuanta;
        }

        if (tc.completed) {
            retire(c, ex, pidx);
        } else if (dep > 0.0 && ex.nowSec + step_sec > dep + kEps) {
            retire(c, ex, pidx);
        } else if (rate_gated) {
            const double due =
                due_cached ? due_cache
                           : arrival + double(tc.done) / rate;
            if (due > ex.nowSec + kEps)
                gate(c, ex, pidx, due);
            else
                enqueueReadyT<kSteady>(c, ex, cfg, pidx);
        } else {
            enqueueReadyT<kSteady>(c, ex, cfg, pidx);
        }
    }
}

template <class Client>
inline void
runUntil(Client &c, Executor &ex, const Config &cfg, double t1)
{
    if (cfg.policy == Policy::kRoundRobin && !cfg.rrIndexRotation &&
        cfg.rateGates && !cfg.strictArrivalPreempt &&
        !cfg.idleSkipsBlocked && !cfg.endRunWhenNoWallFit &&
        !cfg.wallBoundary && cfg.coalesce && cfg.quantumIters == 1)
        runUntilT<true>(c, ex, cfg, t1);
    else
        runUntilT<false>(c, ex, cfg, t1);
}

} // namespace serve_core
} // namespace diva
