#pragma once

/**
 * @file
 * Event-driven serve core shared by the tenant serve loop
 * (src/tenant/serve.cc) and the fleet engine's per-pod simulation
 * (src/fleet/engine.cc).
 *
 * The core replaces the old per-quantum all-tenant scan loops with a
 * logical priority queue of typed events:
 *
 *   kArrival       a placed task's arrival time is reached
 *                  (sorted arrival list consumed by a cursor)
 *   kGateDue       an open-loop / migration-gated task's next step
 *                  comes due (lazily-invalidated min-heap)
 *   kQuantumExpiry the running task's quantum ends and a fresh
 *                  scheduling decision is due (implicit in the
 *                  dispatch loop; coalesced away when it would be a
 *                  guaranteed no-op re-pick)
 *   kControlEpoch  the caller's epoch boundary `t1` (the fleet's
 *                  budget / rebalance / placement rounds run between
 *                  epochs; the tenant loop passes one infinite epoch)
 *   kRunEnd        the wall budget, or no event left to serve
 *
 * Ready tasks sit in a `std::set<ReadyKey>` ordered so that the first
 * element is always the policy's pick (FIFO: arrival; priority:
 * (-priority, arrival); EDF: (next deadline, arrival); round-robin: a
 * monotone enqueue sequence number) with the task index as the final
 * tie break.  Dispatching pops the pick, runs up to one quantum of
 * iterations, and re-enqueues / gates / retires the task.
 *
 * The multi-quantum advance: when the quantum expires with no other
 * ready task and no promotable event, re-enqueue + promote + re-pick
 * is a guaranteed no-op that would hand the engine straight back to
 * the same task.  The core skips that scheduler round trip and keeps
 * stepping (counted in `Counters::coalescedQuanta`).  Time still
 * accumulates serially, one `now += stepSeconds` per iteration, so
 * every emitted double is bit-identical to the one-quantum-at-a-time
 * loops this file replaced.
 *
 * The two historical loops differ in small, output-visible ways
 * (comparator forms, preemption windows, gating conditions); those
 * differences are preserved behind `Config` flags rather than silently
 * unified -- byte-identical CSV/JSON output is a hard contract here.
 *
 * Clients provide task scalars, costs, and billing through a duck-typed
 * interface (see `runUntil` for the expected members).  Cross-executor
 * safety: every staleness check calls `client.owns(ex, idx)` *first*,
 * because ownership is only written at sequential epoch boundaries and
 * is therefore race-free to read while another executor concurrently
 * mutates the task's generation or state.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <set>
#include <vector>

namespace diva
{
namespace serve_core
{

constexpr double kEps = 1e-9;
constexpr double kInfSec = std::numeric_limits<double>::infinity();
constexpr std::size_t kNoTask = std::size_t(-1);

enum class Policy : std::uint8_t
{
    kFifo,
    kRoundRobin,
    kPriority,
    kEdf,
};

enum class EventType : std::uint8_t
{
    kNone,
    kArrival,
    kGateDue,
    kQuantumExpiry,
    kControlEpoch,
    kRunEnd,
};

/** One entry of the logical event queue, as seen by the idle path. */
struct Event
{
    EventType type = EventType::kNone;
    double atSec = kInfSec;
    std::uint32_t idx = 0;
};

/**
 * Composite ordering key of the ready set.  FIFO: (arrival); priority:
 * (-priority, arrival); EDF: (next deadline, arrival); round-robin
 * uses a monotone sequence number instead -- with the task index as
 * the final tie break, so the first element of the set is always the
 * policy's pick.
 */
struct ReadyKey
{
    double k1 = 0.0;
    double k2 = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t idx = 0;

    bool operator<(const ReadyKey &o) const
    {
        if (k1 != o.k1)
            return k1 < o.k1;
        if (k2 != o.k2)
            return k2 < o.k2;
        if (seq != o.seq)
            return seq < o.seq;
        return idx < o.idx;
    }
};

/** Lazily-invalidated entry of an executor's gated-until min-heap. */
struct GateEntry
{
    double dueSec = 0.0;
    std::uint32_t idx = 0;
    std::uint64_t gen = 0;

    bool operator>(const GateEntry &o) const
    {
        if (dueSec != o.dueSec)
            return dueSec > o.dueSec;
        if (idx != o.idx)
            return idx > o.idx;
        return gen > o.gen;
    }
};

enum class TaskState : std::uint8_t
{
    kPending,   // placed, waiting for its arrival time
    kReady,     // in its executor's ready set
    kGated,     // waiting for its next due time (open loop / migration)
    kSuspended, // preempted by the caller (fleet energy budget)
    kDone,      // service over (completed, departed, starved, rejected)
};

/** Scheduling state the core owns for each task. */
struct TaskCore
{
    TaskState state = TaskState::kPending;
    /** Bumped whenever the task leaves a queue, invalidating stale
     *  gated-heap entries that still carry the old generation. */
    std::uint64_t gen = 0;
    /** The key under which the task sits in ready (state kReady). */
    ReadyKey readyKey;

    std::uint64_t done = 0;
    std::uint64_t metDeadlines = 0;
    double lastCompletionSec = 0.0;
    bool completed = false;
    double completionSec = 0.0;
};

/** Per-executor event accounting, surfaced to the perf benches. */
struct Counters
{
    std::uint64_t steps = 0;
    std::uint64_t dispatches = 0;
    /** Quantum expiries absorbed without a scheduler round trip. */
    std::uint64_t coalescedQuanta = 0;
    std::uint64_t promotions = 0; // arrival + gate-due events served
    std::uint64_t idleJumps = 0;
    std::uint64_t switches = 0;
    std::uint64_t retired = 0;

    /** Discrete events the core processed (for events/sec rates). */
    std::uint64_t events() const
    {
        return dispatches + coalescedQuanta + promotions + idleJumps +
               retired;
    }

    Counters &operator+=(const Counters &o)
    {
        steps += o.steps;
        dispatches += o.dispatches;
        coalescedQuanta += o.coalescedQuanta;
        promotions += o.promotions;
        idleJumps += o.idleJumps;
        switches += o.switches;
        retired += o.retired;
        return *this;
    }
};

/** One serving executor (the whole engine for the tenant loop, one pod
 *  for the fleet).  Epochs touch only their own executor's state. */
struct Executor
{
    /** Caller-assigned id (the fleet's pod index). */
    std::size_t id = 0;

    double nowSec = 0.0;
    std::size_t last = kNoTask;

    std::set<ReadyKey> ready;
    /** Tasks first placed here, in arrival order (cursor consumed). */
    std::vector<std::uint32_t> arrivals;
    std::size_t arrCursor = 0;
    std::priority_queue<GateEntry, std::vector<GateEntry>,
                        std::greater<GateEntry>>
        gated;
    std::uint64_t rrSeq = 0;
    /** Round-robin index-rotation cursor (Config::rrIndexRotation). */
    std::uint32_t rrNext = 0;

    Counters counters;
};

/** Mode flags preserving the two historical loops' exact semantics. */
struct Config
{
    Policy policy = Policy::kRoundRobin;
    std::uint64_t quantumIters = 1;
    /** Wall-clock budget in simulated seconds; 0 = unbounded. */
    double wallLimitSec = 0.0;

    /** Tenant round-robin rotates over task indices (first ready index
     *  at or after the previous pick + 1) instead of enqueue order. */
    bool rrIndexRotation = false;
    /** Rate-target tasks gate on their next due time.  The fleet
     *  always gates; the tenant loop only under --steps 0 replay. */
    bool rateGates = true;
    /** An arrival only preempts the quantum if it lands strictly after
     *  the current iteration's start (tenant loop); the fleet preempts
     *  on any arrival at or before `now`. */
    bool strictArrivalPreempt = false;
    /** The idle jump skips events whose task could never run a step
     *  before its departure (tenant loop). */
    bool idleSkipsBlocked = false;
    /** No wall-fitting candidate ends the whole run (tenant loop); the
     *  fleet retires unfitting tasks and keeps serving. */
    bool endRunWhenNoWallFit = false;
    /** Boundary comparisons use the tenant loop's wall-based forms
     *  (`wall - now <= eps`) instead of the fleet's epoch forms
     *  (`now + eps >= t1`).  Algebraically equal, bitwise not. */
    bool wallBoundary = false;

    /** Test/debug: take the multi-quantum fast path.  Off forces a
     *  full scheduler round trip at every quantum expiry; the
     *  schedule, clocks and billing must be bit-identical either way
     *  (test_serve_core holds the core to that), only the
     *  dispatch/coalesce counters shift. */
    bool coalesce = true;
};

/** Deadline of step `k` (1-based) of task `idx`; +inf if untargeted. */
template <class Client>
inline double
stepDeadlineSec(const Client &c, std::uint32_t idx, std::uint64_t k)
{
    const double rate = c.rateSps(idx);
    if (rate > 0.0)
        return c.arrivalSec(idx) + double(k) / rate;
    const double d = c.qosDeadlineSec(idx);
    if (d > 0.0)
        return d;
    return kInfSec;
}

template <class Client>
inline ReadyKey
makeKey(const Client &c, Executor &ex, const Config &cfg,
        std::uint32_t idx)
{
    ReadyKey key;
    key.idx = idx;
    switch (cfg.policy) {
      case Policy::kFifo:
        key.k1 = c.arrivalSec(idx);
        break;
      case Policy::kPriority:
        key.k1 = -double(c.priority(idx));
        key.k2 = c.arrivalSec(idx);
        break;
      case Policy::kEdf:
        key.k1 = stepDeadlineSec(c, idx, c.core(idx).done + 1);
        key.k2 = c.arrivalSec(idx);
        break;
      case Policy::kRoundRobin:
        if (!cfg.rrIndexRotation)
            key.seq = ++ex.rrSeq;
        break;
    }
    return key;
}

template <class Client>
inline void
enqueueReady(Client &c, Executor &ex, const Config &cfg,
             std::uint32_t idx)
{
    TaskCore &tc = c.core(idx);
    tc.readyKey = makeKey(c, ex, cfg, idx);
    tc.state = TaskState::kReady;
    ex.ready.insert(tc.readyKey);
}

/** Park `idx` until `dueSec`; a fresh generation invalidates any older
 *  heap entry the task may still have. */
template <class Client>
inline void
gate(Client &c, Executor &ex, std::uint32_t idx, double dueSec)
{
    TaskCore &tc = c.core(idx);
    ++tc.gen;
    tc.state = TaskState::kGated;
    ex.gated.push({dueSec, idx, tc.gen});
}

/** Pull `idx` out of its executor's queues (suspension, migration).
 *  The caller sets the task's next state. */
template <class Client>
inline void
unschedule(Client &c, Executor &ex, std::uint32_t idx)
{
    TaskCore &tc = c.core(idx);
    if (tc.state == TaskState::kReady)
        ex.ready.erase(tc.readyKey);
    ++tc.gen; // invalidates any gated entry
}

template <class Client>
inline void
retire(Client &c, Executor &ex, std::uint32_t idx)
{
    c.core(idx).state = TaskState::kDone;
    ++ex.counters.retired;
    c.onRetire(ex, idx);
}

/** Serve every arrival and gate-due event at or before `ex.nowSec`. */
template <class Client>
inline void
promote(Client &c, Executor &ex, const Config &cfg)
{
    while (ex.arrCursor < ex.arrivals.size()) {
        const std::uint32_t idx = ex.arrivals[ex.arrCursor];
        // Stale entries (task migrated, suspended or rejected before
        // its first run here) are consumed without effect.  `owns` is
        // tested first: ownership is only written at sequential epoch
        // boundaries, so that read is race-free even when the task
        // migrated away and its new executor's epoch is concurrently
        // mutating its generation/state.
        if (!c.owns(ex, idx) ||
            c.core(idx).state != TaskState::kPending) {
            ++ex.arrCursor;
            continue;
        }
        if (c.arrivalSec(idx) > ex.nowSec + kEps)
            break;
        ++ex.arrCursor;
        ++ex.counters.promotions;
        enqueueReady(c, ex, cfg, idx);
    }
    while (!ex.gated.empty()) {
        const GateEntry &top = ex.gated.top();
        // `owns` first -- see the arrival scan for the rationale.
        if (!c.owns(ex, top.idx) ||
            top.gen != c.core(top.idx).gen ||
            c.core(top.idx).state != TaskState::kGated) {
            ex.gated.pop();
            continue;
        }
        if (top.dueSec > ex.nowSec + kEps)
            break;
        const std::uint32_t idx = top.idx;
        ex.gated.pop();
        ++ex.counters.promotions;
        enqueueReady(c, ex, cfg, idx);
    }
}

/** Next pending arrival on this executor; +inf if none.  Consumes
 *  stale cursor entries exactly like `promote` would. */
template <class Client>
inline double
nextArrivalSec(Client &c, Executor &ex)
{
    while (ex.arrCursor < ex.arrivals.size()) {
        const std::uint32_t idx = ex.arrivals[ex.arrCursor];
        if (!c.owns(ex, idx) ||
            c.core(idx).state != TaskState::kPending) {
            ++ex.arrCursor;
            continue;
        }
        return c.arrivalSec(idx);
    }
    return kInfSec;
}

/** Next valid gate-due on this executor; +inf if none. */
template <class Client>
inline double
nextGateDueSec(Client &c, Executor &ex)
{
    while (!ex.gated.empty()) {
        const GateEntry &top = ex.gated.top();
        if (!c.owns(ex, top.idx) ||
            top.gen != c.core(top.idx).gen ||
            c.core(top.idx).state != TaskState::kGated) {
            ex.gated.pop();
            continue;
        }
        return top.dueSec;
    }
    return kInfSec;
}

/** Whether a step launched at `atSec` (plus the switch stall the task
 *  would pay under the current `last`) would end past its departure.
 *  `last` cannot change while the task waits, so a blocked verdict is
 *  permanent. */
template <class Client>
inline bool
departBlockedAt(const Client &c, const Executor &ex, std::uint32_t idx,
                double atSec, double switchSec)
{
    const double dep = c.departSec(idx);
    if (!(dep > 0.0))
        return false;
    const double lead =
        (ex.last != kNoTask && ex.last != std::size_t(idx)) ? switchSec
                                                            : 0.0;
    return atSec + lead + c.stepSeconds(ex, idx) > dep + kEps;
}

/**
 * The next wake-up event (arrival or gate-due) on this executor.
 * Under `Config::idleSkipsBlocked` events whose task is permanently
 * departure-blocked are skipped: blocked arrivals stay in the list
 * (they still preempt a running quantum when they land), blocked
 * gated tasks are retired on the spot (they can never run again and
 * nothing else observes them).
 */
template <class Client>
inline Event
peekNextEvent(Client &c, Executor &ex, const Config &cfg)
{
    Event best;
    const double sw = c.switchSeconds(ex);
    std::size_t k = ex.arrCursor;
    while (k < ex.arrivals.size()) {
        const std::uint32_t idx = ex.arrivals[k];
        if (!c.owns(ex, idx) ||
            c.core(idx).state != TaskState::kPending) {
            if (k == ex.arrCursor)
                ++ex.arrCursor;
            ++k;
            continue;
        }
        const double a = c.arrivalSec(idx);
        if (cfg.idleSkipsBlocked &&
            departBlockedAt(c, ex, idx, a, sw)) {
            ++k;
            continue; // would run past its departure
        }
        best = {EventType::kArrival, a, idx};
        break;
    }
    while (!ex.gated.empty()) {
        const GateEntry &top = ex.gated.top();
        if (!c.owns(ex, top.idx) ||
            top.gen != c.core(top.idx).gen ||
            c.core(top.idx).state != TaskState::kGated) {
            ex.gated.pop();
            continue;
        }
        if (cfg.idleSkipsBlocked &&
            departBlockedAt(c, ex, top.idx, top.dueSec, sw)) {
            const std::uint32_t idx = top.idx;
            ex.gated.pop();
            retire(c, ex, idx);
            continue;
        }
        if (top.dueSec < best.atSec)
            best = {EventType::kGateDue, top.dueSec, top.idx};
        break;
    }
    return best;
}

/**
 * Serve one executor until the epoch boundary `t1` (pass +inf for an
 * uninterrupted run), the wall budget, or event exhaustion.
 *
 * `Client` provides, duck-typed:
 *   bool   owns(const Executor &, uint32_t idx) const
 *   double arrivalSec(idx) / departSec(idx) / rateSps(idx) /
 *          qosDeadlineSec(idx) const;  uint64_t stepLimit(idx) const;
 *   int    priority(idx) const
 *   double stepSeconds(const Executor &, idx) const
 *   double switchSeconds(const Executor &) const
 *   TaskCore &core(idx)  (and a const overload)
 *   void   onSwitch(Executor &, idx)      -- bill the context switch
 *   void   onStep(Executor &, idx, stepStartSec, latencySec)
 *   void   onRetire(Executor &, idx)
 */
template <class Client>
inline void
runUntil(Client &c, Executor &ex, const Config &cfg, double t1)
{
    const double wall = cfg.wallLimitSec;

    // Both forms compare `now` against `bound - eps`; they are kept
    // bit-exact to the loops they replaced, not merely equivalent.
    auto atBoundary = [&]() {
        return cfg.wallBoundary ? (wall > 0.0 && wall - ex.nowSec <= kEps)
                                : (ex.nowSec + kEps >= t1);
    };
    auto idleEnds = [&](double ev) {
        return cfg.wallBoundary
                   ? (!std::isfinite(ev) ||
                      (wall > 0.0 && ev + kEps >= wall))
                   : !(ev < t1 - kEps);
    };

    for (;;) {
        promote(c, ex, cfg);
        if (atBoundary())
            break;

        if (ex.ready.empty()) {
            const Event ev = peekNextEvent(c, ex, cfg);
            if (idleEnds(ev.atSec))
                break; // kRunEnd / kControlEpoch
            if (ev.atSec > ex.nowSec)
                ex.nowSec = ev.atSec;
            ++ex.counters.idleJumps;
            continue;
        }

        // Pick the first ready task (in policy order) that can still
        // run a step.  Tasks that can never run again -- their next
        // step would end past their departure, or past the wall --
        // retire on the spot; under `endRunWhenNoWallFit` wall-unfit
        // tasks are only skipped, and if nothing fits the run ends.
        const double sw = c.switchSeconds(ex);
        std::size_t pick = kNoTask;
        bool saw_unfit = false;
        auto scan = [&](std::set<ReadyKey>::iterator it) {
            while (it != ex.ready.end()) {
                const std::uint32_t idx = it->idx;
                const double step_sec = c.stepSeconds(ex, idx);
                const double lead =
                    (ex.last != kNoTask && ex.last != std::size_t(idx))
                        ? sw
                        : 0.0;
                const double dep = c.departSec(idx);
                if (dep > 0.0 &&
                    ex.nowSec + lead + step_sec > dep + kEps) {
                    it = ex.ready.erase(it);
                    retire(c, ex, idx);
                    continue;
                }
                if (wall > 0.0 &&
                    ex.nowSec + lead + step_sec > wall + kEps) {
                    if (cfg.endRunWhenNoWallFit) {
                        saw_unfit = true;
                        ++it;
                        continue;
                    }
                    it = ex.ready.erase(it);
                    retire(c, ex, idx);
                    continue;
                }
                pick = idx;
                ex.ready.erase(it);
                return;
            }
        };
        if (cfg.policy == Policy::kRoundRobin && cfg.rrIndexRotation) {
            // Rotate: first ready index at or after the cursor, else
            // wrap to the smallest (the historical scheduler's pick).
            ReadyKey from;
            from.idx = ex.rrNext;
            scan(ex.ready.lower_bound(from));
            if (pick == kNoTask)
                scan(ex.ready.begin());
            if (pick != kNoTask)
                ex.rrNext = std::uint32_t(pick) + 1;
        } else {
            scan(ex.ready.begin());
        }
        if (pick == kNoTask) {
            if (saw_unfit)
                break; // nothing fits the wall: the run is over
            continue;  // everything retired; re-check events
        }

        ++ex.counters.dispatches;
        if (ex.last != kNoTask && pick != ex.last) {
            // Bill the task change: the engine stalls while the
            // outgoing working set flushes and the incoming one loads.
            ++ex.counters.switches;
            ex.nowSec += sw;
            c.onSwitch(ex, std::uint32_t(pick));
        }
        ex.last = pick;

        const std::uint32_t pidx = std::uint32_t(pick);
        TaskCore &tc = c.core(pidx);
        const double step_sec = c.stepSeconds(ex, pidx);
        const double arrival = c.arrivalSec(pidx);
        const double dep = c.departSec(pidx);
        const double rate = c.rateSps(pidx);
        const bool rate_gated = cfg.rateGates && rate > 0.0;
        const std::uint64_t limit = c.stepLimit(pidx);
        // Strict-preempt scan pointer: consumed monotonically as the
        // iteration start advances, never past unconsumed arrivals.
        std::size_t peek = ex.arrCursor;

        // Whether the quantum-expiry re-pick is a guaranteed no-op:
        // no other ready task, no promotable event, boundary not hit.
        // Then re-enqueue + promote + pick hands the engine straight
        // back to this task and the round trip can be skipped.
        auto canCoalesce = [&]() {
            if (!cfg.coalesce)
                return false;
            if (!ex.ready.empty())
                return false;
            if (atBoundary())
                return false;
            // The runner must be able to step again; otherwise the
            // dispatch-end transition (retire / gate / re-enqueue)
            // must run.
            if (limit > 0 && tc.done >= limit)
                return false;
            if (wall > 0.0 && ex.nowSec + step_sec > wall + kEps)
                return false;
            if (dep > 0.0 && ex.nowSec + step_sec > dep + kEps)
                return false;
            if (rate_gated &&
                arrival + double(tc.done) / rate > ex.nowSec + kEps)
                return false;
            if (nextArrivalSec(c, ex) <= ex.nowSec + kEps)
                return false;
            if (nextGateDueSec(c, ex) <= ex.nowSec + kEps)
                return false;
            return true;
        };

        // Run quanta, ending early on completion, on the epoch/wall
        // boundary, on departure, on the open-loop gate, or when a
        // new arrival makes a fresh scheduling decision due.
        bool dispatching = true;
        while (dispatching) {
            std::uint64_t q = 0;
            for (; q < cfg.quantumIters; ++q) {
                if (limit > 0 && tc.done >= limit) {
                    dispatching = false;
                    break;
                }
                if (wall > 0.0 &&
                    ex.nowSec + step_sec > wall + kEps) {
                    dispatching = false;
                    break;
                }
                if (dep > 0.0 && ex.nowSec + step_sec > dep + kEps) {
                    dispatching = false;
                    break;
                }
                double due = 0.0;
                if (rate_gated) {
                    due = arrival + double(tc.done) / rate;
                    if (due > ex.nowSec + kEps) {
                        dispatching = false;
                        break; // next step not issued yet
                    }
                }
                // Latency reference: the open-loop due time, or
                // (closed loop) the moment the step became eligible --
                // arrival for the first step, the previous completion
                // after that.
                const double eligible =
                    rate_gated
                        ? due
                        : std::max(arrival,
                                   tc.done > 0 ? tc.lastCompletionSec
                                               : arrival);
                const double step_start = ex.nowSec;
                ex.nowSec += step_sec;
                ++tc.done;
                ++ex.counters.steps;
                c.onStep(ex, pidx, step_start, ex.nowSec - eligible);
                tc.lastCompletionSec = ex.nowSec;
                if (ex.nowSec <=
                    stepDeadlineSec(c, pidx, tc.done) + kEps)
                    ++tc.metDeadlines;
                if (limit > 0 && tc.done >= limit) {
                    tc.completed = true;
                    tc.completionSec = ex.nowSec;
                    dispatching = false;
                    break;
                }
                if (!cfg.wallBoundary && ex.nowSec + kEps >= t1) {
                    dispatching = false;
                    break;
                }
                // Preemption point: a new arrival is waiting.
                if (cfg.strictArrivalPreempt) {
                    while (peek < ex.arrivals.size() &&
                           c.arrivalSec(ex.arrivals[peek]) <=
                               step_start + kEps)
                        ++peek;
                    if (peek < ex.arrivals.size() &&
                        c.arrivalSec(ex.arrivals[peek]) <=
                            ex.nowSec + kEps) {
                        dispatching = false;
                        break;
                    }
                } else if (ex.arrCursor < ex.arrivals.size() &&
                           c.arrivalSec(ex.arrivals[ex.arrCursor]) <=
                               ex.nowSec + kEps) {
                    dispatching = false;
                    break;
                }
            }
            if (!dispatching)
                break;
            if (!canCoalesce())
                break;
            ++ex.counters.coalescedQuanta;
        }

        if (tc.completed) {
            retire(c, ex, pidx);
        } else if (dep > 0.0 && ex.nowSec + step_sec > dep + kEps) {
            retire(c, ex, pidx);
        } else if (rate_gated) {
            const double due = arrival + double(tc.done) / rate;
            if (due > ex.nowSec + kEps)
                gate(c, ex, pidx, due);
            else
                enqueueReady(c, ex, cfg, pidx);
        } else {
            enqueueReady(c, ex, cfg, pidx);
        }
    }
}

} // namespace serve_core
} // namespace diva
