#include "ppu/adder_tree.h"

#include "common/logging.h"

namespace diva
{

AdderTree::AdderTree(int width)
{
    DIVA_ASSERT(width > 0, "adder tree width must be positive");
    width_ = 1;
    levels_ = 0;
    while (width_ < width) {
        width_ <<= 1;
        ++levels_;
    }
}

double
AdderTree::reduce(const std::vector<float> &values) const
{
    double total = 0.0;
    for (std::size_t base = 0; base < values.size();
         base += std::size_t(width_)) {
        // One width-sized input vector per cycle; reduce in strict
        // pairwise tree order to match the hardware datapath.
        std::vector<double> level(std::size_t(width_), 0.0);
        for (int i = 0; i < width_; ++i) {
            const std::size_t idx = base + std::size_t(i);
            level[std::size_t(i)] = idx < values.size() ? values[idx] : 0.0;
        }
        while (level.size() > 1) {
            std::vector<double> next(level.size() / 2);
            for (std::size_t i = 0; i < next.size(); ++i)
                next[i] = level[2 * i] + level[2 * i + 1];
            level.swap(next);
        }
        total += level[0];
    }
    return total;
}

Cycles
AdderTree::reduceCycles(Elems num_vectors) const
{
    if (num_vectors == 0)
        return 0;
    return Cycles(num_vectors) + Cycles(levels_);
}

} // namespace diva
