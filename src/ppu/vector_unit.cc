#include "ppu/vector_unit.h"

#include "common/logging.h"

namespace diva
{

namespace
{

/** Relative cost of a reduction pass vs an element-wise pass. */
constexpr Elems kReductionOverhead = 2;

/** SIMD instructions per element for Gaussian noise generation. */
constexpr Elems kNoiseCostPerElem = 8;

} // namespace

VectorUnitModel::VectorUnitModel(const AcceleratorConfig &cfg)
    : cfg_(cfg)
{
    DIVA_ASSERT(cfg.vectorLanes > 0);
}

Cycles
VectorUnitModel::elementwiseCycles(Elems elems) const
{
    return Cycles(ceilDiv(elems, Elems(cfg_.vectorLanes)));
}

Cycles
VectorUnitModel::reductionCycles(Elems elems) const
{
    return Cycles(ceilDiv(elems * kReductionOverhead,
                          Elems(cfg_.vectorLanes)));
}

Cycles
VectorUnitModel::noiseCycles(Elems elems) const
{
    return Cycles(ceilDiv(elems * kNoiseCostPerElem,
                          Elems(cfg_.vectorLanes)));
}

} // namespace diva
