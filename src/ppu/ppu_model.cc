#include "ppu/ppu_model.h"

#include "common/logging.h"

namespace diva
{

PpuModel::PpuModel(const AcceleratorConfig &cfg)
    : cfg_(cfg), tree_(cfg.peCols)
{
    DIVA_ASSERT(cfg.hasPpu, "PpuModel constructed for a config without "
                            "a PPU");
}

Elems
PpuModel::elemsPerCycle() const
{
    return Elems(cfg_.peCols) * Elems(cfg_.drainRowsPerCycle);
}

PostProcResult
PpuModel::normOnDrain(Elems elems) const
{
    PostProcResult r;
    r.processedElems = elems;
    // The drain itself is already accounted inside the GEMM engine's
    // cycle model; the trees keep pace with it (FREQ_PPU == FREQ_GEMM,
    // PE_W elements per tree per cycle). Only the pipeline depth and
    // the final scalar square-root/accumulate are exposed.
    r.cycles = Cycles(tree_.levels()) + 4;
    // No DRAM traffic: this is the whole point of the PPU.
    return r;
}

PostProcResult
PpuModel::reduceOnChip(Elems elems) const
{
    PostProcResult r;
    r.processedElems = elems;
    const Elems per_cycle = elemsPerCycle();
    r.cycles = Cycles(ceilDiv(elems, per_cycle)) + Cycles(tree_.levels());
    return r;
}

} // namespace diva
