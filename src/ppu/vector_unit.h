/**
 * @file
 * Model of a TPU-style SIMD vector unit, the post-processing fallback
 * when no PPU is present (Section III-C / Figure 10(a)).
 *
 * The vector unit is efficient at element-wise work but reductions need
 * repeated vector permutations, halving its effective throughput; and
 * because per-example gradient tensors exceed the on-chip buffers they
 * are spilled to DRAM and fetched back, making norm derivation memory
 * bandwidth bound.
 */

#ifndef DIVA_PPU_VECTOR_UNIT_H
#define DIVA_PPU_VECTOR_UNIT_H

#include "arch/accelerator_config.h"
#include "common/types.h"
#include "ppu/ppu_model.h"

namespace diva
{

/** Cycle model of the on-chip vector processing unit. */
class VectorUnitModel
{
  public:
    explicit VectorUnitModel(const AcceleratorConfig &cfg);

    /** Element-wise op (scale, add) compute cycles for `elems`. */
    Cycles elementwiseCycles(Elems elems) const;

    /**
     * Reduction compute cycles: the log-depth permute/add sequence
     * costs roughly 2x the element-wise pass over the data.
     */
    Cycles reductionCycles(Elems elems) const;

    /**
     * Gaussian noise generation + add: pseudo-random number generation
     * is multi-instruction per element on a SIMD unit.
     */
    Cycles noiseCycles(Elems elems) const;

  private:
    AcceleratorConfig cfg_;
};

} // namespace diva

#endif // DIVA_PPU_VECTOR_UNIT_H
