/**
 * @file
 * Multi-level adder tree: the reduction primitive inside DiVa's PPU
 * (Figure 11). Provides both a functional model (tree-order summation,
 * used to validate reduction math) and a cycle model (pipelined, one
 * input vector per cycle, log2(width) levels of latency).
 */

#ifndef DIVA_PPU_ADDER_TREE_H
#define DIVA_PPU_ADDER_TREE_H

#include <vector>

#include "common/types.h"

namespace diva
{

/**
 * A pipelined binary adder tree of fixed input width. The baseline DiVa
 * PPU instantiates R = 8 trees of width 128 (7 levels), one per drained
 * GEMM-engine output row.
 */
class AdderTree
{
  public:
    /** @param width number of leaf inputs; rounded up to a power of 2. */
    explicit AdderTree(int width);

    int width() const { return width_; }

    /** Number of adder levels: log2(width). */
    int levels() const { return levels_; }

    /**
     * Functionally reduce `values` in hardware tree order. Vectors
     * longer than the tree width are folded in width-sized chunks, as
     * the pipelined hardware would over successive cycles.
     */
    double reduce(const std::vector<float> &values) const;

    /**
     * Cycles to reduce `num_vectors` width-sized input vectors through
     * the pipelined tree: one vector enters per cycle, plus the pipeline
     * depth for the last one to emerge.
     */
    Cycles reduceCycles(Elems num_vectors) const;

    /** Total two-input adders in the tree: width - 1. */
    int numAdders() const { return width_ - 1; }

  private:
    int width_;
    int levels_;
};

} // namespace diva

#endif // DIVA_PPU_ADDER_TREE_H
