/**
 * @file
 * Cycle/traffic model of DiVa's post-processing unit (Section IV-C).
 *
 * The PPU sits on the drain path of an OS-class GEMM engine: R adder
 * trees square-and-reduce the R output rows drained each cycle, so the
 * L2-norm partial sums of per-example weight gradients are derived
 * on-the-fly while the GEMM engine keeps running. The gradients never
 * have to be spilled to DRAM for norm derivation -- the source of the
 * paper's 99% reduction in post-processing off-chip traffic.
 */

#ifndef DIVA_PPU_PPU_MODEL_H
#define DIVA_PPU_PPU_MODEL_H

#include "arch/accelerator_config.h"
#include "common/types.h"
#include "ppu/adder_tree.h"

namespace diva
{

/** Result of a post-processing phase (norm / clip / reduce / noise). */
struct PostProcResult
{
    /** Cycles exposed beyond what overlaps with the GEMM engine. */
    Cycles cycles = 0;

    /** Extra DRAM traffic incurred by this phase. */
    Bytes dramReadBytes = 0;
    Bytes dramWriteBytes = 0;

    /** Elements that flowed through the reduction/vector datapath. */
    Elems processedElems = 0;
};

/**
 * DiVa PPU: R pipelined adder trees of width peCols, fed at the GEMM
 * engine's drain rate.
 */
class PpuModel
{
  public:
    explicit PpuModel(const AcceleratorConfig &cfg);

    /**
     * On-the-fly L2-norm partial-sum derivation for `elems` gradient
     * elements drained out of the GEMM engine. The trees consume rows
     * at line rate, so only the pipeline depth plus the final
     * scalar accumulate/sqrt is exposed per invocation.
     */
    PostProcResult normOnDrain(Elems elems) const;

    /**
     * Standalone reduction of `elems` elements already resident on
     * chip (e.g. reducing per-layer norm partials into the global
     * per-example norm): the trees process peCols * R elements/cycle.
     */
    PostProcResult reduceOnChip(Elems elems) const;

    /** Throughput of the PPU front-end in elements per cycle. */
    Elems elemsPerCycle() const;

    /** Number of adder-tree instances (= drain rows R). */
    int numTrees() const { return cfg_.drainRowsPerCycle; }

    const AdderTree &tree() const { return tree_; }

  private:
    AcceleratorConfig cfg_;
    AdderTree tree_;
};

} // namespace diva

#endif // DIVA_PPU_PPU_MODEL_H
