/**
 * @file
 * Energy, power, and area model (Section V "Area/power"/"Energy",
 * Table III, Figure 16).
 *
 * The paper derives GEMM-engine/PPU power and area from a 65 nm
 * SystemVerilog synthesis, SRAM energy from CACTI, and DRAM energy per
 * access from Horowitz's ISSCC'14 numbers. We encode the published
 * synthesis results (Table III) as model constants and use per-byte
 * energies in the Horowitz/CACTI range for the memory system, so total
 * energy is:
 *
 *   E = P_engine * T_exec + e_sram * bytes_sram + e_dram * bytes_dram
 */

#ifndef DIVA_ENERGY_ENERGY_MODEL_H
#define DIVA_ENERGY_ENERGY_MODEL_H

#include "arch/accelerator_config.h"
#include "sim/result.h"

namespace diva
{

/** Joules by component for one simulated iteration. */
struct EnergyBreakdown
{
    double computeJ = 0.0;
    double sramJ = 0.0;
    double dramJ = 0.0;

    double total() const { return computeJ + sramJ + dramJ; }
};

/** One row of the paper's Table III. */
struct AreaPowerEntry
{
    const char *engine = "";
    double powerWatts = 0.0;
    double areaMm2 = 0.0;
    double peakTflops = 0.0;
};

/** Energy/area/power constants and derivations. */
class EnergyModel
{
  public:
    /** GEMM-engine dynamic power in watts (Table III, 65 nm, 940 MHz). */
    static constexpr double kWsPowerW = 13.4;
    static constexpr double kOsPowerW = 13.6;
    static constexpr double kOuterPowerW = 21.2;
    static constexpr double kPpuPowerW = 2.6;

    /** GEMM-engine area in mm^2 (Table III). */
    static constexpr double kWsAreaMm2 = 68.0;
    static constexpr double kOsAreaMm2 = 70.0;
    static constexpr double kOuterAreaMm2 = 82.0;
    static constexpr double kPpuAreaMm2 = 3.0;

    /** Whole-chip envelope (Section VI-B: TPUv3-level, 12 nm). */
    static constexpr double kChipAreaMm2 = 650.0;
    static constexpr double kChipTdpW = 450.0;

    /** Memory energy per byte: CACTI-class SRAM, Horowitz DRAM. */
    static constexpr double kSramJoulesPerByte = 6.0e-12;
    static constexpr double kDramJoulesPerByte = 160.0e-12;

    /** Engine power (including PPU when present) for a config. */
    static double enginePowerW(const AcceleratorConfig &cfg);

    /** Engine area (including PPU when present) for a config. */
    static double engineAreaMm2(const AcceleratorConfig &cfg);

    /** Energy of one simulated iteration on the given accelerator. */
    static EnergyBreakdown energy(const SimResult &result,
                                  const AcceleratorConfig &cfg);

    /** Table III row for the given configuration. */
    static AreaPowerEntry tableEntry(const AcceleratorConfig &cfg);
};

} // namespace diva

#endif // DIVA_ENERGY_ENERGY_MODEL_H
