#include "energy/energy_model.h"

#include "common/logging.h"

namespace diva
{

double
EnergyModel::enginePowerW(const AcceleratorConfig &cfg)
{
    double p = 0.0;
    switch (cfg.dataflow) {
      case Dataflow::kWeightStationary: p = kWsPowerW; break;
      case Dataflow::kOutputStationary: p = kOsPowerW; break;
      case Dataflow::kOuterProduct: p = kOuterPowerW; break;
    }
    if (cfg.hasPpu)
        p += kPpuPowerW;
    // Scale with PE count relative to the synthesized 128x128 design,
    // so ablation configs with different array sizes stay meaningful.
    const double pe_scale =
        double(cfg.peRows) * double(cfg.peCols) / (128.0 * 128.0);
    return p * pe_scale;
}

double
EnergyModel::engineAreaMm2(const AcceleratorConfig &cfg)
{
    double a = 0.0;
    switch (cfg.dataflow) {
      case Dataflow::kWeightStationary: a = kWsAreaMm2; break;
      case Dataflow::kOutputStationary: a = kOsAreaMm2; break;
      case Dataflow::kOuterProduct: a = kOuterAreaMm2; break;
    }
    if (cfg.hasPpu)
        a += kPpuAreaMm2;
    const double pe_scale =
        double(cfg.peRows) * double(cfg.peCols) / (128.0 * 128.0);
    return a * pe_scale;
}

EnergyBreakdown
EnergyModel::energy(const SimResult &result, const AcceleratorConfig &cfg)
{
    EnergyBreakdown e;
    e.computeJ = enginePowerW(cfg) * result.seconds(cfg);
    e.sramJ = kSramJoulesPerByte *
              double(result.sramReadBytes + result.sramWriteBytes);
    e.dramJ = kDramJoulesPerByte * double(result.totalDram().total());
    return e;
}

AreaPowerEntry
EnergyModel::tableEntry(const AcceleratorConfig &cfg)
{
    AreaPowerEntry entry;
    entry.engine = cfg.name.c_str();
    entry.powerWatts = enginePowerW(cfg);
    entry.areaMm2 = engineAreaMm2(cfg);
    entry.peakTflops = cfg.peakTflops();
    return entry;
}

} // namespace diva
