#include "common/rng.h"

#include <cmath>

namespace diva
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits give a uniform double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    // Modulo bias is negligible for n << 2^64 (all our use cases).
    return n == 0 ? 0 : next() % n;
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    hasSpare_ = true;
    return u * mul;
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

void
Rng::fillGaussian(std::vector<float> &out, double stddev)
{
    for (auto &x : out)
        x = static_cast<float>(gaussian(0.0, stddev));
}

} // namespace diva
