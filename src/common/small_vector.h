/**
 * @file
 * Minimal small-buffer vector for trivially copyable element types.
 *
 * The serve core keeps one ready set and one gated heap per executor;
 * a fleet run has one executor per pod and most hold only a handful of
 * runnable tenants at any instant.  std::set / std::priority_queue put
 * every element (or the backing array) on the heap, so the event hot
 * path pays an allocator round trip per scheduling transition.  This
 * container stores the first N elements inline in the owning object --
 * which for the fleet means inside the PodRt array, contiguous and
 * prefetch-friendly -- and only touches the heap when an executor
 * grows past N.  Heap capacity, once acquired, is kept until
 * destruction (the epoch loop's reuse pattern), so steady-state
 * executors allocate nothing at all.
 *
 * Deliberately not a general std::vector replacement: trivially
 * copyable elements only (memcpy moves, no destructor calls), growth
 * by doubling, and just the operations the serve core and the fleet
 * engine use.
 */

#ifndef DIVA_COMMON_SMALL_VECTOR_H
#define DIVA_COMMON_SMALL_VECTOR_H

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace diva
{

template <class T, std::size_t N>
class SmallVector
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SmallVector relies on memcpy relocation");
    static_assert(N > 0, "inline capacity must be positive");

  public:
    using value_type = T;
    using iterator = T *;
    using const_iterator = const T *;

    SmallVector() = default;

    SmallVector(const SmallVector &o) { assign(o); }

    SmallVector(SmallVector &&o) noexcept { adopt(std::move(o)); }

    SmallVector &operator=(const SmallVector &o)
    {
        if (this != &o) {
            size_ = 0;
            assign(o);
        }
        return *this;
    }

    SmallVector &operator=(SmallVector &&o) noexcept
    {
        if (this != &o) {
            release();
            adopt(std::move(o));
        }
        return *this;
    }

    ~SmallVector() { release(); }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return cap_; }

    T *data() { return data_; }
    const T *data() const { return data_; }
    iterator begin() { return data_; }
    iterator end() { return data_ + size_; }
    const_iterator begin() const { return data_; }
    const_iterator end() const { return data_ + size_; }

    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }
    T &front() { return data_[0]; }
    const T &front() const { return data_[0]; }
    T &back() { return data_[size_ - 1]; }
    const T &back() const { return data_[size_ - 1]; }

    void clear() { size_ = 0; }

    void reserve(std::size_t cap)
    {
        if (cap > cap_)
            grow(cap);
    }

    void push_back(const T &v)
    {
        if (size_ == cap_)
            grow(cap_ * 2);
        data_[size_++] = v;
    }

    void pop_back() { --size_; }

    /** Insert `v` before `pos`, shifting the tail up one slot. */
    iterator insert(iterator pos, const T &v)
    {
        const std::size_t at = std::size_t(pos - data_);
        if (size_ == cap_)
            grow(cap_ * 2);
        std::memmove(data_ + at + 1, data_ + at,
                     (size_ - at) * sizeof(T));
        data_[at] = v;
        ++size_;
        return data_ + at;
    }

    /** Erase the element at `pos`; returns the next element. */
    iterator erase(iterator pos)
    {
        const std::size_t at = std::size_t(pos - data_);
        std::memmove(data_ + at, data_ + at + 1,
                     (size_ - at - 1) * sizeof(T));
        --size_;
        return data_ + at;
    }

  private:
    void assign(const SmallVector &o)
    {
        reserve(o.size_);
        std::memcpy(data_, o.data_, o.size_ * sizeof(T));
        size_ = o.size_;
    }

    /** Move-steal: takes o's heap block, or memcpys its inline data. */
    void adopt(SmallVector &&o)
    {
        if (o.data_ != o.inlineData()) {
            data_ = o.data_;
            cap_ = o.cap_;
        } else {
            data_ = inlineData();
            cap_ = N;
            std::memcpy(data_, o.data_, o.size_ * sizeof(T));
        }
        size_ = o.size_;
        o.data_ = o.inlineData();
        o.cap_ = N;
        o.size_ = 0;
    }

    void release()
    {
        if (data_ != inlineData())
            ::operator delete(data_);
        data_ = inlineData();
        cap_ = N;
    }

    void grow(std::size_t cap)
    {
        cap = std::max(cap, N * 2);
        T *fresh = static_cast<T *>(::operator new(cap * sizeof(T)));
        std::memcpy(fresh, data_, size_ * sizeof(T));
        if (data_ != inlineData())
            ::operator delete(data_);
        data_ = fresh;
        cap_ = cap;
    }

    T *inlineData() { return std::launder(reinterpret_cast<T *>(inline_)); }

    alignas(T) unsigned char inline_[N * sizeof(T)];
    T *data_ = inlineData();
    std::size_t size_ = 0;
    std::size_t cap_ = N;
};

} // namespace diva

#endif // DIVA_COMMON_SMALL_VECTOR_H
