/**
 * @file
 * Deterministic random number generation used by the functional DP-SGD
 * library (noise addition, synthetic data) and by randomized tests.
 *
 * A fixed, seedable generator keeps every experiment reproducible: the
 * paper's privacy guarantee depends only on the noise *distribution*, so
 * a deterministic PRNG is a faithful substitute for a hardware RNG.
 */

#ifndef DIVA_COMMON_RNG_H
#define DIVA_COMMON_RNG_H

#include <cstdint>
#include <vector>

namespace diva
{

/**
 * SplitMix64-seeded xoshiro256** generator with Gaussian sampling.
 * Small, fast, and fully deterministic across platforms (unlike
 * std::normal_distribution, whose output is implementation-defined).
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eedDefa17ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal sample (Box-Muller with caching). */
    double gaussian();

    /** Normal sample with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Fill a vector with i.i.d. N(0, stddev^2) samples. */
    void fillGaussian(std::vector<float> &out, double stddev);

  private:
    std::uint64_t s_[4];
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

} // namespace diva

#endif // DIVA_COMMON_RNG_H
