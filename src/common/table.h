/**
 * @file
 * Lightweight text-table formatter used by the benchmark harness to
 * print paper-style tables and figure series.
 */

#ifndef DIVA_COMMON_TABLE_H
#define DIVA_COMMON_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace diva
{

/**
 * A simple column-aligned text table. Rows are added as vectors of
 * preformatted cells; print() pads every column to its widest cell.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append a data row; short rows are padded with empty cells. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render the table to the stream. */
    void print(std::ostream &os) const;

    /**
     * Render as CSV (header + data rows; separators omitted). Cells
     * containing commas or quotes are quoted per RFC 4180.
     */
    void printCsv(std::ostream &os) const;

    /** Number of data rows (separators excluded). */
    std::size_t numRows() const { return numDataRows_; }

    /** Format a double with the given precision. */
    static std::string fmt(double v, int precision = 2);

    /** Format a value as a multiplier, e.g. "3.60x". */
    static std::string fmtX(double v, int precision = 2);

    /** Format a percentage, e.g. "42.1%". */
    static std::string fmtPct(double v, int precision = 1);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::size_t numDataRows_ = 0;

    static const std::string kSeparatorTag;
};

} // namespace diva

#endif // DIVA_COMMON_TABLE_H
