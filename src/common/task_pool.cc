#include "common/task_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdint>

namespace diva
{

namespace
{

/** Whether this thread is currently executing inside a pool lane;
 *  nested parallelFor calls run inline instead of deadlocking. */
thread_local bool t_insidePool = false;

} // namespace

/**
 * One parallelFor invocation, stack-allocated in run().  Lanes claim
 * indices from their own chunk's cursor first, then steal from the
 * other chunks in cyclic order.  Chunk cursors are the only state
 * touched outside the pool mutex; they are padded apart so two lanes
 * draining neighboring chunks do not false-share a cache line.
 *
 * Lifetime: a worker adopts the job and bumps `visitors` under the
 * pool mutex; it decrements under the same mutex when it exits the
 * job.  The caller runs lane 0 itself, then sleeps until `visitors`
 * drains to zero -- at that point every claimed index has finished
 * (work() only returns once every chunk is exhausted, and a claimed
 * index is executed by its claimer before that lane exits), so the
 * stack frame can die.  The mutex hand-off also sequences the lanes'
 * writes before the caller's reads of the results.
 */
struct TaskPool::Job
{
    struct alignas(64) Chunk
    {
        std::atomic<std::size_t> next{0};
        std::size_t end = 0;
    };

    void (*invoke)(void *, std::size_t) = nullptr;
    void *ctx = nullptr;
    std::vector<Chunk> chunks;
    /** Next lane id to hand out (mutex-guarded); also the preferred
     *  start chunk, so lanes begin on disjoint ranges. */
    std::size_t laneClaim = 1;
    /** Pool workers currently inside the job (mutex-guarded). */
    std::size_t visitors = 0;

    /** Drain the job starting from chunk `lane` until no chunk has an
     *  unclaimed index left. */
    void work(std::size_t lane)
    {
        const std::size_t nchunks = chunks.size();
        for (std::size_t probe = 0; probe < nchunks; ++probe) {
            Chunk &chunk = chunks[(lane + probe) % nchunks];
            for (;;) {
                const std::size_t i = chunk.next.fetch_add(
                    1, std::memory_order_relaxed);
                if (i >= chunk.end)
                    break;
                invoke(ctx, i);
            }
        }
    }
};

TaskPool::~TaskPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

TaskPool &
TaskPool::shared()
{
    static TaskPool pool;
    return pool;
}

std::size_t
TaskPool::workerCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return threads_.size();
}

void
TaskPool::ensureWorkers(std::size_t target)
{
    // Caller holds mutex_.
    while (threads_.size() < target)
        threads_.emplace_back([this]() { workerLoop(); });
}

void
TaskPool::workerLoop()
{
    t_insidePool = true;
    std::uint64_t seen = 0;
    for (;;) {
        Job *job = nullptr;
        std::size_t lane = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&]() {
                return stop_ || (job_ != nullptr && jobGen_ != seen);
            });
            if (stop_)
                return;
            seen = jobGen_;
            job = job_;
            lane = job->laneClaim++;
            if (lane >= job->chunks.size())
                continue; // more workers woke than the job has lanes
            ++job->visitors;
        }
        job->work(lane);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --job->visitors;
        }
        done_.notify_all();
    }
}

void
TaskPool::run(std::size_t count, int workers,
              void (*invoke)(void *, std::size_t), void *ctx)
{
    if (count == 0)
        return;
    // Trivial runs -- and nested calls from inside a pool lane -- skip
    // the pool machinery entirely: no lock, no atomics, no wakeups.
    if (workers <= 1 || count == 1 || t_insidePool) {
        for (std::size_t i = 0; i < count; ++i)
            invoke(ctx, i);
        return;
    }

    const std::size_t lanes =
        std::min<std::size_t>(std::size_t(workers), count);
    Job job;
    job.invoke = invoke;
    job.ctx = ctx;
    job.chunks = std::vector<Job::Chunk>(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
        // Chunk l covers [l*count/lanes, (l+1)*count/lanes): an exact
        // cover of [0, count) -- no index shared, no index dropped.
        job.chunks[l].next.store(count * l / lanes,
                                 std::memory_order_relaxed);
        job.chunks[l].end = count * (l + 1) / lanes;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        ensureWorkers(lanes - 1);
        job_ = &job;
        ++jobGen_;
    }
    wake_.notify_all();

    // The caller is lane 0.
    t_insidePool = true;
    job.work(0);
    t_insidePool = false;

    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&]() { return job.visitors == 0; });
    job_ = nullptr;
}

} // namespace diva
