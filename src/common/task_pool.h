/**
 * @file
 * Persistent work-stealing task pool shared by the fleet engine's
 * epoch loop and the sweep runner's scenario-group execution.
 *
 * Both call sites used to build and join a brand-new std::thread pool
 * per invocation -- per *epoch* in the fleet's case, which turns a
 * 144-epoch replay into hundreds of spawn/join cycles whose cost
 * scales with the thread count instead of amortizing away.  This pool
 * spawns each worker once, parks it on a condition variable between
 * jobs, and hands out indices via chunked work stealing:
 *
 *   - [0, count) is split into one contiguous chunk per lane (a lane
 *     is the caller plus up to workers-1 pool threads), preserving the
 *     cache locality of a static partition;
 *   - each lane drains its own chunk through an atomic cursor, then
 *     steals from the remaining chunks in cyclic order, so a lane that
 *     finishes early absorbs the stragglers' tails instead of idling.
 *
 * Determinism: the pool imposes no ordering -- every index runs
 * exactly once, on some lane.  Call sites must only use it when
 * distinct indices touch disjoint state (the fleet's pods, the sweep's
 * scenario groups), which is also what makes the output independent of
 * the schedule and therefore of the thread count.
 *
 * Trivial runs (`workers <= 1` or `count <= 1`) execute inline on the
 * calling thread and never touch the pool machinery, locks included.
 * Nested parallelFor calls from inside a pool lane also run inline:
 * the pool never deadlocks on itself.
 *
 * Worker threads must not throw out of `fn`; simulation call sites
 * report failures through their result objects instead.
 */

#ifndef DIVA_COMMON_TASK_POOL_H
#define DIVA_COMMON_TASK_POOL_H

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace diva
{

/** Persistent worker pool; see the file comment for the contract. */
class TaskPool
{
  public:
    TaskPool() = default;
    ~TaskPool();

    TaskPool(const TaskPool &) = delete;
    TaskPool &operator=(const TaskPool &) = delete;

    /**
     * The process-wide shared pool.  Grown on demand to the largest
     * `workers` ever requested, never shrunk; idle workers block on a
     * condition variable and cost nothing.
     */
    static TaskPool &shared();

    /**
     * Run `fn(i)` exactly once for every i in [0, count), on up to
     * `workers` lanes including the calling thread, and return when
     * all of them finished.  `fn` must tolerate concurrent invocation
     * on distinct indices and must not throw.
     */
    template <class Fn>
    void parallelFor(std::size_t count, int workers, Fn &&fn)
    {
        run(count, workers,
            [](void *ctx, std::size_t i) {
                (*static_cast<std::remove_reference_t<Fn> *>(ctx))(i);
            },
            &fn);
    }

    /** Pool threads currently spawned (for tests / introspection). */
    std::size_t workerCount() const;

  private:
    struct Job;

    /** Type-erased core of parallelFor. */
    void run(std::size_t count, int workers,
             void (*invoke)(void *, std::size_t), void *ctx);

    /** Spawn pool threads until at least `target` exist. */
    void ensureWorkers(std::size_t target);

    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::vector<std::thread> threads_;
    Job *job_ = nullptr;          // the in-flight job, or nullptr
    std::uint64_t jobGen_ = 0;    // bumped per published job
    bool stop_ = false;
};

} // namespace diva

#endif // DIVA_COMMON_TASK_POOL_H
