/**
 * @file
 * Deterministic text formatting shared by every CSV/JSON emitter
 * (sweep, serve, arrival traces): shortest round-trippable doubles
 * with pinned nan/inf spellings, JSON number tokens that map
 * non-finite values to null, RFC-4180 CSV cell quoting, and JSON
 * string escaping. One definition here keeps the guards identical
 * across emitters instead of drifting per copy.
 */

#ifndef DIVA_COMMON_FORMAT_H
#define DIVA_COMMON_FORMAT_H

#include <string>

namespace diva
{

/**
 * Shortest round-trippable decimal form of a double ("0.25", "1e-06").
 * Non-finite values format as "nan" / "inf" / "-inf".
 */
std::string formatDouble(double v);

/** JSON number token for v: formatDouble, or "null" when non-finite. */
std::string jsonNumber(double v);

/** Quote a CSV-unsafe cell per RFC 4180; safe cells pass through. */
std::string csvCell(const std::string &s);

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

} // namespace diva

#endif // DIVA_COMMON_FORMAT_H
