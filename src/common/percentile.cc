#include "common/percentile.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace diva
{

namespace
{

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

} // namespace

double
percentileSorted(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return kNaN;
    p = std::min(100.0, std::max(0.0, p));
    // Nearest rank: ceil(p/100 * n), 1-based; p=0 maps to the minimum.
    const std::size_t n = sorted.size();
    std::size_t rank = std::size_t(std::ceil(p / 100.0 * double(n)));
    if (rank < 1)
        rank = 1;
    if (rank > n)
        rank = n;
    return sorted[rank - 1];
}

LatencyStats
computeLatencyStats(std::vector<double> samples)
{
    samples.erase(std::remove_if(samples.begin(), samples.end(),
                                 [](double v) { return std::isnan(v); }),
                  samples.end());
    LatencyStats out;
    if (samples.empty()) {
        out.meanSec = out.p50Sec = out.p95Sec = out.p99Sec = out.maxSec =
            kNaN;
        return out;
    }
    std::sort(samples.begin(), samples.end());
    out.count = samples.size();
    double sum = 0.0;
    for (double v : samples)
        sum += v;
    out.meanSec = sum / double(samples.size());
    out.p50Sec = percentileSorted(samples, 50.0);
    out.p95Sec = percentileSorted(samples, 95.0);
    out.p99Sec = percentileSorted(samples, 99.0);
    out.maxSec = samples.back();
    return out;
}

} // namespace diva
