#include "common/percentile.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>

namespace diva
{

namespace
{

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/** Below this, a comparison sort beats the radix passes' setup. */
constexpr std::size_t kRadixMin = 4096;

/**
 * LSD radix sort, ascending, for strictly positive NaN-free doubles.
 * Positive IEEE-754 doubles order the same as their raw bit patterns,
 * so eight byte-wide counting passes reproduce std::sort's order
 * exactly (equal doubles are bit-identical, so stability questions
 * cannot surface in the output).  All eight histograms come out of one
 * fused widening pass (16 KB of counters, L1-resident), which also
 * verifies the positivity precondition: on the first sample that is
 * not > 0 (NaN compares false) the function bails out with `v`
 * untouched and returns false so the caller can comparison-sort.
 * Scatter passes whose byte is constant across the whole array --
 * most of them, for latency samples that share an exponent range --
 * are skipped.  The fleet's aggregate latency sort is O(n log n)
 * worth avoiding: n is the total step count.
 */
bool
radixSortPositive(std::vector<double> &v)
{
    const std::size_t n = v.size();
    // new[] (not vector) so the scratch stays uninitialized: every
    // slot is written before it is read.
    std::unique_ptr<std::uint64_t[]> lo(new std::uint64_t[n]);
    std::unique_ptr<std::uint64_t[]> hi(new std::uint64_t[n]);
    std::uint64_t *a = lo.get();
    std::uint64_t *b = hi.get();
    std::size_t count[8][256] = {};
    for (std::size_t i = 0; i < n; ++i) {
        if (!(v[i] > 0.0))
            return false;
        std::uint64_t bits;
        std::memcpy(&bits, &v[i], sizeof bits);
        a[i] = bits;
        for (int pass = 0; pass < 8; ++pass)
            ++count[pass][(bits >> (pass * 8)) & 255];
    }
    for (int pass = 0; pass < 8; ++pass) {
        const int shift = pass * 8;
        std::size_t *c = count[pass];
        if (c[(a[0] >> shift) & 255] == n)
            continue; // constant byte: the pass is a no-op
        std::size_t offset = 0;
        for (std::size_t slot = 0; slot < 256; ++slot) {
            const std::size_t here = c[slot];
            c[slot] = offset;
            offset += here;
        }
        for (std::size_t i = 0; i < n; ++i)
            b[c[(a[i] >> shift) & 255]++] = a[i];
        std::swap(a, b);
    }
    for (std::size_t i = 0; i < n; ++i)
        std::memcpy(&v[i], &a[i], sizeof(double));
    return true;
}

/**
 * Distinct-value census of a strictly positive, NaN-free sample set.
 * Fleet latency samples repeat heavily -- a replay's millions of steps
 * share a few thousand distinct queueing delays -- so order statistics
 * over (value, count) pairs beat both a full sort and per-rank
 * selection.  The census keeps the same precondition as
 * radixSortPositive (every sample > 0.0): positive doubles order by
 * their raw bits and carry one bit pattern per value, so "distinct
 * bits" and "distinct value" coincide and the derived statistics are
 * bit-identical to sorting the raw array.  Gives up (returning false,
 * with `bits`/`cnt` unspecified) on the first non-positive sample or
 * when the distinct count passes kMaxDistinct, where the plain sort
 * path is the better tool anyway.
 */
constexpr std::size_t kMaxDistinct = std::size_t(1) << 13;

bool
censusPositive(const double *s, std::size_t n,
               std::vector<std::uint64_t> &bits,
               std::vector<std::size_t> &cnt)
{
    constexpr std::size_t kSlots = kMaxDistinct * 4; // load <= 0.25
    constexpr std::uint64_t kMul = 0x9E3779B97F4A7C15ull;
    struct Slot
    {
        std::uint64_t bits;
        std::size_t cnt; // 0 marks an empty slot
    };
    std::unique_ptr<Slot[]> table(new Slot[kSlots]());
    std::size_t distinct = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (!(s[i] > 0.0))
            return false;
        std::uint64_t b;
        std::memcpy(&b, &s[i], sizeof b);
        std::size_t at = std::size_t((b * kMul) >> 49) & (kSlots - 1);
        for (;;) {
            Slot &sl = table[at];
            if (sl.cnt == 0) {
                if (distinct == kMaxDistinct)
                    return false;
                ++distinct;
                sl.bits = b;
                sl.cnt = 1;
                break;
            }
            if (sl.bits == b) {
                ++sl.cnt;
                break;
            }
            at = (at + 1) & (kSlots - 1);
        }
    }
    bits.clear();
    cnt.clear();
    bits.reserve(distinct);
    cnt.reserve(distinct);
    for (std::size_t at = 0; at < kSlots; ++at)
        if (table[at].cnt != 0) {
            bits.push_back(table[at].bits);
            cnt.push_back(table[at].cnt);
        }
    // Ascending bit order is ascending value order for positives; the
    // counts vector is permuted in lockstep via an index sort.
    std::vector<std::uint32_t> order(bits.size());
    for (std::uint32_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b2) {
                  return bits[a] < bits[b2];
              });
    std::vector<std::uint64_t> sb(bits.size());
    std::vector<std::size_t> sc(cnt.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        sb[i] = bits[order[i]];
        sc[i] = cnt[order[i]];
    }
    bits.swap(sb);
    cnt.swap(sc);
    return true;
}

/** The double whose raw bits are `b`. */
double
bitsToDouble(std::uint64_t b)
{
    double v;
    std::memcpy(&v, &b, sizeof v);
    return v;
}

/** Nearest rank for percentile p over n samples: 1-based, clamped. */
std::size_t
nearestRank(double p, std::size_t n)
{
    p = std::min(100.0, std::max(0.0, p));
    std::size_t rank = std::size_t(std::ceil(p / 100.0 * double(n)));
    if (rank < 1)
        rank = 1;
    if (rank > n)
        rank = n;
    return rank;
}

/** Drop NaNs in place; the survivors keep their relative order. */
void
dropNaNs(std::vector<double> &samples)
{
    samples.erase(std::remove_if(samples.begin(), samples.end(),
                                 [](double v) { return std::isnan(v); }),
                  samples.end());
}

/**
 * Shared tail of computeLatencyStats: statistics over a NaN-free
 * buffer of n samples, reordering the buffer as a side effect.
 */
LatencyStats
statsOverBuffer(double *s, std::size_t n)
{
    LatencyStats out;
    if (n == 0) {
        out.meanSec = out.p50Sec = out.p95Sec = out.p99Sec = out.maxSec =
            kNaN;
        return out;
    }
    out.count = n;
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        sum += s[i];
    out.meanSec = sum / double(n);

    // Small sets (the per-tenant fleet stats: one run per session)
    // take one tiny full sort instead of three selection passes; the
    // ranked values are the same elements either way.  Most steady
    // tenants see one constant step latency, and a constant set makes
    // every pick that value -- detected with one scan, no sort.  (Not
    // for zeros: +0.0 == -0.0 with distinct bytes, so those keep the
    // sort path that arbitrates which pattern each rank yields.)
    if (n <= 32) {
        bool all_eq = s[0] != 0.0;
        for (std::size_t i = 1; all_eq && i < n; ++i)
            all_eq = s[i] == s[0];
        if (all_eq) {
            out.maxSec = out.p50Sec = out.p95Sec = out.p99Sec = s[0];
            return out;
        }
        std::sort(s, s + n);
        out.maxSec = s[n - 1];
        out.p50Sec = s[nearestRank(50.0, n) - 1];
        out.p95Sec = s[nearestRank(95.0, n) - 1];
        out.p99Sec = s[nearestRank(99.0, n) - 1];
        return out;
    }

    // Large positive sets: rank lookups over the distinct-value census
    // replace the selection passes (same elements, same bytes).  Below
    // kRadixMin the census table's setup dwarfs the selections it
    // saves.
    if (n >= kRadixMin) {
        std::vector<std::uint64_t> bits;
        std::vector<std::size_t> cnt;
        if (censusPositive(s, n, bits, cnt)) {
            out.maxSec = bitsToDouble(bits.back());
            const std::size_t ranks[3] = {nearestRank(50.0, n),
                                          nearestRank(95.0, n),
                                          nearestRank(99.0, n)};
            double vals[3] = {0.0, 0.0, 0.0};
            std::size_t cum = 0, r = 0;
            for (std::size_t i = 0; i < bits.size() && r < 3; ++i) {
                cum += cnt[i];
                while (r < 3 && ranks[r] <= cum)
                    vals[r++] = bitsToDouble(bits[i]);
            }
            out.p50Sec = vals[0];
            out.p95Sec = vals[1];
            out.p99Sec = vals[2];
            return out;
        }
    }
    out.maxSec = *std::max_element(s, s + n);

    // One O(n) selection per rank instead of an O(n log n) full sort.
    // Each nth_element leaves [first, nth) <= *nth <= (nth, last), so
    // selecting the (non-decreasing) ranks in order lets every later
    // selection start past the previous rank. The selected values are
    // the same elements a full sort would index: bit-identical
    // nearest-rank percentiles, cheaper tails.
    const double ps[3] = {50.0, 95.0, 99.0};
    double vals[3];
    std::size_t prev = 0; // s[0 .. prev) already partitioned off
    std::size_t prev_rank = 0;
    for (int i = 0; i < 3; ++i) {
        const std::size_t rank = nearestRank(ps[i], n);
        if (i > 0 && rank == prev_rank) {
            vals[i] = vals[i - 1];
            continue;
        }
        std::nth_element(s + prev, s + (rank - 1), s + n);
        vals[i] = s[rank - 1];
        prev = rank;
        prev_rank = rank;
    }
    out.p50Sec = vals[0];
    out.p95Sec = vals[1];
    out.p99Sec = vals[2];
    return out;
}

} // namespace

double
percentileSorted(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return kNaN;
    return sorted[nearestRank(p, sorted.size()) - 1];
}

LatencyStats
computeLatencyStats(std::vector<double> samples)
{
    dropNaNs(samples);
    return statsOverBuffer(samples.data(), samples.size());
}

LatencyStats
computeLatencyStatsScratch(double *samples, std::size_t count)
{
    double *last = std::remove_if(
        samples, samples + count,
        [](double v) { return std::isnan(v); });
    return statsOverBuffer(samples, std::size_t(last - samples));
}

LatencyStats
computeLatencyStatsSortedMean(std::vector<double> samples)
{
    dropNaNs(samples);
    LatencyStats out;
    if (samples.empty()) {
        out.meanSec = out.p50Sec = out.p95Sec = out.p99Sec = out.maxSec =
            kNaN;
        return out;
    }
    const std::size_t n = samples.size();
    out.count = n;

    // First choice for big sample sets: the distinct-value census.
    // Summing each value `count` times in ascending value order
    // replays the exact addition sequence of summing the sorted array,
    // and rank lookups over the cumulative counts index the same
    // elements a sort would -- identical bytes, no 8-byte-per-sample
    // scratch, no scatter passes.
    if (n >= kRadixMin) {
        std::vector<std::uint64_t> bits;
        std::vector<std::size_t> cnt;
        if (censusPositive(samples.data(), n, bits, cnt)) {
            double sum = 0.0;
            for (std::size_t i = 0; i < bits.size(); ++i) {
                const double v = bitsToDouble(bits[i]);
                for (std::size_t k = 0; k < cnt[i]; ++k)
                    sum += v;
            }
            out.meanSec = sum / double(n);
            const std::size_t ranks[3] = {nearestRank(50.0, n),
                                          nearestRank(95.0, n),
                                          nearestRank(99.0, n)};
            double vals[3] = {0.0, 0.0, 0.0};
            std::size_t cum = 0, r = 0;
            for (std::size_t i = 0; i < bits.size() && r < 3; ++i) {
                cum += cnt[i];
                while (r < 3 && ranks[r] <= cum)
                    vals[r++] = bitsToDouble(bits[i]);
            }
            out.p50Sec = vals[0];
            out.p95Sec = vals[1];
            out.p99Sec = vals[2];
            out.maxSec = bitsToDouble(bits.back());
            return out;
        }
    }

    // The radix path requires strictly positive samples: with zeros of
    // both signs in play, a comparison sort's placement among "equal"
    // elements would be observable.  Real latencies are positive; any
    // other input makes radixSortPositive bail and takes the
    // comparison sort.
    if (n < kRadixMin || !radixSortPositive(samples))
        std::sort(samples.begin(), samples.end());
    double sum = 0.0;
    for (double v : samples)
        sum += v;
    out.meanSec = sum / double(samples.size());
    out.p50Sec = percentileSorted(samples, 50.0);
    out.p95Sec = percentileSorted(samples, 95.0);
    out.p99Sec = percentileSorted(samples, 99.0);
    out.maxSec = samples.back();
    return out;
}

} // namespace diva
