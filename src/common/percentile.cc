#include "common/percentile.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace diva
{

namespace
{

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/** Nearest rank for percentile p over n samples: 1-based, clamped. */
std::size_t
nearestRank(double p, std::size_t n)
{
    p = std::min(100.0, std::max(0.0, p));
    std::size_t rank = std::size_t(std::ceil(p / 100.0 * double(n)));
    if (rank < 1)
        rank = 1;
    if (rank > n)
        rank = n;
    return rank;
}

/** Drop NaNs in place; the survivors keep their relative order. */
void
dropNaNs(std::vector<double> &samples)
{
    samples.erase(std::remove_if(samples.begin(), samples.end(),
                                 [](double v) { return std::isnan(v); }),
                  samples.end());
}

} // namespace

double
percentileSorted(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return kNaN;
    return sorted[nearestRank(p, sorted.size()) - 1];
}

LatencyStats
computeLatencyStats(std::vector<double> samples)
{
    dropNaNs(samples);
    LatencyStats out;
    if (samples.empty()) {
        out.meanSec = out.p50Sec = out.p95Sec = out.p99Sec = out.maxSec =
            kNaN;
        return out;
    }
    const std::size_t n = samples.size();
    out.count = n;
    double sum = 0.0;
    for (double v : samples)
        sum += v;
    out.meanSec = sum / double(n);
    out.maxSec = *std::max_element(samples.begin(), samples.end());

    // One O(n) selection per rank instead of an O(n log n) full sort.
    // Each nth_element leaves [first, nth) <= *nth <= (nth, last), so
    // selecting the (non-decreasing) ranks in order lets every later
    // selection start past the previous rank. The selected values are
    // the same elements a full sort would index: bit-identical
    // nearest-rank percentiles, cheaper tails.
    const double ps[3] = {50.0, 95.0, 99.0};
    double vals[3];
    std::size_t prev = 0; // samples[0 .. prev) already partitioned off
    std::size_t prev_rank = 0;
    for (int i = 0; i < 3; ++i) {
        const std::size_t rank = nearestRank(ps[i], n);
        if (i > 0 && rank == prev_rank) {
            vals[i] = vals[i - 1];
            continue;
        }
        std::nth_element(samples.begin() + prev,
                         samples.begin() + (rank - 1), samples.end());
        vals[i] = samples[rank - 1];
        prev = rank;
        prev_rank = rank;
    }
    out.p50Sec = vals[0];
    out.p95Sec = vals[1];
    out.p99Sec = vals[2];
    return out;
}

LatencyStats
computeLatencyStatsSortedMean(std::vector<double> samples)
{
    dropNaNs(samples);
    LatencyStats out;
    if (samples.empty()) {
        out.meanSec = out.p50Sec = out.p95Sec = out.p99Sec = out.maxSec =
            kNaN;
        return out;
    }
    std::sort(samples.begin(), samples.end());
    out.count = samples.size();
    double sum = 0.0;
    for (double v : samples)
        sum += v;
    out.meanSec = sum / double(samples.size());
    out.p50Sec = percentileSorted(samples, 50.0);
    out.p95Sec = percentileSorted(samples, 95.0);
    out.p99Sec = percentileSorted(samples, 99.0);
    out.maxSec = samples.back();
    return out;
}

} // namespace diva
