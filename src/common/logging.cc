#include "common/logging.h"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace diva
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " @ " << file << ":" << line
              << std::endl;
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cerr << "info: " << msg << std::endl;
}

} // namespace diva
