#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <stdexcept>

namespace diva
{

namespace
{

/**
 * Serializes all sink writes so concurrent sweep workers never
 * interleave partial lines. The lock is released before any throw so
 * exception propagation cannot deadlock a logging call on another
 * thread.
 */
std::mutex &
sinkMutex()
{
    static std::mutex m;
    return m;
}

std::atomic<LogVerbosity> &
verbosityFlag()
{
    static std::atomic<LogVerbosity> level{LogVerbosity::kNormal};
    return level;
}

/**
 * The single guarded sink every non-fatal severity funnels through:
 * one lock, one prefixed line, one flush. Building the full line
 * before streaming keeps a message atomic even if a future sink
 * writes in chunks.
 */
void
sinkWrite(const char *prefix, const std::string &msg,
          LogVerbosity minLevel)
{
    if (logVerbosity() < minLevel)
        return;
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::cerr << prefix << msg << std::endl;
}

} // namespace

void
setLogVerbosity(LogVerbosity level)
{
    verbosityFlag().store(level, std::memory_order_relaxed);
}

LogVerbosity
logVerbosity()
{
    return verbosityFlag().load(std::memory_order_relaxed);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(sinkMutex());
        std::cerr << "panic: " << msg << " @ " << file << ":" << line
                  << std::endl;
    }
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(sinkMutex());
        std::cerr << "fatal: " << msg << " @ " << file << ":" << line
                  << std::endl;
    }
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    sinkWrite("warn: ", msg, LogVerbosity::kNormal);
}

void
informImpl(const std::string &msg)
{
    sinkWrite("info: ", msg, LogVerbosity::kNormal);
}

void
verboseImpl(const std::string &msg)
{
    sinkWrite("info: ", msg, LogVerbosity::kVerbose);
}

} // namespace diva
