#include "common/logging.h"

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <stdexcept>

namespace diva
{

namespace
{

/**
 * Serializes all sink writes so concurrent sweep workers never
 * interleave partial lines. The lock is released before any throw so
 * exception propagation cannot deadlock a logging call on another
 * thread.
 */
std::mutex &
sinkMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(sinkMutex());
        std::cerr << "panic: " << msg << " @ " << file << ":" << line
                  << std::endl;
    }
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(sinkMutex());
        std::cerr << "fatal: " << msg << " @ " << file << ":" << line
                  << std::endl;
    }
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::cerr << "info: " << msg << std::endl;
}

} // namespace diva
