#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace diva
{

const std::string TextTable::kSeparatorTag = "\x01--";

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    cells.resize(header_.size());
    rows_.push_back(std::move(cells));
    ++numDataRows_;
}

void
TextTable::addSeparator()
{
    rows_.push_back({kSeparatorTag});
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        if (!row.empty() && row[0] == kSeparatorTag)
            continue;
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto printRule = [&]() {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << '+' << std::string(widths[c] + 2, '-');
        }
        os << "+\n";
    };
    auto printCells = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            os << "| " << std::left << std::setw(int(widths[c])) << cell
               << ' ';
        }
        os << "|\n";
    };

    printRule();
    printCells(header_);
    printRule();
    for (const auto &row : rows_) {
        if (!row.empty() && row[0] == kSeparatorTag)
            printRule();
        else
            printCells(row);
    }
    printRule();
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto printRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < header_.size(); ++c) {
            if (c > 0)
                os << ',';
            const std::string &cell = c < cells.size() ? cells[c] : "";
            const bool quote =
                cell.find_first_of(",\"\n") != std::string::npos;
            if (quote) {
                os << '"';
                for (char ch : cell) {
                    if (ch == '"')
                        os << '"';
                    os << ch;
                }
                os << '"';
            } else {
                os << cell;
            }
        }
        os << '\n';
    };
    printRow(header_);
    for (const auto &row : rows_) {
        if (!row.empty() && row[0] == kSeparatorTag)
            continue;
        printRow(row);
    }
}

std::string
TextTable::fmt(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

std::string
TextTable::fmtX(double v, int precision)
{
    return fmt(v, precision) + "x";
}

std::string
TextTable::fmtPct(double v, int precision)
{
    return fmt(v * 100.0, precision) + "%";
}

} // namespace diva
