/**
 * @file
 * Fundamental scalar type aliases shared across the DiVa simulator.
 */

#ifndef DIVA_COMMON_TYPES_H
#define DIVA_COMMON_TYPES_H

#include <cstdint>

namespace diva
{

/** Simulated clock cycles (at the accelerator core frequency). */
using Cycles = std::uint64_t;

/** Byte counts for memory traffic and capacity accounting. */
using Bytes = std::uint64_t;

/** Multiply-accumulate operation counts. */
using Macs = std::uint64_t;

/** Element counts for tensors and vector operations. */
using Elems = std::uint64_t;

/** Convenience literal helpers for capacities. */
constexpr Bytes operator""_KiB(unsigned long long v) { return v << 10; }
constexpr Bytes operator""_MiB(unsigned long long v) { return v << 20; }
constexpr Bytes operator""_GiB(unsigned long long v) { return v << 30; }

/** Integer ceiling division for positive integers. */
template <typename T>
constexpr T
ceilDiv(T num, T den)
{
    return (num + den - 1) / den;
}

} // namespace diva

#endif // DIVA_COMMON_TYPES_H
