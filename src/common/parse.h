/**
 * @file
 * Whole-string number parsing shared by the CLI flag parsers and the
 * arrival-trace loaders: the entire text must be consumed (trailing
 * garbage rejects), doubles must be finite, and failure reports
 * through std::optional so each caller attaches its own message. One
 * definition here keeps the accept/reject rules identical everywhere
 * a number crosses a text boundary.
 */

#ifndef DIVA_COMMON_PARSE_H
#define DIVA_COMMON_PARSE_H

#include <cmath>
#include <optional>
#include <string>

namespace diva
{

/** Parse a whole string as an integer; nullopt on any malformation. */
inline std::optional<long long>
parseIntText(const std::string &text)
{
    try {
        std::size_t consumed = 0;
        const long long value = std::stoll(text, &consumed);
        if (consumed == text.size())
            return value;
    } catch (const std::exception &) {
    }
    return std::nullopt;
}

/** Parse a whole string as a finite double; nullopt otherwise. */
inline std::optional<double>
parseDoubleText(const std::string &text)
{
    try {
        std::size_t consumed = 0;
        const double value = std::stod(text, &consumed);
        if (consumed == text.size() && std::isfinite(value))
            return value;
    } catch (const std::exception &) {
    }
    return std::nullopt;
}

/**
 * parseIntText restricted to [lo, hi] -- the caller's int-typed
 * destination never sees a silently wrapped 64-bit value.
 */
inline std::optional<long long>
parseBoundedIntText(const std::string &text, long long lo, long long hi)
{
    const std::optional<long long> v = parseIntText(text);
    if (v && *v >= lo && *v <= hi)
        return v;
    return std::nullopt;
}

} // namespace diva

#endif // DIVA_COMMON_PARSE_H
