/**
 * @file
 * Exact order statistics for latency samples. Serving-systems
 * tail-latency reporting (p50/p95/p99) uses the nearest-rank
 * definition -- no interpolation, no streaming sketches -- so two
 * runs over the same samples produce the same bytes and a percentile
 * is always a value that actually occurred. The workhorse
 * computeLatencyStats selects each rank with std::nth_element (O(n)
 * per rank instead of one O(n log n) sort; the selected values are
 * bit-identical to indexing a full sort). NaN samples (e.g. steps
 * that never ran) are excluded up front rather than poisoning the
 * selection.
 */

#ifndef DIVA_COMMON_PERCENTILE_H
#define DIVA_COMMON_PERCENTILE_H

#include <cstddef>
#include <vector>

namespace diva
{

/**
 * Nearest-rank percentile of `sorted` (ascending, NaN-free): the
 * smallest element with at least p percent of the samples at or below
 * it. p is clamped to [0, 100]; an empty vector yields NaN.
 */
double percentileSorted(const std::vector<double> &sorted, double p);

/** Tail-latency summary of one sample set. */
struct LatencyStats
{
    /** Finite samples counted (NaN inputs are excluded). */
    std::size_t count = 0;

    double meanSec = 0.0;
    double p50Sec = 0.0;
    double p95Sec = 0.0;
    double p99Sec = 0.0;
    double maxSec = 0.0;
};

/**
 * Exact stats over `samples` (taken by value; reordered in place by
 * the per-rank selections). NaN samples are dropped first; an empty
 * (or all-NaN) set yields count 0 with every statistic NaN. The mean
 * accumulates in the samples' input order.
 */
LatencyStats computeLatencyStats(std::vector<double> samples);

/**
 * computeLatencyStats over a caller-owned scratch buffer: identical
 * statistics (bit for bit), but the samples are reordered in place
 * instead of being copied into a fresh vector. For callers that slice
 * many small sample runs out of one arena -- the fleet's per-tenant
 * stats -- this removes an allocation per call.
 */
LatencyStats computeLatencyStatsScratch(double *samples,
                                        std::size_t count);

/**
 * Same statistics via a full sort, with the mean accumulated in
 * ascending order. The aggregate CSV/JSON rows are the only emitters
 * of meanSec and have always summed the sorted samples, so they call
 * this variant to keep their bytes stable; percentiles, count and max
 * are bit-identical between the two functions.
 */
LatencyStats computeLatencyStatsSortedMean(std::vector<double> samples);

} // namespace diva

#endif // DIVA_COMMON_PERCENTILE_H
