/**
 * @file
 * Exact-sort order statistics for latency samples. Serving-systems
 * tail-latency reporting (p50/p95/p99) uses the nearest-rank
 * definition over the fully sorted sample set -- no interpolation, no
 * streaming sketches -- so two runs over the same samples produce the
 * same bytes and a percentile is always a value that actually
 * occurred. NaN samples (e.g. steps that never ran) are excluded up
 * front rather than poisoning the sort.
 */

#ifndef DIVA_COMMON_PERCENTILE_H
#define DIVA_COMMON_PERCENTILE_H

#include <cstddef>
#include <vector>

namespace diva
{

/**
 * Nearest-rank percentile of `sorted` (ascending, NaN-free): the
 * smallest element with at least p percent of the samples at or below
 * it. p is clamped to [0, 100]; an empty vector yields NaN.
 */
double percentileSorted(const std::vector<double> &sorted, double p);

/** Tail-latency summary of one sample set. */
struct LatencyStats
{
    /** Finite samples counted (NaN inputs are excluded). */
    std::size_t count = 0;

    double meanSec = 0.0;
    double p50Sec = 0.0;
    double p95Sec = 0.0;
    double p99Sec = 0.0;
    double maxSec = 0.0;
};

/**
 * Exact-sort stats over `samples` (taken by value; sorted in place).
 * NaN samples are dropped first; an empty (or all-NaN) set yields
 * count 0 with every statistic NaN.
 */
LatencyStats computeLatencyStats(std::vector<double> samples);

} // namespace diva

#endif // DIVA_COMMON_PERCENTILE_H
