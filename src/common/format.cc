#include "common/format.h"

#include <cmath>
#include <cstdio>

namespace diva
{

std::string
csvCell(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string quoted = "\"";
    for (char c : s) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
formatDouble(double v)
{
    // Non-finite values never round-trip (nan != nan would drive the
    // precision loop to 17 digits) and %g spells them platform-
    // dependently; pin the text form.
    if (std::isnan(v))
        return "nan";
    if (std::isinf(v))
        return v < 0.0 ? "-inf" : "inf";
    // %.17g round-trips but is noisy; prefer the shortest precision
    // that parses back exactly. Deterministic for a given value.
    char buf[64];
    for (int prec = 6; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        double parsed = 0.0;
        std::sscanf(buf, "%lf", &parsed);
        if (parsed == v)
            break;
    }
    return buf;
}

std::string
jsonNumber(double v)
{
    // JSON has no NaN/Infinity literals; emit null for non-finite.
    return std::isfinite(v) ? formatDouble(v) : "null";
}

} // namespace diva
