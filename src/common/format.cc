#include "common/format.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace diva
{

std::string
csvCell(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string quoted = "\"";
    for (char c : s) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
formatDouble(double v)
{
    // Non-finite values never round-trip (nan != nan would drive the
    // precision loop to 17 digits) and %g spells them platform-
    // dependently; pin the text form.
    if (std::isnan(v))
        return "nan";
    if (std::isinf(v))
        return v < 0.0 ? "-inf" : "inf";
    // %.17g round-trips but is noisy; use the shortest precision that
    // parses back exactly, floored at 6 (the historical %g default).
    // The shortest-scientific form's mantissa length *is* that
    // precision -- correctly-rounded printf round-trips at any
    // precision >= it and at none below -- so one to_chars call
    // replaces the old snprintf/sscanf probe loop (which dominated
    // million-row CSV emission).
    char sci[64];
    const auto res =
        std::to_chars(sci, sci + sizeof(sci), v,
                      std::chars_format::scientific);
    int digits = 0;
    for (const char *c = sci; c != res.ptr && *c != 'e'; ++c)
        digits += *c >= '0' && *c <= '9';
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", digits < 6 ? 6 : digits,
                  v);
    return buf;
}

std::string
jsonNumber(double v)
{
    // JSON has no NaN/Infinity literals; emit null for non-finite.
    return std::isfinite(v) ? formatDouble(v) : "null";
}

} // namespace diva
