/**
 * @file
 * Minimal logging and assertion facilities, in the spirit of gem5's
 * panic()/fatal()/warn() trio.
 *
 * panic() is reserved for internal invariant violations (simulator bugs);
 * fatal() is for user errors (bad configurations, impossible requests);
 * warn()/inform() report conditions that do not stop the simulation.
 */

#ifndef DIVA_COMMON_LOGGING_H
#define DIVA_COMMON_LOGGING_H

#include <sstream>
#include <string>

namespace diva
{

/** Terminate with an internal-error message (simulator bug). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Terminate with a user-error message (bad configuration). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr without stopping. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

/** Print a message only at verbose level (see setLogVerbosity). */
void verboseImpl(const std::string &msg);

/**
 * Stderr chattiness. Levels are cumulative: kQuiet drops warn and
 * inform too (panic/fatal always print), kNormal (the default) prints
 * warn/inform, kVerbose additionally prints DIVA_VERBOSE progress
 * notes such as the disk-cache preload summary.
 */
enum class LogVerbosity
{
    kQuiet = 0,
    kNormal = 1,
    kVerbose = 2,
};

/** Set the process-wide stderr verbosity (default kNormal). */
void setLogVerbosity(LogVerbosity level);

LogVerbosity logVerbosity();

namespace detail
{

/** Fold a parameter pack into a single string via ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

} // namespace diva

#define DIVA_PANIC(...) \
    ::diva::panicImpl(__FILE__, __LINE__, ::diva::detail::concat(__VA_ARGS__))

#define DIVA_FATAL(...) \
    ::diva::fatalImpl(__FILE__, __LINE__, ::diva::detail::concat(__VA_ARGS__))

#define DIVA_WARN(...) \
    ::diva::warnImpl(::diva::detail::concat(__VA_ARGS__))

#define DIVA_INFORM(...) \
    ::diva::informImpl(::diva::detail::concat(__VA_ARGS__))

/** Progress notes printed only under LogVerbosity::kVerbose. */
#define DIVA_VERBOSE(...) \
    ::diva::verboseImpl(::diva::detail::concat(__VA_ARGS__))

/** Internal invariant check; failure indicates a simulator bug. */
#define DIVA_ASSERT(cond, ...)                                        \
    do {                                                              \
        if (!(cond)) {                                                \
            ::diva::panicImpl(__FILE__, __LINE__,                     \
                ::diva::detail::concat("assertion failed: " #cond " ", \
                                       ##__VA_ARGS__));               \
        }                                                             \
    } while (0)

#endif // DIVA_COMMON_LOGGING_H
