/**
 * @file
 * Cluster-level placement policies: when a tenant session arrives, the
 * fleet engine asks the placement policy which pod should serve it.
 * All policies see the same projected view of every pod -- the QoS
 * demand already placed there and its live session count -- plus the
 * arriving tenant's demand and joules-per-step priced on each pod
 * (heterogeneous pods price the same tenant differently), and only
 * pods whose demand stays within the per-pod cap are feasible.
 *
 * Determinism contract: choosePod() is a pure function of its inputs
 * with index-order tie-breaking, so a placement sequence is
 * byte-reproducible whatever the host thread count.
 */

#ifndef DIVA_FLEET_PLACEMENT_H
#define DIVA_FLEET_PLACEMENT_H

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace diva
{

/** The cluster-level placement policies offered by the fleet. */
enum class PlacementKind
{
    /** First pod (by index) with room: classic bin packing. */
    kFirstFit,
    /** Least-utilized pod with room (demand, then session count). */
    kLoadAware,
    /** Pod with room serving this tenant at the fewest joules/step. */
    kEnergyAware,
};

/** CLI/CSV name of a policy ("first-fit", "load", "energy"). */
const char *placementName(PlacementKind k);

/** Parse a placement name (accepts aliases); nullopt if unknown. */
std::optional<PlacementKind> placementFromName(const std::string &name);

/** Every placement policy, in declaration order. */
std::vector<PlacementKind> allPlacements();

/** Projected load of one pod at placement time. */
struct PodLoadView
{
    /** QoS utilization demand already placed and still live. */
    double demand = 0.0;

    /** Live sessions assigned (best-effort tenants count here). */
    std::size_t sessions = 0;
};

/** choosePod()'s "no feasible pod" verdict: the tenant is rejected. */
constexpr std::size_t kNoPod = std::size_t(-1);

/**
 * Pick the pod for one arriving tenant. `demandOnPod[p]` is the
 * tenant's QoS utilization demand priced on pod p (0 = best effort)
 * and `energyPerStepOnPod[p]` its isolated joules per step there; a
 * pod is feasible while its projected demand plus the tenant's stays
 * within `cap`. Returns kNoPod when no pod is feasible.
 */
std::size_t choosePod(PlacementKind kind,
                      const std::vector<PodLoadView> &pods,
                      const std::vector<double> &demandOnPod,
                      const std::vector<double> &energyPerStepOnPod,
                      double cap);

} // namespace diva

#endif // DIVA_FLEET_PLACEMENT_H
