#include "fleet/fleet.h"

#include <cmath>
#include <sstream>

#include "common/parse.h"

namespace diva
{

std::string
PodSpec::validationError() const
{
    if (chips < 1)
        return "pod '" + name + "': chip count must be >= 1";
    const std::string cfg_err = config.validationError();
    if (!cfg_err.empty())
        return "pod '" + name + "': " + cfg_err;
    if (chips > 1) {
        if (!(pod.interconnectGBs > 0.0) ||
            !std::isfinite(pod.interconnectGBs))
            return "pod '" + name +
                   "': interconnect bandwidth must be finite and > 0";
    }
    return "";
}

std::string
FleetSpec::validationError() const
{
    if (pods.empty())
        return "fleet has no pods";
    for (const PodSpec &p : pods) {
        const std::string err = p.validationError();
        if (!err.empty())
            return err;
    }
    if (!(podDemandCap > 0.0) || !std::isfinite(podDemandCap))
        return "pod demand cap must be finite and > 0";
    if (rebalance.enabled) {
        if (!(rebalance.skewThreshold > 0.0) ||
            !std::isfinite(rebalance.skewThreshold))
            return "rebalance skew threshold must be finite and > 0";
        if (rebalance.maxPerRound < 1)
            return "rebalance migration cap must be >= 1";
    }
    if (!(budget.powerCapW >= 0.0) || !std::isfinite(budget.powerCapW))
        return "power cap must be finite and >= 0";
    if (!(budget.totalJ >= 0.0) || !std::isfinite(budget.totalJ))
        return "energy budget must be finite and >= 0";
    if (!(controlIntervalSec >= 0.0) ||
        !std::isfinite(controlIntervalSec))
        return "control interval must be finite and >= 0";
    if (!std::isfinite(workingSetFraction) ||
        workingSetFraction <= 0.0 || workingSetFraction > 1.0)
        return "working-set fraction must be in (0, 1]";
    if (quantumIters < 1)
        return "quantum must be >= 1 iteration";
    if (!(wallLimitSec >= 0.0) || !std::isfinite(wallLimitSec))
        return "wall budget must be finite and >= 0";
    return "";
}

std::optional<std::vector<PodSpec>>
parsePodTemplate(const std::string &text, std::string *error)
{
    error->clear();
    Dataflow dataflow = Dataflow::kOuterProduct;
    bool ppu = true;
    bool ppu_set = false;
    int chips = 1;
    int count = 1;
    double ici_gbs = 0.0;
    long long link_lat = -1;

    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) {
            *error = "expected key=value, got '" + item + "'";
            return std::nullopt;
        }
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        if (key == "df" || key == "dataflow") {
            if (value == "WS")
                dataflow = Dataflow::kWeightStationary;
            else if (value == "OS")
                dataflow = Dataflow::kOutputStationary;
            else if (value == "DiVa")
                dataflow = Dataflow::kOuterProduct;
            else {
                *error = "df takes WS, OS, or DiVa; got '" + value + "'";
                return std::nullopt;
            }
        } else if (key == "ppu") {
            if (value == "on")
                ppu = true;
            else if (value == "off")
                ppu = false;
            else {
                *error = "ppu takes on/off, got '" + value + "'";
                return std::nullopt;
            }
            ppu_set = true;
        } else if (key == "chips") {
            const auto n = parseBoundedIntText(value, 1, 65536);
            if (!n) {
                *error = "chips must be in [1, 65536], got '" + value +
                         "'";
                return std::nullopt;
            }
            chips = int(*n);
        } else if (key == "count") {
            const auto n = parseBoundedIntText(value, 1, 65536);
            if (!n) {
                *error = "count must be in [1, 65536], got '" + value +
                         "'";
                return std::nullopt;
            }
            count = int(*n);
        } else if (key == "ici-gbs") {
            const auto d = parseDoubleText(value);
            if (!d || !(*d > 0.0)) {
                *error = "ici-gbs must be > 0, got '" + value + "'";
                return std::nullopt;
            }
            ici_gbs = *d;
        } else if (key == "link-lat") {
            const auto n = parseBoundedIntText(value, 0, 1000000);
            if (!n) {
                *error = "link-lat must be in [0, 1e6] cycles, got '" +
                         value + "'";
                return std::nullopt;
            }
            link_lat = *n;
        } else {
            *error = "unknown key '" + key +
                     "' (want df, ppu, chips, count, ici-gbs, or "
                     "link-lat)";
            return std::nullopt;
        }
    }

    PodSpec proto;
    switch (dataflow) {
      case Dataflow::kWeightStationary:
        // WS has no PPU datapath; an explicit ppu=on is a spec error
        // rather than a silent downgrade.
        if (ppu_set && ppu) {
            *error = "df=WS has no PPU datapath (use ppu=off)";
            return std::nullopt;
        }
        proto.config = tpuV3Ws();
        break;
      case Dataflow::kOutputStationary:
        proto.config = systolicOs(ppu);
        break;
      case Dataflow::kOuterProduct:
        proto.config = divaDefault(ppu);
        break;
    }
    proto.chips = chips;
    proto.pod.numChips = chips;
    if (ici_gbs > 0.0)
        proto.pod.interconnectGBs = ici_gbs;
    if (link_lat >= 0)
        proto.pod.linkLatencyCycles = Cycles(link_lat);
    return std::vector<PodSpec>(std::size_t(count), proto);
}

FleetSpec
buildFleet(const std::vector<std::vector<PodSpec>> &groups)
{
    FleetSpec fleet;
    for (const std::vector<PodSpec> &group : groups)
        fleet.pods.insert(fleet.pods.end(), group.begin(), group.end());
    for (std::size_t i = 0; i < fleet.pods.size(); ++i) {
        std::ostringstream oss;
        oss << "p" << i;
        fleet.pods[i].name = oss.str();
    }
    {
        std::ostringstream oss;
        oss << "fleet-" << fleet.pods.size();
        fleet.name = oss.str();
    }
    return fleet;
}

std::vector<PodSpec>
defaultPodGroup(int n)
{
    if (n < 0)
        n = 0;
    PodSpec proto;
    proto.config = divaDefault(true);
    proto.chips = 1;
    proto.pod.numChips = 1;
    return std::vector<PodSpec>(std::size_t(n), proto);
}

} // namespace diva
