#include "fleet/energy_budget.h"

#include <algorithm>
#include <cmath>

namespace diva
{

namespace
{

constexpr double kEps = 1e-9;

} // namespace

double
effectivePowerCapW(double powerCapW, double totalJ, double spentJ,
                   double intervalSec)
{
    double cap = powerCapW > 0.0 ? powerCapW : -1.0;
    if (totalJ > 0.0 && intervalSec > 0.0 &&
        std::isfinite(intervalSec)) {
        const double remaining = std::max(0.0, totalJ - spentJ);
        const double budget_cap = remaining / intervalSec;
        cap = cap < 0.0 ? budget_cap : std::min(cap, budget_cap);
    }
    return cap;
}

std::vector<std::size_t>
chooseSuspensions(const std::vector<TenantPowerView> &tenants,
                  double capW)
{
    std::vector<std::size_t> suspended;
    if (capW < 0.0)
        return suspended;

    // Keep-order: highest priority first, then earliest arrival, then
    // lowest index -- the mirror of the admission controller's shed
    // order.
    std::vector<std::size_t> order(tenants.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         if (tenants[a].priority != tenants[b].priority)
                             return tenants[a].priority >
                                    tenants[b].priority;
                         if (tenants[a].arrivalSec !=
                             tenants[b].arrivalSec)
                             return tenants[a].arrivalSec <
                                    tenants[b].arrivalSec;
                         return a < b;
                     });

    double kept = 0.0;
    for (std::size_t i : order) {
        const double w = tenants[i].watts;
        if (!(w > 0.0) || !std::isfinite(w))
            continue; // unmetered: always kept
        if (kept + w <= capW + kEps)
            kept += w;
        else
            suspended.push_back(i);
    }
    std::sort(suspended.begin(), suspended.end());
    return suspended;
}

} // namespace diva
