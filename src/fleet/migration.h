/**
 * @file
 * Tenant-migration cost model: moving a tenant between pods drains its
 * SRAM-resident working set to DRAM on the source (every source chip
 * in parallel, as in the context-switch model), ships that state over
 * the inter-pod interconnect, and refills the destination's SRAM from
 * DRAM -- three dependent phases billed in cycles, seconds, joules and
 * bytes through the same DramModel/EnergyModel constants the
 * context-switch model uses. The partial-SRAM working-set fraction
 * scales every phase: a tenant with a small live working set is cheap
 * to move.
 */

#ifndef DIVA_FLEET_MIGRATION_H
#define DIVA_FLEET_MIGRATION_H

#include "common/types.h"
#include "fleet/fleet.h"

namespace diva
{

/** The full bill of moving one tenant between two pods. */
struct MigrationCost
{
    /** Engine stall cycles (source drain + destination refill). */
    Cycles cycles = 0;

    /**
     * End-to-end seconds the tenant is off the air: drain, interconnect
     * transfer, refill -- sequential, none can overlap its successor.
     */
    double seconds = 0.0;

    /** Joules: DRAM/SRAM movement on both ends + engine idle power. */
    double energyJ = 0.0;

    /** Off-chip bytes moved (source flush + destination refill). */
    Bytes dramBytes = 0;
};

/**
 * Price a migration from `src` to `dst`. `workingSetFraction` in
 * (0, 1] is the share of the source SRAM that is live tenant state;
 * out-of-range values clamp to whole-SRAM. The interconnect leg runs
 * at the slower of the two pods' link bandwidths.
 */
MigrationCost migrationCost(const PodSpec &src, const PodSpec &dst,
                            double workingSetFraction = 1.0);

} // namespace diva

#endif // DIVA_FLEET_MIGRATION_H
