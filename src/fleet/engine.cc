#include "fleet/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <queue>
#include <sstream>
#include <unordered_map>

#include "arrivals/admission.h"
#include "backend/registry.h"
#include "common/task_pool.h"
#include "fleet/energy_budget.h"
#include "fleet/migration.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "tenant/context_switch.h"
#include "tenant/serve.h"

namespace diva
{

namespace
{

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/** Float slack for wall-budget and deadline comparisons. */
constexpr double kEps = 1e-9;

using serve_core::TaskState;

/** FNV-1a over the fields that identify a job class.  Buckets only --
 *  candidates are confirmed field-by-field, so a collision costs one
 *  extra compare, never a wrong class. */
std::uint64_t
jobClassHash(const TenantJob &job)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
    };
    for (const unsigned char c : job.model)
        mix(c);
    mix(std::uint64_t(job.modelScale));
    mix(std::uint64_t(job.batch));
    mix(std::uint64_t(job.microbatch));
    mix(std::uint64_t(job.algorithm));
    return h;
}

bool
sameJobClass(const TenantJob &a, const TenantJob &b)
{
    return a.modelScale == b.modelScale && a.batch == b.batch &&
           a.microbatch == b.microbatch &&
           a.algorithm == b.algorithm && a.model == b.model;
}

serve_core::Policy
corePolicy(SchedPolicy p)
{
    switch (p) {
      case SchedPolicy::kFifo: return serve_core::Policy::kFifo;
      case SchedPolicy::kRoundRobin:
        return serve_core::Policy::kRoundRobin;
      case SchedPolicy::kPriority:
        return serve_core::Policy::kPriority;
      case SchedPolicy::kEdf: return serve_core::Policy::kEdf;
    }
    return serve_core::Policy::kRoundRobin;
}

/** Mutable per-tenant state tracked by the fleet engine. */
struct TenantRt
{
    // Cached job scalars (hot path avoids chasing the TenantJob).
    double arrival = 0.0;
    double depart = 0.0;
    double rate = 0.0; // qosStepsPerSec; > 0 gates steps open-loop
    double qosDeadline = 0.0;
    std::uint64_t steps = 0;
    int priority = 0;
    std::uint32_t cls = 0;

    std::size_t pod = kNoPod;
    bool admitted = true;

    /** Scheduling state (queue membership, generation, step counts),
     *  owned by the shared event core. */
    serve_core::TaskCore core;

    /** Earliest restart after a migration's state transfer. */
    double gateUntil = 0.0;

    double energyJ = 0.0;
    std::uint32_t switchesIn = 0;
    std::uint32_t migrations = 0;
    std::uint32_t suspensions = 0;
    double migSec = 0.0;
    double migEnergyJ = 0.0;

    /** Busy seconds this control epoch (rebalance's migration metric). */
    double epochBusySec = 0.0;
    std::uint64_t busyStamp = ~std::uint64_t(0);

    /** Start of this tenant's slice in FleetSim::latArena (valid when
     *  steps > 0; step k's latency lands in slot latOff + k - 1). */
    std::size_t latOff = 0;

    /** Index into FleetSim::prioValues (telemetry runs only). */
    std::uint32_t prioSlot = 0;

    /** Overflow store for unbounded sessions (steps == 0), whose
     *  sample count has no a-priori cap. */
    std::vector<double> latencySec;
};

/** One pod's per-window telemetry accumulator: event counts, busy
 *  seconds and joules landed in the window, plus the queue-depth /
 *  gated-count gauges sampled at the window's first billable event. */
struct PodObsRow
{
    std::int64_t w = 0;
    std::uint64_t steps = 0;
    std::uint64_t switches = 0;
    double busySec = 0.0;
    double energyJ = 0.0;
    double queueDepth = 0.0;
    double gated = 0.0;
};

/** Mutable per-pod state; epochs touch only their own pod's. */
struct PodRt
{
    std::uint32_t type = 0;

    /** The pod's serving executor (clock, ready set, arrival cursor,
     *  gated heap), owned by the shared event core; `core.id` is the
     *  pod index. */
    serve_core::Executor core;

    /** Every tenant ever assigned here (lazily compacted). */
    std::vector<std::uint32_t> members;

    // Run accumulators.
    std::size_t placed = 0;
    std::size_t migIn = 0;
    std::size_t migOut = 0;
    std::uint64_t steps = 0;
    std::uint64_t switches = 0;
    double busySec = 0.0;
    double energyJ = 0.0;
    double switchSec = 0.0;
    double switchEnergyJ = 0.0;
    double migSec = 0.0;
    double migEnergyJ = 0.0;
    Bytes migBytes = 0;
    double lastActiveSec = 0.0;

    // Per-epoch scratch.
    double epochBusySec = 0.0;
    std::uint64_t epochSteps = 0;
    std::size_t finishedThisEpoch = 0;

    std::vector<double> latencySec;

    // Windowed telemetry (telemetry runs only). All pod-owned:
    // written by whichever worker runs this pod's epoch -- the pod
    // clock is monotone, so obsRows flush in increasing window order
    // -- and merged sequentially in pod-index order at assemble.
    bool obsOpen = false;
    PodObsRow obsCur;
    /** Upper edge of the open window. Events roll the row with one FP
     *  compare against this instead of recomputing their window index
     *  (windowUpperEdge makes the compare bitwise-equivalent to the
     *  floor). +inf when telemetry is off, so the hot-path compare
     *  never fires; telemetry setup drops it to -inf to force the
     *  first roll. */
    double obsEdgeSec = kInf;
    std::vector<PodObsRow> obsRows;
    /** Cumulative-counter snapshots taken when the open row rolled;
     *  the row's counters are the deltas since then, so the step/
     *  switch hot paths never touch the row itself. */
    std::uint64_t obsBaseSteps = 0;
    std::uint64_t obsBaseSwitches = 0;
    double obsBaseBusySec = 0.0;
    double obsBaseEnergyJ = 0.0;
    std::vector<obs::ComponentWindows> latWindows; // one per prioSlot
    std::uint64_t decompFailures = 0;
};

/** Run the callable over [0, count) pod indices on up to `threads`
 *  persistent pool lanes (trivial runs execute inline -- see
 *  TaskPool::parallelFor).  Each index touches disjoint state, so any
 *  schedule is race-free and the simulation output does not depend on
 *  the thread count. */
template <typename Fn>
void
forEachPod(std::size_t count, int threads, Fn fn)
{
    TaskPool::shared().parallelFor(count, threads, fn);
}

/** The whole simulation state, shared by the engine's phases. */
struct FleetSim
{
    const FleetSpec &spec;
    const ArrivalTrace &trace;
    FleetResult &out;

    std::size_t n = 0;
    double wall = 0.0;

    // Pod types (deduped design points) and tenant classes (deduped
    // workloads); costs[type * numCls + cls] prices one iteration.
    std::vector<std::uint32_t> podType;
    std::vector<PodSpec> types;
    std::vector<std::uint32_t> jobCls;
    std::size_t numCls = 0;
    std::vector<IterationCost> costs;
    std::vector<SwitchCost> switchCosts;         // per type
    std::vector<MigrationCost> migCosts;         // type x type
    std::vector<double> isoRate;                 // per (type, cls)

    std::vector<TenantRt> tenants;
    std::vector<PodRt> pods;

    /** Per-tenant step-latency slices, packed by arrival order (slice
     *  i starts at tenants[i].latOff, one slot per budgeted step).
     *  Direct indexed stores -- pods write disjoint tenants' slices --
     *  replace 200k per-tenant realloc chains on the hot path. */
    std::vector<double> latArena;

    // Placement projection (sequential, arrival-ordered).
    std::vector<PodLoadView> loadViews;

    /**
     * Projected session end, across all pods in one min-heap ordered
     * (end, pod, demand).  Per pod that is exactly the (end, demand)
     * pair order of the per-pod heaps this replaces -- the demand
     * subtractions replay in the same sequence, so every projected
     * load float is bit-identical -- but retiring expired demand costs
     * one heap peek per arrival instead of a scan over every pod.
     */
    struct ExpiryEntry
    {
        double endSec = 0.0;
        std::uint32_t pod = 0;
        double demand = 0.0;

        bool operator>(const ExpiryEntry &o) const
        {
            if (endSec != o.endSec)
                return endSec > o.endSec;
            if (pod != o.pod)
                return pod > o.pod;
            return demand > o.demand;
        }
    };
    std::priority_queue<ExpiryEntry, std::vector<ExpiryEntry>,
                        std::greater<ExpiryEntry>>
        expiry;
    std::size_t placeCursor = 0;

    // Placement scratch, hoisted out of the per-arrival hot path.
    std::vector<double> typeDemand;
    std::vector<double> typeEnergy;
    std::vector<double> demandOnPod;
    std::vector<double> energyOnPod;

    // Control-round scratch, reused across epochs (capacity persists).
    std::vector<TenantPowerView> powerViews;
    std::vector<std::uint32_t> powerActive;
    std::vector<double> utilScratch;

    std::size_t unfinished = 0;
    std::uint64_t epochId = 0;

    /** Mode flags for the shared event core (fleet semantics). */
    serve_core::Config coreCfg;

    /**
     * Optional sim-time trace. The control track (tid 0) is written
     * only from sequential boundary code; podTracks[p] (tid p+1) only
     * from whichever worker owns pod p's epoch -- single-writer per
     * track, as obs/trace.h requires.
     */
    obs::TraceSink *sink = nullptr;
    obs::TraceTrack *control = nullptr;
    std::vector<obs::TraceTrack *> podTracks;

    /**
     * Optional windowed telemetry. Hot-path hooks accumulate into the
     * executing pod's own state (PodRt) only; the cluster maps below
     * are written solely from sequential boundary code (placement,
     * budget, rebalance), and everything merges into the bundle at
     * the sequential assemble publish point.
     */
    obs::RunTelemetry *telemetry = nullptr;
    std::vector<int> prioValues; ///< distinct priorities, ascending
    std::map<std::int64_t, double> wPlaced, wRejected, wMigrations,
        wSuspensions, wResumes;

    /** Close the open row, filling its counters from the pod's
     *  cumulative accumulators (delta since the row opened), and
     *  rebase the snapshots. Steps and switches bill themselves to
     *  the open window by bumping only the run-level counters;
     *  control-plane contributions (a migration transfer's busy and
     *  energy seconds) fold into whichever window is open -- or next
     *  opens -- on the destination pod when they land. */
    void
    flushObsRow(PodRt &pod)
    {
        if (pod.obsOpen) {
            pod.obsCur.steps = pod.steps - pod.obsBaseSteps;
            pod.obsCur.switches =
                pod.switches - pod.obsBaseSwitches;
            pod.obsCur.busySec = pod.busySec - pod.obsBaseBusySec;
            pod.obsCur.energyJ = pod.energyJ - pod.obsBaseEnergyJ;
            pod.obsRows.push_back(pod.obsCur);
            pod.obsOpen = false;
        }
        pod.obsBaseSteps = pod.steps;
        pod.obsBaseSwitches = pod.switches;
        pod.obsBaseBusySec = pod.busySec;
        pod.obsBaseEnergyJ = pod.energyJ;
    }

    /** Open the window holding the pod clock. Callers check the edge
     *  BEFORE the event's accumulators land, so the cumulative-delta
     *  row attributes the triggering event to its own window. */
    void
    rollObsRow(PodRt &pod, const serve_core::Executor &ex)
    {
        flushObsRow(pod);
        const std::int64_t w =
            obs::windowIndexOf(ex.nowSec, telemetry->invWindowSec);
        pod.obsCur = PodObsRow{};
        pod.obsCur.w = w;
        pod.obsCur.queueDepth = double(ex.ready.size());
        pod.obsCur.gated = double(ex.gated.size());
        pod.obsOpen = true;
        pod.obsEdgeSec = obs::windowUpperEdge(
            w, telemetry->windowSec, telemetry->invWindowSec);
    }

    void
    bumpCluster(std::map<std::int64_t, double> &series, double tSec)
    {
        if (telemetry)
            ++series[obs::windowIndexOf(tSec,
                                        telemetry->invWindowSec)];
    }

    FleetSim(const FleetSpec &s, const ArrivalTrace &t, FleetResult &o)
        : spec(s), trace(t), out(o)
    {
    }

    const IterationCost &costOf(std::uint32_t type,
                                std::uint32_t cls) const
    {
        return costs[std::size_t(type) * numCls + cls];
    }

    // serve_core client interface (see serve_core::runUntil). FleetSim
    // is the client for every pod's executor; epochs run pods in
    // parallel, so these must only touch the executor's own pod state
    // and the tenants it owns. `owns` reads rt.pod, which is written
    // only at sequential epoch boundaries and is therefore race-free
    // even while another pod's epoch mutates the tenant's gen/state.
    bool owns(const serve_core::Executor &ex, std::uint32_t idx) const
    {
        return tenants[idx].pod == ex.id;
    }
    double arrivalSec(std::uint32_t i) const
    {
        return tenants[i].arrival;
    }
    double departSec(std::uint32_t i) const
    {
        return tenants[i].depart;
    }
    double rateSps(std::uint32_t i) const { return tenants[i].rate; }
    double qosDeadlineSec(std::uint32_t i) const
    {
        return tenants[i].qosDeadline;
    }
    std::uint64_t stepLimit(std::uint32_t i) const
    {
        return tenants[i].steps;
    }
    int priority(std::uint32_t i) const
    {
        return tenants[i].priority;
    }
    double stepSeconds(const serve_core::Executor &ex,
                       std::uint32_t i) const
    {
        return costOf(pods[ex.id].type, tenants[i].cls).seconds;
    }
    double switchSeconds(const serve_core::Executor &ex) const
    {
        return switchCosts[pods[ex.id].type].seconds;
    }
    serve_core::TaskCore &core(std::uint32_t i)
    {
        return tenants[i].core;
    }
    const serve_core::TaskCore &core(std::uint32_t i) const
    {
        return tenants[i].core;
    }
    void onSwitch(serve_core::Executor &ex, std::uint32_t i);
    void onStep(serve_core::Executor &ex, std::uint32_t i,
                double stepStartSec, double latencySec,
                double eligibleSec, double switchLeadSec);
    void onRetire(serve_core::Executor &ex, std::uint32_t i);

    /** Price every (pod type, tenant class) pair through the runner. */
    std::string price(SweepRunner &runner);

    void placeOne(std::size_t i);
    void runPodEpoch(std::size_t p, double t1);

    void suspendTenant(std::uint32_t idx);
    void resumeTenant(std::uint32_t idx);
    void enforceBudget(double nowSec, double intervalSec);
    std::size_t rebalanceRound(double nowSec, double widthSec);
    void migrate(std::uint32_t idx, std::size_t srcP, std::size_t dstP,
                 double nowSec);

    double globalNextEventSec();
    double totalEnergySoFar() const;

    void run(int threads);
    void assemble(int threads);
    void publishTelemetry();
};

std::string
FleetSim::price(SweepRunner &runner)
{
    // Dedupe pods into types. Design points come from named factory
    // configs, so the config name plus the pod shape identifies one.
    std::map<std::string, std::uint32_t> typeOf;
    podType.resize(spec.pods.size());
    for (std::size_t p = 0; p < spec.pods.size(); ++p) {
        const PodSpec &ps = spec.pods[p];
        std::ostringstream key;
        key << ps.config.name << '|' << ps.chips << '|'
            << ps.config.sramBytes << '|' << ps.pod.interconnectGBs
            << '|' << ps.pod.linkLatencyCycles;
        const auto [it, fresh] =
            typeOf.emplace(key.str(), std::uint32_t(types.size()));
        if (fresh)
            types.push_back(ps);
        podType[p] = it->second;
    }

    // Dedupe jobs into classes.  Class ids are assigned in first-
    // appearance order, and the hash only buckets candidates (equality
    // is confirmed on the fields), so the numbering is identical to
    // the string-keyed dedup this replaces -- without rendering a key
    // string per session on a hot path that sees the whole trace.
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> clsOf;
    jobCls.resize(n);
    std::vector<const TenantJob *> clsRep;
    for (std::size_t i = 0; i < n; ++i) {
        const TenantJob &job = trace.jobs[i];
        std::vector<std::uint32_t> &bucket = clsOf[jobClassHash(job)];
        std::uint32_t cls = std::uint32_t(-1);
        for (const std::uint32_t c : bucket)
            if (sameJobClass(*clsRep[c], job)) {
                cls = c;
                break;
            }
        if (cls == std::uint32_t(-1)) {
            cls = std::uint32_t(clsRep.size());
            clsRep.push_back(&job);
            bucket.push_back(cls);
        }
        jobCls[i] = cls;
    }
    numCls = clsRep.size();

    // Validate the allowed-backend list the way the serve layer does:
    // every name must resolve, and every substrate the fleet's pods
    // actually need must be permitted.
    for (const std::string &name : spec.backends)
        if (!BackendRegistry::instance().find(name))
            return "unknown backend '" + name + "'";
    if (!spec.backends.empty()) {
        for (const PodSpec &ps : spec.pods) {
            const std::string needed = ps.backendName();
            if (std::find(spec.backends.begin(), spec.backends.end(),
                          needed) == spec.backends.end())
                return "backend '" + needed +
                       "' is not in the allowed --backends list";
        }
    }

    // One scenario per (type, class), all through one run() so the
    // runner's thread pool and caches do the heavy lifting.
    std::vector<Scenario> scenarios;
    scenarios.reserve(types.size() * numCls);
    for (const PodSpec &type : types)
        for (const TenantJob *job : clsRep) {
            Scenario s;
            s.config = type.config;
            s.model = job->model;
            s.modelScale = job->modelScale;
            s.batch = job->batch;
            s.microbatch = job->microbatch;
            s.algorithm = job->algorithm;
            if (type.chips > 1) {
                s.backend = SweepBackend::kMultiChip;
                s.pod = type.pod;
                s.pod.numChips = type.chips;
            }
            scenarios.push_back(std::move(s));
        }
    const SweepReport report = runner.run(scenarios);
    out.planHits = report.planHits;
    out.planMisses = report.planMisses;

    costs.resize(report.results.size());
    isoRate.resize(report.results.size());
    for (std::size_t k = 0; k < report.results.size(); ++k) {
        const ScenarioResult &r = report.results[k];
        const PodSpec &type = types[k / numCls];
        const TenantJob *job = clsRep[k % numCls];
        std::ostringstream where;
        where << "pod type '" << type.config.name << " x" << type.chips
              << "' class '" << job->model << "'";
        if (!r.ok())
            return where.str() + ": " + r.error;
        if (!(r.seconds > 0.0) || !std::isfinite(r.seconds) ||
            !(r.energyJ >= 0.0) || !std::isfinite(r.energyJ))
            return where.str() +
                   ": iteration cost must be positive and finite";
        IterationCost c;
        c.seconds = r.seconds;
        c.energyJ = r.energyJ;
        c.dramBytes = r.dramBytes;
        c.cycles = r.cycles;
        c.resolvedBatch = r.resolvedBatch;
        costs[k] = c;
        isoRate[k] = 1.0 / c.seconds;
    }

    switchCosts.reserve(types.size());
    for (const PodSpec &type : types)
        switchCosts.push_back(
            ContextSwitchModel(type.config, type.chips,
                               spec.workingSetFraction)
                .cost());
    migCosts.resize(types.size() * types.size());
    for (std::size_t s = 0; s < types.size(); ++s)
        for (std::size_t d = 0; d < types.size(); ++d)
            migCosts[s * types.size() + d] = migrationCost(
                types[s], types[d], spec.workingSetFraction);
    return "";
}

void
FleetSim::placeOne(std::size_t i)
{
    const TenantJob &job = trace.jobs[i];
    TenantRt &rt = tenants[i];
    const double a = rt.arrival;

    // Retire projected demand whose sessions have ended by now.
    while (!expiry.empty() && expiry.top().endSec <= a + kEps) {
        const ExpiryEntry &e = expiry.top();
        loadViews[e.pod].demand =
            std::max(0.0, loadViews[e.pod].demand - e.demand);
        if (loadViews[e.pod].sessions > 0)
            --loadViews[e.pod].sessions;
        expiry.pop();
    }

    // Price the arrival's demand and joules/step once per pod type.
    typeDemand.resize(types.size());
    typeEnergy.resize(types.size());
    for (std::size_t t = 0; t < types.size(); ++t) {
        const IterationCost &c =
            costOf(std::uint32_t(t), rt.cls);
        typeDemand[t] = qosUtilizationDemand(job, c);
        typeEnergy[t] = c.energyJ;
    }
    demandOnPod.resize(pods.size());
    energyOnPod.resize(pods.size());
    for (std::size_t p = 0; p < pods.size(); ++p) {
        demandOnPod[p] = typeDemand[podType[p]];
        energyOnPod[p] = typeEnergy[podType[p]];
    }

    const std::size_t chosen =
        choosePod(spec.placement, loadViews, demandOnPod, energyOnPod,
                  spec.podDemandCap);
    if (chosen == kNoPod) {
        rt.admitted = false;
        rt.core.state = TaskState::kDone;
        ++out.rejectedCount;
        --unfinished;
        bumpCluster(wRejected, a);
        if (control)
            control->instant(a, "reject " + job.name, "admission");
        return;
    }

    rt.pod = chosen;
    PodRt &pod = pods[chosen];
    ++pod.placed;
    pod.core.arrivals.push_back(std::uint32_t(i));
    pod.members.push_back(std::uint32_t(i));
    bumpCluster(wPlaced, a);
    if (control)
        control->instant(a,
                         "place " + job.name + " -> " +
                             spec.pods[chosen].name,
                         "placement");

    const double d = demandOnPod[chosen];
    loadViews[chosen].demand += d;
    ++loadViews[chosen].sessions;
    const double step_sec = costOf(pod.type, rt.cls).seconds;
    double end = kInf;
    if (rt.depart > 0.0)
        end = rt.depart;
    else if (rt.steps > 0 && rt.rate > 0.0)
        end = a + double(rt.steps) / rt.rate;
    else if (rt.steps > 0)
        end = a + double(rt.steps) * step_sec;
    if (std::isfinite(end))
        expiry.push({end, std::uint32_t(chosen), d});
}

void
FleetSim::onSwitch(serve_core::Executor &ex, std::uint32_t i)
{
    // Bill the tenant change (the core already advanced the clock by
    // the stall): the engine idles while the outgoing working set
    // flushes and the incoming one loads.
    PodRt &pod = pods[ex.id];
    TenantRt &rt = tenants[i];
    const SwitchCost &sw = switchCosts[pod.type];
    if (ex.nowSec >= pod.obsEdgeSec)
        rollObsRow(pod, ex);
    ++pod.switches;
    ++rt.switchesIn;
    pod.switchSec += sw.seconds;
    pod.switchEnergyJ += sw.energyJ;
    pod.busySec += sw.seconds;
    pod.epochBusySec += sw.seconds;
    pod.energyJ += sw.energyJ;
    rt.energyJ += sw.energyJ;
    pod.lastActiveSec = ex.nowSec;
    if (sink)
        podTracks[ex.id]->instant(
            ex.nowSec, "switch -> " + trace.jobs[i].name, "switch");
}

void
FleetSim::onStep(serve_core::Executor &ex, std::uint32_t i,
                 double stepStartSec, double latencySec,
                 double eligibleSec, double switchLeadSec)
{
    PodRt &pod = pods[ex.id];
    TenantRt &rt = tenants[i];
    const IterationCost &cost = costOf(pod.type, rt.cls);
    if (ex.nowSec >= pod.obsEdgeSec)
        rollObsRow(pod, ex);
    pod.busySec += cost.seconds;
    pod.epochBusySec += cost.seconds;
    pod.energyJ += cost.energyJ;
    rt.energyJ += cost.energyJ;
    if (rt.busyStamp != epochId) {
        rt.busyStamp = epochId;
        rt.epochBusySec = 0.0;
    }
    rt.epochBusySec += cost.seconds;
    ++pod.steps;
    ++pod.epochSteps;
    // Step tc.done just ran (the core bumps `done` before this hook),
    // so bounded sessions store straight into their arena slice.
    if (rt.steps > 0)
        latArena[rt.latOff + rt.core.done - 1] = latencySec;
    else
        rt.latencySec.push_back(latencySec);
    pod.latencySec.push_back(latencySec);
    pod.lastActiveSec = ex.nowSec;
    if (telemetry) {
        // Stall overlaps: the switch billed immediately ahead of this
        // step, and the part of the wait spent in this tenant's
        // migration state transfer. Most steps have neither, so the
        // overlap arithmetic stays off the common path.
        // decompSteps is derived at publish (it equals the recorded
        // window steps), so the hot path only tracks failures -- a
        // never-taken branch when the invariant holds. The stall-free
        // residual check q + s == T IS the fixed-order reconstruction
        // (the zero components add nothing), so the common case needs
        // no LatencyComponents round trip at all.
        const double q = latencySec - cost.seconds;
        if (switchLeadSec == 0.0 && rt.gateUntil <= eligibleSec &&
            q + cost.seconds == latencySec) {
            pod.latWindows[rt.prioSlot].recordAtFast(
                pod.obsCur.w, latencySec, q, cost.seconds);
        } else {
            const double wait =
                std::max(0.0, stepStartSec - eligibleSec);
            const double sw_ov = std::min(switchLeadSec, wait);
            const double mig_ov = std::clamp(
                rt.gateUntil - eligibleSec, 0.0, wait - sw_ov);
            obs::LatencyComponents comp;
            if (!obs::decomposeLatencyAudited(latencySec,
                                              cost.seconds, sw_ov,
                                              mig_ov, &comp))
                ++pod.decompFailures;
            pod.latWindows[rt.prioSlot].recordAt(pod.obsCur.w,
                                                 latencySec, comp);
        }
    }
    if (sink)
        podTracks[ex.id]->span(stepStartSec,
                               stepStartSec + cost.seconds,
                               trace.jobs[i].name, "step");
}

void
FleetSim::onRetire(serve_core::Executor &ex, std::uint32_t)
{
    ++pods[ex.id].finishedThisEpoch;
}

void
FleetSim::runPodEpoch(std::size_t p, double t1)
{
    PodRt &pod = pods[p];
    pod.epochBusySec = 0.0;
    pod.epochSteps = 0;
    pod.finishedThisEpoch = 0;
    serve_core::runUntil(*this, pod.core, coreCfg, t1);
}

void
FleetSim::suspendTenant(std::uint32_t idx)
{
    TenantRt &rt = tenants[idx];
    serve_core::unschedule(*this, pods[rt.pod].core, idx);
    rt.core.state = TaskState::kSuspended;
}

void
FleetSim::resumeTenant(std::uint32_t idx)
{
    TenantRt &rt = tenants[idx];
    const double due =
        rt.rate > 0.0 ? rt.arrival + double(rt.core.done) / rt.rate
                      : rt.arrival;
    serve_core::gate(*this, pods[rt.pod].core, idx,
                     std::max(due, rt.gateUntil));
}

void
FleetSim::enforceBudget(double nowSec, double intervalSec)
{
    const double capW =
        effectivePowerCapW(spec.budget.powerCapW, spec.budget.totalJ,
                           totalEnergySoFar(), intervalSec);
    if (capW < 0.0) {
        for (std::size_t i = 0; i < n; ++i)
            if (tenants[i].core.state == TaskState::kSuspended)
                resumeTenant(std::uint32_t(i));
        return;
    }

    std::vector<TenantPowerView> &views = powerViews;
    std::vector<std::uint32_t> &active = powerActive;
    views.clear();
    active.clear();
    for (std::size_t i = 0; i < n; ++i) {
        const TenantRt &rt = tenants[i];
        if (!rt.admitted || rt.core.state == TaskState::kDone ||
            rt.arrival > nowSec + kEps)
            continue;
        const IterationCost &c = costOf(pods[rt.pod].type, rt.cls);
        const double iso = 1.0 / c.seconds;
        const double sustained =
            rt.rate > 0.0 ? std::min(rt.rate, iso) : iso;
        TenantPowerView v;
        v.watts = sustained * c.energyJ;
        v.priority = rt.priority;
        v.arrivalSec = rt.arrival;
        views.push_back(v);
        active.push_back(std::uint32_t(i));
    }

    const std::vector<std::size_t> suspend =
        chooseSuspensions(views, capW);
    std::size_t s = 0;
    for (std::size_t k = 0; k < active.size(); ++k) {
        const bool want = s < suspend.size() && suspend[s] == k;
        if (want)
            ++s;
        TenantRt &rt = tenants[active[k]];
        if (want) {
            ++rt.suspensions;
            ++out.suspensions;
            bumpCluster(wSuspensions, nowSec);
            if (rt.core.state != TaskState::kSuspended)
                suspendTenant(active[k]);
            if (control)
                control->instant(nowSec,
                                 "suspend " + trace.jobs[active[k]].name,
                                 "budget");
        } else if (rt.core.state == TaskState::kSuspended) {
            resumeTenant(active[k]);
            bumpCluster(wResumes, nowSec);
            if (control)
                control->instant(nowSec,
                                 "resume " + trace.jobs[active[k]].name,
                                 "budget");
        }
    }
}

void
FleetSim::migrate(std::uint32_t idx, std::size_t srcP,
                  std::size_t dstP, double nowSec)
{
    TenantRt &rt = tenants[idx];
    PodRt &src = pods[srcP];
    PodRt &dst = pods[dstP];

    serve_core::unschedule(*this, src.core, idx);
    if (src.core.last == idx)
        src.core.last = serve_core::kNoTask;

    const MigrationCost &mc =
        migCosts[std::size_t(src.type) * types.size() + dst.type];
    rt.pod = dstP;
    ++rt.migrations;
    rt.migSec += mc.seconds;
    rt.migEnergyJ += mc.energyJ;
    rt.energyJ += mc.energyJ;

    ++src.migOut;
    ++dst.migIn;
    dst.migSec += mc.seconds;
    dst.migEnergyJ += mc.energyJ;
    dst.migBytes += mc.dramBytes;
    dst.energyJ += mc.energyJ;
    dst.busySec += mc.seconds;
    // The transfer occupies [nowSec, nowSec + mc.seconds]; extend the
    // pod's active span so utilization = busySec / makespan stays <= 1
    // when a migration lands after the pod's last step.
    dst.lastActiveSec =
        std::max(dst.lastActiveSec, nowSec + mc.seconds);
    dst.members.push_back(idx);
    ++out.migrations;
    out.migrationSec += mc.seconds;
    out.migrationEnergyJ += mc.energyJ;
    out.migrationBytes += mc.dramBytes;
    bumpCluster(wMigrations, nowSec);
    // An instant, not a span: the transfer window [nowSec, +seconds)
    // may straddle the next epoch boundary, and overlapping spans on
    // one track would break the control track's clean nesting.
    if (control)
        control->instant(nowSec,
                         "migrate " + trace.jobs[idx].name + ": " +
                             spec.pods[srcP].name + " -> " +
                             spec.pods[dstP].name,
                         "migration");

    // Off the air until the state transfer lands (and, open loop,
    // until its next step is due anyway).
    rt.gateUntil = nowSec + mc.seconds;
    const double due =
        rt.rate > 0.0 ? rt.arrival + double(rt.core.done) / rt.rate
                      : rt.arrival;
    serve_core::gate(*this, dst.core, idx,
                     std::max(due, rt.gateUntil));
}

std::size_t
FleetSim::rebalanceRound(double nowSec, double widthSec)
{
    if (!(widthSec > 0.0) || !std::isfinite(widthSec))
        return 0;
    std::vector<double> &util = utilScratch;
    util.resize(pods.size());
    for (std::size_t p = 0; p < pods.size(); ++p)
        util[p] = pods[p].epochBusySec / widthSec;

    std::size_t moved = 0;
    while (int(moved) < spec.rebalance.maxPerRound) {
        std::size_t hot = 0, cold = 0;
        for (std::size_t p = 1; p < pods.size(); ++p) {
            if (util[p] > util[hot])
                hot = p;
            if (util[p] < util[cold])
                cold = p;
        }
        const double gap = util[hot] - util[cold];
        if (gap <= spec.rebalance.skewThreshold + kEps)
            break;

        // Move the hot pod's busiest movable tenant whose measured
        // share fits in half the gap (a bigger move would overshoot
        // and oscillate). Ties break on the lowest index.
        PodRt &src = pods[hot];
        std::size_t keep = 0;
        std::uint32_t best = std::uint32_t(-1);
        double best_busy = 0.0;
        const double fit = gap * 0.5 * widthSec;
        for (std::size_t m = 0; m < src.members.size(); ++m) {
            const std::uint32_t idx = src.members[m];
            const TenantRt &rt = tenants[idx];
            if (rt.pod != hot || rt.core.state == TaskState::kDone)
                continue; // stale entry: compact it away
            src.members[keep++] = idx;
            if (rt.core.state != TaskState::kReady &&
                rt.core.state != TaskState::kGated)
                continue;
            const double busy =
                rt.busyStamp == epochId ? rt.epochBusySec : 0.0;
            if (busy <= 0.0 || busy > fit + kEps)
                continue;
            if (busy > best_busy + kEps) {
                best = idx;
                best_busy = busy;
            }
        }
        src.members.resize(keep);
        if (best == std::uint32_t(-1))
            break;

        migrate(best, hot, cold, nowSec);
        ++moved;
        const double share = best_busy / widthSec;
        util[hot] -= share;
        util[cold] += share;
    }
    return moved;
}

double
FleetSim::globalNextEventSec()
{
    double ev = kInf;
    if (placeCursor < n)
        ev = trace.jobs[placeCursor].arrivalSec;
    for (PodRt &pod : pods) {
        if (!pod.core.ready.empty())
            ev = std::min(ev, pod.core.nowSec);
        ev = std::min(
            ev, serve_core::peekNextEvent(*this, pod.core, coreCfg)
                    .atSec);
    }
    return ev;
}

double
FleetSim::totalEnergySoFar() const
{
    double total = 0.0;
    for (const PodRt &pod : pods)
        total += pod.energyJ;
    return total;
}

void
FleetSim::run(int threads)
{
    n = trace.jobs.size();
    wall = spec.wallLimitSec;
    unfinished = n;

    tenants.resize(n);
    std::size_t lat_slots = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const TenantJob &job = trace.jobs[i];
        TenantRt &rt = tenants[i];
        rt.arrival = job.arrivalSec;
        rt.depart = job.departSec;
        rt.rate = job.qosStepsPerSec;
        rt.qosDeadline = job.qosDeadlineSec;
        rt.steps = job.steps;
        rt.priority = job.priority;
        rt.cls = jobCls[i];
        rt.core.lastCompletionSec = job.arrivalSec;
        rt.latOff = lat_slots;
        lat_slots += job.steps; // bounded sessions: one slot per step
    }
    latArena.resize(lat_slots);
    pods.resize(spec.pods.size());
    for (std::size_t p = 0; p < pods.size(); ++p) {
        pods[p].type = podType[p];
        pods[p].core.id = p;
    }
    loadViews.assign(pods.size(), PodLoadView{});

    if (telemetry) {
        // Window width from the input trace alone (last arrival), so
        // the same trace always yields the same windows.
        if (!(telemetry->invWindowSec > 0.0))
            telemetry->resolveWindow(
                n > 0 ? trace.jobs.back().arrivalSec : 0.0);
        prioValues.clear();
        for (const TenantRt &rt : tenants)
            prioValues.push_back(rt.priority);
        std::sort(prioValues.begin(), prioValues.end());
        prioValues.erase(
            std::unique(prioValues.begin(), prioValues.end()),
            prioValues.end());
        for (TenantRt &rt : tenants)
            rt.prioSlot = std::uint32_t(
                std::lower_bound(prioValues.begin(), prioValues.end(),
                                 rt.priority) -
                prioValues.begin());
        for (PodRt &pod : pods) {
            pod.obsEdgeSec = -kInf; // arm the hot-path edge compare
            pod.latWindows.resize(prioValues.size());
            for (std::size_t s = 0; s < prioValues.size(); ++s)
                pod.latWindows[s].configure(
                    telemetry->invWindowSec,
                    telemetry->slo.targetFor(prioValues[s]),
                    telemetry->slo.globalTargetSec);
        }
    }

    if (sink) {
        // Tracks are created here, sequentially, before any parallel
        // epoch touches them; each pod's worker then appends to its
        // own track only.
        control = sink->track(0, "cluster");
        podTracks.resize(pods.size());
        for (std::size_t p = 0; p < pods.size(); ++p)
            podTracks[p] =
                sink->track(int(p) + 1, "pod " + spec.pods[p].name);
    }

    // Fleet semantics on the shared core: enqueue-order round robin,
    // rate gating always on, raw arrival preemption, epoch-form
    // boundary comparisons (every tenant-mode flag stays off).
    coreCfg.policy = corePolicy(spec.policy);
    coreCfg.quantumIters = spec.quantumIters;
    coreCfg.wallLimitSec = wall;

    const bool controls =
        spec.rebalance.enabled || spec.budget.enabled();
    double interval = kInf;
    if (spec.controlIntervalSec > 0.0) {
        interval = spec.controlIntervalSec;
    } else if (controls) {
        const double span = trace.jobs.back().arrivalSec;
        interval = span > 0.0 ? span / 8.0 : 1.0;
    }

    double T = 0.0;
    for (;;) {
        if (unfinished == 0 && placeCursor >= n)
            break;

        double t1 = T + interval;
        if (std::isfinite(t1) && placeCursor >= n) {
            // Fast-forward empty epochs: when every next event is past
            // the boundary, push the boundary to just beyond it so a
            // sparse tail doesn't grind through thousands of idle
            // control rounds.
            const double ev = globalNextEventSec();
            if (std::isfinite(ev) && ev > t1)
                t1 = ev + interval;
        }
        if (wall > 0.0)
            t1 = std::min(t1, wall);

        const std::size_t placedBefore = placeCursor;
        {
            obs::ScopedPhase phase("placement");
            while (placeCursor < n &&
                   (!std::isfinite(t1) ||
                    trace.jobs[placeCursor].arrivalSec < t1))
                placeOne(placeCursor++);
        }

        {
            obs::ScopedPhase phase("epoch_serve");
            forEachPod(pods.size(), threads,
                       [&](std::size_t p) { runPodEpoch(p, t1); });
        }

        std::uint64_t epochSteps = 0;
        for (PodRt &pod : pods) {
            unfinished -= pod.finishedThisEpoch;
            epochSteps += pod.epochSteps;
        }

        if (!std::isfinite(t1))
            break; // one uninterrupted epoch ran everything
        const double width = t1 - T;
        T = t1;
        if (wall > 0.0 && T >= wall - kEps)
            break;
        if (unfinished == 0 && placeCursor >= n)
            break;

        obs::ScopedPhase controlsPhase("fleet_controls");
        if (spec.budget.enabled()) {
            // The epoch the budget just audited, as a control span:
            // consecutive epochs tile the timeline without overlap.
            if (control)
                control->span(T - width, T,
                              "budget epoch " +
                                  std::to_string(epochId),
                              "budget");
            enforceBudget(T, std::isfinite(interval) ? interval
                                                     : width);
        }
        std::size_t migrated = 0;
        if (spec.rebalance.enabled)
            migrated = rebalanceRound(T, width);

        // Deadlock guard: nothing ran, nothing will arrive, and every
        // survivor is budget-suspended with no resume in sight -- the
        // budget has permanently preempted them; end the run.
        if (epochSteps == 0 && migrated == 0 &&
            placeCursor == placedBefore && placeCursor >= n &&
            unfinished > 0) {
            bool all_suspended = true;
            for (const TenantRt &rt : tenants)
                if (rt.admitted && rt.core.state != TaskState::kDone &&
                    rt.core.state != TaskState::kSuspended) {
                    all_suspended = false;
                    break;
                }
            if (all_suspended) {
                for (TenantRt &rt : tenants)
                    if (rt.admitted &&
                        rt.core.state != TaskState::kDone)
                        rt.core.state = TaskState::kDone;
                unfinished = 0;
                break;
            }
        }
        ++epochId;
    }
}

void
FleetSim::assemble(int threads)
{
    for (const PodRt &pod : pods)
        out.makespanSec = std::max(out.makespanSec, pod.lastActiveSec);

    double qos_sum = 0.0;
    std::size_t qos_count = 0;
    std::vector<double> pod_qos_sum(pods.size(), 0.0);
    std::vector<std::size_t> pod_qos_count(pods.size(), 0);
    std::vector<std::size_t> pod_ended(pods.size(), 0);

    {
    obs::ScopedPhase tenants_phase("assemble_tenants");
    // Each row is a pure function of its own tenant's runtime state
    // (the latency selections sort disjoint arena ranges in place),
    // so rows build in parallel; the floating-point QoS accumulators
    // run in a sequential index-order pass below so their addition
    // order -- and therefore every mean byte -- is independent of the
    // worker count.
    out.tenants.resize(n);
    forEachPod(n, threads, [&](std::size_t i) {
        const TenantJob &job = trace.jobs[i];
        TenantRt &rt = tenants[i];
        FleetTenantMetrics &m = out.tenants[i];
        m.job = job;
        m.finalPod = rt.pod;
        m.admitted = rt.admitted;
        m.stepsDone = rt.core.done;
        m.completed = rt.core.completed;
        m.switchesIn = rt.switchesIn;
        m.migrations = rt.migrations;
        m.migrationSec = rt.migSec;
        m.migrationEnergyJ = rt.migEnergyJ;
        m.suspensions = rt.suspensions;
        m.energyJ = rt.energyJ;

        if (!rt.admitted) {
            m.resolvedBatch = job.batch;
            m.endSec = job.arrivalSec;
            m.achievedStepsPerSec = kNaN;
            m.isolatedStepsPerSec = kNaN;
            m.qosAttainmentPct = kNaN;
            m.stepLatency = computeLatencyStats({});
            return;
        }

        const std::uint32_t type = pods[rt.pod].type;
        const IterationCost &cost = costOf(type, rt.cls);
        m.resolvedBatch =
            cost.resolvedBatch > 0 ? cost.resolvedBatch : job.batch;

        // Departed: the session ended with steps outstanding and its
        // departure (not the wall budget) is what ended it.
        m.departed = !rt.core.completed && job.departSec > 0.0 &&
                     (wall <= 0.0 || job.departSec < wall + kEps);
        m.endSec = rt.core.completed
                       ? rt.core.completionSec
                       : (m.departed ? std::min(job.departSec,
                                                out.makespanSec)
                                     : out.makespanSec);
        const double window =
            std::max(0.0, m.endSec - job.arrivalSec);
        m.achievedStepsPerSec =
            window > 0.0 ? double(rt.core.done) / window
                         : (rt.core.done > 0 ? kInf : 0.0);
        m.isolatedStepsPerSec = safeRatio(1.0, cost.seconds);

        // QoS attainment: of the steps the target demanded by endSec,
        // the share that met their deadline (see tenant/serve.cc).
        double demanded = kNaN;
        if (job.qosStepsPerSec > 0.0) {
            demanded = rt.core.completed
                           ? double(job.steps)
                           : std::floor(window * job.qosStepsPerSec);
            if (job.steps > 0)
                demanded = std::min(demanded, double(job.steps));
        } else if (job.qosDeadlineSec > 0.0) {
            if (rt.core.completed || job.qosDeadlineSec <= m.endSec)
                demanded = double(job.steps);
        }
        if (std::isfinite(demanded) && demanded > 0.0)
            m.qosAttainmentPct =
                100.0 * std::min(1.0, double(rt.core.metDeadlines) /
                                          demanded);
        else
            m.qosAttainmentPct = kNaN;

        m.stepLatency =
            rt.steps > 0
                ? computeLatencyStatsScratch(
                      latArena.data() + rt.latOff, rt.core.done)
                : computeLatencyStats(std::move(rt.latencySec));
    });
    for (std::size_t i = 0; i < n; ++i) {
        const FleetTenantMetrics &m = out.tenants[i];
        out.totalSteps += m.stepsDone;
        if (!m.admitted)
            continue;
        ++pod_ended[m.finalPod];
        if (std::isfinite(m.qosAttainmentPct)) {
            qos_sum += m.qosAttainmentPct;
            ++qos_count;
            pod_qos_sum[m.finalPod] += m.qosAttainmentPct;
            ++pod_qos_count[m.finalPod];
        }
    }
    }
    out.placedCount = n - out.rejectedCount;
    out.meanQosAttainmentPct =
        qos_count > 0 ? qos_sum / double(qos_count) : kNaN;

    std::size_t total_lat = 0;
    for (const PodRt &pod : pods)
        total_lat += pod.latencySec.size();
    std::vector<double> all_lat;
    all_lat.reserve(total_lat);
    for (const PodRt &pod : pods)
        all_lat.insert(all_lat.end(), pod.latencySec.begin(),
                       pod.latencySec.end());

    {
    obs::ScopedPhase pods_phase("assemble_pods");
    // Same split as the tenant rows: per-pod latency selections run
    // in parallel (the fleet-wide sample list was captured above, in
    // pod-index order, before the moves), totals accumulate
    // sequentially afterwards.
    out.pods.resize(pods.size());
    forEachPod(pods.size(), threads, [&](std::size_t p) {
        PodRt &pod = pods[p];
        const PodSpec &ps = spec.pods[p];
        FleetPodReport &r = out.pods[p];
        r.name = ps.name;
        r.configName = ps.config.name;
        r.chips = ps.chips;
        r.backend = ps.backendName();
        r.placed = pod.placed;
        r.migratedIn = pod.migIn;
        r.migratedOut = pod.migOut;
        r.ended = pod_ended[p];
        r.stepsDone = pod.steps;
        r.busySec = pod.busySec;
        r.utilization = safeRatio(pod.busySec, out.makespanSec);
        r.energyJ = pod.energyJ;
        r.contextSwitches = pod.switches;
        r.switchSec = pod.switchSec;
        r.switchEnergyJ = pod.switchEnergyJ;
        r.migrationSec = pod.migSec;
        r.migrationEnergyJ = pod.migEnergyJ;
        r.migrationBytes = pod.migBytes;
        r.meanQosAttainmentPct =
            pod_qos_count[p] > 0
                ? pod_qos_sum[p] / double(pod_qos_count[p])
                : kNaN;
        r.stepLatency = computeLatencyStats(std::move(pod.latencySec));
    });
    for (const PodRt &pod : pods) {
        out.totalEnergyJ += pod.energyJ;
        out.contextSwitches += pod.switches;
        out.coreCounters += pod.core.counters;
    }
    }
    for (FleetPodReport &r : out.pods)
        r.energyShare = safeRatio(r.energyJ, out.totalEnergyJ);

    if (telemetry) {
        obs::ScopedPhase obs_phase("assemble_telemetry");
        publishTelemetry();
    }

    // Sequential publish point (after the parallel epochs are done):
    // everything below is a pure function of the simulated outcome,
    // so the snapshot is byte-identical across thread counts.
    if (auto &metrics = obs::MetricsRegistry::instance();
        metrics.enabled()) {
        metrics.setGauge("fleet.pods", double(pods.size()));
        metrics.setGauge("fleet.sessions", double(n));
        metrics.addCounter("fleet.placed", out.placedCount);
        metrics.addCounter("fleet.rejected", out.rejectedCount);
        metrics.addCounter(std::string("fleet.placement_picks.") +
                               placementName(spec.placement),
                           out.placedCount);
        metrics.addCounter("fleet.migrations", out.migrations);
        metrics.addCounter("fleet.suspensions", out.suspensions);
        metrics.addCounter("fleet.steps", out.totalSteps);
        // Cache-state-dependent, so it lives here (diva-metrics-v1)
        // rather than in the byte-deterministic timeseries document.
        metrics.addCounter("fleet.plan_cache.hits", out.planHits);
        metrics.addCounter("fleet.plan_cache.misses", out.planMisses);
        metrics.setGauge(
            "fleet.plan_cache.hit_rate",
            safeRatio(double(out.planHits),
                      double(out.planHits + out.planMisses)));
        const serve_core::Counters &c = out.coreCounters;
        metrics.addCounter("serve_core.steps", c.steps);
        metrics.addCounter("serve_core.dispatches", c.dispatches);
        metrics.addCounter("serve_core.coalesced_quanta",
                           c.coalescedQuanta);
        metrics.addCounter("serve_core.promotions", c.promotions);
        metrics.addCounter("serve_core.idle_jumps", c.idleJumps);
        metrics.addCounter("serve_core.context_switches", c.switches);
        metrics.addCounter("serve_core.retired", c.retired);
        for (double latency : all_lat)
            metrics.recordValue("fleet.step_latency_sec", latency);
    }
    {
        obs::ScopedPhase agg_phase("assemble_agg");
        out.aggStepLatency =
            computeLatencyStatsSortedMean(std::move(all_lat));
    }
}

void
FleetSim::publishTelemetry()
{
    obs::TimeSeriesSnapshot &snap = telemetry->snapshot;
    using Kind = obs::TimeSeries::Kind;
    const double W = telemetry->windowSec;

    // Per-pod window series, in pod-index order. The pod clock is
    // monotone, so obsRows is already window-sorted per pod.
    for (std::size_t p = 0; p < pods.size(); ++p) {
        PodRt &pod = pods[p];
        flushObsRow(pod);
        const std::string base = "pod." + spec.pods[p].name + ".";
        obs::TimeSeries &steps =
            snap.seriesRef(base + "steps", Kind::kCounter);
        obs::TimeSeries &switches =
            snap.seriesRef(base + "switches", Kind::kCounter);
        obs::TimeSeries &busy =
            snap.seriesRef(base + "busy_s", Kind::kSum);
        obs::TimeSeries &energy =
            snap.seriesRef(base + "energy_j", Kind::kSum);
        obs::TimeSeries &util =
            snap.seriesRef(base + "util", Kind::kGauge);
        obs::TimeSeries &power =
            snap.seriesRef(base + "power_w", Kind::kGauge);
        obs::TimeSeries &queue =
            snap.seriesRef(base + "queue_depth", Kind::kGauge);
        obs::TimeSeries &gated =
            snap.seriesRef(base + "gated", Kind::kGauge);
        for (const PodObsRow &r : pod.obsRows) {
            steps.points[r.w] += double(r.steps);
            switches.points[r.w] += double(r.switches);
            busy.points[r.w] += r.busySec;
            energy.points[r.w] += r.energyJ;
            util.points[r.w] = r.busySec / W;
            power.points[r.w] = r.energyJ / W;
            queue.points[r.w] = r.queueDepth;
            gated.points[r.w] = r.gated;
        }
        telemetry->decompExactFailures += pod.decompFailures;
    }

    // Per-priority latency decomposition: merge each pod's
    // single-writer windows in pod-index order, then publish the
    // series/sketches and the SLO report over the merged rows.
    std::map<int, std::map<std::int64_t, obs::ComponentWindows::Row>>
        by_prio;
    for (PodRt &pod : pods)
        for (std::size_t s = 0; s < pod.latWindows.size(); ++s) {
            pod.latWindows[s].finish();
            // Every decomposed step went through recordAt, so the
            // audit denominator is the sum of recorded steps.
            for (const obs::ComponentWindows::Row &r :
                 pod.latWindows[s].rows())
                telemetry->decompSteps += r.steps;
            obs::mergeComponentRows(pod.latWindows[s].rows(),
                                    &by_prio[prioValues[s]]);
        }
    obs::publishLatencyWindows(by_prio, "", telemetry);

    auto emitCluster = [&](const char *name,
                           const std::map<std::int64_t, double> &m) {
        for (const auto &[w, v] : m)
            snap.add(name, Kind::kCounter, w, v);
    };
    emitCluster("cluster.placed", wPlaced);
    emitCluster("cluster.rejected", wRejected);
    emitCluster("cluster.migrations", wMigrations);
    emitCluster("cluster.suspensions", wSuspensions);
    emitCluster("cluster.resumes", wResumes);

    // Breach instants land on the cluster control track; the sink
    // stable-sorts by timestamp at write time, so appending after the
    // run keeps the emitted trace ordered.
    if (control)
        for (const obs::SloScope &sc : telemetry->report.scopes)
            for (const obs::SloWindow &sw : sc.windows)
                if (sw.breach)
                    control->instant(double(sw.w) * W,
                                     "slo breach " + sc.name, "slo");
}

} // namespace

FleetResult
simulateFleet(const FleetSpec &spec, const ArrivalTrace &trace,
              SweepRunner &runner, int threads,
              obs::TraceSink *traceSink, obs::RunTelemetry *telemetry)
{
    FleetResult out;
    out.fleetName = spec.name;
    out.traceName = trace.name;
    out.policy = spec.policy;
    out.placement = spec.placement;
    out.quantumIters = spec.quantumIters;
    out.wallLimitSec = spec.wallLimitSec;

    out.error = spec.validationError();
    if (!out.ok())
        return out;
    out.error = trace.validationError(spec.wallLimitSec > 0.0);
    if (!out.ok())
        return out;
    if (trace.jobs.size() >= std::size_t(std::uint32_t(-1))) {
        out.error = "trace exceeds the fleet engine's session limit";
        return out;
    }

    FleetSim sim(spec, trace, out);
    sim.n = trace.jobs.size();
    sim.sink = traceSink;
    sim.telemetry = telemetry;
    {
        obs::ScopedPhase phase("fleet_pricing");
        out.error = sim.price(runner);
    }
    if (!out.ok())
        return out;

    {
        obs::ScopedPhase phase("fleet_run");
        sim.run(threads);
    }
    {
        obs::ScopedPhase phase("fleet_assemble");
        sim.assemble(threads);
    }
    return out;
}

FleetResult
simulateFleet(const FleetSpec &spec, const ArrivalTrace &trace)
{
    SweepRunner runner;
    return simulateFleet(spec, trace, runner);
}

} // namespace diva
