#include "fleet/migration.h"

#include <algorithm>
#include <cmath>

#include "energy/energy_model.h"
#include "mem/dram_model.h"

namespace diva
{

MigrationCost
migrationCost(const PodSpec &src, const PodSpec &dst,
              double workingSetFraction)
{
    if (!std::isfinite(workingSetFraction) || workingSetFraction <= 0.0)
        workingSetFraction = 1.0;
    workingSetFraction = std::min(workingSetFraction, 1.0);

    MigrationCost cost;
    // The tenant's live state: its working-set share of every source
    // chip's SRAM (chips drain concurrently, so drain time is one
    // chip's transfer while bytes scale with the chip count).
    const Bytes per_chip = Bytes(
        std::ceil(double(src.config.sramBytes) * workingSetFraction));
    const Bytes state_bytes = per_chip * Bytes(std::max(1, src.chips));

    const DramModel src_dram(src.config);
    const Cycles drain_cycles = src_dram.transferCycles(per_chip);
    const double drain_sec = src.config.cyclesToSeconds(drain_cycles);

    // Interconnect leg: the whole state crosses the inter-pod link at
    // the slower end's bandwidth.
    const double link_gbs =
        std::min(src.pod.interconnectGBs, dst.pod.interconnectGBs);
    const double wire_sec = double(state_bytes) / (link_gbs * 1e9);

    // Refill: the state lands sharded over the destination's chips,
    // which stream their shards from DRAM into SRAM concurrently.
    const int dst_chips = std::max(1, dst.chips);
    const Bytes dst_per_chip = Bytes(
        std::ceil(double(state_bytes) / double(dst_chips)));
    const DramModel dst_dram(dst.config);
    const Cycles refill_cycles = dst_dram.transferCycles(dst_per_chip);
    const double refill_sec = dst.config.cyclesToSeconds(refill_cycles);

    cost.cycles = drain_cycles + refill_cycles;
    cost.seconds = drain_sec + wire_sec + refill_sec;
    // Both ends move the state across their SRAM port and DRAM
    // interface; the engines idle powered for their local phase.
    cost.dramBytes = 2 * state_bytes;
    cost.energyJ =
        double(cost.dramBytes) * (EnergyModel::kSramJoulesPerByte +
                                  EnergyModel::kDramJoulesPerByte) +
        EnergyModel::enginePowerW(src.config) * drain_sec *
            double(std::max(1, src.chips)) +
        EnergyModel::enginePowerW(dst.config) * refill_sec *
            double(dst_chips);
    return cost;
}

} // namespace diva
