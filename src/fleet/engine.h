/**
 * @file
 * The datacenter-scale fleet engine: replays an arrival trace across N
 * heterogeneous pods, each an independent time-shared serve instance
 * running the src/tenant/ scheduling policies, under a cluster-level
 * placement policy, an optional migration/rebalance loop and an
 * optional fleet energy budget.
 *
 * Unlike the single-pod serve loop (which rescans every tenant per
 * quantum), each pod here keeps its runnable tenants in policy-ordered
 * queues with O(log n) updates, so million-session fleets replay in
 * seconds. Time advances in *control epochs*: within an epoch pods
 * simulate independently (and in parallel across worker threads --
 * their state is disjoint, so the simulation is byte-deterministic
 * whatever the thread count); at epoch boundaries the cluster level
 * runs, in order: energy-budget enforcement, then rebalance
 * migrations, then placement of the next epoch's arrivals.
 *
 * Isolated per-step costs are priced once per (pod type, tenant class)
 * through the shared SweepRunner, so fleets share the sweep engine's
 * plan/result/disk caches and --threads parallelizes the pricing.
 */

#ifndef DIVA_FLEET_ENGINE_H
#define DIVA_FLEET_ENGINE_H

#include <cstdint>
#include <string>
#include <vector>

#include "arrivals/trace.h"
#include "common/percentile.h"
#include "fleet/fleet.h"
#include "serve_core/core.h"
#include "fleet/placement.h"
#include "sweep/runner.h"

namespace diva
{

namespace obs
{
class TraceSink;
struct RunTelemetry;
}

/** What one tenant session experienced over the fleet run. */
struct FleetTenantMetrics
{
    /** The session as served. */
    TenantJob job;

    int resolvedBatch = 0;

    /** Pod the session ended on (kNoPod when it was rejected). */
    std::size_t finalPod = kNoPod;

    /** Whether placement found a feasible pod. */
    bool admitted = true;

    bool completed = false;
    bool departed = false;

    std::uint64_t stepsDone = 0;

    /** End of the session's service window (see tenant/serve.h). */
    double endSec = 0.0;

    double achievedStepsPerSec = 0.0;

    /** Isolated rate on the session's final pod (NaN if rejected). */
    double isolatedStepsPerSec = 0.0;

    /** See TenantMetrics::qosAttainmentPct. */
    double qosAttainmentPct = 0.0;

    /** Exact-sort latency of the session's executed steps. */
    LatencyStats stepLatency;

    /** Joules: steps + switches into it + its migrations. */
    double energyJ = 0.0;

    std::uint32_t switchesIn = 0;

    /** Times this session moved pods. */
    std::uint32_t migrations = 0;

    /** Off-the-air seconds / joules its migrations cost. */
    double migrationSec = 0.0;
    double migrationEnergyJ = 0.0;

    /** Control intervals this session sat preempted by the budget. */
    std::uint32_t suspensions = 0;
};

/** What one pod did over the fleet run. */
struct FleetPodReport
{
    std::string name;
    std::string configName;
    int chips = 1;
    std::string backend;

    /** Sessions first placed here / moved in / moved out. */
    std::size_t placed = 0;
    std::size_t migratedIn = 0;
    std::size_t migratedOut = 0;

    /** Sessions whose service ended here. */
    std::size_t ended = 0;

    std::uint64_t stepsDone = 0;

    /** Engine-occupied seconds: steps + switches + migration refills. */
    double busySec = 0.0;

    /** busySec over the fleet makespan (NaN on an empty run). */
    double utilization = 0.0;

    double energyJ = 0.0;

    /** energyJ over the fleet total (NaN if the total is zero). */
    double energyShare = 0.0;

    std::uint64_t contextSwitches = 0;
    double switchSec = 0.0;
    double switchEnergyJ = 0.0;

    /** In-migration bill landed on this pod. */
    double migrationSec = 0.0;
    double migrationEnergyJ = 0.0;
    Bytes migrationBytes = 0;

    /** Tail latency over the steps executed on this pod. */
    LatencyStats stepLatency;

    /** Mean attainment over targeted sessions ended here; NaN if none. */
    double meanQosAttainmentPct = 0.0;
};

/** Outcome of one fleet simulation. */
struct FleetResult
{
    /** Inputs echoed for reporting. */
    std::string fleetName;
    std::string traceName;
    SchedPolicy policy = SchedPolicy::kRoundRobin;
    PlacementKind placement = PlacementKind::kFirstFit;
    std::uint64_t quantumIters = 1;
    double wallLimitSec = 0.0;

    std::vector<FleetPodReport> pods;

    /** One entry per trace session, in trace order. */
    std::vector<FleetTenantMetrics> tenants;

    std::size_t placedCount = 0;
    std::size_t rejectedCount = 0;

    std::uint64_t totalSteps = 0;

    /** End of the last serviced work across the fleet. */
    double makespanSec = 0.0;

    /** Joules fleet-wide (pod energies and tenant energies sum here). */
    double totalEnergyJ = 0.0;

    std::uint64_t contextSwitches = 0;

    /** Migration totals (reconcile with the per-pod in-migration sums). */
    std::uint64_t migrations = 0;
    double migrationSec = 0.0;
    double migrationEnergyJ = 0.0;
    Bytes migrationBytes = 0;

    /** Energy-budget preemptions applied over the run. */
    std::uint64_t suspensions = 0;

    /** Mean attainment over sessions with targets; NaN if none. */
    double meanQosAttainmentPct = 0.0;

    /** Tail latency over every executed step fleet-wide. */
    LatencyStats aggStepLatency;

    /** Cost-pricing cache accounting (stderr reporting only; never
     *  emitted into the CSV/JSON so reruns stay byte-identical). */
    std::size_t planHits = 0;
    std::size_t planMisses = 0;

    /**
     * serve_core event counters summed over every pod (steps,
     * dispatches, coalesced quanta, promotions, idle jumps, switches,
     * retires). Reporting-only: not emitted in CSV/JSON, surfaced by
     * bench_fleet.
     */
    serve_core::Counters coreCounters;

    /** Non-empty when the fleet could not run (bad spec, sim error). */
    std::string error;

    bool ok() const { return error.empty(); }
};

/**
 * Replay `trace` on the fleet. `threads` parallelizes the per-epoch
 * pod simulations (the output is byte-identical for any value);
 * isolated-cost pricing parallelism comes from `runner`'s own options.
 * Validation failures return an error-carrying result instead of
 * running.
 *
 * `traceSink`, when non-null, receives a sim-time trace of the run:
 * one track per pod (step spans, context-switch instants) plus a
 * cluster control track (placement/admission/migration/suspension
 * instants and budget-epoch spans). Tracks are timestamped in
 * simulated seconds, so the trace too is byte-identical across
 * `threads`. Null leaves the run untouched.
 *
 * `telemetry`, when non-null, receives the windowed time-series view
 * of the run (see obs/slo.h): per-pod window series (steps, switches,
 * busy seconds, utilization, energy, power, queue depth, gated
 * count), per-priority latency decompositions and per-window latency
 * sketches, cluster control-event series, and -- when its SLO spec
 * monitors anything -- the per-window p99 attainment report, with
 * breach instants appended to the trace's cluster control track when
 * `traceSink` is also set. Every telemetry value is accumulated by
 * the entity that owns it (one pod, one priority class on one pod)
 * and merged sequentially in pod-index order, so the bundle is
 * byte-identical across `threads` and reruns.
 */
FleetResult simulateFleet(const FleetSpec &spec,
                          const ArrivalTrace &trace,
                          SweepRunner &runner, int threads = 1,
                          obs::TraceSink *traceSink = nullptr,
                          obs::RunTelemetry *telemetry = nullptr);

/** Convenience overload with a private single-threaded runner. */
FleetResult simulateFleet(const FleetSpec &spec,
                          const ArrivalTrace &trace);

} // namespace diva

#endif // DIVA_FLEET_ENGINE_H
