#include "fleet/placement.h"

#include <cmath>
#include <limits>

namespace diva
{

namespace
{

constexpr double kEps = 1e-9;

/** NaN-safe demand/energy: non-finite prices sort last. */
double
finiteOr(double v, double fallback)
{
    return std::isfinite(v) ? v : fallback;
}

} // namespace

const char *
placementName(PlacementKind k)
{
    switch (k) {
      case PlacementKind::kFirstFit: return "first-fit";
      case PlacementKind::kLoadAware: return "load";
      case PlacementKind::kEnergyAware: return "energy";
    }
    return "?";
}

std::optional<PlacementKind>
placementFromName(const std::string &name)
{
    if (name == "first-fit" || name == "firstfit" || name == "ff")
        return PlacementKind::kFirstFit;
    if (name == "load" || name == "load-aware" || name == "least")
        return PlacementKind::kLoadAware;
    if (name == "energy" || name == "energy-aware")
        return PlacementKind::kEnergyAware;
    return std::nullopt;
}

std::vector<PlacementKind>
allPlacements()
{
    return {PlacementKind::kFirstFit, PlacementKind::kLoadAware,
            PlacementKind::kEnergyAware};
}

std::size_t
choosePod(PlacementKind kind, const std::vector<PodLoadView> &pods,
          const std::vector<double> &demandOnPod,
          const std::vector<double> &energyPerStepOnPod, double cap)
{
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::size_t best = kNoPod;
    double best_primary = kInf;
    double best_secondary = kInf;
    for (std::size_t p = 0; p < pods.size(); ++p) {
        const double demand = finiteOr(demandOnPod[p], kInf);
        if (pods[p].demand + demand > cap + kEps)
            continue; // infeasible: the pod is full for this tenant
        if (kind == PlacementKind::kFirstFit)
            return p;
        double primary = 0.0;
        double secondary = 0.0;
        if (kind == PlacementKind::kLoadAware) {
            primary = pods[p].demand;
            secondary = double(pods[p].sessions);
        } else { // kEnergyAware
            primary = finiteOr(energyPerStepOnPod[p], kInf);
            secondary = pods[p].demand;
        }
        if (best == kNoPod || primary < best_primary - kEps ||
            (primary <= best_primary + kEps &&
             secondary < best_secondary - kEps)) {
            best = p;
            // Keep the running minimum: a within-kEps tie-break winner
            // must not raise the bar later pods get compared against.
            best_primary = std::min(best_primary, primary);
            best_secondary = secondary;
        }
    }
    return best;
}

} // namespace diva
