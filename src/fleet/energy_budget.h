/**
 * @file
 * Fleet-level energy-budget enforcement: at every control boundary the
 * engine projects each active tenant's sustained watts (its step rate
 * times its joules per step on its current pod) and, when the fleet
 * total exceeds the effective power cap, preempts tenants from the
 * bottom of the priority order until the remainder fits. A total
 * joule budget turns into a power cap over the next interval
 * (remaining joules / interval), so a draining budget throttles the
 * fleet progressively instead of falling off a cliff.
 *
 * The chooser is a pure function with (priority desc, arrival asc,
 * index asc) keep-ordering, so budget decisions are byte-reproducible.
 */

#ifndef DIVA_FLEET_ENERGY_BUDGET_H
#define DIVA_FLEET_ENERGY_BUDGET_H

#include <cstddef>
#include <vector>

namespace diva
{

/** One active tenant as the budget enforcer sees it. */
struct TenantPowerView
{
    /** Projected sustained watts on its current pod. */
    double watts = 0.0;

    /** Strict-priority rank; larger keeps running longer. */
    int priority = 0;

    double arrivalSec = 0.0;
};

/**
 * The effective power cap for the next control interval: the sustained
 * cap and/or the remaining joule budget spread over the interval,
 * whichever is tighter. Negative remaining budget clamps to 0 (all
 * metered tenants preempt); returns a negative value only when no
 * budget is configured (meaning "uncapped").
 */
double effectivePowerCapW(double powerCapW, double totalJ,
                          double spentJ, double intervalSec);

/**
 * Choose which tenants to preempt so the kept tenants' summed watts
 * stay within `capW`: tenants are kept in (priority desc, arrival asc,
 * index asc) order while they fit. Unmetered tenants (watts <= 0 or
 * non-finite) are always kept. A negative cap keeps everyone; a zero
 * cap preempts every metered tenant. Returns the indices to preempt,
 * ascending.
 */
std::vector<std::size_t>
chooseSuspensions(const std::vector<TenantPowerView> &tenants,
                  double capW);

} // namespace diva

#endif // DIVA_FLEET_ENERGY_BUDGET_H
