/**
 * @file
 * Deterministic CSV and JSON emitters for fleet results, mirroring the
 * serve emitters: output is a pure function of the result (one
 * per-tenant CSV with a row per session, one per-pod CSV with a row
 * per pod, one JSON document), doubles go through formatDouble /
 * jsonNumber so NaN renders as "nan" in CSV and null in JSON, and a
 * multi-threaded fleet run emits bytes identical to a serial one.
 * Cache accounting (plan hits/misses) never appears here, so reruns
 * against a warm disk cache stay byte-identical too.
 *
 * Per-tenant rows are built by appending into one reused buffer
 * rather than a stream per row: million-session fleets emit their CSV
 * in a few seconds instead of minutes.
 */

#ifndef DIVA_FLEET_EMIT_H
#define DIVA_FLEET_EMIT_H

#include <ostream>
#include <string>

#include "fleet/engine.h"

namespace diva
{

/** Header matching fleetTenantCsvRow()'s columns. */
std::string fleetTenantCsvHeader();

/** One CSV row for one tenant session of one fleet run. */
std::string fleetTenantCsvRow(const FleetResult &fleet,
                              const FleetTenantMetrics &tenant);

/** Header matching fleetPodCsvRow()'s columns. */
std::string fleetPodCsvHeader();

/** One CSV row for one pod of one fleet run. */
std::string fleetPodCsvRow(const FleetResult &fleet,
                           const FleetPodReport &pod);

/**
 * Emit header + one row per tenant session. A failed run emits a
 * single row with tenant "-" and the error column filled.
 */
void writeFleetTenantCsv(std::ostream &os, const FleetResult &fleet);

/** Emit header + one row per pod (same error-row convention). */
void writeFleetPodCsv(std::ostream &os, const FleetResult &fleet);

/**
 * Emit the fleet run as one JSON document: the fleet summary and the
 * per-pod reports, plus (with `includeTenants`) every per-tenant
 * record -- off by default because a million-session fleet's tenant
 * array dwarfs everything else.
 */
void writeFleetJson(std::ostream &os, const FleetResult &fleet,
                    bool includeTenants = false);

} // namespace diva

#endif // DIVA_FLEET_EMIT_H
