#include "fleet/emit.h"

#include <sstream>

#include "common/format.h"

namespace diva
{

namespace
{

/** The run-level cells shared by every row of one fleet result. */
std::string
fleetPrefix(const FleetResult &f)
{
    std::ostringstream oss;
    oss << csvCell(std::string(policyName(f.policy))) << ','
        << csvCell(std::string(placementName(f.placement))) << ','
        << csvCell(f.fleetName) << ',' << csvCell(f.traceName);
    return oss.str();
}

void
appendDouble(std::string &out, double v)
{
    out += formatDouble(v);
}

void
appendTenantRow(std::string &out, const std::string &prefix,
                const FleetResult &f, const FleetTenantMetrics &t)
{
    out += prefix;
    out += ',';
    out += csvCell(t.job.name);
    out += ',';
    out += csvCell(t.job.model);
    out += ',';
    out += std::to_string(t.resolvedBatch);
    out += ',';
    out += std::to_string(t.job.priority);
    out += ',';
    appendDouble(out, t.job.arrivalSec);
    out += ',';
    appendDouble(out, t.job.departSec);
    out += ',';
    appendDouble(out, t.job.qosStepsPerSec);
    out += ',';
    appendDouble(out, t.job.qosDeadlineSec);
    out += ',';
    out += std::to_string(t.job.steps);
    out += ',';
    out += std::to_string(t.stepsDone);
    out += ',';
    out += t.finalPod == kNoPod ? std::string("-")
                                : f.pods[t.finalPod].name;
    out += ',';
    out += t.admitted ? '1' : '0';
    out += ',';
    out += t.completed ? '1' : '0';
    out += ',';
    out += t.departed ? '1' : '0';
    out += ',';
    appendDouble(out, t.endSec);
    out += ',';
    appendDouble(out, t.achievedStepsPerSec);
    out += ',';
    appendDouble(out, t.isolatedStepsPerSec);
    out += ',';
    appendDouble(out, t.stepLatency.p50Sec);
    out += ',';
    appendDouble(out, t.stepLatency.p95Sec);
    out += ',';
    appendDouble(out, t.stepLatency.p99Sec);
    out += ',';
    appendDouble(out, t.qosAttainmentPct);
    out += ',';
    appendDouble(out, t.energyJ);
    out += ',';
    out += std::to_string(t.switchesIn);
    out += ',';
    out += std::to_string(t.migrations);
    out += ',';
    appendDouble(out, t.migrationSec);
    out += ',';
    appendDouble(out, t.migrationEnergyJ);
    out += ',';
    out += std::to_string(t.suspensions);
    out += ',';
    out += '\n';
}

} // namespace

std::string
fleetTenantCsvHeader()
{
    return "policy,placement,fleet,trace,tenant,model,batch,priority,"
           "arrival_s,depart_s,qos_sps,qos_deadline_s,steps,"
           "steps_done,pod,admitted,completed,departed,end_s,"
           "achieved_sps,isolated_sps,lat_p50_s,lat_p95_s,lat_p99_s,"
           "qos_attainment_pct,energy_j,switches_in,migrations,"
           "migration_s,migration_energy_j,suspensions,error";
}

std::string
fleetTenantCsvRow(const FleetResult &fleet,
                  const FleetTenantMetrics &tenant)
{
    std::string out;
    appendTenantRow(out, fleetPrefix(fleet), fleet, tenant);
    out.pop_back(); // the trailing newline is writeFleetTenantCsv's
    return out;
}

std::string
fleetPodCsvHeader()
{
    return "policy,placement,fleet,trace,pod,config,chips,backend,"
           "placed,migrated_in,migrated_out,ended,steps_done,busy_s,"
           "utilization,energy_j,energy_share,switches,switch_s,"
           "switch_energy_j,migration_s,migration_energy_j,"
           "migration_bytes,lat_count,lat_p50_s,lat_p95_s,lat_p99_s,"
           "mean_qos_attainment_pct,error";
}

std::string
fleetPodCsvRow(const FleetResult &fleet, const FleetPodReport &p)
{
    std::ostringstream oss;
    oss << fleetPrefix(fleet) << ',' << csvCell(p.name) << ','
        << csvCell(p.configName) << ',' << p.chips << ','
        << csvCell(p.backend) << ',' << p.placed << ',' << p.migratedIn
        << ',' << p.migratedOut << ',' << p.ended << ',' << p.stepsDone
        << ',' << formatDouble(p.busySec) << ','
        << formatDouble(p.utilization) << ','
        << formatDouble(p.energyJ) << ','
        << formatDouble(p.energyShare) << ',' << p.contextSwitches
        << ',' << formatDouble(p.switchSec) << ','
        << formatDouble(p.switchEnergyJ) << ','
        << formatDouble(p.migrationSec) << ','
        << formatDouble(p.migrationEnergyJ) << ',' << p.migrationBytes
        << ',' << p.stepLatency.count << ','
        << formatDouble(p.stepLatency.p50Sec) << ','
        << formatDouble(p.stepLatency.p95Sec) << ','
        << formatDouble(p.stepLatency.p99Sec) << ','
        << formatDouble(p.meanQosAttainmentPct) << ',';
    return oss.str();
}

void
writeFleetTenantCsv(std::ostream &os, const FleetResult &fleet)
{
    os << fleetTenantCsvHeader() << '\n';
    if (!fleet.ok()) {
        // One placeholder cell per tenant column, error last.
        os << fleetPrefix(fleet)
           << ",-,-,0,0,0,0,0,0,0,0,-,0,0,0,nan,nan,nan,nan,nan,nan,"
              "nan,nan,0,0,nan,nan,0,"
           << csvCell(fleet.error) << '\n';
        return;
    }
    const std::string prefix = fleetPrefix(fleet);
    std::string buf;
    buf.reserve(1 << 20);
    for (const FleetTenantMetrics &t : fleet.tenants) {
        appendTenantRow(buf, prefix, fleet, t);
        if (buf.size() > (1 << 20) - 1024) {
            os.write(buf.data(), std::streamsize(buf.size()));
            buf.clear();
        }
    }
    os.write(buf.data(), std::streamsize(buf.size()));
}

void
writeFleetPodCsv(std::ostream &os, const FleetResult &fleet)
{
    os << fleetPodCsvHeader() << '\n';
    if (!fleet.ok()) {
        os << fleetPrefix(fleet)
           << ",-,-,0,-,0,0,0,0,0,0,nan,0,nan,0,0,0,0,0,0,0,nan,nan,"
              "nan,nan,"
           << csvCell(fleet.error) << '\n';
        return;
    }
    for (const FleetPodReport &p : fleet.pods)
        os << fleetPodCsvRow(fleet, p) << '\n';
}

void
writeFleetJson(std::ostream &os, const FleetResult &f,
               bool includeTenants)
{
    os << "{\n  \"policy\": \"" << policyName(f.policy)
       << "\", \"placement\": \"" << placementName(f.placement)
       << "\", \"fleet\": \"" << jsonEscape(f.fleetName)
       << "\", \"trace\": \"" << jsonEscape(f.traceName)
       << "\", \"quantum\": " << f.quantumIters
       << ", \"wall_s\": " << jsonNumber(f.wallLimitSec);
    if (!f.ok()) {
        os << ", \"error\": \"" << jsonEscape(f.error) << "\"\n}\n";
        return;
    }
    os << ",\n  \"pods_total\": " << f.pods.size()
       << ", \"placed\": " << f.placedCount
       << ", \"rejected\": " << f.rejectedCount
       << ", \"steps\": " << f.totalSteps
       << ", \"makespan_s\": " << jsonNumber(f.makespanSec)
       << ", \"energy_j\": " << jsonNumber(f.totalEnergyJ)
       << ", \"context_switches\": " << f.contextSwitches
       << ",\n  \"migrations\": " << f.migrations
       << ", \"migration_s\": " << jsonNumber(f.migrationSec)
       << ", \"migration_energy_j\": " << jsonNumber(f.migrationEnergyJ)
       << ", \"migration_bytes\": " << f.migrationBytes
       << ", \"suspensions\": " << f.suspensions
       << ", \"mean_qos_attainment_pct\": "
       << jsonNumber(f.meanQosAttainmentPct)
       << ",\n  \"lat_count\": " << f.aggStepLatency.count
       << ", \"lat_mean_s\": " << jsonNumber(f.aggStepLatency.meanSec)
       << ", \"lat_p50_s\": " << jsonNumber(f.aggStepLatency.p50Sec)
       << ", \"lat_p95_s\": " << jsonNumber(f.aggStepLatency.p95Sec)
       << ", \"lat_p99_s\": " << jsonNumber(f.aggStepLatency.p99Sec)
       << ", \"lat_max_s\": " << jsonNumber(f.aggStepLatency.maxSec)
       << ",\n  \"pods\": [";
    for (std::size_t p = 0; p < f.pods.size(); ++p) {
        const FleetPodReport &r = f.pods[p];
        os << (p ? ",\n    {" : "\n    {") << "\"pod\": \""
           << jsonEscape(r.name) << "\", \"config\": \""
           << jsonEscape(r.configName) << "\", \"chips\": " << r.chips
           << ", \"backend\": \"" << jsonEscape(r.backend)
           << "\", \"placed\": " << r.placed
           << ", \"migrated_in\": " << r.migratedIn
           << ", \"migrated_out\": " << r.migratedOut
           << ", \"ended\": " << r.ended
           << ", \"steps_done\": " << r.stepsDone
           << ", \"busy_s\": " << jsonNumber(r.busySec)
           << ", \"utilization\": " << jsonNumber(r.utilization)
           << ", \"energy_j\": " << jsonNumber(r.energyJ)
           << ", \"energy_share\": " << jsonNumber(r.energyShare)
           << ", \"switches\": " << r.contextSwitches
           << ", \"switch_s\": " << jsonNumber(r.switchSec)
           << ", \"switch_energy_j\": " << jsonNumber(r.switchEnergyJ)
           << ", \"migration_s\": " << jsonNumber(r.migrationSec)
           << ", \"migration_energy_j\": "
           << jsonNumber(r.migrationEnergyJ)
           << ", \"migration_bytes\": " << r.migrationBytes
           << ", \"lat_count\": " << r.stepLatency.count
           << ", \"lat_p50_s\": " << jsonNumber(r.stepLatency.p50Sec)
           << ", \"lat_p95_s\": " << jsonNumber(r.stepLatency.p95Sec)
           << ", \"lat_p99_s\": " << jsonNumber(r.stepLatency.p99Sec)
           << ", \"mean_qos_attainment_pct\": "
           << jsonNumber(r.meanQosAttainmentPct) << "}";
    }
    os << "\n  ]";
    if (includeTenants) {
        os << ",\n  \"tenants\": [";
        for (std::size_t i = 0; i < f.tenants.size(); ++i) {
            const FleetTenantMetrics &t = f.tenants[i];
            os << (i ? ",\n    {" : "\n    {") << "\"name\": \""
               << jsonEscape(t.job.name) << "\", \"model\": \""
               << jsonEscape(t.job.model)
               << "\", \"batch\": " << t.resolvedBatch
               << ", \"priority\": " << t.job.priority
               << ", \"arrival_s\": " << jsonNumber(t.job.arrivalSec)
               << ", \"depart_s\": " << jsonNumber(t.job.departSec)
               << ", \"qos_sps\": " << jsonNumber(t.job.qosStepsPerSec)
               << ", \"steps\": " << t.job.steps
               << ", \"steps_done\": " << t.stepsDone << ", \"pod\": "
               << (t.finalPod == kNoPod
                       ? std::string("null")
                       : '"' + jsonEscape(f.pods[t.finalPod].name) +
                             '"')
               << ", \"admitted\": " << (t.admitted ? "true" : "false")
               << ", \"completed\": "
               << (t.completed ? "true" : "false")
               << ", \"departed\": " << (t.departed ? "true" : "false")
               << ", \"end_s\": " << jsonNumber(t.endSec)
               << ", \"achieved_sps\": "
               << jsonNumber(t.achievedStepsPerSec)
               << ", \"isolated_sps\": "
               << jsonNumber(t.isolatedStepsPerSec)
               << ", \"lat_p50_s\": " << jsonNumber(t.stepLatency.p50Sec)
               << ", \"lat_p95_s\": " << jsonNumber(t.stepLatency.p95Sec)
               << ", \"lat_p99_s\": " << jsonNumber(t.stepLatency.p99Sec)
               << ", \"qos_attainment_pct\": "
               << jsonNumber(t.qosAttainmentPct)
               << ", \"energy_j\": " << jsonNumber(t.energyJ)
               << ", \"switches_in\": " << t.switchesIn
               << ", \"migrations\": " << t.migrations
               << ", \"migration_s\": " << jsonNumber(t.migrationSec)
               << ", \"migration_energy_j\": "
               << jsonNumber(t.migrationEnergyJ)
               << ", \"suspensions\": " << t.suspensions << "}";
        }
        os << "\n  ]";
    }
    os << "\n}\n";
}

} // namespace diva
