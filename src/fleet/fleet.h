/**
 * @file
 * Datacenter-scale fleet specification: N pods, each an independent
 * time-shared serve instance binding one accelerator design point
 * (heterogeneous fleets mix dataflows, PPU settings, chip counts and
 * interconnects per pod), plus the cluster-level knobs -- placement
 * policy, migration/rebalance thresholds, the fleet energy budget and
 * the partial-SRAM working-set fraction -- that the fleet engine
 * (fleet/engine.h) layers on top of the per-pod schedulers.
 *
 * Pods are spelled on the CLI as templates ("df=OS,chips=4,count=16")
 * that expand into `count` identical PodSpecs; a heterogeneous fleet
 * is several templates concatenated. Parsing lives here, next to the
 * validation, so the tests exercise exactly what diva_fleet runs.
 */

#ifndef DIVA_FLEET_FLEET_H
#define DIVA_FLEET_FLEET_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/accelerator_config.h"
#include "fleet/placement.h"
#include "sim/multichip.h"
#include "tenant/scheduler.h"

namespace diva
{

/** One pod of the fleet: a design point plus its share of chips. */
struct PodSpec
{
    /** Fleet-unique pod id used in reports, e.g. "p12". */
    std::string name;

    /** The pod's accelerator design point. */
    AcceleratorConfig config;

    /** Chips in the pod; > 1 prices steps on the "pod" backend. */
    int chips = 1;

    /** Pod link parameters (used when chips > 1, and by migration). */
    MultiChipConfig pod;

    /** BackendRegistry name this pod prices isolated costs on. */
    const char *backendName() const { return chips > 1 ? "pod" : "chip"; }

    /** Why this pod is malformed, or "". */
    std::string validationError() const;
};

/** Tenant-migration (rebalance) knobs. */
struct RebalanceOptions
{
    /** Master switch; off = tenants stay where they were placed. */
    bool enabled = false;

    /**
     * Utilization gap (busy-fraction of the control interval) between
     * the most- and least-loaded pod that triggers migration.
     */
    double skewThreshold = 0.25;

    /** Migration cap per control round (thrash guard). */
    int maxPerRound = 64;
};

/** Fleet-level energy budget the schedulers must respect. */
struct FleetEnergyBudget
{
    /** Sustained fleet power cap in watts; 0 = uncapped. */
    double powerCapW = 0.0;

    /**
     * Total joule budget over the whole run; 0 = unbudgeted. Once the
     * remaining budget cannot sustain the active load for a control
     * interval, low-priority tenants are preempted first; an exhausted
     * budget preempts every remaining tenant permanently.
     */
    double totalJ = 0.0;

    bool enabled() const { return powerCapW > 0.0 || totalJ > 0.0; }
};

/** Everything one fleet simulation needs besides the arrival trace. */
struct FleetSpec
{
    /** Fleet label used in reports, e.g. "fleet-64". */
    std::string name;

    std::vector<PodSpec> pods;

    /** Per-pod time-sharing policy (see src/tenant/scheduler.h). */
    SchedPolicy policy = SchedPolicy::kRoundRobin;

    /** Cluster-level tenant-to-pod placement policy. */
    PlacementKind placement = PlacementKind::kFirstFit;

    /**
     * Fraction of one pod the admitted QoS demand placed on it may
     * claim (> 0); tenants no pod can feasibly hold are rejected.
     */
    double podDemandCap = 1.0;

    RebalanceOptions rebalance;

    FleetEnergyBudget budget;

    /**
     * Control-loop interval in simulated seconds: rebalance and
     * energy-budget decisions fire at these boundaries. 0 = auto (an
     * eighth of the trace span when any control is enabled, else one
     * uninterrupted epoch).
     */
    double controlIntervalSec = 0.0;

    /**
     * Share of the SRAM a context switch or migration actually moves
     * (partial-SRAM working-set switches); 1 = whole SRAM.
     */
    double workingSetFraction = 1.0;

    /** Training iterations per scheduling quantum (>= 1). */
    std::uint64_t quantumIters = 1;

    /** Wall-clock budget in simulated seconds; 0 = run to completion. */
    double wallLimitSec = 0.0;

    /**
     * Simulation backends pods may price isolated costs on, by
     * BackendRegistry name; empty = any. Every name must resolve, and
     * the backends the fleet's pods actually need ("chip"/"pod") must
     * be in the list.
     */
    std::vector<std::string> backends;

    /** First problem found (empty fleet, bad pod, bad knob), or "". */
    std::string validationError() const;
};

/**
 * Parse one CLI pod template of the form key=value[,key=value...]
 * with keys df (WS|OS|DiVa), ppu (on|off), chips, count, ici-gbs and
 * link-lat, and expand it into `count` identical pods (names are
 * assigned later by buildFleet). Unknown keys or malformed values
 * return nullopt and set *error.
 */
std::optional<std::vector<PodSpec>>
parsePodTemplate(const std::string &text, std::string *error);

/**
 * Assemble a fleet from expanded pod templates: concatenates the
 * groups and assigns fleet-unique names p0..pN-1 in order. The fleet
 * name reflects the pod count ("fleet-<N>").
 */
FleetSpec buildFleet(const std::vector<std::vector<PodSpec>> &groups);

/** `n` identical single-chip DiVa pods (the default fleet). */
std::vector<PodSpec> defaultPodGroup(int n);

} // namespace diva

#endif // DIVA_FLEET_FLEET_H
