/**
 * @file
 * Context-switch cost model for time-shared accelerators. Switching
 * the accelerator from one tenant's training job to another's flushes
 * the outgoing tenant's SRAM-resident working set (weight/activation
 * tiles, partial sums) to DRAM and refills the incoming tenant's, so a
 * switch costs both time -- two pipelined streaming transfers of the
 * on-chip SRAM through the DramModel -- and joules: the SRAM and DRAM
 * per-byte energies of those transfers plus the engine's idle power
 * over the stall, via the EnergyModel constants. On a pod every chip
 * flushes and refills its own SRAM in parallel, so time is unchanged
 * while energy and traffic scale with the chip count.
 *
 * By default a switch moves the whole SRAM. A working-set fraction
 * f < 1 models partial-SRAM switches: only the tenant's live working
 * set (f of the SRAM) is flushed and refilled, so every cost component
 * shrinks proportionally -- strictly cheaper switches at the risk of a
 * cold-start penalty the model deliberately leaves out (the flushed
 * remainder is dead data by assumption).
 */

#ifndef DIVA_TENANT_CONTEXT_SWITCH_H
#define DIVA_TENANT_CONTEXT_SWITCH_H

#include "arch/accelerator_config.h"
#include "common/types.h"

namespace diva
{

/** Time/energy/traffic bill of one tenant-to-tenant switch. */
struct SwitchCost
{
    /** Stall cycles at the core clock (flush + refill transfers). */
    Cycles cycles = 0;

    /** The stall in wall-clock seconds. */
    double seconds = 0.0;

    /** Joules per switch: SRAM + DRAM movement + engine idle power. */
    double energyJ = 0.0;

    /** Off-chip bytes moved (flush write + refill read, all chips). */
    Bytes dramBytes = 0;
};

/** Derives the per-switch bill for one accelerator (or pod). */
class ContextSwitchModel
{
  public:
    /**
     * Model a switch on `cfg`; `chips` > 1 bills a pod where each chip
     * flushes/refills its own SRAM concurrently. `workingSetFraction`
     * in (0, 1] is the share of the SRAM a switch actually moves;
     * 1 (the default) is the whole-SRAM flush/refill, < 1 models
     * partial-SRAM working-set switches. Out-of-range fractions clamp
     * into (0, 1].
     */
    explicit ContextSwitchModel(const AcceleratorConfig &cfg,
                                int chips = 1,
                                double workingSetFraction = 1.0);

    const SwitchCost &cost() const { return cost_; }

  private:
    SwitchCost cost_;
};

} // namespace diva

#endif // DIVA_TENANT_CONTEXT_SWITCH_H
