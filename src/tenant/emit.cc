#include "tenant/emit.h"

#include <sstream>

#include "common/format.h"

namespace diva
{

namespace
{

/** The run-level cells shared by every tenant row of one serve. */
std::string
servePrefix(const ServeResult &s)
{
    std::ostringstream oss;
    oss << csvCell(std::string(policyName(s.policy))) << ','
        << csvCell(s.configName) << ',' << csvCell(s.workloadName) << ','
        << s.chips << ',' << s.quantumIters << ','
        << formatDouble(s.wallLimitSec);
    return oss.str();
}

} // namespace

std::string
serveCsvHeader()
{
    return "policy,config,workload,chips,quantum,wall_s,tenant,model,"
           "scale,algorithm,batch,priority,arrival_s,depart_s,qos_sps,"
           "qos_deadline_s,steps,steps_done,completed,departed,"
           "admitted,wait_s,end_s,achieved_sps,isolated_sps,slowdown,"
           "lat_p50_s,lat_p95_s,lat_p99_s,qos_attainment_pct,"
           "energy_j,energy_share,switches_in,error";
}

std::string
serveCsvRow(const ServeResult &serve, const TenantMetrics &t)
{
    std::ostringstream oss;
    oss << servePrefix(serve) << ',' << csvCell(t.job.name) << ','
        << csvCell(t.job.model) << ',' << t.job.modelScale << ','
        << csvCell(algorithmName(t.job.algorithm)) << ','
        << t.resolvedBatch << ',' << t.job.priority << ','
        << formatDouble(t.job.arrivalSec) << ','
        << formatDouble(t.job.departSec) << ','
        << formatDouble(t.job.qosStepsPerSec) << ','
        << formatDouble(t.job.qosDeadlineSec) << ',' << t.job.steps
        << ',' << t.stepsDone << ',' << int(t.completed) << ','
        << int(t.departed) << ',' << int(t.admitted) << ','
        << formatDouble(t.waitSec) << ',' << formatDouble(t.endSec)
        << ',' << formatDouble(t.achievedStepsPerSec) << ','
        << formatDouble(t.isolatedStepsPerSec) << ','
        << formatDouble(t.slowdown) << ','
        << formatDouble(t.stepLatency.p50Sec) << ','
        << formatDouble(t.stepLatency.p95Sec) << ','
        << formatDouble(t.stepLatency.p99Sec) << ','
        << formatDouble(t.qosAttainmentPct) << ','
        << formatDouble(t.energyJ) << ',' << formatDouble(t.energyShare)
        << ',' << t.switchesIn << ',';
    return oss.str();
}

void
writeServeCsv(std::ostream &os, const std::vector<ServeResult> &serves)
{
    os << serveCsvHeader() << '\n';
    for (const ServeResult &s : serves) {
        if (!s.ok()) {
            // One placeholder cell per tenant column, error last.
            os << servePrefix(s)
               << ",-,-,0,-,0,0,0,0,0,0,0,0,0,0,0,nan,nan,nan,nan,nan,"
                  "nan,nan,nan,nan,nan,nan,0,"
               << csvCell(s.error) << '\n';
            continue;
        }
        for (const TenantMetrics &t : s.tenants)
            os << serveCsvRow(s, t) << '\n';
    }
}

void
writeServeJson(std::ostream &os, const std::vector<ServeResult> &serves)
{
    os << "{\n  \"serves\": [";
    for (std::size_t i = 0; i < serves.size(); ++i) {
        const ServeResult &s = serves[i];
        os << (i ? ",\n    {" : "\n    {") << "\"policy\": \""
           << policyName(s.policy) << "\", \"config\": \""
           << jsonEscape(s.configName) << "\", \"workload\": \""
           << jsonEscape(s.workloadName) << "\", \"chips\": " << s.chips
           << ", \"quantum\": " << s.quantumIters << ", \"wall_s\": "
           << jsonNumber(s.wallLimitSec);
        if (!s.ok()) {
            os << ", \"error\": \"" << jsonEscape(s.error) << "\"}";
            continue;
        }
        const std::size_t admitted = s.admittedCount();
        os << ", \"makespan_s\": " << jsonNumber(s.makespanSec)
           << ", \"energy_j\": " << jsonNumber(s.totalEnergyJ)
           << ", \"context_switches\": " << s.contextSwitches
           << ", \"switch_s\": " << jsonNumber(s.switchSec)
           << ", \"switch_energy_j\": " << jsonNumber(s.switchEnergyJ)
           << ", \"switch_dram_bytes\": " << s.switchDramBytes
           << ", \"mean_qos_attainment_pct\": "
           << jsonNumber(s.meanQosAttainmentPct)
           << ", \"admitted\": " << admitted << ", \"rejected\": "
           << s.tenants.size() - admitted
           << ", \"lat_count\": " << s.aggStepLatency.count
           << ", \"lat_mean_s\": " << jsonNumber(s.aggStepLatency.meanSec)
           << ", \"lat_p50_s\": " << jsonNumber(s.aggStepLatency.p50Sec)
           << ", \"lat_p95_s\": " << jsonNumber(s.aggStepLatency.p95Sec)
           << ", \"lat_p99_s\": " << jsonNumber(s.aggStepLatency.p99Sec)
           << ", \"lat_max_s\": " << jsonNumber(s.aggStepLatency.maxSec)
           << ", \"tenants\": [";
        for (std::size_t j = 0; j < s.tenants.size(); ++j) {
            const TenantMetrics &t = s.tenants[j];
            os << (j ? ", {" : "{") << "\"name\": \""
               << jsonEscape(t.job.name) << "\", \"model\": \""
               << jsonEscape(t.job.model) << "\", \"algorithm\": \""
               << jsonEscape(algorithmName(t.job.algorithm))
               << "\", \"batch\": " << t.resolvedBatch
               << ", \"priority\": " << t.job.priority
               << ", \"arrival_s\": " << jsonNumber(t.job.arrivalSec)
               << ", \"depart_s\": " << jsonNumber(t.job.departSec)
               << ", \"qos_sps\": " << jsonNumber(t.job.qosStepsPerSec)
               << ", \"qos_deadline_s\": "
               << jsonNumber(t.job.qosDeadlineSec) << ", \"steps\": "
               << t.job.steps << ", \"steps_done\": " << t.stepsDone
               << ", \"completed\": " << (t.completed ? "true" : "false")
               << ", \"departed\": " << (t.departed ? "true" : "false")
               << ", \"admitted\": " << (t.admitted ? "true" : "false")
               << ", \"wait_s\": " << jsonNumber(t.waitSec)
               << ", \"end_s\": " << jsonNumber(t.endSec)
               << ", \"achieved_sps\": "
               << jsonNumber(t.achievedStepsPerSec)
               << ", \"isolated_sps\": "
               << jsonNumber(t.isolatedStepsPerSec) << ", \"slowdown\": "
               << jsonNumber(t.slowdown)
               << ", \"lat_count\": " << t.stepLatency.count
               << ", \"lat_p50_s\": " << jsonNumber(t.stepLatency.p50Sec)
               << ", \"lat_p95_s\": " << jsonNumber(t.stepLatency.p95Sec)
               << ", \"lat_p99_s\": " << jsonNumber(t.stepLatency.p99Sec)
               << ", \"lat_max_s\": " << jsonNumber(t.stepLatency.maxSec)
               << ", \"qos_attainment_pct\": "
               << jsonNumber(t.qosAttainmentPct) << ", \"energy_j\": "
               << jsonNumber(t.energyJ) << ", \"energy_share\": "
               << jsonNumber(t.energyShare) << ", \"switches_in\": "
               << t.switchesIn << "}";
        }
        os << "]}";
    }
    os << "\n  ]\n}\n";
}

} // namespace diva
