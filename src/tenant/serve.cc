#include "tenant/serve.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "backend/registry.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "serve_core/core.h"

namespace diva
{

namespace
{

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/** Float slack for wall-budget and deadline comparisons. */
constexpr double kEps = 1e-9;

/** Per-tenant billing state the serve loop tracks beside the core's
 *  scheduling state (serve_core::TaskCore). */
struct TenantRun
{
    bool started = false;
    double firstStartSec = 0.0;
    double energyJ = 0.0;
    std::uint64_t switchesIn = 0;

    /** Per-executed-step latency samples, chronological. */
    std::vector<double> latencySec;

    /** Windowed latency decomposition (telemetry runs only). */
    obs::ComponentWindows windows;
};

serve_core::Policy
corePolicy(SchedPolicy p)
{
    switch (p) {
      case SchedPolicy::kFifo: return serve_core::Policy::kFifo;
      case SchedPolicy::kRoundRobin:
        return serve_core::Policy::kRoundRobin;
      case SchedPolicy::kPriority:
        return serve_core::Policy::kPriority;
      case SchedPolicy::kEdf: return serve_core::Policy::kEdf;
    }
    return serve_core::Policy::kRoundRobin;
}

/** serve_core client for the single-executor tenant serve loop: task
 *  scalars come straight from the jobs, billing lands on TenantRun
 *  and the run-level ServeResult accumulators. */
struct ServeClient
{
    const std::vector<TenantJob> &jobs;
    const std::vector<IterationCost> &costs;
    const SwitchCost &sw;
    ServeResult &out;
    std::vector<TenantRun> &run;
    std::vector<serve_core::TaskCore> cores;
    obs::TraceTrack *trace = nullptr;
    obs::RunTelemetry *telemetry = nullptr;

    /** Context switches per window (single-writer: the loop is
     *  sequential), published as `serve.<policy>.switches`. */
    std::map<std::int64_t, double> switchWindows;

    ServeClient(const std::vector<TenantJob> &j,
                const std::vector<IterationCost> &c,
                const SwitchCost &s, ServeResult &o,
                std::vector<TenantRun> &r)
        : jobs(j), costs(c), sw(s), out(o), run(r), cores(j.size())
    {
    }

    bool owns(const serve_core::Executor &, std::uint32_t) const
    {
        return true; // single executor; tasks never move
    }
    double arrivalSec(std::uint32_t i) const
    {
        return jobs[i].arrivalSec;
    }
    double departSec(std::uint32_t i) const
    {
        return jobs[i].departSec;
    }
    double rateSps(std::uint32_t i) const
    {
        return jobs[i].qosStepsPerSec;
    }
    double qosDeadlineSec(std::uint32_t i) const
    {
        return jobs[i].qosDeadlineSec;
    }
    std::uint64_t stepLimit(std::uint32_t i) const
    {
        return jobs[i].steps;
    }
    int priority(std::uint32_t i) const { return jobs[i].priority; }
    double stepSeconds(const serve_core::Executor &,
                       std::uint32_t i) const
    {
        return costs[i].seconds;
    }
    double switchSeconds(const serve_core::Executor &) const
    {
        return sw.seconds;
    }
    serve_core::TaskCore &core(std::uint32_t i) { return cores[i]; }
    const serve_core::TaskCore &core(std::uint32_t i) const
    {
        return cores[i];
    }

    void onSwitch(serve_core::Executor &ex, std::uint32_t i)
    {
        ++out.contextSwitches;
        ++run[i].switchesIn;
        out.switchSec += sw.seconds;
        out.switchEnergyJ += sw.energyJ;
        out.switchDramBytes += sw.dramBytes;
        run[i].energyJ += sw.energyJ;
        if (telemetry)
            ++switchWindows[obs::windowIndexOf(
                ex.nowSec, telemetry->invWindowSec)];
        if (trace)
            trace->instant(ex.nowSec, "switch -> " + jobs[i].name,
                           "switch");
    }
    void onStep(serve_core::Executor &ex, std::uint32_t i,
                double stepStartSec, double latencySec,
                double eligibleSec, double switchLeadSec)
    {
        if (!run[i].started) {
            run[i].started = true;
            run[i].firstStartSec = stepStartSec;
        }
        run[i].energyJ += costs[i].energyJ;
        run[i].latencySec.push_back(latencySec);
        if (telemetry) {
            obs::LatencyComponents comp;
            bool exact;
            if (switchLeadSec == 0.0) {
                exact = obs::decomposeLatencyAudited(
                    latencySec, costs[i].seconds, 0.0, 0.0, &comp);
            } else {
                const double wait =
                    std::max(0.0, stepStartSec - eligibleSec);
                exact = obs::decomposeLatencyAudited(
                    latencySec, costs[i].seconds,
                    std::min(switchLeadSec, wait), 0.0, &comp);
            }
            ++telemetry->decompSteps;
            if (!exact)
                ++telemetry->decompExactFailures;
            run[i].windows.record(ex.nowSec, latencySec, comp);
        }
        if (trace)
            trace->span(stepStartSec,
                        stepStartSec + costs[i].seconds,
                        jobs[i].name, "step");
    }
    void onRetire(serve_core::Executor &, std::uint32_t) {}
};

std::string
validateInputs(const ServeSpec &spec,
               const std::vector<IterationCost> &costs,
               const SwitchCost &sw)
{
    const bool wall_limited = spec.opts.wallLimitSec > 0.0;
    if (spec.opts.quantumIters < 1)
        return "quantum must be >= 1 iteration";
    if (!(spec.opts.wallLimitSec >= 0.0) ||
        !std::isfinite(spec.opts.wallLimitSec))
        return "wall budget must be finite and >= 0";
    if (spec.chips < 1)
        return "chip count must be >= 1";
    const std::string mix_err =
        spec.workload.validationError(wall_limited);
    if (!mix_err.empty())
        return mix_err;
    if (costs.size() != spec.workload.jobs.size())
        return "one iteration cost per tenant required";
    for (std::size_t i = 0; i < costs.size(); ++i)
        if (!(costs[i].seconds > 0.0) || !std::isfinite(costs[i].seconds) ||
            !(costs[i].energyJ >= 0.0) || !std::isfinite(costs[i].energyJ))
            return "tenant '" + spec.workload.jobs[i].name +
                   "': iteration cost must be positive and finite";
    if (!(sw.seconds >= 0.0) || !std::isfinite(sw.seconds) ||
        !(sw.energyJ >= 0.0) || !std::isfinite(sw.energyJ))
        return "context-switch cost must be finite and >= 0";
    return "";
}

} // namespace

std::size_t
ServeResult::admittedCount() const
{
    std::size_t admitted = 0;
    for (const TenantMetrics &t : tenants)
        admitted += t.admitted ? 1 : 0;
    return admitted;
}

double
safeRatio(double num, double den)
{
    if (den == 0.0 || !std::isfinite(den))
        return kNaN;
    return num / den;
}

Scenario
tenantScenario(const ServeSpec &spec, const TenantJob &job)
{
    Scenario s;
    s.config = spec.config;
    s.model = job.model;
    s.modelScale = job.modelScale;
    s.batch = job.batch;
    s.microbatch = job.microbatch;
    s.algorithm = job.algorithm;
    if (spec.chips > 1) {
        s.backend = SweepBackend::kMultiChip;
        s.pod = spec.pod;
        s.pod.numChips = spec.chips;
    }
    return s;
}

ServeResult
runServeLoop(const ServeSpec &spec, const std::vector<IterationCost> &costs,
             const SwitchCost &switchCost)
{
    ServeResult out;
    out.workloadName = spec.workload.name;
    out.configName = spec.config.name;
    out.policy = spec.policy;
    out.chips = spec.chips;
    out.quantumIters = spec.opts.quantumIters;
    out.wallLimitSec = spec.opts.wallLimitSec;
    out.error = validateInputs(spec, costs, switchCost);
    if (!out.ok())
        return out;

    // The loop works on a private copy of the jobs so fair-share QoS
    // targets can be filled in and echoed back through the metrics.
    std::vector<TenantJob> jobs = spec.workload.jobs;
    const std::size_t n = jobs.size();
    if (spec.opts.autoQosFairShare)
        for (std::size_t i = 0; i < n; ++i)
            if (!jobs[i].hasQos())
                jobs[i].qosStepsPerSec =
                    safeRatio(1.0, costs[i].seconds) / double(n);

    const double wall = spec.opts.wallLimitSec;
    std::vector<TenantRun> run(n);
    ServeClient client(jobs, costs, switchCost, out, run);
    client.trace = spec.opts.traceTrack;
    if (obs::RunTelemetry *tel = spec.opts.telemetry) {
        if (!(tel->invWindowSec > 0.0)) {
            // Deterministic span guess from the inputs alone: the
            // wall budget when one is set, else the last arrival.
            double span = wall;
            for (const TenantJob &j : jobs)
                span = std::max(span, j.arrivalSec);
            tel->resolveWindow(span);
        }
        for (std::size_t i = 0; i < n; ++i)
            run[i].windows.configure(
                tel->invWindowSec, tel->slo.targetFor(jobs[i].priority),
                tel->slo.globalTargetSec);
        client.telemetry = tel;
    }

    serve_core::Config cfg;
    cfg.policy = corePolicy(spec.policy);
    cfg.quantumIters = spec.opts.quantumIters;
    cfg.wallLimitSec = wall;
    // The tenant loop's historical semantics (see serve_core::Config):
    // index-rotating round robin, gating only under open-loop replay,
    // strict arrival-preemption windows, departure-aware idle jumps,
    // and ending the run when nothing fits the wall budget.
    cfg.rrIndexRotation = true;
    cfg.rateGates = spec.opts.openLoop;
    cfg.strictArrivalPreempt = true;
    cfg.idleSkipsBlocked = true;
    cfg.endRunWhenNoWallFit = true;
    cfg.wallBoundary = true;

    serve_core::Executor ex;
    ex.arrivals.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        ex.arrivals[i] = std::uint32_t(i);
    std::stable_sort(ex.arrivals.begin(), ex.arrivals.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return jobs[a].arrivalSec < jobs[b].arrivalSec;
                     });

    serve_core::runUntil(client, ex, cfg, kInf);
    out.makespanSec = ex.nowSec;
    out.coreCounters = ex.counters;

    // Telemetry publish point (sequential, tenant index order, so the
    // emitted floats replay byte-identically).
    if (obs::RunTelemetry *tel = spec.opts.telemetry) {
        const std::string prefix =
            std::string("serve.") + policyName(spec.policy) + ".";
        std::map<int,
                 std::map<std::int64_t, obs::ComponentWindows::Row>>
            by_prio;
        for (std::size_t i = 0; i < n; ++i) {
            run[i].windows.finish();
            std::map<std::int64_t, obs::ComponentWindows::Row> rows;
            obs::mergeComponentRows(run[i].windows.rows(), &rows);
            obs::publishComponentSeries(
                rows, prefix + "tenant." + jobs[i].name + ".",
                &tel->snapshot);
            obs::mergeComponentRows(run[i].windows.rows(),
                                    &by_prio[jobs[i].priority]);
        }
        obs::publishLatencyWindows(by_prio, prefix, tel);
        for (const auto &[w, count] : client.switchWindows)
            tel->snapshot.add(prefix + "switches",
                              obs::TimeSeries::Kind::kCounter, w,
                              count);
    }

    // Sequential publish point: the loop above is single-threaded, so
    // these totals are a pure function of the simulated work.
    if (auto &metrics = obs::MetricsRegistry::instance();
        metrics.enabled()) {
        const serve_core::Counters &c = out.coreCounters;
        metrics.addCounter("serve_core.steps", c.steps);
        metrics.addCounter("serve_core.dispatches", c.dispatches);
        metrics.addCounter("serve_core.coalesced_quanta",
                           c.coalescedQuanta);
        metrics.addCounter("serve_core.promotions", c.promotions);
        metrics.addCounter("serve_core.idle_jumps", c.idleJumps);
        metrics.addCounter("serve_core.context_switches", c.switches);
        metrics.addCounter("serve_core.retired", c.retired);
        for (const TenantRun &r : run)
            for (double latency : r.latencySec)
                metrics.recordValue("serve.step_latency_sec", latency);
    }
    const std::vector<serve_core::TaskCore> &cores = client.cores;

    // Per-tenant metrics.
    double qos_sum = 0.0;
    std::size_t qos_count = 0;
    std::vector<double> all_latencies;
    for (std::size_t i = 0; i < n; ++i) {
        TenantMetrics m;
        m.job = jobs[i];
        m.resolvedBatch = costs[i].resolvedBatch > 0
                              ? costs[i].resolvedBatch
                              : jobs[i].batch;
        m.stepsDone = cores[i].done;
        m.completed = cores[i].completed;
        // Departed: the tenant's session ended with steps outstanding
        // and its departure (not the wall budget) is what ended it.
        m.departed = !cores[i].completed && jobs[i].departSec > 0.0 &&
                     (wall <= 0.0 || jobs[i].departSec < wall + kEps);
        m.endSec = cores[i].completed
                       ? cores[i].completionSec
                       : (m.departed ? std::min(jobs[i].departSec,
                                                out.makespanSec)
                                     : out.makespanSec);
        m.waitSec = run[i].started
                        ? run[i].firstStartSec - jobs[i].arrivalSec
                        : kNaN;
        const double window =
            std::max(0.0, m.endSec - jobs[i].arrivalSec);
        m.achievedStepsPerSec =
            window > 0.0 ? double(cores[i].done) / window
                         : (cores[i].done > 0 ? kInf : 0.0);
        m.isolatedStepsPerSec = safeRatio(1.0, costs[i].seconds);
        m.slowdown =
            safeRatio(m.isolatedStepsPerSec, m.achievedStepsPerSec);

        // QoS attainment: of the steps the target demanded by endSec,
        // the share that met their deadline.
        double demanded = kNaN;
        if (jobs[i].qosStepsPerSec > 0.0) {
            demanded = cores[i].completed
                           ? double(jobs[i].steps)
                           : std::floor(window * jobs[i].qosStepsPerSec);
            if (jobs[i].steps > 0)
                demanded = std::min(demanded, double(jobs[i].steps));
        } else if (jobs[i].qosDeadlineSec > 0.0) {
            // Deadline targets are validated to have bounded steps;
            // nothing is demanded until the deadline has passed.
            if (cores[i].completed || jobs[i].qosDeadlineSec <= m.endSec)
                demanded = double(jobs[i].steps);
        }
        if (std::isfinite(demanded) && demanded > 0.0) {
            m.qosAttainmentPct =
                100.0 *
                std::min(1.0, double(cores[i].metDeadlines) / demanded);
            qos_sum += m.qosAttainmentPct;
            ++qos_count;
        } else {
            m.qosAttainmentPct = kNaN;
        }

        m.stepLatency = computeLatencyStats(run[i].latencySec);
        all_latencies.insert(all_latencies.end(),
                             run[i].latencySec.begin(),
                             run[i].latencySec.end());

        m.energyJ = run[i].energyJ;
        m.switchesIn = run[i].switchesIn;
        out.totalEnergyJ += m.energyJ;
        out.tenants.push_back(std::move(m));
    }
    for (TenantMetrics &m : out.tenants)
        m.energyShare = safeRatio(m.energyJ, out.totalEnergyJ);
    out.meanQosAttainmentPct =
        qos_count > 0 ? qos_sum / double(qos_count) : kNaN;
    out.aggStepLatency = computeLatencyStatsSortedMean(std::move(all_latencies));
    return out;
}

std::vector<IterationCost>
isolatedCosts(const ServeSpec &spec, SweepRunner &runner,
              std::string *error)
{
    const std::string cfg_err = spec.config.validationError();
    if (!cfg_err.empty()) {
        *error = "invalid accelerator config: " + cfg_err;
        return {};
    }
    const std::string mix_err =
        spec.workload.validationError(spec.opts.wallLimitSec > 0.0);
    if (!mix_err.empty()) {
        *error = mix_err;
        return {};
    }

    // Resolve the allowed-backend list through the registry and check
    // that the substrate this spec needs is permitted.
    const char *needed = spec.chips > 1 ? "pod" : "chip";
    bool needed_allowed = spec.backends.empty();
    for (const std::string &name : spec.backends) {
        if (!BackendRegistry::instance().find(name)) {
            *error = "unknown backend '" + name + "'";
            return {};
        }
        needed_allowed = needed_allowed || name == needed;
    }
    if (!needed_allowed) {
        *error = "backend '" + std::string(needed) +
                 "' is not in the allowed --backends list";
        return {};
    }

    std::vector<Scenario> scenarios;
    scenarios.reserve(spec.workload.jobs.size());
    for (const TenantJob &job : spec.workload.jobs)
        scenarios.push_back(tenantScenario(spec, job));
    const SweepReport report = runner.run(scenarios);

    std::vector<IterationCost> costs;
    costs.reserve(report.results.size());
    for (std::size_t i = 0; i < report.results.size(); ++i) {
        const ScenarioResult &r = report.results[i];
        if (!r.ok()) {
            *error = "tenant '" + spec.workload.jobs[i].name + "': " +
                     r.error;
            return {};
        }
        IterationCost c;
        c.seconds = r.seconds;
        c.energyJ = r.energyJ;
        c.dramBytes = r.dramBytes;
        c.cycles = r.cycles;
        c.resolvedBatch = r.resolvedBatch;
        costs.push_back(c);
    }
    return costs;
}

ServeResult
simulateServe(const ServeSpec &spec, SweepRunner &runner)
{
    ServeResult out;
    out.workloadName = spec.workload.name;
    out.configName = spec.config.name;
    out.policy = spec.policy;
    out.chips = spec.chips;
    out.quantumIters = spec.opts.quantumIters;
    out.wallLimitSec = spec.opts.wallLimitSec;

    std::string err;
    const std::vector<IterationCost> costs =
        isolatedCosts(spec, runner, &err);
    if (!err.empty()) {
        out.error = err;
        return out;
    }

    const ContextSwitchModel switches(spec.config, spec.chips);
    return runServeLoop(spec, costs, switches.cost());
}

ServeResult
simulateServe(const ServeSpec &spec)
{
    SweepRunner runner;
    return simulateServe(spec, runner);
}

} // namespace diva
