#include "tenant/serve.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "backend/registry.h"

namespace diva
{

namespace
{

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kNone = std::size_t(-1);

/** Float slack for wall-budget and deadline comparisons. */
constexpr double kEps = 1e-9;

/** Mutable per-tenant state tracked by the scheduling loop. */
struct TenantRun
{
    std::uint64_t done = 0;
    std::uint64_t metDeadlines = 0;
    bool started = false;
    double firstStartSec = 0.0;
    bool completed = false;
    double completionSec = 0.0;
    double energyJ = 0.0;
    std::uint64_t switchesIn = 0;
};

/** Deadline of step `k` (1-based) of `job`; +inf without a target. */
double
stepDeadline(const TenantJob &job, std::uint64_t k)
{
    if (job.qosStepsPerSec > 0.0)
        return job.arrivalSec + double(k) / job.qosStepsPerSec;
    if (job.qosDeadlineSec > 0.0)
        return job.qosDeadlineSec;
    return kInf;
}

std::string
validateInputs(const ServeSpec &spec,
               const std::vector<IterationCost> &costs,
               const SwitchCost &sw)
{
    const bool wall_limited = spec.opts.wallLimitSec > 0.0;
    if (spec.opts.quantumIters < 1)
        return "quantum must be >= 1 iteration";
    if (!(spec.opts.wallLimitSec >= 0.0) ||
        !std::isfinite(spec.opts.wallLimitSec))
        return "wall budget must be finite and >= 0";
    if (spec.chips < 1)
        return "chip count must be >= 1";
    const std::string mix_err =
        spec.workload.validationError(wall_limited);
    if (!mix_err.empty())
        return mix_err;
    if (costs.size() != spec.workload.jobs.size())
        return "one iteration cost per tenant required";
    for (std::size_t i = 0; i < costs.size(); ++i)
        if (!(costs[i].seconds > 0.0) || !std::isfinite(costs[i].seconds) ||
            !(costs[i].energyJ >= 0.0) || !std::isfinite(costs[i].energyJ))
            return "tenant '" + spec.workload.jobs[i].name +
                   "': iteration cost must be positive and finite";
    if (!(sw.seconds >= 0.0) || !std::isfinite(sw.seconds) ||
        !(sw.energyJ >= 0.0) || !std::isfinite(sw.energyJ))
        return "context-switch cost must be finite and >= 0";
    return "";
}

} // namespace

double
safeRatio(double num, double den)
{
    if (den == 0.0 || !std::isfinite(den))
        return kNaN;
    return num / den;
}

Scenario
tenantScenario(const ServeSpec &spec, const TenantJob &job)
{
    Scenario s;
    s.config = spec.config;
    s.model = job.model;
    s.modelScale = job.modelScale;
    s.batch = job.batch;
    s.microbatch = job.microbatch;
    s.algorithm = job.algorithm;
    if (spec.chips > 1) {
        s.backend = SweepBackend::kMultiChip;
        s.pod = spec.pod;
        s.pod.numChips = spec.chips;
    }
    return s;
}

ServeResult
runServeLoop(const ServeSpec &spec, const std::vector<IterationCost> &costs,
             const SwitchCost &switchCost)
{
    ServeResult out;
    out.workloadName = spec.workload.name;
    out.configName = spec.config.name;
    out.policy = spec.policy;
    out.chips = spec.chips;
    out.quantumIters = spec.opts.quantumIters;
    out.wallLimitSec = spec.opts.wallLimitSec;
    out.error = validateInputs(spec, costs, switchCost);
    if (!out.ok())
        return out;

    // The loop works on a private copy of the jobs so fair-share QoS
    // targets can be filled in and echoed back through the metrics.
    std::vector<TenantJob> jobs = spec.workload.jobs;
    const std::size_t n = jobs.size();
    if (spec.opts.autoQosFairShare)
        for (std::size_t i = 0; i < n; ++i)
            if (!jobs[i].hasQos())
                jobs[i].qosStepsPerSec =
                    safeRatio(1.0, costs[i].seconds) / double(n);

    const double wall = spec.opts.wallLimitSec;
    std::vector<TenantRun> run(n);
    std::vector<SchedView> views(n);
    std::unique_ptr<Scheduler> sched = makeScheduler(spec.policy);
    double now = 0.0;
    std::size_t last = kNone;

    auto finished = [&](std::size_t i) {
        return jobs[i].steps > 0 && run[i].done >= jobs[i].steps;
    };

    for (;;) {
        if (wall > 0.0 && wall - now <= kEps)
            break;

        std::vector<std::size_t> ready;
        for (std::size_t i = 0; i < n; ++i)
            if (!finished(i) && jobs[i].arrivalSec <= now + kEps)
                ready.push_back(i);

        if (ready.empty()) {
            // Idle until the next arrival (if any work remains).
            double next_arrival = kInf;
            for (std::size_t i = 0; i < n; ++i)
                if (!finished(i))
                    next_arrival =
                        std::min(next_arrival, jobs[i].arrivalSec);
            if (!std::isfinite(next_arrival))
                break;
            // Arrivals at or past the wall can never be serviced; do
            // not let the idle jump carry `now` (and with it makespan
            // and every tenant's rate window) beyond the budget.
            if (wall > 0.0 && next_arrival + kEps >= wall)
                break;
            now = std::max(now, next_arrival);
            continue;
        }

        // Under a wall budget only steps that finish inside it run --
        // including the context switch a candidate would first incur,
        // so a switch is never billed for a step that then cannot run.
        if (wall > 0.0) {
            std::vector<std::size_t> fitting;
            for (std::size_t i : ready) {
                const double lead = (last != kNone && i != last)
                                        ? switchCost.seconds
                                        : 0.0;
                if (now + lead + costs[i].seconds <= wall + kEps)
                    fitting.push_back(i);
            }
            if (fitting.empty())
                break;
            ready.swap(fitting);
        }

        for (std::size_t i = 0; i < n; ++i) {
            views[i].arrivalSec = jobs[i].arrivalSec;
            views[i].priority = jobs[i].priority;
            views[i].stepsDone = run[i].done;
            views[i].nextDeadlineSec =
                stepDeadline(jobs[i], run[i].done + 1);
        }
        const std::size_t pick = sched->pick(views, ready, now);

        if (last != kNone && pick != last) {
            // Bill the tenant change: the engine stalls while the
            // outgoing working set flushes and the incoming one loads.
            ++out.contextSwitches;
            ++run[pick].switchesIn;
            now += switchCost.seconds;
            out.switchSec += switchCost.seconds;
            out.switchEnergyJ += switchCost.energyJ;
            out.switchDramBytes += switchCost.dramBytes;
            run[pick].energyJ += switchCost.energyJ;
        }
        last = pick;

        // Run up to one quantum of iterations, ending early on
        // completion, on the wall budget, or when a new arrival makes
        // a fresh scheduling decision due (preemption point).
        for (std::uint64_t q = 0; q < spec.opts.quantumIters; ++q) {
            if (finished(pick))
                break;
            if (wall > 0.0 && now + costs[pick].seconds > wall + kEps)
                break;
            const double start = now;
            if (!run[pick].started) {
                run[pick].started = true;
                run[pick].firstStartSec = now;
            }
            now += costs[pick].seconds;
            run[pick].energyJ += costs[pick].energyJ;
            ++run[pick].done;
            if (now <= stepDeadline(jobs[pick], run[pick].done) + kEps)
                ++run[pick].metDeadlines;
            if (finished(pick)) {
                run[pick].completed = true;
                run[pick].completionSec = now;
                break;
            }
            bool new_arrival = false;
            for (std::size_t i = 0; i < n && !new_arrival; ++i)
                new_arrival = i != pick && !finished(i) &&
                              jobs[i].arrivalSec > start + kEps &&
                              jobs[i].arrivalSec <= now + kEps;
            if (new_arrival)
                break;
        }
    }
    out.makespanSec = now;

    // Per-tenant metrics.
    double qos_sum = 0.0;
    std::size_t qos_count = 0;
    for (std::size_t i = 0; i < n; ++i) {
        TenantMetrics m;
        m.job = jobs[i];
        m.resolvedBatch = costs[i].resolvedBatch > 0
                              ? costs[i].resolvedBatch
                              : jobs[i].batch;
        m.stepsDone = run[i].done;
        m.completed = run[i].completed;
        m.endSec = run[i].completed ? run[i].completionSec
                                    : out.makespanSec;
        m.waitSec = run[i].started
                        ? run[i].firstStartSec - jobs[i].arrivalSec
                        : kNaN;
        const double window =
            std::max(0.0, m.endSec - jobs[i].arrivalSec);
        m.achievedStepsPerSec =
            window > 0.0 ? double(run[i].done) / window
                         : (run[i].done > 0 ? kInf : 0.0);
        m.isolatedStepsPerSec = safeRatio(1.0, costs[i].seconds);
        m.slowdown =
            safeRatio(m.isolatedStepsPerSec, m.achievedStepsPerSec);

        // QoS attainment: of the steps the target demanded by endSec,
        // the share that met their deadline.
        double demanded = kNaN;
        if (jobs[i].qosStepsPerSec > 0.0) {
            demanded = run[i].completed
                           ? double(jobs[i].steps)
                           : std::floor(window * jobs[i].qosStepsPerSec);
            if (jobs[i].steps > 0)
                demanded = std::min(demanded, double(jobs[i].steps));
        } else if (jobs[i].qosDeadlineSec > 0.0) {
            // Deadline targets are validated to have bounded steps;
            // nothing is demanded until the deadline has passed.
            if (run[i].completed || jobs[i].qosDeadlineSec <= m.endSec)
                demanded = double(jobs[i].steps);
        }
        if (std::isfinite(demanded) && demanded > 0.0) {
            m.qosAttainmentPct =
                100.0 *
                std::min(1.0, double(run[i].metDeadlines) / demanded);
            qos_sum += m.qosAttainmentPct;
            ++qos_count;
        } else {
            m.qosAttainmentPct = kNaN;
        }

        m.energyJ = run[i].energyJ;
        m.switchesIn = run[i].switchesIn;
        out.totalEnergyJ += m.energyJ;
        out.tenants.push_back(std::move(m));
    }
    for (TenantMetrics &m : out.tenants)
        m.energyShare = safeRatio(m.energyJ, out.totalEnergyJ);
    out.meanQosAttainmentPct =
        qos_count > 0 ? qos_sum / double(qos_count) : kNaN;
    return out;
}

ServeResult
simulateServe(const ServeSpec &spec, SweepRunner &runner)
{
    ServeResult out;
    out.workloadName = spec.workload.name;
    out.configName = spec.config.name;
    out.policy = spec.policy;
    out.chips = spec.chips;
    out.quantumIters = spec.opts.quantumIters;
    out.wallLimitSec = spec.opts.wallLimitSec;

    const std::string cfg_err = spec.config.validationError();
    if (!cfg_err.empty()) {
        out.error = "invalid accelerator config: " + cfg_err;
        return out;
    }
    const std::string mix_err =
        spec.workload.validationError(spec.opts.wallLimitSec > 0.0);
    if (!mix_err.empty()) {
        out.error = mix_err;
        return out;
    }

    // Resolve the allowed-backend list through the registry and check
    // that the substrate this spec needs is permitted.
    const char *needed = spec.chips > 1 ? "pod" : "chip";
    bool needed_allowed = spec.backends.empty();
    for (const std::string &name : spec.backends) {
        if (!BackendRegistry::instance().find(name)) {
            out.error = "unknown backend '" + name + "'";
            return out;
        }
        needed_allowed = needed_allowed || name == needed;
    }
    if (!needed_allowed) {
        out.error = "backend '" + std::string(needed) +
                    "' is not in the allowed --backends list";
        return out;
    }

    std::vector<Scenario> scenarios;
    scenarios.reserve(spec.workload.jobs.size());
    for (const TenantJob &job : spec.workload.jobs)
        scenarios.push_back(tenantScenario(spec, job));
    const SweepReport report = runner.run(scenarios);

    std::vector<IterationCost> costs;
    costs.reserve(report.results.size());
    for (std::size_t i = 0; i < report.results.size(); ++i) {
        const ScenarioResult &r = report.results[i];
        if (!r.ok()) {
            out.error = "tenant '" + spec.workload.jobs[i].name +
                        "': " + r.error;
            return out;
        }
        IterationCost c;
        c.seconds = r.seconds;
        c.energyJ = r.energyJ;
        c.dramBytes = r.dramBytes;
        c.cycles = r.cycles;
        c.resolvedBatch = r.resolvedBatch;
        costs.push_back(c);
    }

    const ContextSwitchModel switches(spec.config, spec.chips);
    return runServeLoop(spec, costs, switches.cost());
}

ServeResult
simulateServe(const ServeSpec &spec)
{
    SweepRunner runner;
    return simulateServe(spec, runner);
}

} // namespace diva
