#include "tenant/serve.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "backend/registry.h"

namespace diva
{

namespace
{

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kNone = std::size_t(-1);

/** Float slack for wall-budget and deadline comparisons. */
constexpr double kEps = 1e-9;

/** Mutable per-tenant state tracked by the scheduling loop. */
struct TenantRun
{
    std::uint64_t done = 0;
    std::uint64_t metDeadlines = 0;
    bool started = false;
    double firstStartSec = 0.0;
    bool completed = false;
    double completionSec = 0.0;
    double lastCompletionSec = 0.0;
    double energyJ = 0.0;
    std::uint64_t switchesIn = 0;

    /** Per-executed-step latency samples, chronological. */
    std::vector<double> latencySec;
};

/** Deadline of step `k` (1-based) of `job`; +inf without a target. */
double
stepDeadline(const TenantJob &job, std::uint64_t k)
{
    if (job.qosStepsPerSec > 0.0)
        return job.arrivalSec + double(k) / job.qosStepsPerSec;
    if (job.qosDeadlineSec > 0.0)
        return job.qosDeadlineSec;
    return kInf;
}

std::string
validateInputs(const ServeSpec &spec,
               const std::vector<IterationCost> &costs,
               const SwitchCost &sw)
{
    const bool wall_limited = spec.opts.wallLimitSec > 0.0;
    if (spec.opts.quantumIters < 1)
        return "quantum must be >= 1 iteration";
    if (!(spec.opts.wallLimitSec >= 0.0) ||
        !std::isfinite(spec.opts.wallLimitSec))
        return "wall budget must be finite and >= 0";
    if (spec.chips < 1)
        return "chip count must be >= 1";
    const std::string mix_err =
        spec.workload.validationError(wall_limited);
    if (!mix_err.empty())
        return mix_err;
    if (costs.size() != spec.workload.jobs.size())
        return "one iteration cost per tenant required";
    for (std::size_t i = 0; i < costs.size(); ++i)
        if (!(costs[i].seconds > 0.0) || !std::isfinite(costs[i].seconds) ||
            !(costs[i].energyJ >= 0.0) || !std::isfinite(costs[i].energyJ))
            return "tenant '" + spec.workload.jobs[i].name +
                   "': iteration cost must be positive and finite";
    if (!(sw.seconds >= 0.0) || !std::isfinite(sw.seconds) ||
        !(sw.energyJ >= 0.0) || !std::isfinite(sw.energyJ))
        return "context-switch cost must be finite and >= 0";
    return "";
}

} // namespace

std::size_t
ServeResult::admittedCount() const
{
    std::size_t admitted = 0;
    for (const TenantMetrics &t : tenants)
        admitted += t.admitted ? 1 : 0;
    return admitted;
}

double
safeRatio(double num, double den)
{
    if (den == 0.0 || !std::isfinite(den))
        return kNaN;
    return num / den;
}

Scenario
tenantScenario(const ServeSpec &spec, const TenantJob &job)
{
    Scenario s;
    s.config = spec.config;
    s.model = job.model;
    s.modelScale = job.modelScale;
    s.batch = job.batch;
    s.microbatch = job.microbatch;
    s.algorithm = job.algorithm;
    if (spec.chips > 1) {
        s.backend = SweepBackend::kMultiChip;
        s.pod = spec.pod;
        s.pod.numChips = spec.chips;
    }
    return s;
}

ServeResult
runServeLoop(const ServeSpec &spec, const std::vector<IterationCost> &costs,
             const SwitchCost &switchCost)
{
    ServeResult out;
    out.workloadName = spec.workload.name;
    out.configName = spec.config.name;
    out.policy = spec.policy;
    out.chips = spec.chips;
    out.quantumIters = spec.opts.quantumIters;
    out.wallLimitSec = spec.opts.wallLimitSec;
    out.error = validateInputs(spec, costs, switchCost);
    if (!out.ok())
        return out;

    // The loop works on a private copy of the jobs so fair-share QoS
    // targets can be filled in and echoed back through the metrics.
    std::vector<TenantJob> jobs = spec.workload.jobs;
    const std::size_t n = jobs.size();
    if (spec.opts.autoQosFairShare)
        for (std::size_t i = 0; i < n; ++i)
            if (!jobs[i].hasQos())
                jobs[i].qosStepsPerSec =
                    safeRatio(1.0, costs[i].seconds) / double(n);

    const double wall = spec.opts.wallLimitSec;
    const bool open_loop = spec.opts.openLoop;
    std::vector<TenantRun> run(n);
    std::vector<SchedView> views(n);
    std::unique_ptr<Scheduler> sched = makeScheduler(spec.policy);
    double now = 0.0;
    std::size_t last = kNone;

    auto finished = [&](std::size_t i) {
        return jobs[i].steps > 0 && run[i].done >= jobs[i].steps;
    };
    // Open-loop gating: a rate-target tenant only becomes runnable
    // when the trace clock has issued its next step.
    auto openGated = [&](std::size_t i) {
        return open_loop && jobs[i].qosStepsPerSec > 0.0;
    };
    auto nextDueSec = [&](std::size_t i) {
        return jobs[i].arrivalSec +
               double(run[i].done) / jobs[i].qosStepsPerSec;
    };
    // Whether one more step (after `lead` of switch stall) would end
    // past the tenant's departure; such a tenant can never run again.
    auto departBlocked = [&](std::size_t i, double lead) {
        return jobs[i].departSec > 0.0 &&
               now + lead + costs[i].seconds > jobs[i].departSec + kEps;
    };
    auto switchLead = [&](std::size_t i) {
        return (last != kNone && i != last) ? switchCost.seconds : 0.0;
    };

    for (;;) {
        if (wall > 0.0 && wall - now <= kEps)
            break;

        std::vector<std::size_t> ready;
        for (std::size_t i = 0; i < n; ++i)
            if (!finished(i) && jobs[i].arrivalSec <= now + kEps &&
                !departBlocked(i, switchLead(i)) &&
                (!openGated(i) || nextDueSec(i) <= now + kEps))
                ready.push_back(i);

        if (ready.empty()) {
            // Idle until the next event that makes a tenant runnable:
            // an arrival, or (open loop) the next step coming due.
            // Events past a tenant's departure window can never be
            // serviced and are skipped.
            double next_event = kInf;
            for (std::size_t i = 0; i < n; ++i) {
                if (finished(i))
                    continue;
                double event;
                if (jobs[i].arrivalSec > now + kEps)
                    event = jobs[i].arrivalSec;
                else if (openGated(i) && nextDueSec(i) > now + kEps)
                    event = nextDueSec(i);
                else
                    continue; // arrived but departure-blocked: done
                // `last` cannot change while the engine idles, so the
                // switch lead the tenant would pay at `event` is the
                // lead it would pay now -- include it, or the jump
                // lands on an arrival the ready scan then rejects and
                // the makespan inflates with no work run.
                if (jobs[i].departSec > 0.0 &&
                    event + switchLead(i) + costs[i].seconds >
                        jobs[i].departSec + kEps)
                    continue; // would run past its departure
                next_event = std::min(next_event, event);
            }
            if (!std::isfinite(next_event))
                break;
            // Events at or past the wall can never be serviced; do
            // not let the idle jump carry `now` (and with it makespan
            // and every tenant's rate window) beyond the budget.
            if (wall > 0.0 && next_event + kEps >= wall)
                break;
            now = std::max(now, next_event);
            continue;
        }

        // Under a wall budget only steps that finish inside it run --
        // including the context switch a candidate would first incur,
        // so a switch is never billed for a step that then cannot run.
        if (wall > 0.0) {
            std::vector<std::size_t> fitting;
            for (std::size_t i : ready) {
                const double lead = (last != kNone && i != last)
                                        ? switchCost.seconds
                                        : 0.0;
                if (now + lead + costs[i].seconds <= wall + kEps)
                    fitting.push_back(i);
            }
            if (fitting.empty())
                break;
            ready.swap(fitting);
        }

        for (std::size_t i = 0; i < n; ++i) {
            views[i].arrivalSec = jobs[i].arrivalSec;
            views[i].priority = jobs[i].priority;
            views[i].stepsDone = run[i].done;
            views[i].nextDeadlineSec =
                stepDeadline(jobs[i], run[i].done + 1);
        }
        const std::size_t pick = sched->pick(views, ready, now);

        if (last != kNone && pick != last) {
            // Bill the tenant change: the engine stalls while the
            // outgoing working set flushes and the incoming one loads.
            ++out.contextSwitches;
            ++run[pick].switchesIn;
            now += switchCost.seconds;
            out.switchSec += switchCost.seconds;
            out.switchEnergyJ += switchCost.energyJ;
            out.switchDramBytes += switchCost.dramBytes;
            run[pick].energyJ += switchCost.energyJ;
        }
        last = pick;

        // Run up to one quantum of iterations, ending early on
        // completion, on the wall budget, or when a new arrival makes
        // a fresh scheduling decision due (preemption point).
        for (std::uint64_t q = 0; q < spec.opts.quantumIters; ++q) {
            if (finished(pick))
                break;
            if (wall > 0.0 && now + costs[pick].seconds > wall + kEps)
                break;
            if (departBlocked(pick, 0.0))
                break;
            if (openGated(pick) && nextDueSec(pick) > now + kEps)
                break; // next step not issued yet
            const double start = now;
            if (!run[pick].started) {
                run[pick].started = true;
                run[pick].firstStartSec = now;
            }
            // The step's reference point for latency: its open-loop
            // due time, or (closed loop) the moment it became
            // eligible -- arrival for the first step, the previous
            // completion after that.
            const double eligible =
                openGated(pick)
                    ? nextDueSec(pick)
                    : std::max(jobs[pick].arrivalSec,
                               run[pick].done > 0
                                   ? run[pick].lastCompletionSec
                                   : jobs[pick].arrivalSec);
            now += costs[pick].seconds;
            run[pick].energyJ += costs[pick].energyJ;
            ++run[pick].done;
            run[pick].latencySec.push_back(now - eligible);
            run[pick].lastCompletionSec = now;
            if (now <= stepDeadline(jobs[pick], run[pick].done) + kEps)
                ++run[pick].metDeadlines;
            if (finished(pick)) {
                run[pick].completed = true;
                run[pick].completionSec = now;
                break;
            }
            bool new_arrival = false;
            for (std::size_t i = 0; i < n && !new_arrival; ++i)
                new_arrival = i != pick && !finished(i) &&
                              jobs[i].arrivalSec > start + kEps &&
                              jobs[i].arrivalSec <= now + kEps;
            if (new_arrival)
                break;
        }
    }
    out.makespanSec = now;

    // Per-tenant metrics.
    double qos_sum = 0.0;
    std::size_t qos_count = 0;
    std::vector<double> all_latencies;
    for (std::size_t i = 0; i < n; ++i) {
        TenantMetrics m;
        m.job = jobs[i];
        m.resolvedBatch = costs[i].resolvedBatch > 0
                              ? costs[i].resolvedBatch
                              : jobs[i].batch;
        m.stepsDone = run[i].done;
        m.completed = run[i].completed;
        // Departed: the tenant's session ended with steps outstanding
        // and its departure (not the wall budget) is what ended it.
        m.departed = !run[i].completed && jobs[i].departSec > 0.0 &&
                     (wall <= 0.0 || jobs[i].departSec < wall + kEps);
        m.endSec = run[i].completed
                       ? run[i].completionSec
                       : (m.departed ? std::min(jobs[i].departSec,
                                                out.makespanSec)
                                     : out.makespanSec);
        m.waitSec = run[i].started
                        ? run[i].firstStartSec - jobs[i].arrivalSec
                        : kNaN;
        const double window =
            std::max(0.0, m.endSec - jobs[i].arrivalSec);
        m.achievedStepsPerSec =
            window > 0.0 ? double(run[i].done) / window
                         : (run[i].done > 0 ? kInf : 0.0);
        m.isolatedStepsPerSec = safeRatio(1.0, costs[i].seconds);
        m.slowdown =
            safeRatio(m.isolatedStepsPerSec, m.achievedStepsPerSec);

        // QoS attainment: of the steps the target demanded by endSec,
        // the share that met their deadline.
        double demanded = kNaN;
        if (jobs[i].qosStepsPerSec > 0.0) {
            demanded = run[i].completed
                           ? double(jobs[i].steps)
                           : std::floor(window * jobs[i].qosStepsPerSec);
            if (jobs[i].steps > 0)
                demanded = std::min(demanded, double(jobs[i].steps));
        } else if (jobs[i].qosDeadlineSec > 0.0) {
            // Deadline targets are validated to have bounded steps;
            // nothing is demanded until the deadline has passed.
            if (run[i].completed || jobs[i].qosDeadlineSec <= m.endSec)
                demanded = double(jobs[i].steps);
        }
        if (std::isfinite(demanded) && demanded > 0.0) {
            m.qosAttainmentPct =
                100.0 *
                std::min(1.0, double(run[i].metDeadlines) / demanded);
            qos_sum += m.qosAttainmentPct;
            ++qos_count;
        } else {
            m.qosAttainmentPct = kNaN;
        }

        m.stepLatency = computeLatencyStats(run[i].latencySec);
        all_latencies.insert(all_latencies.end(),
                             run[i].latencySec.begin(),
                             run[i].latencySec.end());

        m.energyJ = run[i].energyJ;
        m.switchesIn = run[i].switchesIn;
        out.totalEnergyJ += m.energyJ;
        out.tenants.push_back(std::move(m));
    }
    for (TenantMetrics &m : out.tenants)
        m.energyShare = safeRatio(m.energyJ, out.totalEnergyJ);
    out.meanQosAttainmentPct =
        qos_count > 0 ? qos_sum / double(qos_count) : kNaN;
    out.aggStepLatency = computeLatencyStats(std::move(all_latencies));
    return out;
}

std::vector<IterationCost>
isolatedCosts(const ServeSpec &spec, SweepRunner &runner,
              std::string *error)
{
    const std::string cfg_err = spec.config.validationError();
    if (!cfg_err.empty()) {
        *error = "invalid accelerator config: " + cfg_err;
        return {};
    }
    const std::string mix_err =
        spec.workload.validationError(spec.opts.wallLimitSec > 0.0);
    if (!mix_err.empty()) {
        *error = mix_err;
        return {};
    }

    // Resolve the allowed-backend list through the registry and check
    // that the substrate this spec needs is permitted.
    const char *needed = spec.chips > 1 ? "pod" : "chip";
    bool needed_allowed = spec.backends.empty();
    for (const std::string &name : spec.backends) {
        if (!BackendRegistry::instance().find(name)) {
            *error = "unknown backend '" + name + "'";
            return {};
        }
        needed_allowed = needed_allowed || name == needed;
    }
    if (!needed_allowed) {
        *error = "backend '" + std::string(needed) +
                 "' is not in the allowed --backends list";
        return {};
    }

    std::vector<Scenario> scenarios;
    scenarios.reserve(spec.workload.jobs.size());
    for (const TenantJob &job : spec.workload.jobs)
        scenarios.push_back(tenantScenario(spec, job));
    const SweepReport report = runner.run(scenarios);

    std::vector<IterationCost> costs;
    costs.reserve(report.results.size());
    for (std::size_t i = 0; i < report.results.size(); ++i) {
        const ScenarioResult &r = report.results[i];
        if (!r.ok()) {
            *error = "tenant '" + spec.workload.jobs[i].name + "': " +
                     r.error;
            return {};
        }
        IterationCost c;
        c.seconds = r.seconds;
        c.energyJ = r.energyJ;
        c.dramBytes = r.dramBytes;
        c.cycles = r.cycles;
        c.resolvedBatch = r.resolvedBatch;
        costs.push_back(c);
    }
    return costs;
}

ServeResult
simulateServe(const ServeSpec &spec, SweepRunner &runner)
{
    ServeResult out;
    out.workloadName = spec.workload.name;
    out.configName = spec.config.name;
    out.policy = spec.policy;
    out.chips = spec.chips;
    out.quantumIters = spec.opts.quantumIters;
    out.wallLimitSec = spec.opts.wallLimitSec;

    std::string err;
    const std::vector<IterationCost> costs =
        isolatedCosts(spec, runner, &err);
    if (!err.empty()) {
        out.error = err;
        return out;
    }

    const ContextSwitchModel switches(spec.config, spec.chips);
    return runServeLoop(spec, costs, switches.cost());
}

ServeResult
simulateServe(const ServeSpec &spec)
{
    SweepRunner runner;
    return simulateServe(spec, runner);
}

} // namespace diva
