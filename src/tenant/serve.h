/**
 * @file
 * Event-driven time-sharing serve simulator: N tenant training jobs
 * share one accelerator (or data-parallel pod) under a scheduling
 * policy, with Executor/SimResult iteration costs as the quantum
 * granularity and a context-switch bill charged whenever the running
 * tenant changes.
 *
 * The expensive part -- each tenant's isolated per-iteration cost --
 * is obtained by running ordinary sweep scenarios through a
 * SweepRunner, so tenant serves share the sweep engine's in-memory and
 * on-disk result caches: re-serving a mix under a different policy
 * re-simulates nothing. The scheduling loop itself is sequential,
 * closed-form arithmetic, so serve results are byte-deterministic
 * whatever the runner's thread count.
 */

#ifndef DIVA_TENANT_SERVE_H
#define DIVA_TENANT_SERVE_H

#include <cstdint>
#include <string>
#include <vector>

#include "arch/accelerator_config.h"
#include "common/percentile.h"
#include "serve_core/core.h"
#include "sim/multichip.h"
#include "sweep/runner.h"
#include "tenant/context_switch.h"
#include "tenant/scheduler.h"
#include "tenant/tenant.h"

namespace diva
{

namespace obs
{
class TraceTrack;
struct RunTelemetry;
}

/** Serve-loop knobs independent of the workload and platform. */
struct ServeOptions
{
    /** Training iterations per scheduling quantum (>= 1). */
    std::uint64_t quantumIters = 1;

    /**
     * Wall-clock budget in simulated seconds; 0 = run until every
     * bounded tenant completes (duration mode sets this and may leave
     * tenant step counts unbounded).
     */
    double wallLimitSec = 0.0;

    /**
     * Give tenants without an explicit QoS target a fair-share rate
     * target: isolated steps/sec divided by the number of tenants.
     */
    bool autoQosFairShare = false;

    /**
     * Open-loop serving (trace replay): a tenant with a rate target
     * only becomes runnable when its next step is due (arrival +
     * done/rate), i.e. steps are issued by the trace clock rather
     * than back-to-back, and step latency is measured from the due
     * time. Tenants without a rate target are always eligible. Off
     * (closed loop): tenants run whenever scheduled and latency is
     * measured from step eligibility (arrival / previous completion).
     */
    bool openLoop = false;

    /**
     * Optional sim-time trace destination (see obs/trace.h). The
     * serve loop is sequential, so one single-writer track suffices:
     * step spans and context-switch instants land here. Null (the
     * default) disables tracing; results are unaffected either way.
     */
    obs::TraceTrack *traceTrack = nullptr;

    /**
     * Optional windowed-telemetry destination (see obs/slo.h). When
     * set, the loop records each step's exact latency decomposition
     * into per-tenant and per-priority windows, publishes them as
     * `serve.<policy>.`-prefixed series/sketches, and -- when the
     * bundle's SLO spec monitors anything -- fills the attainment
     * report. The window width is resolved from the workload if the
     * caller has not pinned it. Null (the default) disables all of it;
     * serve results are byte-identical either way.
     */
    obs::RunTelemetry *telemetry = nullptr;
};

/** Everything one serve simulation needs. */
struct ServeSpec
{
    TenantWorkload workload;

    /** The shared accelerator design point. */
    AcceleratorConfig config;

    /** Chip count; > 1 time-shares a data-parallel pod. */
    int chips = 1;

    /** Pod link parameters (used when chips > 1). */
    MultiChipConfig pod;

    SchedPolicy policy = SchedPolicy::kRoundRobin;

    /**
     * Simulation backends the serve may price isolated costs on, by
     * BackendRegistry name; empty = any. Every name must resolve
     * through the registry, and the backend the spec actually needs
     * ("pod" when chips > 1, else "chip") must be in the list --
     * otherwise simulateServe returns an error-carrying result.
     */
    std::vector<std::string> backends;

    ServeOptions opts;
};

/** Per-tenant isolated iteration cost feeding the serve loop. */
struct IterationCost
{
    /** Wall-clock seconds of one isolated training iteration. */
    double seconds = 0.0;

    /** Joules of one isolated training iteration. */
    double energyJ = 0.0;

    /** Off-chip bytes of one isolated training iteration. */
    Bytes dramBytes = 0;

    Cycles cycles = 0;

    /** Mini-batch after kAutoBatch resolution. */
    int resolvedBatch = 0;
};

/** What one tenant experienced over the serve run. */
struct TenantMetrics
{
    /** The job as served (auto QoS targets filled in). */
    TenantJob job;

    int resolvedBatch = 0;

    std::uint64_t stepsDone = 0;

    /** Whether the job's full step budget completed. */
    bool completed = false;

    /** Whether the tenant left at departSec with steps outstanding. */
    bool departed = false;

    /**
     * Whether the admission controller let the tenant in. Always true
     * for serves without admission control; rejected tenants keep
     * their row with zero steps and NaN rates.
     */
    bool admitted = true;

    /**
     * End of the tenant's service window: completion time if it
     * completed, else its departure, else the end of the simulation.
     */
    double endSec = 0.0;

    /** Seconds between arrival and first scheduled step (NaN if none). */
    double waitSec = 0.0;

    /** stepsDone over the service window (arrival -> endSec). */
    double achievedStepsPerSec = 0.0;

    /** Steps/sec the tenant would sustain alone on the accelerator. */
    double isolatedStepsPerSec = 0.0;

    /**
     * isolated rate / achieved rate (>= 1 when sharing hurts); NaN
     * when the achieved rate is zero or non-finite.
     */
    double slowdown = 0.0;

    /**
     * QoS attainment in percent: of the steps the target demanded by
     * endSec, the share that completed by their deadline (capped at
     * 100). NaN for tenants without a target or before the target
     * demands anything.
     */
    double qosAttainmentPct = 0.0;

    /**
     * Exact-sort tail latency of this tenant's executed steps. Open
     * loop measures completion minus the step's due time; closed loop
     * measures completion minus eligibility (arrival or previous
     * completion). count 0 / NaN stats when no step ran.
     */
    LatencyStats stepLatency;

    /** Joules consumed: executed steps + switches into this tenant. */
    double energyJ = 0.0;

    /** energyJ over the run's total joules (NaN if total is zero). */
    double energyShare = 0.0;

    /** Context switches that loaded this tenant onto the engine. */
    std::uint64_t switchesIn = 0;
};

/** Outcome of one serve simulation. */
struct ServeResult
{
    /** Inputs echoed for reporting. */
    std::string workloadName;
    std::string configName;
    SchedPolicy policy = SchedPolicy::kRoundRobin;
    int chips = 1;
    std::uint64_t quantumIters = 1;
    double wallLimitSec = 0.0;

    std::vector<TenantMetrics> tenants;

    /** End of the last serviced work (switches included). */
    double makespanSec = 0.0;

    /** Joules over the whole run (tenant energies sum to this). */
    double totalEnergyJ = 0.0;

    std::uint64_t contextSwitches = 0;

    /** Time / energy / traffic lost to context switches. */
    double switchSec = 0.0;
    double switchEnergyJ = 0.0;
    Bytes switchDramBytes = 0;

    /** Mean attainment over tenants with targets; NaN if none. */
    double meanQosAttainmentPct = 0.0;

    /** Tail latency over every executed step of every tenant. */
    LatencyStats aggStepLatency;

    /**
     * serve_core event counters for this run (steps, dispatches,
     * coalesced quanta, promotions, idle jumps, switches, retires).
     * Reporting-only: not emitted in CSV/JSON, surfaced by bench_serve.
     */
    serve_core::Counters coreCounters;

    /** Non-empty when the serve could not run (bad spec, sim error). */
    std::string error;

    bool ok() const { return error.empty(); }

    /** Tenants the admission controller let in (all, without one). */
    std::size_t admittedCount() const;
};

/**
 * num / den with the zero/non-finite denominator guarded to NaN
 * (rendered as "nan" in CSV and null in JSON by the emit helpers).
 */
double safeRatio(double num, double den);

/**
 * The scheduling loop alone, over explicit per-tenant iteration costs
 * (costs[i] belongs to workload.jobs[i]) and an explicit switch bill.
 * Exposed for tests and custom cost models; validates the spec and
 * costs, returning an error-carrying result instead of running on bad
 * input.
 */
ServeResult runServeLoop(const ServeSpec &spec,
                         const std::vector<IterationCost> &costs,
                         const SwitchCost &switchCost);

/**
 * Each tenant's isolated iteration cost, priced by running its sweep
 * scenario through `runner` (cache-, disk-cache- and thread-pool-
 * aware). Validates the spec's config, workload and backend list
 * first; on any failure returns an empty vector and sets *error.
 * Exposed so the arrival-trace replay engine can price tenants (and
 * decide admission) without re-implementing the pipeline.
 */
std::vector<IterationCost> isolatedCosts(const ServeSpec &spec,
                                         SweepRunner &runner,
                                         std::string *error);

/**
 * Full pipeline: derive each tenant's isolated iteration cost by
 * running its sweep scenario through `runner` (cache-, disk-cache- and
 * thread-pool-aware), derive the switch bill from the spec's
 * accelerator, then run the scheduling loop.
 */
ServeResult simulateServe(const ServeSpec &spec, SweepRunner &runner);

/** Convenience overload with a private single-threaded runner. */
ServeResult simulateServe(const ServeSpec &spec);

/** The sweep scenario whose result prices one tenant's iteration. */
Scenario tenantScenario(const ServeSpec &spec, const TenantJob &job);

} // namespace diva

#endif // DIVA_TENANT_SERVE_H
