#include "tenant/context_switch.h"

#include <algorithm>
#include <cmath>

#include "energy/energy_model.h"
#include "mem/dram_model.h"

namespace diva
{

ContextSwitchModel::ContextSwitchModel(const AcceleratorConfig &cfg,
                                       int chips,
                                       double workingSetFraction)
{
    if (chips < 1)
        chips = 1;
    if (!std::isfinite(workingSetFraction) || workingSetFraction <= 0.0)
        workingSetFraction = 1.0;
    workingSetFraction = std::min(workingSetFraction, 1.0);
    // The live working set is the SRAM share a switch actually moves;
    // rounding up keeps a non-empty transfer for any fraction > 0.
    const Bytes ws_bytes = Bytes(
        std::ceil(double(cfg.sramBytes) * workingSetFraction));
    const DramModel dram(cfg);
    // Flush (SRAM -> DRAM write) and refill (DRAM -> SRAM read) are
    // two dependent streaming transfers: the refill cannot start until
    // the flush has drained, so each is charged its own access latency.
    cost_.cycles =
        dram.transferCycles(ws_bytes) + dram.transferCycles(ws_bytes);
    cost_.seconds = cfg.cyclesToSeconds(cost_.cycles);
    const Bytes per_chip_bytes = 2 * ws_bytes;
    cost_.dramBytes = per_chip_bytes * Bytes(chips);
    // Every byte crosses both the SRAM port and the DRAM interface;
    // the GEMM engine (and PPU) sit idle but powered for the stall.
    cost_.energyJ =
        double(cost_.dramBytes) * (EnergyModel::kSramJoulesPerByte +
                                   EnergyModel::kDramJoulesPerByte) +
        EnergyModel::enginePowerW(cfg) * cost_.seconds * double(chips);
}

} // namespace diva
