#include "tenant/context_switch.h"

#include "energy/energy_model.h"
#include "mem/dram_model.h"

namespace diva
{

ContextSwitchModel::ContextSwitchModel(const AcceleratorConfig &cfg,
                                       int chips)
{
    if (chips < 1)
        chips = 1;
    const DramModel dram(cfg);
    // Flush (SRAM -> DRAM write) and refill (DRAM -> SRAM read) are
    // two dependent streaming transfers: the refill cannot start until
    // the flush has drained, so each is charged its own access latency.
    cost_.cycles = dram.transferCycles(cfg.sramBytes) +
                   dram.transferCycles(cfg.sramBytes);
    cost_.seconds = cfg.cyclesToSeconds(cost_.cycles);
    const Bytes per_chip_bytes = 2 * cfg.sramBytes;
    cost_.dramBytes = per_chip_bytes * Bytes(chips);
    // Every byte crosses both the SRAM port and the DRAM interface;
    // the GEMM engine (and PPU) sit idle but powered for the stall.
    cost_.energyJ =
        double(cost_.dramBytes) * (EnergyModel::kSramJoulesPerByte +
                                   EnergyModel::kDramJoulesPerByte) +
        EnergyModel::enginePowerW(cfg) * cost_.seconds * double(chips);
}

} // namespace diva
