/**
 * @file
 * Deterministic CSV and JSON emitters for serve results, mirroring the
 * sweep emitters: output is a pure function of the results (one CSV
 * row per tenant per serve run), doubles go through formatDouble /
 * jsonNumber so NaN renders as "nan" in CSV and null in JSON, and a
 * parallel-backed serve emits bytes identical to a serial one.
 */

#ifndef DIVA_TENANT_EMIT_H
#define DIVA_TENANT_EMIT_H

#include <ostream>
#include <string>
#include <vector>

#include "tenant/serve.h"

namespace diva
{

/** Header matching serveCsvRow()'s columns. */
std::string serveCsvHeader();

/** One CSV row for one tenant of one serve run. */
std::string serveCsvRow(const ServeResult &serve,
                        const TenantMetrics &tenant);

/**
 * Emit header + one row per tenant per serve run. Failed runs emit a
 * single row with tenant "-" and the error column filled.
 */
void writeServeCsv(std::ostream &os,
                   const std::vector<ServeResult> &serves);

/** Emit the serve runs as one JSON document. */
void writeServeJson(std::ostream &os,
                    const std::vector<ServeResult> &serves);

} // namespace diva

#endif // DIVA_TENANT_EMIT_H
