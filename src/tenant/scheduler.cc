#include "tenant/scheduler.h"

#include <algorithm>
#include <cctype>

#include "common/logging.h"

namespace diva
{

const char *
policyName(SchedPolicy p)
{
    switch (p) {
      case SchedPolicy::kFifo: return "fifo";
      case SchedPolicy::kRoundRobin: return "rr";
      case SchedPolicy::kPriority: return "prio";
      case SchedPolicy::kEdf: return "edf";
    }
    return "?";
}

std::optional<SchedPolicy>
policyFromName(const std::string &name)
{
    std::string s;
    for (char c : name)
        s += char(std::tolower(static_cast<unsigned char>(c)));
    if (s == "fifo")
        return SchedPolicy::kFifo;
    if (s == "rr" || s == "round-robin" || s == "roundrobin")
        return SchedPolicy::kRoundRobin;
    if (s == "prio" || s == "priority")
        return SchedPolicy::kPriority;
    if (s == "edf" || s == "earliest-deadline-first" || s == "deadline")
        return SchedPolicy::kEdf;
    return std::nullopt;
}

std::vector<SchedPolicy>
allPolicies()
{
    return {SchedPolicy::kFifo, SchedPolicy::kRoundRobin,
            SchedPolicy::kPriority, SchedPolicy::kEdf};
}

namespace
{

/**
 * Pick the ready tenant minimizing `betterThan` with deterministic
 * (arrival, index) tie-breaking: candidates are visited in ascending
 * index order and only a strictly better key displaces the incumbent.
 */
template <typename KeyFn>
std::size_t
pickByKey(const std::vector<SchedView> &tenants,
          const std::vector<std::size_t> &ready, KeyFn key)
{
    std::size_t best = ready.front();
    for (std::size_t i : ready) {
        const auto ki = key(tenants[i]);
        const auto kb = key(tenants[best]);
        if (ki < kb)
            best = i;
    }
    return best;
}

class FifoScheduler final : public Scheduler
{
  public:
    SchedPolicy policy() const override { return SchedPolicy::kFifo; }

    std::size_t
    pick(const std::vector<SchedView> &tenants,
         const std::vector<std::size_t> &ready, double) override
    {
        // Earliest arrival wins and keeps winning until it completes,
        // so FIFO is non-preemptive by construction.
        return pickByKey(tenants, ready, [](const SchedView &t) {
            return t.arrivalSec;
        });
    }
};

class RoundRobinScheduler final : public Scheduler
{
  public:
    SchedPolicy policy() const override
    {
        return SchedPolicy::kRoundRobin;
    }

    std::size_t
    pick(const std::vector<SchedView> &,
         const std::vector<std::size_t> &ready, double) override
    {
        // First ready tenant at or after the rotation cursor, wrapping
        // around; the cursor then moves past the pick so every ready
        // tenant gets a slice before any repeats.
        std::size_t best = ready.front();
        bool found = false;
        for (std::size_t i : ready)
            if (i >= next_) {
                best = i;
                found = true;
                break;
            }
        if (!found)
            best = ready.front(); // wrap
        next_ = best + 1;
        return best;
    }

  private:
    std::size_t next_ = 0;
};

class PriorityScheduler final : public Scheduler
{
  public:
    SchedPolicy policy() const override { return SchedPolicy::kPriority; }

    std::size_t
    pick(const std::vector<SchedView> &tenants,
         const std::vector<std::size_t> &ready, double) override
    {
        // Highest priority, then earliest arrival.
        return pickByKey(tenants, ready, [](const SchedView &t) {
            return std::make_pair(-t.priority, t.arrivalSec);
        });
    }
};

class EdfScheduler final : public Scheduler
{
  public:
    SchedPolicy policy() const override { return SchedPolicy::kEdf; }

    std::size_t
    pick(const std::vector<SchedView> &tenants,
         const std::vector<std::size_t> &ready, double) override
    {
        // Earliest next-step deadline; tenants without QoS carry an
        // infinite deadline and therefore yield to any targeted one.
        return pickByKey(tenants, ready, [](const SchedView &t) {
            return std::make_pair(t.nextDeadlineSec, t.arrivalSec);
        });
    }
};

} // namespace

std::unique_ptr<Scheduler>
makeScheduler(SchedPolicy policy)
{
    switch (policy) {
      case SchedPolicy::kFifo:
        return std::make_unique<FifoScheduler>();
      case SchedPolicy::kRoundRobin:
        return std::make_unique<RoundRobinScheduler>();
      case SchedPolicy::kPriority:
        return std::make_unique<PriorityScheduler>();
      case SchedPolicy::kEdf:
        return std::make_unique<EdfScheduler>();
    }
    DIVA_PANIC("unhandled scheduling policy");
}

} // namespace diva
