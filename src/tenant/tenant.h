/**
 * @file
 * Multi-tenant workload specification for the time-sharing scheduler
 * simulator: each tenant is one training job (a network-zoo model,
 * batch size and training algorithm) with an arrival time, a priority,
 * a step budget and an optional QoS target expressed either as a
 * sustained rate (steps/sec) or as an absolute completion deadline.
 */

#ifndef DIVA_TENANT_TENANT_H
#define DIVA_TENANT_TENANT_H

#include <cstdint>
#include <string>
#include <vector>

#include "train/algorithm.h"

namespace diva
{

/** One tenant's training job time-sharing the accelerator. */
struct TenantJob
{
    /** Display name, e.g. "t0:ResNet-50". */
    std::string name;

    /** Network-zoo model name (see knownModels()). */
    std::string model;

    /** Input scale: image side / sequence length; 0 = paper default. */
    int modelScale = 0;

    /** Mini-batch size; kAutoBatch (0) = largest batch that fits. */
    int batch = 32;

    /** Micro-batch size for gradient accumulation; 0 = monolithic. */
    int microbatch = 0;

    TrainingAlgorithm algorithm = TrainingAlgorithm::kDpSgdR;

    /** Simulated time at which the job becomes runnable. */
    double arrivalSec = 0.0;

    /**
     * Simulated time at which the tenant leaves, finished or not
     * (trace replay: sessions end). 0 = stays until completion. Must
     * exceed arrivalSec when set.
     */
    double departSec = 0.0;

    /** Strict-priority rank; larger = more important. */
    int priority = 0;

    /**
     * Training steps (iterations) the job wants to run. 0 = unbounded,
     * which is only valid under a wall-clock budget (duration mode) or
     * with a departure time (trace replay).
     */
    std::uint64_t steps = 0;

    /**
     * Rate-type QoS target in training steps per second; step k's
     * deadline is arrivalSec + k / qosStepsPerSec. 0 = no rate target.
     */
    double qosStepsPerSec = 0.0;

    /**
     * Deadline-type QoS target: absolute simulated time by which every
     * step should have completed. 0 = no deadline. Mutually exclusive
     * with qosStepsPerSec.
     */
    double qosDeadlineSec = 0.0;

    /** Whether any QoS target is set. */
    bool hasQos() const { return qosStepsPerSec > 0.0 || qosDeadlineSec > 0.0; }

    /**
     * Why this job is malformed, or "" when well-formed. `wallLimited`
     * tells whether the serve run bounds wall-clock time (unbounded
     * steps are only terminating under a wall budget).
     */
    std::string validationError(bool wallLimited) const;
};

/** The tenant mix sharing one accelerator. */
struct TenantWorkload
{
    /** Mix label used in reports, e.g. "mixed-3". */
    std::string name;

    std::vector<TenantJob> jobs;

    /** First problem found across jobs (or empty workload), or "". */
    std::string validationError(bool wallLimited) const;
};

/**
 * Deterministic generated mix: `n` tenants rotating through a fixed
 * model cycle, each with `steps` steps (0 = unbounded), `batch`
 * examples per step and arrivals staggered by `arriveEverySec`.
 * Priorities rotate 0,1,2. QoS targets are left unset; callers enable
 * fair-share auto targets via ServeOptions::autoQosFairShare.
 */
TenantWorkload defaultWorkload(int n, std::uint64_t steps, int batch,
                               double arriveEverySec);

/**
 * The fixed model cycle generated mixes (and arrival-trace generators)
 * rotate through: a light CNN/sequence blend whose members all
 * simulate in milliseconds, keeping generated workloads CI-friendly.
 */
const std::vector<std::string> &defaultModelRotation();

} // namespace diva

#endif // DIVA_TENANT_TENANT_H
