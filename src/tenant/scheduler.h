/**
 * @file
 * Scheduling policies for the multi-tenant time-sharing simulator.
 * All four policies sit behind one Scheduler interface: at every
 * quantum boundary the serve loop hands the policy a snapshot of the
 * runnable tenants and the policy returns the tenant to run next.
 *
 * Determinism contract: pick() must be a pure function of the
 * snapshot, the ready set and the scheduler's own state -- ties break
 * on (arrival, index) so repeated runs of the same workload produce
 * identical schedules whatever the host thread count.
 */

#ifndef DIVA_TENANT_SCHEDULER_H
#define DIVA_TENANT_SCHEDULER_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace diva
{

/** The scheduling policies offered by the serve simulator. */
enum class SchedPolicy
{
    /** Non-preemptive earliest-arrival-first. */
    kFifo,
    /** Round-robin time slicing over the ready tenants. */
    kRoundRobin,
    /** Strict priority (larger TenantJob::priority wins). */
    kPriority,
    /** QoS-aware earliest-deadline-first over the next-step deadline. */
    kEdf,
};

/** CLI/CSV name of a policy ("fifo", "rr", "prio", "edf"). */
const char *policyName(SchedPolicy p);

/** Parse a policy name (accepts common aliases); nullopt if unknown. */
std::optional<SchedPolicy> policyFromName(const std::string &name);

/** Every policy, in declaration order. */
std::vector<SchedPolicy> allPolicies();

/** What a policy may look at when picking the next tenant. */
struct SchedView
{
    double arrivalSec = 0.0;
    int priority = 0;

    /**
     * Deadline of the tenant's next step: arrival + (done+1)/rate for
     * rate targets, the absolute deadline for deadline targets, and
     * +infinity for tenants without QoS (EDF serves them last).
     */
    double nextDeadlineSec = 0.0;

    std::uint64_t stepsDone = 0;
};

/** Picks which ready tenant runs the next quantum. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    virtual SchedPolicy policy() const = 0;

    /**
     * Choose from `ready` (indices into `tenants`, ascending, never
     * empty) the tenant to run next. `now` is the simulated time of
     * the decision.
     */
    virtual std::size_t pick(const std::vector<SchedView> &tenants,
                             const std::vector<std::size_t> &ready,
                             double now) = 0;
};

std::unique_ptr<Scheduler> makeScheduler(SchedPolicy policy);

} // namespace diva

#endif // DIVA_TENANT_SCHEDULER_H
