#include "tenant/tenant.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sweep/scenario.h"

namespace diva
{

std::string
TenantJob::validationError(bool wallLimited) const
{
    const std::vector<std::string> zoo = knownModels();
    if (std::find(zoo.begin(), zoo.end(), model) == zoo.end())
        return "unknown model '" + model + "'";
    if (batch < 0)
        return "batch must be >= 0 (0 = auto)";
    if (microbatch < 0)
        return "microbatch must be >= 0";
    if (modelScale < 0)
        return "model scale must be >= 0";
    if (!(arrivalSec >= 0.0) || !std::isfinite(arrivalSec))
        return "arrival must be a finite time >= 0";
    if (!(departSec >= 0.0) || !std::isfinite(departSec))
        return "departure must be a finite time >= 0";
    if (departSec > 0.0 && departSec <= arrivalSec)
        return "departure precedes arrival";
    if (steps == 0 && !wallLimited && departSec <= 0.0)
        return "unbounded steps (0) need a wall-clock budget or a "
               "departure time";
    if (!(qosStepsPerSec >= 0.0) || !std::isfinite(qosStepsPerSec))
        return "QoS steps/sec must be finite and >= 0";
    if (!(qosDeadlineSec >= 0.0) || !std::isfinite(qosDeadlineSec))
        return "QoS deadline must be finite and >= 0";
    if (qosStepsPerSec > 0.0 && qosDeadlineSec > 0.0)
        return "set a steps/sec target or a deadline, not both";
    if (qosDeadlineSec > 0.0 && qosDeadlineSec <= arrivalSec)
        return "QoS deadline precedes arrival";
    if (qosDeadlineSec > 0.0 && steps == 0)
        return "a deadline target needs a bounded step budget";
    return "";
}

std::string
TenantWorkload::validationError(bool wallLimited) const
{
    if (jobs.empty())
        return "workload has no tenants";
    for (const TenantJob &job : jobs) {
        const std::string err = job.validationError(wallLimited);
        if (!err.empty())
            return "tenant '" + job.name + "': " + err;
    }
    return "";
}

const std::vector<std::string> &
defaultModelRotation()
{
    static const std::vector<std::string> kRotation = {
        "SqueezeNet", "MobileNet", "LSTM-small", "ResNet-50", "BERT-base",
    };
    return kRotation;
}

TenantWorkload
defaultWorkload(int n, std::uint64_t steps, int batch,
                double arriveEverySec)
{
    const std::vector<std::string> &rotation = defaultModelRotation();
    TenantWorkload mix;
    {
        std::ostringstream oss;
        oss << "mixed-" << n;
        mix.name = oss.str();
    }
    for (int i = 0; i < n; ++i) {
        TenantJob job;
        job.model = rotation[std::size_t(i) % rotation.size()];
        std::ostringstream oss;
        oss << "t" << i << ":" << job.model;
        job.name = oss.str();
        job.batch = batch;
        job.steps = steps;
        job.arrivalSec = arriveEverySec * double(i);
        job.priority = i % 3;
        mix.jobs.push_back(std::move(job));
    }
    return mix;
}

} // namespace diva
