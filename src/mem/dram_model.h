/**
 * @file
 * Bandwidth/latency model of the off-chip (HBM) memory system, plus a
 * traffic accumulator used to attribute DRAM bytes to training stages.
 */

#ifndef DIVA_MEM_DRAM_MODEL_H
#define DIVA_MEM_DRAM_MODEL_H

#include "arch/accelerator_config.h"
#include "common/types.h"

namespace diva
{

/**
 * A simple but faithful DRAM timing model: a transfer of S bytes costs
 * one access latency plus S divided by the peak bandwidth. Streaming
 * transfers issued by the DMA engine are assumed to pipeline, so latency
 * is charged once per logical transfer, not per beat.
 */
class DramModel
{
  public:
    explicit DramModel(const AcceleratorConfig &cfg);

    /** Cycles to move `bytes` in one pipelined streaming transfer. */
    Cycles transferCycles(Bytes bytes) const;

    /**
     * Cycles for a bandwidth-bound phase that moves `bytes` total,
     * without charging the fixed latency (used when transfers overlap
     * compute and only steady-state bandwidth matters).
     */
    Cycles streamingCycles(Bytes bytes) const;

    /** Peak deliverable bytes per core clock. */
    double bytesPerCycle() const { return bytesPerCycle_; }

    Cycles latency() const { return latency_; }

  private:
    double bytesPerCycle_;
    Cycles latency_;
};

/** Read/write DRAM byte counters for one simulated phase. */
struct DramTraffic
{
    Bytes readBytes = 0;
    Bytes writeBytes = 0;

    Bytes total() const { return readBytes + writeBytes; }

    DramTraffic &operator+=(const DramTraffic &o)
    {
        readBytes += o.readBytes;
        writeBytes += o.writeBytes;
        return *this;
    }
};

} // namespace diva

#endif // DIVA_MEM_DRAM_MODEL_H
