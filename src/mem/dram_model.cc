#include "mem/dram_model.h"

#include <cmath>

#include "common/logging.h"

namespace diva
{

DramModel::DramModel(const AcceleratorConfig &cfg)
    : bytesPerCycle_(cfg.dramBytesPerCycle()),
      latency_(cfg.dramLatencyCycles)
{
    DIVA_ASSERT(bytesPerCycle_ > 0.0);
}

Cycles
DramModel::transferCycles(Bytes bytes) const
{
    if (bytes == 0)
        return 0;
    return latency_ + streamingCycles(bytes);
}

Cycles
DramModel::streamingCycles(Bytes bytes) const
{
    return Cycles(std::ceil(double(bytes) / bytesPerCycle_));
}

} // namespace diva
