#include "mem/sram_buffer.h"

#include "common/logging.h"

namespace diva
{

SramBuffer::SramBuffer(const AcceleratorConfig &cfg, double lhs_frac,
                       double rhs_frac)
{
    if (lhs_frac <= 0.0 || rhs_frac <= 0.0 ||
        lhs_frac + rhs_frac >= 1.0) {
        DIVA_FATAL("invalid SRAM partition fractions: lhs=", lhs_frac,
                   " rhs=", rhs_frac);
    }
    lhsBytes_ = Bytes(double(cfg.sramBytes) * lhs_frac);
    rhsBytes_ = Bytes(double(cfg.sramBytes) * rhs_frac);
    outBytes_ = cfg.sramBytes - lhsBytes_ - rhsBytes_;
}

} // namespace diva
