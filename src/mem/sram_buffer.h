/**
 * @file
 * On-chip SRAM buffer partitioning model.
 *
 * The paper's Figure 8 shows the unified SRAM split into an LHS input
 * buffer, an RHS input buffer, and an output buffer. The partition sizes
 * determine how large a GEMM tile can stay resident, which in turn
 * drives the DRAM traffic model (operands that fit are fetched once).
 */

#ifndef DIVA_MEM_SRAM_BUFFER_H
#define DIVA_MEM_SRAM_BUFFER_H

#include "arch/accelerator_config.h"
#include "common/types.h"

namespace diva
{

/**
 * Partitioned SRAM capacity. The default split mirrors TPUv3's layout
 * where the output ("vector memory") partition is the largest: the WS
 * dataflow needs a deep output buffer to amortize its input-stream skew
 * (Section IV-C).
 */
class SramBuffer
{
  public:
    /**
     * @param cfg accelerator whose total SRAM is being partitioned
     * @param lhs_frac fraction devoted to LHS operand tiles
     * @param rhs_frac fraction devoted to RHS operand tiles
     *                 (the remainder holds output tiles)
     */
    explicit SramBuffer(const AcceleratorConfig &cfg,
                        double lhs_frac = 0.25, double rhs_frac = 0.25);

    Bytes lhsCapacity() const { return lhsBytes_; }
    Bytes rhsCapacity() const { return rhsBytes_; }
    Bytes outCapacity() const { return outBytes_; }
    Bytes totalCapacity() const
    {
        return lhsBytes_ + rhsBytes_ + outBytes_;
    }

    /** Whether an entire operand of the given size stays resident. */
    bool lhsFits(Bytes b) const { return b <= lhsBytes_; }
    bool rhsFits(Bytes b) const { return b <= rhsBytes_; }
    bool outFits(Bytes b) const { return b <= outBytes_; }

  private:
    Bytes lhsBytes_;
    Bytes rhsBytes_;
    Bytes outBytes_;
};

} // namespace diva

#endif // DIVA_MEM_SRAM_BUFFER_H
