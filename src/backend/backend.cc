#include "backend/backend.h"

#include "energy/energy_model.h"

namespace diva
{

std::shared_ptr<const Network>
planNetwork(const Scenario &scenario, PlanCache &plans,
            ScenarioResult &out)
{
    std::shared_ptr<const Network> net =
        plans.network(scenario.model, scenario.modelScale);
    out.resolvedBatch = resolveBatch(scenario, *net);
    return net;
}

void
assembleEngineRating(ScenarioResult &out,
                     const AcceleratorConfig &config, int chips)
{
    out.enginePowerW = EnergyModel::enginePowerW(config) * chips;
    out.engineAreaMm2 = EnergyModel::engineAreaMm2(config);
}

} // namespace diva
