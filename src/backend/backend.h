/**
 * @file
 * The pluggable simulation-backend layer. A SimBackend evaluates one
 * sweep Scenario on one execution substrate -- a single accelerator
 * chip, a data-parallel pod, a roofline GPU, or anything a future
 * backend models -- filling a ScenarioResult.
 *
 * Backends declare *capability flags* for the metrics they actually
 * model; the emitters consult them so a backend that has no cycle or
 * energy notion (the GPU roofline) produces empty/NaN cells instead of
 * fake zeros. Backends are registered by name in the BackendRegistry
 * (see backend/registry.h), which is how the sweep runner, the tenant
 * serve loop, and the CLIs' --backends flag reach them.
 */

#ifndef DIVA_BACKEND_BACKEND_H
#define DIVA_BACKEND_BACKEND_H

#include <memory>

#include "backend/plan_cache.h"
#include "sweep/scenario.h"

namespace diva
{

/**
 * Which ScenarioResult metrics a backend actually models. Unset flags
 * mean the corresponding fields are meaningless defaults (not measured
 * zeros) and are emitted as empty/NaN/null cells. Every backend models
 * wall-clock `seconds`.
 */
struct BackendCaps
{
    /** cycles / computeCycles / allReduceCycles. */
    bool cycles = false;

    /** Effective FLOPS utilization. */
    bool utilization = false;

    /** Iteration energy in joules. */
    bool energy = false;

    /** dramBytes / postProcDramBytes off-chip traffic. */
    bool dramTraffic = false;

    /** enginePowerW / engineAreaMm2 design-point ratings. */
    bool engineRating = false;

    /** A backend that models every metric (chip and pod substrates). */
    static BackendCaps all()
    {
        return {true, true, true, true, true};
    }
};

/** One execution substrate that can evaluate sweep scenarios. */
class SimBackend
{
  public:
    virtual ~SimBackend() = default;

    /** Registry key and the name scenarios/reports use ("chip"). */
    virtual const char *name() const = 0;

    /** The Scenario::backend tag this backend evaluates. */
    virtual SweepBackend kind() const = 0;

    virtual BackendCaps capabilities() const = 0;

    /**
     * Evaluate `scenario`, filling the metric fields of `out`
     * (out.scenario and out.cacheHit belong to the caller). Workload
     * plans come from `plans` so repeated workloads lower once.
     * Simulation errors are thrown (the runner converts them into
     * out.error); on throw, `out` may be partially filled and must be
     * discarded.
     */
    virtual void evaluate(const Scenario &scenario, PlanCache &plans,
                          ScenarioResult &out) const = 0;
};

/**
 * Fetch the scenario's network from the plan cache and resolve its
 * mini-batch into out.resolvedBatch -- the common first step of every
 * backend's evaluate().
 */
std::shared_ptr<const Network> planNetwork(const Scenario &scenario,
                                           PlanCache &plans,
                                           ScenarioResult &out);

/**
 * Shared metric assembly for engine-rating capable backends: the
 * design point's engine power (scaled by `chips` for pods) and area.
 */
void assembleEngineRating(ScenarioResult &out,
                          const AcceleratorConfig &config, int chips);

} // namespace diva

#endif // DIVA_BACKEND_BACKEND_H
