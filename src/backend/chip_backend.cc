#include "backend/chip_backend.h"

#include "energy/energy_model.h"
#include "sim/executor.h"

namespace diva
{

void
ChipBackend::evaluate(const Scenario &scenario, PlanCache &plans,
                      ScenarioResult &out) const
{
    const std::shared_ptr<const Network> net =
        planNetwork(scenario, plans, out);
    const std::shared_ptr<const OpStream> stream = plans.stream(
        *net, scenario.model, scenario.modelScale, scenario.algorithm,
        out.resolvedBatch, scenario.microbatch);
    const SimResult r = Executor(scenario.config).run(*stream);
    out.cycles = r.totalCycles();
    out.computeCycles = out.cycles;
    out.seconds = r.seconds(scenario.config);
    out.utilization = r.overallUtilization(scenario.config);
    out.energyJ = EnergyModel::energy(r, scenario.config).total();
    out.dramBytes = r.totalDram().total();
    out.postProcDramBytes = r.postProcessingDram.total();
    assembleEngineRating(out, scenario.config, 1);
}

} // namespace diva
