#include "backend/pod_backend.h"

#include "sim/multichip.h"

namespace diva
{

void
PodBackend::evaluate(const Scenario &scenario, PlanCache &plans,
                     ScenarioResult &out) const
{
    const std::shared_ptr<const Network> net =
        planNetwork(scenario, plans, out);
    const ScalingResult r =
        simulateDataParallel(scenario.config, *net, scenario.algorithm,
                             out.resolvedBatch, scenario.pod);
    out.cycles = r.totalCycles;
    out.computeCycles = r.computeCycles;
    out.allReduceCycles = r.allReduceCycles;
    out.seconds = scenario.config.cyclesToSeconds(r.totalCycles);
    out.utilization = r.utilization;
    out.energyJ = r.energyJ;
    out.dramBytes = r.dramBytes;
    out.postProcDramBytes = r.postProcDramBytes;
    assembleEngineRating(out, scenario.config, scenario.pod.numChips);
}

} // namespace diva
