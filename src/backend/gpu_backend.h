/**
 * @file
 * Roofline GPU simulation backend (the Figure 17 protocol): times the
 * key GEMMs of DP-SGD's backpropagation bottleneck stages on a V100/
 * A100-class roofline model. Models wall-clock seconds only -- it has
 * no cycle, utilization, energy, or traffic notion, and its
 * capability flags say so (the emitters render those cells as
 * empty/NaN/null instead of fake zeros).
 */

#ifndef DIVA_BACKEND_GPU_BACKEND_H
#define DIVA_BACKEND_GPU_BACKEND_H

#include "backend/backend.h"

namespace diva
{

/** Roofline GPU model (Figure 17 protocol). */
class GpuBackend : public SimBackend
{
  public:
    const char *name() const override { return "gpu"; }
    SweepBackend kind() const override { return SweepBackend::kGpu; }
    BackendCaps capabilities() const override
    {
        return {}; // seconds only
    }
    void evaluate(const Scenario &scenario, PlanCache &plans,
                  ScenarioResult &out) const override;
};

} // namespace diva

#endif // DIVA_BACKEND_GPU_BACKEND_H
