/**
 * @file
 * Single-chip simulation backend: one accelerator design point runs
 * the scenario's training iteration through the Executor (optionally
 * micro-batched with gradient accumulation). Models every metric.
 */

#ifndef DIVA_BACKEND_CHIP_BACKEND_H
#define DIVA_BACKEND_CHIP_BACKEND_H

#include "backend/backend.h"

namespace diva
{

/** One accelerator chip via Executor. */
class ChipBackend : public SimBackend
{
  public:
    const char *name() const override { return "chip"; }
    SweepBackend kind() const override
    {
        return SweepBackend::kSingleChip;
    }
    BackendCaps capabilities() const override
    {
        return BackendCaps::all();
    }
    void evaluate(const Scenario &scenario, PlanCache &plans,
                  ScenarioResult &out) const override;
};

} // namespace diva

#endif // DIVA_BACKEND_CHIP_BACKEND_H
