#include "backend/registry.h"

#include "backend/chip_backend.h"
#include "backend/gpu_backend.h"
#include "backend/pod_backend.h"
#include "common/logging.h"

namespace diva
{

BackendRegistry::BackendRegistry()
{
    backends_.push_back(std::make_unique<ChipBackend>());
    backends_.push_back(std::make_unique<PodBackend>());
    backends_.push_back(std::make_unique<GpuBackend>());
}

BackendRegistry &
BackendRegistry::instance()
{
    static BackendRegistry registry;
    return registry;
}

void
BackendRegistry::add(std::unique_ptr<SimBackend> backend)
{
    DIVA_ASSERT(backend != nullptr);
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &b : backends_)
        if (std::string(b->name()) == backend->name())
            DIVA_FATAL("backend '", backend->name(),
                       "' is already registered");
    backends_.push_back(std::move(backend));
}

const SimBackend *
BackendRegistry::find(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &b : backends_)
        if (name == b->name())
            return b.get();
    return nullptr;
}

const SimBackend &
BackendRegistry::at(SweepBackend kind) const
{
    const SimBackend *backend = find(backendName(kind));
    if (!backend)
        DIVA_FATAL("no backend registered under '", backendName(kind),
                   "'");
    return *backend;
}

std::vector<std::string>
BackendRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(backends_.size());
    for (const auto &b : backends_)
        out.push_back(b->name());
    return out;
}

} // namespace diva
