#include "backend/plan_cache.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "sweep/scenario.h"
#include "train/planner.h"

namespace diva
{

namespace
{

/**
 * Fixed-capacity key builder: renders "model|scale|..." into a stack
 * buffer so a hot-path probe allocates nothing. Zoo model names and
 * algorithm names are short; should a pathological name overflow the
 * buffer anyway, the tail is truncated -- consistently for probe and
 * insert, so correctness (same key -> same entry) is unaffected.
 */
class KeyBuf
{
  public:
    void append(std::string_view s)
    {
        const std::size_t room = sizeof(buf_) - len_;
        const std::size_t n = std::min(room, s.size());
        std::memcpy(buf_ + len_, s.data(), n);
        len_ += n;
    }

    void append(char c) { append(std::string_view(&c, 1)); }

    void append(int v)
    {
        char digits[16];
        const auto [end, ec] =
            std::to_chars(digits, digits + sizeof(digits), v);
        (void)ec; // 16 chars always fit an int
        append(std::string_view(digits, std::size_t(end - digits)));
    }

    std::string_view view() const
    {
        return std::string_view(buf_, len_);
    }

  private:
    char buf_[192];
    std::size_t len_ = 0;
};

KeyBuf
networkKey(const std::string &model, int scale)
{
    KeyBuf key;
    key.append(model);
    key.append('|');
    key.append(scale);
    return key;
}

KeyBuf
streamKey(const std::string &model, int scale, TrainingAlgorithm algo,
          int batch, int microbatch)
{
    KeyBuf key;
    key.append(model);
    key.append('|');
    key.append(scale);
    key.append('|');
    key.append(std::string_view(algorithmName(algo)));
    key.append('|');
    key.append(batch);
    key.append('|');
    key.append(microbatch);
    return key;
}

} // namespace

PlanCache::PlanCache(bool enabled, std::size_t stripes)
    : enabled_(enabled), stripes_(std::max<std::size_t>(1, stripes))
{
}

std::shared_ptr<const Network>
PlanCache::network(const std::string &model, int scale)
{
    auto &metrics = obs::MetricsRegistry::instance();
    if (!enabled_) {
        obs::ScopedPhase phase("plan_build");
        return std::make_shared<const Network>(buildModel(model, scale));
    }
    const KeyBuf key = networkKey(model, scale);
    Stripe &stripe = stripeOf(key.view());
    {
        std::lock_guard<std::mutex> lock(stripe.mutex);
        const auto it = stripe.networks.find(key.view());
        if (it != stripe.networks.end()) {
            ++stripe.stats.networkHits;
            metrics.addCounter("plan_cache.network_hits");
            return it->second;
        }
    }
    // Build outside the lock; a thrown error (unknown model) escapes
    // before anything is cached or counted.
    std::shared_ptr<const Network> built;
    {
        obs::ScopedPhase phase("plan_build");
        built = std::make_shared<const Network>(buildModel(model, scale));
    }
    std::lock_guard<std::mutex> lock(stripe.mutex);
    const auto [it, inserted] =
        stripe.networks.emplace(std::string(key.view()),
                                std::move(built));
    // Losing a build race counts as a hit: exactly one miss per
    // distinct key, whatever the thread or stripe count.
    if (inserted)
        ++stripe.stats.networkMisses;
    else
        ++stripe.stats.networkHits;
    metrics.addCounter(inserted ? "plan_cache.network_misses"
                                : "plan_cache.network_hits");
    return it->second;
}

std::shared_ptr<const OpStream>
PlanCache::stream(const Network &net, const std::string &model,
                  int scale, TrainingAlgorithm algo, int batch,
                  int microbatch)
{
    auto build = [&]() {
        return std::make_shared<const OpStream>(
            microbatch > 0
                ? buildMicrobatchedOpStream(net, algo, batch, microbatch)
                : buildOpStream(net, algo, batch));
    };
    auto &metrics = obs::MetricsRegistry::instance();
    if (!enabled_) {
        obs::ScopedPhase phase("plan_build");
        return build();
    }
    const KeyBuf key = streamKey(model, scale, algo, batch, microbatch);
    Stripe &stripe = stripeOf(key.view());
    {
        std::lock_guard<std::mutex> lock(stripe.mutex);
        const auto it = stripe.streams.find(key.view());
        if (it != stripe.streams.end()) {
            ++stripe.stats.streamHits;
            metrics.addCounter("plan_cache.stream_hits");
            return it->second;
        }
    }
    std::shared_ptr<const OpStream> built;
    {
        obs::ScopedPhase phase("plan_build");
        built = build();
    }
    std::lock_guard<std::mutex> lock(stripe.mutex);
    const auto [it, inserted] =
        stripe.streams.emplace(std::string(key.view()),
                               std::move(built));
    if (inserted)
        ++stripe.stats.streamMisses;
    else
        ++stripe.stats.streamHits;
    metrics.addCounter(inserted ? "plan_cache.stream_misses"
                                : "plan_cache.stream_hits");
    return it->second;
}

PlanCache::Stats
PlanCache::stats() const
{
    Stats total;
    for (const Stripe &stripe : stripes_) {
        std::lock_guard<std::mutex> lock(stripe.mutex);
        total.networkHits += stripe.stats.networkHits;
        total.networkMisses += stripe.stats.networkMisses;
        total.streamHits += stripe.stats.streamHits;
        total.streamMisses += stripe.stats.streamMisses;
    }
    return total;
}

std::size_t
PlanCache::size() const
{
    std::size_t total = 0;
    for (const Stripe &stripe : stripes_) {
        std::lock_guard<std::mutex> lock(stripe.mutex);
        total += stripe.networks.size() + stripe.streams.size();
    }
    return total;
}

void
PlanCache::clear()
{
    for (Stripe &stripe : stripes_) {
        std::lock_guard<std::mutex> lock(stripe.mutex);
        stripe.networks.clear();
        stripe.streams.clear();
        stripe.stats = {};
    }
}

} // namespace diva
