#include "backend/plan_cache.h"

#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "sweep/scenario.h"
#include "train/planner.h"

namespace diva
{

namespace
{

std::string
networkKey(const std::string &model, int scale)
{
    std::ostringstream oss;
    oss << model << '|' << scale;
    return oss.str();
}

std::string
streamKey(const std::string &model, int scale, TrainingAlgorithm algo,
          int batch, int microbatch)
{
    std::ostringstream oss;
    oss << model << '|' << scale << '|' << algorithmName(algo) << '|'
        << batch << '|' << microbatch;
    return oss.str();
}

} // namespace

std::shared_ptr<const Network>
PlanCache::network(const std::string &model, int scale)
{
    auto &metrics = obs::MetricsRegistry::instance();
    if (!enabled_) {
        obs::ScopedPhase phase("plan_build");
        return std::make_shared<const Network>(buildModel(model, scale));
    }
    const std::string key = networkKey(model, scale);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = networks_.find(key);
        if (it != networks_.end()) {
            ++stats_.networkHits;
            metrics.addCounter("plan_cache.network_hits");
            return it->second;
        }
    }
    // Build outside the lock; a thrown error (unknown model) escapes
    // before anything is cached or counted.
    std::shared_ptr<const Network> built;
    {
        obs::ScopedPhase phase("plan_build");
        built = std::make_shared<const Network>(buildModel(model, scale));
    }
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = networks_.emplace(key, std::move(built));
    // Losing a build race counts as a hit: exactly one miss per
    // distinct key, whatever the thread count.
    if (inserted)
        ++stats_.networkMisses;
    else
        ++stats_.networkHits;
    metrics.addCounter(inserted ? "plan_cache.network_misses"
                                : "plan_cache.network_hits");
    return it->second;
}

std::shared_ptr<const OpStream>
PlanCache::stream(const Network &net, const std::string &model,
                  int scale, TrainingAlgorithm algo, int batch,
                  int microbatch)
{
    auto build = [&]() {
        return std::make_shared<const OpStream>(
            microbatch > 0
                ? buildMicrobatchedOpStream(net, algo, batch, microbatch)
                : buildOpStream(net, algo, batch));
    };
    auto &metrics = obs::MetricsRegistry::instance();
    if (!enabled_) {
        obs::ScopedPhase phase("plan_build");
        return build();
    }
    const std::string key =
        streamKey(model, scale, algo, batch, microbatch);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = streams_.find(key);
        if (it != streams_.end()) {
            ++stats_.streamHits;
            metrics.addCounter("plan_cache.stream_hits");
            return it->second;
        }
    }
    std::shared_ptr<const OpStream> built;
    {
        obs::ScopedPhase phase("plan_build");
        built = build();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = streams_.emplace(key, std::move(built));
    if (inserted)
        ++stats_.streamMisses;
    else
        ++stats_.streamHits;
    metrics.addCounter(inserted ? "plan_cache.stream_misses"
                                : "plan_cache.stream_hits");
    return it->second;
}

PlanCache::Stats
PlanCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t
PlanCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return networks_.size() + streams_.size();
}

void
PlanCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    networks_.clear();
    streams_.clear();
    stats_ = {};
}

} // namespace diva
