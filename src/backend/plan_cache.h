/**
 * @file
 * Shared workload-plan cache: memoizes the two deterministic, pure
 * lowering steps every simulation backend repeats -- buildModel()
 * (zoo name + input scale -> Network) and buildOpStream() /
 * buildMicrobatchedOpStream() (network + algorithm + resolved batch +
 * micro-batch -> one training iteration's op stream).
 *
 * A design-space sweep crosses many accelerator design points with few
 * workloads, so without memoization each sweep cell rebuilds the same
 * Network and OpStream hundreds of times. The cache is shared by all
 * backends (chip, pod and GPU scenarios over one workload share the
 * same monolithic stream entry) and is safe to use from the sweep
 * runner's worker pool.
 *
 * Concurrency: the table is striped N ways -- each stripe owns its own
 * mutex, map and counters, and a key hashes to exactly one stripe --
 * so concurrent lookups of different keys proceed in parallel instead
 * of serializing on one global lock. Hot-path probes are heterogeneous:
 * the key is rendered into a stack buffer and looked up as a
 * std::string_view, so a cache hit allocates no std::string.
 *
 * Thread-safety and determinism: plans are built *outside* the stripe
 * lock, so two workers missing the same key concurrently both build,
 * and the first to insert wins (the loser adopts the winner's plan and
 * counts a hit). That rule makes the hit/miss counters a pure function
 * of the scenario set -- misses == distinct keys built, hits ==
 * lookups - misses -- so totals stay byte-identical across thread
 * counts *and* stripe counts (a key lands on one stripe whatever their
 * number; stats() sums the stripes sequentially).
 */

#ifndef DIVA_BACKEND_PLAN_CACHE_H
#define DIVA_BACKEND_PLAN_CACHE_H

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "models/network.h"
#include "train/algorithm.h"
#include "train/op.h"

namespace diva
{

/** Thread-safe, stripe-locked memoizer for buildModel+buildOpStream. */
class PlanCache
{
  public:
    /** Stripes used when the constructor does not say otherwise. */
    static constexpr std::size_t kDefaultStripes = 16;

    /**
     * A disabled cache builds every plan fresh and counts nothing.
     * `stripes` (clamped to >= 1) sets the lock-striping width; any
     * value yields identical plans and identical hit/miss totals.
     */
    explicit PlanCache(bool enabled = true,
                       std::size_t stripes = kDefaultStripes);

    PlanCache(const PlanCache &) = delete;
    PlanCache &operator=(const PlanCache &) = delete;

    /** Cumulative lookup accounting since construction / clear(). */
    struct Stats
    {
        std::size_t networkHits = 0;
        std::size_t networkMisses = 0;
        std::size_t streamHits = 0;
        std::size_t streamMisses = 0;

        std::size_t hits() const { return networkHits + streamHits; }
        std::size_t misses() const
        {
            return networkMisses + streamMisses;
        }
    };

    /**
     * The zoo model `model` at input scale `scale` (0 = paper
     * default), built at most once per (model, scale). Throws like
     * buildModel() for unknown names; failures are never cached.
     */
    std::shared_ptr<const Network> network(const std::string &model,
                                           int scale);

    /**
     * The op stream of one training iteration of `net` -- monolithic
     * when `microbatch` == 0, gradient-accumulating otherwise -- built
     * at most once per (model, scale, algorithm, batch, microbatch).
     * `net` must be the (model, scale) network; it is only consulted
     * on a miss.
     */
    std::shared_ptr<const OpStream> stream(const Network &net,
                                           const std::string &model,
                                           int scale,
                                           TrainingAlgorithm algo,
                                           int batch, int microbatch);

    bool enabled() const { return enabled_; }

    std::size_t stripeCount() const { return stripes_.size(); }

    /** Summed over the stripes in index order (deterministic). */
    Stats stats() const;

    /** Number of cached plans (networks + streams). */
    std::size_t size() const;

    /** Drop every cached plan and reset the counters. */
    void clear();

  private:
    /** Transparent hasher: lets find() take a std::string_view probe
     *  against std::string keys without materializing a string. */
    struct KeyHash
    {
        using is_transparent = void;
        std::size_t operator()(std::string_view key) const
        {
            return std::hash<std::string_view>{}(key);
        }
    };

    /** One lock-striped shard: its own mutex, maps and counters. */
    struct Stripe
    {
        mutable std::mutex mutex;
        Stats stats;
        std::unordered_map<std::string,
                           std::shared_ptr<const Network>, KeyHash,
                           std::equal_to<>>
            networks;
        std::unordered_map<std::string,
                           std::shared_ptr<const OpStream>, KeyHash,
                           std::equal_to<>>
            streams;
    };

    Stripe &stripeOf(std::string_view key)
    {
        return stripes_[std::hash<std::string_view>{}(key) %
                        stripes_.size()];
    }

    const bool enabled_;
    /** Sized at construction, never resized: stripeOf() indexes it
     *  concurrently without synchronization. */
    std::vector<Stripe> stripes_;
};

} // namespace diva

#endif // DIVA_BACKEND_PLAN_CACHE_H
