/**
 * @file
 * Shared workload-plan cache: memoizes the two deterministic, pure
 * lowering steps every simulation backend repeats -- buildModel()
 * (zoo name + input scale -> Network) and buildOpStream() /
 * buildMicrobatchedOpStream() (network + algorithm + resolved batch +
 * micro-batch -> one training iteration's op stream).
 *
 * A design-space sweep crosses many accelerator design points with few
 * workloads, so without memoization each sweep cell rebuilds the same
 * Network and OpStream hundreds of times. The cache is shared by all
 * backends (chip, pod and GPU scenarios over one workload share the
 * same monolithic stream entry) and is safe to use from the sweep
 * runner's worker pool.
 *
 * Thread-safety and determinism: lookups and insertions are
 * mutex-protected; plans are built *outside* the lock, so two workers
 * missing the same key concurrently both build, and the first to
 * insert wins (the loser adopts the winner's plan and counts a hit).
 * That rule makes the hit/miss counters a pure function of the
 * scenario set -- misses == distinct keys built, hits == lookups -
 * misses -- so reports stay byte-identical across thread counts.
 */

#ifndef DIVA_BACKEND_PLAN_CACHE_H
#define DIVA_BACKEND_PLAN_CACHE_H

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "models/network.h"
#include "train/algorithm.h"
#include "train/op.h"

namespace diva
{

/** Thread-safe memoizer for buildModel + buildOpStream. */
class PlanCache
{
  public:
    /** A disabled cache builds every plan fresh and counts nothing. */
    explicit PlanCache(bool enabled = true) : enabled_(enabled) {}

    PlanCache(const PlanCache &) = delete;
    PlanCache &operator=(const PlanCache &) = delete;

    /** Cumulative lookup accounting since construction / clear(). */
    struct Stats
    {
        std::size_t networkHits = 0;
        std::size_t networkMisses = 0;
        std::size_t streamHits = 0;
        std::size_t streamMisses = 0;

        std::size_t hits() const { return networkHits + streamHits; }
        std::size_t misses() const
        {
            return networkMisses + streamMisses;
        }
    };

    /**
     * The zoo model `model` at input scale `scale` (0 = paper
     * default), built at most once per (model, scale). Throws like
     * buildModel() for unknown names; failures are never cached.
     */
    std::shared_ptr<const Network> network(const std::string &model,
                                           int scale);

    /**
     * The op stream of one training iteration of `net` -- monolithic
     * when `microbatch` == 0, gradient-accumulating otherwise -- built
     * at most once per (model, scale, algorithm, batch, microbatch).
     * `net` must be the (model, scale) network; it is only consulted
     * on a miss.
     */
    std::shared_ptr<const OpStream> stream(const Network &net,
                                           const std::string &model,
                                           int scale,
                                           TrainingAlgorithm algo,
                                           int batch, int microbatch);

    bool enabled() const { return enabled_; }

    Stats stats() const;

    /** Number of cached plans (networks + streams). */
    std::size_t size() const;

    /** Drop every cached plan and reset the counters. */
    void clear();

  private:
    const bool enabled_;
    mutable std::mutex mutex_;
    Stats stats_;
    std::unordered_map<std::string, std::shared_ptr<const Network>>
        networks_;
    std::unordered_map<std::string, std::shared_ptr<const OpStream>>
        streams_;
};

} // namespace diva

#endif // DIVA_BACKEND_PLAN_CACHE_H
