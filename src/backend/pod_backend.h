/**
 * @file
 * Data-parallel pod simulation backend: the scenario's mini-batch is
 * sharded over a pod of identical chips and the per-batch weight
 * gradients are ring-all-reduced (simulateDataParallel). Models every
 * metric, pod-wide.
 */

#ifndef DIVA_BACKEND_POD_BACKEND_H
#define DIVA_BACKEND_POD_BACKEND_H

#include "backend/backend.h"

namespace diva
{

/** Data-parallel pod via simulateDataParallel. */
class PodBackend : public SimBackend
{
  public:
    const char *name() const override { return "pod"; }
    SweepBackend kind() const override
    {
        return SweepBackend::kMultiChip;
    }
    BackendCaps capabilities() const override
    {
        return BackendCaps::all();
    }
    void evaluate(const Scenario &scenario, PlanCache &plans,
                  ScenarioResult &out) const override;
};

} // namespace diva

#endif // DIVA_BACKEND_POD_BACKEND_H
