/**
 * @file
 * Name-keyed registry of simulation backends. The built-in substrates
 * (chip, pod, gpu) register themselves on first use; additional
 * backends become reachable everywhere -- the sweep runner, the tenant
 * serve loop, and the CLIs' --backends flag -- by a single add() call,
 * with no switch statement to extend.
 */

#ifndef DIVA_BACKEND_REGISTRY_H
#define DIVA_BACKEND_REGISTRY_H

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "backend/backend.h"

namespace diva
{

/** Process-wide name -> SimBackend registry. */
class BackendRegistry
{
  public:
    /** The singleton, with the built-in backends registered. */
    static BackendRegistry &instance();

    /**
     * Register a backend under backend->name(). Calls DIVA_FATAL on a
     * duplicate name: silently shadowing a substrate would change what
     * every cached canonical key means.
     */
    void add(std::unique_ptr<SimBackend> backend);

    /** The backend registered under `name`, or nullptr if unknown. */
    const SimBackend *find(const std::string &name) const;

    /**
     * The backend evaluating `kind` (resolved through the same
     * name-keyed map via backendName()). DIVA_FATAL if the built-in
     * for that tag was removed -- an internal error.
     */
    const SimBackend &at(SweepBackend kind) const;

    /** Registered names, in registration order (built-ins first). */
    std::vector<std::string> names() const;

  private:
    BackendRegistry();

    mutable std::mutex mutex_;
    /** Registration-ordered; lookups scan (the set is tiny). */
    std::vector<std::unique_ptr<SimBackend>> backends_;
};

} // namespace diva

#endif // DIVA_BACKEND_REGISTRY_H
