#include "backend/gpu_backend.h"

#include "gpu/gpu_model.h"

namespace diva
{

void
GpuBackend::evaluate(const Scenario &scenario, PlanCache &plans,
                     ScenarioResult &out) const
{
    const std::shared_ptr<const Network> net =
        planNetwork(scenario, plans, out);
    // Always the monolithic stream: the roofline GPU executes the
    // logical mini-batch directly (micro-batching is an accelerator
    // memory-wall mitigation, not part of the Figure 17 protocol).
    const std::shared_ptr<const OpStream> stream = plans.stream(
        *net, scenario.model, scenario.modelScale, scenario.algorithm,
        out.resolvedBatch, 0);
    out.seconds = GpuModel(scenario.gpu).bottleneckSeconds(*stream);
}

} // namespace diva
