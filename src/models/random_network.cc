#include "models/random_network.h"

#include <algorithm>
#include <string>

#include "common/logging.h"

namespace diva
{

namespace
{

int
pick(Rng &rng, std::initializer_list<int> choices)
{
    const auto idx = rng.uniformInt(choices.size());
    return *(choices.begin() + idx);
}

int
layerCount(Rng &rng, const RandomNetworkOptions &opt)
{
    return opt.minLayers +
           int(rng.uniformInt(
               std::uint64_t(opt.maxLayers - opt.minLayers + 1)));
}

} // namespace

Network
randomCnn(Rng &rng, const RandomNetworkOptions &opt)
{
    Network net;
    net.name = "random-cnn";
    net.family = ModelFamily::kCnn;
    int h = opt.imageSize;
    int w = opt.imageSize;
    int c = 3;
    net.inputElemsPerExample = Elems(c) * Elems(h) * Elems(w);

    const int layers = layerCount(rng, opt);
    for (int i = 0; i < layers; ++i) {
        const std::string name = "layer" + std::to_string(i);
        const int roll = int(rng.uniformInt(10));
        if (roll < 6 || h < 2) {
            // Dense conv; keep channels bounded and spatial valid.
            const int out_c = std::min(
                opt.maxChannels, pick(rng, {8, 16, 32, 64, 128, 256}));
            const int k = (h >= 3) ? pick(rng, {1, 3}) : 1;
            const int stride = (h >= 4) ? pick(rng, {1, 1, 2}) : 1;
            const int pad = k / 2;
            Layer l = Layer::conv2d(name, c, out_c, k, k, stride, pad,
                                    h, w);
            h = l.outH();
            w = l.outW();
            c = out_c;
            net.layers.push_back(std::move(l));
        } else if (roll < 8) {
            Layer l = Layer::depthwiseConv2d(name, c, 3, 3, 1, 1,
                                             std::max(h, 3),
                                             std::max(w, 3));
            if (h >= 3) {
                h = l.outH();
                w = l.outW();
                net.layers.push_back(std::move(l));
            }
        } else if (h >= 2) {
            Layer l = Layer::pool(name, c, 2, 2, 2, h, w);
            h = l.outH();
            w = l.outW();
            net.layers.push_back(std::move(l));
        }
    }
    net.layers.push_back(
        Layer::linear("classifier", c * h * w, 10));
    return net;
}

Network
randomMlp(Rng &rng, const RandomNetworkOptions &opt)
{
    Network net;
    net.name = "random-mlp";
    net.family = ModelFamily::kCnn; // dense models grouped with CNNs
    int features = pick(rng, {16, 64, 256, 784});
    net.inputElemsPerExample = Elems(features);
    const int layers = layerCount(rng, opt);
    for (int i = 0; i < layers; ++i) {
        const int out = std::min(
            opt.maxFeatures, pick(rng, {32, 64, 128, 512, 1024}));
        net.layers.push_back(Layer::linear(
            "fc" + std::to_string(i), features, out));
        features = out;
    }
    net.layers.push_back(Layer::linear("head", features, 10));
    return net;
}

Network
randomTransformer(Rng &rng, const RandomNetworkOptions &opt)
{
    Network net;
    net.name = "random-transformer";
    net.family = ModelFamily::kTransformer;
    const int hidden = pick(rng, {64, 128, 256, 512});
    const int heads = pick(rng, {2, 4, 8});
    const int ffn = hidden * pick(rng, {2, 4});
    const int blocks =
        std::max(1, layerCount(rng, opt) / 4);
    net.inputElemsPerExample = Elems(hidden) * Elems(opt.seqLen);
    for (int i = 0; i < blocks; ++i) {
        const std::string p = "block" + std::to_string(i) + ".";
        net.layers.push_back(Layer::timeSeriesLinear(
            p + "qkv", hidden, 3 * hidden, opt.seqLen));
        net.layers.push_back(Layer::attentionScores(
            p + "scores", heads, hidden / heads, opt.seqLen));
        net.layers.push_back(Layer::attentionContext(
            p + "context", heads, hidden / heads, opt.seqLen));
        net.layers.push_back(Layer::timeSeriesLinear(
            p + "out", hidden, hidden, opt.seqLen));
        net.layers.push_back(Layer::timeSeriesLinear(
            p + "ffn1", hidden, ffn, opt.seqLen));
        net.layers.push_back(Layer::timeSeriesLinear(
            p + "ffn2", ffn, hidden, opt.seqLen));
    }
    net.layers.push_back(Layer::linear("head", hidden, 10));
    return net;
}

Network
randomNetwork(Rng &rng, const RandomNetworkOptions &opt)
{
    switch (rng.uniformInt(3)) {
      case 0: return randomCnn(rng, opt);
      case 1: return randomMlp(rng, opt);
      default: return randomTransformer(rng, opt);
    }
}

} // namespace diva
