/**
 * @file
 * Human-readable model summaries: a per-layer table (kind, geometry,
 * parameters, activation footprint, forward GEMM shape) plus network
 * totals, in the spirit of torchsummary, for inspecting the zoo and
 * custom networks.
 */

#ifndef DIVA_MODELS_SUMMARY_H
#define DIVA_MODELS_SUMMARY_H

#include <ostream>
#include <string>

#include "models/network.h"

namespace diva
{

/** Short human-readable tag for a layer kind. */
const char *layerKindName(LayerKind kind);

/** One-line geometry description, e.g. "3x3/1 s2 16->64 @32x32". */
std::string layerGeometry(const Layer &layer);

/**
 * Print the per-layer table and totals for `net` at mini-batch
 * `batch` (the batch determines the forward GEMM shapes shown).
 */
void printModelSummary(std::ostream &os, const Network &net, int batch);

} // namespace diva

#endif // DIVA_MODELS_SUMMARY_H
