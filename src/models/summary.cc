#include "models/summary.h"

#include <sstream>

#include "common/table.h"

namespace diva
{

const char *
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::kConv2d: return "conv2d";
      case LayerKind::kDepthwiseConv2d: return "dwconv2d";
      case LayerKind::kLinear: return "linear";
      case LayerKind::kTimeSeriesLinear: return "ts-linear";
      case LayerKind::kAttentionMatmul: return "attention";
      case LayerKind::kPool: return "pool";
    }
    return "?";
}

std::string
layerGeometry(const Layer &layer)
{
    std::ostringstream oss;
    switch (layer.kind) {
      case LayerKind::kConv2d:
      case LayerKind::kDepthwiseConv2d:
      case LayerKind::kPool:
        oss << layer.kernelH << "x" << layer.kernelW << " s"
            << layer.stride << " " << layer.inChannels << "->"
            << layer.outChannels << " @" << layer.inH << "x"
            << layer.inW;
        break;
      case LayerKind::kLinear:
        oss << layer.inFeatures << "->" << layer.outFeatures;
        break;
      case LayerKind::kTimeSeriesLinear:
        oss << layer.inFeatures << "->" << layer.outFeatures << " L"
            << layer.seqLen << (layer.sequential ? " seq" : "");
        break;
      case LayerKind::kAttentionMatmul:
        oss << layer.numHeads << "h d" << layer.headDim << " L"
            << layer.seqLen;
        break;
    }
    return oss.str();
}

void
printModelSummary(std::ostream &os, const Network &net, int batch)
{
    os << net.name << " (" << familyName(net.family) << "), mini-batch "
       << batch << "\n";
    TextTable table({"layer", "kind", "geometry", "params",
                     "act elems/ex", "fwd GEMM", "x"});
    for (const auto &layer : net.layers) {
        const GemmInstance fwd = layer.forwardGemm(batch);
        table.addRow({layer.name, layerKindName(layer.kind),
                      layerGeometry(layer),
                      std::to_string(layer.paramCount()),
                      std::to_string(layer.outputElemsPerExample()),
                      fwd.valid() ? fwd.shape.str() : "-",
                      fwd.valid() ? std::to_string(fwd.count) : "-"});
    }
    table.print(os);
    os << "totals: " << net.layers.size() << " layers ("
       << net.numWeightedLayers() << " weighted), "
       << net.paramCount() << " params, "
       << net.activationElemsPerExample()
       << " activation elems/example\n";
}

} // namespace diva
