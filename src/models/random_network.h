/**
 * @file
 * Seeded random-network generation for fuzz/property testing: valid
 * CNN, MLP and Transformer-ish architectures drawn from a seed, so the
 * planner/executor invariants can be checked far beyond the nine
 * hand-built benchmarks.
 */

#ifndef DIVA_MODELS_RANDOM_NETWORK_H
#define DIVA_MODELS_RANDOM_NETWORK_H

#include "common/rng.h"
#include "models/network.h"

namespace diva
{

/** Knobs for the generator. */
struct RandomNetworkOptions
{
    int minLayers = 2;
    int maxLayers = 12;
    int maxChannels = 256;
    int maxFeatures = 1024;
    int imageSize = 32;
    int seqLen = 16;
};

/** A random but structurally valid CNN (convs, pools, linear head). */
Network randomCnn(Rng &rng, const RandomNetworkOptions &opt = {});

/** A random MLP (stack of linear layers). */
Network randomMlp(Rng &rng, const RandomNetworkOptions &opt = {});

/** A random Transformer-style stack (projections + attention). */
Network randomTransformer(Rng &rng, const RandomNetworkOptions &opt = {});

/** One of the above, chosen by the RNG. */
Network randomNetwork(Rng &rng, const RandomNetworkOptions &opt = {});

} // namespace diva

#endif // DIVA_MODELS_RANDOM_NETWORK_H
