/**
 * @file
 * Layer descriptors and the Figure-6 GEMM shape algebra.
 *
 * Every weighted DNN layer studied in the paper lowers to GEMM for both
 * forward and backward propagation (im2col for convolutions). The three
 * weight-gradient flavors differ only in how the mini-batch dimension B
 * enters the GEMM (Figure 6):
 *
 *   - forward:            per-batch GEMM with B inside the M dimension;
 *   - per-batch wgrad:    one GEMM whose K dimension contains B
 *                         (the inner product over K reduces over the
 *                         mini-batch);
 *   - per-example wgrad:  B independent GEMMs whose K dimension is
 *                         *independent of B* (1 for MLPs, P*Q for
 *                         convolutions, L for time-series MLPs) --
 *                         the irregular tall-skinny GEMMs that starve
 *                         systolic arrays.
 */

#ifndef DIVA_MODELS_LAYER_H
#define DIVA_MODELS_LAYER_H

#include <cstdint>
#include <string>

#include "common/types.h"
#include "gemm/gemm_shape.h"

namespace diva
{

/** Layer taxonomy covering all nine benchmark networks. */
enum class LayerKind
{
    kConv2d,          ///< dense convolution (im2col GEMM)
    kDepthwiseConv2d, ///< depthwise convolution (per-channel GEMMs)
    kLinear,          ///< fully connected layer
    kTimeSeriesLinear,///< linear over a length-L token/time sequence
    kAttentionMatmul, ///< weightless activation-activation matmul
    kPool,            ///< pooling; no GEMM, contributes activations only
};

/** A GEMM shape plus how many independent instances of it execute. */
struct GemmInstance
{
    GemmShape shape;
    std::uint64_t count = 0;

    bool valid() const { return count > 0 && shape.valid(); }
    Macs totalMacs() const { return shape.macs() * count; }
};

/**
 * One network layer. Use the static factory functions; the relevant
 * subset of fields is populated per LayerKind.
 */
struct Layer
{
    LayerKind kind = LayerKind::kLinear;
    std::string name;

    // Convolution / pooling geometry (per example).
    int inChannels = 0;
    int outChannels = 0;
    int kernelH = 0;
    int kernelW = 0;
    int stride = 1;
    int padding = 0;
    int inH = 0;
    int inW = 0;

    // Linear geometry.
    int inFeatures = 0;
    int outFeatures = 0;

    /** Sequence length for time-series layers and attention. */
    int seqLen = 0;

    /**
     * Whether a time-series layer must execute one GEMM per timestep
     * (LSTM recurrent projections) rather than batching tokens.
     */
    bool sequential = false;

    /** Attention head count / head dim for kAttentionMatmul. */
    int numHeads = 0;
    int headDim = 0;

    /** Factories. */
    static Layer conv2d(std::string name, int in_c, int out_c, int kh,
                        int kw, int stride, int padding, int in_h,
                        int in_w);
    static Layer depthwiseConv2d(std::string name, int channels, int kh,
                                 int kw, int stride, int padding,
                                 int in_h, int in_w);
    static Layer linear(std::string name, int in_f, int out_f);
    static Layer timeSeriesLinear(std::string name, int in_f, int out_f,
                                  int seq_len, bool sequential = false);
    static Layer attentionScores(std::string name, int num_heads,
                                 int head_dim, int seq_len);
    static Layer attentionContext(std::string name, int num_heads,
                                  int head_dim, int seq_len);
    static Layer pool(std::string name, int channels, int kh, int kw,
                      int stride, int in_h, int in_w);

    /** Output spatial dims for conv/pool layers. */
    int outH() const;
    int outW() const;

    /** Whether this layer carries trainable weights. */
    bool hasWeights() const;

    /** Trainable parameter count (0 for weightless layers). */
    std::int64_t paramCount() const;

    /** Output activation elements produced per input example. */
    Elems outputElemsPerExample() const;

    /**
     * Figure-6 GEMM instances for a mini-batch of size `batch`.
     * An instance with count == 0 means the layer has no GEMM for that
     * operation (pools, weightless layers for weight gradients).
     */
    GemmInstance forwardGemm(int batch) const;
    GemmInstance actGradGemm(int batch) const;
    GemmInstance perBatchWGradGemm(int batch) const;
    GemmInstance perExampleWGradGemm(int batch) const;
};

} // namespace diva

#endif // DIVA_MODELS_LAYER_H
