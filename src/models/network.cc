#include "models/network.h"

#include <algorithm>

namespace diva
{

const char *
familyName(ModelFamily f)
{
    switch (f) {
      case ModelFamily::kCnn: return "CNN";
      case ModelFamily::kTransformer: return "Transformer";
      case ModelFamily::kRnn: return "RNN";
    }
    return "?";
}

std::int64_t
Network::paramCount() const
{
    std::int64_t total = 0;
    for (const auto &l : layers)
        total += l.paramCount();
    return total;
}

std::int64_t
Network::maxLayerParamCount() const
{
    std::int64_t best = 0;
    for (const auto &l : layers)
        best = std::max(best, l.paramCount());
    return best;
}

Elems
Network::activationElemsPerExample() const
{
    Elems total = inputElemsPerExample;
    for (const auto &l : layers)
        total += l.outputElemsPerExample();
    return total;
}

int
Network::numWeightedLayers() const
{
    int n = 0;
    for (const auto &l : layers)
        n += l.hasWeights() ? 1 : 0;
    return n;
}

} // namespace diva
