/**
 * @file
 * The nine benchmark networks of the paper (Section V): five CNNs
 * evaluated on CIFAR-10-sized inputs, two BERT configurations and two
 * LSTM configurations with a baseline sequence length of 32.
 *
 * Input image size and sequence length are parameters so the Section
 * VI-C sensitivity study (4x/16x/64x larger images, 2x/4x/8x longer
 * sequences) reuses the same builders.
 */

#ifndef DIVA_MODELS_ZOO_H
#define DIVA_MODELS_ZOO_H

#include <vector>

#include "models/network.h"

namespace diva
{

/** Default CIFAR-10 style image side used in the paper's baseline. */
constexpr int kDefaultImageSize = 32;

/** Default token sequence length used in the paper's baseline. */
constexpr int kDefaultSeqLen = 32;

Network vgg16(int image_size = kDefaultImageSize);
Network resnet50(int image_size = kDefaultImageSize);
Network resnet152(int image_size = kDefaultImageSize);
Network squeezenet(int image_size = kDefaultImageSize);
Network mobilenet(int image_size = kDefaultImageSize);

Network bertBase(int seq_len = kDefaultSeqLen);
Network bertLarge(int seq_len = kDefaultSeqLen);
Network lstmSmall(int seq_len = kDefaultSeqLen);
Network lstmLarge(int seq_len = kDefaultSeqLen);

/** All nine models in the paper's figure ordering. */
std::vector<Network> allModels();

/** The four models used in the paper's breakdown figures (14-16). */
std::vector<Network> breakdownModels();

} // namespace diva

#endif // DIVA_MODELS_ZOO_H
