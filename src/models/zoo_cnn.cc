/**
 * @file
 * CNN benchmark builders: VGG-16, ResNet-50/152, SqueezeNet 1.0 and
 * MobileNetV1, instantiated at CIFAR-10 scale (32x32 inputs) as in the
 * paper's baseline configuration (Section V).
 */

#include "models/zoo.h"

#include <string>

#include "common/logging.h"

namespace diva
{

namespace
{

constexpr int kNumClasses = 10;

/** Running spatial/channel state while stacking conv layers. */
struct Builder
{
    Network net;
    int h;
    int w;
    int c;

    Builder(std::string name, int image_size, int channels)
        : h(image_size), w(image_size), c(channels)
    {
        net.name = std::move(name);
        net.family = ModelFamily::kCnn;
        net.inputElemsPerExample =
            Elems(channels) * Elems(image_size) * Elems(image_size);
    }

    void
    conv(const std::string &name, int out_c, int k, int stride,
         int padding)
    {
        Layer l = Layer::conv2d(name, c, out_c, k, k, stride, padding, h,
                                w);
        h = l.outH();
        w = l.outW();
        c = out_c;
        net.layers.push_back(std::move(l));
    }

    void
    depthwise(const std::string &name, int k, int stride, int padding)
    {
        Layer l = Layer::depthwiseConv2d(name, c, k, k, stride, padding,
                                         h, w);
        h = l.outH();
        w = l.outW();
        net.layers.push_back(std::move(l));
    }

    void
    pool(const std::string &name, int k, int stride)
    {
        if (h < k) {
            // Tiny CIFAR feature maps can be smaller than an ImageNet
            // pooling window; clamp as frameworks do with ceil_mode.
            return;
        }
        Layer l = Layer::pool(name, c, k, k, stride, h, w);
        h = l.outH();
        w = l.outW();
        net.layers.push_back(std::move(l));
    }

    void
    globalPool(const std::string &name)
    {
        if (h == 1 && w == 1)
            return;
        Layer l = Layer::pool(name, c, h, w, 1, h, w);
        h = 1;
        w = 1;
        net.layers.push_back(std::move(l));
    }

    void
    fc(const std::string &name, int out_f)
    {
        const int in_f = c * h * w;
        net.layers.push_back(Layer::linear(name, in_f, out_f));
        c = out_f;
        h = 1;
        w = 1;
    }
};

/** ResNet bottleneck block: 1x1 -> 3x3 -> 1x1 (+ optional downsample). */
void
bottleneck(Builder &b, const std::string &name, int mid_c, int out_c,
           int stride, bool downsample)
{
    const int in_h = b.h;
    const int in_w = b.w;
    const int in_c = b.c;
    b.conv(name + ".conv1", mid_c, 1, 1, 0);
    b.conv(name + ".conv2", mid_c, 3, stride, 1);
    b.conv(name + ".conv3", out_c, 1, 1, 0);
    if (downsample) {
        // Projection shortcut runs in parallel on the block input.
        Layer l = Layer::conv2d(name + ".downsample", in_c, out_c, 1, 1,
                                stride, 0, in_h, in_w);
        b.net.layers.push_back(std::move(l));
    }
}

Network
resnet(const std::string &name, const int (&blocks)[4], int image_size)
{
    Builder b(name, image_size, 3);
    b.conv("conv1", 64, 7, 2, 3);
    b.pool("maxpool", 3, 2);
    const int mids[4] = {64, 128, 256, 512};
    for (int stage = 0; stage < 4; ++stage) {
        const int mid_c = mids[stage];
        const int out_c = mid_c * 4;
        for (int blk = 0; blk < blocks[stage]; ++blk) {
            const int stride = (stage > 0 && blk == 0) ? 2 : 1;
            // Tiny feature maps cannot stride below 1x1.
            const int eff_stride = (b.h > 1) ? stride : 1;
            bottleneck(b,
                       "layer" + std::to_string(stage + 1) + "." +
                           std::to_string(blk),
                       mid_c, out_c, eff_stride, blk == 0);
        }
    }
    b.globalPool("avgpool");
    b.fc("fc", kNumClasses);
    return b.net;
}

/** SqueezeNet fire module: squeeze 1x1 then parallel 1x1/3x3 expands. */
void
fire(Builder &b, const std::string &name, int squeeze_c, int expand_c)
{
    b.conv(name + ".squeeze", squeeze_c, 1, 1, 0);
    const int in_h = b.h;
    const int in_w = b.w;
    const int in_c = b.c;
    b.conv(name + ".expand1x1", expand_c, 1, 1, 0);
    // The 3x3 expand consumes the same squeeze output in parallel.
    Layer e3 = Layer::conv2d(name + ".expand3x3", in_c, expand_c, 3, 3,
                             1, 1, in_h, in_w);
    b.net.layers.push_back(std::move(e3));
    b.c = expand_c * 2;
}

} // namespace

Network
vgg16(int image_size)
{
    Builder b("VGG-16", image_size, 3);
    const int block_channels[5] = {64, 128, 256, 512, 512};
    const int block_convs[5] = {2, 2, 3, 3, 3};
    for (int blk = 0; blk < 5; ++blk) {
        for (int cv = 0; cv < block_convs[blk]; ++cv) {
            b.conv("block" + std::to_string(blk + 1) + ".conv" +
                       std::to_string(cv + 1),
                   block_channels[blk], 3, 1, 1);
        }
        b.pool("block" + std::to_string(blk + 1) + ".pool", 2, 2);
    }
    b.fc("fc1", 4096);
    b.fc("fc2", 4096);
    b.fc("fc3", kNumClasses);
    return b.net;
}

Network
resnet50(int image_size)
{
    const int blocks[4] = {3, 4, 6, 3};
    return resnet("ResNet-50", blocks, image_size);
}

Network
resnet152(int image_size)
{
    const int blocks[4] = {3, 8, 36, 3};
    return resnet("ResNet-152", blocks, image_size);
}

Network
squeezenet(int image_size)
{
    Builder b("SqueezeNet", image_size, 3);
    b.conv("conv1", 96, 7, 2, 3);
    b.pool("maxpool1", 3, 2);
    fire(b, "fire2", 16, 64);
    fire(b, "fire3", 16, 64);
    fire(b, "fire4", 32, 128);
    b.pool("maxpool4", 3, 2);
    fire(b, "fire5", 32, 128);
    fire(b, "fire6", 48, 192);
    fire(b, "fire7", 48, 192);
    fire(b, "fire8", 64, 256);
    b.pool("maxpool8", 3, 2);
    fire(b, "fire9", 64, 256);
    b.conv("conv10", kNumClasses, 1, 1, 0);
    b.globalPool("avgpool");
    return b.net;
}

Network
mobilenet(int image_size)
{
    Builder b("MobileNet", image_size, 3);
    b.conv("conv1", 32, 3, 2, 1);
    struct Block { int out_c; int stride; };
    const Block blocks[] = {
        {64, 1},  {128, 2}, {128, 1}, {256, 2},  {256, 1},
        {512, 2}, {512, 1}, {512, 1}, {512, 1},  {512, 1},
        {512, 1}, {1024, 2}, {1024, 1},
    };
    int idx = 2;
    for (const auto &blk : blocks) {
        const int stride = (b.h > 1) ? blk.stride : 1;
        b.depthwise("dw" + std::to_string(idx), 3, stride, 1);
        b.conv("pw" + std::to_string(idx), blk.out_c, 1, 1, 0);
        ++idx;
    }
    b.globalPool("avgpool");
    b.fc("fc", kNumClasses);
    return b.net;
}

} // namespace diva
