/**
 * @file
 * A network is an ordered list of layers plus bookkeeping totals used
 * by the memory model and the training planner.
 */

#ifndef DIVA_MODELS_NETWORK_H
#define DIVA_MODELS_NETWORK_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "models/layer.h"

namespace diva
{

/** Model family tags used to group results as in the paper's figures. */
enum class ModelFamily
{
    kCnn,
    kTransformer,
    kRnn,
};

const char *familyName(ModelFamily f);

/** An ordered feed-forward network description. */
struct Network
{
    std::string name;
    ModelFamily family = ModelFamily::kCnn;
    std::vector<Layer> layers;

    /** Input activation elements per example (e.g. 3*32*32). */
    Elems inputElemsPerExample = 0;

    /** Total trainable parameters. */
    std::int64_t paramCount() const;

    /** Trainable parameters of the largest single layer. */
    std::int64_t maxLayerParamCount() const;

    /** Stored activations per example (inputs + all layer outputs). */
    Elems activationElemsPerExample() const;

    /** Number of layers carrying trainable weights. */
    int numWeightedLayers() const;
};

} // namespace diva

#endif // DIVA_MODELS_NETWORK_H
