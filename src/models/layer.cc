#include "models/layer.h"

#include "common/logging.h"

namespace diva
{

Layer
Layer::conv2d(std::string name, int in_c, int out_c, int kh, int kw,
              int stride, int padding, int in_h, int in_w)
{
    Layer l;
    l.kind = LayerKind::kConv2d;
    l.name = std::move(name);
    l.inChannels = in_c;
    l.outChannels = out_c;
    l.kernelH = kh;
    l.kernelW = kw;
    l.stride = stride;
    l.padding = padding;
    l.inH = in_h;
    l.inW = in_w;
    DIVA_ASSERT(l.outH() > 0 && l.outW() > 0,
                "conv ", l.name, " collapses spatially");
    return l;
}

Layer
Layer::depthwiseConv2d(std::string name, int channels, int kh, int kw,
                       int stride, int padding, int in_h, int in_w)
{
    Layer l = conv2d(std::move(name), channels, channels, kh, kw, stride,
                     padding, in_h, in_w);
    l.kind = LayerKind::kDepthwiseConv2d;
    return l;
}

Layer
Layer::linear(std::string name, int in_f, int out_f)
{
    Layer l;
    l.kind = LayerKind::kLinear;
    l.name = std::move(name);
    l.inFeatures = in_f;
    l.outFeatures = out_f;
    return l;
}

Layer
Layer::timeSeriesLinear(std::string name, int in_f, int out_f,
                        int seq_len, bool sequential)
{
    Layer l;
    l.kind = LayerKind::kTimeSeriesLinear;
    l.name = std::move(name);
    l.inFeatures = in_f;
    l.outFeatures = out_f;
    l.seqLen = seq_len;
    l.sequential = sequential;
    return l;
}

Layer
Layer::attentionScores(std::string name, int num_heads, int head_dim,
                       int seq_len)
{
    Layer l;
    l.kind = LayerKind::kAttentionMatmul;
    l.name = std::move(name);
    l.numHeads = num_heads;
    l.headDim = head_dim;
    l.seqLen = seq_len;
    // scores = Q(L,d) * K^T(d,L): (M,K,N) = (L, d, L)
    l.inFeatures = head_dim;
    l.outFeatures = seq_len;
    return l;
}

Layer
Layer::attentionContext(std::string name, int num_heads, int head_dim,
                        int seq_len)
{
    Layer l;
    l.kind = LayerKind::kAttentionMatmul;
    l.name = std::move(name);
    l.numHeads = num_heads;
    l.headDim = head_dim;
    l.seqLen = seq_len;
    // context = P(L,L) * V(L,d): (M,K,N) = (L, L, d)
    l.inFeatures = seq_len;
    l.outFeatures = head_dim;
    return l;
}

Layer
Layer::pool(std::string name, int channels, int kh, int kw, int stride,
            int in_h, int in_w)
{
    Layer l;
    l.kind = LayerKind::kPool;
    l.name = std::move(name);
    l.inChannels = channels;
    l.outChannels = channels;
    l.kernelH = kh;
    l.kernelW = kw;
    l.stride = stride;
    l.padding = 0;
    l.inH = in_h;
    l.inW = in_w;
    return l;
}

int
Layer::outH() const
{
    return (inH + 2 * padding - kernelH) / stride + 1;
}

int
Layer::outW() const
{
    return (inW + 2 * padding - kernelW) / stride + 1;
}

bool
Layer::hasWeights() const
{
    switch (kind) {
      case LayerKind::kConv2d:
      case LayerKind::kDepthwiseConv2d:
      case LayerKind::kLinear:
      case LayerKind::kTimeSeriesLinear:
        return true;
      case LayerKind::kAttentionMatmul:
      case LayerKind::kPool:
        return false;
    }
    return false;
}

std::int64_t
Layer::paramCount() const
{
    switch (kind) {
      case LayerKind::kConv2d:
        return std::int64_t(inChannels) * outChannels * kernelH * kernelW
               + outChannels;
      case LayerKind::kDepthwiseConv2d:
        return std::int64_t(inChannels) * kernelH * kernelW + inChannels;
      case LayerKind::kLinear:
      case LayerKind::kTimeSeriesLinear:
        return std::int64_t(inFeatures) * outFeatures + outFeatures;
      case LayerKind::kAttentionMatmul:
      case LayerKind::kPool:
        return 0;
    }
    return 0;
}

Elems
Layer::outputElemsPerExample() const
{
    switch (kind) {
      case LayerKind::kConv2d:
      case LayerKind::kDepthwiseConv2d:
      case LayerKind::kPool:
        return Elems(outChannels) * Elems(outH()) * Elems(outW());
      case LayerKind::kLinear:
        return Elems(outFeatures);
      case LayerKind::kTimeSeriesLinear:
        return Elems(outFeatures) * Elems(seqLen);
      case LayerKind::kAttentionMatmul:
        return Elems(numHeads) * Elems(seqLen) * Elems(outFeatures);
    }
    return 0;
}

GemmInstance
Layer::forwardGemm(int batch) const
{
    const std::int64_t b = batch;
    switch (kind) {
      case LayerKind::kConv2d: {
        // (B*P*Q, Cin*R*S, Cout)
        const std::int64_t pq = std::int64_t(outH()) * outW();
        const std::int64_t crs =
            std::int64_t(inChannels) * kernelH * kernelW;
        return {GemmShape(b * pq, crs, outChannels), 1};
      }
      case LayerKind::kDepthwiseConv2d: {
        // One (B*P*Q, R*S, 1) GEMM per channel.
        const std::int64_t pq = std::int64_t(outH()) * outW();
        const std::int64_t rs = std::int64_t(kernelH) * kernelW;
        return {GemmShape(b * pq, rs, 1), std::uint64_t(inChannels)};
      }
      case LayerKind::kLinear:
        return {GemmShape(b, inFeatures, outFeatures), 1};
      case LayerKind::kTimeSeriesLinear:
        if (sequential) {
            // One (B, I, O) GEMM per timestep (recurrent projection).
            return {GemmShape(b, inFeatures, outFeatures),
                    std::uint64_t(seqLen)};
        }
        return {GemmShape(b * seqLen, inFeatures, outFeatures), 1};
      case LayerKind::kAttentionMatmul:
        // One (L, d, L) or (L, L, d) matmul per example per head.
        return {GemmShape(seqLen, inFeatures, outFeatures),
                std::uint64_t(b) * std::uint64_t(numHeads)};
      case LayerKind::kPool:
        return {};
    }
    return {};
}

GemmInstance
Layer::actGradGemm(int batch) const
{
    const std::int64_t b = batch;
    switch (kind) {
      case LayerKind::kConv2d: {
        // G(X) = G(Y) * W^T in the im2col domain:
        // (B*P*Q, Cout, Cin*R*S)
        const std::int64_t pq = std::int64_t(outH()) * outW();
        const std::int64_t crs =
            std::int64_t(inChannels) * kernelH * kernelW;
        return {GemmShape(b * pq, outChannels, crs), 1};
      }
      case LayerKind::kDepthwiseConv2d: {
        const std::int64_t pq = std::int64_t(outH()) * outW();
        const std::int64_t rs = std::int64_t(kernelH) * kernelW;
        return {GemmShape(b * pq, 1, rs), std::uint64_t(inChannels)};
      }
      case LayerKind::kLinear:
        return {GemmShape(b, outFeatures, inFeatures), 1};
      case LayerKind::kTimeSeriesLinear:
        if (sequential) {
            return {GemmShape(b, outFeatures, inFeatures),
                    std::uint64_t(seqLen)};
        }
        return {GemmShape(b * seqLen, outFeatures, inFeatures), 1};
      case LayerKind::kAttentionMatmul:
        // Gradients flow to both activation operands -> two matmuls of
        // the forward magnitude per example per head.
        return {GemmShape(seqLen, outFeatures, inFeatures),
                2ULL * std::uint64_t(b) * std::uint64_t(numHeads)};
      case LayerKind::kPool:
        return {};
    }
    return {};
}

GemmInstance
Layer::perBatchWGradGemm(int batch) const
{
    const std::int64_t b = batch;
    switch (kind) {
      case LayerKind::kConv2d: {
        // (Cin*R*S, B*P*Q, Cout): K grows with B, reducing over the
        // whole mini-batch inside the GEMM.
        const std::int64_t pq = std::int64_t(outH()) * outW();
        const std::int64_t crs =
            std::int64_t(inChannels) * kernelH * kernelW;
        return {GemmShape(crs, b * pq, outChannels), 1};
      }
      case LayerKind::kDepthwiseConv2d: {
        const std::int64_t pq = std::int64_t(outH()) * outW();
        const std::int64_t rs = std::int64_t(kernelH) * kernelW;
        return {GemmShape(rs, b * pq, 1), std::uint64_t(inChannels)};
      }
      case LayerKind::kLinear:
        return {GemmShape(inFeatures, b, outFeatures), 1};
      case LayerKind::kTimeSeriesLinear:
        return {GemmShape(inFeatures, b * seqLen, outFeatures), 1};
      case LayerKind::kAttentionMatmul:
      case LayerKind::kPool:
        return {};
    }
    return {};
}

GemmInstance
Layer::perExampleWGradGemm(int batch) const
{
    const std::uint64_t b = std::uint64_t(batch);
    switch (kind) {
      case LayerKind::kConv2d: {
        // B independent (Cin*R*S, P*Q, Cout) GEMMs: K = P*Q no longer
        // scales with the mini-batch (Figure 6, right column).
        const std::int64_t pq = std::int64_t(outH()) * outW();
        const std::int64_t crs =
            std::int64_t(inChannels) * kernelH * kernelW;
        return {GemmShape(crs, pq, outChannels), b};
      }
      case LayerKind::kDepthwiseConv2d: {
        const std::int64_t pq = std::int64_t(outH()) * outW();
        const std::int64_t rs = std::int64_t(kernelH) * kernelW;
        return {GemmShape(rs, pq, 1), b * std::uint64_t(inChannels)};
      }
      case LayerKind::kLinear:
        // B rank-1 outer products: (I, 1, O).
        return {GemmShape(inFeatures, 1, outFeatures), b};
      case LayerKind::kTimeSeriesLinear:
        // (I, L, O): the time dimension is reduced inside the GEMM but
        // the mini-batch is not.
        return {GemmShape(inFeatures, seqLen, outFeatures), b};
      case LayerKind::kAttentionMatmul:
      case LayerKind::kPool:
        return {};
    }
    return {};
}

} // namespace diva
