/**
 * @file
 * Transformer and RNN benchmark builders: BERT-base/large encoders and
 * two character-level LSTM classifiers (after the Opacus char-LSTM
 * example the paper cites for its LSTM benchmarks).
 */

#include "models/zoo.h"

#include <string>

namespace diva
{

namespace
{

constexpr int kNumClasses = 10;

Network
bert(const std::string &name, int num_layers, int hidden, int num_heads,
     int ffn, int seq_len)
{
    Network net;
    net.name = name;
    net.family = ModelFamily::kTransformer;
    net.inputElemsPerExample = Elems(hidden) * Elems(seq_len);
    const int head_dim = hidden / num_heads;

    for (int i = 0; i < num_layers; ++i) {
        const std::string p = "encoder" + std::to_string(i) + ".";
        net.layers.push_back(
            Layer::timeSeriesLinear(p + "q_proj", hidden, hidden,
                                    seq_len));
        net.layers.push_back(
            Layer::timeSeriesLinear(p + "k_proj", hidden, hidden,
                                    seq_len));
        net.layers.push_back(
            Layer::timeSeriesLinear(p + "v_proj", hidden, hidden,
                                    seq_len));
        net.layers.push_back(
            Layer::attentionScores(p + "attn_scores", num_heads,
                                   head_dim, seq_len));
        net.layers.push_back(
            Layer::attentionContext(p + "attn_context", num_heads,
                                    head_dim, seq_len));
        net.layers.push_back(
            Layer::timeSeriesLinear(p + "attn_out", hidden, hidden,
                                    seq_len));
        net.layers.push_back(
            Layer::timeSeriesLinear(p + "ffn_in", hidden, ffn, seq_len));
        net.layers.push_back(
            Layer::timeSeriesLinear(p + "ffn_out", ffn, hidden,
                                    seq_len));
    }
    net.layers.push_back(Layer::linear("classifier", hidden,
                                       kNumClasses));
    return net;
}

Network
lstm(const std::string &name, int num_layers, int hidden, int seq_len)
{
    Network net;
    net.name = name;
    net.family = ModelFamily::kRnn;
    net.inputElemsPerExample = Elems(hidden) * Elems(seq_len);

    for (int i = 0; i < num_layers; ++i) {
        const std::string p = "lstm" + std::to_string(i) + ".";
        // Input projection x_t * W_ih: batched over all timesteps.
        net.layers.push_back(
            Layer::timeSeriesLinear(p + "ih", hidden, 4 * hidden,
                                    seq_len));
        // Recurrent projection h_{t-1} * W_hh: inherently sequential,
        // one (B, H, 4H) GEMM per timestep.
        net.layers.push_back(
            Layer::timeSeriesLinear(p + "hh", hidden, 4 * hidden,
                                    seq_len, /*sequential=*/true));
    }
    net.layers.push_back(Layer::linear("classifier", hidden,
                                       kNumClasses));
    return net;
}

} // namespace

Network
bertBase(int seq_len)
{
    return bert("BERT-base", 12, 768, 12, 3072, seq_len);
}

Network
bertLarge(int seq_len)
{
    return bert("BERT-large", 24, 1024, 16, 4096, seq_len);
}

Network
lstmSmall(int seq_len)
{
    return lstm("LSTM-small", 1, 256, seq_len);
}

Network
lstmLarge(int seq_len)
{
    return lstm("LSTM-large", 2, 1024, seq_len);
}

std::vector<Network>
allModels()
{
    return {vgg16(),      resnet50(),  resnet152(),
            squeezenet(), mobilenet(), bertBase(),
            bertLarge(),  lstmSmall(), lstmLarge()};
}

std::vector<Network>
breakdownModels()
{
    return {vgg16(), resnet152(), bertLarge(), lstmLarge()};
}

} // namespace diva
