/**
 * @file
 * Post-sweep analysis: summary statistics over result metrics and
 * Pareto-frontier extraction over user-chosen objectives (e.g.
 * iteration cycles vs. energy vs. engine area).
 */

#ifndef DIVA_SWEEP_AGGREGATE_H
#define DIVA_SWEEP_AGGREGATE_H

#include <cstddef>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "sweep/scenario.h"

namespace diva
{

/** Order statistics of one metric across a sweep. */
struct SummaryStats
{
    std::size_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double median = 0.0;
    double p95 = 0.0;
};

/**
 * Summarize a value series. Median and p95 use linear interpolation
 * between order statistics; an empty series yields all-zero stats.
 */
SummaryStats summarize(std::vector<double> values);

/** Sweep objectives usable for summaries and Pareto extraction. */
enum class Objective
{
    kCycles,
    kSeconds,
    kUtilization,
    kEnergy,
    kDramBytes,
    kEnginePowerW,
    kEngineAreaMm2,
};

/** CLI/CSV name of an objective ("cycles", "energy", ...). */
const char *objectiveName(Objective o);

/** Parse an objective name; nullopt for unknown names. */
std::optional<Objective> objectiveFromName(const std::string &name);

/** The objective's value in one result. */
double objectiveValue(const ScenarioResult &r, Objective o);

/** Whether bigger is better (only utilization); others minimize. */
bool objectiveMaximized(Objective o);

/** Per-metric summaries over the successful results of a sweep. */
struct SweepSummary
{
    SummaryStats cycles;
    SummaryStats seconds;
    SummaryStats utilization;
    SummaryStats energyJ;
};

SweepSummary summarizeResults(const std::vector<ScenarioResult> &results);

/**
 * Indices (ascending) of the results on the Pareto frontier of the
 * given objectives: no other successful result is at least as good in
 * every objective and strictly better in one. Results with errors
 * never make the frontier. Duplicate objective vectors all survive.
 */
std::vector<std::size_t>
paretoFrontier(const std::vector<ScenarioResult> &results,
               const std::vector<Objective> &objectives);

/**
 * Constraints for the energy-constrained search. Unset budgets
 * (infinity) are unconstrained; at least one must be finite for
 * energyConstrainedSearch to do anything interesting.
 */
struct EnergyBudget
{
    /** Max energy per training iteration in joules (--budget-j). */
    double maxJoulesPerIteration = std::numeric_limits<double>::infinity();

    /** Max engine TDP in watts, pod-wide for pod scenarios (--budget-w). */
    double maxPowerW = std::numeric_limits<double>::infinity();
};

/** Outcome of an energy-constrained search over a sweep's results. */
struct EnergySearchResult
{
    /** Indices (ascending) of successful results within budget. */
    std::vector<std::size_t> feasible;

    /**
     * Feasible index with the highest training throughput
     * (examples/second); ties break toward lower energy, then input
     * order. nullopt when nothing is feasible.
     */
    std::optional<std::size_t> best;

    /**
     * Pareto frontier over (seconds, energy) restricted to the
     * feasible set -- the budget-respecting latency/energy trade-off
     * curve. Indices into `results`, ascending.
     */
    std::vector<std::size_t> frontier;
};

/** Training throughput of one result in examples per second. */
double throughputExamplesPerSec(const ScenarioResult &r);

/**
 * Best config under an energy budget: filter successful results to
 * those within every finite budget, pick the highest-throughput one,
 * and expose the feasible (seconds, energy) Pareto frontier. Results
 * without an energy model (energyJ <= 0, e.g. the GPU roofline
 * backend) are excluded whenever a joules budget is set, and likewise
 * enginePowerW <= 0 under a watts budget -- a missing model must not
 * trivially satisfy the constraint.
 */
EnergySearchResult
energyConstrainedSearch(const std::vector<ScenarioResult> &results,
                        const EnergyBudget &budget);

} // namespace diva

#endif // DIVA_SWEEP_AGGREGATE_H
