/**
 * @file
 * Post-sweep analysis: summary statistics over result metrics and
 * Pareto-frontier extraction over user-chosen objectives (e.g.
 * iteration cycles vs. energy vs. engine area).
 */

#ifndef DIVA_SWEEP_AGGREGATE_H
#define DIVA_SWEEP_AGGREGATE_H

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "sweep/scenario.h"

namespace diva
{

/** Order statistics of one metric across a sweep. */
struct SummaryStats
{
    std::size_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double median = 0.0;
    double p95 = 0.0;
};

/**
 * Summarize a value series. Median and p95 use linear interpolation
 * between order statistics; an empty series yields all-zero stats.
 */
SummaryStats summarize(std::vector<double> values);

/** Sweep objectives usable for summaries and Pareto extraction. */
enum class Objective
{
    kCycles,
    kSeconds,
    kUtilization,
    kEnergy,
    kDramBytes,
    kEnginePowerW,
    kEngineAreaMm2,
};

/** CLI/CSV name of an objective ("cycles", "energy", ...). */
const char *objectiveName(Objective o);

/** Parse an objective name; nullopt for unknown names. */
std::optional<Objective> objectiveFromName(const std::string &name);

/** The objective's value in one result. */
double objectiveValue(const ScenarioResult &r, Objective o);

/** Whether bigger is better (only utilization); others minimize. */
bool objectiveMaximized(Objective o);

/** Per-metric summaries over the successful results of a sweep. */
struct SweepSummary
{
    SummaryStats cycles;
    SummaryStats seconds;
    SummaryStats utilization;
    SummaryStats energyJ;
};

SweepSummary summarizeResults(const std::vector<ScenarioResult> &results);

/**
 * Indices (ascending) of the results on the Pareto frontier of the
 * given objectives: no other successful result is at least as good in
 * every objective and strictly better in one. Results with errors
 * never make the frontier. Duplicate objective vectors all survive.
 */
std::vector<std::size_t>
paretoFrontier(const std::vector<ScenarioResult> &results,
               const std::vector<Objective> &objectives);

} // namespace diva

#endif // DIVA_SWEEP_AGGREGATE_H
