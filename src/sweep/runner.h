/**
 * @file
 * Parallel sweep execution with a canonical-key result cache.
 *
 * The runner simulates each *unique* scenario exactly once on a
 * fixed-size worker pool and assembles results in scenario order, so
 * the report is bit-identical whatever the thread count. Scenarios
 * whose canonical key was already simulated -- duplicates within one
 * run, repeats across run() calls on the same runner, or (with
 * SweepOptions::cacheDir) results persisted by earlier processes --
 * are served from the cache and flagged as hits. Failed results are
 * never cached beyond the run that produced them.
 *
 * Scenario evaluation is delegated to the pluggable backend layer
 * (src/backend/): runScenario() resolves the scenario's backend
 * through the BackendRegistry, and a shared thread-safe PlanCache
 * memoizes workload lowering (buildModel + buildOpStream) so a sweep
 * crossing many design points with few workloads builds each workload
 * once, not once per cell.
 */

#ifndef DIVA_SWEEP_RUNNER_H
#define DIVA_SWEEP_RUNNER_H

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "backend/plan_cache.h"
#include "sweep/disk_cache.h"
#include "sweep/scenario.h"
#include "sweep/spec.h"

namespace diva
{

/** Sweep execution options. */
struct SweepOptions
{
    /** Worker threads; values < 1 are clamped to 1. */
    int threads = 1;

    /**
     * Keep results cached across run() calls on the same runner.
     * Within a single run() duplicates are always simulated once.
     * Failed results are never kept across runs: a transient failure
     * is retried, not replayed.
     */
    bool cacheAcrossRuns = true;

    /**
     * Memoize workload plans (buildModel + buildOpStream) across
     * scenarios and run() calls. Results are byte-identical either
     * way; disable only to benchmark plan lowering or to verify that
     * identity.
     */
    bool planCache = true;

    /**
     * Lock stripes of the plan cache (clamped to >= 1). Any width
     * yields identical plans and identical hit/miss totals; wider
     * spreads concurrent lookups over more mutexes.
     */
    std::size_t planCacheStripes = PlanCache::kDefaultStripes;

    /**
     * When non-empty, persist results in a DiskCache under this
     * directory: previously stored scenarios are served without
     * simulation (counted as cache hits) and fresh successful results
     * are appended after every run(). See DiskCache::defaultDir().
     */
    std::string cacheDir;

    /**
     * Invoked after each completed simulation with (done, total,
     * scenario). Called from worker threads under a lock; completion
     * order is nondeterministic under parallel execution, so route
     * progress to a side channel (stderr), never into sweep output.
     */
    std::function<void(std::size_t, std::size_t, const Scenario &)>
        progress;
};

/** Outcome of one run() call. */
struct SweepReport
{
    /** One result per input scenario, in input order. */
    std::vector<ScenarioResult> results;

    /** Scenarios served from the cache (duplicates + cross-run hits). */
    std::size_t cacheHits = 0;

    /** Scenarios that required a fresh simulation. */
    std::size_t cacheMisses = 0;

    /** Results with a non-empty error. */
    std::size_t failures = 0;

    /**
     * Workload-plan cache accounting for this run: lookups served
     * from (hits) or added to (misses) the shared PlanCache. Both are
     * deterministic across thread counts; both are zero when
     * SweepOptions::planCache is false.
     */
    std::size_t planHits = 0;
    std::size_t planMisses = 0;
};

/** Executes scenario lists / specs; owns the result and plan caches. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts = {});

    /** Expand `spec` and run every scenario. */
    SweepReport run(const SweepSpec &spec);

    /** Run an explicit scenario list. */
    SweepReport run(const std::vector<Scenario> &scenarios);

    /** Number of cached unique-scenario results (memory + preload). */
    std::size_t cacheSize() const
    {
        return cache_.size() + persistent_.size();
    }

    /** Drop the in-memory caches (the disk store is untouched). */
    void clearCache()
    {
        cache_.clear();
        persistent_.clear();
    }

    const SweepOptions &options() const { return opts_; }

    /** The persistent store, or nullptr when options().cacheDir empty. */
    const DiskCache *diskCache() const { return disk_.get(); }

    /** The shared workload-plan cache (disabled when !opts.planCache). */
    const PlanCache &planCache() const { return plans_; }

  private:
    /** The cached result under `key`, or nullptr. */
    const ScenarioResult *cached(const std::string &key) const;

    SweepOptions opts_;
    PlanCache plans_;
    /**
     * canonical key -> successful result, fresh simulations only
     * (failures are never kept). Cleared per run() when
     * !opts.cacheAcrossRuns; unused when a disk store exists.
     */
    std::unordered_map<std::string, ScenarioResult> cache_;
    /**
     * In-memory mirror of the disk store: loaded *once* at
     * construction, then extended with every appended result -- never
     * re-read per run(). Empty without a disk store.
     */
    std::unordered_map<std::string, ScenarioResult> persistent_;
    std::unique_ptr<DiskCache> disk_;
};

/**
 * Simulate one scenario synchronously through the backend registry,
 * memoizing workload plans in `plans` (shared across calls).
 */
ScenarioResult runScenario(const Scenario &scenario, PlanCache &plans);

/** Convenience overload with a private, single-use plan cache. */
ScenarioResult runScenario(const Scenario &scenario);

} // namespace diva

#endif // DIVA_SWEEP_RUNNER_H
