/**
 * @file
 * Parallel sweep execution with a canonical-key result cache.
 *
 * The runner simulates each *unique* scenario exactly once on a
 * fixed-size worker pool and assembles results in scenario order, so
 * the report is bit-identical whatever the thread count. Scenarios
 * whose canonical key was already simulated -- duplicates within one
 * run, repeats across run() calls on the same runner, or (with
 * SweepOptions::cacheDir) results persisted by earlier processes --
 * are served from the cache and flagged as hits. Failed results are
 * never cached beyond the run that produced them.
 */

#ifndef DIVA_SWEEP_RUNNER_H
#define DIVA_SWEEP_RUNNER_H

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sweep/disk_cache.h"
#include "sweep/scenario.h"
#include "sweep/spec.h"

namespace diva
{

/** Sweep execution options. */
struct SweepOptions
{
    /** Worker threads; values < 1 are clamped to 1. */
    int threads = 1;

    /**
     * Keep results cached across run() calls on the same runner.
     * Within a single run() duplicates are always simulated once.
     * Failed results are never kept across runs: a transient failure
     * is retried, not replayed.
     */
    bool cacheAcrossRuns = true;

    /**
     * When non-empty, persist results in a DiskCache under this
     * directory: previously stored scenarios are served without
     * simulation (counted as cache hits) and fresh successful results
     * are appended after every run(). See DiskCache::defaultDir().
     */
    std::string cacheDir;

    /**
     * Invoked after each completed simulation with (done, total,
     * scenario). Called from worker threads under a lock; completion
     * order is nondeterministic under parallel execution, so route
     * progress to a side channel (stderr), never into sweep output.
     */
    std::function<void(std::size_t, std::size_t, const Scenario &)>
        progress;
};

/** Outcome of one run() call. */
struct SweepReport
{
    /** One result per input scenario, in input order. */
    std::vector<ScenarioResult> results;

    /** Scenarios served from the cache (duplicates + cross-run hits). */
    std::size_t cacheHits = 0;

    /** Scenarios that required a fresh simulation. */
    std::size_t cacheMisses = 0;

    /** Results with a non-empty error. */
    std::size_t failures = 0;
};

/** Executes scenario lists / specs; owns the result cache. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts = {});

    /** Expand `spec` and run every scenario. */
    SweepReport run(const SweepSpec &spec);

    /** Run an explicit scenario list. */
    SweepReport run(const std::vector<Scenario> &scenarios);

    /** Number of cached unique-scenario results. */
    std::size_t cacheSize() const { return cache_.size(); }

    /** Drop the in-memory cache (the disk store is untouched). */
    void clearCache() { cache_.clear(); }

    const SweepOptions &options() const { return opts_; }

    /** The persistent store, or nullptr when options().cacheDir empty. */
    const DiskCache *diskCache() const { return disk_.get(); }

  private:
    void preloadFromDisk();

    SweepOptions opts_;
    /** canonical key -> successful result (failures are never kept). */
    std::unordered_map<std::string, ScenarioResult> cache_;
    std::unique_ptr<DiskCache> disk_;
};

/** Simulate one scenario synchronously (no cache, no pool). */
ScenarioResult runScenario(const Scenario &scenario);

} // namespace diva

#endif // DIVA_SWEEP_RUNNER_H
