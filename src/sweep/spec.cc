#include "sweep/spec.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "backend/registry.h"
#include "common/logging.h"

namespace diva
{

SweepSpec::Expansion
SweepSpec::expand() const
{
    if (models.empty())
        DIVA_FATAL("sweep spec has no model axis");

    // The backend axis as (kind, backendId) pairs: names resolve
    // through the registry; built-in names keep an empty id so their
    // canonical keys stay stable.
    std::vector<std::pair<SweepBackend, std::string>> backend_axis;
    if (!backendNames.empty()) {
        for (const std::string &name : backendNames) {
            const SimBackend *b =
                BackendRegistry::instance().find(name);
            if (!b)
                DIVA_FATAL("unknown sweep backend '", name,
                           "'; see BackendRegistry names()");
            backend_axis.emplace_back(
                b->kind(),
                name == backendName(b->kind()) ? "" : name);
        }
    } else {
        for (SweepBackend b : backends)
            backend_axis.emplace_back(b, "");
    }

    const bool needs_chip_configs = std::any_of(
        backend_axis.begin(), backend_axis.end(),
        [](const auto &b) { return b.first != SweepBackend::kGpu; });
    const bool has_gpu = std::any_of(
        backend_axis.begin(), backend_axis.end(),
        [](const auto &b) { return b.first == SweepBackend::kGpu; });
    if (backend_axis.empty())
        DIVA_FATAL("sweep spec has no backend axis");
    if (needs_chip_configs && configs.empty())
        DIVA_FATAL("sweep spec has no accelerator-config axis");
    if (has_gpu && gpus.empty())
        DIVA_FATAL("sweep spec selects the GPU backend but lists no GPUs");

    // A GPU-only spec still needs one placeholder config to iterate.
    std::vector<AcceleratorConfig> chip_configs = configs;
    if (chip_configs.empty())
        chip_configs.emplace_back();

    // Pod axis defaults to one default-shaped pod.
    std::vector<MultiChipConfig> pod_axis = pods;
    if (pod_axis.empty())
        pod_axis.emplace_back();

    Expansion out;
    std::unordered_set<std::string> seen;

    auto emit = [&](Scenario &&s) {
        ++out.rawCount;
        if (s.backend != SweepBackend::kGpu &&
            !s.config.validationError().empty()) {
            ++out.invalidSkipped;
            return;
        }
        if (!seen.insert(s.canonicalKey()).second) {
            ++out.duplicatesRemoved;
            return;
        }
        out.scenarios.push_back(std::move(s));
    };

    for (const AcceleratorConfig &cfg : chip_configs)
        for (const std::string &model : models)
            for (int scale : modelScales)
                for (TrainingAlgorithm algo : algorithms)
                    for (int batch : batches)
                        for (int microbatch : microbatches)
                            for (const auto &[backend, id] :
                                 backend_axis) {
                                Scenario s;
                                s.config = cfg;
                                s.model = model;
                                s.modelScale = scale;
                                s.algorithm = algo;
                                s.batch = batch;
                                s.microbatch = microbatch;
                                s.backend = backend;
                                s.backendId = id;
                                s.memoryBudget = memoryBudget;
                                switch (backend) {
                                  case SweepBackend::kSingleChip:
                                    emit(std::move(s));
                                    break;
                                  case SweepBackend::kMultiChip:
                                    for (const MultiChipConfig &pod :
                                         pod_axis) {
                                        Scenario p = s;
                                        p.pod = pod;
                                        emit(std::move(p));
                                    }
                                    break;
                                  case SweepBackend::kGpu:
                                    for (const GpuConfig &gpu : gpus) {
                                        Scenario g = s;
                                        g.gpu = gpu;
                                        emit(std::move(g));
                                    }
                                    break;
                                }
                            }
    return out;
}

} // namespace diva
