/**
 * @file
 * Declarative description of a design-space sweep: cartesian axes over
 * accelerator design points, zoo models, input scales, batch and
 * micro-batch sizes, training algorithms and execution backends.
 * expand() takes the full cartesian product, drops invalid design
 * points (e.g. a WS array with a PPU), and deduplicates scenarios
 * whose canonical keys coincide.
 */

#ifndef DIVA_SWEEP_SPEC_H
#define DIVA_SWEEP_SPEC_H

#include <cstddef>
#include <vector>

#include "sweep/scenario.h"

namespace diva
{

/** Cartesian sweep axes. Empty required axes make expand() fatal. */
struct SweepSpec
{
    /** Accelerator design points (required unless only kGpu backends). */
    std::vector<AcceleratorConfig> configs;

    /** Zoo model names (required; see knownModels()). */
    std::vector<std::string> models;

    /** Input scales; 0 = paper default. */
    std::vector<int> modelScales{0};

    /** Mini-batch sizes; kAutoBatch = Figure-5/13 protocol. */
    std::vector<int> batches{kAutoBatch};

    /** Micro-batch sizes; 0 = monolithic iteration. */
    std::vector<int> microbatches{0};

    std::vector<TrainingAlgorithm> algorithms{TrainingAlgorithm::kDpSgdR};

    std::vector<SweepBackend> backends{SweepBackend::kSingleChip};

    /**
     * Backend axis by BackendRegistry name; when non-empty it
     * replaces `backends`. Each name resolves through the registry
     * (unknown names are fatal) to the backend's kind() for axis
     * crossing, and non-built-in names are carried into
     * Scenario::backendId -- so a registered custom backend is
     * sweepable with no enum edits.
     */
    std::vector<std::string> backendNames;

    /** Pod shapes crossed in when backends contains kMultiChip. */
    std::vector<MultiChipConfig> pods;

    /** GPU design points crossed in when backends contains kGpu. */
    std::vector<GpuConfig> gpus;

    /** Device-memory budget applied to every kAutoBatch scenario. */
    Bytes memoryBudget = 16_GiB;

    /** Expansion outcome: scenarios plus accounting of what was cut. */
    struct Expansion
    {
        /** Deduplicated scenarios in deterministic axis-major order. */
        std::vector<Scenario> scenarios;

        /** Cartesian-product size before any filtering. */
        std::size_t rawCount = 0;

        /** Combos dropped because the config failed validate(). */
        std::size_t invalidSkipped = 0;

        /** Combos dropped as exact canonical-key duplicates. */
        std::size_t duplicatesRemoved = 0;
    };

    /**
     * Expand the axes into a deduplicated scenario list. Ordering is
     * deterministic: config-major, then model, scale, algorithm,
     * batch, micro-batch, backend (pods/GPUs innermost); the first
     * occurrence of each canonical key survives.
     */
    Expansion expand() const;
};

} // namespace diva

#endif // DIVA_SWEEP_SPEC_H
