/**
 * @file
 * A Scenario is one point of a design-space sweep: everything needed
 * to simulate one training iteration -- the accelerator design point,
 * the workload (network-zoo model, input scale, batch/micro-batch,
 * training algorithm) and the execution backend (single chip,
 * data-parallel pod, or roofline GPU model).
 *
 * Scenarios have a canonical string key that identifies the underlying
 * simulation inputs; the sweep runner's result cache and the spec
 * expander's deduplication are both keyed on it.
 */

#ifndef DIVA_SWEEP_SCENARIO_H
#define DIVA_SWEEP_SCENARIO_H

#include <string>
#include <vector>

#include "arch/accelerator_config.h"
#include "common/types.h"
#include "gpu/gpu_model.h"
#include "models/network.h"
#include "sim/multichip.h"
#include "train/algorithm.h"

namespace diva
{

/** Execution backend that evaluates a scenario. */
enum class SweepBackend
{
    /** One accelerator chip via Executor. */
    kSingleChip,
    /** Data-parallel pod via simulateDataParallel. */
    kMultiChip,
    /** Roofline GPU model (Figure 17 protocol). */
    kGpu,
};

/** Short name of a backend ("chip", "pod", "gpu"). */
const char *backendName(SweepBackend b);

/** Sentinel batch meaning "largest vanilla DP-SGD batch that fits". */
constexpr int kAutoBatch = 0;

/** One point of a design-space sweep. */
struct Scenario
{
    /** Accelerator design point (ignored by the GPU backend). */
    AcceleratorConfig config;

    /** Network-zoo model name, e.g. "ResNet-50" (see knownModels()). */
    std::string model;

    /**
     * Input scale: image side for CNNs, sequence length for
     * Transformers/RNNs. 0 selects the paper's baseline (32).
     */
    int modelScale = 0;

    /**
     * Mini-batch size. kAutoBatch applies the paper's Figure-5/13
     * protocol: the largest mini-batch vanilla DP-SGD fits under
     * `memoryBudget`.
     */
    int batch = kAutoBatch;

    /** Micro-batch size for gradient accumulation; 0 = monolithic. */
    int microbatch = 0;

    TrainingAlgorithm algorithm = TrainingAlgorithm::kDpSgdR;

    SweepBackend backend = SweepBackend::kSingleChip;

    /**
     * BackendRegistry name of the backend that evaluates this
     * scenario; empty = the built-in for `backend`. A registered
     * non-built-in backend (whose kind() must equal `backend`, which
     * decides the scenario fields and sweep axes that apply) is
     * routed to by name alone -- see effectiveBackend().
     */
    std::string backendId;

    /** Pod shape; used only by the kMultiChip backend. */
    MultiChipConfig pod;

    /** GPU design point; used only by the kGpu backend. */
    GpuConfig gpu;

    /** Device-memory budget for the kAutoBatch protocol. */
    Bytes memoryBudget = 16_GiB;

    /** Human-readable one-line description. */
    std::string label() const;

    /**
     * The registry name this scenario is evaluated (and keyed,
     * reported) under: backendId when set, else backendName(backend).
     */
    std::string effectiveBackend() const
    {
        return backendId.empty() ? backendName(backend) : backendId;
    }

    /**
     * Canonical key of the simulation inputs this scenario denotes.
     * Two scenarios with equal keys produce identical results; fields
     * irrelevant to the selected backend (e.g. the accelerator config
     * under kGpu, the pod shape under kSingleChip) are excluded so
     * sweeps over unrelated axes collapse into one simulation.
     */
    std::string canonicalKey() const;
};

/** Results and metadata of one simulated scenario. */
struct ScenarioResult
{
    Scenario scenario;

    /** Concrete mini-batch after kAutoBatch resolution. */
    int resolvedBatch = 0;

    Cycles cycles = 0;
    /**
     * Compute / communication split of `cycles`. Single-chip scenarios
     * are all compute; pod scenarios split into the slowest chip's
     * local iteration and the ring all-reduce. Zero for the GPU
     * backend (the roofline model has no cycle notion).
     */
    Cycles computeCycles = 0;
    Cycles allReduceCycles = 0;
    double seconds = 0.0;
    /** Effective FLOPS utilization (chip and pod backends). */
    double utilization = 0.0;
    /** Iteration energy in joules; pod scenarios sum over all chips. */
    double energyJ = 0.0;
    Bytes dramBytes = 0;
    /** Gradient post-processing off-chip traffic (the PPU's target). */
    Bytes postProcDramBytes = 0;
    double enginePowerW = 0.0;
    double engineAreaMm2 = 0.0;

    /** Whether this result was served from the sweep cache. */
    bool cacheHit = false;

    /** Non-empty when the simulation failed (e.g. invalid batch). */
    std::string error;

    bool ok() const { return error.empty(); }
};

/**
 * Build a zoo model by name and input scale (0 = paper default).
 * Calls DIVA_FATAL for unknown names.
 */
Network buildModel(const std::string &name, int scale = 0);

/** Names accepted by buildModel, in the paper's figure ordering. */
std::vector<std::string> knownModels();

/**
 * Resolve a scenario's mini-batch: explicit batches pass through,
 * kAutoBatch applies the Figure-5/13 protocol against the scenario's
 * memory budget (never below 1).
 */
int resolveBatch(const Scenario &s, const Network &net);

} // namespace diva

#endif // DIVA_SWEEP_SCENARIO_H
