#include "sweep/aggregate.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace diva
{

namespace
{

/** Quantile with linear interpolation over a sorted series. */
double
quantileSorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const double pos = q * double(sorted.size() - 1);
    const std::size_t lo = std::size_t(std::floor(pos));
    const std::size_t hi = std::size_t(std::ceil(pos));
    const double frac = pos - double(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

} // namespace

SummaryStats
summarize(std::vector<double> values)
{
    SummaryStats s;
    if (values.empty())
        return s;
    std::sort(values.begin(), values.end());
    s.count = values.size();
    s.min = values.front();
    s.max = values.back();
    s.mean = std::accumulate(values.begin(), values.end(), 0.0) /
             double(values.size());
    s.median = quantileSorted(values, 0.5);
    s.p95 = quantileSorted(values, 0.95);
    return s;
}

const char *
objectiveName(Objective o)
{
    switch (o) {
      case Objective::kCycles: return "cycles";
      case Objective::kSeconds: return "seconds";
      case Objective::kUtilization: return "utilization";
      case Objective::kEnergy: return "energy";
      case Objective::kDramBytes: return "dram_bytes";
      case Objective::kEnginePowerW: return "power";
      case Objective::kEngineAreaMm2: return "area";
    }
    return "?";
}

std::optional<Objective>
objectiveFromName(const std::string &name)
{
    for (Objective o :
         {Objective::kCycles, Objective::kSeconds, Objective::kUtilization,
          Objective::kEnergy, Objective::kDramBytes,
          Objective::kEnginePowerW, Objective::kEngineAreaMm2})
        if (name == objectiveName(o))
            return o;
    return std::nullopt;
}

double
objectiveValue(const ScenarioResult &r, Objective o)
{
    switch (o) {
      case Objective::kCycles: return double(r.cycles);
      case Objective::kSeconds: return r.seconds;
      case Objective::kUtilization: return r.utilization;
      case Objective::kEnergy: return r.energyJ;
      case Objective::kDramBytes: return double(r.dramBytes);
      case Objective::kEnginePowerW: return r.enginePowerW;
      case Objective::kEngineAreaMm2: return r.engineAreaMm2;
    }
    return 0.0;
}

bool
objectiveMaximized(Objective o)
{
    return o == Objective::kUtilization;
}

SweepSummary
summarizeResults(const std::vector<ScenarioResult> &results)
{
    std::vector<double> cycles, seconds, util, energy;
    for (const ScenarioResult &r : results) {
        if (!r.ok())
            continue;
        cycles.push_back(double(r.cycles));
        seconds.push_back(r.seconds);
        util.push_back(r.utilization);
        energy.push_back(r.energyJ);
    }
    SweepSummary s;
    s.cycles = summarize(std::move(cycles));
    s.seconds = summarize(std::move(seconds));
    s.utilization = summarize(std::move(util));
    s.energyJ = summarize(std::move(energy));
    return s;
}

std::vector<std::size_t>
paretoFrontier(const std::vector<ScenarioResult> &results,
               const std::vector<Objective> &objectives)
{
    if (objectives.empty())
        DIVA_FATAL("Pareto extraction needs at least one objective");

    // Signed objective vectors with "smaller is better" everywhere.
    std::vector<std::vector<double>> points(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (!results[i].ok())
            continue;
        points[i].reserve(objectives.size());
        for (Objective o : objectives) {
            const double v = objectiveValue(results[i], o);
            points[i].push_back(objectiveMaximized(o) ? -v : v);
        }
    }

    auto dominates = [](const std::vector<double> &a,
                        const std::vector<double> &b) {
        bool strictly = false;
        for (std::size_t k = 0; k < a.size(); ++k) {
            if (a[k] > b[k])
                return false;
            if (a[k] < b[k])
                strictly = true;
        }
        return strictly;
    };

    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (points[i].empty())
            continue;
        bool dominated = false;
        for (std::size_t j = 0; j < results.size() && !dominated; ++j)
            dominated = !points[j].empty() && j != i &&
                        dominates(points[j], points[i]);
        if (!dominated)
            frontier.push_back(i);
    }
    return frontier;
}

double
throughputExamplesPerSec(const ScenarioResult &r)
{
    if (!(r.seconds > 0.0) || !std::isfinite(r.seconds))
        return 0.0;
    return double(r.resolvedBatch) / r.seconds;
}

EnergySearchResult
energyConstrainedSearch(const std::vector<ScenarioResult> &results,
                        const EnergyBudget &budget)
{
    const bool joules_bound =
        std::isfinite(budget.maxJoulesPerIteration);
    const bool watts_bound = std::isfinite(budget.maxPowerW);

    EnergySearchResult out;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult &r = results[i];
        if (!r.ok())
            continue;
        // A constrained metric must actually be modeled: energyJ <= 0
        // means "no energy model" (GPU roofline), not "free".
        if (joules_bound && (!(r.energyJ > 0.0) ||
                             r.energyJ > budget.maxJoulesPerIteration))
            continue;
        if (watts_bound &&
            (!(r.enginePowerW > 0.0) || r.enginePowerW > budget.maxPowerW))
            continue;
        out.feasible.push_back(i);
    }

    for (std::size_t i : out.feasible) {
        if (!out.best) {
            out.best = i;
            continue;
        }
        const double t = throughputExamplesPerSec(results[i]);
        const double t_best = throughputExamplesPerSec(results[*out.best]);
        if (t > t_best ||
            (t == t_best && results[i].energyJ < results[*out.best].energyJ))
            out.best = i;
    }

    // The budget-respecting trade-off curve, via the shared Pareto
    // machinery on the feasible subset.
    std::vector<ScenarioResult> feasible_results;
    feasible_results.reserve(out.feasible.size());
    for (std::size_t i : out.feasible)
        feasible_results.push_back(results[i]);
    for (std::size_t k : paretoFrontier(
             feasible_results, {Objective::kSeconds, Objective::kEnergy}))
        out.frontier.push_back(out.feasible[k]);
    return out;
}

} // namespace diva
