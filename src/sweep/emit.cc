#include "sweep/emit.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "backend/registry.h"

namespace diva
{

namespace
{

/**
 * Capability flags of the backend a result was evaluated by --
 * resolved by effective name, falling back to the kind's built-in for
 * results whose (since-unregistered) backend is unknown.
 */
BackendCaps
capsFor(const Scenario &s)
{
    const SimBackend *backend =
        BackendRegistry::instance().find(s.effectiveBackend());
    return backend ? backend->capabilities()
                   : BackendRegistry::instance().at(s.backend)
                         .capabilities();
}

} // namespace

std::string
csvHeader()
{
    return "config,dataflow,ppu,pe_rows,pe_cols,sram_mib,dram_gbs,"
           "backend,chips,ici_gbs,link_lat,model,scale,algorithm,"
           "batch,microbatch,cycles,compute_cycles,allreduce_cycles,"
           "seconds,utilization,energy_j,dram_bytes,"
           "postproc_dram_bytes,engine_power_w,engine_area_mm2,error";
}

std::string
csvRow(const ScenarioResult &r)
{
    const Scenario &s = r.scenario;
    const bool gpu = s.backend == SweepBackend::kGpu;
    // Metrics the backend does not model are emitted as empty cells
    // (integral columns) or "nan" (floating columns), never as fake
    // zeros a reader could mistake for measurements.
    const BackendCaps caps = capsFor(s);
    std::ostringstream oss;
    oss << csvCell(gpu ? s.gpu.name : s.config.name) << ','
        << (gpu ? "-" : dataflowName(s.config.dataflow)) << ','
        << (gpu ? 0 : int(s.config.hasPpu)) << ','
        << (gpu ? 0 : s.config.peRows) << ','
        << (gpu ? 0 : s.config.peCols) << ','
        << (gpu ? 0 : s.config.sramBytes >> 20) << ','
        << formatDouble(gpu ? s.gpu.bandwidthGBs
                            : s.config.dramBandwidthGBs)
        << ',' << csvCell(s.effectiveBackend()) << ','
        << (s.backend == SweepBackend::kMultiChip ? s.pod.numChips : 1)
        << ',';
    // Pod link design point; zeros for backends without interconnect.
    if (s.backend == SweepBackend::kMultiChip)
        oss << formatDouble(s.pod.interconnectGBs) << ','
            << s.pod.linkLatencyCycles;
    else
        oss << 0 << ',' << 0;
    oss << ',' << csvCell(s.model) << ',' << s.modelScale << ','
        << csvCell(algorithmName(s.algorithm)) << ',' << r.resolvedBatch
        << ',' << s.microbatch << ',';
    if (caps.cycles)
        oss << r.cycles << ',' << r.computeCycles << ','
            << r.allReduceCycles << ',';
    else
        oss << ",,,";
    oss << formatDouble(r.seconds) << ','
        << (caps.utilization ? formatDouble(r.utilization) : "nan")
        << ',' << (caps.energy ? formatDouble(r.energyJ) : "nan")
        << ',';
    if (caps.dramTraffic)
        oss << r.dramBytes << ',' << r.postProcDramBytes << ',';
    else
        oss << ",,";
    oss << (caps.engineRating ? formatDouble(r.enginePowerW) : "nan")
        << ','
        << (caps.engineRating ? formatDouble(r.engineAreaMm2) : "nan")
        << ',' << csvCell(r.error);
    return oss.str();
}

void
writeCsv(std::ostream &os, const SweepReport &report)
{
    os << csvHeader() << '\n';
    for (const ScenarioResult &r : report.results)
        os << csvRow(r) << '\n';
}

void
writeJson(std::ostream &os, const SweepReport &report)
{
    // No cache accounting here: the file is a pure function of the
    // scenario list, so a rerun against a warm disk cache is
    // byte-identical. Cache hit/miss counts go to the CLI summary.
    os << "{\n  \"failures\": " << report.failures
       << ",\n  \"results\": [";
    for (std::size_t i = 0; i < report.results.size(); ++i) {
        const ScenarioResult &r = report.results[i];
        const Scenario &s = r.scenario;
        const bool gpu = s.backend == SweepBackend::kGpu;
        // Unmodeled metrics are null, never fake zeros.
        const BackendCaps caps = capsFor(s);
        os << (i ? ",\n    {" : "\n    {") << "\"config\": \""
           << jsonEscape(gpu ? s.gpu.name : s.config.name)
           << "\", \"backend\": \""
           << jsonEscape(s.effectiveBackend()) << '"';
        if (s.backend == SweepBackend::kMultiChip)
            os << ", \"chips\": " << s.pod.numChips << ", \"ici_gbs\": "
               << jsonNumber(s.pod.interconnectGBs)
               << ", \"link_lat\": " << s.pod.linkLatencyCycles;
        os << ", \"model\": \"" << jsonEscape(s.model)
           << "\", \"scale\": " << s.modelScale << ", \"algorithm\": \""
           << jsonEscape(algorithmName(s.algorithm))
           << "\", \"batch\": " << r.resolvedBatch
           << ", \"microbatch\": " << s.microbatch << ", \"cycles\": ";
        if (caps.cycles)
            os << r.cycles << ", \"compute_cycles\": "
               << r.computeCycles << ", \"allreduce_cycles\": "
               << r.allReduceCycles;
        else
            os << "null, \"compute_cycles\": null"
               << ", \"allreduce_cycles\": null";
        os << ", \"seconds\": " << jsonNumber(r.seconds)
           << ", \"utilization\": "
           << (caps.utilization ? jsonNumber(r.utilization) : "null")
           << ", \"energy_j\": "
           << (caps.energy ? jsonNumber(r.energyJ) : "null")
           << ", \"dram_bytes\": ";
        if (caps.dramTraffic)
            os << r.dramBytes;
        else
            os << "null";
        if (!r.ok())
            os << ", \"error\": \"" << jsonEscape(r.error) << "\"";
        os << "}";
    }
    os << "\n  ]\n}\n";
}

} // namespace diva
