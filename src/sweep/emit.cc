#include "sweep/emit.h"

#include <cstdio>
#include <sstream>

namespace diva
{

namespace
{

/** Quote a CSV/JSON-unsafe cell per RFC 4180. */
std::string
csvCell(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string quoted = "\"";
    for (char c : s) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

} // namespace

std::string
formatDouble(double v)
{
    // %.17g round-trips but is noisy; prefer the shortest precision
    // that parses back exactly. Deterministic for a given value.
    char buf[64];
    for (int prec = 6; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        double parsed = 0.0;
        std::sscanf(buf, "%lf", &parsed);
        if (parsed == v)
            break;
    }
    return buf;
}

std::string
csvHeader()
{
    return "config,dataflow,ppu,pe_rows,pe_cols,sram_mib,dram_gbs,"
           "backend,chips,model,scale,algorithm,batch,microbatch,"
           "cycles,seconds,utilization,energy_j,dram_bytes,"
           "postproc_dram_bytes,engine_power_w,engine_area_mm2,"
           "cache_hit,error";
}

std::string
csvRow(const ScenarioResult &r)
{
    const Scenario &s = r.scenario;
    const bool gpu = s.backend == SweepBackend::kGpu;
    std::ostringstream oss;
    oss << csvCell(gpu ? s.gpu.name : s.config.name) << ','
        << (gpu ? "-" : dataflowName(s.config.dataflow)) << ','
        << (gpu ? 0 : int(s.config.hasPpu)) << ','
        << (gpu ? 0 : s.config.peRows) << ','
        << (gpu ? 0 : s.config.peCols) << ','
        << (gpu ? 0 : s.config.sramBytes >> 20) << ','
        << formatDouble(gpu ? s.gpu.bandwidthGBs
                            : s.config.dramBandwidthGBs)
        << ',' << backendName(s.backend) << ','
        << (s.backend == SweepBackend::kMultiChip ? s.pod.numChips : 1)
        << ',' << csvCell(s.model) << ',' << s.modelScale << ','
        << csvCell(algorithmName(s.algorithm)) << ',' << r.resolvedBatch
        << ',' << s.microbatch << ',' << r.cycles << ','
        << formatDouble(r.seconds) << ',' << formatDouble(r.utilization)
        << ',' << formatDouble(r.energyJ) << ',' << r.dramBytes << ','
        << r.postProcDramBytes << ',' << formatDouble(r.enginePowerW)
        << ',' << formatDouble(r.engineAreaMm2) << ','
        << int(r.cacheHit) << ',' << csvCell(r.error);
    return oss.str();
}

void
writeCsv(std::ostream &os, const SweepReport &report)
{
    os << csvHeader() << '\n';
    for (const ScenarioResult &r : report.results)
        os << csvRow(r) << '\n';
}

void
writeJson(std::ostream &os, const SweepReport &report)
{
    os << "{\n  \"cache_hits\": " << report.cacheHits
       << ",\n  \"cache_misses\": " << report.cacheMisses
       << ",\n  \"failures\": " << report.failures
       << ",\n  \"results\": [";
    for (std::size_t i = 0; i < report.results.size(); ++i) {
        const ScenarioResult &r = report.results[i];
        const Scenario &s = r.scenario;
        const bool gpu = s.backend == SweepBackend::kGpu;
        os << (i ? ",\n    {" : "\n    {") << "\"config\": \""
           << jsonEscape(gpu ? s.gpu.name : s.config.name)
           << "\", \"backend\": \"" << backendName(s.backend)
           << "\", \"model\": \"" << jsonEscape(s.model)
           << "\", \"scale\": " << s.modelScale << ", \"algorithm\": \""
           << jsonEscape(algorithmName(s.algorithm))
           << "\", \"batch\": " << r.resolvedBatch
           << ", \"microbatch\": " << s.microbatch << ", \"cycles\": "
           << r.cycles << ", \"seconds\": " << formatDouble(r.seconds)
           << ", \"utilization\": " << formatDouble(r.utilization)
           << ", \"energy_j\": " << formatDouble(r.energyJ)
           << ", \"dram_bytes\": " << r.dramBytes << ", \"cache_hit\": "
           << (r.cacheHit ? "true" : "false");
        if (!r.ok())
            os << ", \"error\": \"" << jsonEscape(r.error) << "\"";
        os << "}";
    }
    os << "\n  ]\n}\n";
}

} // namespace diva
