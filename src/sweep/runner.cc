#include "sweep/runner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <sstream>

#include "backend/registry.h"
#include "common/logging.h"
#include "common/task_pool.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace diva
{

namespace
{

/**
 * The inputs that decide which execution plan (model build + op
 * stream) a scenario needs -- the PlanCache's key, minus the resolved
 * batch it cannot know before evaluation. Scenarios sharing a
 * signature share a plan.
 */
std::string
planSignature(const Scenario &s)
{
    std::ostringstream sig;
    sig << s.model << '|' << s.modelScale << '|' << int(s.algorithm)
        << '|' << s.batch << '|' << s.microbatch << '|'
        << s.effectiveBackend();
    return sig.str();
}

} // namespace

ScenarioResult
runScenario(const Scenario &scenario, PlanCache &plans)
{
    ScenarioResult out;
    out.scenario = scenario;
    try {
        // Routed by registry *name*, so a non-built-in backend (set
        // via Scenario::backendId) is reached without any enum edit.
        const SimBackend *backend = BackendRegistry::instance().find(
            scenario.effectiveBackend());
        if (!backend)
            DIVA_FATAL("no backend registered under '",
                       scenario.effectiveBackend(), "'");
        backend->evaluate(scenario, plans, out);
    } catch (const std::exception &e) {
        out.error = e.what();
    }
    return out;
}

ScenarioResult
runScenario(const Scenario &scenario)
{
    PlanCache plans;
    return runScenario(scenario, plans);
}

SweepRunner::SweepRunner(SweepOptions opts)
    : opts_(std::move(opts)),
      plans_(opts_.planCache, opts_.planCacheStripes)
{
    if (opts_.threads < 1)
        opts_.threads = 1;
    if (!opts_.cacheDir.empty()) {
        disk_ = std::make_unique<DiskCache>(opts_.cacheDir);
        // The one and only preload: run() extends this mirror with
        // fresh appends instead of re-reading the store per call.
        persistent_ = disk_->entries();
    }
}

const ScenarioResult *
SweepRunner::cached(const std::string &key) const
{
    if (const auto it = cache_.find(key); it != cache_.end())
        return &it->second;
    if (const auto it = persistent_.find(key); it != persistent_.end())
        return &it->second;
    return nullptr;
}

SweepReport
SweepRunner::run(const SweepSpec &spec)
{
    return run(spec.expand().scenarios);
}

SweepReport
SweepRunner::run(const std::vector<Scenario> &scenarios)
{
    SweepReport report;
    report.results.resize(scenarios.size());

    // The persistent_ mirror always survives (it reflects the disk
    // store); only fresh in-memory results are forgotten between runs.
    if (!opts_.cacheAcrossRuns)
        cache_.clear();

    // Map each scenario to its canonical key; the first scenario to
    // claim an uncached key becomes a simulation job, the rest are
    // cache hits resolved after the pool drains.
    std::vector<std::string> keys(scenarios.size());
    std::vector<std::size_t> jobs; // indices into `scenarios`
    std::unordered_map<std::string, std::size_t> claimed; // key -> job
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        keys[i] = scenarios[i].canonicalKey();
        if (cached(keys[i]) || claimed.count(keys[i])) {
            ++report.cacheHits;
            continue;
        }
        claimed.emplace(keys[i], jobs.size());
        jobs.push_back(i);
        ++report.cacheMisses;
    }

    const PlanCache::Stats plans_before = plans_.stats();

    // Batch the jobs into structure-of-arrays groups keyed on the
    // plan signature (parallel arrays: job index list per signature,
    // in first-appearance order). One worker claims a whole group, so
    // after the first member's PlanCache miss every other member is an
    // in-thread hit -- and two workers never build the same plan
    // concurrently. Each worker still writes only its own jobs'
    // slots, so results are independent of scheduling; the
    // per-scenario assembly below imposes the deterministic order.
    std::vector<std::vector<std::size_t>> groups; // job slots
    {
        std::unordered_map<std::string, std::size_t> group_of;
        for (std::size_t j = 0; j < jobs.size(); ++j) {
            const std::string sig = planSignature(scenarios[jobs[j]]);
            const auto [it, fresh] =
                group_of.emplace(sig, groups.size());
            if (fresh)
                groups.emplace_back();
            groups[it->second].push_back(j);
        }
    }

    std::vector<ScenarioResult> job_results(jobs.size());
    std::atomic<std::size_t> done{0};
    std::mutex progress_mutex;
    {
        obs::ScopedPhase phase("scenario_eval");
        // One persistent-pool lane claims a whole group (see the
        // grouping comment above); the shared TaskPool replaces the
        // per-run() thread spawn/join this loop used to pay.
        TaskPool::shared().parallelFor(
            groups.size(), opts_.threads, [&](std::size_t g) {
                for (const std::size_t j : groups[g]) {
                    job_results[j] =
                        runScenario(scenarios[jobs[j]], plans_);
                    const std::size_t finished = done.fetch_add(1) + 1;
                    if (opts_.progress) {
                        std::lock_guard<std::mutex> lock(progress_mutex);
                        opts_.progress(finished, jobs.size(),
                                       scenarios[jobs[j]]);
                    }
                }
            });
    }

    const PlanCache::Stats plans_after = plans_.stats();
    report.planHits = plans_after.hits() - plans_before.hits();
    report.planMisses = plans_after.misses() - plans_before.misses();

    // Only successful results enter the cross-run cache (and the disk
    // store): a cached failure would replay a possibly transient error
    // forever instead of retrying it. With a disk store, fresh results
    // go into the persistent_ mirror (matching the bytes appended);
    // otherwise into the in-memory cache.
    std::vector<std::pair<std::string, ScenarioResult>> fresh_ok;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        if (!job_results[j].ok())
            continue;
        fresh_ok.emplace_back(keys[jobs[j]], job_results[j]);
    }
    if (disk_) {
        disk_->append(fresh_ok);
        for (const auto &[key, result] : fresh_ok)
            persistent_.emplace(key, result);
    } else {
        for (const auto &[key, result] : fresh_ok)
            cache_.emplace(key, result);
    }

    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const auto claim = claimed.find(keys[i]);
        // Simulated this run, or (for pure hits) already in the cache.
        ScenarioResult r = claim != claimed.end()
                               ? job_results[claim->second]
                               : *cached(keys[i]);
        // Report the requester's own scenario (labels may differ even
        // when the canonical simulation inputs coincide).
        r.scenario = scenarios[i];
        r.cacheHit = claim == claimed.end() || jobs[claim->second] != i;
        if (!r.ok())
            ++report.failures;
        report.results[i] = std::move(r);
    }

    // Published once per run from this (sequential) tail, so the
    // totals are independent of worker scheduling.
    if (auto &metrics = obs::MetricsRegistry::instance();
        metrics.enabled()) {
        metrics.addCounter("sweep.scenarios", scenarios.size());
        metrics.addCounter("sweep.jobs", jobs.size());
        metrics.addCounter("sweep.plan_groups", groups.size());
        metrics.addCounter("sweep.result_cache_hits", report.cacheHits);
        metrics.addCounter("sweep.result_cache_misses",
                           report.cacheMisses);
        metrics.addCounter("sweep.failures", report.failures);
        for (const auto &group : groups)
            metrics.recordValue("sweep.group_size",
                                double(group.size()));
        for (std::size_t j = 0; j < jobs.size(); ++j)
            if (job_results[j].ok())
                metrics.recordValue(
                    "sweep.batch_size",
                    double(job_results[j].resolvedBatch));
    }
    return report;
}

} // namespace diva
