#include "sweep/runner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "energy/energy_model.h"
#include "sim/executor.h"
#include "train/planner.h"

namespace diva
{

namespace
{

void
simulateSingleChip(ScenarioResult &out, const Network &net)
{
    const Scenario &s = out.scenario;
    const OpStream stream =
        out.scenario.microbatch > 0
            ? buildMicrobatchedOpStream(net, s.algorithm,
                                        out.resolvedBatch, s.microbatch)
            : buildOpStream(net, s.algorithm, out.resolvedBatch);
    const SimResult r = Executor(s.config).run(stream);
    out.cycles = r.totalCycles();
    out.computeCycles = out.cycles;
    out.seconds = r.seconds(s.config);
    out.utilization = r.overallUtilization(s.config);
    out.energyJ = EnergyModel::energy(r, s.config).total();
    out.dramBytes = r.totalDram().total();
    out.postProcDramBytes = r.postProcessingDram.total();
    out.enginePowerW = EnergyModel::enginePowerW(s.config);
    out.engineAreaMm2 = EnergyModel::engineAreaMm2(s.config);
}

void
simulateMultiChip(ScenarioResult &out, const Network &net)
{
    const Scenario &s = out.scenario;
    const ScalingResult r = simulateDataParallel(
        s.config, net, s.algorithm, out.resolvedBatch, s.pod);
    out.cycles = r.totalCycles;
    out.computeCycles = r.computeCycles;
    out.allReduceCycles = r.allReduceCycles;
    out.seconds = s.config.cyclesToSeconds(r.totalCycles);
    out.utilization = r.utilization;
    out.energyJ = r.energyJ;
    out.dramBytes = r.dramBytes;
    out.postProcDramBytes = r.postProcDramBytes;
    out.enginePowerW = EnergyModel::enginePowerW(s.config) * s.pod.numChips;
    out.engineAreaMm2 = EnergyModel::engineAreaMm2(s.config);
}

void
simulateGpu(ScenarioResult &out, const Network &net)
{
    const Scenario &s = out.scenario;
    const OpStream stream =
        buildOpStream(net, s.algorithm, out.resolvedBatch);
    out.seconds = GpuModel(s.gpu).bottleneckSeconds(stream);
}

} // namespace

ScenarioResult
runScenario(const Scenario &scenario)
{
    ScenarioResult out;
    out.scenario = scenario;
    try {
        const Network net = buildModel(scenario.model,
                                       scenario.modelScale);
        out.resolvedBatch = resolveBatch(scenario, net);
        switch (scenario.backend) {
          case SweepBackend::kSingleChip:
            simulateSingleChip(out, net);
            break;
          case SweepBackend::kMultiChip:
            simulateMultiChip(out, net);
            break;
          case SweepBackend::kGpu:
            simulateGpu(out, net);
            break;
        }
    } catch (const std::exception &e) {
        out.error = e.what();
    }
    return out;
}

SweepRunner::SweepRunner(SweepOptions opts) : opts_(std::move(opts))
{
    if (opts_.threads < 1)
        opts_.threads = 1;
    if (!opts_.cacheDir.empty()) {
        disk_ = std::make_unique<DiskCache>(opts_.cacheDir);
        preloadFromDisk();
    }
}

void
SweepRunner::preloadFromDisk()
{
    if (!disk_)
        return;
    for (const auto &[key, result] : disk_->entries())
        cache_.emplace(key, result);
}

SweepReport
SweepRunner::run(const SweepSpec &spec)
{
    return run(spec.expand().scenarios);
}

SweepReport
SweepRunner::run(const std::vector<Scenario> &scenarios)
{
    SweepReport report;
    report.results.resize(scenarios.size());

    if (!opts_.cacheAcrossRuns) {
        cache_.clear();
        preloadFromDisk(); // persisted results still count as hits
    }

    // Map each scenario to its canonical key; the first scenario to
    // claim an uncached key becomes a simulation job, the rest are
    // cache hits resolved after the pool drains.
    std::vector<std::string> keys(scenarios.size());
    std::vector<std::size_t> jobs; // indices into `scenarios`
    std::unordered_map<std::string, std::size_t> claimed; // key -> job
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        keys[i] = scenarios[i].canonicalKey();
        if (cache_.count(keys[i]) || claimed.count(keys[i])) {
            ++report.cacheHits;
            continue;
        }
        claimed.emplace(keys[i], jobs.size());
        jobs.push_back(i);
        ++report.cacheMisses;
    }

    // Fixed-size pool over the job list. Each worker writes only its
    // own job's slot, so results are independent of scheduling; the
    // per-scenario assembly below imposes the deterministic order.
    std::vector<ScenarioResult> job_results(jobs.size());
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex progress_mutex;
    auto worker = [&]() {
        for (;;) {
            const std::size_t j = next.fetch_add(1);
            if (j >= jobs.size())
                return;
            job_results[j] = runScenario(scenarios[jobs[j]]);
            const std::size_t finished = done.fetch_add(1) + 1;
            if (opts_.progress) {
                std::lock_guard<std::mutex> lock(progress_mutex);
                opts_.progress(finished, jobs.size(),
                               scenarios[jobs[j]]);
            }
        }
    };
    const std::size_t pool_size =
        std::min<std::size_t>(std::size_t(opts_.threads), jobs.size());
    if (pool_size <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(pool_size);
        for (std::size_t t = 0; t < pool_size; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    // Only successful results enter the cross-run cache (and the disk
    // store): a cached failure would replay a possibly transient error
    // forever instead of retrying it.
    std::vector<std::pair<std::string, ScenarioResult>> fresh_ok;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        if (!job_results[j].ok())
            continue;
        cache_.emplace(keys[jobs[j]], job_results[j]);
        fresh_ok.emplace_back(keys[jobs[j]], job_results[j]);
    }
    if (disk_)
        disk_->append(fresh_ok);

    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const auto claim = claimed.find(keys[i]);
        // Simulated this run, or (for pure hits) already in the cache.
        ScenarioResult r = claim != claimed.end()
                               ? job_results[claim->second]
                               : cache_.at(keys[i]);
        // Report the requester's own scenario (labels may differ even
        // when the canonical simulation inputs coincide).
        r.scenario = scenarios[i];
        r.cacheHit = claim == claimed.end() || jobs[claim->second] != i;
        if (!r.ok())
            ++report.failures;
        report.results[i] = std::move(r);
    }
    return report;
}

} // namespace diva
