/**
 * @file
 * Deterministic CSV and JSON emitters for sweep reports. Output is a
 * pure function of the results (no timestamps, no wall-clock), so a
 * parallel sweep emits bytes identical to a serial one.
 */

#ifndef DIVA_SWEEP_EMIT_H
#define DIVA_SWEEP_EMIT_H

#include <ostream>
#include <string>

#include "sweep/runner.h"

namespace diva
{

/** Header matching csvRow()'s columns. */
std::string csvHeader();

/** One RFC-4180 CSV data row for one result. */
std::string csvRow(const ScenarioResult &r);

/** Emit header + one row per result. */
void writeCsv(std::ostream &os, const SweepReport &report);

/**
 * Emit the report's results as JSON. Like the CSV, the output is a
 * pure function of the scenario list (cache accounting is deliberately
 * excluded so reruns against a warm disk cache emit identical bytes).
 */
void writeJson(std::ostream &os, const SweepReport &report);

/**
 * Shortest round-trippable decimal form of a double ("0.25", "1e-06").
 * Non-finite values format as "nan" / "inf" / "-inf".
 */
std::string formatDouble(double v);

/** JSON number token for v: formatDouble, or "null" when non-finite. */
std::string jsonNumber(double v);

/** Quote a CSV-unsafe cell per RFC 4180; safe cells pass through. */
std::string csvCell(const std::string &s);

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

} // namespace diva

#endif // DIVA_SWEEP_EMIT_H
