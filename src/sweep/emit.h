/**
 * @file
 * Deterministic CSV and JSON emitters for sweep reports. Output is a
 * pure function of the results (no timestamps, no wall-clock), so a
 * parallel sweep emits bytes identical to a serial one.
 */

#ifndef DIVA_SWEEP_EMIT_H
#define DIVA_SWEEP_EMIT_H

#include <ostream>
#include <string>

#include "common/format.h"
#include "sweep/runner.h"

namespace diva
{

/** Header matching csvRow()'s columns. */
std::string csvHeader();

/** One RFC-4180 CSV data row for one result. */
std::string csvRow(const ScenarioResult &r);

/** Emit header + one row per result. */
void writeCsv(std::ostream &os, const SweepReport &report);

/**
 * Emit the report's results as JSON. Like the CSV, the output is a
 * pure function of the scenario list (cache accounting is deliberately
 * excluded so reruns against a warm disk cache emit identical bytes).
 */
void writeJson(std::ostream &os, const SweepReport &report);

// formatDouble / jsonNumber / csvCell / jsonEscape moved to
// common/format.h (shared with the serve and trace emitters); the
// include above keeps existing callers of this header compiling.

} // namespace diva

#endif // DIVA_SWEEP_EMIT_H
