#include "sweep/scenario.h"

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>

#include "common/logging.h"
#include "models/zoo.h"
#include "train/memory_model.h"

namespace diva
{

const char *
backendName(SweepBackend b)
{
    switch (b) {
      case SweepBackend::kSingleChip: return "chip";
      case SweepBackend::kMultiChip: return "pod";
      case SweepBackend::kGpu: return "gpu";
    }
    return "?";
}

std::string
Scenario::label() const
{
    std::ostringstream oss;
    if (backend == SweepBackend::kGpu)
        oss << gpu.name;
    else
        oss << config.name;
    if (backend == SweepBackend::kMultiChip) {
        oss << " x" << pod.numChips;
        // Spell out the link design point: pods differing only in
        // interconnect must stay tellable apart in reports.
        oss << " ici=" << pod.interconnectGBs << "GB/s lat="
            << pod.linkLatencyCycles;
    }
    oss << " / " << model;
    if (modelScale != 0)
        oss << "@" << modelScale;
    oss << " / " << algorithmName(algorithm) << " / b=";
    if (batch == kAutoBatch)
        oss << "auto";
    else
        oss << batch;
    if (microbatch > 0)
        oss << " mb=" << microbatch;
    return oss.str();
}

namespace
{

/**
 * Serialize every simulated AcceleratorConfig field. The cache and
 * dedup treat equal keys as identical simulation inputs, so the key
 * spells the values out rather than trusting a 64-bit configHash
 * whose collisions would silently alias two design points.
 */
void
appendConfigKey(std::ostringstream &oss, const AcceleratorConfig &c)
{
    oss << c.name << ';' << dataflowName(c.dataflow) << ';' << c.peRows
        << ';' << c.peCols << ';' << c.freqGhz << ';' << c.sramBytes
        << ';' << c.dramBandwidthGBs << ';' << c.dramLatencyCycles
        << ';' << c.weightFillRowsPerCycle << ';'
        << c.wsDoubleBufferWeights << ';' << c.drainRowsPerCycle << ';'
        << c.hasPpu << ';' << c.inputBytes << ';' << c.accumBytes << ';'
        << c.vectorLanes;
}

} // namespace

std::string
Scenario::canonicalKey() const
{
    std::ostringstream oss;
    // Keyed on the *effective* backend: a registered non-built-in
    // backend must never alias the built-in of the same kind in the
    // result caches.
    oss << effectiveBackend() << '|' << model << '|' << modelScale
        << '|' << algorithmName(algorithm) << '|' << batch << '|'
        << microbatch;
    // The auto-batch protocol depends on the budget only when active.
    if (batch == kAutoBatch)
        oss << "|mem=" << memoryBudget;
    switch (backend) {
      case SweepBackend::kSingleChip:
        oss << "|cfg=";
        appendConfigKey(oss, config);
        break;
      case SweepBackend::kMultiChip:
        oss << "|cfg=";
        appendConfigKey(oss, config);
        oss << "|chips=" << pod.numChips << "|ici="
            << pod.interconnectGBs << "|lat=" << pod.linkLatencyCycles;
        break;
      case SweepBackend::kGpu:
        // Key on every timing-relevant GpuConfig field, not just the
        // display name, so distinct GPU design points sharing a name
        // never collapse in dedup or the result cache.
        oss << "|gpu=" << gpu.name << ';' << gpu.peakTflops << ';'
            << gpu.bandwidthGBs << ';' << gpu.numSms << ';' << gpu.tileM
            << ';' << gpu.tileN << ';' << gpu.kGranule << ';'
            << gpu.kernelOverheadSec << ';' << gpu.gemmEfficiency;
        break;
    }
    return oss.str();
}

Network
buildModel(const std::string &name, int scale)
{
    using Builder = std::function<Network(int)>;
    static const std::map<std::string, std::pair<Builder, int>> builders =
        {
            {"VGG-16", {[](int s) { return vgg16(s); }, kDefaultImageSize}},
            {"ResNet-50",
             {[](int s) { return resnet50(s); }, kDefaultImageSize}},
            {"ResNet-152",
             {[](int s) { return resnet152(s); }, kDefaultImageSize}},
            {"SqueezeNet",
             {[](int s) { return squeezenet(s); }, kDefaultImageSize}},
            {"MobileNet",
             {[](int s) { return mobilenet(s); }, kDefaultImageSize}},
            {"BERT-base",
             {[](int s) { return bertBase(s); }, kDefaultSeqLen}},
            {"BERT-large",
             {[](int s) { return bertLarge(s); }, kDefaultSeqLen}},
            {"LSTM-small",
             {[](int s) { return lstmSmall(s); }, kDefaultSeqLen}},
            {"LSTM-large",
             {[](int s) { return lstmLarge(s); }, kDefaultSeqLen}},
        };
    const auto it = builders.find(name);
    if (it == builders.end())
        DIVA_FATAL("unknown sweep model '", name,
                   "'; see knownModels() for the zoo");
    const auto &[build, default_scale] = it->second;
    return build(scale != 0 ? scale : default_scale);
}

std::vector<std::string>
knownModels()
{
    return {"VGG-16",     "ResNet-50",  "ResNet-152",
            "SqueezeNet", "MobileNet",  "BERT-base",
            "BERT-large", "LSTM-small", "LSTM-large"};
}

int
resolveBatch(const Scenario &s, const Network &net)
{
    if (s.batch != kAutoBatch)
        return s.batch;
    return std::max(
        1, maxBatchSize(net, TrainingAlgorithm::kDpSgd, s.memoryBudget));
}

} // namespace diva
