/**
 * @file
 * Persistent on-disk sweep result cache.
 *
 * A DiskCache is a versioned canonical-key -> ScenarioResult store
 * backed by one append-only text file, so repeated diva_sweep
 * invocations skip already-simulated scenarios. Design points:
 *
 *  - Versioned: the file starts with a format header; a file written
 *    by an incompatible version is ignored wholesale and rewritten on
 *    the next append, never half-parsed.
 *  - Corruption-tolerant load: every record carries an FNV-1a checksum
 *    of its payload; torn, truncated, or edited lines are counted and
 *    skipped, never fatal.
 *  - Atomic append-on-write: fresh records are serialized into one
 *    buffer and appended with a single O_APPEND write(), so a crashed
 *    writer can lose at most its own tail record (which the checksum
 *    then rejects on load) and concurrent processes sharing a store
 *    interleave between batches, never inside a record. The in-memory
 *    view is updated only after the bytes reach the file, so a failed
 *    write is retried by the next append instead of silently dropped.
 *  - Failed results are never persisted: a transient failure must be
 *    retried on the next run, not replayed from the cache.
 *  - mmap-backed preload: the store is mapped read-only (one buffered
 *    read where mmap is unavailable) and indexed by scanning
 *    string_views over the mapping, and the preload reports a
 *    one-line summary (entries loaded, corrupt lines skipped, bytes
 *    mapped) to stderr instead of silently dropping corrupt lines.
 *
 * Only simulation *outputs* are stored; the scenario itself is
 * identified by its canonical key, and the runner re-attaches the
 * requester's Scenario on every hit.
 */

#ifndef DIVA_SWEEP_DISK_CACHE_H
#define DIVA_SWEEP_DISK_CACHE_H

#include <cstddef>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sweep/scenario.h"

namespace diva
{

/** On-disk canonical-key -> ScenarioResult store. */
class DiskCache
{
  public:
    /** Bump when the record layout changes; old files are discarded. */
    static constexpr int kFormatVersion = 1;

    /**
     * Open (creating if needed) the cache under `dir`. The directory
     * is created recursively; the store lives in one file inside it.
     * Loads every valid record eagerly.
     */
    explicit DiskCache(const std::string &dir);

    /** Full path of the backing file. */
    const std::string &filePath() const { return path_; }

    /** Loaded (and since-appended) entry count. */
    std::size_t size() const { return entries_.size(); }

    bool contains(const std::string &key) const
    {
        return entries_.count(key) != 0;
    }

    /** All entries; result Scenario fields are default-constructed. */
    const std::unordered_map<std::string, ScenarioResult> &entries() const
    {
        return entries_;
    }

    /** Lines rejected during load (bad checksum, truncation, ...). */
    std::size_t corruptLinesSkipped() const { return corrupt_; }

    /** Bytes of the backing file mapped (or read) by the preload. */
    std::size_t bytesMapped() const { return bytesMapped_; }

    /**
     * Persist the given results. Entries whose key is already stored,
     * whose result has `error` set, or whose key contains characters
     * the line format cannot carry are skipped. Returns the number of
     * records actually written.
     */
    std::size_t
    append(const std::vector<std::pair<std::string, ScenarioResult>> &fresh);

    /**
     * Default cache directory: $DIVA_CACHE_DIR, else
     * $XDG_CACHE_HOME/diva, else $HOME/.cache/diva, else ./.diva-cache.
     */
    static std::string defaultDir();

  private:
    void load();

    std::string path_;
    std::unordered_map<std::string, ScenarioResult> entries_;
    std::size_t corrupt_ = 0;
    std::size_t bytesMapped_ = 0;
    /** Set when the existing file has a foreign header: the next
     *  append rewrites the whole file instead of appending to it. */
    bool rewrite_needed_ = false;
};

} // namespace diva

#endif // DIVA_SWEEP_DISK_CACHE_H
