#include "sweep/disk_cache.h"

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "sweep/emit.h"

namespace diva
{

namespace
{

/** Header line identifying the file and its record layout version. */
std::string
headerLine()
{
    return "diva-sweep-cache v" + std::to_string(DiskCache::kFormatVersion);
}

/** FNV-1a 64-bit, printed as fixed-width hex in the record prefix. */
std::string
checksum(std::string_view payload)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : payload) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

std::vector<std::string_view>
splitTabs(std::string_view line)
{
    std::vector<std::string_view> out;
    std::size_t start = 0;
    for (;;) {
        const std::size_t tab = line.find('\t', start);
        if (tab == std::string_view::npos) {
            out.push_back(line.substr(start));
            return out;
        }
        out.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
}

bool
parseU64(std::string_view s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    const auto [end, ec] =
        std::from_chars(s.data(), s.data() + s.size(), out);
    return ec == std::errc() && end == s.data() + s.size();
}

bool
parseF64(std::string_view s, double &out)
{
    if (s.empty())
        return false;
    const auto [end, ec] =
        std::from_chars(s.data(), s.data() + s.size(), out);
    return ec == std::errc() && end == s.data() + s.size();
}

/** Tab-separated simulation outputs; the key is carried separately. */
std::string
payloadFor(const std::string &key, const ScenarioResult &r)
{
    std::ostringstream oss;
    oss << key << '\t' << r.resolvedBatch << '\t' << r.cycles << '\t'
        << r.computeCycles << '\t' << r.allReduceCycles << '\t'
        << formatDouble(r.seconds) << '\t' << formatDouble(r.utilization)
        << '\t' << formatDouble(r.energyJ) << '\t' << r.dramBytes << '\t'
        << r.postProcDramBytes << '\t' << formatDouble(r.enginePowerW)
        << '\t' << formatDouble(r.engineAreaMm2);
    return oss.str();
}

/** Inverse of payloadFor; false on any malformed field. */
bool
parsePayload(std::string_view payload, std::string &key,
             ScenarioResult &r)
{
    const std::vector<std::string_view> f = splitTabs(payload);
    if (f.size() != 12)
        return false;
    key = f[0];
    std::uint64_t u = 0;
    if (!parseU64(f[1], u))
        return false;
    r.resolvedBatch = static_cast<int>(u);
    if (!parseU64(f[2], r.cycles) || !parseU64(f[3], r.computeCycles) ||
        !parseU64(f[4], r.allReduceCycles))
        return false;
    if (!parseF64(f[5], r.seconds) || !parseF64(f[6], r.utilization) ||
        !parseF64(f[7], r.energyJ))
        return false;
    if (!parseU64(f[8], r.dramBytes) || !parseU64(f[9], r.postProcDramBytes))
        return false;
    if (!parseF64(f[10], r.enginePowerW) ||
        !parseF64(f[11], r.engineAreaMm2))
        return false;
    return true;
}

} // namespace

DiskCache::DiskCache(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec); // best effort
    path_ = (std::filesystem::path(dir) / "sweep-results.cache").string();
    load();
}

void
DiskCache::load()
{
    obs::ScopedPhase phase("disk_preload");
    // Preload maps the whole store read-only (POSIX; one buffered
    // read elsewhere or when mmap fails) and indexes records by
    // scanning string_views over the mapping -- no per-line
    // std::getline copies, no re-parse of untouched bytes.
    const char *data = nullptr;
    std::string buffer;
#ifndef _WIN32
    void *map = nullptr;
    const int fd = ::open(path_.c_str(), O_RDONLY);
    if (fd < 0)
        return; // no file yet: empty cache
    struct ::stat st = {};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        return;
    }
    bytesMapped_ = std::size_t(st.st_size);
    if (bytesMapped_ > 0) {
        map = ::mmap(nullptr, bytesMapped_, PROT_READ, MAP_PRIVATE,
                     fd, 0);
        if (map != MAP_FAILED) {
            data = static_cast<const char *>(map);
        } else {
            map = nullptr;
            buffer.resize(bytesMapped_);
            std::size_t got = 0;
            while (got < bytesMapped_) {
                const ::ssize_t k = ::read(fd, buffer.data() + got,
                                           bytesMapped_ - got);
                if (k <= 0)
                    break;
                got += std::size_t(k);
            }
            buffer.resize(got);
            bytesMapped_ = got;
            data = buffer.data();
        }
    }
    ::close(fd);
#else
    std::ifstream in(path_, std::ios::binary);
    if (!in)
        return; // no file yet: empty cache
    std::ostringstream whole;
    whole << in.rdbuf();
    buffer = whole.str();
    bytesMapped_ = buffer.size();
    data = buffer.data();
#endif

    const std::string_view file(data ? data : "", bytesMapped_);
    bool first = true;
    for (std::size_t pos = 0; pos < file.size();) {
        std::size_t nl = file.find('\n', pos);
        if (nl == std::string_view::npos)
            nl = file.size();
        const std::string_view line = file.substr(pos, nl - pos);
        pos = nl + 1;
        if (first) {
            first = false;
            if (line != headerLine()) {
                // Foreign or future format: never half-parse it. Keep
                // nothing and replace the file wholesale on the next
                // append.
                rewrite_needed_ = true;
                break;
            }
            continue;
        }
        if (line.empty())
            continue;
        const std::size_t tab = line.find('\t');
        bool ok = tab != std::string_view::npos;
        if (ok) {
            const std::string_view payload = line.substr(tab + 1);
            ok = line.substr(0, tab) == checksum(payload);
            if (ok) {
                std::string key;
                ScenarioResult r;
                ok = parsePayload(payload, key, r);
                if (ok)
                    entries_[key] = r; // duplicate keys: last wins
            }
        }
        if (!ok)
            ++corrupt_;
    }
    if (first)
        rewrite_needed_ = true; // existing file with no header line

#ifndef _WIN32
    if (map)
        ::munmap(map, bytesMapped_);
#endif

    if (obs::MetricsRegistry::instance().enabled()) {
        auto &metrics = obs::MetricsRegistry::instance();
        metrics.addCounter("disk_cache.preload_entries",
                           entries_.size());
        metrics.addCounter("disk_cache.preload_corrupt", corrupt_);
        metrics.addCounter("disk_cache.preload_bytes", bytesMapped_);
    }
    // Verbose-only: CI byte-diffs stderr across cold/warm cache runs,
    // and the preload line is the one piece of output that differs.
    DIVA_VERBOSE("disk cache preload: ", entries_.size(),
                 " entries loaded, ", corrupt_,
                 " corrupt lines skipped, ", bytesMapped_,
                 " bytes mapped from ", path_);
}

namespace
{

/**
 * Append `data` to `path` with ONE write so concurrent appenders on
 * the same store interleave at record-batch granularity, never inside
 * a record: POSIX guarantees O_APPEND write() calls are atomic with
 * respect to each other. The Windows fallback is stream-buffered and
 * therefore single-writer only.
 */
bool
appendAtomically(const std::string &path, const std::string &data)
{
#ifndef _WIN32
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
    if (fd < 0)
        return false;
    std::size_t done = 0;
    bool ok = true;
    while (done < data.size()) {
        const ::ssize_t n =
            ::write(fd, data.data() + done, data.size() - done);
        if (n <= 0) {
            ok = false;
            break;
        }
        done += std::size_t(n);
    }
    ::close(fd);
    return ok;
#else
    std::ofstream out(path, std::ios::app | std::ios::binary);
    if (!out)
        return false;
    out << data;
    out.flush();
    return bool(out);
#endif
}

} // namespace

std::size_t
DiskCache::append(
    const std::vector<std::pair<std::string, ScenarioResult>> &fresh)
{
    // Serialize first; entries_ mirrors the file, so it is updated
    // only once the bytes are known to have reached it.
    std::string buffer;
    std::vector<const std::pair<std::string, ScenarioResult> *> batch;
    for (const auto &entry : fresh) {
        const auto &[key, r] = entry;
        if (!r.ok() || contains(key))
            continue;
        if (key.find('\t') != std::string::npos ||
            key.find('\n') != std::string::npos)
            continue; // the line format cannot carry such a key
        const std::string payload = payloadFor(key, r);
        buffer += checksum(payload);
        buffer += '\t';
        buffer += payload;
        buffer += '\n';
        batch.push_back(&entry);
    }

    if (rewrite_needed_) {
        // Replace the foreign file atomically: write everything we
        // hold plus the new batch to a sibling temp file, then rename
        // over the original.
        const std::string tmp = path_ + ".tmp";
        {
            std::ofstream out(tmp, std::ios::trunc);
            if (!out)
                return 0;
            out << headerLine() << '\n';
            for (const auto &[key, r] : entries_)
                out << checksum(payloadFor(key, r)) << '\t'
                    << payloadFor(key, r) << '\n';
            out << buffer;
            out.flush();
            if (!out)
                return 0;
        }
        std::error_code ec;
        std::filesystem::rename(tmp, path_, ec);
        if (ec)
            return 0;
        rewrite_needed_ = false;
        for (const auto *entry : batch)
            entries_[entry->first] = entry->second;
        obs::MetricsRegistry::instance().addCounter(
            "disk_cache.appended", batch.size());
        return batch.size();
    }

    if (batch.empty())
        return 0;
    if (!std::filesystem::exists(path_))
        buffer = headerLine() + '\n' + buffer;
    if (!appendAtomically(path_, buffer))
        return 0; // keys stay unstored, so a later append retries them
    for (const auto *entry : batch)
        entries_[entry->first] = entry->second;
    obs::MetricsRegistry::instance().addCounter("disk_cache.appended",
                                                batch.size());
    return batch.size();
}

std::string
DiskCache::defaultDir()
{
    if (const char *dir = std::getenv("DIVA_CACHE_DIR"); dir && *dir)
        return dir;
    if (const char *xdg = std::getenv("XDG_CACHE_HOME"); xdg && *xdg)
        return (std::filesystem::path(xdg) / "diva").string();
    if (const char *home = std::getenv("HOME"); home && *home)
        return (std::filesystem::path(home) / ".cache" / "diva").string();
    return ".diva-cache";
}

} // namespace diva
