/**
 * @file
 * Open-loop trace replay engine: drives the src/tenant/ serve loop
 * from an ArrivalTrace -- tenants arrive and depart mid-run, rate
 * targets issue steps by the trace clock (ServeOptions::openLoop),
 * and per-step latency percentiles land in the usual ServeResult.
 * With admission on, the QoS demand of the trace is checked against
 * capacity first (arrivals/admission.h) and only the feasible subset
 * is scheduled; rejected sessions keep their rows with admitted =
 * false so every replay reports the whole trace.
 *
 * Isolated iteration costs are priced through the shared SweepRunner,
 * so replays share the sweep engine's in-memory and on-disk caches:
 * replaying the same trace under four policies simulates each distinct
 * (model, batch, algorithm) once. The scheduling loop itself is
 * sequential closed-form arithmetic, so replay output is
 * byte-deterministic whatever the runner thread count.
 */

#ifndef DIVA_ARRIVALS_REPLAY_H
#define DIVA_ARRIVALS_REPLAY_H

#include <string>
#include <vector>

#include "arrivals/admission.h"
#include "arrivals/trace.h"
#include "tenant/serve.h"

namespace diva
{

/** Everything one trace replay needs. */
struct ReplaySpec
{
    ArrivalTrace trace;

    /** The shared accelerator design point. */
    AcceleratorConfig config;

    /** Chip count; > 1 time-shares a data-parallel pod. */
    int chips = 1;

    /** Pod link parameters (used when chips > 1). */
    MultiChipConfig pod;

    SchedPolicy policy = SchedPolicy::kRoundRobin;

    /** Allowed isolated-cost backends, as in ServeSpec::backends. */
    std::vector<std::string> backends;

    /**
     * Serve knobs. openLoop is forced on by replayTrace: replay is
     * the open-loop driver by definition.
     */
    ServeOptions opts;

    /** Run the admission controller before scheduling. */
    bool admission = false;

    AdmissionOptions admissionOpts;
};

/**
 * Replay `spec.trace` and return the serve result: one TenantMetrics
 * per trace session in trace order (rejected sessions carry admitted
 * = false, zero steps and NaN rates). Validation failures return an
 * error-carrying result instead of running.
 */
ServeResult replayTrace(const ReplaySpec &spec, SweepRunner &runner);

/** Convenience overload with a private single-threaded runner. */
ServeResult replayTrace(const ReplaySpec &spec);

/**
 * simulateServe with the admission controller in front: price the
 * isolated costs, shed infeasible QoS demand, schedule the admitted
 * subset and weave the rejected tenants back into the report. Works
 * for static mixes too (closed loop unless spec.opts.openLoop).
 */
ServeResult serveWithAdmission(const ServeSpec &spec,
                               const AdmissionOptions &admission,
                               SweepRunner &runner);

} // namespace diva

#endif // DIVA_ARRIVALS_REPLAY_H
