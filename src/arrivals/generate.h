/**
 * @file
 * Seeded deterministic arrival-trace generators: Poisson (memoryless
 * open traffic), bursty on-off (a two-state MMPP -- exponential
 * arrivals during "on" windows, silence during "off"), and a diurnal
 * ramp (sinusoidal rate between trough and peak, sampled by
 * thinning). All three draw from the repo's fixed xoshiro256** Rng,
 * so a (kind, parameters, seed) triple maps to exactly one trace on
 * every platform: same seed => byte-identical trace CSV, different
 * seed => a different trace. Generated tenants rotate through the
 * default model cycle and carry an open-loop step rate so the replay
 * engine can drive them by the trace clock.
 */

#ifndef DIVA_ARRIVALS_GENERATE_H
#define DIVA_ARRIVALS_GENERATE_H

#include <cstdint>
#include <optional>
#include <string>

#include "arrivals/trace.h"

namespace diva
{

/** Arrival-process families offered by the generators. */
enum class ArrivalKind
{
    /** Exponential inter-arrivals at a constant rate. */
    kPoisson,
    /** On-off bursts: Poisson at `ratePerSec` while on, silent off. */
    kOnOff,
    /** Diurnal ramp: rate swings 1x..peakX over the horizon. */
    kDiurnal,
};

const char *arrivalKindName(ArrivalKind k);

/** Everything a generator run needs; parseTraceGenSpec fills one. */
struct TraceGenSpec
{
    ArrivalKind kind = ArrivalKind::kPoisson;

    /** Mean tenant arrivals per second (on-phase rate for on-off). */
    double ratePerSec = 2.0;

    /** Trace horizon in simulated seconds. */
    double horizonSec = 4.0;

    std::uint64_t seed = 1;

    /** Hard cap on generated sessions (safety against rate*horizon). */
    int maxTenants = 256;

    /** On-off phase lengths (kOnOff only). */
    double onSec = 1.0;
    double offSec = 1.0;

    /** Peak-to-trough rate ratio (kDiurnal only, >= 1). */
    double peakX = 4.0;

    /** Per-session template: steps (0 = until departure). */
    std::uint64_t steps = 16;

    int batch = 8;

    /** Open-loop step issue rate per tenant (0 = closed loop). */
    double qosStepsPerSec = 0.0;

    /** Session length; departure = arrival + holdSec (0 = stays). */
    double holdSec = 0.0;

    /** Rotate priorities 0..priorityLevels-1 over sessions. */
    int priorityLevels = 3;

    /** Fields an explicit spec text overrode (CLI defaults yield). */
    bool stepsSet = false;
    bool batchSet = false;
    bool qosSet = false;

    /** Why the spec is malformed, or "". */
    std::string validationError() const;
};

/**
 * Generate the trace for `spec`. The trace is named
 * "<kind>-r<rate>-s<seed>" and is empty only if the process produced
 * no arrival inside the horizon/cap (callers validate before replay).
 */
ArrivalTrace generateTrace(const TraceGenSpec &spec);

/**
 * Parse a generator spec of the form
 *   kind[:key=value[,key=value...]]
 * with kind poisson|onoff|diurnal and keys rate, horizon, seed, cap,
 * on, off, peak, steps, batch, qos, hold, prios. Unknown keys or
 * malformed values return nullopt and set *error.
 */
std::optional<TraceGenSpec> parseTraceGenSpec(const std::string &text,
                                              std::string *error);

} // namespace diva

#endif // DIVA_ARRIVALS_GENERATE_H
