#include "arrivals/replay.h"

#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tenant/context_switch.h"

namespace diva
{

namespace
{

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/** The report row of a session the controller rejected: no service
 *  window, no steps, NaN rates -- but the job echoed for the report. */
TenantMetrics
rejectedMetrics(const TenantJob &job, const IterationCost &cost)
{
    TenantMetrics m;
    m.job = job;
    m.admitted = false;
    m.resolvedBatch = cost.resolvedBatch > 0 ? cost.resolvedBatch
                                             : job.batch;
    m.endSec = job.arrivalSec;
    m.waitSec = kNaN;
    m.achievedStepsPerSec = 0.0;
    m.isolatedStepsPerSec = safeRatio(1.0, cost.seconds);
    m.slowdown = kNaN;
    m.qosAttainmentPct = kNaN;
    m.stepLatency = computeLatencyStats({});
    return m;
}

} // namespace

ServeResult
serveWithAdmission(const ServeSpec &serve,
                   const AdmissionOptions &admission,
                   SweepRunner &runner)
{
    ServeResult out;
    out.workloadName = serve.workload.name;
    out.configName = serve.config.name;
    out.policy = serve.policy;
    out.chips = serve.chips;
    out.quantumIters = serve.opts.quantumIters;
    out.wallLimitSec = serve.opts.wallLimitSec;

    std::string err;
    const std::vector<IterationCost> costs =
        isolatedCosts(serve, runner, &err);
    if (!err.empty()) {
        out.error = err;
        return out;
    }

    // The controller must see the targets the loop will actually
    // enforce: assign auto fair-share rates before pricing demand,
    // exactly as runServeLoop would (it skips tenants that already
    // carry a target, so the loop and the controller agree).
    ServeSpec priced = serve;
    if (priced.opts.autoQosFairShare) {
        const double n = double(priced.workload.jobs.size());
        for (std::size_t i = 0; i < priced.workload.jobs.size(); ++i)
            if (!priced.workload.jobs[i].hasQos())
                priced.workload.jobs[i].qosStepsPerSec =
                    safeRatio(1.0, costs[i].seconds) / n;
    }

    const AdmissionDecision decision =
        decideAdmission(priced.workload.jobs, costs, admission);

    // Sequential: one decision batch per replay.
    if (auto &metrics = obs::MetricsRegistry::instance();
        metrics.enabled()) {
        metrics.addCounter("admission.admitted",
                           decision.admittedCount);
        metrics.addCounter("admission.rejected",
                           decision.rejectedCount);
    }
    if (obs::TraceTrack *track = serve.opts.traceTrack)
        for (std::size_t i = 0; i < priced.workload.jobs.size(); ++i)
            track->instant(priced.workload.jobs[i].arrivalSec,
                           (decision.admitted[i] ? "admit " : "shed ") +
                               priced.workload.jobs[i].name,
                           "admission");

    if (decision.admittedCount == 0) {
        // Nothing feasible: report every session as shed. An empty
        // engine has no makespan, energy, or latency to report.
        for (std::size_t i = 0; i < priced.workload.jobs.size(); ++i)
            out.tenants.push_back(
                rejectedMetrics(priced.workload.jobs[i], costs[i]));
        out.meanQosAttainmentPct = kNaN;
        out.aggStepLatency = computeLatencyStatsSortedMean({});
        return out;
    }

    // Schedule only the feasible subset, then weave the rejected
    // sessions back into trace order so the report covers the whole
    // trace.
    ServeSpec admitted = priced;
    admitted.workload.jobs.clear();
    std::vector<IterationCost> admitted_costs;
    for (std::size_t i = 0; i < priced.workload.jobs.size(); ++i)
        if (decision.admitted[i]) {
            admitted.workload.jobs.push_back(priced.workload.jobs[i]);
            admitted_costs.push_back(costs[i]);
        }
    const ContextSwitchModel switches(serve.config, serve.chips);
    ServeResult ran =
        runServeLoop(admitted, admitted_costs, switches.cost());
    if (!ran.ok())
        return ran;

    ServeResult merged = ran;
    merged.tenants.clear();
    std::size_t next_admitted = 0;
    for (std::size_t i = 0; i < priced.workload.jobs.size(); ++i) {
        if (decision.admitted[i]) {
            merged.tenants.push_back(ran.tenants[next_admitted++]);
        } else {
            TenantMetrics m =
                rejectedMetrics(priced.workload.jobs[i], costs[i]);
            m.energyShare = safeRatio(0.0, merged.totalEnergyJ);
            merged.tenants.push_back(std::move(m));
        }
    }
    return merged;
}

ServeResult
replayTrace(const ReplaySpec &spec, SweepRunner &runner)
{
    ServeSpec serve;
    serve.workload = spec.trace.workload();
    serve.config = spec.config;
    serve.chips = spec.chips;
    serve.pod = spec.pod;
    serve.policy = spec.policy;
    serve.backends = spec.backends;
    serve.opts = spec.opts;
    serve.opts.openLoop = true;

    const std::string trace_err =
        spec.trace.validationError(serve.opts.wallLimitSec > 0.0);
    if (!trace_err.empty()) {
        ServeResult out;
        out.workloadName = serve.workload.name;
        out.configName = spec.config.name;
        out.policy = spec.policy;
        out.chips = spec.chips;
        out.quantumIters = serve.opts.quantumIters;
        out.wallLimitSec = serve.opts.wallLimitSec;
        out.error = trace_err;
        return out;
    }

    if (!spec.admission)
        return simulateServe(serve, runner);
    return serveWithAdmission(serve, spec.admissionOpts, runner);
}

ServeResult
replayTrace(const ReplaySpec &spec)
{
    SweepRunner runner;
    return replayTrace(spec, runner);
}

} // namespace diva
