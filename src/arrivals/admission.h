/**
 * @file
 * QoS admission control for trace replay and serve runs: before any
 * scheduling happens, each tenant's aggregate utilization demand --
 * the fraction of the engine its QoS target claims, priced from its
 * isolated iteration cost -- is summed in priority order, and tenants
 * whose demand would push the total past capacity are rejected. The
 * admitted subset is the feasible mix the ROADMAP's admission-control
 * bullet asks for; rejected tenants keep their report rows (admitted
 * = false) so the operator sees exactly what was shed.
 *
 * Demand model: a rate target of R steps/sec on a step that takes C
 * isolated seconds claims R*C of the engine; a deadline target claims
 * steps*C over its arrival->deadline window; a best-effort tenant
 * (no target) claims nothing and is always admitted -- it scavenges
 * whatever capacity the admitted QoS load leaves. Context-switch
 * overhead is not modeled in the demand, so a cap of 1.0 is the
 * optimistic bound; operators can set a lower cap to reserve
 * switching headroom.
 */

#ifndef DIVA_ARRIVALS_ADMISSION_H
#define DIVA_ARRIVALS_ADMISSION_H

#include <cstddef>
#include <vector>

#include "tenant/serve.h"
#include "tenant/tenant.h"

namespace diva
{

/** Admission-controller knobs. */
struct AdmissionOptions
{
    /**
     * Fraction of the engine the admitted QoS demand may claim
     * (> 0; 1.0 = the whole engine, switch overhead ignored).
     */
    double utilizationCap = 1.0;
};

/** What the controller decided for one workload. */
struct AdmissionDecision
{
    /** Per-tenant verdict, aligned with the input job order. */
    std::vector<bool> admitted;

    /** Per-tenant utilization demand (0 for best-effort tenants). */
    std::vector<double> demand;

    /** Sum of the admitted tenants' demand. */
    double admittedDemand = 0.0;

    /** Sum over every tenant (what an uncontrolled run carries). */
    double totalDemand = 0.0;

    std::size_t admittedCount = 0;
    std::size_t rejectedCount = 0;
};

/**
 * The utilization demand of one job priced at `cost`: R*C for a rate
 * target, steps*C / (deadline - arrival) for a deadline target, 0
 * for best-effort. Non-finite inputs yield 0 (best effort).
 */
double qosUtilizationDemand(const TenantJob &job,
                            const IterationCost &cost);

/**
 * Greedy admission in (priority desc, arrival asc, index asc) order:
 * a tenant is admitted while the running demand stays within the
 * cap. Deterministic; costs[i] prices jobs[i].
 */
AdmissionDecision decideAdmission(const std::vector<TenantJob> &jobs,
                                  const std::vector<IterationCost> &costs,
                                  const AdmissionOptions &opts);

} // namespace diva

#endif // DIVA_ARRIVALS_ADMISSION_H
