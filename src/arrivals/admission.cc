#include "arrivals/admission.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace diva
{

double
qosUtilizationDemand(const TenantJob &job, const IterationCost &cost)
{
    if (!(cost.seconds > 0.0) || !std::isfinite(cost.seconds))
        return 0.0;
    if (job.qosStepsPerSec > 0.0 && std::isfinite(job.qosStepsPerSec))
        return job.qosStepsPerSec * cost.seconds;
    if (job.qosDeadlineSec > 0.0 && job.steps > 0) {
        const double window = job.qosDeadlineSec - job.arrivalSec;
        if (window > 0.0 && std::isfinite(window))
            return double(job.steps) * cost.seconds / window;
    }
    return 0.0;
}

AdmissionDecision
decideAdmission(const std::vector<TenantJob> &jobs,
                const std::vector<IterationCost> &costs,
                const AdmissionOptions &opts)
{
    AdmissionDecision out;
    const std::size_t n = std::min(jobs.size(), costs.size());
    out.admitted.assign(jobs.size(), false);
    out.demand.assign(jobs.size(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        out.demand[i] = qosUtilizationDemand(jobs[i], costs[i]);
        out.totalDemand += out.demand[i];
    }

    // Priority first (bigger = more important), then earlier arrival,
    // then input order -- the same tie-break family the schedulers
    // use, so admission and scheduling agree on who matters.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t(0));
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         if (jobs[a].priority != jobs[b].priority)
                             return jobs[a].priority > jobs[b].priority;
                         if (jobs[a].arrivalSec != jobs[b].arrivalSec)
                             return jobs[a].arrivalSec <
                                    jobs[b].arrivalSec;
                         return a < b;
                     });

    const double cap = opts.utilizationCap;
    for (std::size_t i : order) {
        if (out.admittedDemand + out.demand[i] <= cap + 1e-12) {
            out.admitted[i] = true;
            out.admittedDemand += out.demand[i];
            ++out.admittedCount;
        } else {
            ++out.rejectedCount;
        }
    }
    return out;
}

} // namespace diva
