#include "arrivals/trace.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include <climits>

#include "common/format.h"
#include "common/parse.h"

namespace diva
{

namespace
{

/** Column order of the canonical CSV form. */
const char *const kColumns[] = {
    "name",     "model",    "scale", "batch",     "microbatch",
    "algorithm", "arrival_s", "depart_s", "priority", "steps",
    "qos_sps",  "qos_deadline_s",
};
constexpr std::size_t kNumColumns =
    sizeof(kColumns) / sizeof(*kColumns);

std::string
lower(std::string s)
{
    for (char &c : s)
        c = char(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

/** Split one CSV line; quoted cells are not supported in traces (no
 *  comma-bearing values exist in the schema). */
std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ','))
        cells.push_back(cell);
    if (!line.empty() && line.back() == ',')
        cells.push_back("");
    return cells;
}

/** Apply one (column, text) pair to `job`; "" on success. */
std::string
applyField(TenantJob &job, const std::string &column,
           const std::string &text)
{
    if (column == "name") {
        job.name = text;
        return "";
    }
    if (column == "model") {
        if (text.empty())
            return "model must not be empty";
        job.model = text;
        return "";
    }
    if (column == "algorithm") {
        if (!algorithmFromName(text, &job.algorithm))
            return "unknown algorithm '" + text + "'";
        return "";
    }
    if (column == "scale" || column == "batch" ||
        column == "microbatch" || column == "priority" ||
        column == "steps") {
        // Bounded parses: an out-of-range cell rejects the trace
        // instead of silently wrapping into the int-typed fields.
        const long long lo = column == "priority" ? INT_MIN : 0;
        const long long hi =
            column == "steps" ? LLONG_MAX : INT_MAX;
        const std::optional<long long> v =
            parseBoundedIntText(text, lo, hi);
        if (!v)
            return column + " must be an integer in [" +
                   std::to_string(lo) + ", " + std::to_string(hi) +
                   "], got '" + text + "'";
        if (column == "scale")
            job.modelScale = int(*v);
        else if (column == "batch")
            job.batch = int(*v);
        else if (column == "microbatch")
            job.microbatch = int(*v);
        else if (column == "priority")
            job.priority = int(*v);
        else
            job.steps = std::uint64_t(*v);
        return "";
    }
    if (column == "arrival_s" || column == "depart_s" ||
        column == "qos_sps" || column == "qos_deadline_s") {
        const std::optional<double> parsed = parseDoubleText(text);
        if (!parsed || *parsed < 0.0)
            return column + " must be a finite number >= 0, got '" +
                   text + "'";
        const double v = *parsed;
        if (column == "arrival_s")
            job.arrivalSec = v;
        else if (column == "depart_s")
            job.departSec = v;
        else if (column == "qos_sps")
            job.qosStepsPerSec = v;
        else
            job.qosDeadlineSec = v;
        return "";
    }
    return "unknown column '" + column + "'";
}

ArrivalTrace
failTrace(std::string *error, std::size_t line, const std::string &msg)
{
    std::ostringstream oss;
    oss << "line " << line << ": " << msg;
    *error = oss.str();
    return {};
}

/**
 * Minimal flat-object JSON scanner for one JSONL line: returns the
 * (key, raw value text) pairs of a single-level object. Strings lose
 * their quotes (escapes \" \\ only); nested containers reject.
 */
bool
scanFlatJson(const std::string &line,
             std::vector<std::pair<std::string, std::string>> *fields,
             std::string *msg)
{
    std::size_t i = 0;
    auto skipWs = [&] {
        while (i < line.size() &&
               std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
    };
    auto parseString = [&](std::string *out) {
        if (line[i] != '"')
            return false;
        ++i;
        out->clear();
        while (i < line.size() && line[i] != '"') {
            if (line[i] == '\\' && i + 1 < line.size()) {
                ++i;
                if (line[i] == '"')
                    *out += '"';
                else if (line[i] == '\\')
                    *out += '\\';
                else {
                    *out += '\\';
                    *out += line[i];
                }
            } else {
                *out += line[i];
            }
            ++i;
        }
        if (i >= line.size())
            return false;
        ++i; // closing quote
        return true;
    };
    skipWs();
    if (i >= line.size() || line[i] != '{') {
        *msg = "expected a JSON object";
        return false;
    }
    ++i;
    skipWs();
    if (i < line.size() && line[i] == '}')
        return true; // empty object
    for (;;) {
        skipWs();
        std::string key;
        if (i >= line.size() || !parseString(&key)) {
            *msg = "expected a quoted key";
            return false;
        }
        skipWs();
        if (i >= line.size() || line[i] != ':') {
            *msg = "expected ':' after key '" + key + "'";
            return false;
        }
        ++i;
        skipWs();
        std::string value;
        if (i < line.size() && line[i] == '"') {
            if (!parseString(&value)) {
                *msg = "unterminated string for key '" + key + "'";
                return false;
            }
        } else if (i < line.size() &&
                   (line[i] == '{' || line[i] == '[')) {
            *msg = "nested values are not supported (key '" + key +
                   "')";
            return false;
        } else {
            while (i < line.size() && line[i] != ',' && line[i] != '}')
                value += line[i++];
            while (!value.empty() &&
                   std::isspace(static_cast<unsigned char>(
                       value.back())))
                value.pop_back();
            if (value.empty()) {
                *msg = "missing value for key '" + key + "'";
                return false;
            }
        }
        fields->emplace_back(key, value);
        skipWs();
        if (i < line.size() && line[i] == ',') {
            ++i;
            continue;
        }
        if (i < line.size() && line[i] == '}')
            return true;
        *msg = "expected ',' or '}'";
        return false;
    }
}

} // namespace

bool
algorithmFromName(const std::string &text, TrainingAlgorithm *out)
{
    if (text.empty()) {
        *out = TrainingAlgorithm::kDpSgdR;
        return true;
    }
    const std::string t = lower(text);
    if (t == "sgd") {
        *out = TrainingAlgorithm::kSgd;
        return true;
    }
    if (t == "dpsgd" || t == "dp-sgd") {
        *out = TrainingAlgorithm::kDpSgd;
        return true;
    }
    if (t == "dpsgdr" || t == "dp-sgd-r" || t == "dp-sgd(r)") {
        *out = TrainingAlgorithm::kDpSgdR;
        return true;
    }
    return false;
}

std::string
ArrivalTrace::validationError(bool wallLimited) const
{
    if (jobs.empty())
        return "trace has no tenant sessions";
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        // TenantJob::validationError already accepts unbounded steps
        // when the session has a departure time.
        const std::string err = jobs[i].validationError(wallLimited);
        if (!err.empty())
            return "session '" + jobs[i].name + "': " + err;
        if (i > 0 && jobs[i].arrivalSec < jobs[i - 1].arrivalSec)
            return "session '" + jobs[i].name +
                   "': arrivals must be non-decreasing";
    }
    return "";
}

TenantWorkload
ArrivalTrace::workload() const
{
    TenantWorkload mix;
    mix.name = name;
    mix.jobs = jobs;
    return mix;
}

std::string
traceCsvHeader()
{
    std::string header;
    for (std::size_t c = 0; c < kNumColumns; ++c) {
        if (c)
            header += ',';
        header += kColumns[c];
    }
    return header;
}

void
writeTraceCsv(std::ostream &os, const ArrivalTrace &trace)
{
    os << "# trace: " << trace.name << '\n' << traceCsvHeader() << '\n';
    for (const TenantJob &j : trace.jobs)
        os << csvCell(j.name) << ',' << csvCell(j.model) << ','
           << j.modelScale << ',' << j.batch << ',' << j.microbatch
           << ',' << algorithmName(j.algorithm) << ','
           << formatDouble(j.arrivalSec) << ','
           << formatDouble(j.departSec) << ',' << j.priority << ','
           << j.steps << ',' << formatDouble(j.qosStepsPerSec) << ','
           << formatDouble(j.qosDeadlineSec) << '\n';
}

ArrivalTrace
loadTraceCsv(std::istream &is, std::string *error)
{
    error->clear();
    ArrivalTrace trace;
    std::string line;
    std::size_t lineno = 0;
    std::vector<std::string> columns;
    while (std::getline(is, line)) {
        ++lineno;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        if (line[0] == '#') {
            // "# trace: NAME" names the trace; other comments skip.
            const std::string tag = "# trace: ";
            if (line.rfind(tag, 0) == 0)
                trace.name = line.substr(tag.size());
            continue;
        }
        const std::vector<std::string> cells = splitCsvLine(line);
        if (columns.empty()) {
            // Header row: every column must be known.
            for (const std::string &c : cells) {
                const std::string col = lower(c);
                if (std::find_if(std::begin(kColumns),
                                 std::end(kColumns),
                                 [&](const char *k) {
                                     return col == k;
                                 }) == std::end(kColumns))
                    return failTrace(error, lineno,
                                     "unknown column '" + c + "'");
                columns.push_back(col);
            }
            if (std::find(columns.begin(), columns.end(), "model") ==
                columns.end())
                return failTrace(error, lineno,
                                 "header needs a 'model' column");
            continue;
        }
        if (cells.size() != columns.size())
            return failTrace(error, lineno,
                             "expected " +
                                 std::to_string(columns.size()) +
                                 " cells, got " +
                                 std::to_string(cells.size()));
        TenantJob job;
        for (std::size_t c = 0; c < columns.size(); ++c) {
            const std::string err =
                applyField(job, columns[c], cells[c]);
            if (!err.empty())
                return failTrace(error, lineno, err);
        }
        if (job.name.empty())
            job.name = "a" + std::to_string(trace.jobs.size()) + ":" +
                       job.model;
        trace.jobs.push_back(std::move(job));
    }
    if (columns.empty())
        return failTrace(error, lineno, "missing header row");
    if (trace.jobs.empty())
        return failTrace(error, lineno, "trace has no tenant sessions");
    return trace;
}

ArrivalTrace
loadTraceJsonl(std::istream &is, std::string *error)
{
    error->clear();
    ArrivalTrace trace;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        // Skip blank lines and #-comments between records.
        std::size_t first = line.find_first_not_of(" \t");
        if (first == std::string::npos || line[first] == '#')
            continue;
        std::vector<std::pair<std::string, std::string>> fields;
        std::string msg;
        if (!scanFlatJson(line, &fields, &msg))
            return failTrace(error, lineno, msg);
        TenantJob job;
        bool any_known = false;
        for (const auto &[key, value] : fields) {
            const std::string col = lower(key);
            if (col == "trace") {
                // {"trace": "NAME"} records name the trace.
                trace.name = value;
                continue;
            }
            const bool known =
                std::find_if(std::begin(kColumns), std::end(kColumns),
                             [&](const char *k) { return col == k; }) !=
                std::end(kColumns);
            if (!known)
                continue; // tolerate recorded extra metadata
            const std::string err = applyField(job, col, value);
            if (!err.empty())
                return failTrace(error, lineno, err);
            any_known = true;
        }
        if (!any_known)
            continue; // metadata-only record
        if (job.model.empty())
            return failTrace(error, lineno, "record needs a 'model'");
        if (job.name.empty())
            job.name = "a" + std::to_string(trace.jobs.size()) + ":" +
                       job.model;
        trace.jobs.push_back(std::move(job));
    }
    if (trace.jobs.empty())
        return failTrace(error, lineno, "trace has no tenant sessions");
    return trace;
}

ArrivalTrace
loadTraceFile(const std::string &path, std::string *error)
{
    error->clear();
    std::ifstream in(path);
    if (!in) {
        *error = "cannot open '" + path + "'";
        return {};
    }
    const std::size_t slash = path.find_last_of("/\\");
    const std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const std::size_t dot = base.find_last_of('.');
    const std::string ext =
        dot == std::string::npos ? "" : lower(base.substr(dot));
    ArrivalTrace trace = ext == ".jsonl" || ext == ".json"
                             ? loadTraceJsonl(in, error)
                             : loadTraceCsv(in, error);
    if (!error->empty())
        return {};
    if (trace.name.empty())
        trace.name = dot == std::string::npos ? base
                                              : base.substr(0, dot);
    return trace;
}

} // namespace diva
