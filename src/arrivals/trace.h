/**
 * @file
 * Arrival-trace representation for open-loop serve replay: an ordered
 * stream of tenant sessions, each a TenantJob template plus its
 * arrival (and optional departure) time. Traces come from three
 * sources -- recorded CSV files, recorded JSONL files, and the seeded
 * deterministic generators in arrivals/generate.h -- and all three
 * produce the same in-memory form, so the replay engine and the
 * emitters never care where a trace came from.
 *
 * The canonical on-disk CSV form round-trips: writeTraceCsv followed
 * by loadTraceCsv reproduces the trace exactly (doubles go through
 * the shared shortest-round-trip formatter), which is what makes
 * "same seed => byte-identical trace" a testable property.
 */

#ifndef DIVA_ARRIVALS_TRACE_H
#define DIVA_ARRIVALS_TRACE_H

#include <iosfwd>
#include <string>
#include <vector>

#include "tenant/tenant.h"

namespace diva
{

/** One replayable arrival stream. */
struct ArrivalTrace
{
    /** Trace label used in reports, e.g. "poisson-r2-s7". */
    std::string name;

    /**
     * Tenant sessions in trace order (ascending arrivalSec; ties keep
     * input order). Each job's arrivalSec/departSec are the session's
     * lifetime; steps 0 means the session trains until departure.
     */
    std::vector<TenantJob> jobs;

    /**
     * First problem found (empty trace, unsorted arrivals, malformed
     * job), or "". `wallLimited` tells whether the replay bounds
     * wall-clock time; unbounded-step sessions need a departure or a
     * wall budget to terminate.
     */
    std::string validationError(bool wallLimited) const;

    /** The trace as a serve workload (name + jobs, shared types). */
    TenantWorkload workload() const;
};

/** Header of the canonical trace CSV. */
std::string traceCsvHeader();

/** Write `trace` in the canonical CSV form (header + one row/job). */
void writeTraceCsv(std::ostream &os, const ArrivalTrace &trace);

/**
 * Parse a trace from CSV. The header row is required and columns may
 * appear in any order; unknown columns are rejected. On failure
 * returns an empty trace and sets *error to a "line N: ..." message.
 */
ArrivalTrace loadTraceCsv(std::istream &is, std::string *error);

/**
 * Parse a trace from JSONL: one flat JSON object per line with the
 * same keys as the CSV columns (unknown keys are ignored, so traces
 * recorded with extra metadata still load). Blank lines are skipped.
 */
ArrivalTrace loadTraceJsonl(std::istream &is, std::string *error);

/**
 * Load a trace file, dispatching on extension: ".jsonl"/".json" use
 * the JSONL loader, anything else the CSV loader. The trace name
 * defaults to the file's basename when the file does not set one.
 */
ArrivalTrace loadTraceFile(const std::string &path, std::string *error);

/** Parse an algorithm name as emitted by algorithmName() (plus the
 *  CLI aliases sgd/dpsgd/dpsgdr); empty text means kDpSgdR. */
bool algorithmFromName(const std::string &text, TrainingAlgorithm *out);

} // namespace diva

#endif // DIVA_ARRIVALS_TRACE_H
