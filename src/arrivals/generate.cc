#include "arrivals/generate.h"

#include <cmath>
#include <sstream>
#include <vector>

#include <climits>

#include "common/format.h"
#include "common/parse.h"
#include "common/rng.h"

namespace diva
{

namespace
{

constexpr double kPi = 3.14159265358979323846;

/** Exponential inter-arrival sample at `rate` (rate > 0). */
double
expGap(Rng &rng, double rate)
{
    // uniform() is in [0, 1); 1-u is in (0, 1], so the log is finite.
    return -std::log(1.0 - rng.uniform()) / rate;
}

/** Arrival times of a Poisson process on [0, horizon). */
std::vector<double>
poissonArrivals(Rng &rng, double rate, double horizon, int cap)
{
    std::vector<double> times;
    double t = expGap(rng, rate);
    while (t < horizon && int(times.size()) < cap) {
        times.push_back(t);
        t += expGap(rng, rate);
    }
    return times;
}

/** On-off arrivals: Poisson "on" windows separated by silent "off"
 *  windows. Generated in on-process time, then mapped to wall time. */
std::vector<double>
onOffArrivals(Rng &rng, const TraceGenSpec &s)
{
    // Total on-time available inside the horizon.
    const double cycle = s.onSec + s.offSec;
    std::vector<double> times;
    double on_t = expGap(rng, s.ratePerSec);
    for (;;) {
        // Map on-time to wall time: full cycles plus the offset into
        // the current on window.
        const double wall = std::floor(on_t / s.onSec) * cycle +
                            std::fmod(on_t, s.onSec);
        if (wall >= s.horizonSec || int(times.size()) >= s.maxTenants)
            break;
        times.push_back(wall);
        on_t += expGap(rng, s.ratePerSec);
    }
    return times;
}

/** Diurnal arrivals by thinning: candidates at the peak rate, each
 *  kept with probability rate(t)/peak. */
std::vector<double>
diurnalArrivals(Rng &rng, const TraceGenSpec &s)
{
    const double peak_rate = s.ratePerSec * s.peakX;
    std::vector<double> times;
    double t = expGap(rng, peak_rate);
    while (t < s.horizonSec && int(times.size()) < s.maxTenants) {
        // rate(t) ramps 1x .. peakX and back over the horizon.
        const double phase = std::sin(kPi * t / s.horizonSec);
        const double rate =
            s.ratePerSec * (1.0 + (s.peakX - 1.0) * phase * phase);
        if (rng.uniform() < rate / peak_rate)
            times.push_back(t);
        t += expGap(rng, peak_rate);
    }
    return times;
}

} // namespace

const char *
arrivalKindName(ArrivalKind k)
{
    switch (k) {
      case ArrivalKind::kPoisson: return "poisson";
      case ArrivalKind::kOnOff: return "onoff";
      case ArrivalKind::kDiurnal: return "diurnal";
    }
    return "?";
}

std::string
TraceGenSpec::validationError() const
{
    if (!(ratePerSec > 0.0) || !std::isfinite(ratePerSec))
        return "rate must be finite and > 0";
    if (!(horizonSec > 0.0) || !std::isfinite(horizonSec))
        return "horizon must be finite and > 0";
    if (maxTenants < 1)
        return "cap must be >= 1";
    if (kind == ArrivalKind::kOnOff &&
        (!(onSec > 0.0) || !std::isfinite(onSec) || !(offSec >= 0.0) ||
         !std::isfinite(offSec)))
        return "on must be > 0 and off >= 0";
    if (kind == ArrivalKind::kDiurnal &&
        (!(peakX >= 1.0) || !std::isfinite(peakX)))
        return "peak must be >= 1";
    if (batch < 1)
        return "batch must be >= 1";
    if (!(qosStepsPerSec >= 0.0) || !std::isfinite(qosStepsPerSec))
        return "qos must be finite and >= 0";
    if (!(holdSec >= 0.0) || !std::isfinite(holdSec))
        return "hold must be finite and >= 0";
    if (priorityLevels < 1)
        return "prios must be >= 1";
    if (steps == 0 && holdSec <= 0.0)
        return "steps 0 (train until departure) needs hold > 0";
    return "";
}

ArrivalTrace
generateTrace(const TraceGenSpec &spec)
{
    Rng rng(spec.seed);
    std::vector<double> times;
    switch (spec.kind) {
      case ArrivalKind::kPoisson:
        times = poissonArrivals(rng, spec.ratePerSec, spec.horizonSec,
                                spec.maxTenants);
        break;
      case ArrivalKind::kOnOff:
        times = onOffArrivals(rng, spec);
        break;
      case ArrivalKind::kDiurnal:
        times = diurnalArrivals(rng, spec);
        break;
    }

    ArrivalTrace trace;
    {
        std::ostringstream oss;
        oss << arrivalKindName(spec.kind) << "-r"
            << formatDouble(spec.ratePerSec) << "-s" << spec.seed;
        trace.name = oss.str();
    }
    const std::vector<std::string> &rotation = defaultModelRotation();
    for (std::size_t i = 0; i < times.size(); ++i) {
        TenantJob job;
        job.model = rotation[i % rotation.size()];
        {
            std::ostringstream oss;
            oss << "a" << i << ":" << job.model;
            job.name = oss.str();
        }
        job.batch = spec.batch;
        job.steps = spec.steps;
        job.arrivalSec = times[i];
        if (spec.holdSec > 0.0)
            job.departSec = times[i] + spec.holdSec;
        job.qosStepsPerSec = spec.qosStepsPerSec;
        job.priority = int(i % std::size_t(spec.priorityLevels));
        trace.jobs.push_back(std::move(job));
    }
    return trace;
}

std::optional<TraceGenSpec>
parseTraceGenSpec(const std::string &text, std::string *error)
{
    error->clear();
    TraceGenSpec spec;
    const std::size_t colon = text.find(':');
    const std::string kind = text.substr(0, colon);
    if (kind == "poisson") {
        spec.kind = ArrivalKind::kPoisson;
    } else if (kind == "onoff" || kind == "on-off" || kind == "mmpp") {
        spec.kind = ArrivalKind::kOnOff;
    } else if (kind == "diurnal") {
        spec.kind = ArrivalKind::kDiurnal;
    } else {
        *error = "unknown arrival kind '" + kind +
                 "' (want poisson, onoff, or diurnal)";
        return std::nullopt;
    }
    if (colon == std::string::npos)
        return spec;

    std::stringstream ss(text.substr(colon + 1));
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) {
            *error = "expected key=value, got '" + item + "'";
            return std::nullopt;
        }
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        // Integer keys parse as integers (bounded, so the int-typed
        // fields never see a wrapped value and "2.7" rejects instead
        // of silently truncating); the rest parse as finite doubles.
        const bool integer_key = key == "seed" || key == "cap" ||
                                 key == "steps" || key == "batch" ||
                                 key == "prios";
        std::optional<long long> whole;
        double num = 0.0;
        if (integer_key) {
            whole = parseBoundedIntText(value, 0, LLONG_MAX);
            if (!whole) {
                *error = "key '" + key +
                         "' needs a non-negative integer, got '" +
                         value + "'";
                return std::nullopt;
            }
        } else {
            const std::optional<double> parsed =
                parseDoubleText(value);
            if (!parsed) {
                *error = "key '" + key +
                         "' needs a finite number, got '" + value +
                         "'";
                return std::nullopt;
            }
            num = *parsed;
        }
        if (key == "rate") {
            spec.ratePerSec = num;
        } else if (key == "horizon" || key == "dur") {
            spec.horizonSec = num;
        } else if (key == "seed") {
            spec.seed = std::uint64_t(*whole);
        } else if (key == "cap") {
            if (*whole > INT_MAX) {
                *error = "cap is out of range";
                return std::nullopt;
            }
            spec.maxTenants = int(*whole);
        } else if (key == "on") {
            spec.onSec = num;
        } else if (key == "off") {
            spec.offSec = num;
        } else if (key == "peak") {
            spec.peakX = num;
        } else if (key == "steps") {
            spec.steps = std::uint64_t(*whole);
            spec.stepsSet = true;
        } else if (key == "batch") {
            if (*whole > INT_MAX) {
                *error = "batch is out of range";
                return std::nullopt;
            }
            spec.batch = int(*whole);
            spec.batchSet = true;
        } else if (key == "qos") {
            spec.qosStepsPerSec = num;
            spec.qosSet = true;
        } else if (key == "hold") {
            spec.holdSec = num;
        } else if (key == "prios") {
            if (*whole > INT_MAX) {
                *error = "prios is out of range";
                return std::nullopt;
            }
            spec.priorityLevels = int(*whole);
        } else {
            *error = "unknown key '" + key +
                     "' (want rate, horizon, seed, cap, on, off, "
                     "peak, steps, batch, qos, hold, or prios)";
            return std::nullopt;
        }
    }
    const std::string err = spec.validationError();
    if (!err.empty()) {
        *error = err;
        return std::nullopt;
    }
    return spec;
}

} // namespace diva
