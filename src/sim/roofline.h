/**
 * @file
 * Roofline classification of training ops: whether each op of a
 * training iteration is compute- or memory-bound on a given
 * accelerator, and where the crossover arithmetic intensity lies.
 * This formalizes the paper's Section III-C diagnosis ("per-example
 * GEMMs are compute-starved; gradient post-processing is memory
 * bound") as a reusable analysis.
 */

#ifndef DIVA_SIM_ROOFLINE_H
#define DIVA_SIM_ROOFLINE_H

#include <vector>

#include "arch/accelerator_config.h"
#include "common/types.h"
#include "sim/stage.h"
#include "train/op.h"

namespace diva
{

/** Binding classification of one op. */
enum class Bound
{
    kCompute,
    kMemory,
};

const char *boundName(Bound b);

/** Roofline verdict for one op. */
struct OpRoofline
{
    std::size_t index = 0;
    Stage stage = Stage::kForward;
    Bound bound = Bound::kCompute;
    /** Achieved MACs per DRAM byte. */
    double intensity = 0.0;
    /** Fraction of peak MAC throughput achieved. */
    double efficiency = 0.0;
};

/** Aggregate roofline statistics for one iteration. */
struct RooflineSummary
{
    std::vector<OpRoofline> ops;
    std::size_t computeBoundOps = 0;
    std::size_t memoryBoundOps = 0;
    /** Cycles spent in memory-bound ops / total cycles. */
    double memoryBoundCycleShare = 0.0;

    /**
     * The machine-balance point: MACs per DRAM byte above which the
     * accelerator is compute bound.
     */
    double machineBalance = 0.0;
};

/**
 * Classify every op of the stream on the given accelerator. GEMM ops
 * are compared against the engine cycle model; post-processing ops are
 * classified by their vector-compute vs streaming time.
 */
RooflineSummary analyzeRoofline(const AcceleratorConfig &cfg,
                                const OpStream &stream);

} // namespace diva

#endif // DIVA_SIM_ROOFLINE_H
