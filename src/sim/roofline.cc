#include "sim/roofline.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/executor.h"

namespace diva
{

const char *
boundName(Bound b)
{
    return b == Bound::kCompute ? "compute" : "memory";
}

RooflineSummary
analyzeRoofline(const AcceleratorConfig &cfg, const OpStream &stream)
{
    RooflineSummary summary;
    summary.machineBalance =
        double(cfg.macsPerCycle()) / cfg.dramBytesPerCycle();

    // Reuse the executor op by op so the classification matches the
    // timing model exactly.
    Trace trace;
    const Executor exec(cfg);
    exec.run(stream, &trace);

    Cycles total_cycles = 0;
    Cycles memory_cycles = 0;
    for (const auto &t : trace) {
        OpRoofline entry;
        entry.index = t.index;
        entry.stage = t.stage;
        entry.intensity =
            t.dramBytes > 0 ? double(t.macs) / double(t.dramBytes)
                            : double(t.macs);
        const double peak_macs =
            double(t.cycles) * double(cfg.macsPerCycle());
        entry.efficiency =
            peak_macs > 0.0 ? double(t.macs) / peak_macs : 0.0;

        // Memory bound iff the op's achieved intensity falls below the
        // machine balance (equivalently: streaming its bytes takes
        // longer than its useful compute would at peak).
        const double compute_cycles =
            double(t.macs) / double(cfg.macsPerCycle());
        const double stream_cycles =
            double(t.dramBytes) / cfg.dramBytesPerCycle();
        entry.bound = stream_cycles > compute_cycles ? Bound::kMemory
                                                     : Bound::kCompute;

        total_cycles += t.cycles;
        if (entry.bound == Bound::kMemory) {
            ++summary.memoryBoundOps;
            memory_cycles += t.cycles;
        } else {
            ++summary.computeBoundOps;
        }
        summary.ops.push_back(entry);
    }
    summary.memoryBoundCycleShare =
        total_cycles > 0 ? double(memory_cycles) / double(total_cycles)
                         : 0.0;
    return summary;
}

} // namespace diva
