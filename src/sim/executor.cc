#include "sim/executor.h"

#include <algorithm>

#include "common/logging.h"

namespace diva
{

Executor::Executor(const AcceleratorConfig &cfg)
    : cfg_(cfg), engine_(GemmEngineModel::create(cfg)), dram_(cfg),
      vectorUnit_(cfg)
{
    if (cfg_.hasPpu)
        ppu_.emplace(cfg_);
}

bool
Executor::spillPerExampleGrads(TrainingAlgorithm algo) const
{
    if (algo == TrainingAlgorithm::kDpSgd) {
        // The clip stage consumes every per-example gradient after the
        // global per-example norm is known; they must be materialized.
        return true;
    }
    // DP-SGD(R): the gradients only feed norm derivation. With a PPU
    // they are consumed on drain and discarded; without one, they are
    // spilled so the vector unit can re-read them.
    return !cfg_.hasPpu;
}

void
Executor::addPostProc(SimResult &result, Stage stage, Cycles compute,
                      Bytes read, Bytes write) const
{
    const auto idx = static_cast<std::size_t>(stage);
    const Cycles mem = dram_.streamingCycles(read + write);
    Cycles cycles = std::max(compute, mem);
    if (read + write > 0)
        cycles += cfg_.dramLatencyCycles;
    result.stageCycles[idx] += cycles;
    result.stageDram[idx].readBytes += read;
    result.stageDram[idx].writeBytes += write;
    result.postProcessingDram.readBytes += read;
    result.postProcessingDram.writeBytes += write;
    // Post-processing data passes through the on-chip buffers once.
    result.sramReadBytes += read;
    result.sramWriteBytes += write;
}

void
Executor::runGemm(SimResult &result, const Op &op,
                  TrainingAlgorithm algo) const
{
    GemmOptions opt;
    if (op.perExampleOutput)
        opt.writeOutputToDram = spillPerExampleGrads(algo);

    const GemmResult r = engine_->simulateBatched(op.shape, op.count,
                                                  opt);
    const auto idx = static_cast<std::size_t>(op.stage);
    result.stageCycles[idx] += r.cycles;
    result.stageMacs[idx] += r.usefulMacs;
    result.stageDram[idx] += r.dram;
    result.sramReadBytes += r.sramReadBytes;
    result.sramWriteBytes += r.sramWriteBytes;

    if (op.perExampleOutput) {
        // Per-example gradient spills exist purely for gradient
        // post-processing; attribute them to that traffic bucket.
        result.postProcessingDram.writeBytes += r.dram.writeBytes;
    }
}

void
Executor::runGradNorm(SimResult &result, const Op &op,
                      TrainingAlgorithm algo) const
{
    if (cfg_.hasPpu) {
        // On-the-fly: the adder trees keep pace with the GEMM engine's
        // drain; only the pipeline depth is exposed, and the gradients
        // generate no norm-related DRAM traffic.
        const PostProcResult pp = ppu_->normOnDrain(op.inElems);
        addPostProc(result, op.stage, pp.cycles, pp.dramReadBytes,
                    pp.dramWriteBytes);
        return;
    }
    (void)algo;
    // No PPU: the spilled per-example gradients are fetched back from
    // DRAM and reduced on the vector unit (Figure 10(a), step 2).
    const Bytes read = Bytes(op.inElems) * cfg_.accumBytes;
    const Cycles compute = vectorUnit_.reductionCycles(op.inElems);
    addPostProc(result, op.stage, compute, read, 0);
}

void
Executor::runGradClip(SimResult &result, const Op &op) const
{
    // Read every per-example gradient, scale by min(1, C/norm), and
    // write it back: element-wise and memory-bandwidth bound.
    const Bytes read = Bytes(op.inElems) * cfg_.accumBytes;
    const Bytes write = Bytes(op.outElems) * cfg_.accumBytes;
    const Cycles compute = vectorUnit_.elementwiseCycles(op.inElems);
    addPostProc(result, op.stage, compute, read, write);
}

void
Executor::runGradReduce(SimResult &result, const Op &op) const
{
    const Bytes read = Bytes(op.inElems) * cfg_.accumBytes;
    const Bytes write = Bytes(op.outElems) * cfg_.accumBytes;
    const Cycles compute =
        ppu_ ? ppu_->reduceOnChip(op.inElems).cycles
             : vectorUnit_.reductionCycles(op.inElems);
    addPostProc(result, op.stage, compute, read, write);
}

void
Executor::runNoiseAdd(SimResult &result, const Op &op) const
{
    const Bytes read = Bytes(op.inElems) * cfg_.accumBytes;
    const Bytes write = Bytes(op.outElems) * cfg_.accumBytes;
    const Cycles compute = vectorUnit_.noiseCycles(op.inElems);
    addPostProc(result, op.stage, compute, read, write);
}

SimResult
Executor::run(const OpStream &stream, Trace *trace) const
{
    SimResult result;
    for (std::size_t i = 0; i < stream.ops.size(); ++i) {
        const Op &op = stream.ops[i];
        const Cycles cycles_before = result.totalCycles();
        const Bytes dram_before = result.totalDram().total();
        const Macs macs_before = result.totalMacs();
        switch (op.type) {
          case OpType::kGemm:
            runGemm(result, op, stream.algorithm);
            break;
          case OpType::kGradNorm:
            runGradNorm(result, op, stream.algorithm);
            break;
          case OpType::kGradClip:
            runGradClip(result, op);
            break;
          case OpType::kGradReduce:
            runGradReduce(result, op);
            break;
          case OpType::kNoiseAdd:
            runNoiseAdd(result, op);
            break;
        }
        if (trace) {
            OpTrace t;
            t.index = i;
            t.type = op.type;
            t.stage = op.stage;
            t.layerName = op.layerName;
            if (op.type == OpType::kGemm) {
                t.detail = op.shape.str() + " x" +
                           std::to_string(op.count);
            } else {
                t.detail = std::to_string(op.inElems) + " elems";
            }
            t.cycles = result.totalCycles() - cycles_before;
            t.dramBytes = result.totalDram().total() - dram_before;
            t.macs = result.totalMacs() - macs_before;
            trace->push_back(std::move(t));
        }
    }
    return result;
}

} // namespace diva
