/**
 * @file
 * Op-level execution tracing: per-op latency and traffic records that
 * the executor can emit alongside its aggregate result, plus report
 * helpers (top-k ops, per-stage rollups). Useful for root-causing
 * where an accelerator configuration spends its cycles, in the spirit
 * of the paper's Figure 14 analysis but at op granularity.
 */

#ifndef DIVA_SIM_TRACE_H
#define DIVA_SIM_TRACE_H

#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/stage.h"
#include "train/op.h"

namespace diva
{

/** One executed op's timing/traffic record. */
struct OpTrace
{
    std::size_t index = 0;
    OpType type = OpType::kGemm;
    Stage stage = Stage::kForward;
    std::string layerName;
    std::string detail; ///< GEMM shape "MxKxN xCount" or element count
    Cycles cycles = 0;
    Bytes dramBytes = 0;
    Macs macs = 0;
};

/** Full trace of one simulated iteration. */
using Trace = std::vector<OpTrace>;

/** The k ops with the highest cycle counts, descending. */
std::vector<OpTrace> topOpsByCycles(const Trace &trace, std::size_t k);

/** Sum of cycles attributed to one layer name across the trace. */
Cycles layerCycles(const Trace &trace, const std::string &layer_name);

/** Human-readable report: stage rollup plus the top-k op table. */
void printTraceReport(std::ostream &os, const Trace &trace,
                      std::size_t top_k = 10);

} // namespace diva

#endif // DIVA_SIM_TRACE_H
