/**
 * @file
 * Training-stage taxonomy matching the paper's Figure 5 / Figure 14
 * latency-breakdown buckets.
 */

#ifndef DIVA_SIM_STAGE_H
#define DIVA_SIM_STAGE_H

#include <array>
#include <cstddef>

namespace diva
{

/** One bucket of the end-to-end training-time breakdown. */
enum class Stage : std::size_t
{
    kForward = 0,       ///< Fwdprop
    kActGrad1,          ///< Bwd(activation grad, 1st pass)
    kPerExampleGrad,    ///< Bwd(per-example grad)
    kGradNorm,          ///< Bwd(grad norm)
    kActGrad2,          ///< Bwd(activation grad, 2nd pass) [DP-SGD(R)]
    kPerBatchGrad,      ///< Bwd(per-batch grad)
    kGradClip,          ///< Bwd(grad clip) [vanilla DP-SGD]
    kReduceNoise,       ///< Bwd(Reduce/noise)
    kNumStages,
};

constexpr std::size_t kNumStages =
    static_cast<std::size_t>(Stage::kNumStages);

/** Figure-5 legend string for a stage. */
const char *stageName(Stage s);

/** Iteration helper. */
constexpr std::array<Stage, kNumStages>
allStages()
{
    return {Stage::kForward,     Stage::kActGrad1,
            Stage::kPerExampleGrad, Stage::kGradNorm,
            Stage::kActGrad2,    Stage::kPerBatchGrad,
            Stage::kGradClip,    Stage::kReduceNoise};
}

} // namespace diva

#endif // DIVA_SIM_STAGE_H
