/**
 * @file
 * The executor maps a training op stream onto one accelerator
 * configuration, producing per-stage cycle counts, utilization and
 * off-chip traffic.
 *
 * Dispatch policy (Sections III-C and IV-C of the paper):
 *   - GEMM ops run on the configured GEMM engine model.
 *   - Per-example weight gradients are committed to DRAM only when a
 *     later consumer needs them: always under vanilla DP-SGD (for the
 *     clip stage), and under DP-SGD(R) only when no PPU exists (the
 *     vector unit must re-read them for norm derivation).
 *   - Gradient norms run on the PPU (on-the-fly, no traffic) when
 *     present, otherwise on the vector unit against spilled tensors.
 *   - Clip/reduce/noise run on the vector unit (or PPU reduction
 *     datapath) and are memory-bandwidth bound.
 */

#ifndef DIVA_SIM_EXECUTOR_H
#define DIVA_SIM_EXECUTOR_H

#include <memory>
#include <optional>

#include "arch/accelerator_config.h"
#include "gemm/engine.h"
#include "mem/dram_model.h"
#include "ppu/ppu_model.h"
#include "ppu/vector_unit.h"
#include "sim/result.h"
#include "sim/trace.h"
#include "train/op.h"

namespace diva
{

/** Simulates op streams on one accelerator configuration. */
class Executor
{
  public:
    explicit Executor(const AcceleratorConfig &cfg);

    /**
     * Simulate one training iteration. When `trace` is non-null, a
     * per-op latency/traffic record is appended for every op.
     */
    SimResult run(const OpStream &stream, Trace *trace = nullptr) const;

    const AcceleratorConfig &config() const { return cfg_; }

  private:
    void runGemm(SimResult &result, const Op &op,
                 TrainingAlgorithm algo) const;
    void runGradNorm(SimResult &result, const Op &op,
                     TrainingAlgorithm algo) const;
    void runGradClip(SimResult &result, const Op &op) const;
    void runGradReduce(SimResult &result, const Op &op) const;
    void runNoiseAdd(SimResult &result, const Op &op) const;

    /** Whether per-example gradient GEMM outputs must go to DRAM. */
    bool spillPerExampleGrads(TrainingAlgorithm algo) const;

    /** Account a memory-bound post-processing phase. */
    void addPostProc(SimResult &result, Stage stage, Cycles compute,
                     Bytes read, Bytes write) const;

    AcceleratorConfig cfg_;
    std::unique_ptr<GemmEngineModel> engine_;
    DramModel dram_;
    std::optional<PpuModel> ppu_;
    VectorUnitModel vectorUnit_;
};

} // namespace diva

#endif // DIVA_SIM_EXECUTOR_H
