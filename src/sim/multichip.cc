#include "sim/multichip.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "energy/energy_model.h"
#include "sim/executor.h"
#include "train/planner.h"

namespace diva
{

ScalingResult
simulateDataParallel(const AcceleratorConfig &chip, const Network &net,
                     TrainingAlgorithm algo, int global_batch,
                     const MultiChipConfig &pod)
{
    DIVA_ASSERT(pod.numChips >= 1);
    if (global_batch < pod.numChips)
        DIVA_FATAL("global batch ", global_batch,
                   " cannot shard over ", pod.numChips, " chips");

    ScalingResult result;
    result.numChips = pod.numChips;
    result.perChipBatch = ceilDiv(global_batch, pod.numChips);

    const Executor exec(chip);
    // The slowest chip carries the ceil-sized shard.
    const SimResult chip_result =
        exec.run(buildOpStream(net, algo, result.perChipBatch));
    result.computeCycles = chip_result.totalCycles();

    const double grad_bytes = double(net.paramCount()) * 4.0;
    if (pod.numChips > 1) {
        // Ring all-reduce of the FP32 per-batch weight gradients:
        // each chip sends 2*(N-1)/N of |G(W)| over its link.
        const double wire_bytes = 2.0 *
                                  double(pod.numChips - 1) /
                                  double(pod.numChips) * grad_bytes;
        const double bytes_per_cycle =
            pod.interconnectGBs * 1e9 / (chip.freqGhz * 1e9);
        result.allReduceCycles =
            Cycles(std::ceil(wire_bytes / bytes_per_cycle)) +
            Cycles(2 * (pod.numChips - 1)) * pod.linkLatencyCycles;
    }
    result.totalCycles = result.computeCycles + result.allReduceCycles;

    // Pod-level utilization, traffic, and energy. Every chip runs the
    // same shard simulation, so pod totals are numChips times the
    // per-chip result plus the all-reduce contributions: each chip
    // streams its gradients out to the link and the reduced gradients
    // back (2*|G| of DRAM traffic), and its engine keeps drawing power
    // while stalled on the ring.
    const double chips = double(pod.numChips);
    result.utilization =
        result.totalCycles == 0
            ? 0.0
            : chip_result.overallUtilization(chip) *
                  double(result.computeCycles) /
                  double(result.totalCycles);
    Bytes per_chip_dram = chip_result.totalDram().total();
    double pod_energy = chips * EnergyModel::energy(chip_result, chip).total();
    if (pod.numChips > 1) {
        const Bytes reduce_dram = Bytes(2.0 * grad_bytes);
        per_chip_dram += reduce_dram;
        pod_energy += chips * EnergyModel::kDramJoulesPerByte *
                      double(reduce_dram);
        pod_energy += chips * EnergyModel::enginePowerW(chip) *
                      chip.cyclesToSeconds(result.allReduceCycles);
    }
    result.dramBytes = Bytes(chips) * per_chip_dram;
    result.energyJ = pod_energy;
    result.postProcDramBytes =
        Bytes(chips) * chip_result.postProcessingDram.total();

    const Cycles single =
        exec.run(buildOpStream(net, algo, global_batch)).totalCycles();
    result.efficiency = double(single) / (double(pod.numChips) *
                                          double(result.totalCycles));
    return result;
}

} // namespace diva
