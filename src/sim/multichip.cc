#include "sim/multichip.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "sim/executor.h"
#include "train/planner.h"

namespace diva
{

ScalingResult
simulateDataParallel(const AcceleratorConfig &chip, const Network &net,
                     TrainingAlgorithm algo, int global_batch,
                     const MultiChipConfig &pod)
{
    DIVA_ASSERT(pod.numChips >= 1);
    if (global_batch < pod.numChips)
        DIVA_FATAL("global batch ", global_batch,
                   " cannot shard over ", pod.numChips, " chips");

    ScalingResult result;
    result.numChips = pod.numChips;
    result.perChipBatch = ceilDiv(global_batch, pod.numChips);

    const Executor exec(chip);
    // The slowest chip carries the ceil-sized shard.
    result.computeCycles =
        exec.run(buildOpStream(net, algo, result.perChipBatch))
            .totalCycles();

    if (pod.numChips > 1) {
        // Ring all-reduce of the FP32 per-batch weight gradients:
        // each chip sends 2*(N-1)/N of |G(W)| over its link.
        const double grad_bytes = double(net.paramCount()) * 4.0;
        const double wire_bytes = 2.0 *
                                  double(pod.numChips - 1) /
                                  double(pod.numChips) * grad_bytes;
        const double bytes_per_cycle =
            pod.interconnectGBs * 1e9 / (chip.freqGhz * 1e9);
        result.allReduceCycles =
            Cycles(std::ceil(wire_bytes / bytes_per_cycle)) +
            Cycles(2 * (pod.numChips - 1)) * pod.linkLatencyCycles;
    }
    result.totalCycles = result.computeCycles + result.allReduceCycles;

    const Cycles single =
        exec.run(buildOpStream(net, algo, global_batch)).totalCycles();
    result.efficiency = double(single) / (double(pod.numChips) *
                                          double(result.totalCycles));
    return result;
}

} // namespace diva
