/**
 * @file
 * Data-parallel multi-chip scaling model. The paper evaluates a single
 * TPUv3-class chip; production DP training runs on pods, where each
 * chip processes a shard of the mini-batch and the per-batch weight
 * gradients are ring-all-reduced over the interconnect before the
 * (noised) update. DP-SGD composes cleanly with data parallelism:
 * per-example clipping is local to the chip that saw the example, and
 * noise is added once after the reduction.
 */

#ifndef DIVA_SIM_MULTICHIP_H
#define DIVA_SIM_MULTICHIP_H

#include "arch/accelerator_config.h"
#include "common/types.h"
#include "models/network.h"
#include "train/algorithm.h"

namespace diva
{

/** Pod-level configuration. */
struct MultiChipConfig
{
    int numChips = 8;
    /** Per-link interconnect bandwidth (TPUv3 ICI class). */
    double interconnectGBs = 70.0;
    /** Per-hop link latency in core cycles. */
    Cycles linkLatencyCycles = 500;
};

/** Outcome of one data-parallel training iteration. */
struct ScalingResult
{
    int numChips = 1;
    int perChipBatch = 0;
    Cycles computeCycles = 0;   ///< slowest chip's local iteration
    Cycles allReduceCycles = 0; ///< ring all-reduce of G(W)
    Cycles totalCycles = 0;

    /**
     * Strong-scaling efficiency: single-chip time at the global batch
     * divided by (numChips x multi-chip time). 1.0 = perfect scaling.
     */
    double efficiency = 0.0;

    /**
     * Pod-level effective FLOPS utilization: the per-chip iteration
     * utilization derated by the all-reduce stall (engines are idle
     * while gradients circulate the ring).
     */
    double utilization = 0.0;

    /**
     * Pod energy per iteration in joules, summed over all chips:
     * per-chip compute/SRAM/DRAM energy, engine power drawn during the
     * all-reduce stall, and the DRAM traffic of streaming each chip's
     * gradient shard out and the reduced gradients back in.
     */
    double energyJ = 0.0;

    /** Pod-wide DRAM traffic, including the gradient-reduce streaming. */
    Bytes dramBytes = 0;

    /** Pod-wide gradient post-processing off-chip traffic. */
    Bytes postProcDramBytes = 0;
};

/**
 * Simulate one data-parallel iteration of `global_batch` examples
 * sharded over the pod. Requires global_batch >= numChips.
 */
ScalingResult simulateDataParallel(const AcceleratorConfig &chip,
                                   const Network &net,
                                   TrainingAlgorithm algo,
                                   int global_batch,
                                   const MultiChipConfig &pod);

} // namespace diva

#endif // DIVA_SIM_MULTICHIP_H
