#include "sim/stage.h"

namespace diva
{

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::kForward: return "Fwdprop";
      case Stage::kActGrad1: return "Bwd(activation grad,1st pass)";
      case Stage::kPerExampleGrad: return "Bwd(per-example grad)";
      case Stage::kGradNorm: return "Bwd(grad norm)";
      case Stage::kActGrad2: return "Bwd(activation grad,2nd pass)";
      case Stage::kPerBatchGrad: return "Bwd(per-batch grad)";
      case Stage::kGradClip: return "Bwd(grad clip)";
      case Stage::kReduceNoise: return "Bwd(Reduce/noise)";
      case Stage::kNumStages: break;
    }
    return "?";
}

} // namespace diva
