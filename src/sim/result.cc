#include "sim/result.h"

#include <cmath>
#include <limits>

namespace diva
{

Cycles
SimResult::totalCycles() const
{
    Cycles total = 0;
    for (auto c : stageCycles)
        total += c;
    return total;
}

Macs
SimResult::totalMacs() const
{
    Macs total = 0;
    for (auto m : stageMacs)
        total += m;
    return total;
}

DramTraffic
SimResult::totalDram() const
{
    DramTraffic total;
    for (const auto &t : stageDram)
        total += t;
    return total;
}

double
SimResult::stageUtilization(Stage s, const AcceleratorConfig &cfg) const
{
    const auto idx = static_cast<std::size_t>(s);
    if (stageCycles[idx] == 0)
        return 0.0;
    return double(stageMacs[idx]) /
           (double(stageCycles[idx]) * double(cfg.macsPerCycle()));
}

double
SimResult::overallUtilization(const AcceleratorConfig &cfg) const
{
    const Cycles total = totalCycles();
    if (total == 0)
        return 0.0;
    return double(totalMacs()) /
           (double(total) * double(cfg.macsPerCycle()));
}

double
SimResult::seconds(const AcceleratorConfig &cfg) const
{
    return cfg.cyclesToSeconds(totalCycles());
}

SimResult &
SimResult::operator+=(const SimResult &o)
{
    for (std::size_t i = 0; i < kNumStages; ++i) {
        stageCycles[i] += o.stageCycles[i];
        stageMacs[i] += o.stageMacs[i];
        stageDram[i] += o.stageDram[i];
    }
    sramReadBytes += o.sramReadBytes;
    sramWriteBytes += o.sramWriteBytes;
    postProcessingDram += o.postProcessingDram;
    return *this;
}

double
speedup(const SimResult &slow, const SimResult &fast)
{
    const double denom = double(fast.totalCycles());
    if (denom == 0.0 || !std::isfinite(denom))
        return std::numeric_limits<double>::quiet_NaN();
    return double(slow.totalCycles()) / denom;
}

} // namespace diva
