/**
 * @file
 * Per-stage simulation results for one training iteration.
 */

#ifndef DIVA_SIM_RESULT_H
#define DIVA_SIM_RESULT_H

#include <array>

#include "arch/accelerator_config.h"
#include "common/types.h"
#include "mem/dram_model.h"
#include "sim/stage.h"

namespace diva
{

/** Cycle/traffic/compute totals of one simulated training iteration. */
struct SimResult
{
    std::array<Cycles, kNumStages> stageCycles{};
    std::array<Macs, kNumStages> stageMacs{};
    std::array<DramTraffic, kNumStages> stageDram{};

    Bytes sramReadBytes = 0;
    Bytes sramWriteBytes = 0;

    /**
     * Off-chip traffic attributable to gradient post-processing: the
     * per-example gradient spills plus all norm/clip/reduce/noise
     * traffic. This is the quantity the PPU eliminates (the paper's
     * "99% reduction in off-chip data movements during gradient
     * post-processing").
     */
    DramTraffic postProcessingDram;

    Cycles totalCycles() const;
    Macs totalMacs() const;
    DramTraffic totalDram() const;

    Cycles stageCyclesFor(Stage s) const
    {
        return stageCycles[static_cast<std::size_t>(s)];
    }

    /** Effective FLOPS utilization of one stage. */
    double stageUtilization(Stage s, const AcceleratorConfig &cfg) const;

    /** Effective FLOPS utilization of the full iteration. */
    double overallUtilization(const AcceleratorConfig &cfg) const;

    /** Wall-clock seconds at the configuration's core frequency. */
    double seconds(const AcceleratorConfig &cfg) const;

    SimResult &operator+=(const SimResult &o);
};

/**
 * Latency ratio: how much faster `fast` is than `slow`. NaN when the
 * denominator is zero or non-finite (an empty/failed fast result); the
 * emit-layer formatDouble/jsonNumber guards render it as "nan"/null.
 */
double speedup(const SimResult &slow, const SimResult &fast);

} // namespace diva

#endif // DIVA_SIM_RESULT_H
