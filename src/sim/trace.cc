#include "sim/trace.h"

#include <algorithm>
#include <array>

#include "common/table.h"

namespace diva
{

std::vector<OpTrace>
topOpsByCycles(const Trace &trace, std::size_t k)
{
    std::vector<OpTrace> sorted = trace;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const OpTrace &a, const OpTrace &b) {
                         return a.cycles > b.cycles;
                     });
    if (sorted.size() > k)
        sorted.resize(k);
    return sorted;
}

Cycles
layerCycles(const Trace &trace, const std::string &layer_name)
{
    Cycles total = 0;
    for (const auto &t : trace)
        if (t.layerName == layer_name)
            total += t.cycles;
    return total;
}

void
printTraceReport(std::ostream &os, const Trace &trace, std::size_t top_k)
{
    Cycles total = 0;
    std::array<Cycles, kNumStages> per_stage{};
    for (const auto &t : trace) {
        total += t.cycles;
        per_stage[static_cast<std::size_t>(t.stage)] += t.cycles;
    }
    os << "trace: " << trace.size() << " ops, " << total
       << " cycles total\n";

    TextTable stages({"stage", "cycles", "share"});
    for (Stage s : allStages()) {
        const Cycles c = per_stage[static_cast<std::size_t>(s)];
        if (c == 0)
            continue;
        stages.addRow({stageName(s), std::to_string(c),
                       TextTable::fmtPct(double(c) /
                                         double(std::max<Cycles>(total,
                                                                 1)))});
    }
    stages.print(os);

    TextTable top({"#", "op", "stage", "layer", "detail", "cycles",
                   "share"});
    for (const auto &t : topOpsByCycles(trace, top_k)) {
        top.addRow({std::to_string(t.index), opTypeName(t.type),
                    stageName(t.stage), t.layerName, t.detail,
                    std::to_string(t.cycles),
                    TextTable::fmtPct(double(t.cycles) /
                                      double(std::max<Cycles>(total,
                                                              1)))});
    }
    top.print(os);
}

} // namespace diva
