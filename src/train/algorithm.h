/**
 * @file
 * The three training algorithms compared throughout the paper.
 */

#ifndef DIVA_TRAIN_ALGORITHM_H
#define DIVA_TRAIN_ALGORITHM_H

namespace diva
{

/** Training algorithm selection (Algorithm 1). */
enum class TrainingAlgorithm
{
    /** Non-private mini-batch SGD. */
    kSgd,
    /** Vanilla DP-SGD: per-example grads stored, then clipped/reduced. */
    kDpSgd,
    /**
     * Reweighted DP-SGD (Lee & Kifer): first backprop derives only the
     * per-example gradient norms; a second backprop computes the
     * clipped per-batch gradient directly from a reweighted loss.
     */
    kDpSgdR,
};

inline const char *
algorithmName(TrainingAlgorithm a)
{
    switch (a) {
      case TrainingAlgorithm::kSgd: return "SGD";
      case TrainingAlgorithm::kDpSgd: return "DP-SGD";
      case TrainingAlgorithm::kDpSgdR: return "DP-SGD(R)";
    }
    return "?";
}

} // namespace diva

#endif // DIVA_TRAIN_ALGORITHM_H
