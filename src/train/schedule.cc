#include "train/schedule.h"

#include <cmath>

#include "common/logging.h"
#include "dp/accountant.h"
#include "energy/energy_model.h"
#include "sim/executor.h"
#include "train/memory_model.h"
#include "train/planner.h"

namespace diva
{

TrainingRunSummary
projectTrainingRun(const AcceleratorConfig &accel, const Network &net,
                   TrainingAlgorithm algo, const TrainingRunConfig &run)
{
    DIVA_ASSERT(run.datasetSize > 0 && run.epochs > 0);

    TrainingRunSummary summary;
    summary.batch = run.batch;
    if (summary.batch == 0) {
        // Match the paper's protocol: the largest batch vanilla DP-SGD
        // fits, shared by all algorithms for comparability.
        summary.batch = maxBatchSize(net, TrainingAlgorithm::kDpSgd,
                                     run.hbmBytes);
        if (summary.batch == 0)
            DIVA_FATAL("model '", net.name, "' does not fit ",
                       run.hbmBytes, " bytes of device memory");
    }
    if (trainingMemory(net, algo, summary.batch).total() > run.hbmBytes)
        DIVA_FATAL("mini-batch ", summary.batch, " of '", net.name,
                   "' exceeds device memory under ",
                   algorithmName(algo));

    const Executor exec(accel);
    const SimResult iter =
        exec.run(buildOpStream(net, algo, summary.batch));

    summary.stepsPerEpoch = std::max<std::int64_t>(
        1, run.datasetSize / summary.batch);
    summary.totalSteps =
        summary.stepsPerEpoch * std::int64_t(run.epochs);
    summary.secondsPerStep = iter.seconds(accel);
    summary.totalHours =
        summary.secondsPerStep * double(summary.totalSteps) / 3600.0;
    summary.examplesPerSecond =
        double(summary.batch) / summary.secondsPerStep;

    const double joules_per_step =
        EnergyModel::energy(iter, accel).total();
    summary.totalEnergyKwh =
        joules_per_step * double(summary.totalSteps) / 3.6e6;

    if (algo != TrainingAlgorithm::kSgd) {
        const double q =
            double(summary.batch) / double(run.datasetSize);
        summary.noiseMultiplier = run.noiseMultiplier;
        if (run.targetEpsilon > 0.0) {
            // Fix the privacy budget and derive the noise instead.
            summary.noiseMultiplier =
                RdpAccountant::calibrateNoiseMultiplier(
                    run.targetEpsilon, run.targetDelta, q,
                    int(summary.totalSteps));
        }
        if (summary.noiseMultiplier > 0.0) {
            RdpAccountant accountant(summary.noiseMultiplier, q);
            // RDP composes linearly; avoid a 10^5-iteration loop.
            accountant.addSteps(int(summary.totalSteps));
            summary.epsilon = accountant.epsilon(run.targetDelta);
        }
    }
    return summary;
}

} // namespace diva
