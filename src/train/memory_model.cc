#include "train/memory_model.h"

#include "common/logging.h"

namespace diva
{

MemoryBreakdown
trainingMemory(const Network &net, TrainingAlgorithm algo, int batch,
               const MemoryModelParams &params)
{
    DIVA_ASSERT(batch > 0);

    const Bytes param_bytes =
        Bytes(net.paramCount()) * params.weightBytes;
    const Bytes act_bytes = Bytes(net.activationElemsPerExample()) *
                            Bytes(batch) * params.activationBytes;

    MemoryBreakdown mb;
    mb.weights = param_bytes;
    mb.activations = act_bytes;
    mb.perBatchGrad = param_bytes;

    switch (algo) {
      case TrainingAlgorithm::kSgd:
        break;
      case TrainingAlgorithm::kDpSgd:
        // All layers' per-example gradients live until the global
        // per-example norm is known (Algorithm 1, line 22).
        mb.perExampleGrad = Bytes(batch) * param_bytes;
        break;
      case TrainingAlgorithm::kDpSgdR:
        // Only the currently processed layer's per-example gradients
        // are alive; the runtime needs one transient buffer sized for
        // the largest layer.
        mb.perExampleGrad =
            Bytes(batch) * Bytes(net.maxLayerParamCount()) *
            params.weightBytes;
        break;
    }

    // Optimizer state (one momentum slot) plus input staging buffers.
    mb.other = param_bytes + Bytes(net.inputElemsPerExample) *
                                 Bytes(batch) * params.activationBytes;
    return mb;
}

MemoryBreakdown
trainingMemoryMicrobatched(const Network &net, TrainingAlgorithm algo,
                           int batch, int microbatch,
                           const MemoryModelParams &params)
{
    DIVA_ASSERT(batch > 0 && microbatch > 0 && microbatch <= batch);
    // Per-pass tensors (activations, per-example grads, input staging)
    // are sized by the micro-batch; the accumulated gradient and the
    // optimizer state are full-size regardless.
    MemoryBreakdown mb = trainingMemory(net, algo, microbatch, params);
    (void)batch;
    return mb;
}

int
maxBatchSize(const Network &net, TrainingAlgorithm algo, Bytes capacity,
             const MemoryModelParams &params)
{
    if (trainingMemory(net, algo, 1, params).total() > capacity)
        return 0;

    // Memory grows monotonically with batch -> binary search.
    int lo = 1;
    int hi = 1 << 24;
    while (lo < hi) {
        const int mid = lo + (hi - lo + 1) / 2;
        if (trainingMemory(net, algo, mid, params).total() <= capacity)
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

} // namespace diva
