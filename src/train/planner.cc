#include "train/planner.h"

#include "common/logging.h"

namespace diva
{

namespace
{

/** Append a GEMM op if the layer produces one for this operation. */
void
pushGemm(OpStream &stream, const Layer &layer, const GemmInstance &gi,
         Stage stage, bool per_example_output = false)
{
    if (!gi.valid())
        return;
    Op op;
    op.type = OpType::kGemm;
    op.stage = stage;
    op.layerName = layer.name;
    op.shape = gi.shape;
    op.count = gi.count;
    op.perExampleOutput = per_example_output;
    stream.ops.push_back(std::move(op));
}

/** Append a post-processing op over `in` input / `out` output elems. */
void
pushPostProc(OpStream &stream, OpType type, Stage stage,
             const std::string &layer_name, Elems in, Elems out)
{
    Op op;
    op.type = type;
    op.stage = stage;
    op.layerName = layer_name;
    op.inElems = in;
    op.outElems = out;
    stream.ops.push_back(std::move(op));
}

void
emitForward(OpStream &stream, const Network &net, int batch)
{
    for (const auto &layer : net.layers)
        pushGemm(stream, layer, layer.forwardGemm(batch),
                 Stage::kForward);
}

void
emitActGrad(OpStream &stream, const Network &net, int batch, Stage stage)
{
    // Reverse layer order; the first layer's input gradient is never
    // needed (there is no upstream layer to propagate it to).
    for (std::size_t i = net.layers.size(); i-- > 1;) {
        const auto &layer = net.layers[i];
        pushGemm(stream, layer, layer.actGradGemm(batch), stage);
    }
}

void
emitPerBatchWGrad(OpStream &stream, const Network &net, int batch)
{
    for (std::size_t i = net.layers.size(); i-- > 0;) {
        const auto &layer = net.layers[i];
        pushGemm(stream, layer, layer.perBatchWGradGemm(batch),
                 Stage::kPerBatchGrad);
    }
}

void
emitPerExampleWGradAndNorm(OpStream &stream, const Network &net,
                           int batch)
{
    for (std::size_t i = net.layers.size(); i-- > 0;) {
        const auto &layer = net.layers[i];
        pushGemm(stream, layer, layer.perExampleWGradGemm(batch),
                 Stage::kPerExampleGrad, /*per_example_output=*/true);
        if (layer.hasWeights()) {
            const Elems grads =
                Elems(batch) * Elems(layer.paramCount());
            // One squared-norm partial per example per layer.
            pushPostProc(stream, OpType::kGradNorm, Stage::kGradNorm,
                         layer.name, grads, Elems(batch));
        }
    }
}

} // namespace

OpStream
buildMicrobatchedOpStream(const Network &net, TrainingAlgorithm algo,
                          int batch, int microbatch)
{
    DIVA_ASSERT(batch > 0 && microbatch > 0);
    DIVA_ASSERT(microbatch <= batch,
                "micro-batch cannot exceed the mini-batch");

    const int full_passes = batch / microbatch;
    const int remainder = batch % microbatch;

    OpStream stream;
    stream.networkName = net.name;
    stream.algorithm = algo;
    stream.batch = batch;

    auto append_pass = [&](int mb, bool last) {
        OpStream pass = buildOpStream(net, algo, mb);
        for (auto &op : pass.ops) {
            // Noise is added once per logical mini-batch, after the
            // last micro-batch's gradients are accumulated.
            if (op.type == OpType::kNoiseAdd && !last)
                continue;
            stream.ops.push_back(std::move(op));
        }
    };
    for (int p = 0; p < full_passes; ++p)
        append_pass(microbatch, remainder == 0 && p + 1 == full_passes);
    if (remainder > 0)
        append_pass(remainder, true);
    return stream;
}

OpStream
buildOpStream(const Network &net, TrainingAlgorithm algo, int batch)
{
    DIVA_ASSERT(batch > 0, "mini-batch must be positive");
    DIVA_ASSERT(!net.layers.empty(), "network '", net.name,
                "' has no layers");

    OpStream stream;
    stream.networkName = net.name;
    stream.algorithm = algo;
    stream.batch = batch;

    const Elems params = Elems(net.paramCount());
    const Elems per_example_grads = Elems(batch) * params;

    emitForward(stream, net, batch);

    switch (algo) {
      case TrainingAlgorithm::kSgd:
        emitActGrad(stream, net, batch, Stage::kActGrad1);
        emitPerBatchWGrad(stream, net, batch);
        break;

      case TrainingAlgorithm::kDpSgd:
        emitActGrad(stream, net, batch, Stage::kActGrad1);
        emitPerExampleWGradAndNorm(stream, net, batch);
        // Algorithm 1, lines 23-24: clip every per-example gradient,
        // reduce into one per-batch gradient, then add noise.
        pushPostProc(stream, OpType::kGradClip, Stage::kGradClip,
                     "all_layers", per_example_grads, per_example_grads);
        pushPostProc(stream, OpType::kGradReduce, Stage::kReduceNoise,
                     "all_layers", per_example_grads, params);
        pushPostProc(stream, OpType::kNoiseAdd, Stage::kReduceNoise,
                     "all_layers", params, params);
        break;

      case TrainingAlgorithm::kDpSgdR:
        // Algorithm 1, lines 28-42: first backprop derives only the
        // per-example norms; the reweighted second backprop fuses the
        // clip/reduce into the per-batch weight-gradient GEMMs.
        emitActGrad(stream, net, batch, Stage::kActGrad1);
        emitPerExampleWGradAndNorm(stream, net, batch);
        emitActGrad(stream, net, batch, Stage::kActGrad2);
        emitPerBatchWGrad(stream, net, batch);
        pushPostProc(stream, OpType::kNoiseAdd, Stage::kReduceNoise,
                     "all_layers", params, params);
        break;
    }
    return stream;
}

} // namespace diva
