#include "train/op.h"

namespace diva
{

const char *
opTypeName(OpType t)
{
    switch (t) {
      case OpType::kGemm: return "gemm";
      case OpType::kGradNorm: return "grad_norm";
      case OpType::kGradClip: return "grad_clip";
      case OpType::kGradReduce: return "grad_reduce";
      case OpType::kNoiseAdd: return "noise_add";
    }
    return "?";
}

Macs
OpStream::totalGemmMacs() const
{
    Macs total = 0;
    for (const auto &op : ops)
        total += op.gemmMacs();
    return total;
}

} // namespace diva
