/**
 * @file
 * The training planner: lowers (network, algorithm, mini-batch) into
 * the linear op stream of one training iteration, following Algorithm 1
 * of the paper.
 *
 *   SGD:       fwd -> actgrad -> per-batch wgrad
 *   DP-SGD:    fwd -> actgrad -> per-example wgrad -> norm -> clip
 *              -> reduce -> noise
 *   DP-SGD(R): fwd -> actgrad(1st) -> per-example wgrad -> norm
 *              -> actgrad(2nd) -> per-batch wgrad (reweighted) -> noise
 */

#ifndef DIVA_TRAIN_PLANNER_H
#define DIVA_TRAIN_PLANNER_H

#include "models/network.h"
#include "train/algorithm.h"
#include "train/op.h"

namespace diva
{

/** Build the op stream of one training iteration. */
OpStream buildOpStream(const Network &net, TrainingAlgorithm algo,
                       int batch);

/**
 * Build one training iteration that processes a logical mini-batch of
 * `batch` examples as ceil(batch / microbatch) sequential micro-batch
 * passes with gradient accumulation -- the standard mitigation for
 * DP-SGD's B x sizeof(G(W)) memory wall (Section III-A): only one
 * micro-batch's per-example gradients are ever alive, at the cost of
 * re-running forward/backward per micro-batch.
 *
 * Noise is still added exactly once per logical mini-batch, so the
 * privacy guarantee is identical to the monolithic iteration.
 */
OpStream buildMicrobatchedOpStream(const Network &net,
                                   TrainingAlgorithm algo, int batch,
                                   int microbatch);

} // namespace diva

#endif // DIVA_TRAIN_PLANNER_H
