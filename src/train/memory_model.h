/**
 * @file
 * Device-memory allocation model (Figure 4 / Section III-A).
 *
 * DP-SGD must materialize one full weight-gradient set per example
 * (B x sizeof(G(W))), dominating memory and capping the feasible
 * mini-batch on a 16 GB device. DP-SGD(R) keeps only a single layer's
 * per-example gradients alive at a time (they are consumed immediately
 * for norm derivation), restoring SGD-like capacity.
 */

#ifndef DIVA_TRAIN_MEMORY_MODEL_H
#define DIVA_TRAIN_MEMORY_MODEL_H

#include "common/types.h"
#include "models/network.h"
#include "train/algorithm.h"

namespace diva
{

/** Figure-4 memory categories, in bytes. */
struct MemoryBreakdown
{
    Bytes weights = 0;
    Bytes activations = 0;
    Bytes perBatchGrad = 0;
    Bytes perExampleGrad = 0;
    Bytes other = 0;

    Bytes total() const
    {
        return weights + activations + perBatchGrad + perExampleGrad +
               other;
    }
};

/** Element widths used by the allocation model. */
struct MemoryModelParams
{
    /** Master weights, gradients and optimizer state (FP32). */
    int weightBytes = 4;
    /** Stored activations (BF16 as on TPUv3). */
    int activationBytes = 2;
};

/** Memory required to train `net` with `algo` at mini-batch `batch`. */
MemoryBreakdown trainingMemory(const Network &net, TrainingAlgorithm algo,
                               int batch,
                               const MemoryModelParams &params = {});

/**
 * Largest mini-batch that fits in `capacity` bytes of device memory
 * (e.g. TPUv3's 16 GiB HBM). Returns 0 if even batch 1 does not fit.
 */
int maxBatchSize(const Network &net, TrainingAlgorithm algo,
                 Bytes capacity, const MemoryModelParams &params = {});

/**
 * Memory required when a logical mini-batch of `batch` examples is
 * processed in micro-batches of `microbatch` with gradient
 * accumulation: activations and per-example gradients are sized by
 * the micro-batch, while the accumulated per-batch gradient and
 * optimizer state remain full-size.
 */
MemoryBreakdown trainingMemoryMicrobatched(
    const Network &net, TrainingAlgorithm algo, int batch,
    int microbatch, const MemoryModelParams &params = {});

} // namespace diva

#endif // DIVA_TRAIN_MEMORY_MODEL_H
