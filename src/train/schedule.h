/**
 * @file
 * Whole-training-run projection: compose the single-iteration cycle
 * model with a dataset/epoch schedule, the energy model, and the RDP
 * accountant to report end-to-end training time, throughput, energy
 * and the final (epsilon, delta) privacy cost -- everything a
 * practitioner would ask before committing to DP training on a given
 * accelerator.
 */

#ifndef DIVA_TRAIN_SCHEDULE_H
#define DIVA_TRAIN_SCHEDULE_H

#include <cstdint>

#include "arch/accelerator_config.h"
#include "models/network.h"
#include "train/algorithm.h"

namespace diva
{

/** A full training-run recipe. */
struct TrainingRunConfig
{
    std::int64_t datasetSize = 50'000; ///< CIFAR-10 scale by default
    int epochs = 30;
    int batch = 0;             ///< 0 = max DP-SGD batch under hbmBytes
    Bytes hbmBytes = 16_GiB;
    double noiseMultiplier = 1.1; ///< sigma, for the privacy cost
    double targetDelta = 1e-5;

    /**
     * When positive, ignore noiseMultiplier and instead calibrate the
     * smallest sigma that keeps the whole run within
     * (targetEpsilon, targetDelta).
     */
    double targetEpsilon = 0.0;
};

/** Projected outcomes of the run. */
struct TrainingRunSummary
{
    int batch = 0;
    std::int64_t stepsPerEpoch = 0;
    std::int64_t totalSteps = 0;
    double secondsPerStep = 0.0;
    double totalHours = 0.0;
    double examplesPerSecond = 0.0;
    double totalEnergyKwh = 0.0;
    /** Final privacy cost (infinite for non-private SGD -> 0 noise). */
    double epsilon = 0.0;
    /** The noise multiplier used (given or calibrated). */
    double noiseMultiplier = 0.0;
};

/**
 * Project one full training run. Fails (DIVA_FATAL) if even mini-batch
 * 1 does not fit the device memory.
 */
TrainingRunSummary projectTrainingRun(const AcceleratorConfig &accel,
                                      const Network &net,
                                      TrainingAlgorithm algo,
                                      const TrainingRunConfig &run);

} // namespace diva

#endif // DIVA_TRAIN_SCHEDULE_H
