/**
 * @file
 * Typed operations emitted by the training planner and consumed by the
 * executor. A training iteration is a linear stream of GEMM ops and
 * gradient post-processing ops, each tagged with its Figure-5 stage.
 */

#ifndef DIVA_TRAIN_OP_H
#define DIVA_TRAIN_OP_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "gemm/gemm_shape.h"
#include "sim/stage.h"
#include "train/algorithm.h"

namespace diva
{

/** Operation categories. */
enum class OpType
{
    kGemm,       ///< matrix multiplication (possibly a batch of them)
    kGradNorm,   ///< per-example L2-norm derivation over weight grads
    kGradClip,   ///< per-example gradient scaling by min(1, C/norm)
    kGradReduce, ///< sum of per-example grads into one per-batch grad
    kNoiseAdd,   ///< Gaussian noise addition to the per-batch grad
};

const char *opTypeName(OpType t);

/** One operation of a training iteration. */
struct Op
{
    OpType type = OpType::kGemm;
    Stage stage = Stage::kForward;
    std::string layerName;

    /** GEMM payload: `count` independent GEMMs of shape `shape`. */
    GemmShape shape;
    std::uint64_t count = 1;

    /**
     * Marks the per-example weight-gradient GEMMs whose outputs may be
     * consumed on-the-fly by the PPU instead of being committed to DRAM.
     */
    bool perExampleOutput = false;

    /** Post-processing payload: total elements read / written. */
    Elems inElems = 0;
    Elems outElems = 0;

    Macs gemmMacs() const
    {
        return type == OpType::kGemm ? shape.macs() * count : 0;
    }
};

/** A full training iteration for one network/algorithm/batch triple. */
struct OpStream
{
    std::string networkName;
    TrainingAlgorithm algorithm = TrainingAlgorithm::kSgd;
    int batch = 0;
    std::vector<Op> ops;

    Macs totalGemmMacs() const;
};

} // namespace diva

#endif // DIVA_TRAIN_OP_H
