/**
 * @file
 * Numeric primitives for the functional DP-SGD library: GEMM variants,
 * ReLU forward/backward and the softmax cross-entropy loss.
 */

#ifndef DIVA_DP_OPS_H
#define DIVA_DP_OPS_H

#include <vector>

#include "dp/tensor.h"

namespace diva
{

/** C = A(BxK) * B(KxN). */
Tensor matmul(const Tensor &a, const Tensor &b);

/** C = A^T(KxB)^T... i.e. C(KxN) = A(BxK)^T * B(BxN). */
Tensor matmulTransA(const Tensor &a, const Tensor &b);

/** C(BxK) = A(BxN) * B(KxN)^T. */
Tensor matmulTransB(const Tensor &a, const Tensor &b);

/** Element-wise max(x, 0). */
Tensor reluForward(const Tensor &x);

/** grad_x = grad_y where pre-activation z > 0, else 0. */
Tensor reluBackward(const Tensor &z, const Tensor &grad_y);

/**
 * Mean softmax cross-entropy over the batch.
 *
 * @param logits (B x C) raw scores
 * @param labels length-B class indices
 * @param grad   out-param: d(mean loss * B)/d(logits), i.e. the
 *               *per-example* (un-averaged) gradient softmax(x)-onehot,
 *               so row i is exactly dLi/dlogits_i as DP-SGD needs.
 * @return mean loss over the batch
 */
double softmaxCrossEntropy(const Tensor &logits,
                           const std::vector<int> &labels, Tensor &grad);

} // namespace diva

#endif // DIVA_DP_OPS_H
