#include "dp/accountant.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace diva
{

namespace
{

/** log of the binomial coefficient C(n, k). */
double
logBinom(int n, int k)
{
    return std::lgamma(double(n) + 1.0) - std::lgamma(double(k) + 1.0) -
           std::lgamma(double(n - k) + 1.0);
}

/** Numerically stable log(sum(exp(terms))). */
double
logSumExp(const std::vector<double> &terms)
{
    const double m = *std::max_element(terms.begin(), terms.end());
    if (!std::isfinite(m))
        return m;
    double acc = 0.0;
    for (double t : terms)
        acc += std::exp(t - m);
    return m + std::log(acc);
}

} // namespace

RdpAccountant::RdpAccountant(double noise_multiplier, double sampling_rate)
    : sigma_(noise_multiplier), q_(sampling_rate)
{
    DIVA_ASSERT(sigma_ > 0.0, "noise multiplier must be positive");
    DIVA_ASSERT(q_ > 0.0 && q_ <= 1.0, "sampling rate must be in (0,1]");
}

void
RdpAccountant::addSteps(int steps)
{
    DIVA_ASSERT(steps >= 0);
    steps_ += steps;
}

double
RdpAccountant::rdpSingleStep(int alpha) const
{
    DIVA_ASSERT(alpha >= 2, "integer Renyi order must be >= 2");
    if (q_ >= 1.0) {
        // No subsampling: Gaussian mechanism RDP is alpha/(2 sigma^2).
        return double(alpha) / (2.0 * sigma_ * sigma_);
    }
    std::vector<double> terms;
    terms.reserve(std::size_t(alpha) + 1);
    const double log_q = std::log(q_);
    const double log_1mq = std::log1p(-q_);
    for (int k = 0; k <= alpha; ++k) {
        const double log_term =
            logBinom(alpha, k) + double(alpha - k) * log_1mq +
            double(k) * log_q +
            double(k) * double(k - 1) / (2.0 * sigma_ * sigma_);
        terms.push_back(log_term);
    }
    return logSumExp(terms) / (double(alpha) - 1.0);
}

std::vector<int>
RdpAccountant::defaultOrders()
{
    std::vector<int> orders;
    for (int a = 2; a <= 64; ++a)
        orders.push_back(a);
    for (int a = 68; a <= 256; a += 4)
        orders.push_back(a);
    return orders;
}

double
RdpAccountant::epsilon(double delta) const
{
    DIVA_ASSERT(delta > 0.0 && delta < 1.0);
    double best = std::numeric_limits<double>::infinity();
    for (int alpha : defaultOrders()) {
        const double eps = double(steps_) * rdpSingleStep(alpha) +
                           std::log(1.0 / delta) / (double(alpha) - 1.0);
        best = std::min(best, eps);
    }
    return best;
}

double
RdpAccountant::calibrateNoiseMultiplier(double target_epsilon,
                                        double delta,
                                        double sampling_rate, int steps)
{
    DIVA_ASSERT(target_epsilon > 0.0 && steps > 0);
    auto eps_at = [&](double sigma) {
        RdpAccountant acc(sigma, sampling_rate);
        acc.addSteps(steps);
        return acc.epsilon(delta);
    };
    double lo = 1e-2;
    double hi = 1.0;
    // Grow hi until the budget is met (epsilon decreases in sigma).
    while (eps_at(hi) > target_epsilon) {
        hi *= 2.0;
        if (hi > 1e4)
            DIVA_FATAL("cannot reach epsilon=", target_epsilon,
                       " within sigma <= 1e4");
    }
    for (int iter = 0; iter < 60; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (eps_at(mid) > target_epsilon)
            lo = mid;
        else
            hi = mid;
    }
    return hi;
}

int
RdpAccountant::optimalOrder(double delta) const
{
    DIVA_ASSERT(delta > 0.0 && delta < 1.0);
    double best = std::numeric_limits<double>::infinity();
    int best_alpha = 2;
    for (int alpha : defaultOrders()) {
        const double eps = double(steps_) * rdpSingleStep(alpha) +
                           std::log(1.0 / delta) / (double(alpha) - 1.0);
        if (eps < best) {
            best = eps;
            best_alpha = alpha;
        }
    }
    return best_alpha;
}

} // namespace diva
