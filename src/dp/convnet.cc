#include "dp/convnet.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "dp/ops.h"

namespace diva
{

void
ConvNetGrads::setZero()
{
    convW.setZero();
    convB.setZero();
    fcW.setZero();
    fcB.setZero();
}

void
ConvNetGrads::addScaled(const ConvNetGrads &other, double s)
{
    convW.addScaled(other.convW, s);
    convB.addScaled(other.convB, s);
    fcW.addScaled(other.fcW, s);
    fcB.addScaled(other.fcB, s);
}

void
ConvNetGrads::scale(double s)
{
    convW.scale(s);
    convB.scale(s);
    fcW.scale(s);
    fcB.scale(s);
}

double
ConvNetGrads::l2NormSq() const
{
    return convW.l2NormSq() + convB.l2NormSq() + fcW.l2NormSq() +
           fcB.l2NormSq();
}

double
ConvNetGrads::maxAbsDiff(const ConvNetGrads &other) const
{
    return std::max(
        std::max(convW.maxAbsDiff(other.convW),
                 convB.maxAbsDiff(other.convB)),
        std::max(fcW.maxAbsDiff(other.fcW), fcB.maxAbsDiff(other.fcB)));
}

ConvNet::ConvNet(const ConvGeometry &geometry, int num_classes, Rng &rng)
    : conv_(geometry, rng),
      fc_(int(geometry.outChannels * geometry.outPixels()), num_classes,
          rng)
{
}

Tensor
ConvNet::forward(const Tensor &x, Cache *cache) const
{
    const Tensor conv_out = conv_.forward(x);
    const Tensor relu_out = reluForward(conv_out);
    Tensor logits = fc_.forward(relu_out);
    if (cache) {
        cache->input = x;
        cache->convOut = conv_out;
        cache->reluOut = relu_out;
        cache->logits = logits;
    }
    return logits;
}

double
ConvNet::lossAndLogitGrad(const Tensor &x, const std::vector<int> &y,
                          Cache &cache, Tensor &dlogits) const
{
    const Tensor logits = forward(x, &cache);
    return softmaxCrossEntropy(logits, y, dlogits);
}

Tensor
ConvNet::convOutGradRow(const Cache &cache, const Tensor &dlogits,
                        std::int64_t i) const
{
    // g_fc_in = dlogits_i * fcW^T, masked by the conv ReLU.
    Tensor g(1, dlogits.cols());
    for (std::int64_t j = 0; j < dlogits.cols(); ++j)
        g.at(0, j) = dlogits.at(i, j);
    Tensor gx = fc_.backwardInput(g); // (1, Cout*P*Q)
    for (std::int64_t j = 0; j < gx.cols(); ++j) {
        if (cache.convOut.at(i, j) <= 0.0f)
            gx.at(0, j) = 0.0f;
    }
    return gx;
}

void
ConvNet::perExampleGrad(const Cache &cache, const Tensor &dlogits,
                        std::int64_t i, ConvNetGrads &grads) const
{
    grads = zeroGrads();
    // fc grads from the rank-1 outer product.
    Tensor g_logit(1, dlogits.cols());
    for (std::int64_t j = 0; j < dlogits.cols(); ++j)
        g_logit.at(0, j) = dlogits.at(i, j);
    Tensor relu_row(1, cache.reluOut.cols());
    for (std::int64_t j = 0; j < cache.reluOut.cols(); ++j)
        relu_row.at(0, j) = cache.reluOut.at(i, j);
    fc_.perExampleGrad(relu_row, g_logit, 0, grads.fcW, grads.fcB);

    // conv grads via the Figure-6 per-example GEMM. Extract example
    // i's input row so the row indices of x and grad_y agree.
    Tensor input_row(1, cache.input.cols());
    for (std::int64_t j = 0; j < cache.input.cols(); ++j)
        input_row.at(0, j) = cache.input.at(i, j);
    const Tensor conv_g = convOutGradRow(cache, dlogits, i);
    conv_.perExampleGrad(input_row, conv_g, 0, grads.convW,
                         grads.convB);
}

double
ConvNet::perExampleGradNormSq(const Cache &cache, const Tensor &dlogits,
                              std::int64_t i) const
{
    // fc part has the rank-1 shortcut; the conv part is materialized.
    Tensor g_logit(1, dlogits.cols());
    for (std::int64_t j = 0; j < dlogits.cols(); ++j)
        g_logit.at(0, j) = dlogits.at(i, j);
    Tensor relu_row(1, cache.reluOut.cols());
    for (std::int64_t j = 0; j < cache.reluOut.cols(); ++j)
        relu_row.at(0, j) = cache.reluOut.at(i, j);
    const double fc_sq =
        fc_.perExampleGradNormSq(relu_row, g_logit, 0);

    Tensor input_row(1, cache.input.cols());
    for (std::int64_t j = 0; j < cache.input.cols(); ++j)
        input_row.at(0, j) = cache.input.at(i, j);
    const Tensor conv_g = convOutGradRow(cache, dlogits, i);
    const double conv_sq =
        conv_.perExampleGradNormSq(input_row, conv_g, 0);
    return fc_sq + conv_sq;
}

void
ConvNet::backwardReweighted(const Cache &cache, const Tensor &dlogits,
                            const std::vector<double> &weights,
                            ConvNetGrads &grads) const
{
    DIVA_ASSERT(std::size_t(dlogits.rows()) == weights.size());
    grads = zeroGrads();

    // Reweight the logit gradients (Algorithm 1, line 35).
    Tensor g = dlogits;
    for (std::int64_t i = 0; i < g.rows(); ++i)
        for (std::int64_t j = 0; j < g.cols(); ++j)
            g.at(i, j) = float(double(g.at(i, j)) *
                               weights[std::size_t(i)]);

    fc_.perBatchGrad(cache.reluOut, g, grads.fcW, grads.fcB);

    Tensor conv_g = fc_.backwardInput(g);
    conv_g = reluBackward(cache.convOut, conv_g);
    conv_.perBatchGrad(cache.input, conv_g, grads.convW, grads.convB);
}

void
ConvNet::applyUpdate(const ConvNetGrads &grads, double lr)
{
    conv_.weight().addScaled(grads.convW, -lr);
    conv_.bias().addScaled(grads.convB, -lr);
    fc_.weight().addScaled(grads.fcW, -lr);
    fc_.bias().addScaled(grads.fcB, -lr);
}

ConvNetGrads
ConvNet::zeroGrads() const
{
    ConvNetGrads g;
    g.convW = Tensor(conv_.weight().rows(), conv_.weight().cols());
    g.convB = Tensor(1, conv_.bias().cols());
    g.fcW = Tensor(fc_.weight().rows(), fc_.weight().cols());
    g.fcB = Tensor(1, fc_.bias().cols());
    return g;
}

double
ConvNet::accuracy(const Tensor &x, const std::vector<int> &y) const
{
    const Tensor logits = forward(x);
    std::int64_t correct = 0;
    for (std::int64_t i = 0; i < logits.rows(); ++i) {
        std::int64_t best = 0;
        for (std::int64_t j = 1; j < logits.cols(); ++j)
            if (logits.at(i, j) > logits.at(i, best))
                best = j;
        if (best == y[std::size_t(i)])
            ++correct;
    }
    return double(correct) / double(logits.rows());
}

} // namespace diva
