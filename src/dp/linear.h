/**
 * @file
 * Fully connected layer with per-batch and per-example weight-gradient
 * derivation -- the numeric counterpart of Figure 6's GEMM algebra.
 */

#ifndef DIVA_DP_LINEAR_H
#define DIVA_DP_LINEAR_H

#include <cstdint>

#include "common/rng.h"
#include "dp/tensor.h"

namespace diva
{

/** y = x * W + b with explicit gradient derivations. */
class Linear
{
  public:
    /** Xavier-uniform-ish initialization via scaled Gaussians. */
    Linear(int in_features, int out_features, Rng &rng);

    int inFeatures() const { return inFeatures_; }
    int outFeatures() const { return outFeatures_; }

    /** (B, in) -> (B, out). */
    Tensor forward(const Tensor &x) const;

    /** grad_x(B, in) = grad_y(B, out) * W^T: the activation gradient. */
    Tensor backwardInput(const Tensor &grad_y) const;

    /**
     * Per-batch weight gradient: dW(in, out) = x^T * grad_y (the K
     * dimension reduces over the batch, Figure 6 middle column);
     * db(1, out) = column sums of grad_y.
     */
    void perBatchGrad(const Tensor &x, const Tensor &grad_y, Tensor &dw,
                      Tensor &db) const;

    /**
     * Per-example weight gradient for example `i`: the rank-1 outer
     * product dW_i = x_i^T * grad_y_i (Figure 6 right column, K=1).
     */
    void perExampleGrad(const Tensor &x, const Tensor &grad_y,
                        std::int64_t i, Tensor &dw, Tensor &db) const;

    /**
     * Squared L2 norm of example i's (dW_i, db_i) without materializing
     * them: ||x_i||^2 * ||g_i||^2 + ||g_i||^2, exploiting the rank-1
     * structure (this is the Lee & Kifer fast-clipping trick).
     */
    double perExampleGradNormSq(const Tensor &x, const Tensor &grad_y,
                                std::int64_t i) const;

    Tensor &weight() { return weight_; }
    const Tensor &weight() const { return weight_; }
    Tensor &bias() { return bias_; }
    const Tensor &bias() const { return bias_; }

    std::int64_t paramCount() const
    {
        return std::int64_t(inFeatures_) * outFeatures_ + outFeatures_;
    }

  private:
    int inFeatures_;
    int outFeatures_;
    Tensor weight_; ///< (in, out)
    Tensor bias_;   ///< (1, out)
};

} // namespace diva

#endif // DIVA_DP_LINEAR_H
