/**
 * @file
 * Synthetic dataset generation for the functional DP-SGD examples and
 * tests. The paper trains on CIFAR-10 and NLP corpora; DP-SGD's
 * numerics (per-example gradients, clipping, noising) are exercised
 * identically by a synthetic Gaussian-cluster classification task.
 */

#ifndef DIVA_DP_DATA_H
#define DIVA_DP_DATA_H

#include <vector>

#include "common/rng.h"
#include "dp/tensor.h"

namespace diva
{

/** A labeled classification dataset. */
struct Dataset
{
    Tensor x;           ///< (N x dim) features
    std::vector<int> y; ///< length-N class indices
    int numClasses = 0;

    std::int64_t size() const { return x.rows(); }
};

/**
 * N examples from `classes` Gaussian clusters with unit covariance and
 * class-mean separation `separation` in a random direction per class.
 */
Dataset makeSyntheticClassification(std::int64_t n, int dim, int classes,
                                    Rng &rng, double separation = 3.0);

/** Random mini-batch (with replacement) of the dataset. */
void sampleBatch(const Dataset &data, std::int64_t batch, Rng &rng,
                 Tensor &x_out, std::vector<int> &y_out);

} // namespace diva

#endif // DIVA_DP_DATA_H
