#include "dp/tensor.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace diva
{

Tensor::Tensor(std::int64_t rows, std::int64_t cols)
    : rows_(rows), cols_(cols),
      data_(std::size_t(rows) * std::size_t(cols), 0.0f)
{
    DIVA_ASSERT(rows >= 0 && cols >= 0);
}

Tensor
Tensor::zeros(std::int64_t rows, std::int64_t cols)
{
    return Tensor(rows, cols);
}

Tensor
Tensor::randn(std::int64_t rows, std::int64_t cols, Rng &rng,
              double stddev)
{
    Tensor t(rows, cols);
    rng.fillGaussian(t.data_, stddev);
    return t;
}

float &
Tensor::at(std::int64_t r, std::int64_t c)
{
    DIVA_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                "index (", r, ",", c, ") out of (", rows_, ",", cols_,
                ")");
    return data_[std::size_t(r * cols_ + c)];
}

float
Tensor::at(std::int64_t r, std::int64_t c) const
{
    DIVA_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[std::size_t(r * cols_ + c)];
}

void
Tensor::setZero()
{
    std::fill(data_.begin(), data_.end(), 0.0f);
}

double
Tensor::l2NormSq() const
{
    double acc = 0.0;
    for (float v : data_)
        acc += double(v) * double(v);
    return acc;
}

double
Tensor::l2Norm() const
{
    return std::sqrt(l2NormSq());
}

void
Tensor::scale(double s)
{
    for (auto &v : data_)
        v = float(v * s);
}

void
Tensor::add(const Tensor &other)
{
    DIVA_ASSERT(rows_ == other.rows_ && cols_ == other.cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
}

void
Tensor::addScaled(const Tensor &other, double s)
{
    DIVA_ASSERT(rows_ == other.rows_ && cols_ == other.cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] = float(data_[i] + s * other.data_[i]);
}

double
Tensor::maxAbsDiff(const Tensor &other) const
{
    DIVA_ASSERT(rows_ == other.rows_ && cols_ == other.cols_);
    double best = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i)
        best = std::max(best,
                        std::abs(double(data_[i]) - double(other.data_[i])));
    return best;
}

} // namespace diva
