/**
 * @file
 * A small dense float tensor for the functional DP-SGD library.
 *
 * This is deliberately minimal: row-major storage, 1-D/2-D accessors,
 * and the handful of BLAS-1 style helpers the trainers need. It exists
 * so the repository contains a *real*, numerically verifiable DP-SGD
 * implementation (per-example gradients, clipping, noising) alongside
 * the timing models.
 */

#ifndef DIVA_DP_TENSOR_H
#define DIVA_DP_TENSOR_H

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace diva
{

/** Dense row-major float matrix/vector. */
class Tensor
{
  public:
    Tensor() = default;

    /** Construct a zero-filled (rows x cols) tensor. */
    Tensor(std::int64_t rows, std::int64_t cols);

    /** Zero-filled tensor. */
    static Tensor zeros(std::int64_t rows, std::int64_t cols);

    /** I.i.d. N(0, stddev^2) entries. */
    static Tensor randn(std::int64_t rows, std::int64_t cols, Rng &rng,
                        double stddev);

    std::int64_t rows() const { return rows_; }
    std::int64_t cols() const { return cols_; }
    std::int64_t size() const { return rows_ * cols_; }

    float &at(std::int64_t r, std::int64_t c);
    float at(std::int64_t r, std::int64_t c) const;

    float &operator[](std::int64_t i) { return data_[std::size_t(i)]; }
    float operator[](std::int64_t i) const
    {
        return data_[std::size_t(i)];
    }

    std::vector<float> &data() { return data_; }
    const std::vector<float> &data() const { return data_; }

    /** Set all entries to zero. */
    void setZero();

    /** Sum of squared entries (double accumulation). */
    double l2NormSq() const;

    /** Euclidean norm. */
    double l2Norm() const;

    /** In-place scale by `s`. */
    void scale(double s);

    /** this += other (shapes must match). */
    void add(const Tensor &other);

    /** this += s * other. */
    void addScaled(const Tensor &other, double s);

    /** Max absolute difference vs another tensor (for tests). */
    double maxAbsDiff(const Tensor &other) const;

  private:
    std::int64_t rows_ = 0;
    std::int64_t cols_ = 0;
    std::vector<float> data_;
};

} // namespace diva

#endif // DIVA_DP_TENSOR_H
