#include "dp/data.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace diva
{

Dataset
makeSyntheticClassification(std::int64_t n, int dim, int classes,
                            Rng &rng, double separation)
{
    DIVA_ASSERT(n > 0 && dim > 0 && classes > 1);
    Dataset data;
    data.numClasses = classes;
    data.x = Tensor(n, dim);
    data.y.resize(std::size_t(n));

    // Random unit-ish mean per class, scaled by the separation.
    Tensor means(classes, dim);
    for (int c = 0; c < classes; ++c) {
        double norm_sq = 0.0;
        for (int d = 0; d < dim; ++d) {
            const double v = rng.gaussian();
            means.at(c, d) = float(v);
            norm_sq += v * v;
        }
        const double inv = separation / std::max(1e-9, std::sqrt(norm_sq));
        for (int d = 0; d < dim; ++d)
            means.at(c, d) = float(means.at(c, d) * inv);
    }

    for (std::int64_t i = 0; i < n; ++i) {
        const int c = int(rng.uniformInt(std::uint64_t(classes)));
        data.y[std::size_t(i)] = c;
        for (int d = 0; d < dim; ++d)
            data.x.at(i, d) = float(means.at(c, d) + rng.gaussian());
    }
    return data;
}

void
sampleBatch(const Dataset &data, std::int64_t batch, Rng &rng,
            Tensor &x_out, std::vector<int> &y_out)
{
    DIVA_ASSERT(batch > 0 && data.size() > 0);
    x_out = Tensor(batch, data.x.cols());
    y_out.resize(std::size_t(batch));
    for (std::int64_t i = 0; i < batch; ++i) {
        const std::int64_t idx =
            std::int64_t(rng.uniformInt(std::uint64_t(data.size())));
        for (std::int64_t d = 0; d < data.x.cols(); ++d)
            x_out.at(i, d) = data.x.at(idx, d);
        y_out[std::size_t(i)] = data.y[std::size_t(idx)];
    }
}

} // namespace diva
