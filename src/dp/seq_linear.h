/**
 * @file
 * Time-series linear layer ("MLP layer with time-series input" in
 * Figure 6): one weight matrix applied at every timestep, as in BERT
 * projections and LSTM gates. Its per-example weight gradient sums the
 * per-timestep outer products,
 *
 *   dW_i = sum_t x_{i,t}^T g_{i,t}  --  the (I, L, O) GEMM,
 *
 * and its per-example norm admits the Goodfellow/ghost-norm identity
 *
 *   ||dW_i||_F^2 = sum_{t,s} (x_t . x_s)(g_t . g_s)
 *               = <X X^T, G G^T>_F,
 *
 * an O(L^2 (I+O)) computation that avoids materializing the I x O
 * gradient -- the sequence analogue of DP-SGD(R)'s first pass.
 */

#ifndef DIVA_DP_SEQ_LINEAR_H
#define DIVA_DP_SEQ_LINEAR_H

#include <cstdint>

#include "common/rng.h"
#include "dp/tensor.h"

namespace diva
{

/** y_{b,t} = x_{b,t} * W + bias for every timestep t. */
class SeqLinear
{
  public:
    SeqLinear(int in_features, int out_features, int seq_len, Rng &rng);

    int inFeatures() const { return inFeatures_; }
    int outFeatures() const { return outFeatures_; }
    int seqLen() const { return seqLen_; }

    /** (B, L*I) -> (B, L*O); rows are timestep-major flattenings. */
    Tensor forward(const Tensor &x) const;

    /** grad_x (B, L*I) = grad_y (B, L*O) through W^T per timestep. */
    Tensor backwardInput(const Tensor &grad_y) const;

    /** Per-batch weight gradient: the (I, B*L, O) GEMM of Figure 6. */
    void perBatchGrad(const Tensor &x, const Tensor &grad_y, Tensor &dw,
                      Tensor &db) const;

    /** Per-example weight gradient: the (I, L, O) GEMM of Figure 6. */
    void perExampleGrad(const Tensor &x, const Tensor &grad_y,
                        std::int64_t i, Tensor &dw, Tensor &db) const;

    /**
     * Squared per-example gradient norm via the Gram-matrix identity,
     * without materializing dW_i.
     */
    double perExampleGradNormSq(const Tensor &x, const Tensor &grad_y,
                                std::int64_t i) const;

    Tensor &weight() { return weight_; }
    const Tensor &weight() const { return weight_; }
    Tensor &bias() { return bias_; }
    const Tensor &bias() const { return bias_; }

  private:
    /** Extract example i's timestep-t slice of a (B, L*F) tensor. */
    static void sliceStep(const Tensor &t, std::int64_t i, int step,
                          int features, Tensor &out);

    int inFeatures_;
    int outFeatures_;
    int seqLen_;
    Tensor weight_; ///< (I, O)
    Tensor bias_;   ///< (1, O)
};

} // namespace diva

#endif // DIVA_DP_SEQ_LINEAR_H
