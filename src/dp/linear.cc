#include "dp/linear.h"

#include <cmath>

#include "common/logging.h"
#include "dp/ops.h"

namespace diva
{

Linear::Linear(int in_features, int out_features, Rng &rng)
    : inFeatures_(in_features), outFeatures_(out_features),
      weight_(Tensor::randn(in_features, out_features, rng,
                            std::sqrt(2.0 / double(in_features)))),
      bias_(Tensor::zeros(1, out_features))
{
    DIVA_ASSERT(in_features > 0 && out_features > 0);
}

Tensor
Linear::forward(const Tensor &x) const
{
    DIVA_ASSERT(x.cols() == inFeatures_);
    Tensor y = matmul(x, weight_);
    for (std::int64_t i = 0; i < y.rows(); ++i)
        for (std::int64_t j = 0; j < y.cols(); ++j)
            y.at(i, j) += bias_.at(0, j);
    return y;
}

Tensor
Linear::backwardInput(const Tensor &grad_y) const
{
    DIVA_ASSERT(grad_y.cols() == outFeatures_);
    return matmulTransB(grad_y, weight_);
}

void
Linear::perBatchGrad(const Tensor &x, const Tensor &grad_y, Tensor &dw,
                     Tensor &db) const
{
    DIVA_ASSERT(x.rows() == grad_y.rows());
    dw = matmulTransA(x, grad_y);
    db = Tensor(1, outFeatures_);
    for (std::int64_t i = 0; i < grad_y.rows(); ++i)
        for (std::int64_t j = 0; j < grad_y.cols(); ++j)
            db.at(0, j) += grad_y.at(i, j);
}

void
Linear::perExampleGrad(const Tensor &x, const Tensor &grad_y,
                       std::int64_t i, Tensor &dw, Tensor &db) const
{
    DIVA_ASSERT(i >= 0 && i < x.rows());
    dw = Tensor(inFeatures_, outFeatures_);
    db = Tensor(1, outFeatures_);
    for (std::int64_t r = 0; r < inFeatures_; ++r) {
        const float xi = x.at(i, r);
        if (xi == 0.0f)
            continue;
        for (std::int64_t c = 0; c < outFeatures_; ++c)
            dw.at(r, c) = xi * grad_y.at(i, c);
    }
    for (std::int64_t c = 0; c < outFeatures_; ++c)
        db.at(0, c) = grad_y.at(i, c);
}

double
Linear::perExampleGradNormSq(const Tensor &x, const Tensor &grad_y,
                             std::int64_t i) const
{
    DIVA_ASSERT(i >= 0 && i < x.rows());
    double x_sq = 0.0;
    for (std::int64_t r = 0; r < inFeatures_; ++r)
        x_sq += double(x.at(i, r)) * double(x.at(i, r));
    double g_sq = 0.0;
    for (std::int64_t c = 0; c < outFeatures_; ++c)
        g_sq += double(grad_y.at(i, c)) * double(grad_y.at(i, c));
    // ||x g^T||_F^2 = ||x||^2 ||g||^2; the bias contributes ||g||^2.
    return x_sq * g_sq + g_sq;
}

} // namespace diva
