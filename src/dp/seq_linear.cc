#include "dp/seq_linear.h"

#include <cmath>

#include "common/logging.h"
#include "dp/ops.h"

namespace diva
{

SeqLinear::SeqLinear(int in_features, int out_features, int seq_len,
                     Rng &rng)
    : inFeatures_(in_features), outFeatures_(out_features),
      seqLen_(seq_len),
      weight_(Tensor::randn(in_features, out_features, rng,
                            std::sqrt(2.0 / double(in_features)))),
      bias_(Tensor::zeros(1, out_features))
{
    DIVA_ASSERT(in_features > 0 && out_features > 0 && seq_len > 0);
}

void
SeqLinear::sliceStep(const Tensor &t, std::int64_t i, int step,
                     int features, Tensor &out)
{
    out = Tensor(1, features);
    for (int f = 0; f < features; ++f)
        out.at(0, f) = t.at(i, std::int64_t(step) * features + f);
}

Tensor
SeqLinear::forward(const Tensor &x) const
{
    DIVA_ASSERT(x.cols() == std::int64_t(seqLen_) * inFeatures_,
                "input must be (B, L*I)");
    Tensor y(x.rows(), std::int64_t(seqLen_) * outFeatures_);
    for (std::int64_t i = 0; i < x.rows(); ++i) {
        for (int t = 0; t < seqLen_; ++t) {
            for (int o = 0; o < outFeatures_; ++o) {
                double acc = bias_.at(0, o);
                for (int f = 0; f < inFeatures_; ++f) {
                    acc += double(x.at(i, std::int64_t(t) * inFeatures_ +
                                          f)) *
                           double(weight_.at(f, o));
                }
                y.at(i, std::int64_t(t) * outFeatures_ + o) = float(acc);
            }
        }
    }
    return y;
}

Tensor
SeqLinear::backwardInput(const Tensor &grad_y) const
{
    DIVA_ASSERT(grad_y.cols() == std::int64_t(seqLen_) * outFeatures_);
    Tensor gx(grad_y.rows(), std::int64_t(seqLen_) * inFeatures_);
    for (std::int64_t i = 0; i < grad_y.rows(); ++i) {
        for (int t = 0; t < seqLen_; ++t) {
            for (int f = 0; f < inFeatures_; ++f) {
                double acc = 0.0;
                for (int o = 0; o < outFeatures_; ++o) {
                    acc += double(grad_y.at(
                               i, std::int64_t(t) * outFeatures_ + o)) *
                           double(weight_.at(f, o));
                }
                gx.at(i, std::int64_t(t) * inFeatures_ + f) = float(acc);
            }
        }
    }
    return gx;
}

void
SeqLinear::perBatchGrad(const Tensor &x, const Tensor &grad_y,
                        Tensor &dw, Tensor &db) const
{
    DIVA_ASSERT(x.rows() == grad_y.rows());
    dw = Tensor(inFeatures_, outFeatures_);
    db = Tensor(1, outFeatures_);
    Tensor dw_i, db_i;
    for (std::int64_t i = 0; i < x.rows(); ++i) {
        perExampleGrad(x, grad_y, i, dw_i, db_i);
        dw.add(dw_i);
        db.add(db_i);
    }
}

void
SeqLinear::perExampleGrad(const Tensor &x, const Tensor &grad_y,
                          std::int64_t i, Tensor &dw, Tensor &db) const
{
    dw = Tensor(inFeatures_, outFeatures_);
    db = Tensor(1, outFeatures_);
    // dW_i = sum_t x_t^T g_t: the (I, L, O) GEMM with the time
    // dimension reduced inside the GEMM (Figure 6, right column).
    for (int t = 0; t < seqLen_; ++t) {
        for (int f = 0; f < inFeatures_; ++f) {
            const float xf =
                x.at(i, std::int64_t(t) * inFeatures_ + f);
            if (xf == 0.0f)
                continue;
            for (int o = 0; o < outFeatures_; ++o) {
                dw.at(f, o) +=
                    xf * grad_y.at(i,
                                   std::int64_t(t) * outFeatures_ + o);
            }
        }
        for (int o = 0; o < outFeatures_; ++o)
            db.at(0, o) +=
                grad_y.at(i, std::int64_t(t) * outFeatures_ + o);
    }
}

double
SeqLinear::perExampleGradNormSq(const Tensor &x, const Tensor &grad_y,
                                std::int64_t i) const
{
    // Ghost-norm identity: ||sum_t x_t g_t^T||_F^2
    //   = sum_{t,s} (x_t . x_s)(g_t . g_s).
    // The bias gradient is sum_t g_t, whose norm uses the same g-Gram.
    Tensor xt, xs, gt, gs;
    double weight_sq = 0.0;
    double bias_sq = 0.0;
    for (int t = 0; t < seqLen_; ++t) {
        sliceStep(x, i, t, inFeatures_, xt);
        sliceStep(grad_y, i, t, outFeatures_, gt);
        for (int s = 0; s < seqLen_; ++s) {
            sliceStep(x, i, s, inFeatures_, xs);
            sliceStep(grad_y, i, s, outFeatures_, gs);
            double x_dot = 0.0;
            for (int f = 0; f < inFeatures_; ++f)
                x_dot += double(xt.at(0, f)) * double(xs.at(0, f));
            double g_dot = 0.0;
            for (int o = 0; o < outFeatures_; ++o)
                g_dot += double(gt.at(0, o)) * double(gs.at(0, o));
            weight_sq += x_dot * g_dot;
            bias_sq += g_dot;
        }
    }
    return weight_sq + bias_sq;
}

} // namespace diva
