/**
 * @file
 * Model-generic DP-SGD trainers (Algorithm 1), templated over the
 * model type. A model must provide:
 *
 *   - nested `Cache` type and
 *     `lossAndLogitGrad(x, y, cache, dlogits)`;
 *   - `Grads zeroGrads()` where Grads supports `addScaled`, `scale`,
 *     `l2NormSq` and `forEachTensor(fn)`;
 *   - `perExampleGrad(cache, dlogits, i, grads)`;
 *   - `perExampleGradNormSq(cache, dlogits, i)`;
 *   - `backwardReweighted(cache, dlogits, weights, grads)`;
 *   - `applyUpdate(grads, lr)`.
 *
 * Both Mlp (dp/mlp.h) and ConvNet (dp/convnet.h) satisfy this concept;
 * the concrete DpSgdTrainer/DpSgdRTrainer classes in dp/dp_sgd.h are
 * the Mlp instantiations kept for convenience.
 */

#ifndef DIVA_DP_TRAINER_H
#define DIVA_DP_TRAINER_H

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "dp/dp_sgd.h"
#include "dp/tensor.h"

namespace diva
{

/** Shared mechanics of the generic trainers. */
template <typename Model>
class DpTrainerBaseT
{
  public:
    using Grads = decltype(std::declval<Model>().zeroGrads());

    DpTrainerBaseT(Model &model, const DpSgdConfig &cfg)
        : model_(model), cfg_(cfg), noiseRng_(cfg.noiseSeed)
    {
        DIVA_ASSERT(cfg.clipNorm > 0.0, "clip norm must be positive");
        DIVA_ASSERT(cfg.noiseMultiplier >= 0.0);
    }

    virtual ~DpTrainerBaseT() = default;

    virtual DpStepResult noisyGradient(const Tensor &x,
                                       const std::vector<int> &y,
                                       Grads &out) = 0;

    /** One full step: noisy gradient + SGD update. */
    DpStepResult
    step(const Tensor &x, const std::vector<int> &y)
    {
        Grads grads = model_.zeroGrads();
        DpStepResult result = noisyGradient(x, y, grads);
        model_.applyUpdate(grads, cfg_.learningRate);
        return result;
    }

    Model &model() { return model_; }
    const DpSgdConfig &config() const { return cfg_; }

  protected:
    double
    clipFactor(double norm) const
    {
        return 1.0 / std::max(1.0, norm / cfg_.clipNorm);
    }

    void
    noiseAndAverage(Grads &grads, std::int64_t batch)
    {
        const double stddev = cfg_.noiseMultiplier * cfg_.clipNorm;
        if (stddev > 0.0) {
            grads.forEachTensor([&](Tensor &t) {
                for (auto &v : t.data())
                    v = float(v + noiseRng_.gaussian(0.0, stddev));
            });
        }
        grads.scale(1.0 / double(batch));
    }

    Model &model_;
    DpSgdConfig cfg_;
    Rng noiseRng_;
};

/** Vanilla DP-SGD for any conforming model. */
template <typename Model>
class DpSgdTrainerT : public DpTrainerBaseT<Model>
{
  public:
    using Base = DpTrainerBaseT<Model>;
    using Grads = typename Base::Grads;
    using Base::Base;

    DpStepResult
    noisyGradient(const Tensor &x, const std::vector<int> &y,
                  Grads &out) override
    {
        DpStepResult result;
        typename Model::Cache cache;
        Tensor dlogits;
        result.meanLoss =
            this->model_.lossAndLogitGrad(x, y, cache, dlogits);

        const std::int64_t batch = x.rows();
        out = this->model_.zeroGrads();
        Grads example = this->model_.zeroGrads();
        std::int64_t clipped = 0;
        for (std::int64_t i = 0; i < batch; ++i) {
            this->model_.perExampleGrad(cache, dlogits, i, example);
            const double norm = std::sqrt(example.l2NormSq());
            result.perExampleNorms.push_back(norm);
            const double factor = this->clipFactor(norm);
            if (factor < 1.0)
                ++clipped;
            out.addScaled(example, factor);
        }
        result.clippedFraction = double(clipped) / double(batch);
        this->noiseAndAverage(out, batch);
        return result;
    }
};

/** Reweighted DP-SGD(R) for any conforming model. */
template <typename Model>
class DpSgdRTrainerT : public DpTrainerBaseT<Model>
{
  public:
    using Base = DpTrainerBaseT<Model>;
    using Grads = typename Base::Grads;
    using Base::Base;

    DpStepResult
    noisyGradient(const Tensor &x, const std::vector<int> &y,
                  Grads &out) override
    {
        DpStepResult result;
        typename Model::Cache cache;
        Tensor dlogits;
        result.meanLoss =
            this->model_.lossAndLogitGrad(x, y, cache, dlogits);

        const std::int64_t batch = x.rows();
        std::vector<double> weights(std::size_t(batch), 0.0);
        std::int64_t clipped = 0;
        for (std::int64_t i = 0; i < batch; ++i) {
            const double norm = std::sqrt(
                this->model_.perExampleGradNormSq(cache, dlogits, i));
            result.perExampleNorms.push_back(norm);
            weights[std::size_t(i)] = this->clipFactor(norm);
            if (weights[std::size_t(i)] < 1.0)
                ++clipped;
        }
        result.clippedFraction = double(clipped) / double(batch);

        this->model_.backwardReweighted(cache, dlogits, weights, out);
        this->noiseAndAverage(out, batch);
        return result;
    }
};

} // namespace diva

#endif // DIVA_DP_TRAINER_H
