#include "dp/im2col.h"

#include "common/logging.h"

namespace diva
{

namespace
{

void
checkGeometry(const ConvGeometry &g)
{
    DIVA_ASSERT(g.inChannels > 0 && g.outChannels > 0);
    DIVA_ASSERT(g.kernelH > 0 && g.kernelW > 0 && g.stride > 0);
    DIVA_ASSERT(g.padding >= 0 && g.inH > 0 && g.inW > 0);
    DIVA_ASSERT(g.outH() > 0 && g.outW() > 0,
                "convolution collapses spatially");
}

} // namespace

Tensor
im2col(const ConvGeometry &g, const Tensor &input, std::int64_t example)
{
    checkGeometry(g);
    const std::int64_t chw =
        std::int64_t(g.inChannels) * g.inH * g.inW;
    DIVA_ASSERT(input.cols() == chw, "input row length mismatch");
    DIVA_ASSERT(example >= 0 && example < input.rows());

    Tensor patches(g.outPixels(), g.patchSize());
    const int p_out = g.outH();
    const int q_out = g.outW();
    for (int py = 0; py < p_out; ++py) {
        for (int px = 0; px < q_out; ++px) {
            const std::int64_t pixel = std::int64_t(py) * q_out + px;
            std::int64_t col = 0;
            for (int c = 0; c < g.inChannels; ++c) {
                for (int ky = 0; ky < g.kernelH; ++ky) {
                    for (int kx = 0; kx < g.kernelW; ++kx, ++col) {
                        const int iy = py * g.stride + ky - g.padding;
                        const int ix = px * g.stride + kx - g.padding;
                        if (iy < 0 || iy >= g.inH || ix < 0 ||
                            ix >= g.inW) {
                            continue; // zero padding
                        }
                        const std::int64_t idx =
                            (std::int64_t(c) * g.inH + iy) * g.inW + ix;
                        patches.at(pixel, col) = input.at(example, idx);
                    }
                }
            }
        }
    }
    return patches;
}

Tensor
col2im(const ConvGeometry &g, const Tensor &patches)
{
    checkGeometry(g);
    DIVA_ASSERT(patches.rows() == g.outPixels());
    DIVA_ASSERT(patches.cols() == g.patchSize());

    Tensor grad(1, std::int64_t(g.inChannels) * g.inH * g.inW);
    const int p_out = g.outH();
    const int q_out = g.outW();
    for (int py = 0; py < p_out; ++py) {
        for (int px = 0; px < q_out; ++px) {
            const std::int64_t pixel = std::int64_t(py) * q_out + px;
            std::int64_t col = 0;
            for (int c = 0; c < g.inChannels; ++c) {
                for (int ky = 0; ky < g.kernelH; ++ky) {
                    for (int kx = 0; kx < g.kernelW; ++kx, ++col) {
                        const int iy = py * g.stride + ky - g.padding;
                        const int ix = px * g.stride + kx - g.padding;
                        if (iy < 0 || iy >= g.inH || ix < 0 ||
                            ix >= g.inW) {
                            continue;
                        }
                        const std::int64_t idx =
                            (std::int64_t(c) * g.inH + iy) * g.inW + ix;
                        grad.at(0, idx) += patches.at(pixel, col);
                    }
                }
            }
        }
    }
    return grad;
}

} // namespace diva
