#include "dp/conv2d.h"

#include <cmath>

#include "common/logging.h"
#include "dp/ops.h"

namespace diva
{

Conv2d::Conv2d(const ConvGeometry &geometry, Rng &rng)
    : geom_(geometry),
      weight_(Tensor::randn(geometry.patchSize(), geometry.outChannels,
                            rng,
                            std::sqrt(2.0 /
                                      double(geometry.patchSize())))),
      bias_(Tensor::zeros(1, geometry.outChannels))
{
}

Tensor
Conv2d::gradYMatrix(const Tensor &grad_y, std::int64_t i) const
{
    const std::int64_t pq = geom_.outPixels();
    const std::int64_t cout = geom_.outChannels;
    DIVA_ASSERT(grad_y.cols() == cout * pq, "grad_y layout mismatch");
    Tensor g(pq, cout);
    for (std::int64_t c = 0; c < cout; ++c)
        for (std::int64_t p = 0; p < pq; ++p)
            g.at(p, c) = grad_y.at(i, c * pq + p);
    return g;
}

Tensor
Conv2d::forward(const Tensor &x) const
{
    const std::int64_t pq = geom_.outPixels();
    const std::int64_t cout = geom_.outChannels;
    Tensor y(x.rows(), cout * pq);
    for (std::int64_t i = 0; i < x.rows(); ++i) {
        const Tensor patches = im2col(geom_, x, i);
        const Tensor out = matmul(patches, weight_); // (PQ, Cout)
        // Store in CHW order to match the input convention.
        for (std::int64_t c = 0; c < cout; ++c)
            for (std::int64_t p = 0; p < pq; ++p)
                y.at(i, c * pq + p) = out.at(p, c) + bias_.at(0, c);
    }
    return y;
}

Tensor
Conv2d::backwardInput(const Tensor &grad_y) const
{
    const std::int64_t chw =
        std::int64_t(geom_.inChannels) * geom_.inH * geom_.inW;
    Tensor grad_x(grad_y.rows(), chw);
    for (std::int64_t i = 0; i < grad_y.rows(); ++i) {
        const Tensor g = gradYMatrix(grad_y, i);
        // Patch-domain gradient: (PQ, CRS) = G * W^T.
        const Tensor patch_grad = matmulTransB(g, weight_);
        const Tensor row = col2im(geom_, patch_grad);
        for (std::int64_t j = 0; j < chw; ++j)
            grad_x.at(i, j) = row.at(0, j);
    }
    return grad_x;
}

void
Conv2d::perBatchGrad(const Tensor &x, const Tensor &grad_y, Tensor &dw,
                     Tensor &db) const
{
    DIVA_ASSERT(x.rows() == grad_y.rows());
    dw = Tensor(geom_.patchSize(), geom_.outChannels);
    db = Tensor(1, geom_.outChannels);
    Tensor dw_i, db_i;
    for (std::int64_t i = 0; i < x.rows(); ++i) {
        perExampleGrad(x, grad_y, i, dw_i, db_i);
        dw.add(dw_i);
        db.add(db_i);
    }
}

void
Conv2d::perExampleGrad(const Tensor &x, const Tensor &grad_y,
                       std::int64_t i, Tensor &dw, Tensor &db) const
{
    const Tensor patches = im2col(geom_, x, i); // (PQ, CRS)
    const Tensor g = gradYMatrix(grad_y, i);    // (PQ, Cout)
    // Figure 6, per-example conv wgrad: (CRS, PQ, Cout) GEMM.
    dw = matmulTransA(patches, g);
    db = Tensor(1, geom_.outChannels);
    for (std::int64_t c = 0; c < geom_.outChannels; ++c) {
        double acc = 0.0;
        for (std::int64_t p = 0; p < geom_.outPixels(); ++p)
            acc += g.at(p, c);
        db.at(0, c) = float(acc);
    }
}

double
Conv2d::perExampleGradNormSq(const Tensor &x, const Tensor &grad_y,
                             std::int64_t i) const
{
    // Unlike linear layers, the conv per-example gradient has rank up
    // to P*Q, so there is no rank-1 norm shortcut; materialize it
    // (this is exactly why DP-SGD's per-example conv gradients are
    // expensive and worth accelerating).
    Tensor dw, db;
    perExampleGrad(x, grad_y, i, dw, db);
    return dw.l2NormSq() + db.l2NormSq();
}

} // namespace diva
