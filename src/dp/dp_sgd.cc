#include "dp/dp_sgd.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace diva
{

DpTrainerBase::DpTrainerBase(Mlp &model, const DpSgdConfig &cfg)
    : model_(model), cfg_(cfg), noiseRng_(cfg.noiseSeed)
{
    DIVA_ASSERT(cfg.clipNorm > 0.0, "clip norm must be positive");
    DIVA_ASSERT(cfg.noiseMultiplier >= 0.0);
}

double
DpTrainerBase::clipFactor(double norm) const
{
    return 1.0 / std::max(1.0, norm / cfg_.clipNorm);
}

void
DpTrainerBase::noiseAndAverage(MlpGrads &grads, std::int64_t batch)
{
    const double stddev = cfg_.noiseMultiplier * cfg_.clipNorm;
    if (stddev > 0.0) {
        for (auto &t : grads.dw)
            for (auto &v : t.data())
                v = float(v + noiseRng_.gaussian(0.0, stddev));
        for (auto &t : grads.db)
            for (auto &v : t.data())
                v = float(v + noiseRng_.gaussian(0.0, stddev));
    }
    grads.scale(1.0 / double(batch));
}

DpStepResult
DpTrainerBase::step(const Tensor &x, const std::vector<int> &y)
{
    MlpGrads grads = model_.zeroGrads();
    DpStepResult result = noisyGradient(x, y, grads);
    model_.applyUpdate(grads, cfg_.learningRate);
    return result;
}

DpStepResult
DpSgdTrainer::noisyGradient(const Tensor &x, const std::vector<int> &y,
                            MlpGrads &out)
{
    DpStepResult result;
    Mlp::Cache cache;
    Tensor dlogits;
    result.meanLoss = model_.lossAndLogitGrad(x, y, cache, dlogits);

    const std::int64_t batch = x.rows();
    out = model_.zeroGrads();
    MlpGrads example = model_.zeroGrads();
    std::int64_t clipped = 0;
    for (std::int64_t i = 0; i < batch; ++i) {
        // Algorithm 1, lines 19-23: materialize g_i, derive its norm,
        // scale by min(1, C/n_i), and accumulate.
        model_.perExampleGrad(cache, dlogits, i, example);
        const double norm = std::sqrt(example.l2NormSq());
        result.perExampleNorms.push_back(norm);
        const double factor = clipFactor(norm);
        if (factor < 1.0)
            ++clipped;
        out.addScaled(example, factor);
    }
    result.clippedFraction = double(clipped) / double(batch);
    noiseAndAverage(out, batch);
    return result;
}

DpStepResult
DpSgdRTrainer::noisyGradient(const Tensor &x, const std::vector<int> &y,
                             MlpGrads &out)
{
    DpStepResult result;
    Mlp::Cache cache;
    Tensor dlogits;
    result.meanLoss = model_.lossAndLogitGrad(x, y, cache, dlogits);

    const std::int64_t batch = x.rows();

    // First pass (Algorithm 1, lines 30-33): per-example norms only;
    // no per-example gradient tensor is ever materialized.
    std::vector<double> weights(std::size_t(batch), 0.0);
    std::int64_t clipped = 0;
    for (std::int64_t i = 0; i < batch; ++i) {
        const double norm =
            std::sqrt(model_.perExampleGradNormSq(cache, dlogits, i));
        result.perExampleNorms.push_back(norm);
        weights[std::size_t(i)] = clipFactor(norm);
        if (weights[std::size_t(i)] < 1.0)
            ++clipped;
    }
    result.clippedFraction = double(clipped) / double(batch);

    // Second pass (lines 35-40): per-batch backprop of the reweighted
    // loss; clipping and reduction are fused into the GEMMs.
    model_.backwardReweighted(cache, dlogits, weights, out);
    noiseAndAverage(out, batch);
    return result;
}

SgdTrainer::SgdTrainer(Mlp &model, double learning_rate)
    : model_(model), learningRate_(learning_rate)
{
}

double
SgdTrainer::step(const Tensor &x, const std::vector<int> &y)
{
    Mlp::Cache cache;
    Tensor dlogits;
    const double loss = model_.lossAndLogitGrad(x, y, cache, dlogits);
    MlpGrads grads = model_.zeroGrads();
    model_.backwardPerBatch(cache, dlogits, grads);
    grads.scale(1.0 / double(x.rows()));
    model_.applyUpdate(grads, learningRate_);
    return loss;
}

} // namespace diva
