/**
 * @file
 * Functional DP-SGD and DP-SGD(R) trainers (Algorithm 1 of the paper).
 *
 * DpSgdTrainer materializes every per-example gradient, clips each to
 * the max norm C, aggregates, and adds N(0, sigma^2 C^2 I) noise.
 * DpSgdRTrainer derives per-example norms *without* materializing the
 * gradients (first pass), then runs a reweighted second backward pass
 * whose per-batch gradient equals the sum of clipped per-example
 * gradients (Lee & Kifer). Given the same RNG seed, the two trainers
 * produce identical noisy updates -- a key property test.
 */

#ifndef DIVA_DP_DP_SGD_H
#define DIVA_DP_DP_SGD_H

#include <vector>

#include "common/rng.h"
#include "dp/mlp.h"
#include "dp/tensor.h"

namespace diva
{

/** Hyper-parameters shared by both trainers. */
struct DpSgdConfig
{
    double clipNorm = 1.0;        ///< C, max per-example gradient norm
    double noiseMultiplier = 1.0; ///< sigma
    double learningRate = 0.5;
    std::uint64_t noiseSeed = 0x90155eed;
};

/** Result of deriving one noisy mini-batch gradient. */
struct DpStepResult
{
    double meanLoss = 0.0;
    std::vector<double> perExampleNorms;
    /** Fraction of examples whose gradient hit the clip bound. */
    double clippedFraction = 0.0;
};

/** Common machinery for the two DP trainers. */
class DpTrainerBase
{
  public:
    DpTrainerBase(Mlp &model, const DpSgdConfig &cfg);
    virtual ~DpTrainerBase() = default;

    /**
     * Derive the differentially private gradient for (x, y): the
     * aggregate of clipped per-example gradients, noised and averaged
     * by the mini-batch size (Algorithm 1, line 24 / 41).
     */
    virtual DpStepResult noisyGradient(const Tensor &x,
                                       const std::vector<int> &y,
                                       MlpGrads &out) = 0;

    /** One full training step: noisyGradient + SGD update. */
    DpStepResult step(const Tensor &x, const std::vector<int> &y);

    Mlp &model() { return model_; }
    const DpSgdConfig &config() const { return cfg_; }

  protected:
    /** Add N(0, sigma^2 C^2 I) then scale by 1/B. */
    void noiseAndAverage(MlpGrads &grads, std::int64_t batch);

    /** Clip factor r_i = 1 / max(1, n_i / C). */
    double clipFactor(double norm) const;

    Mlp &model_;
    DpSgdConfig cfg_;
    Rng noiseRng_;
};

/** Vanilla DP-SGD (Algorithm 1, DERIVE_DP_GRADIENTS). */
class DpSgdTrainer : public DpTrainerBase
{
  public:
    using DpTrainerBase::DpTrainerBase;

    DpStepResult noisyGradient(const Tensor &x, const std::vector<int> &y,
                               MlpGrads &out) override;
};

/** Reweighted DP-SGD (Algorithm 1, DERIVE_REWEIGHTED_DP_GRADIENTS). */
class DpSgdRTrainer : public DpTrainerBase
{
  public:
    using DpTrainerBase::DpTrainerBase;

    DpStepResult noisyGradient(const Tensor &x, const std::vector<int> &y,
                               MlpGrads &out) override;
};

/** Non-private SGD baseline with the same interfaces. */
class SgdTrainer
{
  public:
    SgdTrainer(Mlp &model, double learning_rate);

    /** One training step; returns the mean loss. */
    double step(const Tensor &x, const std::vector<int> &y);

  private:
    Mlp &model_;
    double learningRate_;
};

} // namespace diva

#endif // DIVA_DP_DP_SGD_H
