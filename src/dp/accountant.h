/**
 * @file
 * Renyi differential privacy (RDP) accountant for the subsampled
 * Gaussian mechanism, converting (noise multiplier sigma, sampling rate
 * q, step count T) into an (epsilon, delta) guarantee.
 *
 * This is Algorithm 1's "total privacy cost" output. The bound follows
 * Mironov, Talwar & Zhang ("Renyi Differential Privacy of the Sampled
 * Gaussian Mechanism", 2019) for integer Renyi orders:
 *
 *   RDP(alpha) = 1/(alpha-1) * log( sum_{k=0}^{alpha} C(alpha,k)
 *                (1-q)^(alpha-k) q^k exp(k(k-1)/(2 sigma^2)) )
 *
 * composed linearly over T steps and converted to (epsilon, delta) via
 *   epsilon = min_alpha [ T*RDP(alpha) + log(1/delta)/(alpha-1) ].
 */

#ifndef DIVA_DP_ACCOUNTANT_H
#define DIVA_DP_ACCOUNTANT_H

#include <vector>

namespace diva
{

/** Tracks the RDP cost of repeated subsampled Gaussian mechanisms. */
class RdpAccountant
{
  public:
    /**
     * @param noise_multiplier sigma (noise stddev / clip norm)
     * @param sampling_rate    q = B / N
     */
    RdpAccountant(double noise_multiplier, double sampling_rate);

    /** Record `steps` additional mechanism invocations. */
    void addSteps(int steps);

    int steps() const { return steps_; }

    /** RDP of a single step at integer order `alpha` (>= 2). */
    double rdpSingleStep(int alpha) const;

    /** Best epsilon at the given delta over the default order grid. */
    double epsilon(double delta) const;

    /** The Renyi order achieving the reported epsilon. */
    int optimalOrder(double delta) const;

    /** Default Renyi order grid (2..256). */
    static std::vector<int> defaultOrders();

    /**
     * Calibrate the noise multiplier: the smallest sigma such that
     * `steps` subsampled Gaussian steps at rate q stay within
     * (target_epsilon, delta). Binary search over sigma; the practical
     * inverse of epsilon() that practitioners use to pick sigma.
     */
    static double calibrateNoiseMultiplier(double target_epsilon,
                                           double delta,
                                           double sampling_rate,
                                           int steps);

  private:
    double sigma_;
    double q_;
    int steps_ = 0;
};

} // namespace diva

#endif // DIVA_DP_ACCOUNTANT_H
