#include "dp/mlp.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "dp/ops.h"

namespace diva
{

namespace
{

/** Extract row `i` of `t` as a (1 x cols) tensor. */
Tensor
row(const Tensor &t, std::int64_t i)
{
    Tensor r(1, t.cols());
    for (std::int64_t j = 0; j < t.cols(); ++j)
        r.at(0, j) = t.at(i, j);
    return r;
}

} // namespace

void
MlpGrads::setZero()
{
    for (auto &t : dw)
        t.setZero();
    for (auto &t : db)
        t.setZero();
}

void
MlpGrads::add(const MlpGrads &other)
{
    DIVA_ASSERT(dw.size() == other.dw.size());
    for (std::size_t l = 0; l < dw.size(); ++l) {
        dw[l].add(other.dw[l]);
        db[l].add(other.db[l]);
    }
}

void
MlpGrads::addScaled(const MlpGrads &other, double s)
{
    DIVA_ASSERT(dw.size() == other.dw.size());
    for (std::size_t l = 0; l < dw.size(); ++l) {
        dw[l].addScaled(other.dw[l], s);
        db[l].addScaled(other.db[l], s);
    }
}

void
MlpGrads::scale(double s)
{
    for (auto &t : dw)
        t.scale(s);
    for (auto &t : db)
        t.scale(s);
}

double
MlpGrads::l2NormSq() const
{
    double acc = 0.0;
    for (const auto &t : dw)
        acc += t.l2NormSq();
    for (const auto &t : db)
        acc += t.l2NormSq();
    return acc;
}

double
MlpGrads::maxAbsDiff(const MlpGrads &other) const
{
    DIVA_ASSERT(dw.size() == other.dw.size());
    double best = 0.0;
    for (std::size_t l = 0; l < dw.size(); ++l) {
        best = std::max(best, dw[l].maxAbsDiff(other.dw[l]));
        best = std::max(best, db[l].maxAbsDiff(other.db[l]));
    }
    return best;
}

Mlp::Mlp(const std::vector<int> &dims, Rng &rng)
{
    DIVA_ASSERT(dims.size() >= 2, "an MLP needs at least one layer");
    for (std::size_t i = 0; i + 1 < dims.size(); ++i)
        layers_.emplace_back(dims[i], dims[i + 1], rng);
}

Tensor
Mlp::forward(const Tensor &x, Cache *cache) const
{
    if (cache) {
        cache->inputs.clear();
        cache->preacts.clear();
    }
    Tensor act = x;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        if (cache)
            cache->inputs.push_back(act);
        Tensor z = layers_[l].forward(act);
        if (cache)
            cache->preacts.push_back(z);
        const bool last = (l + 1 == layers_.size());
        act = last ? z : reluForward(z);
    }
    if (cache)
        cache->logits = act;
    return act;
}

double
Mlp::lossAndLogitGrad(const Tensor &x, const std::vector<int> &y,
                      Cache &cache, Tensor &dlogits) const
{
    const Tensor logits = forward(x, &cache);
    return softmaxCrossEntropy(logits, y, dlogits);
}

void
Mlp::backwardPerBatch(const Cache &cache, const Tensor &dlogits,
                      MlpGrads &grads) const
{
    const std::vector<double> ones(std::size_t(dlogits.rows()), 1.0);
    backwardReweighted(cache, dlogits, ones, grads);
}

void
Mlp::backwardReweighted(const Cache &cache, const Tensor &dlogits,
                        const std::vector<double> &weights,
                        MlpGrads &grads) const
{
    DIVA_ASSERT(std::size_t(dlogits.rows()) == weights.size());
    DIVA_ASSERT(cache.inputs.size() == layers_.size());

    // Seed the backward pass with per-example reweighted logit grads
    // (Algorithm 1, line 35: L' = sum_i r_i * L_i).
    Tensor g = dlogits;
    for (std::int64_t i = 0; i < g.rows(); ++i)
        for (std::int64_t j = 0; j < g.cols(); ++j)
            g.at(i, j) = float(double(g.at(i, j)) *
                               weights[std::size_t(i)]);

    grads = zeroGrads();
    for (std::size_t l = layers_.size(); l-- > 0;) {
        layers_[l].perBatchGrad(cache.inputs[l], g, grads.dw[l],
                                grads.db[l]);
        if (l > 0) {
            Tensor gx = layers_[l].backwardInput(g);
            g = reluBackward(cache.preacts[l - 1], gx);
        }
    }
}

std::vector<Tensor>
Mlp::perExampleChain(const Cache &cache, const Tensor &dlogits,
                     std::int64_t i) const
{
    std::vector<Tensor> chain(layers_.size());
    Tensor g = row(dlogits, i);
    for (std::size_t l = layers_.size(); l-- > 0;) {
        chain[l] = g;
        if (l > 0) {
            Tensor gx = layers_[l].backwardInput(g);
            g = reluBackward(row(cache.preacts[l - 1], i), gx);
        }
    }
    return chain;
}

void
Mlp::perExampleGrad(const Cache &cache, const Tensor &dlogits,
                    std::int64_t i, MlpGrads &grads) const
{
    const std::vector<Tensor> chain = perExampleChain(cache, dlogits, i);
    grads = zeroGrads();
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const Tensor xi = row(cache.inputs[l], i);
        layers_[l].perExampleGrad(xi, chain[l], 0, grads.dw[l],
                                  grads.db[l]);
    }
}

double
Mlp::perExampleGradNormSq(const Cache &cache, const Tensor &dlogits,
                          std::int64_t i) const
{
    const std::vector<Tensor> chain = perExampleChain(cache, dlogits, i);
    double acc = 0.0;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const Tensor xi = row(cache.inputs[l], i);
        acc += layers_[l].perExampleGradNormSq(xi, chain[l], 0);
    }
    return acc;
}

void
Mlp::applyUpdate(const MlpGrads &grads, double lr)
{
    DIVA_ASSERT(grads.dw.size() == layers_.size());
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        layers_[l].weight().addScaled(grads.dw[l], -lr);
        layers_[l].bias().addScaled(grads.db[l], -lr);
    }
}

MlpGrads
Mlp::zeroGrads() const
{
    MlpGrads g;
    for (const auto &layer : layers_) {
        g.dw.emplace_back(layer.inFeatures(), layer.outFeatures());
        g.db.emplace_back(1, layer.outFeatures());
    }
    return g;
}

double
Mlp::accuracy(const Tensor &x, const std::vector<int> &y) const
{
    const Tensor logits = forward(x);
    std::int64_t correct = 0;
    for (std::int64_t i = 0; i < logits.rows(); ++i) {
        std::int64_t best = 0;
        for (std::int64_t j = 1; j < logits.cols(); ++j)
            if (logits.at(i, j) > logits.at(i, best))
                best = j;
        if (best == y[std::size_t(i)])
            ++correct;
    }
    return double(correct) / double(logits.rows());
}

std::int64_t
Mlp::paramCount() const
{
    std::int64_t total = 0;
    for (const auto &layer : layers_)
        total += layer.paramCount();
    return total;
}

} // namespace diva
