/**
 * @file
 * A small convolutional classifier (conv -> ReLU -> linear) with the
 * same explicit per-batch / per-example gradient interfaces as Mlp.
 * This closes the loop on the paper's CNN benchmarks: the functional
 * library can derive, clip and reweight *convolutional* per-example
 * gradients, exercising the Figure-6 conv GEMM algebra end to end.
 */

#ifndef DIVA_DP_CONVNET_H
#define DIVA_DP_CONVNET_H

#include <vector>

#include "common/rng.h"
#include "dp/conv2d.h"
#include "dp/linear.h"
#include "dp/tensor.h"

namespace diva
{

/** Gradient container matching a ConvNet's parameters. */
struct ConvNetGrads
{
    Tensor convW;
    Tensor convB;
    Tensor fcW;
    Tensor fcB;

    /** Visit every parameter-gradient tensor (for generic trainers). */
    template <typename Fn>
    void
    forEachTensor(Fn &&fn)
    {
        fn(convW);
        fn(convB);
        fn(fcW);
        fn(fcB);
    }

    void setZero();
    void addScaled(const ConvNetGrads &other, double s);
    void scale(double s);
    double l2NormSq() const;
    double maxAbsDiff(const ConvNetGrads &other) const;
};

/** conv2d -> ReLU -> flatten -> linear classifier. */
class ConvNet
{
  public:
    ConvNet(const ConvGeometry &geometry, int num_classes, Rng &rng);

    /** Intermediates of one forward pass. */
    struct Cache
    {
        Tensor input;    ///< (B, Cin*H*W)
        Tensor convOut;  ///< pre-ReLU conv output (B, Cout*P*Q)
        Tensor reluOut;  ///< post-ReLU (B, Cout*P*Q)
        Tensor logits;
    };

    Tensor forward(const Tensor &x, Cache *cache = nullptr) const;

    /** Mean loss + un-averaged per-example logit gradients. */
    double lossAndLogitGrad(const Tensor &x, const std::vector<int> &y,
                            Cache &cache, Tensor &dlogits) const;

    /** Per-example gradient of example i. */
    void perExampleGrad(const Cache &cache, const Tensor &dlogits,
                        std::int64_t i, ConvNetGrads &grads) const;

    /** Squared norm of example i's whole-model gradient. */
    double perExampleGradNormSq(const Cache &cache,
                                const Tensor &dlogits,
                                std::int64_t i) const;

    /**
     * Per-batch backward pass with per-example reweighting (DP-SGD(R)
     * second pass); unit weights give the plain per-batch gradient.
     */
    void backwardReweighted(const Cache &cache, const Tensor &dlogits,
                            const std::vector<double> &weights,
                            ConvNetGrads &grads) const;

    void applyUpdate(const ConvNetGrads &grads, double lr);

    ConvNetGrads zeroGrads() const;

    double accuracy(const Tensor &x, const std::vector<int> &y) const;

    std::int64_t paramCount() const
    {
        return conv_.paramCount() + fc_.paramCount();
    }

    Conv2d &conv() { return conv_; }
    Linear &fc() { return fc_; }

  private:
    /** Per-example conv-output gradient row (through fc and ReLU). */
    Tensor convOutGradRow(const Cache &cache, const Tensor &dlogits,
                          std::int64_t i) const;

    Conv2d conv_;
    Linear fc_;
};

} // namespace diva

#endif // DIVA_DP_CONVNET_H
