/**
 * @file
 * Functional 2-D convolution layer with per-batch and per-example
 * weight gradients, lowered to GEMM via im2col -- the numeric
 * realization of Figure 6's convolution rows:
 *
 *   forward:          (B*P*Q, Cin*R*S, Cout)
 *   per-batch wgrad:  (Cin*R*S, B*P*Q, Cout)
 *   per-example wgrad: B GEMMs of (Cin*R*S, P*Q, Cout)
 */

#ifndef DIVA_DP_CONV2D_H
#define DIVA_DP_CONV2D_H

#include "common/rng.h"
#include "dp/im2col.h"
#include "dp/tensor.h"

namespace diva
{

/** y = conv2d(x, W) + b with explicit gradient derivations. */
class Conv2d
{
  public:
    Conv2d(const ConvGeometry &geometry, Rng &rng);

    const ConvGeometry &geometry() const { return geom_; }

    /**
     * Forward pass. Input rows are flattened CHW images
     * (B x Cin*H*W); output rows are flattened (B x Cout*P*Q).
     */
    Tensor forward(const Tensor &x) const;

    /** Activation gradient: grad_x (B x Cin*H*W). */
    Tensor backwardInput(const Tensor &grad_y) const;

    /**
     * Per-batch weight gradient, reduced over the whole mini-batch.
     * dw is (Cin*R*S x Cout), db is (1 x Cout).
     */
    void perBatchGrad(const Tensor &x, const Tensor &grad_y, Tensor &dw,
                      Tensor &db) const;

    /** Per-example weight gradient of example i. */
    void perExampleGrad(const Tensor &x, const Tensor &grad_y,
                        std::int64_t i, Tensor &dw, Tensor &db) const;

    /** Squared L2 norm of example i's (dW_i, db_i). */
    double perExampleGradNormSq(const Tensor &x, const Tensor &grad_y,
                                std::int64_t i) const;

    /** Weight as the (Cin*R*S x Cout) GEMM operand. */
    Tensor &weight() { return weight_; }
    const Tensor &weight() const { return weight_; }
    Tensor &bias() { return bias_; }
    const Tensor &bias() const { return bias_; }

    std::int64_t paramCount() const
    {
        return weight_.size() + bias_.size();
    }

  private:
    /** Reshape one example's grad_y row into a (P*Q x Cout) matrix. */
    Tensor gradYMatrix(const Tensor &grad_y, std::int64_t i) const;

    ConvGeometry geom_;
    Tensor weight_; ///< (Cin*R*S, Cout)
    Tensor bias_;   ///< (1, Cout)
};

} // namespace diva

#endif // DIVA_DP_CONV2D_H
