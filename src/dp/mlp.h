/**
 * @file
 * A ReLU multi-layer perceptron with explicit (autograd-free) backprop,
 * supporting both per-batch and per-example weight-gradient derivation.
 */

#ifndef DIVA_DP_MLP_H
#define DIVA_DP_MLP_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "dp/linear.h"
#include "dp/tensor.h"

namespace diva
{

/** Gradient container matching an Mlp's parameter structure. */
struct MlpGrads
{
    std::vector<Tensor> dw;
    std::vector<Tensor> db;

    /** Visit every parameter-gradient tensor (for generic trainers). */
    template <typename Fn>
    void
    forEachTensor(Fn &&fn)
    {
        for (auto &t : dw)
            fn(t);
        for (auto &t : db)
            fn(t);
    }

    void setZero();
    void add(const MlpGrads &other);
    void addScaled(const MlpGrads &other, double s);
    void scale(double s);
    double l2NormSq() const;
    double maxAbsDiff(const MlpGrads &other) const;
};

/** Feed-forward ReLU network ending in raw logits. */
class Mlp
{
  public:
    /**
     * @param dims layer widths, e.g. {16, 64, 64, 10} builds
     *             16->64->64->10 with ReLU between hidden layers.
     */
    Mlp(const std::vector<int> &dims, Rng &rng);

    /** Cached intermediates of one forward pass, needed by backprop. */
    struct Cache
    {
        /** inputs[l]: the input activation of layer l (B x in_l). */
        std::vector<Tensor> inputs;
        /** preacts[l]: pre-ReLU output of layer l (B x out_l). */
        std::vector<Tensor> preacts;
        Tensor logits;
    };

    /** Forward pass; fills `cache` if non-null. */
    Tensor forward(const Tensor &x, Cache *cache = nullptr) const;

    /**
     * Mean loss and the per-example logit gradients (row i holds
     * dL_i/dlogits_i, un-averaged as DP-SGD requires).
     */
    double lossAndLogitGrad(const Tensor &x, const std::vector<int> &y,
                            Cache &cache, Tensor &dlogits) const;

    /** Per-batch backprop: grads summed over the mini-batch. */
    void backwardPerBatch(const Cache &cache, const Tensor &dlogits,
                          MlpGrads &grads) const;

    /**
     * Per-batch backprop with per-example loss-gradient reweighting:
     * row i of dlogits is scaled by weights[i] before the backward
     * pass. This implements DP-SGD(R)'s second pass (Algorithm 1, line
     * 39): the result equals the sum of clipped per-example gradients.
     */
    void backwardReweighted(const Cache &cache, const Tensor &dlogits,
                            const std::vector<double> &weights,
                            MlpGrads &grads) const;

    /** Per-example gradient of example `i` (materialized). */
    void perExampleGrad(const Cache &cache, const Tensor &dlogits,
                        std::int64_t i, MlpGrads &grads) const;

    /**
     * Squared L2 norm of example i's whole-model gradient without
     * materializing it (DP-SGD(R)'s first pass).
     */
    double perExampleGradNormSq(const Cache &cache, const Tensor &dlogits,
                                std::int64_t i) const;

    /** SGD parameter update: w -= lr * grad. */
    void applyUpdate(const MlpGrads &grads, double lr);

    /** Zero-initialized gradient container with matching shapes. */
    MlpGrads zeroGrads() const;

    /** Classification accuracy on (x, y). */
    double accuracy(const Tensor &x, const std::vector<int> &y) const;

    std::vector<Linear> &layersMutable() { return layers_; }
    const std::vector<Linear> &layers() const { return layers_; }
    std::int64_t paramCount() const;

  private:
    /**
     * Per-example activation-gradient chain: returns the list of
     * layer-input gradients for example i, one row per layer.
     */
    std::vector<Tensor> perExampleChain(const Cache &cache,
                                        const Tensor &dlogits,
                                        std::int64_t i) const;

    std::vector<Linear> layers_;
};

} // namespace diva

#endif // DIVA_DP_MLP_H
