#include "dp/ops.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace diva
{

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    DIVA_ASSERT(a.cols() == b.rows(), "matmul shape mismatch");
    Tensor c(a.rows(), b.cols());
    for (std::int64_t i = 0; i < a.rows(); ++i) {
        for (std::int64_t k = 0; k < a.cols(); ++k) {
            const float aik = a.at(i, k);
            if (aik == 0.0f)
                continue;
            for (std::int64_t j = 0; j < b.cols(); ++j)
                c.at(i, j) += aik * b.at(k, j);
        }
    }
    return c;
}

Tensor
matmulTransA(const Tensor &a, const Tensor &b)
{
    DIVA_ASSERT(a.rows() == b.rows(), "matmulTransA shape mismatch");
    Tensor c(a.cols(), b.cols());
    for (std::int64_t i = 0; i < a.rows(); ++i) {
        for (std::int64_t k = 0; k < a.cols(); ++k) {
            const float aik = a.at(i, k);
            if (aik == 0.0f)
                continue;
            for (std::int64_t j = 0; j < b.cols(); ++j)
                c.at(k, j) += aik * b.at(i, j);
        }
    }
    return c;
}

Tensor
matmulTransB(const Tensor &a, const Tensor &b)
{
    DIVA_ASSERT(a.cols() == b.cols(), "matmulTransB shape mismatch");
    Tensor c(a.rows(), b.rows());
    for (std::int64_t i = 0; i < a.rows(); ++i) {
        for (std::int64_t k = 0; k < b.rows(); ++k) {
            double acc = 0.0;
            for (std::int64_t j = 0; j < a.cols(); ++j)
                acc += double(a.at(i, j)) * double(b.at(k, j));
            c.at(i, k) = float(acc);
        }
    }
    return c;
}

Tensor
reluForward(const Tensor &x)
{
    Tensor y = x;
    for (auto &v : y.data())
        v = std::max(v, 0.0f);
    return y;
}

Tensor
reluBackward(const Tensor &z, const Tensor &grad_y)
{
    DIVA_ASSERT(z.rows() == grad_y.rows() && z.cols() == grad_y.cols());
    Tensor grad_x = grad_y;
    for (std::int64_t i = 0; i < z.size(); ++i) {
        if (z[i] <= 0.0f)
            grad_x[i] = 0.0f;
    }
    return grad_x;
}

double
softmaxCrossEntropy(const Tensor &logits, const std::vector<int> &labels,
                    Tensor &grad)
{
    DIVA_ASSERT(std::int64_t(labels.size()) == logits.rows());
    grad = Tensor(logits.rows(), logits.cols());
    double total_loss = 0.0;
    for (std::int64_t i = 0; i < logits.rows(); ++i) {
        const int label = labels[std::size_t(i)];
        DIVA_ASSERT(label >= 0 && label < logits.cols(),
                    "label out of range");
        float max_logit = logits.at(i, 0);
        for (std::int64_t j = 1; j < logits.cols(); ++j)
            max_logit = std::max(max_logit, logits.at(i, j));
        double denom = 0.0;
        for (std::int64_t j = 0; j < logits.cols(); ++j)
            denom += std::exp(double(logits.at(i, j)) - max_logit);
        for (std::int64_t j = 0; j < logits.cols(); ++j) {
            const double p =
                std::exp(double(logits.at(i, j)) - max_logit) / denom;
            grad.at(i, j) = float(p - (j == label ? 1.0 : 0.0));
        }
        const double log_p =
            double(logits.at(i, label)) - max_logit - std::log(denom);
        total_loss -= log_p;
    }
    return total_loss / double(logits.rows());
}

} // namespace diva
