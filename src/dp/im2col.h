/**
 * @file
 * im2col / col2im transforms: the lowering that turns convolutions
 * into GEMMs (Section II-D cites this as the reason training
 * accelerators standardize on GEMM). The functional conv layer uses
 * these to compute forward and backward passes, which in turn
 * validates the Figure-6 conv GEMM shape algebra numerically.
 */

#ifndef DIVA_DP_IM2COL_H
#define DIVA_DP_IM2COL_H

#include "dp/tensor.h"

namespace diva
{

/** Geometry of one 2-D convolution. */
struct ConvGeometry
{
    int inChannels = 0;
    int outChannels = 0;
    int kernelH = 0;
    int kernelW = 0;
    int stride = 1;
    int padding = 0;
    int inH = 0;
    int inW = 0;

    int outH() const
    {
        return (inH + 2 * padding - kernelH) / stride + 1;
    }
    int outW() const
    {
        return (inW + 2 * padding - kernelW) / stride + 1;
    }

    /** im2col patch length: Cin * R * S (Figure 6's K dimension). */
    std::int64_t patchSize() const
    {
        return std::int64_t(inChannels) * kernelH * kernelW;
    }

    /** Output pixels per example: P * Q. */
    std::int64_t outPixels() const
    {
        return std::int64_t(outH()) * outW();
    }
};

/**
 * Lower one example's input (CHW, flattened to a 1 x C*H*W row) into
 * the im2col patch matrix of shape (P*Q, Cin*R*S): row p holds the
 * receptive field of output pixel p. Out-of-bounds (padding) taps are
 * zero.
 */
Tensor im2col(const ConvGeometry &g, const Tensor &input,
              std::int64_t example);

/**
 * Inverse scatter: accumulate a patch-matrix gradient (P*Q, Cin*R*S)
 * back into an input-shaped gradient row (1 x Cin*H*W). Overlapping
 * patches sum, which is exactly the convolution input-gradient.
 */
Tensor col2im(const ConvGeometry &g, const Tensor &patches);

} // namespace diva

#endif // DIVA_DP_IM2COL_H
