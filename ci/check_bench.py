#!/usr/bin/env python3
"""Compare a BENCH_*.json against its checked-in baseline.

Usage: check_bench.py BASELINE CURRENT [--max-drop 0.30]

Every bench JSON has the shape

    {"bench": "...", "git": "...", "units": {...},
     "<rows>": [{<key>: ..., "<field>_per_sec": ..., ...}, ...]}

Rows are matched between baseline and current by their key field
("mode", "phase" or "pods", whichever the rows carry), and every
throughput field (name ending in _per_sec or _per_min) must not drop
by more than --max-drop relative to the baseline.  Non-throughput
fields (counts, hit rates, ratios) are reported but never gate: they
describe the workload, not the machine.  The one exception is
overhead fractions: a current-row field ending in _overhead_frac is
an absolute budget and must not exceed --max-overhead, regardless of
what the baseline measured.  The default (0.08) is the 5% telemetry
budget plus headroom for per-invocation layout and CI-runner noise,
mirroring the generous --max-drop philosophy: the checked-in baseline
row documents the true quiet-machine overhead, the gate exists to
catch real regressions without flaking on a noisy measurement.

A baseline numeric field that is absent from the matching current row
is a failure in its own right (the bench silently stopped reporting
it), named explicitly so the schema drift is visible.

When the current envelope carries a top-level "profile" object (the
wall-clock phase timings the bench mains collect), it is printed for
the log; phase timings are informational and never gate.

A baseline whose "git" field ends in "-dirty" draws a warning: its
numbers came from an uncommitted tree and cannot be attributed to a
commit, so it should be regenerated from a clean checkout.

Exits 1 when any throughput field regresses past the threshold, when
a baseline row has no counterpart in the current run, or when a
baseline field vanished from a current row.
"""

import argparse
import json
import sys

KEY_FIELDS = ("mode", "phase", "pods")


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    rows = None
    for name, value in doc.items():
        if name != "units" and isinstance(value, list):
            rows = value
            break
    if rows is None:
        sys.exit(f"{path}: no row array found")
    return doc, rows


def row_key(row):
    for field in KEY_FIELDS:
        if field in row:
            return str(row[field])
    sys.exit(f"row has none of the key fields {KEY_FIELDS}: {row}")


def throughput_fields(row):
    return [
        name
        for name, value in row.items()
        if isinstance(value, (int, float))
        and (name.endswith("_per_sec") or name.endswith("_per_min"))
    ]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--max-drop",
        type=float,
        default=0.30,
        help="maximum tolerated fractional throughput drop "
        "(default 0.30 = 30%%)",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.08,
        help="absolute ceiling for *_overhead_frac fields "
        "(default 0.08 = the 5%% telemetry budget plus "
        "measurement-noise headroom)",
    )
    args = parser.parse_args()

    base_doc, base_rows = load(args.baseline)
    cur_doc, cur_rows = load(args.current)
    current_by_key = {row_key(r): r for r in cur_rows}

    base_git = str(base_doc.get("git", ""))
    if base_git.endswith("-dirty"):
        print(
            f"WARNING: baseline {args.baseline} was generated from a "
            f"dirty tree (git: {base_git}); regenerate it from a clean "
            f"checkout so its numbers are attributable to a commit",
            file=sys.stderr,
        )

    bench = base_doc.get("bench", "?")
    failures = []
    for base in base_rows:
        key = row_key(base)
        cur = current_by_key.get(key)
        if cur is None:
            failures.append(f"[{bench}/{key}] row missing from current run")
            continue
        for field, value in base.items():
            if isinstance(value, (int, float)) and field not in cur:
                failures.append(
                    f"[{bench}/{key}] field '{field}' missing from "
                    f"current run"
                )
        for field in throughput_fields(base):
            if field not in cur:
                continue  # already failed above
            want = float(base[field])
            got = float(cur[field])
            if want <= 0.0:
                continue
            ratio = got / want
            status = "ok"
            if ratio < 1.0 - args.max_drop:
                status = "REGRESSED"
                failures.append(
                    f"[{bench}/{key}] {field}: {got:.3g} is "
                    f"{(1.0 - ratio) * 100.0:.1f}% below baseline "
                    f"{want:.3g} (limit {args.max_drop * 100.0:.0f}%)"
                )
            print(
                f"{bench:>6}/{key:<18} {field:<22} "
                f"base={want:>12.3g} cur={got:>12.3g} "
                f"({ratio * 100.0:6.1f}%) {status}"
            )

    # Overhead fractions gate on the current run's absolute value: the
    # budget is a design contract, not a drift bound.
    for cur in cur_rows:
        key = row_key(cur)
        for field, value in cur.items():
            if not field.endswith("_overhead_frac"):
                continue
            if not isinstance(value, (int, float)):
                continue
            frac = float(value)
            status = "ok"
            if frac > args.max_overhead:
                status = "OVER BUDGET"
                failures.append(
                    f"[{bench}/{key}] {field}: {frac:.4f} exceeds the "
                    f"{args.max_overhead:.2f} budget"
                )
            print(
                f"{bench:>6}/{key:<18} {field:<22} "
                f"budget={args.max_overhead:>12.3g} cur={frac:>12.3g} "
                f"{status}"
            )

    profile = cur_doc.get("profile")
    if isinstance(profile, dict) and profile:
        print(f"{bench}: wall-clock phases (informational):")
        for name in sorted(profile):
            phase = profile[name]
            print(
                f"  {name:<20} {float(phase.get('seconds', 0.0)):>10.4f}s"
                f"  x{int(phase.get('calls', 0))}"
            )

    if failures:
        print()
        for line in failures:
            print(f"FAIL {line}", file=sys.stderr)
        return 1
    print(f"{bench}: all throughput fields within "
          f"{args.max_drop * 100.0:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
