/**
 * @file
 * Property tests for the DP-SGD trainers, headlined by the paper's
 * Algorithm-1 equivalence: DP-SGD and DP-SGD(R) must produce the same
 * noisy gradient (and the same trained model) given the same seed.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dp/data.h"
#include "dp/dp_sgd.h"

namespace diva
{
namespace
{

struct Problem
{
    Tensor x;
    std::vector<int> y;
};

Problem
makeProblem(std::int64_t batch, int dim, int classes,
            std::uint64_t seed)
{
    Rng rng(seed);
    Dataset data =
        makeSyntheticClassification(batch, dim, classes, rng);
    return {std::move(data.x), std::move(data.y)};
}

TEST(DpSgd, ConfigValidation)
{
    Rng rng(1);
    Mlp model({4, 3}, rng);
    DpSgdConfig cfg;
    cfg.clipNorm = 0.0;
    EXPECT_THROW(DpSgdTrainer(model, cfg), std::logic_error);
}

TEST(DpSgd, ClippedNormsRespectBound)
{
    Rng rng(2);
    Mlp model({8, 16, 4}, rng);
    DpSgdConfig cfg;
    cfg.clipNorm = 0.1; // aggressive: everything should clip
    cfg.noiseMultiplier = 0.0;
    DpSgdTrainer trainer(model, cfg);

    const Problem p = makeProblem(16, 8, 4, 3);
    MlpGrads grads = model.zeroGrads();
    const DpStepResult r = trainer.noisyGradient(p.x, p.y, grads);

    // With everything clipped, the aggregate norm is at most B*C/B = C.
    EXPECT_NEAR(r.clippedFraction, 1.0, 1e-9);
    EXPECT_LE(std::sqrt(grads.l2NormSq()), cfg.clipNorm + 1e-6);
}

TEST(DpSgd, LooseClipBoundIsNoOp)
{
    Rng rng(4);
    Mlp model({8, 16, 4}, rng);
    DpSgdConfig cfg;
    cfg.clipNorm = 1e6;
    cfg.noiseMultiplier = 0.0;
    DpSgdTrainer dp(model, cfg);

    const Problem p = makeProblem(12, 8, 4, 5);
    MlpGrads dp_grads = model.zeroGrads();
    const DpStepResult r = dp.noisyGradient(p.x, p.y, dp_grads);
    EXPECT_DOUBLE_EQ(r.clippedFraction, 0.0);

    // Without clipping or noise, DP-SGD reduces to plain SGD's
    // averaged per-batch gradient.
    Mlp::Cache cache;
    Tensor dlogits;
    model.lossAndLogitGrad(p.x, p.y, cache, dlogits);
    MlpGrads sgd_grads = model.zeroGrads();
    model.backwardPerBatch(cache, dlogits, sgd_grads);
    sgd_grads.scale(1.0 / 12.0);
    EXPECT_LT(dp_grads.maxAbsDiff(sgd_grads), 1e-5);
}

TEST(DpSgd, PerExampleNormsReported)
{
    Rng rng(5);
    Mlp model({6, 10, 3}, rng);
    DpSgdConfig cfg;
    cfg.noiseMultiplier = 0.0;
    DpSgdTrainer trainer(model, cfg);
    const Problem p = makeProblem(9, 6, 3, 6);
    MlpGrads grads = model.zeroGrads();
    const DpStepResult r = trainer.noisyGradient(p.x, p.y, grads);
    ASSERT_EQ(r.perExampleNorms.size(), 9u);
    for (double n : r.perExampleNorms)
        EXPECT_GT(n, 0.0);
}

/**
 * The central equivalence property (Algorithm 1 / Lee & Kifer): with
 * identical seeds, vanilla DP-SGD and reweighted DP-SGD(R) derive the
 * same noisy gradient, for any clip bound and noise level.
 */
class DpEquivalence
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(DpEquivalence, NoisyGradientsMatch)
{
    const auto [clip, sigma] = GetParam();
    Rng rng_a(7), rng_b(7);
    Mlp model_a({8, 12, 4}, rng_a);
    Mlp model_b({8, 12, 4}, rng_b);

    DpSgdConfig cfg;
    cfg.clipNorm = clip;
    cfg.noiseMultiplier = sigma;
    cfg.noiseSeed = 99;

    DpSgdTrainer vanilla(model_a, cfg);
    DpSgdRTrainer reweighted(model_b, cfg);

    const Problem p = makeProblem(10, 8, 4, 8);
    MlpGrads g_vanilla = model_a.zeroGrads();
    MlpGrads g_reweighted = model_b.zeroGrads();
    const DpStepResult ra = vanilla.noisyGradient(p.x, p.y, g_vanilla);
    const DpStepResult rb =
        reweighted.noisyGradient(p.x, p.y, g_reweighted);

    EXPECT_NEAR(ra.meanLoss, rb.meanLoss, 1e-9);
    EXPECT_DOUBLE_EQ(ra.clippedFraction, rb.clippedFraction);
    for (std::size_t i = 0; i < ra.perExampleNorms.size(); ++i)
        EXPECT_NEAR(ra.perExampleNorms[i], rb.perExampleNorms[i], 1e-4);
    EXPECT_LT(g_vanilla.maxAbsDiff(g_reweighted), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    ClipAndNoise, DpEquivalence,
    ::testing::Combine(::testing::Values(0.05, 0.5, 1.0, 10.0),
                       ::testing::Values(0.0, 0.5, 2.0)));

TEST(DpEquivalenceTraining, ModelsStayIdenticalOverSteps)
{
    Rng rng_a(20), rng_b(20);
    Mlp model_a({6, 10, 3}, rng_a);
    Mlp model_b({6, 10, 3}, rng_b);
    DpSgdConfig cfg;
    cfg.clipNorm = 0.5;
    cfg.noiseMultiplier = 0.8;
    cfg.learningRate = 0.3;
    DpSgdTrainer vanilla(model_a, cfg);
    DpSgdRTrainer reweighted(model_b, cfg);

    Rng data_rng(21);
    Dataset data = makeSyntheticClassification(256, 6, 3, data_rng);
    Rng batch_rng_a(22), batch_rng_b(22);
    Tensor xa, xb;
    std::vector<int> ya, yb;
    for (int step = 0; step < 5; ++step) {
        sampleBatch(data, 16, batch_rng_a, xa, ya);
        sampleBatch(data, 16, batch_rng_b, xb, yb);
        vanilla.step(xa, ya);
        reweighted.step(xb, yb);
    }
    for (std::size_t l = 0; l < model_a.layers().size(); ++l) {
        EXPECT_LT(model_a.layers()[l].weight().maxAbsDiff(
                      model_b.layers()[l].weight()),
                  1e-3);
    }
}

TEST(DpSgd, NoiseHasExpectedMagnitude)
{
    Rng rng(30);
    Mlp model({4, 3}, rng);
    DpSgdConfig cfg;
    cfg.clipNorm = 1.0;
    cfg.noiseMultiplier = 5.0; // dominate the signal
    DpSgdTrainer trainer(model, cfg);
    const Problem p = makeProblem(8, 4, 3, 31);
    MlpGrads grads = model.zeroGrads();
    trainer.noisyGradient(p.x, p.y, grads);
    // After averaging by B, noise stddev per coord ~ sigma*C/B = 0.625.
    const double rms =
        std::sqrt(grads.l2NormSq() / double(model.paramCount()));
    EXPECT_GT(rms, 0.3);
    EXPECT_LT(rms, 1.2);
}

TEST(DpSgd, ZeroNoiseIsDeterministic)
{
    Rng rng_a(40), rng_b(40);
    Mlp model_a({5, 4}, rng_a);
    Mlp model_b({5, 4}, rng_b);
    DpSgdConfig cfg;
    cfg.noiseMultiplier = 0.0;
    DpSgdTrainer ta(model_a, cfg);
    DpSgdTrainer tb(model_b, cfg);
    const Problem p = makeProblem(6, 5, 4, 41);
    MlpGrads ga = model_a.zeroGrads(), gb = model_b.zeroGrads();
    ta.noisyGradient(p.x, p.y, ga);
    tb.noisyGradient(p.x, p.y, gb);
    EXPECT_DOUBLE_EQ(ga.maxAbsDiff(gb), 0.0);
}

TEST(DpSgd, TrainingReducesLossOnSeparableData)
{
    Rng rng(50);
    Mlp model({8, 16, 3}, rng);
    DpSgdConfig cfg;
    cfg.clipNorm = 1.0;
    cfg.noiseMultiplier = 0.5;
    cfg.learningRate = 0.5;
    DpSgdRTrainer trainer(model, cfg);

    Rng data_rng(51);
    Dataset data =
        makeSyntheticClassification(512, 8, 3, data_rng, 4.0);
    Rng batch_rng(52);
    Tensor x;
    std::vector<int> y;
    double first_loss = 0.0, last_loss = 0.0;
    for (int step = 0; step < 60; ++step) {
        sampleBatch(data, 32, batch_rng, x, y);
        const DpStepResult r = trainer.step(x, y);
        if (step == 0)
            first_loss = r.meanLoss;
        last_loss = r.meanLoss;
    }
    EXPECT_LT(last_loss, first_loss);
    EXPECT_GT(model.accuracy(data.x, data.y), 0.7);
}

TEST(SgdTrainer, ConvergesOnSeparableData)
{
    Rng rng(60);
    Mlp model({8, 16, 3}, rng);
    SgdTrainer trainer(model, 0.5);
    Rng data_rng(61);
    Dataset data =
        makeSyntheticClassification(512, 8, 3, data_rng, 4.0);
    Rng batch_rng(62);
    Tensor x;
    std::vector<int> y;
    for (int step = 0; step < 150; ++step) {
        sampleBatch(data, 32, batch_rng, x, y);
        trainer.step(x, y);
    }
    EXPECT_GT(model.accuracy(data.x, data.y), 0.8);
}

TEST(Dataset, SyntheticGeneratorShapes)
{
    Rng rng(70);
    const Dataset data = makeSyntheticClassification(100, 5, 4, rng);
    EXPECT_EQ(data.size(), 100);
    EXPECT_EQ(data.x.cols(), 5);
    EXPECT_EQ(data.numClasses, 4);
    for (int label : data.y) {
        EXPECT_GE(label, 0);
        EXPECT_LT(label, 4);
    }
}

TEST(Dataset, SampleBatchShapes)
{
    Rng rng(71);
    const Dataset data = makeSyntheticClassification(50, 3, 2, rng);
    Tensor x;
    std::vector<int> y;
    sampleBatch(data, 8, rng, x, y);
    EXPECT_EQ(x.rows(), 8);
    EXPECT_EQ(x.cols(), 3);
    EXPECT_EQ(y.size(), 8u);
}

} // namespace
} // namespace diva
