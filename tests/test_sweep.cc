/**
 * @file
 * Unit tests for the design-space sweep subsystem: spec expansion
 * counts, serial-vs-parallel result equality, cache-hit accounting,
 * summary statistics and Pareto-frontier extraction.
 */

#include <gtest/gtest.h>

#include "sweep/aggregate.h"
#include "sweep/emit.h"
#include "sweep/runner.h"
#include "sweep/scenario.h"
#include "sweep/spec.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace diva
{
namespace
{

/** A small but multi-axis spec: 2 configs x 2 models x 2 algos. */
SweepSpec
smallSpec()
{
    SweepSpec spec;
    spec.configs = {tpuV3Ws(), divaDefault(true)};
    spec.models = {"ResNet-50", "BERT-base"};
    spec.algorithms = {TrainingAlgorithm::kDpSgd,
                       TrainingAlgorithm::kDpSgdR};
    spec.batches = {8};
    return spec;
}

TEST(SweepSpec, ExpansionCountsCartesianProduct)
{
    const SweepSpec::Expansion e = smallSpec().expand();
    EXPECT_EQ(e.rawCount, 8u);
    EXPECT_EQ(e.scenarios.size(), 8u);
    EXPECT_EQ(e.invalidSkipped, 0u);
    EXPECT_EQ(e.duplicatesRemoved, 0u);
}

TEST(SweepSpec, ExpansionSkipsInvalidConfigs)
{
    SweepSpec spec = smallSpec();
    AcceleratorConfig bad = tpuV3Ws();
    bad.hasPpu = true; // WS + PPU fails validate()
    spec.configs.push_back(bad);
    const SweepSpec::Expansion e = spec.expand();
    EXPECT_EQ(e.rawCount, 12u);
    EXPECT_EQ(e.invalidSkipped, 4u);
    EXPECT_EQ(e.scenarios.size(), 8u);
}

TEST(SweepSpec, ExpansionDeduplicatesRepeatedAxes)
{
    SweepSpec spec = smallSpec();
    spec.configs.push_back(tpuV3Ws()); // repeated design point
    const SweepSpec::Expansion e = spec.expand();
    EXPECT_EQ(e.rawCount, 12u);
    EXPECT_EQ(e.duplicatesRemoved, 4u);
    EXPECT_EQ(e.scenarios.size(), 8u);
}

TEST(SweepSpec, GpuScenariosIgnoreConfigAxis)
{
    SweepSpec spec = smallSpec();
    spec.backends = {SweepBackend::kSingleChip, SweepBackend::kGpu};
    spec.gpus = {GpuConfig::a100Fp16()};
    const SweepSpec::Expansion e = spec.expand();
    // The GPU scenarios coincide across the 2-config axis: 8 chip
    // scenarios + 4 unique GPU scenarios (4 duplicates removed).
    EXPECT_EQ(e.rawCount, 16u);
    EXPECT_EQ(e.duplicatesRemoved, 4u);
    EXPECT_EQ(e.scenarios.size(), 12u);
}

TEST(SweepSpec, ExpansionOrderIsDeterministic)
{
    const SweepSpec spec = smallSpec();
    const auto a = spec.expand();
    const auto b = spec.expand();
    ASSERT_EQ(a.scenarios.size(), b.scenarios.size());
    for (std::size_t i = 0; i < a.scenarios.size(); ++i)
        EXPECT_EQ(a.scenarios[i].canonicalKey(),
                  b.scenarios[i].canonicalKey());
}

TEST(SweepRunner, ParallelBitIdenticalToSerial)
{
    SweepOptions serial_opts;
    serial_opts.threads = 1;
    SweepRunner serial(serial_opts);
    SweepOptions parallel_opts;
    parallel_opts.threads = 4;
    SweepRunner parallel(parallel_opts);

    const std::vector<Scenario> scenarios = smallSpec().expand().scenarios;
    const SweepReport a = serial.run(scenarios);
    const SweepReport b = parallel.run(scenarios);

    ASSERT_EQ(a.results.size(), b.results.size());
    EXPECT_EQ(a.cacheHits, b.cacheHits);
    EXPECT_EQ(a.cacheMisses, b.cacheMisses);
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        SCOPED_TRACE(a.results[i].scenario.label());
        EXPECT_EQ(a.results[i].cycles, b.results[i].cycles);
        EXPECT_EQ(a.results[i].seconds, b.results[i].seconds);
        EXPECT_EQ(a.results[i].utilization, b.results[i].utilization);
        EXPECT_EQ(a.results[i].energyJ, b.results[i].energyJ);
        EXPECT_EQ(a.results[i].dramBytes, b.results[i].dramBytes);
        EXPECT_EQ(a.results[i].cacheHit, b.results[i].cacheHit);
        // Emitted rows must match byte for byte.
        EXPECT_EQ(csvRow(a.results[i]), csvRow(b.results[i]));
    }
}

TEST(SweepRunner, DuplicateScenariosAreCacheHits)
{
    Scenario s;
    s.config = divaDefault(true);
    s.model = "ResNet-50";
    s.batch = 4;
    const std::vector<Scenario> scenarios = {s, s, s};

    SweepRunner runner;
    const SweepReport report = runner.run(scenarios);
    EXPECT_EQ(report.cacheMisses, 1u);
    EXPECT_EQ(report.cacheHits, 2u);
    EXPECT_FALSE(report.results[0].cacheHit);
    EXPECT_TRUE(report.results[1].cacheHit);
    EXPECT_TRUE(report.results[2].cacheHit);
    EXPECT_EQ(report.results[0].cycles, report.results[1].cycles);
}

TEST(SweepRunner, CachePersistsAcrossRuns)
{
    const std::vector<Scenario> scenarios = smallSpec().expand().scenarios;
    SweepRunner runner;
    const SweepReport first = runner.run(scenarios);
    EXPECT_EQ(first.cacheHits, 0u);
    EXPECT_EQ(first.cacheMisses, scenarios.size());
    EXPECT_EQ(runner.cacheSize(), scenarios.size());

    const SweepReport second = runner.run(scenarios);
    EXPECT_EQ(second.cacheHits, scenarios.size());
    EXPECT_EQ(second.cacheMisses, 0u);
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        EXPECT_TRUE(second.results[i].cacheHit);
        EXPECT_EQ(first.results[i].cycles, second.results[i].cycles);
    }

    runner.clearCache();
    EXPECT_EQ(runner.cacheSize(), 0u);
}

TEST(SweepRunner, AutoBatchResolvesToFigureProtocol)
{
    Scenario s;
    s.config = divaDefault(true);
    s.model = "ResNet-50";
    s.batch = kAutoBatch;
    const ScenarioResult r = runScenario(s);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_GT(r.resolvedBatch, 0);
    // An auto-batch scenario and its resolved explicit twin share the
    // simulation but not the canonical key (different requests).
    Scenario explicit_twin = s;
    explicit_twin.batch = r.resolvedBatch;
    EXPECT_NE(s.canonicalKey(), explicit_twin.canonicalKey());
    const ScenarioResult r2 = runScenario(explicit_twin);
    EXPECT_EQ(r.cycles, r2.cycles);
}

TEST(SweepRunner, FailedScenarioReportsErrorNotCrash)
{
    Scenario s;
    s.config = divaDefault(true);
    s.model = "ResNet-50";
    s.batch = 1;
    s.backend = SweepBackend::kMultiChip;
    s.pod.numChips = 8; // global batch 1 < 8 chips is impossible
    SweepRunner runner;
    const SweepReport report = runner.run(std::vector<Scenario>{s});
    EXPECT_EQ(report.failures, 1u);
    EXPECT_FALSE(report.results[0].ok());
}

TEST(SweepRunner, FailedResultsAreNotCachedAcrossRuns)
{
    // Regression: a failed result pinned in the cross-run cache would
    // replay a possibly transient error forever instead of retrying.
    Scenario s;
    s.config = divaDefault(true);
    s.model = "ResNet-50";
    s.batch = 1;
    s.backend = SweepBackend::kMultiChip;
    s.pod.numChips = 8; // fails: batch 1 cannot shard over 8 chips
    SweepRunner runner; // cacheAcrossRuns = true
    const SweepReport first = runner.run(std::vector<Scenario>{s});
    EXPECT_EQ(first.failures, 1u);
    EXPECT_EQ(first.cacheMisses, 1u);
    EXPECT_EQ(runner.cacheSize(), 0u); // the failure was not kept

    // The second run must re-simulate, not replay the cached failure.
    const SweepReport second = runner.run(std::vector<Scenario>{s});
    EXPECT_EQ(second.cacheMisses, 1u);
    EXPECT_EQ(second.cacheHits, 0u);
    EXPECT_FALSE(second.results[0].cacheHit);
    EXPECT_EQ(second.failures, 1u);

    // Within one run duplicates still collapse into one simulation.
    const SweepReport dup = runner.run(std::vector<Scenario>{s, s});
    EXPECT_EQ(dup.cacheMisses, 1u);
    EXPECT_EQ(dup.cacheHits, 1u);
    EXPECT_EQ(dup.failures, 2u);
}

TEST(SweepRunner, PodScenariosReportEnergyUtilizationAndTraffic)
{
    // Regression: pod-backend rows used to report energy_j = 0.
    Scenario s;
    s.config = divaDefault(true);
    s.model = "SqueezeNet";
    s.batch = 32;
    s.backend = SweepBackend::kMultiChip;
    s.pod.numChips = 4;
    const ScenarioResult r = runScenario(s);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_GT(r.energyJ, 0.0);
    EXPECT_GT(r.utilization, 0.0);
    EXPECT_LE(r.utilization, 1.0);
    EXPECT_GT(r.dramBytes, 0u);
    EXPECT_GT(r.computeCycles, 0u);
    EXPECT_GT(r.allReduceCycles, 0u);
    EXPECT_EQ(r.computeCycles + r.allReduceCycles, r.cycles);

    // The pod spends at least the chips' summed iteration energy.
    Scenario chip = s;
    chip.backend = SweepBackend::kSingleChip;
    chip.batch = 8; // one pod shard
    const ScenarioResult shard = runScenario(chip);
    ASSERT_TRUE(shard.ok()) << shard.error;
    EXPECT_GE(r.energyJ, 4.0 * shard.energyJ);
}

TEST(Aggregate, SummaryStatsOnKnownSeries)
{
    // 1..100: median 50.5, p95 = 95.05 by linear interpolation.
    std::vector<double> values;
    for (int i = 1; i <= 100; ++i)
        values.push_back(double(i));
    const SummaryStats s = summarize(values);
    EXPECT_EQ(s.count, 100u);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 100.0);
    EXPECT_DOUBLE_EQ(s.mean, 50.5);
    EXPECT_DOUBLE_EQ(s.median, 50.5);
    EXPECT_DOUBLE_EQ(s.p95, 95.05);
}

/** Five hand-computed points over (cycles, energy). */
std::vector<ScenarioResult>
paretoFixture()
{
    auto point = [](Cycles cycles, double energy) {
        ScenarioResult r;
        r.cycles = cycles;
        r.energyJ = energy;
        return r;
    };
    return {
        point(100, 10.0), // [0] frontier: fastest
        point(200, 4.0),  // [1] frontier: cheaper than 0, faster than 3
        point(200, 6.0),  // [2] dominated by 1 (same cycles, more J)
        point(400, 2.0),  // [3] frontier: cheapest
        point(500, 5.0),  // [4] dominated by 1 and 3
    };
}

TEST(Aggregate, ParetoFrontierOnHandComputedFixture)
{
    const std::vector<std::size_t> frontier = paretoFrontier(
        paretoFixture(), {Objective::kCycles, Objective::kEnergy});
    EXPECT_EQ(frontier, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(Aggregate, ParetoSingleObjectiveKeepsAllTies)
{
    auto fixture = paretoFixture();
    const std::vector<std::size_t> frontier =
        paretoFrontier(fixture, {Objective::kCycles});
    EXPECT_EQ(frontier, (std::vector<std::size_t>{0}));
    // Tie on the single objective: both minima survive.
    fixture[1].cycles = 100;
    const std::vector<std::size_t> tied =
        paretoFrontier(fixture, {Objective::kCycles});
    EXPECT_EQ(tied, (std::vector<std::size_t>{0, 1}));
}

TEST(Aggregate, ParetoMaximizesUtilization)
{
    auto fixture = paretoFixture();
    fixture[0].utilization = 0.2;
    fixture[1].utilization = 0.9;
    fixture[2].utilization = 0.1;
    fixture[3].utilization = 0.9;
    fixture[4].utilization = 0.95;
    const std::vector<std::size_t> frontier = paretoFrontier(
        fixture, {Objective::kCycles, Objective::kUtilization});
    // 4 now survives on utilization; 2 stays dominated by 1, and 3
    // falls to 1 (same utilization, more cycles).
    EXPECT_EQ(frontier, (std::vector<std::size_t>{0, 1, 4}));
}

TEST(Aggregate, ParetoExcludesFailedResults)
{
    auto fixture = paretoFixture();
    fixture[0].error = "boom"; // the fastest point drops out
    const std::vector<std::size_t> frontier = paretoFrontier(
        fixture, {Objective::kCycles, Objective::kEnergy});
    EXPECT_EQ(frontier, (std::vector<std::size_t>{1, 3}));
}

TEST(Emit, CsvIsDeterministicAndAlignedWithHeader)
{
    Scenario s;
    s.config = divaDefault(true);
    s.model = "ResNet-50";
    s.batch = 4;
    const ScenarioResult r = runScenario(s);
    const std::string row = csvRow(r);
    EXPECT_EQ(row, csvRow(r));
    const auto count_commas = [](const std::string &text) {
        return std::count(text.begin(), text.end(), ',');
    };
    EXPECT_EQ(count_commas(row), count_commas(csvHeader()));
}

TEST(Emit, JsonIsIndependentOfCacheState)
{
    // The JSON file is a pure function of the scenario list, so a
    // rerun against a warm cache (all hits) emits identical bytes.
    SweepRunner runner;
    SweepSpec spec = smallSpec();
    spec.models = {"ResNet-50"};
    const SweepReport cold = runner.run(spec);
    const SweepReport warm = runner.run(spec);
    EXPECT_EQ(cold.cacheMisses, 4u);
    EXPECT_EQ(warm.cacheHits, 4u);
    std::ostringstream a, b;
    writeJson(a, cold);
    writeJson(b, warm);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_NE(a.str().find("\"results\": ["), std::string::npos);
    EXPECT_NE(a.str().find("\"compute_cycles\": "), std::string::npos);
    EXPECT_EQ(a.str().find("cache"), std::string::npos);
}

TEST(Emit, FormatDoubleGuardsNonFiniteValues)
{
    EXPECT_EQ(formatDouble(std::nan("")), "nan");
    EXPECT_EQ(formatDouble(HUGE_VAL), "inf");
    EXPECT_EQ(formatDouble(-HUGE_VAL), "-inf");
    EXPECT_EQ(formatDouble(0.25), "0.25");
    EXPECT_EQ(jsonNumber(std::nan("")), "null");
    EXPECT_EQ(jsonNumber(HUGE_VAL), "null");
    EXPECT_EQ(jsonNumber(0.25), "0.25");
}

TEST(Emit, JsonStaysValidWithNonFiniteMetrics)
{
    SweepReport report;
    ScenarioResult r;
    r.scenario.model = "ResNet-50";
    r.seconds = std::nan("");
    r.utilization = HUGE_VAL;
    report.results.push_back(r);
    std::ostringstream oss;
    writeJson(oss, report);
    EXPECT_NE(oss.str().find("\"seconds\": null"), std::string::npos);
    EXPECT_NE(oss.str().find("\"utilization\": null"),
              std::string::npos);
    EXPECT_EQ(oss.str().find("nan"), std::string::npos);
    EXPECT_EQ(oss.str().find("inf"), std::string::npos);
    // The CSV spells them out as text instead.
    const std::string row = csvRow(r);
    EXPECT_NE(row.find("nan"), std::string::npos);
    EXPECT_NE(row.find("inf"), std::string::npos);
}

TEST(Emit, JsonEscapesControlCharacters)
{
    SweepReport report;
    ScenarioResult r;
    r.scenario.model = "ResNet-50";
    r.error = "bad\r\nthing\x01happened";
    report.results.push_back(r);
    std::ostringstream oss;
    writeJson(oss, report);
    const std::string json = oss.str();
    EXPECT_NE(json.find("bad\\r\\nthing\\u0001happened"),
              std::string::npos);
    // No raw control characters survive into the document.
    for (char c : json)
        EXPECT_TRUE(c == '\n' || static_cast<unsigned char>(c) >= 0x20)
            << int(c);
}

TEST(Scenario, BuildModelKnowsTheFullZoo)
{
    for (const std::string &name : knownModels()) {
        const Network net = buildModel(name);
        EXPECT_EQ(net.name, name);
        EXPECT_FALSE(net.layers.empty());
    }
    EXPECT_THROW(buildModel("AlexNet"), std::runtime_error);
}

TEST(Scenario, GpuKeyCoversTimingFieldsNotJustName)
{
    Scenario a;
    a.model = "ResNet-50";
    a.backend = SweepBackend::kGpu;
    a.gpu = GpuConfig::a100Fp16();
    Scenario b = a;
    EXPECT_EQ(a.canonicalKey(), b.canonicalKey());
    b.gpu.gemmEfficiency = 0.5; // same name, different design point
    EXPECT_NE(a.canonicalKey(), b.canonicalKey());
}

TEST(Scenario, PodAxesAreDistinctDesignPoints)
{
    // Interconnect bandwidth and link latency are sweepable pod axes:
    // each value is its own canonical key and survives expansion.
    Scenario base;
    base.config = divaDefault(true);
    base.model = "ResNet-50";
    base.backend = SweepBackend::kMultiChip;
    Scenario fat_links = base;
    fat_links.pod.interconnectGBs = 140.0;
    Scenario long_links = base;
    long_links.pod.linkLatencyCycles = 2000;
    EXPECT_NE(base.canonicalKey(), fat_links.canonicalKey());
    EXPECT_NE(base.canonicalKey(), long_links.canonicalKey());
    EXPECT_NE(fat_links.canonicalKey(), long_links.canonicalKey());

    SweepSpec spec;
    spec.configs = {divaDefault(true)};
    spec.models = {"ResNet-50"};
    spec.batches = {64};
    spec.backends = {SweepBackend::kMultiChip};
    spec.pods = {base.pod, fat_links.pod, long_links.pod};
    const SweepSpec::Expansion e = spec.expand();
    EXPECT_EQ(e.scenarios.size(), 3u);
    EXPECT_EQ(e.duplicatesRemoved, 0u);
}

TEST(Emit, PodRowsAreDistinguishableByLinkDesignPoint)
{
    // Regression: two pods differing only in --ici-gbs/--link-lat
    // must not emit identical identity columns.
    ScenarioResult a;
    a.scenario.config = divaDefault(true);
    a.scenario.model = "ResNet-50";
    a.scenario.backend = SweepBackend::kMultiChip;
    a.scenario.pod.numChips = 2;
    ScenarioResult b = a;
    b.scenario.pod.interconnectGBs = 140.0;
    ScenarioResult c = a;
    c.scenario.pod.linkLatencyCycles = 2000;
    EXPECT_NE(csvRow(a), csvRow(b));
    EXPECT_NE(csvRow(a), csvRow(c));
    EXPECT_NE(a.scenario.label(), b.scenario.label());
    EXPECT_NE(a.scenario.label(), c.scenario.label());
    std::ostringstream json;
    SweepReport report;
    report.results = {a, b};
    writeJson(json, report);
    EXPECT_NE(json.str().find("\"ici_gbs\": 140"), std::string::npos);
}

TEST(Scenario, CanonicalKeySeparatesBackends)
{
    Scenario chip;
    chip.config = divaDefault(true);
    chip.model = "ResNet-50";
    Scenario pod = chip;
    pod.backend = SweepBackend::kMultiChip;
    Scenario gpu = chip;
    gpu.backend = SweepBackend::kGpu;
    gpu.gpu = GpuConfig::a100Fp16();
    EXPECT_NE(chip.canonicalKey(), pod.canonicalKey());
    EXPECT_NE(chip.canonicalKey(), gpu.canonicalKey());
    EXPECT_NE(pod.canonicalKey(), gpu.canonicalKey());
}

} // namespace
} // namespace diva
