/**
 * @file
 * Unit tests for the design-space sweep subsystem: spec expansion
 * counts, serial-vs-parallel result equality, cache-hit accounting,
 * summary statistics and Pareto-frontier extraction.
 */

#include <gtest/gtest.h>

#include "sweep/aggregate.h"
#include "sweep/emit.h"
#include "sweep/runner.h"
#include "sweep/scenario.h"
#include "sweep/spec.h"

#include <algorithm>
#include <sstream>

namespace diva
{
namespace
{

/** A small but multi-axis spec: 2 configs x 2 models x 2 algos. */
SweepSpec
smallSpec()
{
    SweepSpec spec;
    spec.configs = {tpuV3Ws(), divaDefault(true)};
    spec.models = {"ResNet-50", "BERT-base"};
    spec.algorithms = {TrainingAlgorithm::kDpSgd,
                       TrainingAlgorithm::kDpSgdR};
    spec.batches = {8};
    return spec;
}

TEST(SweepSpec, ExpansionCountsCartesianProduct)
{
    const SweepSpec::Expansion e = smallSpec().expand();
    EXPECT_EQ(e.rawCount, 8u);
    EXPECT_EQ(e.scenarios.size(), 8u);
    EXPECT_EQ(e.invalidSkipped, 0u);
    EXPECT_EQ(e.duplicatesRemoved, 0u);
}

TEST(SweepSpec, ExpansionSkipsInvalidConfigs)
{
    SweepSpec spec = smallSpec();
    AcceleratorConfig bad = tpuV3Ws();
    bad.hasPpu = true; // WS + PPU fails validate()
    spec.configs.push_back(bad);
    const SweepSpec::Expansion e = spec.expand();
    EXPECT_EQ(e.rawCount, 12u);
    EXPECT_EQ(e.invalidSkipped, 4u);
    EXPECT_EQ(e.scenarios.size(), 8u);
}

TEST(SweepSpec, ExpansionDeduplicatesRepeatedAxes)
{
    SweepSpec spec = smallSpec();
    spec.configs.push_back(tpuV3Ws()); // repeated design point
    const SweepSpec::Expansion e = spec.expand();
    EXPECT_EQ(e.rawCount, 12u);
    EXPECT_EQ(e.duplicatesRemoved, 4u);
    EXPECT_EQ(e.scenarios.size(), 8u);
}

TEST(SweepSpec, GpuScenariosIgnoreConfigAxis)
{
    SweepSpec spec = smallSpec();
    spec.backends = {SweepBackend::kSingleChip, SweepBackend::kGpu};
    spec.gpus = {GpuConfig::a100Fp16()};
    const SweepSpec::Expansion e = spec.expand();
    // The GPU scenarios coincide across the 2-config axis: 8 chip
    // scenarios + 4 unique GPU scenarios (4 duplicates removed).
    EXPECT_EQ(e.rawCount, 16u);
    EXPECT_EQ(e.duplicatesRemoved, 4u);
    EXPECT_EQ(e.scenarios.size(), 12u);
}

TEST(SweepSpec, ExpansionOrderIsDeterministic)
{
    const SweepSpec spec = smallSpec();
    const auto a = spec.expand();
    const auto b = spec.expand();
    ASSERT_EQ(a.scenarios.size(), b.scenarios.size());
    for (std::size_t i = 0; i < a.scenarios.size(); ++i)
        EXPECT_EQ(a.scenarios[i].canonicalKey(),
                  b.scenarios[i].canonicalKey());
}

TEST(SweepRunner, ParallelBitIdenticalToSerial)
{
    SweepOptions serial_opts;
    serial_opts.threads = 1;
    SweepRunner serial(serial_opts);
    SweepOptions parallel_opts;
    parallel_opts.threads = 4;
    SweepRunner parallel(parallel_opts);

    const std::vector<Scenario> scenarios = smallSpec().expand().scenarios;
    const SweepReport a = serial.run(scenarios);
    const SweepReport b = parallel.run(scenarios);

    ASSERT_EQ(a.results.size(), b.results.size());
    EXPECT_EQ(a.cacheHits, b.cacheHits);
    EXPECT_EQ(a.cacheMisses, b.cacheMisses);
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        SCOPED_TRACE(a.results[i].scenario.label());
        EXPECT_EQ(a.results[i].cycles, b.results[i].cycles);
        EXPECT_EQ(a.results[i].seconds, b.results[i].seconds);
        EXPECT_EQ(a.results[i].utilization, b.results[i].utilization);
        EXPECT_EQ(a.results[i].energyJ, b.results[i].energyJ);
        EXPECT_EQ(a.results[i].dramBytes, b.results[i].dramBytes);
        EXPECT_EQ(a.results[i].cacheHit, b.results[i].cacheHit);
        // Emitted rows must match byte for byte.
        EXPECT_EQ(csvRow(a.results[i]), csvRow(b.results[i]));
    }
}

TEST(SweepRunner, DuplicateScenariosAreCacheHits)
{
    Scenario s;
    s.config = divaDefault(true);
    s.model = "ResNet-50";
    s.batch = 4;
    const std::vector<Scenario> scenarios = {s, s, s};

    SweepRunner runner;
    const SweepReport report = runner.run(scenarios);
    EXPECT_EQ(report.cacheMisses, 1u);
    EXPECT_EQ(report.cacheHits, 2u);
    EXPECT_FALSE(report.results[0].cacheHit);
    EXPECT_TRUE(report.results[1].cacheHit);
    EXPECT_TRUE(report.results[2].cacheHit);
    EXPECT_EQ(report.results[0].cycles, report.results[1].cycles);
}

TEST(SweepRunner, CachePersistsAcrossRuns)
{
    const std::vector<Scenario> scenarios = smallSpec().expand().scenarios;
    SweepRunner runner;
    const SweepReport first = runner.run(scenarios);
    EXPECT_EQ(first.cacheHits, 0u);
    EXPECT_EQ(first.cacheMisses, scenarios.size());
    EXPECT_EQ(runner.cacheSize(), scenarios.size());

    const SweepReport second = runner.run(scenarios);
    EXPECT_EQ(second.cacheHits, scenarios.size());
    EXPECT_EQ(second.cacheMisses, 0u);
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        EXPECT_TRUE(second.results[i].cacheHit);
        EXPECT_EQ(first.results[i].cycles, second.results[i].cycles);
    }

    runner.clearCache();
    EXPECT_EQ(runner.cacheSize(), 0u);
}

TEST(SweepRunner, AutoBatchResolvesToFigureProtocol)
{
    Scenario s;
    s.config = divaDefault(true);
    s.model = "ResNet-50";
    s.batch = kAutoBatch;
    const ScenarioResult r = runScenario(s);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_GT(r.resolvedBatch, 0);
    // An auto-batch scenario and its resolved explicit twin share the
    // simulation but not the canonical key (different requests).
    Scenario explicit_twin = s;
    explicit_twin.batch = r.resolvedBatch;
    EXPECT_NE(s.canonicalKey(), explicit_twin.canonicalKey());
    const ScenarioResult r2 = runScenario(explicit_twin);
    EXPECT_EQ(r.cycles, r2.cycles);
}

TEST(SweepRunner, FailedScenarioReportsErrorNotCrash)
{
    Scenario s;
    s.config = divaDefault(true);
    s.model = "ResNet-50";
    s.batch = 1;
    s.backend = SweepBackend::kMultiChip;
    s.pod.numChips = 8; // global batch 1 < 8 chips is impossible
    SweepRunner runner;
    const SweepReport report = runner.run(std::vector<Scenario>{s});
    EXPECT_EQ(report.failures, 1u);
    EXPECT_FALSE(report.results[0].ok());
}

TEST(Aggregate, SummaryStatsOnKnownSeries)
{
    // 1..100: median 50.5, p95 = 95.05 by linear interpolation.
    std::vector<double> values;
    for (int i = 1; i <= 100; ++i)
        values.push_back(double(i));
    const SummaryStats s = summarize(values);
    EXPECT_EQ(s.count, 100u);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 100.0);
    EXPECT_DOUBLE_EQ(s.mean, 50.5);
    EXPECT_DOUBLE_EQ(s.median, 50.5);
    EXPECT_DOUBLE_EQ(s.p95, 95.05);
}

/** Five hand-computed points over (cycles, energy). */
std::vector<ScenarioResult>
paretoFixture()
{
    auto point = [](Cycles cycles, double energy) {
        ScenarioResult r;
        r.cycles = cycles;
        r.energyJ = energy;
        return r;
    };
    return {
        point(100, 10.0), // [0] frontier: fastest
        point(200, 4.0),  // [1] frontier: cheaper than 0, faster than 3
        point(200, 6.0),  // [2] dominated by 1 (same cycles, more J)
        point(400, 2.0),  // [3] frontier: cheapest
        point(500, 5.0),  // [4] dominated by 1 and 3
    };
}

TEST(Aggregate, ParetoFrontierOnHandComputedFixture)
{
    const std::vector<std::size_t> frontier = paretoFrontier(
        paretoFixture(), {Objective::kCycles, Objective::kEnergy});
    EXPECT_EQ(frontier, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(Aggregate, ParetoSingleObjectiveKeepsAllTies)
{
    auto fixture = paretoFixture();
    const std::vector<std::size_t> frontier =
        paretoFrontier(fixture, {Objective::kCycles});
    EXPECT_EQ(frontier, (std::vector<std::size_t>{0}));
    // Tie on the single objective: both minima survive.
    fixture[1].cycles = 100;
    const std::vector<std::size_t> tied =
        paretoFrontier(fixture, {Objective::kCycles});
    EXPECT_EQ(tied, (std::vector<std::size_t>{0, 1}));
}

TEST(Aggregate, ParetoMaximizesUtilization)
{
    auto fixture = paretoFixture();
    fixture[0].utilization = 0.2;
    fixture[1].utilization = 0.9;
    fixture[2].utilization = 0.1;
    fixture[3].utilization = 0.9;
    fixture[4].utilization = 0.95;
    const std::vector<std::size_t> frontier = paretoFrontier(
        fixture, {Objective::kCycles, Objective::kUtilization});
    // 4 now survives on utilization; 2 stays dominated by 1, and 3
    // falls to 1 (same utilization, more cycles).
    EXPECT_EQ(frontier, (std::vector<std::size_t>{0, 1, 4}));
}

TEST(Aggregate, ParetoExcludesFailedResults)
{
    auto fixture = paretoFixture();
    fixture[0].error = "boom"; // the fastest point drops out
    const std::vector<std::size_t> frontier = paretoFrontier(
        fixture, {Objective::kCycles, Objective::kEnergy});
    EXPECT_EQ(frontier, (std::vector<std::size_t>{1, 3}));
}

TEST(Emit, CsvIsDeterministicAndAlignedWithHeader)
{
    Scenario s;
    s.config = divaDefault(true);
    s.model = "ResNet-50";
    s.batch = 4;
    const ScenarioResult r = runScenario(s);
    const std::string row = csvRow(r);
    EXPECT_EQ(row, csvRow(r));
    const auto count_commas = [](const std::string &text) {
        return std::count(text.begin(), text.end(), ',');
    };
    EXPECT_EQ(count_commas(row), count_commas(csvHeader()));
}

TEST(Emit, JsonContainsCacheAccounting)
{
    SweepRunner runner;
    SweepSpec spec = smallSpec();
    spec.models = {"ResNet-50"};
    const SweepReport report = runner.run(spec);
    std::ostringstream oss;
    writeJson(oss, report);
    EXPECT_NE(oss.str().find("\"cache_misses\": 4"), std::string::npos);
    EXPECT_NE(oss.str().find("\"results\": ["), std::string::npos);
}

TEST(Scenario, BuildModelKnowsTheFullZoo)
{
    for (const std::string &name : knownModels()) {
        const Network net = buildModel(name);
        EXPECT_EQ(net.name, name);
        EXPECT_FALSE(net.layers.empty());
    }
    EXPECT_THROW(buildModel("AlexNet"), std::runtime_error);
}

TEST(Scenario, GpuKeyCoversTimingFieldsNotJustName)
{
    Scenario a;
    a.model = "ResNet-50";
    a.backend = SweepBackend::kGpu;
    a.gpu = GpuConfig::a100Fp16();
    Scenario b = a;
    EXPECT_EQ(a.canonicalKey(), b.canonicalKey());
    b.gpu.gemmEfficiency = 0.5; // same name, different design point
    EXPECT_NE(a.canonicalKey(), b.canonicalKey());
}

TEST(Scenario, CanonicalKeySeparatesBackends)
{
    Scenario chip;
    chip.config = divaDefault(true);
    chip.model = "ResNet-50";
    Scenario pod = chip;
    pod.backend = SweepBackend::kMultiChip;
    Scenario gpu = chip;
    gpu.backend = SweepBackend::kGpu;
    gpu.gpu = GpuConfig::a100Fp16();
    EXPECT_NE(chip.canonicalKey(), pod.canonicalKey());
    EXPECT_NE(chip.canonicalKey(), gpu.canonicalKey());
    EXPECT_NE(pod.canonicalKey(), gpu.canonicalKey());
}

} // namespace
} // namespace diva
