/**
 * @file
 * Tests for gradient-accumulation micro-batching: memory relief,
 * latency cost, noise-once semantics, and work conservation.
 */

#include <gtest/gtest.h>

#include "arch/accelerator_config.h"
#include "models/zoo.h"
#include "sim/executor.h"
#include "train/memory_model.h"
#include "train/planner.h"

namespace diva
{
namespace
{

int
countNoiseOps(const OpStream &s)
{
    int n = 0;
    for (const auto &op : s.ops)
        n += op.type == OpType::kNoiseAdd ? 1 : 0;
    return n;
}

TEST(Microbatch, DegenerateCaseEqualsMonolithic)
{
    const Network net = resnet50();
    const OpStream mono =
        buildOpStream(net, TrainingAlgorithm::kDpSgdR, 32);
    const OpStream micro = buildMicrobatchedOpStream(
        net, TrainingAlgorithm::kDpSgdR, 32, 32);
    ASSERT_EQ(micro.ops.size(), mono.ops.size());
    EXPECT_EQ(micro.totalGemmMacs(), mono.totalGemmMacs());
}

TEST(Microbatch, NoiseAddedExactlyOnce)
{
    const Network net = resnet50();
    for (auto algo :
         {TrainingAlgorithm::kDpSgd, TrainingAlgorithm::kDpSgdR}) {
        const OpStream s =
            buildMicrobatchedOpStream(net, algo, 64, 8);
        EXPECT_EQ(countNoiseOps(s), 1) << algorithmName(algo);
    }
}

TEST(Microbatch, GemmWorkConserved)
{
    // Splitting the mini-batch must not change the useful GEMM work.
    const Network net = vgg16();
    const Macs mono =
        buildOpStream(net, TrainingAlgorithm::kDpSgd, 64)
            .totalGemmMacs();
    for (int mb : {1, 4, 16, 64}) {
        const Macs micro = buildMicrobatchedOpStream(
                               net, TrainingAlgorithm::kDpSgd, 64, mb)
                               .totalGemmMacs();
        EXPECT_EQ(micro, mono) << "microbatch " << mb;
    }
}

TEST(Microbatch, RemainderHandled)
{
    const Network net = mobilenet();
    // 70 = 2 passes of 32 + 1 pass of 6.
    const OpStream s = buildMicrobatchedOpStream(
        net, TrainingAlgorithm::kDpSgdR, 70, 32);
    EXPECT_EQ(s.batch, 70);
    EXPECT_EQ(s.totalGemmMacs(),
              buildOpStream(net, TrainingAlgorithm::kDpSgdR, 70)
                  .totalGemmMacs());
    EXPECT_EQ(countNoiseOps(s), 1);
}

TEST(Microbatch, RejectsInvalidSplit)
{
    const Network net = resnet50();
    EXPECT_THROW(buildMicrobatchedOpStream(
                     net, TrainingAlgorithm::kDpSgd, 8, 16),
                 std::logic_error);
    EXPECT_THROW(buildMicrobatchedOpStream(
                     net, TrainingAlgorithm::kDpSgd, 8, 0),
                 std::logic_error);
}

TEST(Microbatch, MemoryShrinksWithMicrobatch)
{
    const Network net = resnet152();
    const Bytes full =
        trainingMemory(net, TrainingAlgorithm::kDpSgd, 256).total();
    const Bytes micro = trainingMemoryMicrobatched(
                            net, TrainingAlgorithm::kDpSgd, 256, 8)
                            .total();
    EXPECT_LT(micro, full / 8);
}

TEST(Microbatch, EnablesSgdScaleBatches)
{
    // Section III-A's wall: DP-SGD at batch 8192 does not fit 16 GiB
    // monolithically, but fits easily with micro-batch 8.
    const Network net = resnet152();
    EXPECT_GT(trainingMemory(net, TrainingAlgorithm::kDpSgd, 8192)
                  .total(),
              16_GiB);
    EXPECT_LT(trainingMemoryMicrobatched(net, TrainingAlgorithm::kDpSgd,
                                         8192, 8)
                  .total(),
              16_GiB);
}

TEST(Microbatch, LatencyCostOnWs)
{
    // Micro-batching trades memory for time: smaller per-pass GEMMs
    // utilize the array worse, so the same logical batch runs slower.
    const Network net = resnet50();
    const Executor ws(tpuV3Ws());
    const Cycles mono =
        ws.run(buildOpStream(net, TrainingAlgorithm::kDpSgdR, 64))
            .totalCycles();
    const Cycles micro =
        ws.run(buildMicrobatchedOpStream(
                   net, TrainingAlgorithm::kDpSgdR, 64, 4))
            .totalCycles();
    EXPECT_GT(micro, mono);
}

TEST(Microbatch, DivaShrinksTheMicrobatchPenalty)
{
    // Micro-batching shrinks every per-pass GEMM; DiVa's robustness to
    // small GEMMs makes the *added* cycles strictly smaller than on
    // WS. (The relative penalty is larger on DiVa only because its
    // baseline lacks WS's giant norm/per-example stages.)
    const Network net = resnet50();
    const OpStream mono =
        buildOpStream(net, TrainingAlgorithm::kDpSgdR, 64);
    const OpStream micro = buildMicrobatchedOpStream(
        net, TrainingAlgorithm::kDpSgdR, 64, 4);
    const Cycles ws_added =
        Executor(tpuV3Ws()).run(micro).totalCycles() -
        Executor(tpuV3Ws()).run(mono).totalCycles();
    const Cycles diva_added =
        Executor(divaDefault(true)).run(micro).totalCycles() -
        Executor(divaDefault(true)).run(mono).totalCycles();
    EXPECT_LT(diva_added, ws_added);
    // And DiVa-with-microbatching still beats the WS monolith.
    EXPECT_LT(Executor(divaDefault(true)).run(micro).totalCycles(),
              Executor(tpuV3Ws()).run(mono).totalCycles());
}

} // namespace
} // namespace diva
