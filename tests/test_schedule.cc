/**
 * @file
 * Tests for the whole-training-run projection (schedule module).
 */

#include <gtest/gtest.h>

#include "models/zoo.h"
#include "train/schedule.h"

namespace diva
{
namespace
{

TEST(Schedule, BasicProjection)
{
    TrainingRunConfig run;
    run.datasetSize = 50'000;
    run.epochs = 10;
    const TrainingRunSummary s = projectTrainingRun(
        divaDefault(true), resnet50(), TrainingAlgorithm::kDpSgdR, run);
    EXPECT_GT(s.batch, 0);
    EXPECT_EQ(s.stepsPerEpoch, 50'000 / s.batch);
    EXPECT_EQ(s.totalSteps, s.stepsPerEpoch * 10);
    EXPECT_GT(s.secondsPerStep, 0.0);
    EXPECT_GT(s.examplesPerSecond, 0.0);
    EXPECT_GT(s.totalEnergyKwh, 0.0);
    EXPECT_GT(s.epsilon, 0.0);
}

TEST(Schedule, ExplicitBatchRespected)
{
    TrainingRunConfig run;
    run.batch = 32;
    const TrainingRunSummary s = projectTrainingRun(
        divaDefault(true), resnet50(), TrainingAlgorithm::kDpSgdR, run);
    EXPECT_EQ(s.batch, 32);
}

TEST(Schedule, SgdHasNoPrivacyCost)
{
    TrainingRunConfig run;
    run.batch = 64;
    const TrainingRunSummary s = projectTrainingRun(
        tpuV3Ws(), resnet50(), TrainingAlgorithm::kSgd, run);
    EXPECT_DOUBLE_EQ(s.epsilon, 0.0);
}

TEST(Schedule, DivaFasterAndGreenerThanWs)
{
    TrainingRunConfig run;
    run.epochs = 5;
    const TrainingRunSummary ws = projectTrainingRun(
        tpuV3Ws(), resnet152(), TrainingAlgorithm::kDpSgdR, run);
    const TrainingRunSummary dv = projectTrainingRun(
        divaDefault(true), resnet152(), TrainingAlgorithm::kDpSgdR,
        run);
    EXPECT_LT(dv.totalHours, ws.totalHours);
    EXPECT_LT(dv.totalEnergyKwh, ws.totalEnergyKwh);
    EXPECT_GT(dv.examplesPerSecond, ws.examplesPerSecond);
    // Same algorithm, batch and noise -> identical privacy cost.
    EXPECT_DOUBLE_EQ(dv.epsilon, ws.epsilon);
}

TEST(Schedule, MoreEpochsCostMoreTimeAndPrivacy)
{
    TrainingRunConfig short_run;
    short_run.epochs = 5;
    TrainingRunConfig long_run;
    long_run.epochs = 50;
    const TrainingRunSummary a = projectTrainingRun(
        divaDefault(true), bertBase(), TrainingAlgorithm::kDpSgdR,
        short_run);
    const TrainingRunSummary b = projectTrainingRun(
        divaDefault(true), bertBase(), TrainingAlgorithm::kDpSgdR,
        long_run);
    EXPECT_GT(b.totalHours, a.totalHours);
    EXPECT_GT(b.epsilon, a.epsilon);
    EXPECT_DOUBLE_EQ(a.secondsPerStep, b.secondsPerStep);
}

TEST(Schedule, MoreNoiseLessEpsilon)
{
    TrainingRunConfig low;
    low.noiseMultiplier = 0.8;
    TrainingRunConfig high;
    high.noiseMultiplier = 2.0;
    const TrainingRunSummary a = projectTrainingRun(
        divaDefault(true), resnet50(), TrainingAlgorithm::kDpSgdR, low);
    const TrainingRunSummary b = projectTrainingRun(
        divaDefault(true), resnet50(), TrainingAlgorithm::kDpSgdR,
        high);
    EXPECT_GT(a.epsilon, b.epsilon);
}

TEST(Schedule, TargetEpsilonCalibratesNoise)
{
    TrainingRunConfig run;
    run.epochs = 20;
    run.targetEpsilon = 4.0;
    const TrainingRunSummary s = projectTrainingRun(
        divaDefault(true), resnet50(), TrainingAlgorithm::kDpSgdR, run);
    EXPECT_GT(s.noiseMultiplier, 0.0);
    EXPECT_LE(s.epsilon, 4.0 + 1e-6);
    // Stricter budget demands more noise.
    TrainingRunConfig strict = run;
    strict.targetEpsilon = 1.0;
    const TrainingRunSummary t = projectTrainingRun(
        divaDefault(true), resnet50(), TrainingAlgorithm::kDpSgdR,
        strict);
    EXPECT_GT(t.noiseMultiplier, s.noiseMultiplier);
}

TEST(Schedule, RejectsOversizedModel)
{
    TrainingRunConfig run;
    run.hbmBytes = 1_GiB;
    EXPECT_THROW(projectTrainingRun(divaDefault(true), bertLarge(),
                                    TrainingAlgorithm::kDpSgd, run),
                 std::runtime_error);
}

TEST(Schedule, RejectsBatchExceedingMemory)
{
    TrainingRunConfig run;
    run.batch = 1 << 20;
    EXPECT_THROW(projectTrainingRun(divaDefault(true), resnet152(),
                                    TrainingAlgorithm::kDpSgd, run),
                 std::runtime_error);
}

} // namespace
} // namespace diva
