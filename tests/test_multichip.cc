/**
 * @file
 * Tests for the data-parallel multi-chip scaling model.
 */

#include <gtest/gtest.h>

#include "arch/accelerator_config.h"
#include "models/zoo.h"
#include "sim/multichip.h"

namespace diva
{
namespace
{

TEST(MultiChip, SingleChipHasNoCommunication)
{
    MultiChipConfig pod;
    pod.numChips = 1;
    const ScalingResult r = simulateDataParallel(
        divaDefault(true), resnet50(), TrainingAlgorithm::kDpSgdR, 64,
        pod);
    EXPECT_EQ(r.allReduceCycles, 0u);
    EXPECT_EQ(r.totalCycles, r.computeCycles);
    EXPECT_NEAR(r.efficiency, 1.0, 1e-9);
    EXPECT_EQ(r.perChipBatch, 64);
}

TEST(MultiChip, ShardSizesCeil)
{
    MultiChipConfig pod;
    pod.numChips = 8;
    const ScalingResult r = simulateDataParallel(
        divaDefault(true), resnet50(), TrainingAlgorithm::kDpSgdR, 100,
        pod);
    EXPECT_EQ(r.perChipBatch, 13);
}

TEST(MultiChip, MoreChipsReduceTime)
{
    Cycles prev = Cycles(-1);
    for (int n : {1, 2, 4, 8, 16}) {
        MultiChipConfig pod;
        pod.numChips = n;
        const ScalingResult r = simulateDataParallel(
            divaDefault(true), resnet152(), TrainingAlgorithm::kDpSgdR,
            256, pod);
        EXPECT_LT(r.totalCycles, prev) << n;
        prev = r.totalCycles;
    }
}

TEST(MultiChip, EfficiencyDegradesWithScale)
{
    double prev = 1.1;
    for (int n : {1, 4, 16, 64}) {
        MultiChipConfig pod;
        pod.numChips = n;
        const ScalingResult r = simulateDataParallel(
            divaDefault(true), resnet50(), TrainingAlgorithm::kDpSgdR,
            512, pod);
        EXPECT_LE(r.efficiency, prev + 1e-9) << n;
        EXPECT_GT(r.efficiency, 0.0);
        prev = r.efficiency;
    }
}

TEST(MultiChip, AllReduceScalesWithModelSize)
{
    MultiChipConfig pod;
    pod.numChips = 8;
    const ScalingResult small = simulateDataParallel(
        divaDefault(true), squeezenet(), TrainingAlgorithm::kDpSgdR,
        256, pod);
    const ScalingResult large = simulateDataParallel(
        divaDefault(true), bertLarge(), TrainingAlgorithm::kDpSgdR, 256,
        pod);
    EXPECT_GT(large.allReduceCycles, 10 * small.allReduceCycles);
}

TEST(MultiChip, FasterInterconnectHelps)
{
    MultiChipConfig slow;
    slow.numChips = 16;
    slow.interconnectGBs = 10.0;
    MultiChipConfig fast = slow;
    fast.interconnectGBs = 200.0;
    const ScalingResult a = simulateDataParallel(
        divaDefault(true), bertBase(), TrainingAlgorithm::kDpSgdR, 256,
        slow);
    const ScalingResult b = simulateDataParallel(
        divaDefault(true), bertBase(), TrainingAlgorithm::kDpSgdR, 256,
        fast);
    EXPECT_GT(a.allReduceCycles, b.allReduceCycles);
    EXPECT_LT(a.efficiency, b.efficiency);
}

TEST(MultiChip, DivaKeepsItsAdvantageAtPodScale)
{
    MultiChipConfig pod;
    pod.numChips = 8;
    const ScalingResult ws = simulateDataParallel(
        tpuV3Ws(), resnet152(), TrainingAlgorithm::kDpSgdR, 512, pod);
    const ScalingResult dv = simulateDataParallel(
        divaDefault(true), resnet152(), TrainingAlgorithm::kDpSgdR, 512,
        pod);
    EXPECT_GT(double(ws.totalCycles) / double(dv.totalCycles), 2.0);
}

TEST(MultiChip, PodEnergyTrafficAndUtilizationAreAccounted)
{
    MultiChipConfig pod;
    pod.numChips = 8;
    const ScalingResult r = simulateDataParallel(
        divaDefault(true), resnet50(), TrainingAlgorithm::kDpSgdR, 256,
        pod);
    EXPECT_GT(r.energyJ, 0.0);
    EXPECT_GT(r.dramBytes, 0u);
    EXPECT_GT(r.postProcDramBytes, 0u);
    EXPECT_GT(r.utilization, 0.0);
    EXPECT_LE(r.utilization, 1.0);

    // The pod at least sums its chips: one chip at the shard batch.
    MultiChipConfig single;
    single.numChips = 1;
    const ScalingResult shard = simulateDataParallel(
        divaDefault(true), resnet50(), TrainingAlgorithm::kDpSgdR,
        r.perChipBatch, single);
    EXPECT_GE(r.energyJ, 8.0 * shard.energyJ);
    EXPECT_GE(r.dramBytes, 8u * shard.dramBytes);
}

TEST(MultiChip, AllReduceStallLowersUtilization)
{
    MultiChipConfig slow;
    slow.numChips = 16;
    slow.interconnectGBs = 5.0;
    const ScalingResult stalled = simulateDataParallel(
        divaDefault(true), bertBase(), TrainingAlgorithm::kDpSgdR, 256,
        slow);
    MultiChipConfig single;
    single.numChips = 1;
    const ScalingResult local = simulateDataParallel(
        divaDefault(true), bertBase(), TrainingAlgorithm::kDpSgdR,
        stalled.perChipBatch, single);
    EXPECT_LT(stalled.utilization, local.utilization);
}

TEST(MultiChip, RejectsUnshardableBatch)
{
    MultiChipConfig pod;
    pod.numChips = 64;
    EXPECT_THROW(simulateDataParallel(divaDefault(true), resnet50(),
                                      TrainingAlgorithm::kDpSgdR, 32,
                                      pod),
                 std::runtime_error);
}

} // namespace
} // namespace diva
