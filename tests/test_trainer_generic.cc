/**
 * @file
 * Tests for the model-generic DP trainers: the templated
 * DpSgdTrainerT/DpSgdRTrainerT must match the concrete Mlp trainers
 * exactly, and must train ConvNets with the same DP guarantees
 * (equivalence, clipping) as MLPs.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dp/convnet.h"
#include "dp/data.h"
#include "dp/trainer.h"

namespace diva
{
namespace
{

ConvGeometry
smallGeom()
{
    ConvGeometry g;
    g.inChannels = 1;
    g.outChannels = 4;
    g.kernelH = g.kernelW = 3;
    g.stride = 1;
    g.padding = 1;
    g.inH = g.inW = 6;
    return g;
}

TEST(GenericTrainer, MatchesConcreteMlpTrainer)
{
    Rng rng_a(1), rng_b(1);
    Mlp model_a({8, 12, 4}, rng_a);
    Mlp model_b({8, 12, 4}, rng_b);
    DpSgdConfig cfg;
    cfg.clipNorm = 0.5;
    cfg.noiseMultiplier = 1.0;

    DpSgdTrainer concrete(model_a, cfg);
    DpSgdTrainerT<Mlp> generic(model_b, cfg);

    Rng data(2);
    Dataset ds = makeSyntheticClassification(10, 8, 4, data);
    MlpGrads ga = model_a.zeroGrads();
    MlpGrads gb = model_b.zeroGrads();
    const DpStepResult ra = concrete.noisyGradient(ds.x, ds.y, ga);
    const DpStepResult rb = generic.noisyGradient(ds.x, ds.y, gb);
    EXPECT_NEAR(ra.meanLoss, rb.meanLoss, 1e-9);
    EXPECT_DOUBLE_EQ(ga.maxAbsDiff(gb), 0.0);
}

TEST(GenericTrainer, ReweightedMatchesConcrete)
{
    Rng rng_a(3), rng_b(3);
    Mlp model_a({6, 10, 3}, rng_a);
    Mlp model_b({6, 10, 3}, rng_b);
    DpSgdConfig cfg;
    DpSgdRTrainer concrete(model_a, cfg);
    DpSgdRTrainerT<Mlp> generic(model_b, cfg);
    Rng data(4);
    Dataset ds = makeSyntheticClassification(8, 6, 3, data);
    MlpGrads ga = model_a.zeroGrads();
    MlpGrads gb = model_b.zeroGrads();
    concrete.noisyGradient(ds.x, ds.y, ga);
    generic.noisyGradient(ds.x, ds.y, gb);
    EXPECT_DOUBLE_EQ(ga.maxAbsDiff(gb), 0.0);
}

TEST(GenericTrainer, ConvNetEquivalenceVanillaVsReweighted)
{
    const ConvGeometry g = smallGeom();
    Rng rng_a(5), rng_b(5);
    ConvNet model_a(g, 3, rng_a);
    ConvNet model_b(g, 3, rng_b);
    DpSgdConfig cfg;
    cfg.clipNorm = 0.3;
    cfg.noiseMultiplier = 0.7;
    cfg.noiseSeed = 42;
    DpSgdTrainerT<ConvNet> vanilla(model_a, cfg);
    DpSgdRTrainerT<ConvNet> reweighted(model_b, cfg);

    Rng data(6);
    Dataset ds = makeSyntheticClassification(
        8, int(g.inChannels * g.inH * g.inW), 3, data);
    ConvNetGrads ga = model_a.zeroGrads();
    ConvNetGrads gb = model_b.zeroGrads();
    const DpStepResult ra = vanilla.noisyGradient(ds.x, ds.y, ga);
    const DpStepResult rb = reweighted.noisyGradient(ds.x, ds.y, gb);

    EXPECT_NEAR(ra.meanLoss, rb.meanLoss, 1e-9);
    EXPECT_DOUBLE_EQ(ra.clippedFraction, rb.clippedFraction);
    for (std::size_t i = 0; i < ra.perExampleNorms.size(); ++i)
        EXPECT_NEAR(ra.perExampleNorms[i], rb.perExampleNorms[i],
                    1e-4);
    EXPECT_LT(ga.maxAbsDiff(gb), 1e-4);
}

TEST(GenericTrainer, ConvNetClippedAggregateRespectsBound)
{
    const ConvGeometry g = smallGeom();
    Rng rng(7);
    ConvNet model(g, 3, rng);
    DpSgdConfig cfg;
    cfg.clipNorm = 0.05;
    cfg.noiseMultiplier = 0.0;
    DpSgdTrainerT<ConvNet> trainer(model, cfg);
    Rng data(8);
    Dataset ds = makeSyntheticClassification(
        16, int(g.inChannels * g.inH * g.inW), 3, data);
    ConvNetGrads grads = model.zeroGrads();
    const DpStepResult r = trainer.noisyGradient(ds.x, ds.y, grads);
    EXPECT_NEAR(r.clippedFraction, 1.0, 1e-9);
    EXPECT_LE(std::sqrt(grads.l2NormSq()), cfg.clipNorm + 1e-6);
}

TEST(GenericTrainer, ConvNetStepImprovesLoss)
{
    const ConvGeometry g = smallGeom();
    Rng rng(9);
    ConvNet model(g, 3, rng);
    DpSgdConfig cfg;
    cfg.clipNorm = 1.0;
    cfg.noiseMultiplier = 0.3;
    cfg.learningRate = 0.1;
    DpSgdRTrainerT<ConvNet> trainer(model, cfg);
    Rng data(10);
    Dataset ds = makeSyntheticClassification(
        256, int(g.inChannels * g.inH * g.inW), 3, data, 4.0);
    Rng batch_rng(11);
    Tensor x;
    std::vector<int> y;
    double first = 0.0, last = 0.0;
    for (int step = 0; step < 40; ++step) {
        sampleBatch(ds, 16, batch_rng, x, y);
        const DpStepResult r = trainer.step(x, y);
        if (step == 0)
            first = r.meanLoss;
        last = r.meanLoss;
    }
    EXPECT_LT(last, first);
}

} // namespace
} // namespace diva
